// Command ranksearch answers similarity range queries over a top-k
// ranking dataset using the pivot-based metric index: given query
// rankings, it prints every indexed ranking within the threshold of
// each query — the single-query counterpart of the join (in the spirit
// of the authors' earlier "sweet spot" similarity-search work).
//
// Usage:
//
//	ranksearch -data rankings.txt -theta 0.2 -query "3 1 4 1 5"
//	ranksearch -data rankings.txt -theta 0.2 -queries queries.txt
//	ranksearch -data rankings.txt -theta 0.2 -id 42   # dataset ranking as query
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"rankjoin"
	"rankjoin/internal/rankings"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ranksearch: ")

	var (
		data    = flag.String("data", "", "dataset file (required)")
		theta   = flag.Float64("theta", 0.2, "normalized distance threshold")
		query   = flag.String("query", "", "one query ranking, item ids best-first")
		queries = flag.String("queries", "", "file of query rankings")
		id      = flag.Int64("id", -1, "use the dataset ranking with this id as query")
		pivots  = flag.Int("pivots", 12, "number of index pivots")
	)
	flag.Parse()
	if *data == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*data)
	if err != nil {
		log.Fatal(err)
	}
	rs, err := rankjoin.ReadRankings(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	idx, err := rankjoin.BuildIndex(rs, *pivots)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("indexed %d rankings with %d pivots", len(rs), *pivots)

	var qs []*rankjoin.Ranking
	switch {
	case *query != "":
		q, err := rankings.ParseLine(*query, -1)
		if err != nil {
			log.Fatal(err)
		}
		qs = append(qs, q)
	case *queries != "":
		qf, err := os.Open(*queries)
		if err != nil {
			log.Fatal(err)
		}
		qs, err = rankjoin.ReadRankings(qf)
		qf.Close()
		if err != nil {
			log.Fatal(err)
		}
	case *id >= 0:
		for _, r := range rs {
			if r.ID == *id {
				qs = append(qs, r)
			}
		}
		if len(qs) == 0 {
			log.Fatalf("no ranking with id %d in dataset", *id)
		}
	default:
		log.Fatal("provide -query, -queries or -id")
	}

	for _, q := range qs {
		hits := idx.Search(q, *theta)
		fmt.Printf("query %v: %d hits\n", q, len(hits))
		for _, h := range hits {
			other := h.A
			if other == q.ID {
				other = h.B
			}
			fmt.Printf("  ranking %d at distance %d\n", other, h.Dist)
		}
	}
}
