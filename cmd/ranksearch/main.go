// Command ranksearch answers similarity range queries over a top-k
// ranking dataset using the pivot-based metric index: given query
// rankings, it prints every indexed ranking within the threshold of
// each query — the single-query counterpart of the join (in the spirit
// of the authors' earlier "sweet spot" similarity-search work).
//
// Usage:
//
//	ranksearch -data rankings.txt -theta 0.2 -query "3 1 4 1 5"
//	ranksearch -data rankings.txt -theta 0.2 -queries queries.txt
//	ranksearch -data rankings.txt -theta 0.2 -id 42   # dataset ranking as query
//
// With -server it becomes a client of a running rankserved daemon
// instead of building a local index:
//
//	ranksearch -server localhost:7357 -theta 0.2 -query "3 1 4 1 5"
//	ranksearch -server localhost:7357 -theta 0.2 -id 42
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"rankjoin"
	"rankjoin/internal/rankings"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("ranksearch: ")

	var (
		data    = flag.String("data", "", "dataset file (required unless -server)")
		theta   = flag.Float64("theta", 0.2, "normalized distance threshold")
		query   = flag.String("query", "", "one query ranking, item ids best-first")
		queries = flag.String("queries", "", "file of query rankings")
		id      = flag.Int64("id", -1, "use the dataset ranking with this id as query")
		pivots  = flag.Int("pivots", 12, "number of index pivots")
		server  = flag.String("server", "", "query a running rankserved at this host:port instead of indexing locally")
	)
	flag.Parse()
	if *server != "" {
		if err := remoteSearch(*server, *theta, *query, *queries, *id); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *data == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*data)
	if err != nil {
		log.Fatal(err)
	}
	rs, err := rankjoin.ReadRankings(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	idx, err := rankjoin.BuildIndex(rs, *pivots)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("indexed %d rankings with %d pivots", len(rs), *pivots)

	var qs []*rankjoin.Ranking
	switch {
	case *query != "":
		q, err := rankings.ParseLine(*query, -1)
		if err != nil {
			log.Fatal(err)
		}
		qs = append(qs, q)
	case *queries != "":
		qf, err := os.Open(*queries)
		if err != nil {
			log.Fatal(err)
		}
		qs, err = rankjoin.ReadRankings(qf)
		qf.Close()
		if err != nil {
			log.Fatal(err)
		}
	case *id >= 0:
		for _, r := range rs {
			if r.ID == *id {
				qs = append(qs, r)
			}
		}
		if len(qs) == 0 {
			log.Fatalf("no ranking with id %d in dataset", *id)
		}
	default:
		log.Fatal("provide -query, -queries or -id")
	}

	for _, q := range qs {
		hits, err := idx.Search(q, *theta)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query %v: %d hits\n", q, len(hits))
		for _, h := range hits {
			other := h.A
			if other == q.ID {
				other = h.B
			}
			fmt.Printf("  ranking %d at distance %d\n", other, h.Dist)
		}
	}
}

// remoteSearch answers the same queries through a rankserved daemon's
// /v1/search endpoint: -query and -queries send the ranking inline,
// -id asks the daemon to use its own indexed ranking as the query.
func remoteSearch(addr string, theta float64, query, queries string, id int64) error {
	type request struct {
		Items []rankings.Item `json:"items,omitempty"`
		ID    *int64          `json:"id,omitempty"`
		Theta float64         `json:"theta"`
	}
	var reqs []request
	var labels []string
	switch {
	case query != "":
		q, err := rankings.ParseLine(query, -1)
		if err != nil {
			return err
		}
		reqs = append(reqs, request{Items: q.Items, Theta: theta})
		labels = append(labels, fmt.Sprint(q))
	case queries != "":
		qf, err := os.Open(queries)
		if err != nil {
			return err
		}
		qs, err := rankjoin.ReadRankings(qf)
		qf.Close()
		if err != nil {
			return err
		}
		for _, q := range qs {
			reqs = append(reqs, request{Items: q.Items, Theta: theta})
			labels = append(labels, fmt.Sprint(q))
		}
	case id >= 0:
		reqs = append(reqs, request{ID: &id, Theta: theta})
		labels = append(labels, fmt.Sprintf("#%d", id))
	default:
		return fmt.Errorf("provide -query, -queries or -id")
	}

	url := "http://" + addr + "/v1/search"
	// Each query carries a client-minted X-Request-Id; rankserved
	// honors it, so a failure reported here can be looked up directly
	// at /debug/trace/{id} on the daemon.
	ridBase := fmt.Sprintf("ranksearch-%08x", uint32(time.Now().UnixNano()))
	for i, req := range reqs {
		enc, err := json.Marshal(req)
		if err != nil {
			return err
		}
		rid := fmt.Sprintf("%s-%d", ridBase, i)
		hreq, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(enc))
		if err != nil {
			return err
		}
		hreq.Header.Set("Content-Type", "application/json")
		hreq.Header.Set("X-Request-Id", rid)
		resp, err := http.DefaultClient.Do(hreq)
		if err != nil {
			return fmt.Errorf("%s (request %s): %w", url, rid, err)
		}
		// The server echoes the id it actually used (ours, unless it
		// re-minted); prefer its echo when correlating errors.
		if echoed := resp.Header.Get("X-Request-Id"); echoed != "" {
			rid = echoed
		}
		var ans struct {
			Hits []struct {
				ID   int64 `json:"id"`
				Dist int   `json:"dist"`
			} `json:"hits"`
			Error string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&ans)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("%s (request %s): %w", url, rid, err)
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: status %d: %s (request %s; see /debug/trace/%s on the daemon)",
				url, resp.StatusCode, ans.Error, rid, rid)
		}
		fmt.Printf("query %s: %d hits\n", labels[i], len(ans.Hits))
		for _, h := range ans.Hits {
			fmt.Printf("  ranking %d at distance %d\n", h.ID, h.Dist)
		}
	}
	return nil
}
