// Command experiments reproduces the paper's evaluation: every figure
// of §7 plus the ablation studies, as text tables.
//
// Usage:
//
//	experiments -list
//	experiments -run fig6a
//	experiments -run all [-dblp 4000] [-orku 6000] [-partitions 16]
//	            [-budget 5m] [-out results/]
//	experiments -run fig6a -trace-out trace.json -debug-addr :6060
//
// -trace-out records every engine's phase/shuffle/task spans across
// the run and writes one Chrome trace-event file (load it in Perfetto
// or chrome://tracing); -debug-addr serves expvar + pprof while the
// experiments execute.
//
// Dataset sizes default to laptop scale; the paper's absolute numbers
// used 1.2M–2M rankings on an 8-node Spark cluster. Shapes, not
// absolute times, are the reproduction target (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"rankjoin/internal/experiments"
	"rankjoin/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	var (
		list       = flag.Bool("list", false, "list available experiments")
		run        = flag.String("run", "", "experiment name, or 'all'")
		dblp       = flag.Int("dblp", 0, "DBLP base dataset size (0 = default)")
		orku       = flag.Int("orku", 0, "ORKU base dataset size (0 = default)")
		partitions = flag.Int("partitions", 0, "default shuffle partitions (0 = default)")
		workers    = flag.Int("workers", 0, "engine workers (0 = GOMAXPROCS)")
		budget     = flag.Duration("budget", 0, "per-cell time budget (0 = default 5m)")
		outDir     = flag.String("out", "", "also write each table to <out>/<name>.txt")
		seed       = flag.Int64("seed", 0, "dataset seed (0 = default)")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace of all engine spans to this file")
		debugAddr  = flag.String("debug-addr", "", "serve expvar+pprof on this address for the duration")
	)
	flag.Parse()

	if *debugAddr != "" {
		dbg, err := obs.ServeDebug(*debugAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer dbg.Close()
		log.Printf("debug listener on http://%s/debug/vars", dbg.Addr())
	}

	if *list {
		for _, name := range experiments.Names() {
			fmt.Printf("%-20s %s\n", name, experiments.Registry[name].Description)
		}
		return
	}
	if *run == "" {
		flag.Usage()
		os.Exit(2)
	}

	p := experiments.DefaultParams()
	if *dblp > 0 {
		p.DBLPBase = *dblp
	}
	if *orku > 0 {
		p.ORKUBase = *orku
	}
	if *partitions > 0 {
		p.Partitions = *partitions
	}
	if *workers > 0 {
		p.Workers = *workers
	}
	if *budget > 0 {
		p.CellBudget = *budget
	}
	if *seed != 0 {
		p.Seed = *seed
	}
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer()
		p.Tracer = tracer
	}

	names := []string{*run}
	if *run == "all" {
		names = experiments.Names()
	}
	for _, name := range names {
		exp, err := experiments.Get(name)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("running %s ...", name)
		start := time.Now()
		table, err := exp.Run(p)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		out := table.Render()
		fmt.Println(out)
		log.Printf("%s done in %v", name, time.Since(start).Round(time.Millisecond))
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				log.Fatal(err)
			}
			path := filepath.Join(*outDir, name+".txt")
			if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
				log.Fatal(err)
			}
		}
	}
	if tracer != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := tracer.WriteChromeTrace(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		log.Printf("trace written to %s", *traceOut)
	}
}
