// Command ranklint runs the repo-specific static-analysis passes that
// enforce rankjoin's runtime invariants at compile time: span
// lifecycle (spanend), filter-counter conservation (ledgertally),
// shard mutex discipline (lockcopy, lockorder), map-iteration
// determinism (maporder), the sentinel-error wrapping contract
// (wraperr), and — through the cross-function call graph — the
// write-path hedging ban (nohedge), the WAL two-phase commit contract
// (walack), context threading (ctxflow), atomic-field access
// discipline (atomicmix), the zero-allocation serving contract
// (allocfree) and metric-registry hygiene (metricreg). See DESIGN.md
// §10.
//
// Standalone usage (the CI gate):
//
//	go run ./cmd/ranklint ./...          # text findings, exit 1 if any
//	go run ./cmd/ranklint -json ./...    # {findings, suppressed} envelope
//	go run ./cmd/ranklint -run spanend,wraperr ./internal/...
//	go run ./cmd/ranklint -list          # list analyzers
//
// As a vet tool (unit-checker protocol):
//
//	go build -o /tmp/ranklint ./cmd/ranklint
//	go vet -vettool=/tmp/ranklint ./...
//
// Suppress one finding with a trailing or preceding comment carrying a
// mandatory reason:
//
//	//ranklint:ignore reason why the invariant holds here
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"rankjoin/internal/analysis"
	"rankjoin/internal/analysis/passes"
)

func main() {
	os.Exit(run())
}

func run() int {
	all := passes.All()

	// go vet protocol: version handshake, flag discovery, .cfg unit runs.
	if len(os.Args) >= 2 {
		switch os.Args[1] {
		case "-V=full", "-V":
			// The go command caches vet results keyed on the trailing
			// buildID= token, so it must change when the tool does: hash
			// the executable.
			fmt.Printf("ranklint version devel buildID=%s\n", executableHash())
			return 0
		case "-flags":
			fmt.Println("[]")
			return 0
		}
	}
	if last := len(os.Args) - 1; last >= 1 && strings.HasSuffix(os.Args[last], ".cfg") {
		n, err := analysis.RunVetUnit(os.Args[last], all)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if n > 0 {
			return 2
		}
		return 0
	}

	fs := flag.NewFlagSet("ranklint", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit a JSON envelope: findings ({path,line,col,analyzer,message}) plus per-analyzer suppression counts")
	list := fs.Bool("list", false, "list analyzers and exit")
	runNames := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: ranklint [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(fs.Output(), "  %-12s %s\n", a.Name, firstLine(a.Doc))
		}
		fmt.Fprintf(fs.Output(), "\nFlags:\n")
		fs.PrintDefaults()
	}
	fs.Parse(os.Args[1:])

	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, firstLine(a.Doc))
		}
		return 0
	}

	selected, err := selectAnalyzers(all, *runNames)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	res, err := analysis.RunAll(pkgs, selected)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if res.Findings == nil {
			res.Findings = []analysis.Finding{}
		}
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	} else {
		for _, f := range res.Findings {
			fmt.Println(f.String())
		}
	}
	if len(res.Findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "ranklint: %d finding(s) in %d package(s)\n", len(res.Findings), len(pkgs))
		}
		return 1
	}
	return 0
}

// selectAnalyzers resolves a -run flag value against the registry.
// Names must match exactly (no prefixes, no globs); an empty value
// selects every analyzer. Duplicate names run once per occurrence, in
// the order given, like go vet's -run.
func selectAnalyzers(all []*analysis.Analyzer, runNames string) ([]*analysis.Analyzer, error) {
	if runNames == "" {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer)
	for _, a := range all {
		byName[a.Name] = a
	}
	var selected []*analysis.Analyzer
	for _, name := range strings.Split(runNames, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("ranklint: unknown analyzer %q (use -list)", name)
		}
		selected = append(selected, a)
	}
	return selected, nil
}

func executableHash() string {
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			defer f.Close()
			io.Copy(h, f)
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
