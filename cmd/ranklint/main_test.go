package main

import (
	"strings"
	"testing"

	"rankjoin/internal/analysis"
	"rankjoin/internal/analysis/passes"
)

func names(sel []*analysis.Analyzer) []string {
	out := make([]string, len(sel))
	for i, a := range sel {
		out[i] = a.Name
	}
	return out
}

// TestSelectExactNames pins -run's matching contract: names resolve by
// exact match only — no prefixes, no globs — and unknown names are an
// error, not a silent no-op.
func TestSelectExactNames(t *testing.T) {
	all := passes.All()

	sel, err := selectAnalyzers(all, "spanend,wraperr")
	if err != nil {
		t.Fatalf("selectAnalyzers: %v", err)
	}
	if len(sel) != 2 || sel[0].Name != "spanend" || sel[1].Name != "wraperr" {
		t.Fatalf("selected %v, want [spanend wraperr]", names(sel))
	}

	// Whitespace around names is tolerated.
	sel, err = selectAnalyzers(all, " nohedge , walack ")
	if err != nil {
		t.Fatalf("selectAnalyzers with spaces: %v", err)
	}
	if len(sel) != 2 || sel[0].Name != "nohedge" || sel[1].Name != "walack" {
		t.Fatalf("selected %v, want [nohedge walack]", names(sel))
	}

	// Prefixes of real analyzer names must NOT match.
	for _, bad := range []string{"span", "alloc", "nosuch", "spanend,nosuch"} {
		if _, err := selectAnalyzers(all, bad); err == nil {
			t.Errorf("selectAnalyzers(%q) = nil error, want unknown-analyzer error", bad)
		} else if !strings.Contains(err.Error(), "unknown analyzer") {
			t.Errorf("selectAnalyzers(%q) error = %q, want it to mention the unknown analyzer", bad, err)
		}
	}

	// Empty -run means everything.
	sel, err = selectAnalyzers(all, "")
	if err != nil {
		t.Fatalf("selectAnalyzers(\"\"): %v", err)
	}
	if len(sel) != len(all) {
		t.Fatalf("empty -run selected %d analyzers, want all %d", len(sel), len(all))
	}
}

// TestListDocs pins the -list format: every registered analyzer has a
// non-empty one-line doc, and firstLine trims multi-line docs to the
// summary sentence.
func TestListDocs(t *testing.T) {
	for _, a := range passes.All() {
		doc := firstLine(a.Doc)
		if doc == "" {
			t.Errorf("analyzer %s has an empty doc line", a.Name)
		}
		if strings.ContainsRune(doc, '\n') {
			t.Errorf("analyzer %s: firstLine left a newline in %q", a.Name, doc)
		}
	}
	if got := firstLine("summary\ndetail"); got != "summary" {
		t.Errorf("firstLine = %q, want %q", got, "summary")
	}
	if got := firstLine("single"); got != "single" {
		t.Errorf("firstLine = %q, want %q", got, "single")
	}
}
