// Command rankserved is the online serving daemon: a sharded,
// dynamically updatable metric index over top-k rankings behind an
// HTTP/JSON API. Where cmd/rankjoin and cmd/ranksearch answer offline
// batch questions, rankserved holds a live dataset that absorbs
// Insert/Delete traffic, re-pivots itself as the data churns, and
// answers range/kNN queries with request coalescing and an
// epoch-invalidated query cache.
//
// Usage:
//
//	rankserved -addr localhost:7357 -data rankings.txt
//	curl -s localhost:7357/v1/search -d '{"items":[1,2,3,4,5],"theta":0.2}'
//	curl -s localhost:7357/v1/knn -d '{"id":42,"k":10}'
//	curl -s localhost:7357/v1/insert -d '{"rankings":[{"id":7,"items":[9,8,7,6,5]}]}'
//	curl -s localhost:7357/statusz | jq .
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: the listener
// stops accepting, in-flight requests drain (bounded by -timeout), and
// the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rankjoin/internal/obs"
	"rankjoin/internal/rankings"
	"rankjoin/internal/server"
	"rankjoin/internal/shard"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rankserved: ")

	var (
		addr      = flag.String("addr", "localhost:7357", "listen address (use :0 for a free port)")
		addrFile  = flag.String("addr-file", "", "write the bound address to this file (for scripts)")
		data      = flag.String("data", "", "preload this dataset file (optional)")
		shards    = flag.Int("shards", 8, "number of index shards")
		pivots    = flag.Int("pivots", 8, "pivots per shard")
		seed      = flag.Int64("seed", 1, "pivot-selection seed")
		cacheSize = flag.Int("cache", 1024, "query-cache entries (negative disables)")
		maxBatch  = flag.Int("max-batch", 64, "max coalesced searches per shard sweep")
		timeout   = flag.Duration("timeout", 5*time.Second, "per-request deadline")
		debugAddr = flag.String("debug-addr", "", "serve expvar+pprof on this address")
	)
	flag.Parse()

	idx := shard.New(shard.Config{Shards: *shards, PivotsPerShard: *pivots, Seed: *seed})
	if *data != "" {
		f, err := os.Open(*data)
		if err != nil {
			log.Fatal(err)
		}
		rs, err := rankings.Read(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range rs {
			if err := idx.Insert(r); err != nil {
				log.Fatalf("preload %s: %v", *data, err)
			}
		}
		log.Printf("preloaded %d rankings (k=%d) into %d shards", idx.Len(), idx.K(), *shards)
	}

	srv := server.New(server.Config{
		Index:          idx,
		CacheSize:      *cacheSize,
		MaxBatch:       *maxBatch,
		RequestTimeout: *timeout,
	})
	defer srv.Close()

	if *debugAddr != "" {
		obs.Publish("rankserved", func() any { return srv.Status() })
		dbg, err := obs.ServeDebug(*debugAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer dbg.Close()
		log.Printf("debug listener on http://%s/debug/vars", dbg.Addr())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	log.Printf("serving on http://%s (shards=%d pivots=%d cache=%d)",
		ln.Addr(), *shards, *pivots, *cacheSize)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("received %v, draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), *timeout+2*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
			os.Exit(1)
		}
		log.Print("drained, bye")
	case err := <-errCh:
		if err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "rankserved:", err)
			os.Exit(1)
		}
	}
}
