// Command rankserved is the online serving daemon: a sharded,
// dynamically updatable metric index over top-k rankings behind an
// HTTP/JSON API. Where cmd/rankjoin and cmd/ranksearch answer offline
// batch questions, rankserved holds a live dataset that absorbs
// Insert/Delete traffic, re-pivots itself as the data churns, and
// answers range/kNN queries with request coalescing and an
// epoch-invalidated query cache.
//
// Usage:
//
//	rankserved -addr localhost:7357 -data rankings.txt
//
// Cluster mode — boot N processes with the identical ordered -peers
// list and distinct -self ranks to form one logical service; any peer
// answers the full public API by scatter-gathering across all of them:
//
//	rankserved -addr localhost:7001 -peers localhost:7001,localhost:7002,localhost:7003 -self 0
//	rankserved -addr localhost:7002 -peers localhost:7001,localhost:7002,localhost:7003 -self 1
//	rankserved -addr localhost:7003 -peers localhost:7001,localhost:7002,localhost:7003 -self 2
//
// With -data in cluster mode each peer loads only the rankings it owns
// on the placement ring, so the dataset is sharded, not replicated.
//
// Durability — -wal-dir turns on the write-ahead log and periodic epoch
// snapshots: every acked insert/delete is fsynced within the -fsync
// group-commit window, and a crashed process recovers its exact acked
// state on the next boot. A second process started with
// -follower-of <leader> replicates the leader continuously and serves
// /v1/search and /v1/knn read-only:
//
//	rankserved -addr localhost:7001 -wal-dir /var/lib/rankserved
//	rankserved -addr localhost:7002 -follower-of localhost:7001
//
//	curl -s localhost:7357/v1/search -d '{"items":[1,2,3,4,5],"theta":0.2}'
//	curl -s localhost:7357/v1/knn -d '{"id":42,"k":10}'
//	curl -s localhost:7357/v1/insert -d '{"rankings":[{"id":7,"items":[9,8,7,6,5]}]}'
//	curl -s localhost:7357/statusz | jq .
//	curl -s localhost:7357/metrics
//	curl -s localhost:7357/debug/traces | jq .
//
// Logs are structured (log/slog); -log-format json emits one JSON
// object per line for log shippers, -log-level debug adds a per-request
// access line. Every response carries an X-Request-Id header (honored
// from the request when present) that retrieves the request's trace
// from /debug/trace/{id} when it was sampled or slow.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: the listener
// stops accepting, in-flight requests drain (bounded by -timeout), and
// the process exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rankjoin/internal/cluster"
	"rankjoin/internal/obs"
	"rankjoin/internal/rankings"
	"rankjoin/internal/server"
	"rankjoin/internal/shard"
	"rankjoin/internal/wal"
)

func main() {
	var (
		addr        = flag.String("addr", "localhost:7357", "listen address (use :0 for a free port)")
		addrFile    = flag.String("addr-file", "", "write the bound address to this file (for scripts)")
		data        = flag.String("data", "", "preload this dataset file (optional)")
		shards      = flag.Int("shards", 8, "number of index shards")
		pivots      = flag.Int("pivots", 8, "pivots per shard")
		seed        = flag.Int64("seed", 1, "pivot-selection seed")
		cacheSize   = flag.Int("cache", 1024, "query-cache entries (negative disables)")
		maxBatch    = flag.Int("max-batch", 64, "max coalesced searches per shard sweep")
		timeout     = flag.Duration("timeout", 5*time.Second, "per-request deadline")
		debugAddr   = flag.String("debug-addr", "", "serve expvar+pprof on this address")
		logFormat   = flag.String("log-format", "text", "log output format: text or json")
		logLevel    = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
		traceSample = flag.Int("trace-sample", 64, "head-sample every Nth request per endpoint (negative disables)")
		slowThresh  = flag.Duration("slow", 250*time.Millisecond, "tail-sample and warn-log requests at least this slow (negative disables)")
		traceRing   = flag.Int("trace-ring", 32, "retained recent and slow traces, each")
		peers       = flag.String("peers", "", "comma-separated ordered peer list (host:port); forms a cluster")
		self        = flag.Int("self", 0, "this peer's index into -peers")
		joinTimeout = flag.Duration("join-timeout", 2*time.Minute, "distributed join deadline (cluster mode)")
		walDir      = flag.String("wal-dir", "", "durability directory: write-ahead log + epoch snapshots; recovers on boot")
		fsyncEvery  = flag.Duration("fsync", 2*time.Millisecond, "group-commit window: acked writes are fsynced within this bound (0 = every commit)")
		snapEvery   = flag.Duration("snapshot-every", time.Minute, "epoch-snapshot interval (0 disables periodic snapshots)")
		followerOf  = flag.String("follower-of", "", "run as a read-only replica of this leader (host:port)")
		replEvery   = flag.Duration("replicate-every", time.Second, "follower poll interval")
	)
	flag.Parse()

	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rankserved:", err)
		os.Exit(2)
	}
	fatal := func(msg string, err error) {
		logger.Error(msg, slog.Any("err", err))
		os.Exit(1)
	}

	if *followerOf != "" && *peers != "" {
		fatal("flags", fmt.Errorf("-follower-of and -peers are mutually exclusive: a follower replicates one leader, it does not join a ring"))
	}
	if *followerOf != "" && *walDir != "" {
		fatal("flags", fmt.Errorf("-follower-of and -wal-dir are mutually exclusive: followers replay the leader's log instead of writing their own"))
	}

	var clu *cluster.Cluster
	if *peers != "" {
		list := strings.Split(*peers, ",")
		for i := range list {
			list[i] = strings.TrimSpace(list[i])
		}
		var err error
		clu, err = cluster.New(cluster.Config{
			Self:        *self,
			Peers:       list,
			JoinTimeout: *joinTimeout,
			Logger:      logger,
		})
		if err != nil {
			fatal("cluster", err)
		}
		logger.Info("cluster peer", slog.Int("self", *self), slog.Int("peers", len(list)))
	}

	// Follower mode: size the index from the leader's shape so shard
	// epochs line up, then replicate instead of preloading.
	if *followerOf != "" {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		leaderShards, leaderK, err := server.ProbeLeader(ctx, nil, *followerOf)
		cancel()
		if err != nil {
			fatal("probe leader", err)
		}
		if leaderShards > 0 && leaderShards != *shards {
			logger.Info("follower: adopting leader shard count",
				slog.Int("flag", *shards), slog.Int("leader", leaderShards))
			*shards = leaderShards
		}
		logger.Info("probed leader", slog.String("leader", *followerOf),
			slog.Int("shards", leaderShards), slog.Int("k", leaderK))
		if *data != "" {
			logger.Warn("follower: ignoring -data; state comes from the leader", slog.String("file", *data))
			*data = ""
		}
	}

	idx := shard.New(shard.Config{Shards: *shards, PivotsPerShard: *pivots, Seed: *seed})

	// Durability: recover from the newest snapshot + WAL tail, then
	// attach the write hook so every subsequent ack implies an fsynced
	// record, then start the snapshot ticker.
	var mgr *wal.Manager
	if *walDir != "" {
		var err error
		mgr, err = wal.Open(*walDir, wal.Config{
			Shards:        *shards,
			FsyncEvery:    *fsyncEvery,
			SnapshotEvery: *snapEvery,
			Logger:        logger,
		})
		if err != nil {
			fatal("open wal", err)
		}
		rec, err := mgr.Recover(idx)
		if err != nil {
			fatal("wal recovery", err)
		}
		logger.Info("wal recovered", slog.String("dir", *walDir),
			slog.Int("snapshots", rec.SnapshotsLoaded), slog.Int("invalid_snapshots", rec.InvalidSnapshots),
			slog.Int("records", rec.RecordsReplayed), slog.Int("torn_tails", rec.TornTails),
			slog.Int("rankings", idx.Len()))
		if *data != "" && idx.Len() > 0 {
			// A recovered index already contains everything that was
			// acked; replaying the seed file would just re-log it.
			logger.Info("skipping -data preload: recovered state is newer", slog.String("file", *data))
			*data = ""
		}
		defer mgr.Close()
	}

	if *data != "" {
		f, err := os.Open(*data)
		if err != nil {
			fatal("open dataset", err)
		}
		rs, err := rankings.Read(f)
		f.Close()
		if err != nil {
			fatal("read dataset", err)
		}
		skipped := 0
		for _, r := range rs {
			// In cluster mode each peer indexes only its ring share of
			// the dataset; the scatter path reassembles the full answer.
			if clu != nil && clu.Owner(r.ID) != clu.Self() {
				skipped++
				continue
			}
			if err := idx.Insert(r); err != nil {
				fatal("preload "+*data, err)
			}
		}
		logger.Info("preloaded dataset", slog.String("file", *data),
			slog.Int("rankings", idx.Len()), slog.Int("k", idx.K()), slog.Int("shards", *shards),
			slog.Int("skipped_not_owned", skipped))
	}

	if mgr != nil {
		// Preload ran unhooked (one fsync per ranking would make large
		// seeds crawl); a snapshot pass makes the preloaded state
		// durable in one shot, then the hook covers everything after.
		if idx.Len() > 0 {
			if err := mgr.SnapshotAll(idx); err != nil {
				fatal("snapshot preloaded state", err)
			}
		}
		mgr.Attach(idx)
		mgr.Start(idx)
	}

	// Follower mode: pull the leader's state before serving, then keep
	// polling in the background.
	var replica *server.Replica
	if *followerOf != "" {
		replica = server.NewReplica(*followerOf, idx, *replEvery, nil, logger)
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		err := replica.SyncOnce(ctx)
		cancel()
		if err != nil {
			fatal("initial replication", err)
		}
		replica.Start()
		defer replica.Close()
		logger.Info("following leader", slog.String("leader", *followerOf),
			slog.Int("rankings", idx.Len()), slog.Duration("every", *replEvery))
	}

	srv := server.New(server.Config{
		Index:            idx,
		CacheSize:        *cacheSize,
		MaxBatch:         *maxBatch,
		RequestTimeout:   *timeout,
		Logger:           logger,
		TraceSampleEvery: *traceSample,
		SlowThreshold:    *slowThresh,
		TraceRingSize:    *traceRing,
		Cluster:          clu,
		WAL:              mgr,
		Replica:          replica,
	})
	defer srv.Close()

	if *debugAddr != "" {
		obs.Publish("rankserved", func() any { return srv.Status() })
		dbg, err := obs.ServeDebug(*debugAddr)
		if err != nil {
			fatal("debug listener", err)
		}
		defer dbg.Close()
		logger.Info("debug listener up", slog.String("url", "http://"+dbg.Addr()+"/debug/vars"))
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("listen", err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			fatal("write addr-file", err)
		}
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	logger.Info("serving", slog.String("addr", ln.Addr().String()),
		slog.Int("shards", *shards), slog.Int("pivots", *pivots),
		slog.Int("cache", *cacheSize), slog.Int("trace_sample", *traceSample),
		slog.Duration("slow", *slowThresh))

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		logger.Info("draining", slog.String("signal", sig.String()))
		ctx, cancel := context.WithTimeout(context.Background(), *timeout+2*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			logger.Error("shutdown", slog.Any("err", err))
			os.Exit(1)
		}
		logger.Info("drained, bye")
	case err := <-errCh:
		if err != http.ErrServerClosed {
			fatal("serve", err)
		}
	}
}

// buildLogger assembles the shared slog logger from the -log-format and
// -log-level flags.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q: want text or json", format)
	}
}
