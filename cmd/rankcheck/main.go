// Command rankcheck is the differential correctness harness: it
// generates seeded adversarial datasets, runs every join path — the
// brute-force oracle, VJ, VJ-NL, CL, CL-P, FS-Join, V-SMART, the R-S
// join, and the sharded dynamic index under churn — and diffs the
// result sets pair by pair, along with metamorphic properties
// (threshold monotonicity, metric axioms, id-permutation invariance,
// filter-counter conservation).
//
// Usage:
//
//	rankcheck [-seeds N] [-seed S] [-paths p1,p2] [-repro-dir DIR]
//	          [-replay FILE ...] [-v]
//
// Without -replay, rankcheck sweeps seeds [S, S+N) and exits 1 if any
// trial diverges; each failing trial is shrunk to a minimal reproducer
// and written under -repro-dir. With -replay, the named reproducer
// files are re-run instead.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"rankjoin/internal/check"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rankcheck: ")

	var (
		seeds    = flag.Int("seeds", 100, "number of consecutive seeds to sweep")
		seed     = flag.Int64("seed", 1, "first seed of the sweep")
		paths    = flag.String("paths", "", "comma-separated path subset (default all): "+strings.Join(check.AllPaths, ","))
		reproDir = flag.String("repro-dir", "results/repro", "directory for shrunk reproducer files")
		noShrink = flag.Bool("no-shrink", false, "report divergences without shrinking or saving reproducers")
		verbose  = flag.Bool("v", false, "log every trial, not just failures")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: rankcheck [flags] | rankcheck -replay file.repro ...\n")
		flag.PrintDefaults()
	}
	replay := flag.Bool("replay", false, "treat positional arguments as reproducer files to re-run")
	flag.Parse()

	enabled, err := pathFilter(*paths)
	if err != nil {
		log.Fatal(err)
	}

	if *replay {
		if flag.NArg() == 0 {
			log.Fatal("-replay requires at least one reproducer file")
		}
		os.Exit(replayFiles(flag.Args(), enabled))
	}

	failures := 0
	for s := *seed; s < *seed+int64(*seeds); s++ {
		p, rs := check.Generate(s)
		divs := check.RunTrial(p, rs, enabled)
		if len(divs) == 0 {
			if *verbose {
				log.Printf("seed %d ok (profile=%s k=%d n=%d θ=%.4g)", s, p.Profile, p.K, len(rs), p.Theta)
			}
			continue
		}
		failures++
		log.Printf("seed %d DIVERGED (profile=%s k=%d n=%d θ=%.4g):", s, p.Profile, p.K, len(rs), p.Theta)
		for _, d := range divs {
			log.Printf("  %s", d)
		}
		if *noShrink {
			continue
		}
		small, div := check.Shrink(p, rs, divs[0])
		path, err := check.SaveRepro(*reproDir, p, small, []check.Divergence{div})
		if err != nil {
			log.Printf("  repro save failed: %v", err)
			continue
		}
		log.Printf("  shrunk %d -> %d rankings; reproducer: %s", len(rs), len(small), path)
	}
	if failures > 0 {
		log.Printf("%d of %d seeds diverged", failures, *seeds)
		os.Exit(1)
	}
	fmt.Printf("rankcheck: %d seeds, 0 divergences\n", *seeds)
}

// replayFiles re-runs reproducer files and returns the process exit
// code: 0 when every file is clean, 1 when any still diverges.
func replayFiles(files []string, enabled func(string) bool) int {
	code := 0
	for _, file := range files {
		p, rs, err := check.LoadRepro(file)
		if err != nil {
			log.Print(err)
			code = 1
			continue
		}
		divs := check.RunTrial(p, rs, enabled)
		if len(divs) == 0 {
			fmt.Printf("%s: ok (%d rankings)\n", file, len(rs))
			continue
		}
		code = 1
		log.Printf("%s: still diverging:", file)
		for _, d := range divs {
			log.Printf("  %s", d)
		}
	}
	return code
}

// pathFilter parses the -paths flag into an enabled predicate.
func pathFilter(spec string) (func(string) bool, error) {
	if spec == "" {
		return nil, nil
	}
	known := make(map[string]bool, len(check.AllPaths))
	for _, p := range check.AllPaths {
		known[p] = true
	}
	want := make(map[string]bool)
	for _, p := range strings.Split(spec, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if !known[p] {
			return nil, fmt.Errorf("unknown path %q (known: %s)", p, strings.Join(check.AllPaths, ","))
		}
		want[p] = true
	}
	// Self-join paths diff against the oracle, so asking for any of
	// them implies the oracle runs too.
	if len(want) > 0 && !want[check.PathBrute] {
		for p := range want {
			if p != check.PathJoinRS && p != check.PathShard {
				want[check.PathBrute] = true
				break
			}
		}
	}
	return func(p string) bool { return want[p] }, nil
}
