// Command rankjoin runs a similarity join over a top-k ranking dataset
// file and writes the result pairs.
//
// Usage:
//
//	rankjoin -input data.txt -theta 0.3 [-algo cl|clp|vj|vjnl|brute]
//	         [-thetac 0.03] [-delta 0] [-partitions 0] [-workers 0]
//	         [-spill DIR] [-output pairs.txt] [-stats]
//
// The input format is one ranking per line: optionally "id:" followed
// by whitespace- or comma-separated item ids, best-ranked first. Output
// lines are "a b dist".
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"rankjoin"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("rankjoin: ")

	var (
		input      = flag.String("input", "", "input dataset file (required)")
		output     = flag.String("output", "", "output file (default stdout)")
		algo       = flag.String("algo", "cl", "algorithm: cl, clp, vj, vjnl, brute")
		theta      = flag.Float64("theta", 0.2, "normalized distance threshold θ in [0,1]")
		thetaC     = flag.Float64("thetac", 0.03, "clustering threshold θc (cl/clp)")
		delta      = flag.Int("delta", 0, "repartitioning threshold δ (clp; 0 = auto via Eq. 4)")
		partitions = flag.Int("partitions", 0, "shuffle partitions (0 = default)")
		workers    = flag.Int("workers", 0, "executor worker budget (0 = GOMAXPROCS)")
		spillDir   = flag.String("spill", "", "spill directory (enables spill-to-disk)")
		stats      = flag.Bool("stats", false, "print pipeline statistics to stderr")
	)
	flag.Parse()
	if *input == "" {
		flag.Usage()
		os.Exit(2)
	}

	algorithm, err := parseAlgo(*algo)
	if err != nil {
		log.Fatal(err)
	}

	f, err := os.Open(*input)
	if err != nil {
		log.Fatal(err)
	}
	rs, err := rankjoin.ReadRankings(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("loaded %d rankings from %s", len(rs), *input)

	engine := rankjoin.NewEngine(rankjoin.EngineConfig{
		Workers:  *workers,
		SpillDir: *spillDir,
	})
	defer engine.Close()

	start := time.Now()
	res, err := engine.Join(rs, rankjoin.Options{
		Algorithm:  algorithm,
		Theta:      *theta,
		ThetaC:     *thetaC,
		Delta:      *delta,
		Partitions: *partitions,
		Stats:      *stats,
	})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	out := os.Stdout
	if *output != "" {
		out, err = os.Create(*output)
		if err != nil {
			log.Fatal(err)
		}
		defer out.Close()
	}
	w := bufio.NewWriter(out)
	for _, p := range res.Pairs {
		fmt.Fprintf(w, "%d %d %d\n", p.A, p.B, p.Dist)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}

	log.Printf("%s θ=%v: %d pairs in %v", algorithm, *theta, len(res.Pairs), elapsed)
	if *stats {
		if res.CL != nil {
			log.Printf("phases: %v", res.CL)
		}
		if res.Kernel != nil {
			log.Printf("kernel: %v", res.Kernel)
		}
		log.Printf("engine: %v", res.Engine)
	}
}

func parseAlgo(s string) (rankjoin.Algorithm, error) {
	switch s {
	case "cl":
		return rankjoin.AlgCL, nil
	case "clp":
		return rankjoin.AlgCLP, nil
	case "vj":
		return rankjoin.AlgVJ, nil
	case "vjnl":
		return rankjoin.AlgVJNL, nil
	case "brute":
		return rankjoin.AlgBruteForce, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q (want cl, clp, vj, vjnl, brute)", s)
	}
}
