// Command genranks generates synthetic top-k ranking datasets in the
// statistical shape of the paper's DBLP and ORKU benchmarks, optionally
// scaled ×n with the paper's fixed-domain method.
//
// Usage:
//
//	genranks -n 100000 -k 10 -profile dblp -o dblp.txt
//	genranks -n 50000 -k 10 -profile orku -scale 5 -o orkux5.txt
//	genranks -n 10000 -k 25 -domain 4000 -skew 0.9 -dup 0.1 -o custom.txt
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"rankjoin"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("genranks: ")

	var (
		n       = flag.Int("n", 10000, "number of rankings")
		k       = flag.Int("k", 10, "ranking length")
		profile = flag.String("profile", "dblp", "dataset profile: dblp, orku, custom")
		domain  = flag.Int("domain", 0, "item domain size (custom profile)")
		skew    = flag.Float64("skew", 0.9, "Zipf skew (custom profile)")
		dup     = flag.Float64("dup", 0.1, "near-duplicate rate (custom profile)")
		scale   = flag.Int("scale", 1, "replicate the dataset ×n keeping the domain fixed")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var cfg rankjoin.GenOptions
	switch *profile {
	case "dblp":
		cfg = rankjoin.DBLPLike.Config(*n, *k, *seed)
	case "orku":
		cfg = rankjoin.ORKULike.Config(*n, *k, *seed)
	case "custom":
		if *domain <= 0 {
			log.Fatal("custom profile requires -domain")
		}
		cfg = rankjoin.GenOptions{N: *n, K: *k, Domain: *domain, Skew: *skew, DupRate: *dup, Seed: *seed}
	default:
		log.Fatalf("unknown profile %q (want dblp, orku, custom)", *profile)
	}

	rs, err := rankjoin.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *scale > 1 {
		rs = rankjoin.ScaleDataset(rs, *scale, cfg.Domain)
	}

	w := os.Stdout
	if *out != "" {
		w, err = os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer w.Close()
	}
	if err := rankjoin.WriteRankings(w, rs); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "genranks: wrote %d rankings (k=%d, domain=%d, skew=%v, dup=%v, scale=×%d)\n",
		len(rs), cfg.K, cfg.Domain, cfg.Skew, cfg.DupRate, *scale)
}
