package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"rankjoin/internal/rankings"
	"rankjoin/internal/server"
	"rankjoin/internal/shard"
	"rankjoin/internal/testutil"
)

// The -serve micro-benchmark (Bench 3): boot the rankserved stack
// in-process behind a real HTTP listener and hammer /v1/search and
// /v1/knn from concurrent clients, reporting QPS and exact p50/p99
// request latency at two dataset sizes. Queries draw random dataset
// ids, so repeats land in the epoch-tagged query cache at a realistic
// rate — the cached fraction is reported alongside.

const (
	serveClients  = 8
	serveRequests = 4000 // total per (size, endpoint) configuration
	serveK        = 10
	serveTheta    = 0.25
	serveKNN      = 10
)

func serveBenches(sizes []int) ([]result, error) {
	var out []result
	for _, n := range sizes {
		rs, err := serveBench(n)
		if err != nil {
			return nil, fmt.Errorf("serve n=%d: %w", n, err)
		}
		out = append(out, rs...)
	}
	return out, nil
}

func serveBench(n int) ([]result, error) {
	rng := rand.New(rand.NewSource(99))
	data := testutil.ClusteredDataset(rng, n/5, 5, serveK, 30*serveK)
	idx := shard.New(shard.Config{})
	for _, r := range data {
		if err := idx.Insert(r); err != nil {
			return nil, err
		}
	}
	srv := server.New(server.Config{Index: idx})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var out []result
	for _, ep := range []struct {
		name string
		path string
		body func(id int64) any
	}{
		{"search", "/v1/search", func(id int64) any {
			return map[string]any{"id": id, "theta": serveTheta}
		}},
		{"knn", "/v1/knn", func(id int64) any {
			return map[string]any{"id": id, "k": serveKNN}
		}},
	} {
		r, err := hammer(ts.URL+ep.path, data, ep.body)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", ep.name, err)
		}
		r.Name = fmt.Sprintf("serve/%s/n=%d", ep.name, n)
		r.Metrics["rankings"] = float64(n)
		out = append(out, *r)
	}
	return out, nil
}

// hammer fires serveRequests requests at url from serveClients
// concurrent workers and returns QPS plus exact latency quantiles.
func hammer(url string, data []*rankings.Ranking, body func(id int64) any) (*result, error) {
	client := &http.Client{Timeout: 30 * time.Second}
	perWorker := serveRequests / serveClients
	lat := make([][]time.Duration, serveClients)
	cachedCounts := make([]int, serveClients)
	errs := make([]error, serveClients)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < serveClients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			lat[w] = make([]time.Duration, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				id := data[rng.Intn(len(data))].ID
				enc, err := json.Marshal(body(id))
				if err != nil {
					errs[w] = err
					return
				}
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(enc))
				if err != nil {
					errs[w] = err
					return
				}
				var ans struct {
					Hits   []shard.Neighbor `json:"hits"`
					Cached bool             `json:"cached"`
				}
				err = json.NewDecoder(resp.Body).Decode(&ans)
				resp.Body.Close()
				if err != nil {
					errs[w] = err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs[w] = fmt.Errorf("status %d", resp.StatusCode)
					return
				}
				lat[w] = append(lat[w], time.Since(t0))
				if ans.Cached {
					cachedCounts[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var all []time.Duration
	cached := 0
	for w := range lat {
		all = append(all, lat[w]...)
		cached += cachedCounts[w]
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	q := func(p float64) time.Duration {
		i := int(p * float64(len(all)-1))
		return all[i]
	}
	return &result{
		NsPerOp: float64(elapsed.Nanoseconds()) / float64(len(all)),
		Metrics: map[string]float64{
			"qps":          float64(len(all)) / elapsed.Seconds(),
			"p50_us":       float64(q(0.50).Microseconds()),
			"p99_us":       float64(q(0.99).Microseconds()),
			"max_us":       float64(all[len(all)-1].Microseconds()),
			"requests":     float64(len(all)),
			"clients":      serveClients,
			"cached_ratio": float64(cached) / float64(len(all)),
		},
	}, nil
}
