package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"rankjoin/internal/rankings"
	"rankjoin/internal/server"
	"rankjoin/internal/shard"
	"rankjoin/internal/testutil"
)

// The -serve micro-benchmark (Bench 3): boot the rankserved stack
// in-process behind a real HTTP listener and hammer /v1/search and
// /v1/knn from concurrent clients, reporting QPS and exact p50/p99
// request latency at two dataset sizes. Queries draw random dataset
// ids, so repeats land in the epoch-tagged query cache at a realistic
// rate — the cached fraction is reported alongside.

const (
	serveClients  = 8
	serveRequests = 4000 // total per (size, endpoint) configuration
	serveK        = 10
	serveTheta    = 0.25
	serveKNN      = 10
)

func serveBenches(sizes []int) ([]result, error) {
	var out []result
	for _, n := range sizes {
		rs, err := serveBench(n)
		if err != nil {
			return nil, fmt.Errorf("serve n=%d: %w", n, err)
		}
		out = append(out, rs...)
	}
	return out, nil
}

func serveBench(n int) ([]result, error) {
	rng := rand.New(rand.NewSource(99))
	data := testutil.ClusteredDataset(rng, n/5, 5, serveK, 30*serveK)
	idx := shard.New(shard.Config{})
	for _, r := range data {
		if err := idx.Insert(r); err != nil {
			return nil, err
		}
	}
	srv := server.New(server.Config{Index: idx})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var out []result
	for _, ep := range []struct {
		name string
		path string
		body func(id int64) any
	}{
		{"search", "/v1/search", func(id int64) any {
			return map[string]any{"id": id, "theta": serveTheta}
		}},
		{"knn", "/v1/knn", func(id int64) any {
			return map[string]any{"id": id, "k": serveKNN}
		}},
	} {
		r, err := hammer(ts.URL+ep.path, data, ep.body)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", ep.name, err)
		}
		r.Name = fmt.Sprintf("serve/%s/n=%d", ep.name, n)
		r.Metrics["rankings"] = float64(n)
		out = append(out, *r)
	}
	return out, nil
}

// telemetryGuard is the serving-plane analogue of overheadGuard: it
// drives an identical request sequence through the in-process handler
// stack with telemetry at production defaults (head sampling, tail
// sampling, window loop, request IDs) and with every telemetry knob
// disabled, min wall time of `rounds` each, and fails when telemetry
// costs more than 2% plus an absolute slack that keeps short CI smoke
// runs out of timer-noise territory.
func telemetryGuard(rounds int) (result, error) {
	if rounds < 1 {
		rounds = 1
	}
	const (
		guardN        = 2000
		guardRequests = 4000
	)
	rng := rand.New(rand.NewSource(7))
	data := testutil.ClusteredDataset(rng, guardN/5, 5, serveK, 30*serveK)

	// Pre-marshal the request sequence once: both modes replay the exact
	// same bytes, so cache behaviour and coalescing match too.
	paths := make([]string, guardRequests)
	bodies := make([][]byte, guardRequests)
	qrng := rand.New(rand.NewSource(11))
	for i := range bodies {
		id := data[qrng.Intn(len(data))].ID
		if i%2 == 0 {
			paths[i] = "/v1/search"
			bodies[i] = []byte(fmt.Sprintf(`{"id":%d,"theta":%g}`, id, serveTheta))
		} else {
			paths[i] = "/v1/knn"
			bodies[i] = []byte(fmt.Sprintf(`{"id":%d,"k":%d}`, id, serveKNN))
		}
	}

	run := func(telemetry bool) (time.Duration, error) {
		idx := shard.New(shard.Config{})
		for _, r := range data {
			if err := idx.Insert(r); err != nil {
				return 0, err
			}
		}
		cfg := server.Config{Index: idx}
		if !telemetry {
			cfg.TraceSampleEvery = -1
			cfg.SlowThreshold = -1
			cfg.WindowInterval = -1
		}
		srv := server.New(cfg)
		defer srv.Close()
		h := srv.Handler()
		start := time.Now()
		for i := range bodies {
			req := httptest.NewRequest(http.MethodPost, paths[i], bytes.NewReader(bodies[i]))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				return 0, fmt.Errorf("%s: status %d (%s)", paths[i], rec.Code, rec.Body.Bytes())
			}
		}
		return time.Since(start), nil
	}

	// Alternate modes within each round (after one warm-up of both) so
	// machine drift hits both equally — same discipline as overheadGuard.
	var disabled, enabled time.Duration
	for i := -1; i < rounds; i++ {
		d, err := run(false)
		if err != nil {
			return result{}, err
		}
		en, err := run(true)
		if err != nil {
			return result{}, err
		}
		if i < 0 {
			continue // warm-up round
		}
		if disabled == 0 || d < disabled {
			disabled = d
		}
		if enabled == 0 || en < enabled {
			enabled = en
		}
	}
	ratio := float64(enabled) / float64(disabled)
	const slack = 25 * time.Millisecond
	limit := time.Duration(float64(disabled)*1.02) + slack
	if enabled > limit {
		return result{}, fmt.Errorf("telemetry overhead guard: enabled %v > %v (disabled %v, ratio %.3f)",
			enabled, limit, disabled, ratio)
	}
	return result{
		Name:    "guard/telemetry_overhead/serve",
		NsPerOp: float64(disabled.Nanoseconds()) / float64(guardRequests),
		Metrics: map[string]float64{
			"disabled_ns": float64(disabled.Nanoseconds()),
			"enabled_ns":  float64(enabled.Nanoseconds()),
			"ratio":       ratio,
			"rounds":      float64(rounds),
			"requests":    guardRequests,
		},
	}, nil
}

// hammer fires serveRequests requests at url from serveClients
// concurrent workers and returns QPS plus exact latency quantiles.
func hammer(url string, data []*rankings.Ranking, body func(id int64) any) (*result, error) {
	client := &http.Client{Timeout: 30 * time.Second}
	perWorker := serveRequests / serveClients
	lat := make([][]time.Duration, serveClients)
	cachedCounts := make([]int, serveClients)
	errs := make([]error, serveClients)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < serveClients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			lat[w] = make([]time.Duration, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				id := data[rng.Intn(len(data))].ID
				enc, err := json.Marshal(body(id))
				if err != nil {
					errs[w] = err
					return
				}
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(enc))
				if err != nil {
					errs[w] = err
					return
				}
				var ans struct {
					Hits   []shard.Neighbor `json:"hits"`
					Cached bool             `json:"cached"`
				}
				err = json.NewDecoder(resp.Body).Decode(&ans)
				resp.Body.Close()
				if err != nil {
					errs[w] = err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs[w] = fmt.Errorf("status %d", resp.StatusCode)
					return
				}
				lat[w] = append(lat[w], time.Since(t0))
				if ans.Cached {
					cachedCounts[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var all []time.Duration
	cached := 0
	for w := range lat {
		all = append(all, lat[w]...)
		cached += cachedCounts[w]
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	q := func(p float64) time.Duration {
		i := int(p * float64(len(all)-1))
		return all[i]
	}
	return &result{
		NsPerOp: float64(elapsed.Nanoseconds()) / float64(len(all)),
		Metrics: map[string]float64{
			"qps":          float64(len(all)) / elapsed.Seconds(),
			"p50_us":       float64(q(0.50).Microseconds()),
			"p99_us":       float64(q(0.99).Microseconds()),
			"max_us":       float64(all[len(all)-1].Microseconds()),
			"requests":     float64(len(all)),
			"clients":      serveClients,
			"cached_ratio": float64(cached) / float64(len(all)),
		},
	}, nil
}
