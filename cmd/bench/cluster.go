package main

// Cluster bench (-cluster, report Bench: 5): boots a real 3-peer
// fleet on loopback via clustertest — the same servers, ring, hedging
// and wire shuffle the e2e tests exercise — and measures both planes:
// scatter-gather serving QPS/latency through one peer, and a
// distributed join timed against the identical single-node join so
// the report carries the wire overhead explicitly.

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"rankjoin"
	"rankjoin/internal/cluster/clustertest"
	"rankjoin/internal/testutil"
)

const (
	clusterPeers = 3
	clusterN     = 3000
	clusterJoinN = 1500
)

func clusterBenches(theta float64) ([]result, error) {
	f, err := clustertest.Boot(clusterPeers, clustertest.Options{})
	if err != nil {
		return nil, err
	}
	defer f.Close()

	rng := rand.New(rand.NewSource(5))
	data := testutil.ClusteredDataset(rng, clusterN/5, 5, serveK, 30*serveK)
	if err := f.Load(data); err != nil {
		return nil, err
	}

	var out []result
	for _, ep := range []struct {
		name string
		path string
		body func(id int64) any
	}{
		{"search", "/v1/search", func(id int64) any {
			return map[string]any{"id": id, "theta": serveTheta}
		}},
		{"knn", "/v1/knn", func(id int64) any {
			return map[string]any{"id": id, "k": serveKNN}
		}},
	} {
		r, err := hammer(f.URL(0)+ep.path, data, ep.body)
		if err != nil {
			return nil, fmt.Errorf("cluster %s: %w", ep.name, err)
		}
		r.Name = fmt.Sprintf("cluster/%s/peers=%d/n=%d", ep.name, clusterPeers, clusterN)
		r.Metrics["rankings"] = float64(clusterN)
		r.Metrics["peers"] = clusterPeers
		out = append(out, *r)
	}

	jr, err := clusterJoinBench(f, theta)
	if err != nil {
		return nil, err
	}
	out = append(out, *jr)
	return out, nil
}

// clusterJoinBench runs one CL-P join twice — over the wire through
// the fleet and in-process on a single node — and reports both times
// plus the shuffle traffic the distributed run generated.
func clusterJoinBench(f *clustertest.Fleet, theta float64) (*result, error) {
	rng := rand.New(rand.NewSource(6))
	rs := testutil.ClusteredDataset(rng, clusterJoinN/5, 5, serveK, 30*serveK)
	opts := rankjoin.Options{Algorithm: rankjoin.AlgCLP, Theta: theta}

	before := f.Peers[0].Cluster.StatusSnapshot()
	t0 := time.Now()
	got, err := f.Peers[0].Cluster.DistributedJoin(context.Background(), rs, opts)
	wire := time.Since(t0)
	if err != nil {
		return nil, fmt.Errorf("cluster join: %w", err)
	}
	after := f.Peers[0].Cluster.StatusSnapshot()

	t0 = time.Now()
	want, err := rankjoin.NewEngine(rankjoin.EngineConfig{}).Join(rs, opts)
	local := time.Since(t0)
	if err != nil {
		return nil, fmt.Errorf("single-node join: %w", err)
	}
	if len(got.Pairs) != len(want.Pairs) {
		return nil, fmt.Errorf("cluster join returned %d pairs, single-node %d", len(got.Pairs), len(want.Pairs))
	}

	return &result{
		Name:    fmt.Sprintf("cluster/join/clp/peers=%d/n=%d", clusterPeers, clusterJoinN),
		NsPerOp: float64(wire.Nanoseconds()),
		Metrics: map[string]float64{
			"pairs":          float64(len(got.Pairs)),
			"single_node_ns": float64(local.Nanoseconds()),
			"wire_overhead":  wire.Seconds()/local.Seconds() - 1,
			"frames_sent":    float64(after.FramesSent - before.FramesSent),
			"bytes_sent":     float64(after.BytesSent - before.BytesSent),
			"peers":          clusterPeers,
		},
	}, nil
}
