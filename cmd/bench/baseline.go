package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// Baseline regression gate (Bench 4): -baseline FILE compares the
// current report against a checked-in earlier one and fails the run
// when any shared benchmark regressed by more than -max-regress.
//
// Comparison is by benchmark name; benchmarks present on only one side
// are ignored, and so are signals absent from the baseline row, so the
// baseline can be a curated subset — CI pins only the
// hardware-independent allocs/op rows of the shard sweeps, dropping
// timings and QPS that would flake across runner generations — while
// -out keeps recording everything. Three signals are compared, each in
// its own regression direction:
//
//   - ns_per_op: higher is worse;
//   - metrics.qps: lower is worse;
//   - metrics.allocs_per_op: higher is worse — and since the arena
//     baselines are zero, the multiplicative margin makes ANY new
//     steady-state allocation a failure, which is the point.
func compareBaseline(rep report, path string, maxRegress float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	byName := make(map[string]result, len(base.Results))
	for _, r := range base.Results {
		byName[r.Name] = r
	}

	var failures []string
	compared := 0
	check := func(name, signal string, cur, old float64, higherWorse bool) {
		compared++
		if old == 0 && cur == 0 {
			// Zero held at zero: a genuine (and passing) comparison —
			// the allocs/op gate lives here — just not worth a log line.
			return
		}
		regressed := false
		if higherWorse {
			regressed = cur > old*(1+maxRegress)
		} else {
			regressed = cur < old*(1-maxRegress)
		}
		status := "ok"
		if regressed {
			status = "REGRESSED"
			failures = append(failures, fmt.Sprintf("%s %s: %.1f vs baseline %.1f (max regress %.0f%%)",
				name, signal, cur, old, maxRegress*100))
		}
		fmt.Fprintf(os.Stderr, "baseline %-42s %-13s %12.1f -> %12.1f  %s\n",
			name, signal, old, cur, status)
	}
	for _, cur := range rep.Results {
		old, ok := byName[cur.Name]
		if !ok {
			continue
		}
		if old.NsPerOp > 0 && cur.NsPerOp > 0 {
			check(cur.Name, "ns_per_op", cur.NsPerOp, old.NsPerOp, true)
		}
		if bq, ok := old.Metrics["qps"]; ok {
			if cq, ok := cur.Metrics["qps"]; ok {
				check(cur.Name, "qps", cq, bq, false)
			}
		}
		if ba, ok := old.Metrics["allocs_per_op"]; ok {
			if ca, ok := cur.Metrics["allocs_per_op"]; ok {
				check(cur.Name, "allocs_per_op", ca, ba, true)
			}
		}
	}
	if compared == 0 {
		return fmt.Errorf("baseline %s shares no benchmarks with this run", path)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "bench: regression:", f)
		}
		return fmt.Errorf("%d benchmark(s) regressed beyond %.0f%%", len(failures), maxRegress*100)
	}
	fmt.Fprintf(os.Stderr, "baseline: %d signals within %.0f%% of %s\n", compared, maxRegress*100, path)
	return nil
}
