package main

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"rankjoin/internal/rankings"
	"rankjoin/internal/shard"
	"rankjoin/internal/testutil"
)

// The -shard micro-benchmarks (Bench 4): the serving path without HTTP
// in the way. Each benchmark drives a reused shard.Batch arena — the
// same object the server's dispatcher holds — so the numbers isolate
// the index sweep itself: signature prefilter, pivot triangle filter,
// verification kernel. allocs/op is reported for every benchmark; the
// arena contract says steady state is zero, and the checked-in CI
// baseline turns any regression of that into a build failure.

const shardBatchWidth = 8 // queries per fused SearchBatchInto sweep

func shardBenches(sizes []int) ([]result, error) {
	var out []result
	for _, n := range sizes {
		rs, err := shardBench(n)
		if err != nil {
			return nil, fmt.Errorf("shard n=%d: %w", n, err)
		}
		out = append(out, rs...)
	}
	return out, nil
}

func shardBench(n int) ([]result, error) {
	// Same workload as the -serve benches so shard/* and serve/* rows
	// at equal n differ only by the HTTP + dispatcher layers.
	rng := rand.New(rand.NewSource(99))
	data := testutil.ClusteredDataset(rng, n/5, 5, serveK, 30*serveK)
	idx := shard.New(shard.Config{})
	for _, r := range data {
		if err := idx.Insert(r); err != nil {
			return nil, err
		}
	}
	if err := waitForPivots(idx); err != nil {
		return nil, err
	}
	maxDist := rankings.Threshold(serveTheta, serveK)
	b := idx.NewBatch()

	qrng := rand.New(rand.NewSource(1234))
	pick := func() *rankings.Ranking { return data[qrng.Intn(len(data))] }
	batch := make([]shard.Query, shardBatchWidth)
	for i := range batch {
		q := pick()
		if i == len(batch)-1 {
			batch[i] = shard.Query{R: q, KNN: serveKNN, Exclude: q.ID}
		} else {
			batch[i] = shard.Query{R: q, MaxDist: maxDist, Exclude: q.ID}
		}
	}

	cases := []struct {
		name    string
		queries float64 // index queries answered per op
		fn      func() error
	}{
		{"search_into", 1, func() error {
			q := pick()
			_, err := b.SearchInto(q, maxDist, q.ID)
			return err
		}},
		{"knn_into", 1, func() error {
			q := pick()
			_, err := b.KNNInto(q, serveKNN, q.ID)
			return err
		}},
		{fmt.Sprintf("batch%d_into", shardBatchWidth), shardBatchWidth, func() error {
			_, err := b.SearchBatchInto(batch, nil)
			return err
		}},
	}

	var out []result
	for _, c := range cases {
		fn := c.fn
		if err := fn(); err != nil { // warm the arena to its high-water mark
			return nil, err
		}
		br := testing.Benchmark(func(tb *testing.B) {
			tb.ReportAllocs()
			for i := 0; i < tb.N; i++ {
				if err := fn(); err != nil {
					tb.Fatal(err)
				}
			}
		})
		nsPerOp := float64(br.T.Nanoseconds()) / float64(br.N)
		out = append(out, result{
			Name:    fmt.Sprintf("shard/%s/n=%d", c.name, n),
			NsPerOp: nsPerOp,
			Metrics: map[string]float64{
				"allocs_per_op": float64(br.AllocsPerOp()),
				"bytes_per_op":  float64(br.AllocedBytesPerOp()),
				"qps":           c.queries / (nsPerOp / 1e9),
				"rankings":      float64(n),
			},
		})
	}
	return out, nil
}

// waitForPivots blocks until every shard's background pivot build has
// landed, so the benchmarks measure the filtered steady state rather
// than the pivotless bootstrap scan.
func waitForPivots(idx *shard.Index) error {
	deadline := time.Now().Add(10 * time.Second)
	for {
		ready := true
		for _, st := range idx.Stats() {
			if st.Size > 0 && st.Pivots == 0 {
				ready = false
				break
			}
		}
		if ready {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("shards never finished building pivots")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
