// Command bench measures the engine and kernel hot paths and emits a
// machine-readable JSON report, establishing the performance trajectory
// of the repository (BENCH_<n>.json per perf PR).
//
// It covers the three costs every algorithm in the paper bottoms out
// in:
//
//   - the Footrule verification kernel (flat merged-index path vs a
//     map-index reference implementation, the pre-overhaul design);
//   - the hash-partitioned shuffle of internal/flow (fused
//     scatter+gather);
//   - the final deduplication stage (map-side combining vs a naive
//     shuffle-everything reference), reported in records moved across
//     the exchange;
//   - one macro join per algorithm family with the engine's stage
//     timing snapshot.
//
// Usage:
//
//	go run ./cmd/bench -out BENCH_1.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"rankjoin"
	"rankjoin/internal/flow"
	"rankjoin/internal/rankings"
	"rankjoin/internal/testutil"
)

type result struct {
	Name    string             `json:"name"`
	NsPerOp float64            `json:"ns_per_op,omitempty"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

type report struct {
	Bench   int      `json:"bench"`
	Go      string   `json:"go"`
	GOOS    string   `json:"goos"`
	GOARCH  string   `json:"goarch"`
	Results []result `json:"results"`
}

func main() {
	out := flag.String("out", "", "write the JSON report to this file (default stdout)")
	n := flag.Int("n", 4000, "macro-join dataset size (rankings)")
	k := flag.Int("k", 10, "ranking length for macro joins")
	theta := flag.Float64("theta", 0.3, "join threshold for macro joins")
	flag.Parse()

	rep := report{Bench: 1, Go: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH}
	add := func(r result) {
		rep.Results = append(rep.Results, r)
		fmt.Fprintf(os.Stderr, "%-40s %12.1f ns/op  %v\n", r.Name, r.NsPerOp, r.Metrics)
	}

	for _, kk := range []int{10, 25} {
		add(kernelBench(fmt.Sprintf("footrule/flat/k=%d", kk), kk, footruleFlat))
		add(kernelBench(fmt.Sprintf("footrule/mapref/k=%d", kk), kk, newMapRef()))
		add(kernelBench(fmt.Sprintf("footrule_within/flat/k=%d", kk), kk, withinFlat))
	}
	add(shuffleBench())
	naive, combined := dedupBench()
	add(naive)
	add(combined)
	for _, algo := range []rankjoin.Algorithm{rankjoin.AlgVJ, rankjoin.AlgVJNL, rankjoin.AlgCL} {
		add(joinBench(algo, *n, *k, *theta))
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}

// kernelPool draws a fixed pool of indexed ranking pairs over a domain
// of 2k items — the overlap mix a posting-list partition hands the
// verification kernel.
func kernelPool(k int) (as, bs []*rankings.Ranking) {
	rng := rand.New(rand.NewSource(42))
	as = make([]*rankings.Ranking, 256)
	bs = make([]*rankings.Ranking, 256)
	for i := range as {
		as[i] = testutil.RandRanking(rng, int64(i), k, 2*k)
		bs[i] = testutil.RandRanking(rng, int64(1000+i), k, 2*k)
	}
	return as, bs
}

func kernelBench(name string, k int, kernel func(a, b *rankings.Ranking) int) result {
	as, bs := kernelPool(k)
	br := testing.Benchmark(func(b *testing.B) {
		var sink int
		for i := 0; i < b.N; i++ {
			j := i & 255
			sink += kernel(as[j], bs[j])
		}
		_ = sink
	})
	return result{Name: name, NsPerOp: float64(br.T.Nanoseconds()) / float64(br.N)}
}

func footruleFlat(a, b *rankings.Ranking) int { return rankings.Footrule(a, b) }

func withinFlat(a, b *rankings.Ranking) int {
	d, _ := rankings.FootruleWithin(a, b, rankings.Threshold(0.3, a.K()))
	return d
}

// newMapRef reproduces the pre-overhaul kernel: per-ranking
// map[Item]rank indexes probed once per item from both sides.
func newMapRef() func(a, b *rankings.Ranking) int {
	cache := make(map[*rankings.Ranking]map[rankings.Item]int32)
	idx := func(r *rankings.Ranking) map[rankings.Item]int32 {
		if m, ok := cache[r]; ok {
			return m
		}
		m := make(map[rankings.Item]int32, len(r.Items))
		for rank, it := range r.Items {
			m[it] = int32(rank)
		}
		cache[r] = m
		return m
	}
	return func(a, b *rankings.Ranking) int {
		pa, pb := idx(a), idx(b)
		k := len(a.Items)
		d := 0
		for rank, it := range a.Items {
			if rb, ok := pb[it]; ok {
				diff := rank - int(rb)
				if diff < 0 {
					diff = -diff
				}
				d += diff
			} else {
				d += k - rank
			}
		}
		for rank, it := range b.Items {
			if _, ok := pa[it]; !ok {
				d += k - rank
			}
		}
		return d
	}
}

func shuffleBench() result {
	kvs := make([]flow.KV[int64, int64], 1<<18)
	for i := range kvs {
		kvs[i] = flow.KV[int64, int64]{K: int64(i), V: int64(i)}
	}
	br := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ctx := flow.NewContext(flow.Config{Workers: 4})
			sh := flow.PartitionByKey(flow.Parallelize(ctx, kvs, 16), 16)
			if _, err := sh.Count(); err != nil {
				b.Fatal(err)
			}
		}
	})
	nsPerOp := float64(br.T.Nanoseconds()) / float64(br.N)
	return result{
		Name:    "shuffle/partition_by_key/256k",
		NsPerOp: nsPerOp,
		Metrics: map[string]float64{"mb_per_s": float64(len(kvs)*16) / (nsPerOp / 1e9) / 1e6},
	}
}

// dedupBench contrasts the final deduplication stage with and without
// map-side combining on duplicate-heavy data (8 copies per value, the
// shape prefix-filtering joins emit). The headline number is
// shuffle_records: how many records cross the exchange.
func dedupBench() (naive, combined result) {
	type pairKey struct{ A, B int64 }
	const n, dup, parts = 1 << 17, 8, 16
	data := make([]pairKey, n)
	for i := range data {
		data[i] = pairKey{A: int64(i / dup), B: int64(i/dup + 1)}
	}
	// Naive reference: shuffle every record, dedup reduce-side only.
	naiveDistinct := func(ctx *flow.Context) (int, error) {
		keyed := flow.Map(flow.Parallelize(ctx, data, parts),
			func(v pairKey) flow.KV[pairKey, struct{}] { return flow.KV[pairKey, struct{}]{K: v} })
		sh := flow.PartitionByKey(keyed, parts)
		ded := flow.MapPartitions(sh, func(_ int, in []flow.KV[pairKey, struct{}]) ([]pairKey, error) {
			seen := make(map[pairKey]struct{}, len(in))
			out := make([]pairKey, 0, len(in))
			for _, kv := range in {
				if _, dup := seen[kv.K]; dup {
					continue
				}
				seen[kv.K] = struct{}{}
				out = append(out, kv.K)
			}
			return out, nil
		})
		got, err := ded.Collect()
		return len(got), err
	}

	var shuffled int64
	br := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ctx := flow.NewContext(flow.Config{Workers: 4})
			got, err := naiveDistinct(ctx)
			if err != nil || got != n/dup {
				b.Fatalf("naive distinct = %d (%v)", got, err)
			}
			shuffled = ctx.Snapshot().ShuffleRecords
		}
	})
	naive = result{
		Name:    "dedup/naive_shuffle_all/1m_dup8",
		NsPerOp: float64(br.T.Nanoseconds()) / float64(br.N),
		Metrics: map[string]float64{"shuffle_records": float64(shuffled)},
	}

	br = testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ctx := flow.NewContext(flow.Config{Workers: 4})
			got, err := flow.Distinct(flow.Parallelize(ctx, data, parts), parts).Collect()
			if err != nil || len(got) != n/dup {
				b.Fatalf("distinct = %d (%v)", len(got), err)
			}
			shuffled = ctx.Snapshot().ShuffleRecords
		}
	})
	combined = result{
		Name:    "dedup/map_side_combine/1m_dup8",
		NsPerOp: float64(br.T.Nanoseconds()) / float64(br.N),
		Metrics: map[string]float64{"shuffle_records": float64(shuffled)},
	}
	return naive, combined
}

func joinBench(algo rankjoin.Algorithm, n, k int, theta float64) result {
	rng := rand.New(rand.NewSource(7))
	rs := testutil.ClusteredDataset(rng, n/5, 4, k, 30*k)
	var snap flow.MetricsSnapshot
	var pairs int
	br := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := rankjoin.Join(rs, rankjoin.Options{Algorithm: algo, Theta: theta})
			if err != nil {
				b.Fatal(err)
			}
			pairs = len(res.Pairs)
			snap = res.Engine
		}
	})
	m := map[string]float64{
		"pairs":            float64(pairs),
		"shuffle_records":  float64(snap.ShuffleRecords),
		"shuffle_time_ns":  float64(snap.ShuffleTime.Nanoseconds()),
		"tasks":            float64(snap.Tasks),
		"max_partition":    float64(snap.MaxPartitionRecords),
		"rankings":         float64(len(rs)),
	}
	for name, d := range snap.Stages {
		m["stage:"+name+"_ns"] = float64(d.Nanoseconds())
	}
	return result{
		Name:    fmt.Sprintf("join/%s/theta=%.1f", algo, theta),
		NsPerOp: float64(br.T.Nanoseconds()) / float64(br.N),
		Metrics: m,
	}
}
