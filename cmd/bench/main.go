// Command bench measures the engine and kernel hot paths and emits a
// machine-readable JSON report, establishing the performance trajectory
// of the repository (BENCH_<n>.json per perf PR).
//
// It covers the three costs every algorithm in the paper bottoms out
// in:
//
//   - the Footrule verification kernel (flat merged-index path vs a
//     map-index reference implementation, the pre-overhaul design);
//   - the hash-partitioned shuffle of internal/flow (fused
//     scatter+gather);
//   - the final deduplication stage (map-side combining vs a naive
//     shuffle-everything reference), reported in records moved across
//     the exchange;
//   - one macro join per algorithm family with the engine's stage
//     timing snapshot, filter-effectiveness counters, and skew
//     histogram summaries (Bench 2).
//
// Observability flags (Bench 2):
//
//   - -trace-out FILE runs one traced CL-P macro join, exports the
//     span forest as Chrome trace-event JSON (load in Perfetto or
//     chrome://tracing), and fails unless the trace parses and
//     contains all four CL phase spans plus per-partition tasks;
//   - -guard benchmarks the macro join with tracing detached vs
//     attached (min of -guard-rounds) and fails when the attached run
//     exceeds the detached one by more than 2%;
//   - -debug-addr ADDR serves expvar + pprof for the duration.
//
// Serving flags (Bench 3):
//
//   - -serve boots the rankserved HTTP stack (sharded index + server)
//     in-process and measures QPS and exact p50/p99 request latency
//     for /v1/search and /v1/knn under concurrent clients at two
//     dataset sizes.
//
// Serving-path flags (Bench 4):
//
//   - -shard runs the shard.Batch micro-benchmarks (the serving path
//     minus HTTP) at the -serve dataset sizes, recording ns/op,
//     allocs/op and bytes/op for the arena-backed SearchInto, KNNInto
//     and fused SearchBatchInto sweeps;
//   - -baseline FILE compares the report against a checked-in earlier
//     one and exits nonzero when any shared benchmark regressed beyond
//     -max-regress (default 25%); CI runs this against
//     results/bench_baseline.json on every push.
//
// Telemetry flags (Bench 5):
//
//   - -serve-guard replays one request sequence through the in-process
//     rankserved handler stack with serving-plane telemetry at
//     production defaults vs fully disabled (min of -guard-rounds) and
//     fails when telemetry costs more than 2%.
//
// Usage:
//
//	go run ./cmd/bench -out BENCH_4.json -trace-out trace.json -guard -serve -shard
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"rankjoin"
	"rankjoin/internal/flow"
	"rankjoin/internal/obs"
	"rankjoin/internal/rankings"
	"rankjoin/internal/testutil"
)

type result struct {
	Name    string             `json:"name"`
	NsPerOp float64            `json:"ns_per_op,omitempty"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

type report struct {
	Bench      int      `json:"bench"`
	Go         string   `json:"go"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	CPU        string   `json:"cpu,omitempty"`
	Results    []result `json:"results"`
}

// cpuModel best-effort identifies the host CPU so reports from
// different machines are never compared as if they were one. Linux
// exposes it in /proc/cpuinfo; elsewhere (or in stripped containers)
// the field is simply omitted.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		name, value, ok := strings.Cut(line, ":")
		if ok && strings.TrimSpace(name) == "model name" {
			return strings.TrimSpace(value)
		}
	}
	return ""
}

func main() {
	out := flag.String("out", "", "write the JSON report to this file (default stdout)")
	n := flag.Int("n", 4000, "macro-join dataset size (rankings)")
	k := flag.Int("k", 10, "ranking length for macro joins")
	theta := flag.Float64("theta", 0.3, "join threshold for macro joins")
	traceOut := flag.String("trace-out", "", "run a traced CL-P macro join and write Chrome trace JSON here")
	guard := flag.Bool("guard", false, "fail if attaching a tracer slows the macro join by >2%")
	guardRounds := flag.Int("guard-rounds", 5, "rounds per mode for the -guard comparison (min wins)")
	debugAddr := flag.String("debug-addr", "", "serve expvar+pprof on this address for the duration")
	serve := flag.Bool("serve", false, "benchmark the rankserved HTTP stack (QPS, p50/p99 latency)")
	serveGuard := flag.Bool("serve-guard", false, "fail if serving-plane telemetry adds >2% to request handling")
	shardFlag := flag.Bool("shard", false, "benchmark the shard.Batch serving path (ns/op, allocs/op)")
	clusterFlag := flag.Bool("cluster", false, "benchmark a 3-peer cluster: scatter-gather QPS and a distributed join (report bench 5)")
	baseline := flag.String("baseline", "", "fail when shared benchmarks regress beyond -max-regress vs this report")
	maxRegress := flag.Float64("max-regress", 0.25, "allowed fractional regression for -baseline comparisons")
	flag.Parse()

	if *debugAddr != "" {
		dbg, err := obs.ServeDebug(*debugAddr)
		if err != nil {
			fatal(err)
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "bench: debug listener on http://%s/debug/vars\n", dbg.Addr())
	}

	rep := report{
		Bench:      4,
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPU:        cpuModel(),
	}
	if *clusterFlag {
		rep.Bench = 5
	}
	add := func(r result) {
		rep.Results = append(rep.Results, r)
		fmt.Fprintf(os.Stderr, "%-40s %12.1f ns/op  %v\n", r.Name, r.NsPerOp, r.Metrics)
	}

	for _, kk := range []int{10, 25} {
		add(kernelBench(fmt.Sprintf("footrule/flat/k=%d", kk), kk, footruleFlat))
		add(kernelBench(fmt.Sprintf("footrule/mapref/k=%d", kk), kk, newMapRef()))
		add(kernelBench(fmt.Sprintf("footrule_within/flat/k=%d", kk), kk, withinFlat))
	}
	add(shuffleBench())
	naive, combined := dedupBench()
	add(naive)
	add(combined)

	rs := macroDataset(*n, *k)
	algos := []rankjoin.Algorithm{rankjoin.AlgVJ, rankjoin.AlgVJNL, rankjoin.AlgCL, rankjoin.AlgCLP}
	for _, algo := range algos {
		add(joinBench(algo, rs, *theta))
	}
	if *traceOut != "" {
		r, err := tracedJoin(*traceOut, rs, *theta)
		if err != nil {
			fatal(err)
		}
		add(r)
	}
	if *guard {
		r, err := overheadGuard(rs, *theta, *guardRounds)
		if err != nil {
			fatal(err)
		}
		add(r)
	}
	if *shardFlag {
		srs, err := shardBenches([]int{2000, 10000})
		if err != nil {
			fatal(err)
		}
		for _, r := range srs {
			add(r)
		}
	}
	if *serve {
		srs, err := serveBenches([]int{2000, 10000})
		if err != nil {
			fatal(err)
		}
		for _, r := range srs {
			add(r)
		}
	}
	if *clusterFlag {
		crs, err := clusterBenches(*theta)
		if err != nil {
			fatal(err)
		}
		for _, r := range crs {
			add(r)
		}
	}
	if *serveGuard {
		r, err := telemetryGuard(*guardRounds)
		if err != nil {
			fatal(err)
		}
		add(r)
	}
	if *baseline != "" {
		if err := compareBaseline(rep, *baseline, *maxRegress); err != nil {
			fatal(err)
		}
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}

// kernelPool draws a fixed pool of indexed ranking pairs over a domain
// of 2k items — the overlap mix a posting-list partition hands the
// verification kernel.
func kernelPool(k int) (as, bs []*rankings.Ranking) {
	rng := rand.New(rand.NewSource(42))
	as = make([]*rankings.Ranking, 256)
	bs = make([]*rankings.Ranking, 256)
	for i := range as {
		as[i] = testutil.RandRanking(rng, int64(i), k, 2*k)
		bs[i] = testutil.RandRanking(rng, int64(1000+i), k, 2*k)
	}
	return as, bs
}

func kernelBench(name string, k int, kernel func(a, b *rankings.Ranking) int) result {
	as, bs := kernelPool(k)
	br := testing.Benchmark(func(b *testing.B) {
		var sink int
		for i := 0; i < b.N; i++ {
			j := i & 255
			sink += kernel(as[j], bs[j])
		}
		_ = sink
	})
	return result{Name: name, NsPerOp: float64(br.T.Nanoseconds()) / float64(br.N)}
}

func footruleFlat(a, b *rankings.Ranking) int { return rankings.Footrule(a, b) }

func withinFlat(a, b *rankings.Ranking) int {
	d, _ := rankings.FootruleWithin(a, b, rankings.Threshold(0.3, a.K()))
	return d
}

// newMapRef reproduces the pre-overhaul kernel: per-ranking
// map[Item]rank indexes probed once per item from both sides.
func newMapRef() func(a, b *rankings.Ranking) int {
	cache := make(map[*rankings.Ranking]map[rankings.Item]int32)
	idx := func(r *rankings.Ranking) map[rankings.Item]int32 {
		if m, ok := cache[r]; ok {
			return m
		}
		m := make(map[rankings.Item]int32, len(r.Items))
		for rank, it := range r.Items {
			m[it] = int32(rank)
		}
		cache[r] = m
		return m
	}
	return func(a, b *rankings.Ranking) int {
		pa, pb := idx(a), idx(b)
		k := len(a.Items)
		d := 0
		for rank, it := range a.Items {
			if rb, ok := pb[it]; ok {
				diff := rank - int(rb)
				if diff < 0 {
					diff = -diff
				}
				d += diff
			} else {
				d += k - rank
			}
		}
		for rank, it := range b.Items {
			if _, ok := pa[it]; !ok {
				d += k - rank
			}
		}
		return d
	}
}

func shuffleBench() result {
	kvs := make([]flow.KV[int64, int64], 1<<18)
	for i := range kvs {
		kvs[i] = flow.KV[int64, int64]{K: int64(i), V: int64(i)}
	}
	br := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ctx := flow.NewContext(flow.Config{Workers: 4})
			sh := flow.PartitionByKey(flow.Parallelize(ctx, kvs, 16), 16)
			if _, err := sh.Count(); err != nil {
				b.Fatal(err)
			}
		}
	})
	nsPerOp := float64(br.T.Nanoseconds()) / float64(br.N)
	return result{
		Name:    "shuffle/partition_by_key/256k",
		NsPerOp: nsPerOp,
		Metrics: map[string]float64{"mb_per_s": float64(len(kvs)*16) / (nsPerOp / 1e9) / 1e6},
	}
}

// dedupBench contrasts the final deduplication stage with and without
// map-side combining on duplicate-heavy data (8 copies per value, the
// shape prefix-filtering joins emit). The headline number is
// shuffle_records: how many records cross the exchange.
func dedupBench() (naive, combined result) {
	type pairKey struct{ A, B int64 }
	const n, dup, parts = 1 << 17, 8, 16
	data := make([]pairKey, n)
	for i := range data {
		data[i] = pairKey{A: int64(i / dup), B: int64(i/dup + 1)}
	}
	// Naive reference: shuffle every record, dedup reduce-side only.
	naiveDistinct := func(ctx *flow.Context) (int, error) {
		keyed := flow.Map(flow.Parallelize(ctx, data, parts),
			func(v pairKey) flow.KV[pairKey, struct{}] { return flow.KV[pairKey, struct{}]{K: v} })
		sh := flow.PartitionByKey(keyed, parts)
		ded := flow.MapPartitions(sh, func(_ int, in []flow.KV[pairKey, struct{}]) ([]pairKey, error) {
			seen := make(map[pairKey]struct{}, len(in))
			out := make([]pairKey, 0, len(in))
			for _, kv := range in {
				if _, dup := seen[kv.K]; dup {
					continue
				}
				seen[kv.K] = struct{}{}
				out = append(out, kv.K)
			}
			return out, nil
		})
		got, err := ded.Collect()
		return len(got), err
	}

	var shuffled int64
	br := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ctx := flow.NewContext(flow.Config{Workers: 4})
			got, err := naiveDistinct(ctx)
			if err != nil || got != n/dup {
				b.Fatalf("naive distinct = %d (%v)", got, err)
			}
			shuffled = ctx.Snapshot().ShuffleRecords
		}
	})
	naive = result{
		Name:    "dedup/naive_shuffle_all/1m_dup8",
		NsPerOp: float64(br.T.Nanoseconds()) / float64(br.N),
		Metrics: map[string]float64{"shuffle_records": float64(shuffled)},
	}

	br = testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ctx := flow.NewContext(flow.Config{Workers: 4})
			got, err := flow.Distinct(flow.Parallelize(ctx, data, parts), parts).Collect()
			if err != nil || len(got) != n/dup {
				b.Fatalf("distinct = %d (%v)", len(got), err)
			}
			shuffled = ctx.Snapshot().ShuffleRecords
		}
	})
	combined = result{
		Name:    "dedup/map_side_combine/1m_dup8",
		NsPerOp: float64(br.T.Nanoseconds()) / float64(br.N),
		Metrics: map[string]float64{"shuffle_records": float64(shuffled)},
	}
	return naive, combined
}

// macroDataset is the shared macro-join workload: clustered so CL has
// structure to exploit, seeded so BENCH reports compare across PRs.
func macroDataset(n, k int) []*rankings.Ranking {
	rng := rand.New(rand.NewSource(7))
	return testutil.ClusteredDataset(rng, n/5, 4, k, 30*k)
}

// clpThetaC is the clustering threshold used for the CL-P macro join
// and the traced run. The paper's default 0.03 produces near-singleton
// clusters on this workload, leaving the expansion phase (and its
// triangle-inequality filter) idle; 0.15 yields real clusters so the
// report captures every stage of the filter cascade. CL keeps the
// default for comparability with earlier BENCH reports.
const clpThetaC = 0.15

func joinOpts(algo rankjoin.Algorithm, theta float64) rankjoin.Options {
	opts := rankjoin.Options{Algorithm: algo, Theta: theta}
	if algo == rankjoin.AlgCLP {
		opts.ThetaC = clpThetaC
	}
	return opts
}

func joinBench(algo rankjoin.Algorithm, rs []*rankings.Ranking, theta float64) result {
	var snap flow.MetricsSnapshot
	var filters rankjoin.FilterStats
	var pairs int
	br := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := rankjoin.Join(rs, joinOpts(algo, theta))
			if err != nil {
				b.Fatal(err)
			}
			pairs = len(res.Pairs)
			snap = res.Engine
			filters = res.Filters
		}
	})
	m := map[string]float64{
		"pairs":           float64(pairs),
		"shuffle_records": float64(snap.ShuffleRecords),
		"shuffle_time_ns": float64(snap.ShuffleTime.Nanoseconds()),
		"tasks":           float64(snap.Tasks),
		"max_partition":   float64(snap.MaxPartitionRecords),
		"rankings":        float64(len(rs)),
	}
	for name, d := range snap.Stages {
		m["stage:"+name+"_ns"] = float64(d.Nanoseconds())
	}
	addFilterMetrics(m, filters)
	for name, h := range snap.Histograms {
		m["hist:"+name+"_p50"] = float64(h.Quantile(0.50))
		m["hist:"+name+"_p95"] = float64(h.Quantile(0.95))
		m["hist:"+name+"_max"] = float64(h.Max)
	}
	return result{
		Name:    fmt.Sprintf("join/%s/theta=%.1f", algo, theta),
		NsPerOp: float64(br.T.Nanoseconds()) / float64(br.N),
		Metrics: m,
	}
}

func addFilterMetrics(m map[string]float64, f rankjoin.FilterStats) {
	m["filters_generated"] = float64(f.Generated)
	m["filters_pruned_prefix"] = float64(f.PrunedPrefix)
	m["filters_pruned_signature"] = float64(f.PrunedSignature)
	m["filters_pruned_position"] = float64(f.PrunedPosition)
	m["filters_pruned_triangle"] = float64(f.PrunedTriangle)
	m["filters_accepted_unverified"] = float64(f.AcceptedUnverified)
	m["filters_verified"] = float64(f.Verified)
	m["filters_emitted"] = float64(f.Emitted)
	conserved := 0.0
	if f.Conserved() {
		conserved = 1
	}
	m["filters_conserved"] = conserved
}

// tracedJoin runs one CL-P macro join with a tracer attached, writes
// the Chrome trace to path, and validates it: the span forest must be
// well-formed, the exported JSON must parse, and it must contain all
// four CL phase spans plus per-partition task events.
func tracedJoin(path string, rs []*rankings.Ranking, theta float64) (result, error) {
	e := rankjoin.NewEngine(rankjoin.EngineConfig{})
	defer e.Close()
	tr := rankjoin.NewTracer()
	e.SetTracer(tr)
	start := time.Now()
	res, err := e.Join(rs, joinOpts(rankjoin.AlgCLP, theta))
	if err != nil {
		return result{}, err
	}
	wall := time.Since(start)
	if err := tr.Validate(); err != nil {
		return result{}, fmt.Errorf("trace ill-formed: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return result{}, err
	}
	if err := tr.WriteChromeTrace(f); err != nil {
		f.Close()
		return result{}, err
	}
	if err := f.Close(); err != nil {
		return result{}, err
	}
	events, tasks, err := checkTrace(path)
	if err != nil {
		return result{}, err
	}
	m := map[string]float64{
		"pairs":        float64(len(res.Pairs)),
		"trace_events": float64(events),
		"trace_tasks":  float64(tasks),
	}
	addFilterMetrics(m, res.Filters)
	return result{
		Name:    fmt.Sprintf("trace/CL-P/theta=%.1f", theta),
		NsPerOp: float64(wall.Nanoseconds()),
		Metrics: m,
	}, nil
}

// checkTrace re-reads the exported file the way Perfetto would: parse
// the JSON, then require the four CL phase scopes and at least one
// per-partition task event. Returns total event and task-event counts.
func checkTrace(path string) (events, tasks int, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	var file struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &file); err != nil {
		return 0, 0, fmt.Errorf("trace JSON unparseable: %w", err)
	}
	names := make(map[string]bool)
	for _, ev := range file.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		events++
		names[ev.Name] = true
		if ev.Cat == "task" {
			tasks++
		}
	}
	for _, phase := range []string{"cl/ordering", "cl/clustering", "cl/joining", "cl/expansion"} {
		if !names[phase] {
			return 0, 0, fmt.Errorf("trace missing phase span %q", phase)
		}
	}
	if tasks == 0 {
		return 0, 0, fmt.Errorf("trace has no per-partition task events")
	}
	return events, tasks, nil
}

// overheadGuard measures the macro join with the tracer detached (the
// default: every instrumentation site reduces to a nil check) and
// attached, min wall time of `rounds` each, and fails when attaching
// costs more than 2% plus a small absolute slack that keeps short CI
// smoke runs out of timer-noise territory. The detached numbers are
// the ones comparable against the pre-instrumentation BENCH_1.json
// joins — that comparison is committed alongside BENCH_2.json.
func overheadGuard(rs []*rankings.Ranking, theta float64, rounds int) (result, error) {
	if rounds < 1 {
		rounds = 1
	}
	run := func(traced bool) (time.Duration, error) {
		e := rankjoin.NewEngine(rankjoin.EngineConfig{})
		defer e.Close()
		if traced {
			e.SetTracer(rankjoin.NewTracer())
		}
		start := time.Now()
		_, err := e.Join(rs, rankjoin.Options{Algorithm: rankjoin.AlgCL, Theta: theta})
		return time.Since(start), err
	}
	// Warm both modes once so neither pays first-run page faults and
	// allocator growth in its measured rounds, then alternate modes
	// within each round so machine drift (GC pressure, thermal, noisy
	// neighbours) hits both equally instead of whichever ran last.
	var disabled, enabled time.Duration
	for i := -1; i < rounds; i++ {
		d, err := run(false)
		if err != nil {
			return result{}, err
		}
		en, err := run(true)
		if err != nil {
			return result{}, err
		}
		if i < 0 {
			continue // warm-up round
		}
		if disabled == 0 || d < disabled {
			disabled = d
		}
		if enabled == 0 || en < enabled {
			enabled = en
		}
	}
	ratio := float64(enabled) / float64(disabled)
	const slack = 5 * time.Millisecond
	limit := time.Duration(float64(disabled)*1.02) + slack
	if enabled > limit {
		return result{}, fmt.Errorf("tracing overhead guard: enabled %v > %v (disabled %v, ratio %.3f)",
			enabled, limit, disabled, ratio)
	}
	return result{
		Name:    "guard/trace_overhead/CL",
		NsPerOp: float64(disabled.Nanoseconds()),
		Metrics: map[string]float64{
			"disabled_ns": float64(disabled.Nanoseconds()),
			"enabled_ns":  float64(enabled.Nanoseconds()),
			"ratio":       ratio,
			"rounds":      float64(rounds),
		},
	}, nil
}
