package rankjoin

import (
	"errors"
	"fmt"

	"rankjoin/internal/metricspace"
	"rankjoin/internal/rankings"
)

// KendallTau computes Kendall's tau distance for top-k lists (Fagin et
// al.'s p=0 adaptation) — a companion measure to Footrule. The join
// algorithms use Footrule (a metric with known prefix bounds); tau is
// exposed for applications that want to re-rank or inspect results.
func KendallTau(a, b *Ranking) int { return rankings.KendallTau(a, b) }

// Errors reported by the search indexes.
var (
	// ErrEmptyIndex reports an attempt to build an index over zero
	// rankings. An empty index cannot fix the ranking length k, so
	// every later query would be unanswerable; fail at build time.
	ErrEmptyIndex = errors.New("rankjoin: cannot index an empty dataset")

	// ErrNilQuery reports a nil query ranking.
	ErrNilQuery = errors.New("rankjoin: nil query ranking")

	// ErrQueryLength reports a query whose length differs from the
	// indexed rankings' (Footrule thresholds are only comparable
	// between rankings of equal k).
	ErrQueryLength = errors.New("rankjoin: query length does not match indexed rankings")

	// ErrThetaRange reports a normalized distance threshold outside
	// [0, 1].
	ErrThetaRange = errors.New("rankjoin: theta must be in [0, 1]")
)

// Index is a metric range-search index over a ranking dataset: pivot
// distances are precomputed so that range queries prune most of the
// dataset with the triangle inequality before computing any real
// distance (the "coarse index" idea from the authors' earlier work on
// top-k-list similarity search).
type Index struct {
	idx *metricspace.PivotIndex
	k   int
}

// BuildIndex indexes the dataset with the given number of pivots
// (8–16 is a good range; more pivots prune better but cost more per
// query). The dataset must be non-empty (ErrEmptyIndex otherwise) and
// uniform-length.
func BuildIndex(rs []*Ranking, numPivots int) (*Index, error) {
	if len(rs) == 0 {
		return nil, ErrEmptyIndex
	}
	if err := checkUniform(rs); err != nil {
		return nil, err
	}
	idx, err := metricspace.BuildPivotIndex(rs, numPivots, 1)
	if err != nil {
		return nil, err
	}
	return &Index{idx: idx, k: rs[0].K()}, nil
}

// Search returns every indexed ranking within normalized Footrule
// distance theta of the query (excluding the query itself when it is
// indexed, matched by id), as canonical pairs sorted by (distance,
// ids). The query must have the indexed length (ErrQueryLength) and
// theta must lie in [0, 1] (ErrThetaRange).
func (x *Index) Search(q *Ranking, theta float64) ([]Pair, error) {
	if q == nil {
		return nil, ErrNilQuery
	}
	if q.K() != x.k {
		return nil, fmt.Errorf("%w: query has %d items, index has %d", ErrQueryLength, q.K(), x.k)
	}
	if theta < 0 || theta > 1 {
		return nil, fmt.Errorf("%w: got %g", ErrThetaRange, theta)
	}
	hits, _ := x.idx.RangeSearch(q, rankings.Threshold(theta, x.k))
	rankings.SortPairs(hits)
	return hits, nil
}
