package rankjoin

import (
	"rankjoin/internal/metricspace"
	"rankjoin/internal/rankings"
)

// KendallTau computes Kendall's tau distance for top-k lists (Fagin et
// al.'s p=0 adaptation) — a companion measure to Footrule. The join
// algorithms use Footrule (a metric with known prefix bounds); tau is
// exposed for applications that want to re-rank or inspect results.
func KendallTau(a, b *Ranking) int { return rankings.KendallTau(a, b) }

// Index is a metric range-search index over a ranking dataset: pivot
// distances are precomputed so that range queries prune most of the
// dataset with the triangle inequality before computing any real
// distance (the "coarse index" idea from the authors' earlier work on
// top-k-list similarity search).
type Index struct {
	idx *metricspace.PivotIndex
	k   int
}

// BuildIndex indexes the dataset with the given number of pivots
// (8–16 is a good range; more pivots prune better but cost more per
// query).
func BuildIndex(rs []*Ranking, numPivots int) (*Index, error) {
	if err := checkUniform(rs); err != nil {
		return nil, err
	}
	idx, err := metricspace.BuildPivotIndex(rs, numPivots, 1)
	if err != nil {
		return nil, err
	}
	k := 0
	if len(rs) > 0 {
		k = rs[0].K()
	}
	return &Index{idx: idx, k: k}, nil
}

// Search returns every indexed ranking within normalized Footrule
// distance theta of the query (excluding the query itself when it is
// indexed, matched by id), as canonical pairs.
func (x *Index) Search(q *Ranking, theta float64) []Pair {
	if x.k == 0 {
		return nil
	}
	hits, _ := x.idx.RangeSearch(q, rankings.Threshold(theta, x.k))
	rankings.SortPairs(hits)
	return hits
}
