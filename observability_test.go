package rankjoin_test

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"rankjoin"
	"rankjoin/internal/testutil"
)

// TestFilterConservation asserts the counter conservation law on a
// seeded join for every algorithm: every candidate a filter cascade
// generates is pruned (by prefix, position, or triangle), accepted
// unverified, or verified — nothing lost, nothing double-counted.
func TestFilterConservation(t *testing.T) {
	rs := sample(t, 3, 160, 10, 120)
	for _, alg := range []rankjoin.Algorithm{
		rankjoin.AlgBruteForce, rankjoin.AlgVJ, rankjoin.AlgVJNL,
		rankjoin.AlgCL, rankjoin.AlgCLP,
		rankjoin.AlgVSMART, rankjoin.AlgClusterJoin, rankjoin.AlgFSJoin,
	} {
		res, err := rankjoin.Join(rs, rankjoin.Options{Algorithm: alg, Theta: 0.25})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		f := res.Filters
		if f.Generated == 0 {
			t.Errorf("%v: no candidates generated", alg)
		}
		if !f.Conserved() {
			t.Errorf("%v: conservation violated: %s", alg, f)
		}
		if f.Verified == 0 && f.AcceptedUnverified == 0 {
			t.Errorf("%v: nothing verified: %s", alg, f)
		}
	}
}

// TestCLPAllFilterClassesFire pins a configuration where every pruning
// class of the CL-P cascade is exercised at once: signature, prefix and
// position pruning in the clustering/joining phases, triangle pruning
// in the expansion phase. The item domain is deliberately small (heavy
// item overlap): position pruning only fires on pairs that share items
// but misalign them, exactly the pairs the cheaper signature prefilter
// cannot touch.
func TestCLPAllFilterClassesFire(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rs := testutil.ClusteredDataset(rng, 300, 4, 10, 40)
	res, err := rankjoin.Join(rs, rankjoin.Options{
		Algorithm: rankjoin.AlgCLP,
		Theta:     0.3,
		ThetaC:    0.15, // large enough for non-singleton clusters
	})
	if err != nil {
		t.Fatal(err)
	}
	f := res.Filters
	if f.PrunedPrefix == 0 || f.PrunedSignature == 0 || f.PrunedPosition == 0 || f.PrunedTriangle == 0 {
		t.Errorf("expected all pruning classes non-zero, got %s", f)
	}
	if !f.Conserved() {
		t.Errorf("conservation violated: %s", f)
	}
	if f.Emitted == 0 {
		t.Errorf("no pairs emitted: %s", f)
	}
}

// TestJoinTraceWellFormed drives the public tracing API end to end: a
// traced CL-P join must produce a structurally valid span forest (all
// spans ended, children inside parents, no same-track sibling overlap)
// containing the four CL phases, and export parseable Chrome trace
// JSON with per-partition task events.
func TestJoinTraceWellFormed(t *testing.T) {
	rs := sample(t, 5, 200, 10, 150)
	e := rankjoin.NewEngine(rankjoin.EngineConfig{})
	defer e.Close()
	tr := rankjoin.NewTracer()
	e.SetTracer(tr)
	if _, err := e.Join(rs, rankjoin.Options{Algorithm: rankjoin.AlgCLP, Theta: 0.25}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("trace ill-formed: %v", err)
	}
	tree := tr.TreeString(2, false)
	for _, phase := range []string{"join/CL-P", "cl/ordering", "cl/clustering", "cl/joining", "cl/expansion", "join/dedup"} {
		if !strings.Contains(tree, phase) {
			t.Errorf("span tree missing %q:\n%s", phase, tree)
		}
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Cat  string `json:"cat"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("chrome trace unparseable: %v", err)
	}
	tasks := 0
	names := make(map[string]bool)
	for _, ev := range file.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		names[ev.Name] = true
		if ev.Cat == "task" {
			tasks++
		}
	}
	for _, phase := range []string{"cl/ordering", "cl/clustering", "cl/joining", "cl/expansion"} {
		if !names[phase] {
			t.Errorf("chrome trace missing phase span %q", phase)
		}
	}
	if tasks == 0 {
		t.Error("chrome trace has no per-partition task events")
	}
}

// TestResultFiltersSurvivesEngineReuse: each Join on a shared engine
// resets the counters, so Result.Filters describes that run alone.
func TestResultFiltersSurvivesEngineReuse(t *testing.T) {
	rs := sample(t, 9, 120, 10, 100)
	e := rankjoin.NewEngine(rankjoin.EngineConfig{})
	defer e.Close()
	first, err := e.Join(rs, rankjoin.Options{Algorithm: rankjoin.AlgVJ, Theta: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	second, err := e.Join(rs, rankjoin.Options{Algorithm: rankjoin.AlgVJ, Theta: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if first.Filters != second.Filters {
		t.Errorf("same join, different counters:\n first=%s\nsecond=%s", first.Filters, second.Filters)
	}
	if !second.Filters.Conserved() {
		t.Errorf("conservation violated after reuse: %s", second.Filters)
	}
}
