// Benchmarks regenerating every table and figure of the paper's
// evaluation (§7) at laptop scale, one benchmark per table/figure, plus
// the ablation benches for the design choices called out in DESIGN.md.
//
// Run all:  go test -bench=. -benchmem
// One:      go test -bench=BenchmarkFig6aDBLP -benchmem
//
// The figures' full sweeps (with 3-run averaging, DNF budgeting and
// table rendering) live in cmd/experiments; these benches measure the
// same cells through testing.B so regressions surface in CI.
package rankjoin_test

import (
	"fmt"
	"testing"

	"rankjoin/internal/core"
	"rankjoin/internal/dataset"
	"rankjoin/internal/experiments"
	"rankjoin/internal/flow"
	"rankjoin/internal/vj"
)

// benchParams sizes the benchmark datasets. Small enough that a full
// -bench=. sweep stays in the minutes range; grow via cmd/experiments
// for the full study.
func benchParams() experiments.Params {
	p := experiments.DefaultParams()
	p.DBLPBase = 1200
	p.ORKUBase = 1500
	p.Repeats = 1
	p.CellBudget = 0
	return p
}

func workload(b *testing.B, prof dataset.Profile, k, scale int) experiments.Workload {
	b.Helper()
	w, err := experiments.MakeWorkload(benchParams(), prof, k, scale)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

func benchCell(b *testing.B, w experiments.Workload, cfg experiments.RunConfig) {
	b.Helper()
	var pairs int
	for i := 0; i < b.N; i++ {
		m, err := experiments.Run(w, cfg)
		if err != nil {
			b.Fatal(err)
		}
		pairs = m.Pairs
	}
	b.ReportMetric(float64(pairs), "pairs")
}

// benchFigure6 runs the Figure 6 grid (4 algorithms × 4 thresholds) as
// sub-benchmarks.
func benchFigure6(b *testing.B, prof dataset.Profile, k, scale int) {
	w := workload(b, prof, k, scale)
	for _, algo := range experiments.AllAlgos {
		for _, th := range experiments.Thetas {
			b.Run(fmt.Sprintf("%s/theta=%.1f", algo, th), func(b *testing.B) {
				benchCell(b, w, experiments.RunConfig{Algo: algo, Theta: th})
			})
		}
	}
}

// BenchmarkFig6aDBLP — Figure 6(a): all algorithms vs θ on DBLP.
func BenchmarkFig6aDBLP(b *testing.B) { benchFigure6(b, dataset.DBLPLike, 10, 1) }

// BenchmarkFig6bDBLPx5 — Figure 6(b): DBLP ×5.
func BenchmarkFig6bDBLPx5(b *testing.B) { benchFigure6(b, dataset.DBLPLike, 10, 5) }

// BenchmarkFig6cDBLPx10 — Figure 6(c): DBLP ×10 (the paper's VJ DNFs).
func BenchmarkFig6cDBLPx10(b *testing.B) { benchFigure6(b, dataset.DBLPLike, 10, 10) }

// BenchmarkFig6dORKU — Figure 6(d): ORKU.
func BenchmarkFig6dORKU(b *testing.B) { benchFigure6(b, dataset.ORKULike, 10, 1) }

// BenchmarkFig6eORKUx5 — Figure 6(e): ORKU ×5.
func BenchmarkFig6eORKUx5(b *testing.B) { benchFigure6(b, dataset.ORKULike, 10, 5) }

// BenchmarkFig7Scalability — Figure 7: CL-P under a doubled worker
// budget ("4 vs 8 nodes") on DBLPx5 and ORKU.
func BenchmarkFig7Scalability(b *testing.B) {
	for _, ds := range []struct {
		prof  dataset.Profile
		scale int
	}{{dataset.DBLPLike, 5}, {dataset.ORKULike, 1}} {
		w := workload(b, ds.prof, 10, ds.scale)
		for _, workers := range []int{1, 2} {
			b.Run(fmt.Sprintf("%s/workers=%d", w.Name, workers), func(b *testing.B) {
				benchCell(b, w, experiments.RunConfig{
					Algo: experiments.AlgoCLP, Theta: 0.3, Workers: workers,
				})
			})
		}
	}
}

// BenchmarkFig8DatasetGrowth — Figure 8: CL-P across DBLP ×1/×5/×10.
func BenchmarkFig8DatasetGrowth(b *testing.B) {
	for _, scale := range []int{1, 5, 10} {
		w := workload(b, dataset.DBLPLike, 10, scale)
		for _, th := range experiments.Thetas {
			b.Run(fmt.Sprintf("x%d/theta=%.1f", scale, th), func(b *testing.B) {
				benchCell(b, w, experiments.RunConfig{Algo: experiments.AlgoCLP, Theta: th})
			})
		}
	}
}

// BenchmarkFig9ClusteringThreshold — Figure 9: CL across θc.
func BenchmarkFig9ClusteringThreshold(b *testing.B) {
	w := workload(b, dataset.ORKULike, 10, 1)
	for _, tc := range experiments.ThetaCs {
		for _, th := range []float64{0.2, 0.4} {
			b.Run(fmt.Sprintf("thetaC=%.2f/theta=%.1f", tc, th), func(b *testing.B) {
				benchCell(b, w, experiments.RunConfig{
					Algo: experiments.AlgoCL, Theta: th, ThetaC: tc,
				})
			})
		}
	}
}

// BenchmarkFig10PartitioningThreshold — Figure 10: CL-P across δ.
func BenchmarkFig10PartitioningThreshold(b *testing.B) {
	w := workload(b, dataset.ORKULike, 10, 1)
	n := len(w.Rankings)
	for _, delta := range []int{n / 32, n / 8, n / 2} {
		b.Run(fmt.Sprintf("delta=%d", delta), func(b *testing.B) {
			benchCell(b, w, experiments.RunConfig{
				Algo: experiments.AlgoCLP, Theta: 0.3, Delta: delta,
			})
		})
	}
}

// BenchmarkFig11K25 — Figure 11: all algorithms on k=25 rankings.
func BenchmarkFig11K25(b *testing.B) {
	w := workload(b, dataset.ORKULike, 25, 1)
	for _, algo := range experiments.AllAlgos {
		for _, th := range []float64{0.1, 0.3} {
			b.Run(fmt.Sprintf("%s/theta=%.1f", algo, th), func(b *testing.B) {
				benchCell(b, w, experiments.RunConfig{Algo: algo, Theta: th})
			})
		}
	}
}

// BenchmarkFig12Partitions — Figure 12: VJ/VJ-NL/CL across partition
// counts at θ=0.3.
func BenchmarkFig12Partitions(b *testing.B) {
	w := workload(b, dataset.DBLPLike, 10, 1)
	for _, parts := range experiments.PartitionSweep {
		for _, algo := range []experiments.Algo{experiments.AlgoVJ, experiments.AlgoVJNL, experiments.AlgoCL} {
			b.Run(fmt.Sprintf("parts=%d/%s", parts, algo), func(b *testing.B) {
				benchCell(b, w, experiments.RunConfig{Algo: algo, Theta: 0.3, Partitions: parts})
			})
		}
	}
}

// BenchmarkFig13PartitionsCLP — Figure 13: CL-P across partition
// counts.
func BenchmarkFig13PartitionsCLP(b *testing.B) {
	w := workload(b, dataset.DBLPLike, 10, 5)
	for _, parts := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("parts=%d", parts), func(b *testing.B) {
			benchCell(b, w, experiments.RunConfig{Algo: experiments.AlgoCLP, Theta: 0.3, Partitions: parts})
		})
	}
}

// BenchmarkTable3EngineShuffle measures the raw engine under the
// Table 3 configuration: one groupByKey exchange of the DBLP prefix
// tokens — the substrate cost every pipeline stage pays.
func BenchmarkTable3EngineShuffle(b *testing.B) {
	w := workload(b, dataset.DBLPLike, 10, 1)
	var kvs []flow.KV[int32, int64]
	for _, r := range w.Rankings {
		for _, it := range r.Items {
			kvs = append(kvs, flow.KV[int32, int64]{K: it, V: r.ID})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := flow.NewContext(flow.Config{DefaultPartitions: 16})
		if _, err := flow.GroupByKey(flow.Parallelize(ctx, kvs, 16), 16).Count(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches (see DESIGN.md §4) ---

// BenchmarkAblationOrdering — §4: frequency reordering on vs off.
func BenchmarkAblationOrdering(b *testing.B) {
	w := workload(b, dataset.DBLPLike, 10, 1)
	for _, skip := range []bool{false, true} {
		name := "ordered"
		if skip {
			name = "identity"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctx := flow.NewContext(flow.Config{DefaultPartitions: 16})
				if _, err := vj.Join(ctx, w.Rankings, vj.Options{
					Theta: 0.3, Variant: vj.NestedLoop, SkipReorder: skip,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationIndexVsNL — §4.1: per-partition inverted index vs
// nested loop, isolated from the rest of the pipeline.
func BenchmarkAblationIndexVsNL(b *testing.B) {
	w := workload(b, dataset.ORKULike, 10, 1)
	for _, v := range []vj.Variant{vj.IndexJoin, vj.NestedLoop} {
		b.Run(v.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctx := flow.NewContext(flow.Config{DefaultPartitions: 16})
				if _, err := vj.Join(ctx, w.Rankings, vj.Options{Theta: 0.3, Variant: v}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationLemma53 — §5.2: per-type centroid thresholds vs
// uniform θ+2θc.
func BenchmarkAblationLemma53(b *testing.B) {
	w := workload(b, dataset.ORKULike, 10, 1)
	for _, uniform := range []bool{false, true} {
		name := "lemma53"
		if uniform {
			name = "uniform"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctx := flow.NewContext(flow.Config{DefaultPartitions: 16})
				if _, err := core.Join(ctx, w.Rankings, core.Options{
					Theta: 0.3, ThetaC: 0.03, UniformJoinThreshold: uniform,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationTriangleFilter — §5.3: expansion with vs without
// triangle pruning.
func BenchmarkAblationTriangleFilter(b *testing.B) {
	w := workload(b, dataset.ORKULike, 10, 1)
	for _, noFilter := range []bool{false, true} {
		name := "filter"
		if noFilter {
			name = "nofilter"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctx := flow.NewContext(flow.Config{DefaultPartitions: 16})
				if _, err := core.Join(ctx, w.Rankings, core.Options{
					Theta: 0.3, ThetaC: 0.03, NoTriangleFilter: noFilter,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationRandomCentroids — §5.1: the paper's pair-derived
// clustering vs the random-centroid baseline, via the experiment
// harness (reports both methods' statistics once per run).
func BenchmarkAblationRandomCentroids(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationClustering(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDedup — final distinct shuffle vs least-token
// emission.
func BenchmarkAblationDedup(b *testing.B) {
	w := workload(b, dataset.DBLPLike, 10, 1)
	for _, least := range []bool{false, true} {
		name := "distinct"
		if least {
			name = "least-token"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctx := flow.NewContext(flow.Config{DefaultPartitions: 16})
				if _, err := vj.Join(ctx, w.Rankings, vj.Options{
					Theta: 0.3, Variant: vj.NestedLoop, LeastTokenDedup: least,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBaselines — the §2 baselines (V-SMART, ClusterJoin) against
// the paper's algorithms at one representative threshold.
func BenchmarkBaselines(b *testing.B) {
	w := workload(b, dataset.ORKULike, 10, 1)
	algos := append(append([]experiments.Algo(nil), experiments.AllAlgos...),
		experiments.AlgoVSMART, experiments.AlgoClusterJoin, experiments.AlgoFSJoin)
	for _, algo := range algos {
		b.Run(string(algo), func(b *testing.B) {
			benchCell(b, w, experiments.RunConfig{Algo: algo, Theta: 0.3})
		})
	}
}
