// Package rankjoin is a library for similarity joins over top-k
// rankings under Spearman's Footrule distance, reproducing
// "Distributed Similarity Joins over Top-K Rankings" (Milchevski &
// Michel, EDBT 2020).
//
// Given a dataset of fixed-length top-k rankings and a normalized
// distance threshold θ ∈ [0, 1], a join returns every pair of rankings
// whose top-k Footrule distance (Fagin et al.) is at most θ. The
// paper's four algorithms are available, plus the §2 baselines:
//
//   - VJ: the Vernica-Join prefix-filtering adaptation (§4);
//   - VJ-NL: its iterator/nested-loop per-partition variant (§4.1);
//   - CL: the paper's contribution — a four-phase metric-space pipeline
//     (Ordering, Clustering at θc, Centroid Join at θ+2θc, Expansion);
//   - CL-P: CL plus repartitioning of oversized posting lists (§6);
//   - V-SMART, ClusterJoin, FS-Join: related-work baselines (§2).
//
// Companion operations: JoinRS (join two datasets against each other),
// JoinSets (Jaccard set-similarity join, the paper's §8 outlook), and
// BuildIndex/Index.Search (single-query similarity range search).
//
// All algorithms run on an embedded Spark-like dataflow engine with
// hash-partitioned shuffles, broadcast variables, a bounded worker
// pool, and optional spill-to-disk; Engine configuration corresponds to
// the Spark parameters of the paper's Table 3.
//
// Quick start:
//
//	rs := []*rankjoin.Ranking{ ... }
//	res, err := rankjoin.Join(rs, rankjoin.Options{Algorithm: rankjoin.AlgCL, Theta: 0.2})
//	for _, p := range res.Pairs { ... }
package rankjoin

import (
	"errors"
	"fmt"
	"io"
	"time"

	"rankjoin/internal/clusterjoin"
	"rankjoin/internal/core"
	"rankjoin/internal/flow"
	"rankjoin/internal/fsjoin"
	"rankjoin/internal/obs"
	"rankjoin/internal/ppjoin"
	"rankjoin/internal/rankings"
	"rankjoin/internal/vj"
	"rankjoin/internal/vsmart"
)

// Ranking is a fixed-length top-k list; see NewRanking.
type Ranking = rankings.Ranking

// Item identifies a ranked entity.
type Item = rankings.Item

// Pair is one join result: ranking ids in canonical order (A < B) and
// their unnormalized Footrule distance (see Footrule; divide by
// MaxDistance(k) to normalize).
type Pair = rankings.Pair

// NewRanking builds a validated ranking from an id and its items, best
// ranked first.
func NewRanking(id int64, items []Item) (*Ranking, error) {
	r, err := rankings.New(id, items)
	if err != nil {
		return nil, err
	}
	r.Index()
	return r, nil
}

// ReadRankings parses a dataset in the text format (one ranking per
// line: optionally "id:" followed by whitespace- or comma-separated
// item ids, best first).
func ReadRankings(r io.Reader) ([]*Ranking, error) {
	rs, err := rankings.Read(r)
	if err != nil {
		return nil, err
	}
	rankings.IndexAll(rs)
	return rs, nil
}

// WriteRankings serializes a dataset in the format ReadRankings
// accepts.
func WriteRankings(w io.Writer, rs []*Ranking) error { return rankings.Write(w, rs) }

// Footrule returns the unnormalized top-k Footrule distance between
// two rankings of equal length k: the sum over all items of the rank
// difference, with missing items at the artificial rank k. Range:
// [0, k·(k+1)].
func Footrule(a, b *Ranking) int { return rankings.Footrule(a, b) }

// FootruleNorm returns the Footrule distance normalized to [0, 1].
func FootruleNorm(a, b *Ranking) float64 { return rankings.FootruleNorm(a, b) }

// MaxDistance returns the largest possible Footrule distance between
// two top-k rankings: k·(k+1).
func MaxDistance(k int) int { return rankings.MaxFootrule(k) }

// Algorithm selects a join algorithm.
type Algorithm int

const (
	// AlgCL is the paper's clustering pipeline — the default and the
	// recommended choice for θ ≥ 0.2 or large datasets.
	AlgCL Algorithm = iota
	// AlgCLP is CL with repartitioning of oversized posting lists;
	// requires Delta (or uses the Equation 4 auto-suggestion when
	// Delta is 0 and AutoDelta is set).
	AlgCLP
	// AlgVJ is the prefix-filtering Vernica Join with per-partition
	// inverted indexes.
	AlgVJ
	// AlgVJNL is VJ with iterator-style nested-loop partitions.
	AlgVJNL
	// AlgBruteForce verifies every pair; for small inputs and testing.
	AlgBruteForce
	// AlgVSMART is the V-SMART baseline (Metwally & Faloutsos, §2 of
	// the paper) adapted to Footrule: per-item distance ingredients
	// aggregated by pair key. Quadratic in posting-list length — kept
	// for comparison experiments.
	AlgVSMART
	// AlgClusterJoin is the anchor-based metric-space baseline
	// (ClusterJoin / Wang et al., §2): random anchors,
	// triangle-window replication, per-partition verification.
	AlgClusterJoin
	// AlgFSJoin is the FS-Join baseline (Rong et al., §2): vertical
	// segment partitioning of the canonical token order,
	// duplicate-free by construction.
	AlgFSJoin
)

func (a Algorithm) String() string {
	switch a {
	case AlgCL:
		return "CL"
	case AlgCLP:
		return "CL-P"
	case AlgVJ:
		return "VJ"
	case AlgVJNL:
		return "VJ-NL"
	case AlgBruteForce:
		return "BruteForce"
	case AlgVSMART:
		return "V-SMART"
	case AlgClusterJoin:
		return "ClusterJoin"
	case AlgFSJoin:
		return "FS-Join"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Options configures a join.
type Options struct {
	// Algorithm defaults to AlgCL.
	Algorithm Algorithm
	// Theta is the normalized distance threshold θ ∈ [0, 1].
	Theta float64
	// ThetaC is the clustering threshold for CL/CL-P; 0 means the
	// paper's recommended 0.03.
	ThetaC float64
	// Delta is the repartitioning threshold δ for CL-P (and, if set
	// with VJ variants, splits their posting lists too).
	Delta int
	// Partitions is the shuffle partition count; 0 picks the engine
	// default.
	Partitions int
	// Stats, when true, collects per-phase statistics into
	// Result.CL / Result.Kernel.
	Stats bool
}

// Result carries the join output and optional accounting.
type Result struct {
	// Pairs is the deduplicated result set, sorted by (A, B).
	Pairs []Pair
	// Algorithm echoes the algorithm that produced the result.
	Algorithm Algorithm
	// CL holds the per-phase statistics of a CL/CL-P run when
	// Options.Stats was set (nil otherwise).
	CL *core.Stats
	// Kernel holds the kernel statistics of a VJ/VJ-NL run when
	// Options.Stats was set (nil otherwise).
	Kernel *vj.StatsSnapshot
	// Filters is the filter-effectiveness tally of the run: candidates
	// generated and their fates (pruned by prefix, item signature,
	// position or triangle inequality, accepted unverified, verified).
	// Always collected; the counts obey Generated == PrunedPrefix +
	// PrunedSignature + PrunedPosition + PrunedTriangle +
	// AcceptedUnverified + Verified.
	Filters FilterStats
	// Engine is a snapshot of the engine counters accumulated by this
	// run (shuffled records, tasks, spills, largest partition, skew
	// histograms).
	Engine flow.MetricsSnapshot
}

// FilterStats reports filter effectiveness; see Result.Filters.
type FilterStats = obs.FiltersSnapshot

// Tracer records hierarchical spans (pipeline phases, shuffles,
// partition tasks) of the joins run on an engine it is attached to.
// Export with WriteChromeTrace (load the file in Perfetto or
// chrome://tracing) or render with Tree. See Engine.SetTracer.
type Tracer = obs.Tracer

// NewTracer creates an empty trace whose clock starts now.
func NewTracer() *Tracer { return obs.NewTracer() }

// EngineConfig sizes the embedded dataflow engine — the analogue of the
// paper's Table 3 Spark parameters.
type EngineConfig struct {
	// Workers bounds concurrently executing tasks (executors × cores).
	// 0 uses GOMAXPROCS.
	Workers int
	// DefaultPartitions is used when Options.Partitions is 0.
	DefaultPartitions int
	// SpillDir enables spilling oversized shuffle buckets to gob files
	// under this directory.
	SpillDir string
	// SpillThreshold is the per-bucket record count that triggers a
	// spill (0 = 65536).
	SpillThreshold int
	// Exchange, when non-nil with a world size above one, runs every
	// Join on this engine in distributed SPMD mode: all workers in the
	// exchanger's world must run the identical Join call on the
	// identical input, shuffles go over the wire, and every worker
	// returns the identical Result. internal/cluster provides the
	// HTTP transport implementation; see flow.Exchanger for the
	// contract.
	Exchange flow.Exchanger
}

// Engine is a reusable execution context. The zero-cost way to run a
// single join is the package-level Join, which creates a default
// engine per call.
type Engine struct {
	ctx *flow.Context
}

// NewEngine builds an engine from cfg.
func NewEngine(cfg EngineConfig) *Engine {
	return &Engine{ctx: flow.NewContext(flow.Config{
		Workers:           cfg.Workers,
		DefaultPartitions: cfg.DefaultPartitions,
		SpillDir:          cfg.SpillDir,
		SpillThreshold:    cfg.SpillThreshold,
		Exchange:          cfg.Exchange,
	})}
}

// Close releases engine resources (spill files).
func (e *Engine) Close() error { return e.ctx.Close() }

// SetTracer attaches tr to the engine: every subsequent Join records
// phase, shuffle and task spans on it. Pass nil to detach. With no
// tracer attached the instrumentation is free (a nil check per site).
func (e *Engine) SetTracer(tr *Tracer) { e.ctx.SetTracer(tr) }

// Join runs a similarity join on this engine.
//
// The input must be well formed: all rankings the same length k
// (ErrMixedLengths otherwise — Footrule thresholds are only comparable
// between rankings of equal k) and ids unique (ErrDuplicateID —
// algorithms key intermediate state by id, and before this check the
// execution paths disagreed on what a colliding id meant).
func (e *Engine) Join(rs []*Ranking, opts Options) (*Result, error) {
	if opts.Theta < 0 || opts.Theta > 1 {
		return nil, fmt.Errorf("%w: got %v", ErrThetaRange, opts.Theta)
	}
	if err := checkUniform(rs); err != nil {
		return nil, err
	}
	if err := checkUniqueIDs(rs); err != nil {
		return nil, err
	}
	e.ctx.ResetMetrics()
	res := &Result{Algorithm: opts.Algorithm}
	start := time.Now()
	rootSpan := e.ctx.Tracer().StartScope("join/"+opts.Algorithm.String(),
		obs.Int("rankings", int64(len(rs))))
	defer rootSpan.End() // idempotent; closes the scope on error returns
	var pairs []Pair
	var err error
	switch opts.Algorithm {
	case AlgBruteForce:
		if len(rs) > 0 {
			maxDist := rankings.Threshold(opts.Theta, rs[0].K())
			var st ppjoin.Stats
			pairs = ppjoin.BruteForce(rs, maxDist, &st)
			e.ctx.Filters().Add(st.FilterDelta())
		}
	case AlgVJ, AlgVJNL:
		variant := vj.IndexJoin
		if opts.Algorithm == AlgVJNL {
			variant = vj.NestedLoop
		}
		var st *vj.Stats
		if opts.Stats {
			st = &vj.Stats{}
		}
		pairs, err = vj.Join(e.ctx, rs, vj.Options{
			Theta:      opts.Theta,
			Variant:    variant,
			Partitions: opts.Partitions,
			Delta:      opts.Delta,
			Stats:      st,
		})
		if err != nil {
			return nil, err
		}
		if st != nil {
			snap := st.Snapshot()
			res.Kernel = &snap
		}
	case AlgVSMART:
		pairs, err = vsmart.Join(e.ctx, rs, vsmart.Options{
			Theta:      opts.Theta,
			Partitions: opts.Partitions,
		})
		if err != nil {
			return nil, err
		}
	case AlgClusterJoin:
		pairs, _, err = clusterjoin.Join(e.ctx, rs, clusterjoin.Options{
			Theta:      opts.Theta,
			Partitions: opts.Partitions,
			Seed:       1,
		})
		if err != nil {
			return nil, err
		}
	case AlgFSJoin:
		pairs, err = fsjoin.Join(e.ctx, rs, fsjoin.Options{
			Theta:      opts.Theta,
			Partitions: opts.Partitions,
		})
		if err != nil {
			return nil, err
		}
	case AlgCL, AlgCLP:
		delta := 0
		if opts.Algorithm == AlgCLP {
			delta = opts.Delta
			if delta <= 0 {
				delta = suggestDelta(rs, opts.Theta)
			}
		}
		var st *core.Stats
		if opts.Stats {
			st = &core.Stats{}
		}
		pairs, err = core.Join(e.ctx, rs, core.Options{
			Theta:      opts.Theta,
			ThetaC:     opts.ThetaC,
			Partitions: opts.Partitions,
			Delta:      delta,
			Stats:      st,
		})
		if err != nil {
			return nil, err
		}
		res.CL = st
	default:
		return nil, fmt.Errorf("rankjoin: unknown algorithm %v", opts.Algorithm)
	}
	rootSpan.End()
	e.ctx.ObserveStage("join/"+opts.Algorithm.String(), time.Since(start))
	dedupStart := time.Now()
	dedupSpan := e.ctx.Tracer().StartScope("join/dedup")
	res.Pairs = rankings.DedupPairs(pairs)
	dedupSpan.End()
	e.ctx.ObserveStage("join/dedup", time.Since(dedupStart))
	res.Engine = e.ctx.Snapshot()
	res.Filters = res.Engine.Filters
	return res, nil
}

// Join runs a similarity join on a fresh default engine.
func Join(rs []*Ranking, opts Options) (*Result, error) {
	e := NewEngine(EngineConfig{})
	defer e.Close()
	return e.Join(rs, opts)
}

// Errors reported by the join entry points. All joins, SuggestDelta and
// BuildIndex validate their input once at the public boundary so that
// every execution path agrees on what malformed input means (before
// this, CL rejected duplicate ids while VJ silently skipped them, and a
// mixed-length dataset fed SuggestDelta a nonsense k).
var (
	// ErrMixedLengths reports a dataset mixing ranking lengths. The
	// Footrule threshold θ·k(k+1) is only meaningful for a single k.
	ErrMixedLengths = errors.New("rankjoin: rankings have mixed lengths")

	// ErrDuplicateID reports two rankings in one dataset sharing an id.
	ErrDuplicateID = errors.New("rankjoin: duplicate ranking id in dataset")

	// ErrSelfJoinOnly reports an Options.Algorithm that only defines a
	// self-join (the CL family's clustering construction and the
	// related-work baselines) being requested for an R-S join.
	ErrSelfJoinOnly = errors.New("rankjoin: algorithm joins a dataset with itself only")
)

func checkUniform(rs []*Ranking) error {
	if len(rs) == 0 {
		return nil
	}
	k := rs[0].K()
	for _, r := range rs {
		if r.K() != k {
			return fmt.Errorf("%w: %d and %d", ErrMixedLengths, k, r.K())
		}
	}
	return nil
}

func checkUniqueIDs(rs []*Ranking) error {
	seen := make(map[int64]struct{}, len(rs))
	for _, r := range rs {
		if _, dup := seen[r.ID]; dup {
			return fmt.Errorf("%w: id %d", ErrDuplicateID, r.ID)
		}
		seen[r.ID] = struct{}{}
	}
	return nil
}
