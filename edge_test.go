package rankjoin_test

import (
	"math/rand"
	"testing"

	"rankjoin"
	"rankjoin/internal/rankings"
	"rankjoin/internal/testutil"
)

// TestExtremeParameters drives every algorithm through the parameter
// corners: k=1 and k=2 rankings, θ=0 (exact duplicates only) and θ=1
// (every pair), tiny and colliding domains.
func TestExtremeParameters(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	algos := []rankjoin.Algorithm{
		rankjoin.AlgVJ, rankjoin.AlgVJNL, rankjoin.AlgCL, rankjoin.AlgCLP,
	}
	for _, k := range []int{1, 2, 3} {
		for _, theta := range []float64{0, 0.5, 1} {
			rs := testutil.RandDataset(rng, 30, k, k+2)
			ref, err := rankjoin.Join(rs, rankjoin.Options{Algorithm: rankjoin.AlgBruteForce, Theta: theta})
			if err != nil {
				t.Fatal(err)
			}
			if theta == 1 && len(ref.Pairs) != 30*29/2 {
				t.Fatalf("k=%d θ=1: oracle %d pairs, want all %d", k, len(ref.Pairs), 30*29/2)
			}
			for _, alg := range algos {
				res, err := rankjoin.Join(rs, rankjoin.Options{Algorithm: alg, Theta: theta})
				if err != nil {
					t.Fatalf("k=%d θ=%v %v: %v", k, theta, alg, err)
				}
				if !rankings.SamePairs(res.Pairs, ref.Pairs) {
					extra, missing := rankings.DiffPairs(res.Pairs, ref.Pairs)
					t.Fatalf("k=%d θ=%v %v: extra=%v missing=%v", k, theta, alg, extra, missing)
				}
			}
		}
	}
}

// TestPublicOracleProperty is the library-level completeness/soundness
// property: on random clustered data with random parameters, the
// default algorithm matches brute force exactly.
func TestPublicOracleProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		k := 3 + rng.Intn(10)
		rs := testutil.ClusteredDataset(rng, 5+rng.Intn(15), 1+rng.Intn(5), k, 3*k+rng.Intn(5*k))
		theta := rng.Float64()
		ref, err := rankjoin.Join(rs, rankjoin.Options{Algorithm: rankjoin.AlgBruteForce, Theta: theta})
		if err != nil {
			t.Fatal(err)
		}
		res, err := rankjoin.Join(rs, rankjoin.Options{Theta: theta, ThetaC: 0.01 + 0.1*rng.Float64()})
		if err != nil {
			t.Fatal(err)
		}
		if !rankings.SamePairs(res.Pairs, ref.Pairs) {
			t.Fatalf("trial %d (k=%d θ=%.3f) diverged from oracle", trial, k, theta)
		}
	}
}
