package rankjoin

import "rankjoin/internal/ppjoin"

// This file exposes the paper's stated outlook (§8): the same
// prefix-filtering machinery applied to plain sets under Jaccard
// similarity, so applications can join set-valued data (baskets, tag
// sets) alongside rankings.

// SetPair is one set-join result: record ids in canonical order and
// their Jaccard similarity.
type SetPair = ppjoin.SetPair

// JoinSets returns all pairs of token sets with Jaccard similarity at
// least minSim ∈ (0, 1], using prefix filtering with length and overlap
// filters. Duplicate tokens within a set are ignored.
func JoinSets(sets map[int64][]int32, minSim float64) ([]SetPair, error) {
	recs := ppjoin.BuildSetRecords(sets)
	return ppjoin.JaccardJoin(recs, minSim, nil)
}

// JaccardSim computes |a ∩ b| / |a ∪ b| for two token sets.
func JaccardSim(a, b []int32) float64 { return ppjoin.Jaccard(a, b) }
