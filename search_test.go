package rankjoin_test

import (
	"errors"
	"math/rand"
	"testing"

	"rankjoin"
	"rankjoin/internal/rankings"
	"rankjoin/internal/testutil"
)

func TestKendallTauPublic(t *testing.T) {
	a, _ := rankjoin.NewRanking(0, []rankjoin.Item{1, 2, 3})
	b, _ := rankjoin.NewRanking(1, []rankjoin.Item{3, 2, 1})
	if got := rankjoin.KendallTau(a, b); got != 3 {
		t.Errorf("tau = %d, want 3", got)
	}
}

// TestIndexSearchMatchesJoinNeighbors: for every ranking, Index.Search
// must return exactly its join partners.
func TestIndexSearchMatchesJoinNeighbors(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	rs := testutil.ClusteredDataset(rng, 15, 4, 8, 50)
	const theta = 0.25
	res, err := rankjoin.Join(rs, rankjoin.Options{Algorithm: rankjoin.AlgBruteForce, Theta: theta})
	if err != nil {
		t.Fatal(err)
	}
	neighbors := map[int64]int{}
	for _, p := range res.Pairs {
		neighbors[p.A]++
		neighbors[p.B]++
	}
	idx, err := rankjoin.BuildIndex(rs, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range rs {
		hits, err := idx.Search(q, theta)
		if err != nil {
			t.Fatal(err)
		}
		if len(hits) != neighbors[q.ID] {
			t.Fatalf("query %d: %d hits, join says %d", q.ID, len(hits), neighbors[q.ID])
		}
		for _, h := range hits {
			if h.A != q.ID && h.B != q.ID {
				t.Fatalf("hit %v does not involve query %d", h, q.ID)
			}
		}
	}
}

func TestBuildIndexValidation(t *testing.T) {
	if _, err := rankjoin.BuildIndex(nil, 2); !errors.Is(err, rankjoin.ErrEmptyIndex) {
		t.Errorf("empty dataset: err = %v, want ErrEmptyIndex", err)
	}
	if _, err := rankjoin.BuildIndex([]*rankjoin.Ranking{}, 2); !errors.Is(err, rankjoin.ErrEmptyIndex) {
		t.Errorf("empty slice: err = %v, want ErrEmptyIndex", err)
	}
	one := []*rankjoin.Ranking{rankings.MustNew(0, []rankings.Item{1, 2, 3})}
	if _, err := rankjoin.BuildIndex(one, 0); err == nil {
		t.Error("zero pivots accepted")
	}
	mixed := []*rankjoin.Ranking{
		rankings.MustNew(0, []rankings.Item{1, 2, 3}),
		rankings.MustNew(1, []rankings.Item{1, 2}),
	}
	if _, err := rankjoin.BuildIndex(mixed, 2); err == nil {
		t.Error("mixed lengths accepted")
	}
}

// TestSearchValidation: the query-time edge cases must surface as typed
// errors, not silently-empty results.
func TestSearchValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	rs := testutil.RandDataset(rng, 10, 5, 30)
	idx, err := rankjoin.BuildIndex(rs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.Search(nil, 0.2); !errors.Is(err, rankjoin.ErrNilQuery) {
		t.Errorf("nil query: err = %v, want ErrNilQuery", err)
	}
	short := rankings.MustNew(99, []rankings.Item{1, 2})
	if _, err := idx.Search(short, 0.2); !errors.Is(err, rankjoin.ErrQueryLength) {
		t.Errorf("short query: err = %v, want ErrQueryLength", err)
	}
	q := rs[0]
	for _, theta := range []float64{-0.1, 1.5} {
		if _, err := idx.Search(q, theta); !errors.Is(err, rankjoin.ErrThetaRange) {
			t.Errorf("theta %g: err = %v, want ErrThetaRange", theta, err)
		}
	}
	// Boundary thetas are legal: 0 keeps only exact duplicates, 1
	// keeps everything.
	if hits, err := idx.Search(q, 0); err != nil || len(hits) != 0 {
		t.Errorf("theta 0: hits %v err %v, want none", hits, err)
	}
	if hits, err := idx.Search(q, 1); err != nil || len(hits) != len(rs)-1 {
		t.Errorf("theta 1: %d hits err %v, want %d", len(hits), err, len(rs)-1)
	}
}

// TestJoinRSPublic: the public R-S join against a hand-computed
// expectation, and via a weekly-snapshot use case.
func TestJoinRSPublic(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	thisWeek := testutil.RandDataset(rng, 40, 8, 50)
	// Last week: same users, half the rankings gently drifted.
	lastWeek := make([]*rankjoin.Ranking, 0, len(thisWeek))
	for i, r := range thisWeek {
		c := r.Clone()
		if i%2 == 0 && r.K() >= 2 {
			c.Items[0], c.Items[1] = c.Items[1], c.Items[0]
		}
		c.Index()
		lastWeek = append(lastWeek, c)
	}
	res, err := rankjoin.JoinRS(thisWeek, lastWeek, rankjoin.Options{Theta: 0.1, Stats: true})
	if err != nil {
		t.Fatal(err)
	}
	// Every user must match their own previous ranking (distance 0 or
	// 2), so there are at least len(thisWeek) pairs.
	self := 0
	for _, p := range res.Pairs {
		if p.A == p.B {
			self++
			if p.Dist != 0 && p.Dist != 2 {
				t.Errorf("self pair %v at unexpected distance", p)
			}
		}
	}
	if self != len(thisWeek) {
		t.Errorf("%d self matches, want %d", self, len(thisWeek))
	}
	if res.Kernel == nil {
		t.Error("stats missing")
	}
	if _, err := rankjoin.JoinRS(thisWeek, lastWeek, rankjoin.Options{Theta: 7}); err == nil {
		t.Error("bad theta accepted")
	}
}
