package rankjoin

import (
	"rankjoin/internal/filters"
	"rankjoin/internal/rankings"
	"rankjoin/internal/stats"
)

// suggestDelta derives a repartitioning threshold δ for CL-P from the
// dataset statistics via the paper's Equation 4: the expected
// posting-list length under the fitted Zipf skew of the prefix
// vocabulary, scaled up so only genuinely skew-inflated lists split.
// The caller must have validated the dataset uniform-length (the
// prefix size computed from rs[0].K() is meaningless otherwise).
func suggestDelta(rs []*Ranking, theta float64) int {
	if len(rs) == 0 {
		return 16
	}
	k := rs[0].K()
	maxDist := rankings.Threshold(theta, k)
	prefix := filters.PrefixOverlap(maxDist, k)
	counts := rankings.ItemCounts(rs)
	ord := rankings.NewOrder(counts)
	vPrime := stats.PrefixVocabulary(rs, ord, prefix)
	skew := stats.EstimateSkew(counts)
	return stats.SuggestDelta(len(rs)*prefix, skew, vPrime)
}

// SuggestDelta exposes the Equation 4 guidance for choosing the CL-P
// partitioning threshold δ for a dataset and join threshold. The
// dataset must be uniform-length (ErrMixedLengths otherwise): the
// estimate keys off the prefix size for rs[0]'s k, and a mixed-length
// dataset would silently produce a nonsense δ for every other length.
// Theta must lie in [0, 1] (ErrThetaRange).
func SuggestDelta(rs []*Ranking, theta float64) (int, error) {
	if theta < 0 || theta > 1 {
		return 0, ErrThetaRange
	}
	if err := checkUniform(rs); err != nil {
		return 0, err
	}
	return suggestDelta(rs, theta), nil
}
