package rankjoin_test

import (
	"errors"
	"math/rand"
	"testing"

	"rankjoin"
	"rankjoin/internal/rankings"
	"rankjoin/internal/testutil"
)

// allAlgorithms are the self-join algorithms exercised by the
// degenerate-input sweeps.
var allAlgorithms = []rankjoin.Algorithm{
	rankjoin.AlgBruteForce, rankjoin.AlgVJ, rankjoin.AlgVJNL, rankjoin.AlgCL,
	rankjoin.AlgCLP, rankjoin.AlgVSMART, rankjoin.AlgClusterJoin, rankjoin.AlgFSJoin,
}

// TestJoinRSAlgorithmReporting pins the JoinRS contract: the result
// reports the algorithm that actually executed (not whatever the
// caller happened to leave in Options), and self-join-only algorithms
// are refused with the typed error instead of silently running
// something else.
func TestJoinRSAlgorithmReporting(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	r := testutil.RandDataset(rng, 15, 5, 30)
	s := testutil.RandDataset(rng, 15, 5, 30)

	oracle, err := rankjoin.JoinRS(r, s, rankjoin.Options{Algorithm: rankjoin.AlgBruteForce, Theta: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if oracle.Algorithm != rankjoin.AlgBruteForce {
		t.Errorf("brute-force R-S labeled %v", oracle.Algorithm)
	}

	// The default pipeline is VJ-NL and must say so — historically the
	// result was stamped with the requested algorithm even though the
	// request was ignored.
	for _, req := range []rankjoin.Algorithm{rankjoin.AlgCL, rankjoin.AlgVJ, rankjoin.AlgVJNL} {
		res, err := rankjoin.JoinRS(r, s, rankjoin.Options{Algorithm: req, Theta: 0.4})
		if err != nil {
			t.Fatalf("%v: %v", req, err)
		}
		if res.Algorithm != rankjoin.AlgVJNL {
			t.Errorf("requested %v: result labeled %v, want %v (the executed pipeline)",
				req, res.Algorithm, rankjoin.AlgVJNL)
		}
		if !rankings.SamePairs(res.Pairs, oracle.Pairs) {
			t.Errorf("requested %v: pairs disagree with the R×S oracle", req)
		}
	}

	for _, req := range []rankjoin.Algorithm{
		rankjoin.AlgCLP, rankjoin.AlgVSMART, rankjoin.AlgClusterJoin, rankjoin.AlgFSJoin,
	} {
		_, err := rankjoin.JoinRS(r, s, rankjoin.Options{Algorithm: req, Theta: 0.4, Delta: 8})
		if !errors.Is(err, rankjoin.ErrSelfJoinOnly) {
			t.Errorf("requested %v over R-S: err = %v, want ErrSelfJoinOnly", req, err)
		}
	}
}

// TestTypedValidationErrors pins the entry-point validation added to
// Join, JoinRS and SuggestDelta: mixed ranking lengths and duplicate
// ids are typed errors everywhere, for every algorithm — not
// algorithm-dependent silent misbehavior.
func TestTypedValidationErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rs := testutil.RandDataset(rng, 10, 4, 25)
	mixed := append(append([]*rankjoin.Ranking(nil), rs...), testutil.RandRanking(rng, 99, 7, 25))
	dup := append(append([]*rankjoin.Ranking(nil), rs...), testutil.RandRanking(rng, rs[0].ID, 4, 25))

	for _, alg := range allAlgorithms {
		if _, err := rankjoin.Join(mixed, rankjoin.Options{Algorithm: alg, Theta: 0.3, Delta: 4}); !errors.Is(err, rankjoin.ErrMixedLengths) {
			t.Errorf("%v over mixed lengths: err = %v, want ErrMixedLengths", alg, err)
		}
		if _, err := rankjoin.Join(dup, rankjoin.Options{Algorithm: alg, Theta: 0.3, Delta: 4}); !errors.Is(err, rankjoin.ErrDuplicateID) {
			t.Errorf("%v over duplicate ids: err = %v, want ErrDuplicateID", alg, err)
		}
	}

	if _, err := rankjoin.JoinRS(mixed, rs, rankjoin.Options{Theta: 0.3}); !errors.Is(err, rankjoin.ErrMixedLengths) {
		t.Errorf("JoinRS mixed lengths: err = %v, want ErrMixedLengths", err)
	}
	if _, err := rankjoin.JoinRS(dup, rs, rankjoin.Options{Theta: 0.3}); !errors.Is(err, rankjoin.ErrDuplicateID) {
		t.Errorf("JoinRS duplicate R-side ids: err = %v, want ErrDuplicateID", err)
	}
	if _, err := rankjoin.JoinRS(rs, dup, rankjoin.Options{Theta: 0.3}); !errors.Is(err, rankjoin.ErrDuplicateID) {
		t.Errorf("JoinRS duplicate S-side ids: err = %v, want ErrDuplicateID", err)
	}
	// The same id on both sides is legal: R and S are independent id
	// spaces (the weekly-snapshot use case joins a user to themselves).
	if _, err := rankjoin.JoinRS(rs, rs, rankjoin.Options{Theta: 0.3}); err != nil {
		t.Errorf("JoinRS with shared ids across sides: %v", err)
	}

	if _, err := rankjoin.SuggestDelta(mixed, 0.3); !errors.Is(err, rankjoin.ErrMixedLengths) {
		t.Errorf("SuggestDelta mixed lengths: err = %v, want ErrMixedLengths", err)
	}
	if _, err := rankjoin.SuggestDelta(rs, 1.5); !errors.Is(err, rankjoin.ErrThetaRange) {
		t.Errorf("SuggestDelta theta 1.5: err = %v, want ErrThetaRange", err)
	}
}

// TestDegenerateInputs sweeps the corner configurations every
// algorithm must agree on: k = 1, θ exactly 0 and exactly 1, and CL-P
// with δ at least as large as any posting-list group (nothing
// repartitions, the small-group path must carry the whole join).
func TestDegenerateInputs(t *testing.T) {
	cases := []struct {
		name  string
		k     int
		theta float64
		delta int
	}{
		{name: "k1_theta_zero", k: 1, theta: 0, delta: 2},
		{name: "k1_theta_one", k: 1, theta: 1, delta: 2},
		{name: "k1_interior", k: 1, theta: 0.5, delta: 2},
		{name: "theta_zero", k: 6, theta: 0, delta: 3},
		{name: "theta_one", k: 6, theta: 1, delta: 3},
		{name: "delta_ge_group", k: 6, theta: 0.3, delta: 1 << 20},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(17))
			rs := testutil.RandDataset(rng, 24, tc.k, 3*tc.k)
			// Duplicates force distance-0 pairs through the θ=0 sweeps.
			rs = testutil.WithDuplicates(rng, rs, 6)
			ref, err := rankjoin.Join(rs, rankjoin.Options{
				Algorithm: rankjoin.AlgBruteForce, Theta: tc.theta,
			})
			if err != nil {
				t.Fatal(err)
			}
			if tc.theta == 1 {
				want := len(rs) * (len(rs) - 1) / 2
				if len(ref.Pairs) != want {
					t.Fatalf("θ=1 must admit all %d pairs, oracle found %d", want, len(ref.Pairs))
				}
			}
			if tc.theta == 0 && len(ref.Pairs) == 0 {
				t.Fatal("θ=0 with duplicates must still find distance-0 pairs")
			}
			for _, alg := range allAlgorithms[1:] {
				res, err := rankjoin.Join(rs, rankjoin.Options{
					Algorithm: alg, Theta: tc.theta, Delta: tc.delta,
				})
				if err != nil {
					t.Errorf("%v: %v", alg, err)
					continue
				}
				if !rankings.SamePairs(res.Pairs, ref.Pairs) {
					t.Errorf("%v disagrees with brute force (%d vs %d pairs)",
						alg, len(res.Pairs), len(ref.Pairs))
				}
			}
		})
	}
}

// TestJoinRSEmptySides: an empty R or S side is a valid join with an
// empty result, not an error.
func TestJoinRSEmptySides(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	rs := testutil.RandDataset(rng, 8, 4, 20)
	for _, tc := range []struct {
		name string
		r, s []*rankjoin.Ranking
	}{
		{"empty_r", nil, rs},
		{"empty_s", rs, nil},
		{"both_empty", nil, nil},
	} {
		res, err := rankjoin.JoinRS(tc.r, tc.s, rankjoin.Options{Theta: 0.5})
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if len(res.Pairs) != 0 {
			t.Errorf("%s: %d pairs, want 0", tc.name, len(res.Pairs))
		}
	}
}
