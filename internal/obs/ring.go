package obs

import (
	"sync"
	"time"
)

// TraceRecord is one retained request trace: identity, coarse timing,
// and the tracer holding the span tree (renderable as Chrome trace
// JSON via Tracer.WriteChromeTrace).
type TraceRecord struct {
	ID      string    // request ID (X-Request-ID)
	Name    string    // root span name, e.g. "http /search"
	Start   time.Time // wall-clock request start
	Dur     time.Duration
	Slow    bool // retained by the tail sampler (latency threshold)
	Sampled bool // head-sampled (full span tree, not synthetic)
	Tracer  *Tracer
}

// TraceRing retains a bounded set of request traces along two axes:
// the most recent sampled requests (FIFO ring) and the slowest-seen
// tail-sampled requests (kept until displaced by slower ones once
// full). Records stay addressable by request ID for /debug/trace/{id}
// as long as either ring holds them.
type TraceRing struct {
	mu     sync.Mutex
	cap    int
	recent []*TraceRecord // ring, oldest first
	slow   []*TraceRecord // ring, oldest first
	byID   map[string]*TraceRecord
}

// NewTraceRing creates a ring retaining up to capacity recent and
// capacity slow traces (minimum 1 each).
func NewTraceRing(capacity int) *TraceRing {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceRing{cap: capacity, byID: make(map[string]*TraceRecord, 2*capacity)}
}

// Add retains rec: in the recent ring always, and in the slow ring
// when rec.Slow. A nil *TraceRing is a no-op sink.
func (r *TraceRing) Add(rec *TraceRecord) {
	if r == nil || rec == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.recent) == r.cap {
		old := r.recent[0]
		r.recent = append(r.recent[:0], r.recent[1:]...)
		r.evict(old)
	}
	r.recent = append(r.recent, rec)
	if rec.Slow {
		if len(r.slow) == r.cap {
			old := r.slow[0]
			r.slow = append(r.slow[:0], r.slow[1:]...)
			r.evict(old)
		}
		r.slow = append(r.slow, rec)
	}
	if rec.ID != "" {
		r.byID[rec.ID] = rec
	}
}

// evict drops old's ID mapping — but only if the map still points at
// this exact record (the same ID may have been re-added by a newer
// request) and no ring still holds it (a slow record outlives its
// recent-ring slot).
func (r *TraceRing) evict(old *TraceRecord) {
	if old.ID == "" || r.byID[old.ID] != old {
		return
	}
	for _, rec := range r.recent {
		if rec == old {
			return
		}
	}
	for _, rec := range r.slow {
		if rec == old {
			return
		}
	}
	delete(r.byID, old.ID)
}

// Get returns the record for a request ID, or nil.
func (r *TraceRing) Get(id string) *TraceRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.byID[id]
}

// Recent returns the retained recent traces, newest first.
func (r *TraceRing) Recent() []*TraceRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return reversed(r.recent)
}

// Slow returns the retained slow traces, newest first.
func (r *TraceRing) Slow() []*TraceRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return reversed(r.slow)
}

func reversed(in []*TraceRecord) []*TraceRecord {
	out := make([]*TraceRecord, len(in))
	for i, rec := range in {
		out[len(in)-1-i] = rec
	}
	return out
}
