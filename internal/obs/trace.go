package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Tracer records a forest of spans for one pipeline run. Create one
// with NewTracer and hand it to the engine context; a nil *Tracer
// disables tracing at the cost of a nil check per instrumentation
// site.
//
// Two span flavours exist, matching the two shapes of work in the
// engine:
//
//   - scopes (StartScope) are driver-side sequential phases — "the
//     clustering phase", "the dedup stage". A scope becomes the
//     current attachment point: spans started without an explicit
//     parent nest under it. Scopes inherit their parent's track.
//
//   - tasks (StartTask) are concurrently executing units — shuffle
//     materializations, per-partition kernel tasks. Each task leases
//     its own track (the Chrome trace "tid") for the duration of the
//     span, so concurrent siblings never overlap on one track and the
//     exported trace renders correctly in Perfetto.
type Tracer struct {
	base time.Time

	mu        sync.Mutex
	roots     []*Span
	current   *Span
	freeTrack []int
	nextTrack int
}

// NewTracer starts an empty trace; the wall-clock zero of all spans is
// the moment of this call.
func NewTracer() *Tracer {
	return &Tracer{base: time.Now(), nextTrack: 1}
}

// NewTracerAt starts an empty trace whose span-time zero is base — used
// to reconstruct a trace for an event that already happened (the tail
// sampler building a retroactive trace for a slow request it did not
// head-sample).
func NewTracerAt(base time.Time) *Tracer {
	return &Tracer{base: base, nextTrack: 1}
}

// Complete records an already-finished root span: a span that started
// at the given wall-clock time and ran for dur. It is the retroactive
// counterpart of StartScope+End for work observed only after the fact;
// the returned span is done and never needs End. Returns nil on a nil
// tracer.
func (t *Tracer) Complete(name string, start time.Time, dur time.Duration, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	if dur < 0 {
		dur = 0
	}
	s := &Span{tracer: t, name: name, start: start.Sub(t.base), dur: dur, done: true, attrs: attrs}
	if s.start < 0 {
		s.start = 0
	}
	t.attach(nil, s)
	return s
}

// Span is one timed region of the trace. All methods are safe on a
// nil receiver (they no-op and return nil), so call sites need no
// enabled-checks beyond holding a possibly-nil span.
type Span struct {
	tracer *Tracer
	parent *Span
	name   string
	task   bool
	track  int
	start  time.Duration // since tracer.base

	mu       sync.Mutex
	attrs    []Attr
	children []*Span
	dur      time.Duration
	done     bool
}

func (t *Tracer) now() time.Duration { return time.Since(t.base) }

func (t *Tracer) acquireTrack() int {
	// Smallest free track keeps the exported trace compact: the number
	// of tracks is the maximum concurrency seen, not the task count.
	if len(t.freeTrack) > 0 {
		best := 0
		for i := 1; i < len(t.freeTrack); i++ {
			if t.freeTrack[i] < t.freeTrack[best] {
				best = i
			}
		}
		track := t.freeTrack[best]
		t.freeTrack = append(t.freeTrack[:best], t.freeTrack[best+1:]...)
		return track
	}
	track := t.nextTrack
	t.nextTrack++
	return track
}

func (t *Tracer) releaseTrack(track int) {
	t.freeTrack = append(t.freeTrack, track)
}

func (t *Tracer) attach(parent *Span, s *Span) {
	if parent == nil {
		t.mu.Lock()
		t.roots = append(t.roots, s)
		t.mu.Unlock()
		return
	}
	parent.mu.Lock()
	parent.children = append(parent.children, s)
	parent.mu.Unlock()
}

// StartScope opens a sequential driver-side span under the current
// scope and makes it current. Returns nil on a nil tracer.
func (t *Tracer) StartScope(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	parent := t.current
	track := 0
	if parent != nil {
		track = parent.track
	}
	s := &Span{tracer: t, parent: parent, name: name, track: track, start: t.now(), attrs: attrs}
	t.current = s
	t.mu.Unlock()
	t.attach(parent, s)
	return s
}

// StartTask opens a concurrent span under the current scope on a
// leased track. Returns nil on a nil tracer.
func (t *Tracer) StartTask(name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	parent := t.current
	track := t.acquireTrack()
	t.mu.Unlock()
	s := &Span{tracer: t, parent: parent, name: name, task: true, track: track, start: t.now(), attrs: attrs}
	t.attach(parent, s)
	return s
}

// StartTask opens a concurrent child span on a leased track, with s as
// the explicit parent (used by engine stages that know their owner,
// e.g. the per-partition tasks of one shuffle).
func (s *Span) StartTask(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	t := s.tracer
	t.mu.Lock()
	track := t.acquireTrack()
	t.mu.Unlock()
	c := &Span{tracer: t, parent: s, name: name, task: true, track: track, start: t.now(), attrs: attrs}
	t.attach(s, c)
	return c
}

// StartChild opens a sequential child span inheriting s's track. It
// does not become the tracer's current scope.
func (s *Span) StartChild(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	t := s.tracer
	c := &Span{tracer: t, parent: s, name: name, track: s.track, start: t.now(), attrs: attrs}
	t.attach(s, c)
	return c
}

// End closes the span, recording its duration. Ending a scope restores
// its parent as the tracer's current scope; ending a task releases its
// track for reuse. End is idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.tracer
	end := t.now()
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	s.dur = end - s.start
	s.mu.Unlock()
	t.mu.Lock()
	if s.task {
		t.releaseTrack(s.track)
	} else if t.current == s {
		t.current = s.parent
	}
	t.mu.Unlock()
}

// SetAttr attaches or replaces a string attribute on the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			s.mu.Unlock()
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// SetInt attaches or replaces an integer attribute on the span.
func (s *Span) SetInt(key string, value int64) {
	s.SetAttr(key, fmt.Sprintf("%d", value))
}

// Name returns the span name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Start returns the span start relative to the tracer epoch.
func (s *Span) Start() time.Duration {
	if s == nil {
		return 0
	}
	return s.start
}

// Duration returns the recorded duration (0 while the span is open).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dur
}

// Done reports whether End was called.
func (s *Span) Done() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.done
}

// Track returns the span's render track (the Chrome trace tid).
func (s *Span) Track() int {
	if s == nil {
		return 0
	}
	return s.track
}

// Attrs returns a copy of the span attributes.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// Children returns the child spans ordered by start time.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	out := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].start < out[j].start })
	return out
}

// Roots returns the top-level spans ordered by start time.
func (t *Tracer) Roots() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]*Span(nil), t.roots...)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].start < out[j].start })
	return out
}

// traceEvent is one Chrome trace-event (the "X" complete-event form,
// plus "M" metadata). See the Trace Event Format spec; Perfetto and
// chrome://tracing both load it.
type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  *float64          `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type traceFile struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

// WriteChromeTrace exports the whole trace as Chrome trace-event JSON.
// Spans still open are exported with their elapsed time so far and an
// "unfinished" argument.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: nil tracer has no trace")
	}
	file := traceFile{DisplayTimeUnit: "ms"}
	file.TraceEvents = append(file.TraceEvents, traceEvent{
		Name: "process_name", Ph: "M", PID: 1,
		Args: map[string]string{"name": "rankjoin"},
	})
	now := t.now()
	var walk func(s *Span)
	walk = func(s *Span) {
		s.mu.Lock()
		dur, done := s.dur, s.done
		attrs := append([]Attr(nil), s.attrs...)
		s.mu.Unlock()
		if !done {
			dur = now - s.start
		}
		cat := "scope"
		if s.task {
			cat = "task"
		}
		var args map[string]string
		if len(attrs) > 0 || !done {
			args = make(map[string]string, len(attrs)+1)
			for _, a := range attrs {
				args[a.Key] = a.Value
			}
			if !done {
				args["unfinished"] = "true"
			}
		}
		d := float64(dur.Nanoseconds()) / 1e3
		file.TraceEvents = append(file.TraceEvents, traceEvent{
			Name: s.name, Cat: cat, Ph: "X",
			TS: float64(s.start.Nanoseconds()) / 1e3, Dur: &d,
			PID: 1, TID: s.track, Args: args,
		})
		for _, c := range s.Children() {
			walk(c)
		}
	}
	for _, r := range t.Roots() {
		walk(r)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(file)
}

// Tree renders the span forest as an indented text tree with durations
// and attributes.
func (t *Tracer) Tree() string { return t.TreeString(0, true) }

// TreeString renders the span forest as an indented text tree.
// maxDepth limits the rendered depth (0 = unlimited); withDetail adds
// durations and attributes (turn it off for deterministic output in
// tests and examples).
func (t *Tracer) TreeString(maxDepth int, withDetail bool) string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	var walk func(s *Span, depth int)
	walk = func(s *Span, depth int) {
		if maxDepth > 0 && depth >= maxDepth {
			return
		}
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(s.Name())
		if withDetail {
			fmt.Fprintf(&b, " %v", s.Duration().Round(time.Microsecond))
			for _, a := range s.Attrs() {
				fmt.Fprintf(&b, " %s=%s", a.Key, a.Value)
			}
		}
		b.WriteByte('\n')
		for _, c := range s.Children() {
			walk(c, depth+1)
		}
	}
	for _, r := range t.Roots() {
		walk(r, 0)
	}
	return b.String()
}

// Validate checks the structural invariants of a finished trace: every
// span ended, every child within its parent's bounds, and no two
// siblings overlapping on the same track. Concurrent siblings are fine
// — tasks lease distinct tracks — so a violation means instrumentation
// misuse (a span never ended, or sequential spans interleaved).
func (t *Tracer) Validate() error {
	if t == nil {
		return nil
	}
	var check func(s *Span) error
	check = func(s *Span) error {
		s.mu.Lock()
		done, dur := s.done, s.dur
		s.mu.Unlock()
		if !done {
			return fmt.Errorf("obs: span %q not ended", s.name)
		}
		end := s.start + dur
		children := s.Children()
		for _, c := range children {
			c.mu.Lock()
			cdone, cdur := c.done, c.dur
			c.mu.Unlock()
			if !cdone {
				return fmt.Errorf("obs: span %q not ended", c.name)
			}
			if c.start < s.start || c.start+cdur > end {
				return fmt.Errorf("obs: span %q [%v,%v] outside parent %q [%v,%v]",
					c.name, c.start, c.start+cdur, s.name, s.start, end)
			}
		}
		if err := checkTrackOverlap(children); err != nil {
			return err
		}
		for _, c := range children {
			if err := check(c); err != nil {
				return err
			}
		}
		return nil
	}
	roots := t.Roots()
	if err := checkTrackOverlap(roots); err != nil {
		return err
	}
	for _, r := range roots {
		if err := check(r); err != nil {
			return err
		}
	}
	return nil
}

// checkTrackOverlap verifies that sibling spans sharing a track are
// disjoint in time. Spans are assumed ended and pre-sorted by start.
func checkTrackOverlap(siblings []*Span) error {
	lastEnd := make(map[int]struct {
		end  time.Duration
		name string
	})
	for _, s := range siblings {
		prev, seen := lastEnd[s.track]
		if seen && s.start < prev.end {
			return fmt.Errorf("obs: siblings %q and %q overlap on track %d", prev.name, s.name, s.track)
		}
		lastEnd[s.track] = struct {
			end  time.Duration
			name string
		}{end: s.start + s.Duration(), name: s.name}
	}
	return nil
}
