package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

func TestServeDebugExposesVarsAndPprof(t *testing.T) {
	Publish("obs_test_var", func() any { return map[string]int{"x": 1} })
	// Re-publishing the same name must not panic and the newest
	// function must win.
	Publish("obs_test_var", func() any { return map[string]int{"x": 2} })

	d, err := ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	resp, err := http.Get("http://" + d.Addr() + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars status %d", resp.StatusCode)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("vars not JSON: %v\n%s", err, body)
	}
	var v map[string]int
	if err := json.Unmarshal(vars["obs_test_var"], &v); err != nil || v["x"] != 2 {
		t.Fatalf("obs_test_var = %s (err %v), want x=2", vars["obs_test_var"], err)
	}

	resp, err = http.Get("http://" + d.Addr() + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", resp.StatusCode)
	}
}
