package obs

import (
	"sync"
	"time"
)

// Window turns a cumulative Histogram into rolling-window statistics —
// the "current QPS, recent p99" view a status page needs next to the
// since-boot totals. It holds a bounded ring of timestamped cumulative
// snapshots; Delta subtracts the snapshot taken one window span ago
// from the present one, yielding the interval's own histogram
// (HistogramSnapshot.Sub).
//
// The design deliberately keeps the observation hot path untouched:
// nothing is recorded per observation — a periodic ticker (the server's
// window loop) calls Record with a fresh cumulative snapshot, so all
// windowing cost lands on the ticker and the scrape path. When no
// snapshot old enough exists yet (early uptime, or ticks disabled) the
// delta degrades gracefully to "since the oldest snapshot available" /
// "since start", with the true elapsed time reported alongside so rates
// stay honest.
type Window struct {
	span time.Duration

	mu      sync.Mutex
	start   time.Time
	entries []windowEntry // ascending by time
}

type windowEntry struct {
	t    time.Time
	snap HistogramSnapshot
}

// NewWindow creates a window of the given span (e.g. 60s), anchored at
// start for the pre-first-snapshot fallback.
func NewWindow(span time.Duration, start time.Time) *Window {
	if span <= 0 {
		span = time.Minute
	}
	return &Window{span: span, start: start}
}

// Span returns the window length.
func (w *Window) Span() time.Duration {
	if w == nil {
		return 0
	}
	return w.span
}

// Record appends one cumulative snapshot taken at t and prunes entries
// that can no longer serve as a delta base: everything older than
// t−span except the newest such entry (the base for the next Delta).
// Out-of-order timestamps are dropped. A nil *Window is a no-op sink.
func (w *Window) Record(t time.Time, snap HistogramSnapshot) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if n := len(w.entries); n > 0 && !w.entries[n-1].t.Before(t) {
		return
	}
	w.entries = append(w.entries, windowEntry{t: t, snap: snap})
	cut := t.Add(-w.span)
	// Keep the newest entry at or before the cut as the delta base.
	base := 0
	for base+1 < len(w.entries) && !w.entries[base+1].t.After(cut) {
		base++
	}
	if base > 0 {
		w.entries = append(w.entries[:0], w.entries[base:]...)
	}
}

// Delta returns the observations of (roughly) the last window span:
// cur minus the ring snapshot closest to now−span, plus the exact
// elapsed time that delta covers (for rate computation). With an empty
// ring the delta is cur itself over the time since the window's start
// anchor.
func (w *Window) Delta(now time.Time, cur HistogramSnapshot) (time.Duration, HistogramSnapshot) {
	if w == nil {
		return 0, HistogramSnapshot{}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.entries) == 0 {
		elapsed := now.Sub(w.start)
		if elapsed <= 0 {
			elapsed = time.Nanosecond
		}
		return elapsed, cur
	}
	cut := now.Add(-w.span)
	base := w.entries[0]
	for _, e := range w.entries[1:] {
		if e.t.After(cut) {
			break
		}
		base = e
	}
	elapsed := now.Sub(base.t)
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	return elapsed, cur.Sub(base.snap)
}
