package obs

import (
	"io"
	"strconv"
	"strings"
)

// MetricWriter renders metrics in the Prometheus text exposition
// format (version 0.0.4) with nothing but the stdlib — the /metrics
// endpoint of rankserved is built on it. Usage is declarative and
// ordered: Metric emits the # HELP / # TYPE preamble of a family, then
// Value / Int / Histogram emit its samples. The writer latches the
// first write error; check Err once at the end instead of per call.
type MetricWriter struct {
	w   io.Writer
	err error
}

// Label is one name="value" sample label.
type Label struct {
	Name, Value string
}

// NewMetricWriter wraps w.
func NewMetricWriter(w io.Writer) *MetricWriter { return &MetricWriter{w: w} }

// Err returns the first write error encountered.
func (m *MetricWriter) Err() error { return m.err }

func (m *MetricWriter) print(s string) {
	if m.err != nil {
		return
	}
	_, m.err = io.WriteString(m.w, s)
}

// escapeHelp escapes a HELP docstring: backslash and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value: backslash, double-quote, newline.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Metric opens a metric family: emits its # HELP and # TYPE lines.
// typ is one of "counter", "gauge", "histogram".
func (m *MetricWriter) Metric(name, typ, help string) {
	var b strings.Builder
	b.WriteString("# HELP ")
	b.WriteString(name)
	b.WriteByte(' ')
	b.WriteString(escapeHelp(help))
	b.WriteString("\n# TYPE ")
	b.WriteString(name)
	b.WriteByte(' ')
	b.WriteString(typ)
	b.WriteByte('\n')
	m.print(b.String())
}

func appendLabels(b *strings.Builder, labels []Label) {
	if len(labels) == 0 {
		return
	}
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// Value emits one float-valued sample line.
func (m *MetricWriter) Value(name string, value float64, labels ...Label) {
	var b strings.Builder
	b.WriteString(name)
	appendLabels(&b, labels)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatFloat(value, 'g', -1, 64))
	b.WriteByte('\n')
	m.print(b.String())
}

// Int emits one integer-valued sample line (exact, no float rounding).
func (m *MetricWriter) Int(name string, value int64, labels ...Label) {
	var b strings.Builder
	b.WriteString(name)
	appendLabels(&b, labels)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt(value, 10))
	b.WriteByte('\n')
	m.print(b.String())
}

// Histogram renders a power-of-two HistogramSnapshot as a native
// Prometheus histogram: cumulative <name>_bucket series with le upper
// bounds, plus <name>_sum and <name>_count. The caller must have opened
// the family with Metric(name, "histogram", ...).
//
// Observations are integers in the histogram's native unit; per is how
// many of those units make one exposition unit (e.g. 1e6 for
// microsecond observations exported as seconds; 0 or 1 for none). A
// divisor rather than a multiplier because powers of ten are exact as
// divisors — 5106 µs renders as 0.005106, not 0.005105999…9. Bucket i
// of the source holds values in [2^(i-1), 2^i), so le = (2^i − 1)/per
// is an exact inclusive upper bound for integer data and the cumulative
// counts are exact, not approximations. Only buckets that hold
// observations emit a line (plus the mandatory le="+Inf"), keeping
// series count bounded by data shape rather than the 65-bucket range.
func (m *MetricWriter) Histogram(name string, s HistogramSnapshot, per float64, labels ...Label) {
	if per == 0 {
		per = 1
	}
	le := append(append([]Label(nil), labels...), Label{Name: "le"})
	cum := int64(0)
	for i := 0; i < histBuckets; i++ {
		n, ok := s.Buckets[i]
		if !ok || n <= 0 {
			continue
		}
		cum += n
		le[len(le)-1].Value = strconv.FormatFloat(float64(BucketUpper(i)-1)/per, 'g', -1, 64)
		m.Int(name+"_bucket", cum, le...)
	}
	le[len(le)-1].Value = "+Inf"
	m.Int(name+"_bucket", s.Count, le...)
	m.Value(name+"_sum", float64(s.Sum)/per, labels...)
	m.Int(name+"_count", s.Count, labels...)
}
