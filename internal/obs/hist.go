package obs

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

// histBuckets is the number of power-of-two buckets: bucket i counts
// observations v with bits.Len64(v) == i, i.e. bucket 0 holds v == 0,
// bucket i (i ≥ 1) holds v ∈ [2^(i-1), 2^i). 64 buckets cover the
// whole non-negative int64 range.
const histBuckets = 65

// Histogram is a lock-free power-of-two histogram: one atomic counter
// per bucket plus count/sum/max. Observe costs two atomic adds and a
// CAS loop only when a new maximum is seen — cheap enough to record
// every shuffle partition size, posting-list length and cluster size.
// The zero value is ready to use; a nil *Histogram is a valid no-op
// sink.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// Observe records one non-negative value (negative values are clamped
// to zero).
//
//ranklint:allocfree
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Snapshot returns a plain-value copy. Concurrent Observe calls may be
// partially included; each bucket is individually consistent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			if s.Buckets == nil {
				s.Buckets = make(map[int]int64)
			}
			s.Buckets[i] = n
		}
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram. Buckets
// maps bucket index i (observations in [2^(i-1), 2^i), index 0 = zero
// values) to its count; empty buckets are omitted.
type HistogramSnapshot struct {
	Count   int64
	Sum     int64
	Max     int64
	Buckets map[int]int64
}

// BucketUpper returns the exclusive upper value bound of bucket i.
func BucketUpper(i int) int64 {
	if i <= 0 {
		return 1
	}
	if i >= 63 {
		return int64(1) << 62 // saturate, avoids overflow
	}
	return int64(1) << i
}

// Quantile returns an upper bound for the q-quantile (q ∈ [0, 1]): the
// exclusive upper edge of the bucket holding the q·Count-th
// observation, capped at Max. Returns 0 on an empty histogram.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(q * float64(s.Count))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		n, ok := s.Buckets[i]
		if !ok {
			continue
		}
		seen += n
		if seen >= target {
			upper := BucketUpper(i) - 1
			if upper > s.Max {
				upper = s.Max
			}
			return upper
		}
	}
	return s.Max
}

// Sub returns the observations recorded between old and s: two
// cumulative snapshots of the same histogram turn into the delta over
// the interval separating them. Count and Sum subtract exactly; the
// delta's Max is only bracketed (the exact maximum of the interval is
// not recoverable from cumulative buckets), reported as the upper edge
// of the highest bucket that grew, capped at the cumulative Max.
// Counter resets (old ahead of s) clamp to an empty delta.
func (s HistogramSnapshot) Sub(old HistogramSnapshot) HistogramSnapshot {
	d := HistogramSnapshot{Count: s.Count - old.Count, Sum: s.Sum - old.Sum}
	if d.Count <= 0 {
		return HistogramSnapshot{}
	}
	if d.Sum < 0 {
		d.Sum = 0
	}
	top := -1
	for i, n := range s.Buckets {
		m := n - old.Buckets[i]
		if m <= 0 {
			continue
		}
		if d.Buckets == nil {
			d.Buckets = make(map[int]int64, len(s.Buckets))
		}
		d.Buckets[i] = m
		if i > top {
			top = i
		}
	}
	if top >= 0 {
		d.Max = BucketUpper(top) - 1
		if d.Max > s.Max {
			d.Max = s.Max
		}
	}
	return d
}

// Mean returns the exact average of the observations (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// String renders the summary form used in logs and metric dumps:
// count, mean, p50/p95 upper bounds and max.
func (s HistogramSnapshot) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50<=%d p95<=%d max=%d",
		s.Count, s.Mean(), s.Quantile(0.50), s.Quantile(0.95), s.Max)
}
