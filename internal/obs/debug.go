package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// DebugServer is the opt-in expvar + pprof HTTP listener for
// long-running commands (cmd/bench, cmd/experiments). It serves
//
//	/debug/vars        — expvar JSON, including any vars published
//	                     through Publish;
//	/debug/pprof/...   — the standard runtime profiles.
//
// It binds a private mux, so importing this package never mutates
// http.DefaultServeMux routes.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// publishedMu guards the indirection map below. expvar keeps a
// process-global registry that panics on double-registration, so
// Publish registers each name once and routes later calls through the
// map — callers may re-Publish a name (e.g. one engine per join) and
// the newest function wins.
var (
	publishedMu  sync.Mutex
	publishedFns = map[string]func() any{}
)

// Publish registers fn under name in the process expvar registry,
// replacing a previous Publish of the same name. The value appears in
// /debug/vars of every DebugServer. Names already registered by other
// packages are left alone.
func Publish(name string, fn func() any) {
	publishedMu.Lock()
	defer publishedMu.Unlock()
	_, mine := publishedFns[name]
	if !mine && expvar.Get(name) != nil {
		return // foreign registration; leave it alone
	}
	publishedFns[name] = fn
	if !mine {
		expvar.Publish(name, expvar.Func(func() any {
			publishedMu.Lock()
			f := publishedFns[name]
			publishedMu.Unlock()
			return f()
		}))
	}
}

// ServeDebug starts the debug listener on addr (e.g. "localhost:6060";
// ":0" picks a free port — see Addr). The server runs until Close.
func ServeDebug(addr string) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux}
	d := &DebugServer{ln: ln, srv: srv}
	go srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return d, nil
}

// Addr returns the bound listen address.
func (d *DebugServer) Addr() string { return d.ln.Addr().String() }

// Close stops the listener.
func (d *DebugServer) Close() error { return d.srv.Close() }
