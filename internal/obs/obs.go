// Package obs is the zero-dependency observability layer of the
// engine: hierarchical span tracing, typed filter-effectiveness
// counters, and lock-cheap power-of-two histograms.
//
// The paper's evaluation (§7) reasons in candidate counts surviving
// each filter (prefix, position, triangle inequality) and in partition
// skew (the δ repartitioning trigger of §6). This package makes both
// observable on every run:
//
//   - Tracer records phase → stage → partition-task spans with
//     start/duration/attributes and exports Chrome trace-event JSON
//     (loadable in Perfetto / chrome://tracing) plus a compact text
//     tree. A nil *Tracer is a valid no-op sink: every method is
//     nil-receiver safe, so instrumentation sites pay one nil check
//     when tracing is disabled.
//
//   - FilterCounters classifies the fate of every candidate pair a
//     join enumerates: pruned by the prefix-token rank check, pruned
//     by the full position filter, pruned by the triangle inequality,
//     accepted unverified by a triangle certificate, or verified. The
//     counters are conserved: Generated equals the sum of the four
//     fates plus Verified.
//
//   - Histogram buckets observations by power of two with atomic
//     counters — cheap enough to record every shuffle partition size,
//     posting-list length and cluster size, replacing the lone
//     max-partition skew signal.
//
// Everything here is stdlib-only; the debug HTTP listener (expvar +
// pprof) lives in ServeDebug and is opt-in.
package obs

import "strconv"

// Attr is one span attribute. Values are strings; use Int for
// numeric attributes.
type Attr struct {
	Key, Value string
}

// String builds a string-valued attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer-valued attribute.
func Int(key string, value int64) Attr {
	return Attr{Key: key, Value: strconv.FormatInt(value, 10)}
}
