package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *Tracer
	sp := tr.StartScope("a")
	if sp != nil {
		t.Fatalf("nil tracer StartScope = %v, want nil", sp)
	}
	// Every span method must be callable on nil.
	sp.SetAttr("k", "v")
	sp.SetInt("n", 1)
	sp.End()
	if c := sp.StartChild("c"); c != nil {
		t.Fatalf("nil span StartChild = %v", c)
	}
	if c := sp.StartTask("t"); c != nil {
		t.Fatalf("nil span StartTask = %v", c)
	}
	if got := sp.Name(); got != "" {
		t.Fatalf("nil span Name = %q", got)
	}
	if tr.Roots() != nil || tr.Tree() != "" || tr.Validate() != nil {
		t.Fatal("nil tracer accessors should be empty no-ops")
	}
	if err := tr.WriteChromeTrace(&bytes.Buffer{}); err == nil {
		t.Fatal("nil tracer WriteChromeTrace should error")
	}
}

func TestScopeNestingAndCurrent(t *testing.T) {
	tr := NewTracer()
	root := tr.StartScope("root")
	child := tr.StartScope("child")
	grand := tr.StartTask("grand") // parents to current == child
	grand.End()
	child.End()
	sibling := tr.StartScope("sibling") // current back to root
	sibling.End()
	root.End()

	roots := tr.Roots()
	if len(roots) != 1 || roots[0].Name() != "root" {
		t.Fatalf("roots = %v", names(roots))
	}
	got := names(roots[0].Children())
	want := []string{"child", "sibling"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("root children = %v, want %v", got, want)
	}
	if g := names(roots[0].Children()[0].Children()); strings.Join(g, ",") != "grand" {
		t.Fatalf("child children = %v", g)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesUnendedSpan(t *testing.T) {
	tr := NewTracer()
	sp := tr.StartScope("open")
	if err := tr.Validate(); err == nil {
		t.Fatal("Validate should flag an unended span")
	}
	sp.End()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentTasksLeaseDistinctTracks(t *testing.T) {
	tr := NewTracer()
	root := tr.StartScope("stage")
	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp := root.StartTask("task", Int("i", int64(i)))
			time.Sleep(time.Millisecond)
			sp.End()
		}(i)
	}
	wg.Wait()
	root.End()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Track reuse keeps track ids bounded by peak concurrency, and two
	// overlapping tasks never share one.
	if len(root.Children()) != n {
		t.Fatalf("children = %d, want %d", len(root.Children()), n)
	}
}

func TestChromeTraceExportParses(t *testing.T) {
	tr := NewTracer()
	root := tr.StartScope("join/CL", String("algo", "CL"))
	sh := tr.StartTask("shuffle", Int("records", 100))
	task := sh.StartTask("scan", Int("partition", 0))
	task.End()
	sh.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			TS   float64           `json:"ts"`
			PID  int               `json:"pid"`
			TID  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	byName := map[string]bool{}
	for _, ev := range file.TraceEvents {
		byName[ev.Name] = true
	}
	for _, want := range []string{"process_name", "join/CL", "shuffle", "scan"} {
		if !byName[want] {
			t.Fatalf("trace missing event %q; have %v", want, buf.String())
		}
	}
}

func TestTreeStringDepthAndDetail(t *testing.T) {
	tr := NewTracer()
	root := tr.StartScope("root")
	child := tr.StartScope("child")
	leaf := child.StartChild("leaf")
	leaf.End()
	child.End()
	root.End()

	flat := tr.TreeString(2, false)
	want := "root\n  child\n"
	if flat != want {
		t.Fatalf("TreeString(2,false) = %q, want %q", flat, want)
	}
	full := tr.Tree()
	if !strings.Contains(full, "leaf") {
		t.Fatalf("full tree missing leaf: %q", full)
	}
}

func TestSetAttrReplaces(t *testing.T) {
	tr := NewTracer()
	sp := tr.StartScope("s")
	sp.SetInt("records", 1)
	sp.SetInt("records", 2)
	sp.End()
	attrs := sp.Attrs()
	if len(attrs) != 1 || attrs[0].Value != "2" {
		t.Fatalf("attrs = %v", attrs)
	}
}

func names(spans []*Span) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name()
	}
	return out
}
