package obs

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestTraceRingEviction(t *testing.T) {
	r := NewTraceRing(2)
	add := func(id string, slow bool) *TraceRecord {
		rec := &TraceRecord{ID: id, Name: "http /search", Slow: slow}
		r.Add(rec)
		return rec
	}
	a := add("a", false)
	b := add("b", true)
	c := add("c", false) // evicts a from recent
	if r.Get("a") != nil {
		t.Fatal("a should be evicted")
	}
	if r.Get("b") != b || r.Get("c") != c {
		t.Fatal("b and c should be retained")
	}
	// b was evicted from recent by c+d, but must stay addressable via
	// the slow ring.
	d := add("d", false)
	if r.Get("b") != b {
		t.Fatal("slow record must survive recent-ring eviction")
	}
	recent := r.Recent()
	if len(recent) != 2 || recent[0] != d || recent[1] != c {
		t.Fatalf("recent = %v", recent)
	}
	slow := r.Slow()
	if len(slow) != 1 || slow[0] != b {
		t.Fatalf("slow = %v", slow)
	}
	_ = a
}

func TestTraceRingIDReuse(t *testing.T) {
	r := NewTraceRing(2)
	first := &TraceRecord{ID: "x"}
	second := &TraceRecord{ID: "x"}
	r.Add(first)
	r.Add(second)
	if r.Get("x") != second {
		t.Fatal("latest record wins the ID")
	}
	// Evicting `first` must not unmap the newer record with the same ID.
	r.Add(&TraceRecord{ID: "y"})
	if r.Get("x") != second {
		t.Fatal("ID unmapped by stale eviction")
	}
}

func TestTraceRingNil(t *testing.T) {
	var r *TraceRing
	r.Add(&TraceRecord{ID: "z"}) // no-op
	if r.Get("z") != nil || r.Recent() != nil || r.Slow() != nil {
		t.Fatal("nil ring should be inert")
	}
}

func TestCompleteRetroactiveTrace(t *testing.T) {
	base := time.Now().Add(-time.Second)
	tr := NewTracerAt(base)
	s := tr.Complete("http /knn", base.Add(100*time.Millisecond), 50*time.Millisecond,
		String("request_id", "rid-1"))
	if !s.Done() || s.Duration() != 50*time.Millisecond {
		t.Fatalf("span = done=%v dur=%v", s.Done(), s.Duration())
	}
	if s.Start() != 100*time.Millisecond {
		t.Fatalf("start = %v", s.Start())
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("retroactive trace invalid: %v", err)
	}
	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"http /knn"`) {
		t.Fatalf("trace JSON missing span: %s", b.String())
	}
	// Starts before the tracer base clamp to 0 rather than rendering
	// negative timestamps.
	if s2 := tr.Complete("early", base.Add(-time.Hour), time.Millisecond); s2.Start() != 0 {
		t.Fatalf("pre-base start = %v", s2.Start())
	}
	var nilT *Tracer
	if nilT.Complete("x", base, 0) != nil {
		t.Fatal("nil tracer Complete should return nil")
	}
}

func ExampleTraceRing() {
	r := NewTraceRing(3)
	for i := 1; i <= 4; i++ {
		r.Add(&TraceRecord{ID: fmt.Sprintf("req-%d", i), Slow: i == 2})
	}
	for _, rec := range r.Recent() {
		fmt.Println("recent:", rec.ID)
	}
	for _, rec := range r.Slow() {
		fmt.Println("slow:", rec.ID)
	}
	// Output:
	// recent: req-4
	// recent: req-3
	// recent: req-2
	// slow: req-2
}
