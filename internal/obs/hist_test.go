package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 1, 2, 3, 4, 7, 8, 1024} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 9 || s.Max != 1024 || s.Sum != 1050 {
		t.Fatalf("snapshot = %+v", s)
	}
	// bits.Len64: 0→bucket0, 1→1, 2..3→2, 4..7→3, 8→4, 1024→11.
	want := map[int]int64{0: 1, 1: 2, 2: 2, 3: 2, 4: 1, 11: 1}
	for b, n := range want {
		if s.Buckets[b] != n {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", b, s.Buckets[b], n, s.Buckets)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	s := h.Snapshot()
	// p50 of 1..100 falls in bucket 6 ([32,64)); the upper bound is 63.
	if q := s.Quantile(0.5); q != 63 {
		t.Fatalf("p50 = %d, want 63", q)
	}
	// p95 and p100 land in the top bucket [64,128), capped at max 100.
	if q := s.Quantile(0.95); q != 100 {
		t.Fatalf("p95 = %d, want 100", q)
	}
	if q := s.Quantile(1); q != 100 {
		t.Fatalf("p100 = %d, want 100", q)
	}
	var empty HistogramSnapshot
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Fatal("empty histogram quantile/mean should be 0")
	}
}

func TestHistogramNilAndNegative(t *testing.T) {
	var h *Histogram
	h.Observe(5) // no-op, no panic
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("nil snapshot = %+v", s)
	}
	var real Histogram
	real.Observe(-7) // clamped to zero bucket
	if s := real.Snapshot(); s.Buckets[0] != 1 || s.Sum != 0 {
		t.Fatalf("negative observe snapshot = %+v", s)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(i % 100))
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Fatalf("count = %d, want %d", s.Count, workers*per)
	}
	if s.Max != 99 {
		t.Fatalf("max = %d, want 99", s.Max)
	}
}

func TestFilterCountersConservation(t *testing.T) {
	var c FilterCounters
	c.Add(FilterDelta{Generated: 10, PrunedPrefix: 2, PrunedPosition: 3, Verified: 5, Emitted: 1})
	c.Add(FilterDelta{Generated: 4, PrunedTriangle: 1, AcceptedUnverified: 1, Verified: 2, Emitted: 2})
	s := c.Snapshot()
	if !s.Conserved() {
		t.Fatalf("not conserved: %v", s)
	}
	if s.Generated != 14 || s.Emitted != 3 {
		t.Fatalf("snapshot = %v", s)
	}
	c.Reset()
	if !c.Snapshot().IsZero() {
		t.Fatalf("after reset: %v", c.Snapshot())
	}
	var nilC *FilterCounters
	nilC.Add(FilterDelta{Generated: 1}) // no-op
	nilC.Reset()
	if !nilC.Snapshot().IsZero() {
		t.Fatal("nil counters should snapshot zero")
	}
}

func ExampleHistogramSnapshot_String() {
	var h Histogram
	for _, v := range []int64{1, 2, 3, 100} {
		h.Observe(v)
	}
	fmt.Println(h.Snapshot())
	// Output:
	// n=4 mean=26.5 p50<=3 p95<=3 max=100
}
