package obs

import (
	"fmt"
	"sync/atomic"
)

// FilterDelta is a batch of filter-effectiveness observations, the
// unit kernels fold into FilterCounters once per kernel invocation
// (keeping the hot loops free of atomics). The fields obey the
// conservation law
//
//	Generated = PrunedPrefix + PrunedSignature + PrunedPosition +
//	            PrunedTriangle + AcceptedUnverified + Verified
//
// i.e. every candidate pair a join enumerates meets exactly one fate.
type FilterDelta struct {
	// Generated counts candidate pairs enumerated by a kernel or the
	// expansion phase.
	Generated int64
	// PrunedPrefix counts candidates discarded by the prefix-token
	// rank check while scanning a posting list (the single-item filter
	// applied at the indexed prefix item, §4).
	PrunedPrefix int64
	// PrunedSignature counts candidates discarded by the 64-bit
	// item-signature prefilter: an AND+popcount overlap upper bound
	// converted to an admissible Footrule lower bound
	// (filters.SignaturePrune), applied before any merged-pass kernel.
	PrunedSignature int64
	// PrunedPosition counts candidates discarded by the full position
	// filter (merged pass over both rankings' position indexes).
	PrunedPosition int64
	// PrunedTriangle counts candidates discarded by the
	// triangle-inequality lower bound of the expansion phase (§5.3).
	PrunedTriangle int64
	// AcceptedUnverified counts candidates admitted by a triangle
	// upper-bound certificate without computing their distance
	// (Options.UnverifiedPartials).
	AcceptedUnverified int64
	// Verified counts Footrule distance computations.
	Verified int64
	// Emitted counts result pairs written by the filter cascades,
	// before final deduplication.
	Emitted int64
}

// FilterCounters aggregates filter effectiveness across all
// concurrently executing kernels of a run. A nil *FilterCounters is a
// valid no-op sink.
type FilterCounters struct {
	generated          atomic.Int64
	prunedPrefix       atomic.Int64
	prunedSignature    atomic.Int64
	prunedPosition     atomic.Int64
	prunedTriangle     atomic.Int64
	acceptedUnverified atomic.Int64
	verified           atomic.Int64
	emitted            atomic.Int64
}

// Add folds one batch of observations in.
//
//ranklint:allocfree
func (c *FilterCounters) Add(d FilterDelta) {
	if c == nil {
		return
	}
	if d.Generated != 0 {
		c.generated.Add(d.Generated)
	}
	if d.PrunedPrefix != 0 {
		c.prunedPrefix.Add(d.PrunedPrefix)
	}
	if d.PrunedSignature != 0 {
		c.prunedSignature.Add(d.PrunedSignature)
	}
	if d.PrunedPosition != 0 {
		c.prunedPosition.Add(d.PrunedPosition)
	}
	if d.PrunedTriangle != 0 {
		c.prunedTriangle.Add(d.PrunedTriangle)
	}
	if d.AcceptedUnverified != 0 {
		c.acceptedUnverified.Add(d.AcceptedUnverified)
	}
	if d.Verified != 0 {
		c.verified.Add(d.Verified)
	}
	if d.Emitted != 0 {
		c.emitted.Add(d.Emitted)
	}
}

// Reset zeroes all counters.
func (c *FilterCounters) Reset() {
	if c == nil {
		return
	}
	c.generated.Store(0)
	c.prunedPrefix.Store(0)
	c.prunedSignature.Store(0)
	c.prunedPosition.Store(0)
	c.prunedTriangle.Store(0)
	c.acceptedUnverified.Store(0)
	c.verified.Store(0)
	c.emitted.Store(0)
}

// Snapshot returns the current counter values as plain integers.
func (c *FilterCounters) Snapshot() FiltersSnapshot {
	if c == nil {
		return FiltersSnapshot{}
	}
	return FiltersSnapshot{
		Generated:          c.generated.Load(),
		PrunedPrefix:       c.prunedPrefix.Load(),
		PrunedSignature:    c.prunedSignature.Load(),
		PrunedPosition:     c.prunedPosition.Load(),
		PrunedTriangle:     c.prunedTriangle.Load(),
		AcceptedUnverified: c.acceptedUnverified.Load(),
		Verified:           c.verified.Load(),
		Emitted:            c.emitted.Load(),
	}
}

// FiltersSnapshot is a plain-value copy of FilterCounters; see
// FilterDelta for the field semantics and conservation law.
type FiltersSnapshot struct {
	Generated          int64 `json:"generated"`
	PrunedPrefix       int64 `json:"pruned_prefix"`
	PrunedSignature    int64 `json:"pruned_signature"`
	PrunedPosition     int64 `json:"pruned_position"`
	PrunedTriangle     int64 `json:"pruned_triangle"`
	AcceptedUnverified int64 `json:"accepted_unverified"`
	Verified           int64 `json:"verified"`
	Emitted            int64 `json:"emitted"`
}

// Conserved reports whether the conservation law holds: every
// generated candidate was pruned, accepted unverified, or verified.
func (s FiltersSnapshot) Conserved() bool {
	return s.Generated == s.PrunedPrefix+s.PrunedSignature+s.PrunedPosition+s.PrunedTriangle+s.AcceptedUnverified+s.Verified
}

// IsZero reports whether no candidate was observed.
func (s FiltersSnapshot) IsZero() bool { return s == FiltersSnapshot{} }

func (s FiltersSnapshot) String() string {
	return fmt.Sprintf("generated=%d prunedPrefix=%d prunedSignature=%d prunedPosition=%d prunedTriangle=%d acceptedUnverified=%d verified=%d emitted=%d",
		s.Generated, s.PrunedPrefix, s.PrunedSignature, s.PrunedPosition, s.PrunedTriangle, s.AcceptedUnverified, s.Verified, s.Emitted)
}
