package obs

import (
	"testing"
	"time"
)

func TestSnapshotSub(t *testing.T) {
	var h Histogram
	for _, v := range []int64{1, 2, 3} {
		h.Observe(v)
	}
	old := h.Snapshot()
	for _, v := range []int64{4, 100} {
		h.Observe(v)
	}
	d := h.Snapshot().Sub(old)
	if d.Count != 2 || d.Sum != 104 {
		t.Fatalf("delta = %+v", d)
	}
	// 4 → bucket 3, 100 → bucket 7.
	if d.Buckets[3] != 1 || d.Buckets[7] != 1 || len(d.Buckets) != 2 {
		t.Fatalf("delta buckets = %v", d.Buckets)
	}
	// Max is bracketed: top grown bucket is 7, upper edge 127, capped
	// at the cumulative max 100.
	if d.Max != 100 {
		t.Fatalf("delta max = %d, want 100", d.Max)
	}
	if q := d.Quantile(0.5); q != 7 {
		t.Fatalf("delta p50 = %d, want 7", q)
	}
}

func TestSnapshotSubResetAndEmpty(t *testing.T) {
	a := HistogramSnapshot{Count: 5, Sum: 50, Buckets: map[int]int64{3: 5}}
	b := HistogramSnapshot{Count: 2, Sum: 10, Buckets: map[int]int64{3: 2}}
	// No growth → empty delta.
	if d := a.Sub(a); d.Count != 0 || d.Buckets != nil {
		t.Fatalf("self delta = %+v", d)
	}
	// Counter reset (old ahead) → empty delta, not negative counts.
	if d := b.Sub(a); d.Count != 0 {
		t.Fatalf("reset delta = %+v", d)
	}
}

func TestWindowDelta(t *testing.T) {
	t0 := time.Unix(1000, 0)
	w := NewWindow(time.Minute, t0)
	var h Histogram

	// Before any snapshot, delta falls back to since-start.
	h.Observe(10)
	elapsed, d := w.Delta(t0.Add(5*time.Second), h.Snapshot())
	if elapsed != 5*time.Second || d.Count != 1 {
		t.Fatalf("fallback delta = %v over %v", d, elapsed)
	}

	// Record a snapshot every 15s while observing.
	for i := 1; i <= 8; i++ {
		h.Observe(int64(i))
		w.Record(t0.Add(time.Duration(i)*15*time.Second), h.Snapshot())
	}
	// At t0+120s, the base should be the snapshot at t0+60s (i=4):
	// observations 5..8 are inside the window.
	now := t0.Add(120 * time.Second)
	h.Observe(999) // not yet snapshotted — still part of "current"
	elapsed, d = w.Delta(now, h.Snapshot())
	if d.Count != 5 { // 5,6,7,8,999
		t.Fatalf("window delta count = %d (%+v)", d.Count, d)
	}
	if elapsed != 60*time.Second {
		t.Fatalf("window elapsed = %v, want 60s", elapsed)
	}

	// The ring must stay bounded: old entries beyond the base are gone.
	w.mu.Lock()
	n := len(w.entries)
	w.mu.Unlock()
	if n > 5 {
		t.Fatalf("ring grew to %d entries", n)
	}
}

func TestWindowOutOfOrderAndNil(t *testing.T) {
	t0 := time.Unix(0, 0)
	w := NewWindow(time.Minute, t0)
	var s HistogramSnapshot
	w.Record(t0.Add(10*time.Second), s)
	w.Record(t0.Add(5*time.Second), s) // dropped
	w.mu.Lock()
	n := len(w.entries)
	w.mu.Unlock()
	if n != 1 {
		t.Fatalf("out-of-order record kept, entries = %d", n)
	}

	var nilW *Window
	nilW.Record(t0, s) // no-op
	if sp := nilW.Span(); sp != 0 {
		t.Fatalf("nil window span = %v", sp)
	}
	if elapsed, d := nilW.Delta(t0, s); elapsed != 0 || d.Count != 0 {
		t.Fatalf("nil window delta = %v over %v", d, elapsed)
	}

	if NewWindow(0, t0).Span() != time.Minute {
		t.Fatal("zero span should default to one minute")
	}
}
