package obs

import (
	"strconv"
	"strings"
	"testing"
)

func TestMetricWriterGolden(t *testing.T) {
	var b strings.Builder
	m := NewMetricWriter(&b)
	m.Metric("test_requests_total", "counter", "Total requests.")
	m.Int("test_requests_total", 42, Label{Name: "path", Value: "/search"})
	m.Metric("test_ratio", "gauge", `Quoted "help" with \slash
and newline.`)
	m.Value("test_ratio", 0.5, Label{Name: "q", Value: `a"b\c` + "\nd"})
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_requests_total Total requests.
# TYPE test_requests_total counter
test_requests_total{path="/search"} 42
# HELP test_ratio Quoted "help" with \\slash\nand newline.
# TYPE test_ratio gauge
test_ratio{q="a\"b\\c\nd"} 0.5
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestMetricWriterHistogram(t *testing.T) {
	var h Histogram
	// µs-scale observations exported as seconds.
	for _, v := range []int64{0, 3, 3, 100, 5000} {
		h.Observe(v)
	}
	var b strings.Builder
	m := NewMetricWriter(&b)
	m.Metric("test_latency_seconds", "histogram", "Latency.")
	m.Histogram("test_latency_seconds", h.Snapshot(), 1e6, Label{Name: "path", Value: "/knn"})
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	// 0 → bucket 0 (le = 0), 3 → bucket 2 (le = 3e-06), 100 → bucket 7
	// (le = 1.27e-04), 5000 → bucket 13 (le = 8.191e-03); cumulative.
	for _, line := range []string{
		`test_latency_seconds_bucket{path="/knn",le="0"} 1`,
		`test_latency_seconds_bucket{path="/knn",le="3e-06"} 3`,
		`test_latency_seconds_bucket{path="/knn",le="0.000127"} 4`,
		`test_latency_seconds_bucket{path="/knn",le="0.008191"} 5`,
		`test_latency_seconds_bucket{path="/knn",le="+Inf"} 5`,
		`test_latency_seconds_sum{path="/knn"} 0.005106`,
		`test_latency_seconds_count{path="/knn"} 5`,
	} {
		if !strings.Contains(got, line+"\n") {
			t.Fatalf("missing line %q in:\n%s", line, got)
		}
	}
	// Buckets must be cumulative and monotone.
	prev := int64(-1)
	for _, line := range strings.Split(got, "\n") {
		if !strings.HasPrefix(line, "test_latency_seconds_bucket") {
			continue
		}
		v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("non-monotone buckets at %q", line)
		}
		prev = v
	}
}

func TestMetricWriterEmptyHistogram(t *testing.T) {
	var b strings.Builder
	m := NewMetricWriter(&b)
	m.Metric("test_empty", "histogram", "Empty.")
	m.Histogram("test_empty", HistogramSnapshot{}, 0)
	got := b.String()
	for _, line := range []string{
		`test_empty_bucket{le="+Inf"} 0`,
		`test_empty_sum 0`,
		`test_empty_count 0`,
	} {
		if !strings.Contains(got, line+"\n") {
			t.Fatalf("missing %q in:\n%s", line, got)
		}
	}
}
