package shard

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"time"

	"rankjoin/internal/rankings"
	"rankjoin/internal/testutil"
)

// bruteRange is the reference oracle: a full scan with exact Footrule.
func bruteRange(rs []*rankings.Ranking, q *rankings.Ranking, maxDist int, exclude int64) []Neighbor {
	var out []Neighbor
	for _, r := range rs {
		if r.ID == exclude {
			continue
		}
		if d := rankings.Footrule(q, r); d <= maxDist {
			out = append(out, Neighbor{ID: r.ID, Dist: d})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	return out
}

func sameNeighbors(a, b []Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func buildIndex(t *testing.T, rs []*rankings.Ranking, shards int) *Index {
	t.Helper()
	x := New(Config{Shards: shards, PivotsPerShard: 6, Seed: 3})
	for _, r := range rs {
		if err := x.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	return x
}

func TestSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rs := testutil.ClusteredDataset(rng, 40, 4, 10, 120)
	x := buildIndex(t, rs, 4)
	if x.Len() != len(rs) {
		t.Fatalf("Len = %d, want %d", x.Len(), len(rs))
	}
	maxDist := rankings.Threshold(0.25, 10)
	for _, q := range rs[:50] {
		got, err := x.Search(q, maxDist, q.ID)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteRange(rs, q, maxDist, q.ID)
		if !sameNeighbors(got, want) {
			t.Fatalf("query %d: got %v want %v", q.ID, got, want)
		}
	}
}

func TestKNNMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	rs := testutil.ClusteredDataset(rng, 30, 4, 8, 80)
	x := buildIndex(t, rs, 4)
	for _, q := range rs[:30] {
		for _, n := range []int{1, 5, 20, len(rs) + 10} {
			got, err := x.KNN(q, n, q.ID)
			if err != nil {
				t.Fatal(err)
			}
			all := bruteRange(rs, q, rankings.MaxFootrule(8), q.ID)
			want := all
			if len(want) > n {
				want = want[:n]
			}
			if !sameNeighbors(got, want) {
				t.Fatalf("query %d knn %d: got %v want %v", q.ID, n, got, want)
			}
		}
	}
}

func TestInsertDeleteUpsert(t *testing.T) {
	x := New(Config{Shards: 2, PivotsPerShard: 4})
	a := rankings.MustNew(1, []rankings.Item{1, 2, 3})
	b := rankings.MustNew(2, []rankings.Item{3, 2, 1})
	for _, r := range []*rankings.Ranking{a, b} {
		if err := x.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if got, ok := x.Get(1); !ok || got != a {
		t.Fatalf("Get(1) = %v %v", got, ok)
	}
	// Upsert replaces in place.
	a2 := rankings.MustNew(1, []rankings.Item{2, 1, 3})
	if err := x.Insert(a2); err != nil {
		t.Fatal(err)
	}
	if x.Len() != 2 {
		t.Fatalf("Len after upsert = %d, want 2", x.Len())
	}
	if got, _ := x.Get(1); got != a2 {
		t.Fatal("upsert did not replace ranking 1")
	}
	if ok, _ := x.Delete(2); !ok {
		t.Fatal("Delete(2) should succeed")
	}
	if ok, _ := x.Delete(2); ok {
		t.Fatal("second Delete(2) should miss")
	}
	if x.Len() != 1 {
		t.Fatalf("Len after delete = %d, want 1", x.Len())
	}
	// Mismatched k rejected with the typed error.
	if err := x.Insert(rankings.MustNew(9, []rankings.Item{1, 2})); !errors.Is(err, ErrKMismatch) {
		t.Fatalf("mixed-k insert error = %v, want ErrKMismatch", err)
	}
	if _, err := x.Search(rankings.MustNew(9, []rankings.Item{1, 2}), 3, NoExclude); !errors.Is(err, ErrKMismatch) {
		t.Fatalf("mixed-k search error = %v, want ErrKMismatch", err)
	}
	if err := x.Insert(nil); !errors.Is(err, ErrNilRanking) {
		t.Fatalf("nil insert error = %v, want ErrNilRanking", err)
	}
}

func TestEmptyIndexSearch(t *testing.T) {
	x := New(Config{})
	q := rankings.MustNew(0, []rankings.Item{1, 2, 3})
	hits, err := x.Search(q, 10, NoExclude)
	if err != nil || len(hits) != 0 {
		t.Fatalf("empty index search = %v, %v", hits, err)
	}
	if _, err := x.KNN(q, 0, NoExclude); err == nil {
		t.Fatal("knn with n=0 accepted")
	}
}

// TestRePivot drives enough churn through one shard to trigger the
// background re-pivot and checks that pivots appear, results stay
// correct, and churn resets.
func TestRePivot(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	rs := testutil.RandDataset(rng, 400, 8, 200)
	x := New(Config{Shards: 1, PivotsPerShard: 6, Seed: 5})
	for _, r := range rs {
		if err := x.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return x.Stats()[0].RePivots >= 1 && !x.shards[0].repivoting.Load() })
	st := x.Stats()[0]
	if st.Pivots == 0 {
		t.Fatalf("no pivots after re-pivot: %+v", st)
	}
	// Churn past half the population forces another round.
	before := x.Stats()[0].RePivots
	for _, r := range rs[:250] {
		fresh := testutil.RandRanking(rng, r.ID, 8, 200)
		if err := x.Insert(fresh); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return x.Stats()[0].RePivots > before && !x.shards[0].repivoting.Load() })

	// Correctness after all the churn.
	cur, _ := x.Snapshot()
	maxDist := rankings.Threshold(0.2, 8)
	for _, q := range cur[:20] {
		got, err := x.Search(q, maxDist, q.ID)
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteRange(cur, q, maxDist, q.ID); !sameNeighbors(got, want) {
			t.Fatalf("post-repivot query %d: got %v want %v", q.ID, got, want)
		}
	}
	// Pruning should actually engage once pivots exist (the signature
	// prefilter rejects most candidates before the pivot table sees
	// them, so the two classes are asserted together).
	f := x.Filters().Snapshot()
	if f.PrunedSignature+f.PrunedTriangle == 0 {
		t.Fatalf("pruning never fired: %v", f)
	}
	if f.Generated != f.PrunedSignature+f.PrunedTriangle+f.Verified {
		t.Fatalf("filter conservation violated: %v", f)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

// TestSnapshotEpochConsistency: equal epochs must mean equal contents.
func TestSnapshotEpochConsistency(t *testing.T) {
	x := New(Config{Shards: 2, PivotsPerShard: 4})
	a := rankings.MustNew(1, []rankings.Item{1, 2, 3})
	if err := x.Insert(a); err != nil {
		t.Fatal(err)
	}
	rs1, es1 := x.Snapshot()
	rs2, es2 := x.Snapshot()
	if len(es1) != len(es2) {
		t.Fatal("epoch vector length changed")
	}
	for i := range es1 {
		if es1[i] != es2[i] {
			t.Fatalf("epochs moved without mutation: %v vs %v", es1, es2)
		}
	}
	if len(rs1) != len(rs2) || rs1[0] != rs2[0] {
		t.Fatal("identical epochs but different snapshots")
	}
	if _, err := x.Delete(1); err != nil {
		t.Fatal(err)
	}
	_, es3 := x.Snapshot()
	moved := false
	for i := range es3 {
		if es3[i] != es1[i] {
			moved = true
		}
	}
	if !moved {
		t.Fatal("mutation did not move any shard epoch")
	}
}

func TestBatchMatchesSingles(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	rs := testutil.ClusteredDataset(rng, 25, 4, 8, 100)
	x := buildIndex(t, rs, 3)
	maxDist := rankings.Threshold(0.3, 8)
	qs := make([]Query, 0, 10)
	for _, q := range rs[:10] {
		qs = append(qs, Query{R: q, MaxDist: maxDist, Exclude: q.ID})
	}
	qs = append(qs, Query{R: rs[3], KNN: 4, Exclude: rs[3].ID})
	batch, err := x.SearchBatch(qs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		single, err := x.Search(qs[i].R, maxDist, qs[i].Exclude)
		if err != nil {
			t.Fatal(err)
		}
		if !sameNeighbors(batch[i], single) {
			t.Fatalf("batch[%d] = %v, single = %v", i, batch[i], single)
		}
	}
	single, err := x.KNN(rs[3], 4, rs[3].ID)
	if err != nil {
		t.Fatal(err)
	}
	if !sameNeighbors(batch[10], single) {
		t.Fatalf("batch knn = %v, single = %v", batch[10], single)
	}
}

// TestKNNBoundaryTie pins the (dist, id) tie order at the heap
// boundary: once the result heap is full, a candidate at exactly the
// worst kept distance but with a smaller id must still displace the
// root. A verification bound of worst()-1 (the historical off-by-one)
// silently drops such candidates; found by rankcheck seed 2
// (testdata/seed2-shard-pairs.repro in internal/check).
func TestKNNBoundaryTie(t *testing.T) {
	x := New(Config{Shards: 1, PivotsPerShard: 2, Seed: 1})
	q := rankings.MustNew(1000, []rankings.Item{1, 2})
	// Two identical rankings, equidistant from q; the larger id is
	// inserted (and therefore scanned) first, so the heap is full with
	// id 10 when id 5 arrives at the same distance.
	for _, id := range []int64{10, 5} {
		if err := x.Insert(rankings.MustNew(id, []rankings.Item{3, 4})); err != nil {
			t.Fatal(err)
		}
	}
	got, err := x.KNN(q, 1, NoExclude)
	if err != nil {
		t.Fatal(err)
	}
	want := []Neighbor{{ID: 5, Dist: rankings.Footrule(q, rankings.MustNew(5, []rankings.Item{3, 4}))}}
	if !sameNeighbors(got, want) {
		t.Errorf("KNN tie order: got %v, want %v (smaller id wins distance ties)", got, want)
	}
}
