package shard

import (
	"fmt"
	"sync"
	"sync/atomic"

	"rankjoin/internal/obs"
	"rankjoin/internal/rankings"
)

// Config sizes a sharded index.
type Config struct {
	// Shards is the number of index partitions (default 8). More shards
	// mean finer write locking and more fan-out parallelism per query.
	Shards int
	// PivotsPerShard is the pivot-table width (default 8).
	PivotsPerShard int
	// Seed drives pivot selection; shards derive distinct streams.
	Seed int64
}

// Index is the sharded dynamic metric index: rankings are routed to
// shards by hashed id, every shard is independently mutable and
// searchable, and queries fan out across all shards with the results
// merged through a bounded heap. All methods are safe for concurrent
// use.
type Index struct {
	shards    []*Shard
	spanNames []string // precomputed "shard/i" task names (no per-sweep Sprintf)
	filters   obs.FilterCounters
	pool      sync.Pool // of *Batch, for the copying Search/KNN/SearchBatch wrappers

	// rePivotHook/writeHook are shared with every shard;
	// SetRePivotHook/SetWriteHook swap them.
	rePivotHook atomic.Pointer[RePivotHook]
	writeHook   atomic.Pointer[WriteHook]

	mu sync.RWMutex
	k  int // established ranking length; 0 until the first insert
}

// New builds an empty index.
func New(cfg Config) *Index {
	if cfg.Shards <= 0 {
		cfg.Shards = 8
	}
	if cfg.PivotsPerShard <= 0 {
		cfg.PivotsPerShard = 8
	}
	x := &Index{
		shards:    make([]*Shard, cfg.Shards),
		spanNames: make([]string, cfg.Shards),
	}
	for i := range x.shards {
		x.shards[i] = newShard(cfg.PivotsPerShard, cfg.Seed+int64(i)*7_919)
		x.shards[i].id = i
		x.shards[i].hook = &x.rePivotHook
		x.shards[i].writeHook = &x.writeHook
		x.spanNames[i] = fmt.Sprintf("shard/%d", i)
	}
	x.pool.New = func() any { return x.NewBatch() }
	return x
}

// splitmix64 scrambles ids into shard choices; sequential ids (the
// common case for datasets numbered by line) must not all land on the
// same shard, and id%shards would stripe deletes and hot ids unevenly
// for clustered id spaces.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (x *Index) shardFor(id int64) *Shard {
	return x.shards[x.ShardOf(id)]
}

// ShardOf returns the shard ordinal that owns id — the routing
// function, exported so durability and replication layers can address
// per-shard logs by the same placement.
func (x *Index) ShardOf(id int64) int {
	return int(splitmix64(uint64(id)) % uint64(len(x.shards)))
}

// NumShards returns the shard count.
func (x *Index) NumShards() int { return len(x.shards) }

// K returns the established ranking length (0 while the index has
// never been inserted into). The first insert fixes k for the lifetime
// of the index, mirroring the paper's fixed-length datasets.
func (x *Index) K() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.k
}

func (x *Index) ensureK(k int) error {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.k == 0 {
		x.k = k
		return nil
	}
	if x.k != k {
		return fmt.Errorf("%w: index k=%d, got k=%d", ErrKMismatch, x.k, k)
	}
	return nil
}

func (x *Index) checkQuery(q *rankings.Ranking) error {
	if q == nil {
		return ErrNilRanking
	}
	x.mu.RLock()
	k := x.k
	x.mu.RUnlock()
	if k != 0 && q.K() != k {
		return fmt.Errorf("%w: index k=%d, query k=%d", ErrKMismatch, k, q.K())
	}
	return nil
}

// Insert adds r (upsert by id), building its position index if needed.
// With a write hook installed (SetWriteHook), the error also carries
// the durability barrier's verdict: non-nil means the write is in
// memory but not durable and must not be acknowledged.
func (x *Index) Insert(r *rankings.Ranking) error {
	if r == nil {
		return ErrNilRanking
	}
	if err := x.ensureK(r.K()); err != nil {
		return err
	}
	r.Index()
	return x.shardFor(r.ID).Insert(r)
}

// Delete removes the ranking with the given id, reporting presence.
// A miss moves no epoch and logs nothing; the error is the durability
// barrier's verdict, as in Insert.
func (x *Index) Delete(id int64) (bool, error) { return x.shardFor(id).Delete(id) }

// ApplyInsert replays an already-logged upsert: the target shard's
// epoch is forced to the record's stamp and the write hook is not
// invoked. See Shard.ApplyInsert.
func (x *Index) ApplyInsert(r *rankings.Ranking, epoch uint64) error {
	if r == nil {
		return ErrNilRanking
	}
	if err := x.ensureK(r.K()); err != nil {
		return err
	}
	r.Index()
	x.shardFor(r.ID).ApplyInsert(r, epoch)
	return nil
}

// ApplyDelete replays an already-logged delete, reporting presence.
// See Shard.ApplyDelete.
func (x *Index) ApplyDelete(id int64, epoch uint64) bool {
	return x.shardFor(id).ApplyDelete(id, epoch)
}

// RestoreShard atomically replaces shard i's contents with rs at the
// given epoch — the snapshot-load primitive for recovery and full
// replica syncs. Every ranking must route to shard i; a misrouted or
// length-mismatched ranking aborts before anything is touched.
func (x *Index) RestoreShard(i int, rs []*rankings.Ranking, epoch uint64) error {
	if i < 0 || i >= len(x.shards) {
		return fmt.Errorf("shard: restore shard %d out of range [0,%d)", i, len(x.shards))
	}
	for _, r := range rs {
		if r == nil {
			return ErrNilRanking
		}
		if x.ShardOf(r.ID) != i {
			return fmt.Errorf("shard: restore ranking %d routes to shard %d, not %d",
				r.ID, x.ShardOf(r.ID), i)
		}
	}
	if len(rs) > 0 {
		if err := x.ensureK(rs[0].K()); err != nil {
			return err
		}
		for _, r := range rs {
			if r.K() != rs[0].K() {
				return fmt.Errorf("%w: restore set mixes k=%d and k=%d",
					ErrKMismatch, rs[0].K(), r.K())
			}
			r.Index()
		}
	}
	x.shards[i].Restore(rs, epoch)
	return nil
}

// Get returns the indexed ranking with the given id.
func (x *Index) Get(id int64) (*rankings.Ranking, bool) { return x.shardFor(id).Get(id) }

// Len returns the total number of indexed rankings.
func (x *Index) Len() int {
	n := 0
	for _, s := range x.shards {
		n += s.Len()
	}
	return n
}

// Cardinalities returns the per-shard entry counts in shard order — the
// cheap size accessor for status pages and pre-sizing heuristics: one
// RLock and one int per shard, where Snapshot copies every ranking
// pointer and Stats assembles full per-shard statistics.
func (x *Index) Cardinalities() []int {
	out := make([]int, len(x.shards))
	for i, s := range x.shards {
		out[i] = s.Len()
	}
	return out
}

// Epochs returns the per-shard mutation epochs — the cache-invalidation
// vector: any entry differing from a previously observed vector means
// that shard's contents may have changed.
func (x *Index) Epochs() []uint64 {
	es := make([]uint64, len(x.shards))
	for i, s := range x.shards {
		es[i] = s.Epoch()
	}
	return es
}

// Snapshot returns all indexed rankings along with the per-shard
// epochs they were read at.
//
// Consistency contract: each shard's segment of the result is captured
// together with its epoch under ONE lock hold (Shard.Snapshot), so
// every (rankings, epoch) pair is internally consistent. Across shards
// the union is TORN under concurrent churn — shard j's segment may be
// newer than shard i's — so the index-wide result is not a point-in-
// time cut and must never be used directly as a recovery or
// replication cursor. It doesn't need to be: epochs order mutations
// within a shard only, so a per-shard-consistent dump plus each
// shard's WAL suffix above its own snapshot epoch reconstructs any
// later state exactly (internal/wal replays precisely this way, and
// TestTornSnapshotPlusWALReplay proves it). Callers needing a
// consistent single shard should use SnapshotShard.
func (x *Index) Snapshot() ([]*rankings.Ranking, []uint64) {
	var rs []*rankings.Ranking
	es := make([]uint64, len(x.shards))
	for i, s := range x.shards {
		part, e := s.Snapshot()
		rs = append(rs, part...)
		es[i] = e
	}
	return rs, es
}

// SnapshotShard captures shard i's rankings and epoch under one lock
// hold; a non-nil barrier runs under that same hold (see
// Shard.SnapshotAnd).
func (x *Index) SnapshotShard(i int, barrier func()) ([]*rankings.Ranking, uint64) {
	return x.shards[i].SnapshotAnd(barrier)
}

// Filters exposes the index's query-pruning counters (Generated =
// PrunedSignature + PrunedTriangle + Verified across all sweeps;
// Emitted counts hits).
func (x *Index) Filters() *obs.FilterCounters { return &x.filters }

// SetRePivotHook installs fn as the observer of completed background
// re-pivots across all shards (nil uninstalls). The hook runs on the
// re-pivot goroutine with no locks held; see RePivotHook for the
// contract. Safe to call concurrently with serving traffic.
func (x *Index) SetRePivotHook(fn RePivotHook) {
	if fn == nil {
		x.rePivotHook.Store(nil)
		return
	}
	x.rePivotHook.Store(&fn)
}

// SetWriteHook installs fn as the observer of every Insert/Delete
// across all shards (nil uninstalls); see WriteHook for the locking
// and ordering contract. Install it BEFORE accepting writes and after
// any recovery replay, or the log will miss (or double) records.
func (x *Index) SetWriteHook(fn WriteHook) {
	if fn == nil {
		x.writeHook.Store(nil)
		return
	}
	x.writeHook.Store(&fn)
}

// Stats returns per-shard statistics in shard order.
func (x *Index) Stats() []Stats {
	out := make([]Stats, len(x.shards))
	for i, s := range x.shards {
		out[i] = s.Stats()
	}
	return out
}

// Search returns every indexed ranking within maxDist of q (excluding
// the indexed ranking whose id equals exclude; pass NoExclude to keep
// everything), sorted ascending by (dist, id).
func (x *Index) Search(q *rankings.Ranking, maxDist int, exclude int64) ([]Neighbor, error) {
	res, err := x.SearchBatch([]Query{{R: q, MaxDist: maxDist, Exclude: exclude}}, nil)
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// KNN returns the n indexed rankings closest to q (self-exclusion as
// in Search), sorted ascending by (dist, id).
func (x *Index) KNN(q *rankings.Ranking, n int, exclude int64) ([]Neighbor, error) {
	if n <= 0 {
		return nil, fmt.Errorf("shard: knn n must be positive, got %d", n)
	}
	res, err := x.SearchBatch([]Query{{R: q, KNN: n, Exclude: exclude}}, nil)
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// SearchBatch answers a batch of queries in one fan-out sweep: every
// shard is visited exactly once (one RLock, all queries, one fused
// signature pass), shards run concurrently, and per-shard partial
// results are merged per query. The span, when non-nil, receives one
// task child per shard. This is the coalescing primitive the server's
// request batcher drives.
//
// The returned slices are private to the caller (copied out of the
// pooled execution arena); callers that issue many queries and can
// tolerate arena aliasing should hold a Batch and use SearchBatchInto
// instead, which allocates nothing in steady state.
func (x *Index) SearchBatch(qs []Query, span *obs.Span) ([][]Neighbor, error) {
	b := x.pool.Get().(*Batch)
	defer x.pool.Put(b)
	views, err := b.SearchBatchInto(qs, span)
	if err != nil {
		return nil, err
	}
	out := make([][]Neighbor, len(views))
	for i, v := range views {
		if len(v) > 0 {
			out[i] = append([]Neighbor(nil), v...)
		}
	}
	return out, nil
}
