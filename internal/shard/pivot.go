package shard

import (
	"math/rand"
	"slices"

	"rankjoin/internal/rankings"
)

// Error-bounded sampled pivot selection. Instead of picking pivots
// uniformly at random (which wastes table width on pivots that prune
// the same pairs, or on pivots near the dataset's center that prune
// nothing), each re-pivot estimates pruning power on a bounded sample
// and grows the pivot set greedily until the marginal gain drops under
// an error bound — the sampling strategy of the error-bounded
// distributed metric-join literature, applied to the serving index:
//
//  1. Sample up to pivotSampleSize members and compute their pairwise
//     Footrule matrix (the only distance computations the selection
//     performs; everything below is arithmetic on the matrix).
//  2. Take a reference radius from a low percentile of the sampled
//     distance distribution — the distance scale at which serving
//     queries actually discriminate.
//  3. A candidate pivot c "covers" a sampled pair (a, b) when
//     |d(c,a) − d(c,b)| > radius: the triangle bound through c would
//     prune b for a query at a (and vice versa) at that scale.
//  4. Greedily add the candidate covering the most uncovered pairs,
//     stopping at the width cap or when the marginal gain falls below
//     pivotGainEps of the pair population — extra pivots past that
//     point cost a table column and a per-entry distance without
//     measurably improving pruning.
const (
	pivotSampleSize = 48
	pivotGainEps    = 0.02
	// pivotRadiusPct picks the reference radius: the 5th percentile of
	// sampled pairwise distances, approximating a tight serving
	// threshold.
	pivotRadiusPct = 0.05
)

// selectPivots chooses at most width pivots from members. Deterministic
// given rng's state and the member order; safe to run without locks on
// an immutable member snapshot.
func selectPivots(members []*rankings.Ranking, width int, rng *rand.Rand) []*rankings.Ranking {
	n := len(members)
	if width > n {
		width = n
	}
	if width <= 0 || n == 0 {
		return nil
	}
	s := n
	if s > pivotSampleSize {
		s = pivotSampleSize
	}
	perm := rng.Perm(n)
	sample := perm[:s]
	if s == 1 {
		return []*rankings.Ranking{members[sample[0]]}
	}

	// Pairwise distances over the sample.
	D := make([]int32, s*s)
	dists := make([]int32, 0, s*(s-1)/2)
	for i := 0; i < s; i++ {
		for j := i + 1; j < s; j++ {
			d := int32(rankings.Footrule(members[sample[i]], members[sample[j]]))
			D[i*s+j], D[j*s+i] = d, d
			dists = append(dists, d)
		}
	}
	slices.Sort(dists)
	radius := dists[int(pivotRadiusPct*float64(len(dists)-1))]

	// Greedy max-coverage over unordered sample pairs.
	totalPairs := s * (s - 1) / 2
	covered := make([]bool, s*s)
	chosen := make([]*rankings.Ranking, 0, width)
	inChosen := make([]bool, s)
	minGain := int(pivotGainEps * float64(totalPairs))
	for len(chosen) < width {
		best, bestGain := -1, 0
		for c := 0; c < s; c++ {
			if inChosen[c] {
				continue
			}
			gain := 0
			for a := 0; a < s; a++ {
				da := D[c*s+a]
				for b := a + 1; b < s; b++ {
					if covered[a*s+b] {
						continue
					}
					if diff := da - D[c*s+b]; diff > int32(radius) || -diff > int32(radius) {
						gain++
					}
				}
			}
			if gain > bestGain {
				best, bestGain = c, gain
			}
		}
		if best < 0 {
			break
		}
		// The first pivot is always worth its column; after that, stop
		// when the marginal coverage gain dips under the error bound.
		if len(chosen) > 0 && bestGain <= minGain {
			break
		}
		inChosen[best] = true
		chosen = append(chosen, members[sample[best]])
		for a := 0; a < s; a++ {
			da := D[best*s+a]
			for b := a + 1; b < s; b++ {
				if diff := da - D[best*s+b]; diff > int32(radius) || -diff > int32(radius) {
					covered[a*s+b] = true
				}
			}
		}
	}
	if len(chosen) == 0 {
		// Degenerate sample (all members equidistant): keep one pivot
		// anyway so the shard never re-enters the pivotless state, which
		// would re-trigger selection on every mutation.
		chosen = append(chosen, members[sample[0]])
	}
	return chosen
}
