// Package shard implements the online serving index: a sharded,
// dynamically updatable metric index over top-k rankings. Where
// metricspace.PivotIndex is built once over a frozen dataset, this
// package keeps per-shard LAESA-style pivot tables that absorb
// Insert/Delete traffic under an RWMutex, answer range and kNN queries
// with triangle-inequality pruning, and re-pivot themselves in the
// background when churn (or a collapsed prune rate) degrades pruning
// power — the serving-side counterpart of the error-bounded pivot
// selection literature: pruning only stays effective while the pivots
// still describe the data.
//
// Every mutation bumps the owning shard's epoch. Epochs order nothing
// across shards; they exist so snapshots are verifiable (same epoch ⇒
// same contents) and so query caches can be invalidated per shard
// without a global generation counter.
package shard

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"

	"rankjoin/internal/filters"
	"rankjoin/internal/obs"
	"rankjoin/internal/rankings"
)

// ErrKMismatch reports an inserted or queried ranking whose length
// differs from the index's established k.
var ErrKMismatch = errors.New("shard: ranking length does not match index k")

// ErrNilRanking reports a nil ranking handed to Insert or a query.
var ErrNilRanking = errors.New("shard: nil ranking")

// NoExclude is the Query.Exclude sentinel meaning "exclude nothing" —
// used for ad-hoc queries that are not themselves indexed.
const NoExclude int64 = math.MinInt64

// Neighbor is one search hit: the indexed ranking's id and its
// unnormalized Footrule distance to the query.
type Neighbor struct {
	ID   int64 `json:"id"`
	Dist int   `json:"dist"`
}

// Query is one unit of a shard sweep. KNN > 0 selects top-KNN mode
// (MaxDist is ignored); otherwise MaxDist is the inclusive range
// threshold. Exclude drops the indexed ranking with that id from the
// results (pass NoExclude to keep everything).
type Query struct {
	R       *rankings.Ranking
	MaxDist int
	KNN     int
	Exclude int64
}

// entry is one indexed ranking with its precomputed pivot distances.
type entry struct {
	r  *rankings.Ranking
	pd []int32 // pd[p] = Footrule(r, pivots[p])
}

// Shard is one RWMutex-guarded partition of the index. All exported
// methods are safe for concurrent use.
type Shard struct {
	numPivots int
	seed      int64

	mu      sync.RWMutex
	pivots  []*rankings.Ranking
	entries []entry
	byID    map[int64]int
	churn   int // mutations since the pivot set was last chosen

	// epoch is written under mu and read either under mu (consistent
	// snapshots) or raw (cache tags, which only need monotonicity).
	epoch atomic.Uint64

	// rePivots counts completed re-pivot passes; repivoting serializes
	// background rebuilds. scanned/pruned track pruning power since the
	// last re-pivot and are updated lock-free from search sweeps.
	rePivots   atomic.Int64
	repivoting atomic.Bool
	scanned    atomic.Int64
	pruned     atomic.Int64
}

func newShard(numPivots int, seed int64) *Shard {
	return &Shard{
		numPivots: numPivots,
		seed:      seed,
		byID:      make(map[int64]int),
	}
}

// pivotRow computes a ranking's distances to the given pivots.
func pivotRow(r *rankings.Ranking, pivots []*rankings.Ranking) []int32 {
	if len(pivots) == 0 {
		return nil
	}
	row := make([]int32, len(pivots))
	for p, piv := range pivots {
		row[p] = int32(rankings.Footrule(r, piv))
	}
	return row
}

// Insert adds r to the shard, replacing any previous ranking with the
// same id (upsert). The caller must have built r's position index
// (Ranking.Index) before handing it over; Index-level Insert does.
func (s *Shard) Insert(r *rankings.Ranking) {
	s.mu.Lock()
	e := entry{r: r, pd: pivotRow(r, s.pivots)}
	if i, ok := s.byID[r.ID]; ok {
		s.entries[i] = e
	} else {
		s.byID[r.ID] = len(s.entries)
		s.entries = append(s.entries, e)
	}
	s.churn++
	s.epoch.Add(1)
	due := s.rePivotDueLocked()
	s.mu.Unlock()
	if due {
		s.triggerRePivot()
	}
}

// Delete removes the ranking with the given id, reporting whether it
// was present.
func (s *Shard) Delete(id int64) bool {
	s.mu.Lock()
	i, ok := s.byID[id]
	if !ok {
		s.mu.Unlock()
		return false
	}
	last := len(s.entries) - 1
	moved := s.entries[last]
	s.entries[last] = entry{}
	s.entries = s.entries[:last]
	delete(s.byID, id)
	if i != last {
		s.entries[i] = moved
		s.byID[moved.r.ID] = i
	}
	s.churn++
	s.epoch.Add(1)
	due := s.rePivotDueLocked()
	s.mu.Unlock()
	if due {
		s.triggerRePivot()
	}
	return true
}

// Get returns the indexed ranking with the given id.
func (s *Shard) Get(id int64) (*rankings.Ranking, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if i, ok := s.byID[id]; ok {
		return s.entries[i].r, true
	}
	return nil, false
}

// Len returns the number of indexed rankings.
func (s *Shard) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}

// Epoch returns the shard's mutation epoch. It increases on every
// Insert, Delete and completed re-pivot.
func (s *Shard) Epoch() uint64 { return s.epoch.Load() }

// Snapshot returns the indexed rankings together with the epoch they
// were read at: two snapshots carrying the same epoch hold exactly the
// same rankings. The returned slice is private to the caller; the
// rankings themselves are shared and must be treated as immutable.
func (s *Shard) Snapshot() ([]*rankings.Ranking, uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rs := make([]*rankings.Ranking, len(s.entries))
	for i := range s.entries {
		rs[i] = s.entries[i].r
	}
	return rs, s.epoch.Load()
}

// Stats is a point-in-time description of one shard for /statusz.
type Stats struct {
	Size     int    `json:"size"`
	Epoch    uint64 `json:"epoch"`
	Pivots   int    `json:"pivots"`
	Churn    int    `json:"churn"`
	RePivots int64  `json:"re_pivots"`
}

// Stats returns the shard's current statistics.
func (s *Shard) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Size:     len(s.entries),
		Epoch:    s.epoch.Load(),
		Pivots:   len(s.pivots),
		Churn:    s.churn,
		RePivots: s.rePivots.Load(),
	}
}

// Re-pivot policy. Below minRePivotSize a linear scan is cheaper than
// any pivot table, so tiny shards never re-pivot. Otherwise a rebuild
// is due when the pivot set has never been chosen, when churn since the
// last selection exceeds half the population, or when the observed
// prune rate has collapsed (lots of scanning, almost nothing pruned —
// the pivots no longer describe the data).
const (
	minRePivotSize = 16
	minPruneRate   = 0.05
)

func (s *Shard) rePivotDueLocked() bool {
	n := len(s.entries)
	if n < minRePivotSize {
		return false
	}
	if len(s.pivots) == 0 {
		return true
	}
	return s.churn*2 >= n
}

// notePruning folds one sweep's pruning observations in and reports
// whether the prune rate collapsed badly enough to warrant a re-pivot.
func (s *Shard) notePruning(scanned, pruned int64) bool {
	if scanned == 0 {
		return false
	}
	sc := s.scanned.Add(scanned)
	pr := s.pruned.Add(pruned)
	s.mu.RLock()
	n, havePivots := len(s.entries), len(s.pivots) > 0
	s.mu.RUnlock()
	if !havePivots || n < minRePivotSize {
		return false
	}
	// Only judge the rate after several full sweeps' worth of evidence.
	if sc < int64(8*n) {
		return false
	}
	return float64(pr) < minPruneRate*float64(sc)
}

// triggerRePivot starts a background re-pivot unless one is already
// running.
func (s *Shard) triggerRePivot() {
	if s.repivoting.CompareAndSwap(false, true) {
		go s.rePivot()
	}
}

// rePivot rebuilds the pivot table: snapshot the members under RLock,
// choose fresh pivots and compute the distance table without holding
// any lock, then apply under the write lock — recomputing rows only
// for rankings that were inserted or replaced while the rebuild ran.
func (s *Shard) rePivot() {
	defer s.repivoting.Store(false)
	s.mu.RLock()
	n := len(s.entries)
	if n == 0 {
		s.mu.RUnlock()
		return
	}
	members := make([]*rankings.Ranking, n)
	for i := range s.entries {
		members[i] = s.entries[i].r
	}
	round := s.rePivots.Load()
	s.mu.RUnlock()

	np := s.numPivots
	if np > n {
		np = n
	}
	rng := rand.New(rand.NewSource(s.seed + (round+1)*1_000_003 + int64(n)))
	perm := rng.Perm(n)
	pivots := make([]*rankings.Ranking, np)
	for i := 0; i < np; i++ {
		pivots[i] = members[perm[i]]
	}
	// Rows are keyed by ranking pointer, not id: an id re-inserted with
	// different items during the rebuild must not inherit a stale row.
	rows := make(map[*rankings.Ranking][]int32, n)
	for _, r := range members {
		rows[r] = pivotRow(r, pivots)
	}

	s.mu.Lock()
	s.pivots = pivots
	for i := range s.entries {
		e := &s.entries[i]
		if row, ok := rows[e.r]; ok {
			e.pd = row
		} else {
			e.pd = pivotRow(e.r, pivots)
		}
	}
	s.churn = 0
	s.scanned.Store(0)
	s.pruned.Store(0)
	s.rePivots.Add(1)
	// A re-pivot changes no result set, but bumping the epoch keeps the
	// invariant simple: equal epochs always mean byte-identical state.
	s.epoch.Add(1)
	s.mu.Unlock()
}

// sweep answers a batch of queries under a single RLock acquisition —
// the unit the server's request coalescing amortizes. It returns the
// per-query neighbor lists and the filter accounting of the whole
// sweep (Generated = PrunedTriangle + Verified; Emitted counts hits).
func (s *Shard) sweep(qs []Query) ([][]Neighbor, obs.FilterDelta) {
	out := make([][]Neighbor, len(qs))
	var d obs.FilterDelta
	s.mu.RLock()
	for qi := range qs {
		q := &qs[qi]
		qd := pivotRow(q.R, s.pivots)
		if q.KNN > 0 {
			out[qi] = s.knnLocked(q, qd, &d)
		} else {
			out[qi] = s.rangeLocked(q, qd, &d)
		}
	}
	s.mu.RUnlock()
	if s.notePruning(d.Generated, d.PrunedTriangle) {
		s.triggerRePivot()
	}
	return out, d
}

// rangeLocked scans the shard for rankings within q.MaxDist, pruning
// with every pivot's triangle lower bound before verifying.
func (s *Shard) rangeLocked(q *Query, qd []int32, d *obs.FilterDelta) []Neighbor {
	var hits []Neighbor
	for i := range s.entries {
		e := &s.entries[i]
		if e.r.ID == q.Exclude {
			continue
		}
		d.Generated++
		pruned := false
		for p := range qd {
			if filters.TrianglePrune(int(qd[p]), int(e.pd[p]), q.MaxDist) {
				pruned = true
				break
			}
		}
		if pruned {
			d.PrunedTriangle++
			continue
		}
		d.Verified++
		if dist, ok := rankings.FootruleWithin(q.R, e.r, q.MaxDist); ok {
			d.Emitted++
			hits = append(hits, Neighbor{ID: e.r.ID, Dist: dist})
		}
	}
	return hits
}

// knnLocked scans the shard for the q.KNN nearest rankings through a
// bounded max-heap; once the heap is full the current worst distance
// tightens both the triangle prune and the verification bound.
func (s *Shard) knnLocked(q *Query, qd []int32, d *obs.FilterDelta) []Neighbor {
	h := newResultHeap(q.KNN)
	maxDist := rankings.MaxFootrule(q.R.K())
	for i := range s.entries {
		e := &s.entries[i]
		if e.r.ID == q.Exclude {
			continue
		}
		d.Generated++
		bound := maxDist
		if h.full() {
			// A ranking at the worst kept distance can still displace the
			// root when its id is smaller (the documented (dist, id) tie
			// order), so the bound must admit equality — worst()-1 here
			// silently dropped tied smaller-id neighbors that the oracle
			// returns. push resolves the tie.
			bound = h.worst()
		}
		pruned := false
		for p := range qd {
			if filters.TrianglePrune(int(qd[p]), int(e.pd[p]), bound) {
				pruned = true
				break
			}
		}
		if pruned {
			d.PrunedTriangle++
			continue
		}
		d.Verified++
		if dist, ok := rankings.FootruleWithin(q.R, e.r, bound); ok {
			d.Emitted++
			h.push(Neighbor{ID: e.r.ID, Dist: dist})
		}
	}
	return h.sorted()
}

func (s *Shard) String() string {
	st := s.Stats()
	return fmt.Sprintf("shard{size=%d epoch=%d pivots=%d churn=%d rePivots=%d}",
		st.Size, st.Epoch, st.Pivots, st.Churn, st.RePivots)
}
