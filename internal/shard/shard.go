// Package shard implements the online serving index: a sharded,
// dynamically updatable metric index over top-k rankings. Where
// metricspace.PivotIndex is built once over a frozen dataset, this
// package keeps per-shard LAESA-style pivot tables that absorb
// Insert/Delete traffic under an RWMutex, answer range and kNN queries
// with a 128-bit item-signature prefilter followed by
// triangle-inequality pruning, and re-pivot themselves in the
// background when churn (or a collapsed prune rate) degrades pruning
// power — the serving-side counterpart of the error-bounded pivot
// selection literature: pruning only stays effective while the pivots
// still describe the data.
//
// Every mutation bumps the owning shard's epoch by exactly one, so the
// per-shard epoch is a dense cursor over that shard's mutation history:
// epoch E names the state after the E-th mutation. Epochs order nothing
// across shards; they exist so snapshots are verifiable (same epoch ⇒
// same contents), so query caches can be invalidated per shard without
// a global generation counter, and so a write-ahead log or replication
// stream can address "everything after epoch E" with a contiguity
// check. Background re-pivots deliberately do NOT move the epoch: a
// re-pivot changes no result set, and replicas re-pivot independently.
package shard

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"rankjoin/internal/filters"
	"rankjoin/internal/rankings"
)

// ErrKMismatch reports an inserted or queried ranking whose length
// differs from the index's established k.
var ErrKMismatch = errors.New("shard: ranking length does not match index k")

// ErrNilRanking reports a nil ranking handed to Insert or a query.
var ErrNilRanking = errors.New("shard: nil ranking")

// NoExclude is the Query.Exclude sentinel meaning "exclude nothing" —
// used for ad-hoc queries that are not themselves indexed.
const NoExclude int64 = math.MinInt64

// Neighbor is one search hit: the indexed ranking's id and its
// unnormalized Footrule distance to the query.
type Neighbor struct {
	ID   int64 `json:"id"`
	Dist int   `json:"dist"`
}

// Query is one unit of a shard sweep. KNN > 0 selects top-KNN mode
// (MaxDist is ignored); otherwise MaxDist is the inclusive range
// threshold. Exclude drops the indexed ranking with that id from the
// results (pass NoExclude to keep everything).
type Query struct {
	R       *rankings.Ranking
	MaxDist int
	KNN     int
	Exclude int64
}

// entry is one indexed ranking with its precomputed pivot distances.
type entry struct {
	r  *rankings.Ranking
	pd []int32 // pd[p] = Footrule(r, pivots[p])
}

// maxSignatureK bounds the ranking length the signature prefilter is
// applied to: beyond 64 items the 128-bit signature can no longer
// separate item sets (popcount saturates and the collision corrections
// k − pop dwarf the shared-bit count), and keeping k ≤ 64 also lets
// overlap bounds live in one byte per (entry, query) cell of the fused
// sweep.
const maxSignatureK = 64

// RePivotEvent describes one completed background re-pivot pass, as
// delivered to the hook installed with Index.SetRePivotHook.
type RePivotEvent struct {
	Shard  int           // shard ordinal within its Index
	Size   int           // entries at snapshot time
	Pivots int           // pivot-table width chosen
	Churn  int           // mutations absorbed since the previous pivot set
	Dur    time.Duration // wall time of the rebuild
}

// RePivotHook observes completed re-pivots. It runs on the re-pivot
// goroutine after all locks are released, so it may itself query the
// index, but it should return quickly — the shard cannot start its
// next rebuild until the hook returns.
type RePivotHook func(RePivotEvent)

// Op tags one logged mutation.
type Op uint8

const (
	OpInsert Op = 1
	OpDelete Op = 2
)

// WriteRecord describes one applied mutation as seen by the write
// hook: the owning shard, the operation, the epoch the shard reached
// by applying it, and the subject. Ranking is nil for deletes and
// shared (immutable) for inserts.
type WriteRecord struct {
	Shard   int
	Op      Op
	Epoch   uint64
	ID      int64
	Ranking *rankings.Ranking
}

// WriteHook observes every Insert/Delete. It is invoked while the
// owning shard's write lock is still held, so per shard it sees
// records in strictly increasing epoch order and must be fast — append
// to a buffer, never fsync or block. It may return a commit function,
// which the mutation runs after the lock is released and whose error
// becomes the mutation's return value: that is where a write-ahead log
// waits for its group-commit fsync, keeping the durability stall out
// of the lock while still refusing to acknowledge a write that is not
// on disk. Replayed mutations (ApplyInsert/ApplyDelete/Restore) bypass
// the hook — they are already logged elsewhere.
type WriteHook func(WriteRecord) func() error

// Shard is one RWMutex-guarded partition of the index. All exported
// methods are safe for concurrent use.
type Shard struct {
	numPivots int
	seed      int64
	id        int                          // ordinal within the owning Index
	hook      *atomic.Pointer[RePivotHook] // owning Index's re-pivot hook; nil standalone
	writeHook *atomic.Pointer[WriteHook]   // owning Index's write hook; nil standalone

	mu      sync.RWMutex
	pivots  []*rankings.Ranking
	entries []entry
	// sigs/pops mirror entries index-for-index with each ranking's
	// 128-bit item signature and its popcount: the fused sweep's phase A
	// touches only these two dense arrays (17 bytes per entry), not the
	// entry structs, so the signature pass stays cache-resident.
	sigs  []rankings.Sig
	pops  []uint8
	byID  map[int64]int
	churn int // mutations since the pivot set was last chosen

	// epoch is written under mu and read either under mu (consistent
	// snapshots) or raw (cache tags, which only need monotonicity).
	epoch atomic.Uint64

	// rePivots counts completed re-pivot passes; repivoting serializes
	// background rebuilds. scanned/pruned track pruning power since the
	// last re-pivot and are updated lock-free from search sweeps.
	rePivots   atomic.Int64
	repivoting atomic.Bool
	scanned    atomic.Int64
	pruned     atomic.Int64
}

func newShard(numPivots int, seed int64) *Shard {
	return &Shard{
		numPivots: numPivots,
		seed:      seed,
		byID:      make(map[int64]int),
	}
}

// pivotRow computes a ranking's distances to the given pivots.
func pivotRow(r *rankings.Ranking, pivots []*rankings.Ranking) []int32 {
	if len(pivots) == 0 {
		return nil
	}
	row := make([]int32, len(pivots))
	for p, piv := range pivots {
		row[p] = int32(rankings.Footrule(r, piv))
	}
	return row
}

// Insert adds r to the shard, replacing any previous ranking with the
// same id (upsert). The caller must have built r's position index
// (Ranking.Index) before handing it over; Index-level Insert does.
// With a write hook installed, a non-nil error means the mutation is
// applied in memory but its durability barrier failed — the write must
// not be acknowledged.
func (s *Shard) Insert(r *rankings.Ranking) error {
	sig, pop := r.Signature()
	s.mu.Lock()
	s.upsertLocked(r, sig, uint8(pop))
	s.churn++
	epoch := s.epoch.Add(1)
	commit := s.logLocked(WriteRecord{Shard: s.id, Op: OpInsert, Epoch: epoch, ID: r.ID, Ranking: r})
	due := s.rePivotDueLocked()
	s.mu.Unlock()
	if due {
		s.triggerRePivot()
	}
	if commit != nil {
		return commit()
	}
	return nil
}

// upsertLocked installs r (upsert by id). Caller holds s.mu.
func (s *Shard) upsertLocked(r *rankings.Ranking, sig rankings.Sig, pop uint8) {
	e := entry{r: r, pd: pivotRow(r, s.pivots)}
	if i, ok := s.byID[r.ID]; ok {
		s.entries[i] = e
		s.sigs[i] = sig
		s.pops[i] = pop
	} else {
		s.byID[r.ID] = len(s.entries)
		s.entries = append(s.entries, e)
		s.sigs = append(s.sigs, sig)
		s.pops = append(s.pops, pop)
	}
}

// Delete removes the ranking with the given id, reporting whether it
// was present. A miss is a pure no-op: the epoch does not move and no
// write-hook record is emitted, so epoch-tagged caches stay valid and
// a WAL never replays a spurious epoch advance. The error (always nil
// on a miss) carries the durability barrier's verdict, as in Insert.
func (s *Shard) Delete(id int64) (bool, error) {
	s.mu.Lock()
	if !s.removeLocked(id) {
		s.mu.Unlock()
		return false, nil
	}
	s.churn++
	epoch := s.epoch.Add(1)
	commit := s.logLocked(WriteRecord{Shard: s.id, Op: OpDelete, Epoch: epoch, ID: id})
	due := s.rePivotDueLocked()
	s.mu.Unlock()
	if due {
		s.triggerRePivot()
	}
	if commit != nil {
		return true, commit()
	}
	return true, nil
}

// removeLocked swap-removes id, reporting presence. Caller holds s.mu.
func (s *Shard) removeLocked(id int64) bool {
	i, ok := s.byID[id]
	if !ok {
		return false
	}
	last := len(s.entries) - 1
	moved := s.entries[last]
	s.entries[last] = entry{}
	s.entries = s.entries[:last]
	delete(s.byID, id)
	if i != last {
		s.entries[i] = moved
		s.sigs[i] = s.sigs[last]
		s.pops[i] = s.pops[last]
		s.byID[moved.r.ID] = i
	}
	s.sigs = s.sigs[:last]
	s.pops = s.pops[:last]
	return true
}

// logLocked hands one mutation record to the write hook, if any.
// Caller holds s.mu, which is what serializes records into strictly
// increasing epoch order.
func (s *Shard) logLocked(rec WriteRecord) func() error {
	if s.writeHook == nil {
		return nil
	}
	fn := s.writeHook.Load()
	if fn == nil {
		return nil
	}
	return (*fn)(rec)
}

// ApplyInsert is Insert for replay: it applies an upsert that was
// already logged elsewhere (WAL recovery, replication), forces the
// shard epoch to the record's stamp instead of incrementing, and does
// not invoke the write hook.
func (s *Shard) ApplyInsert(r *rankings.Ranking, epoch uint64) {
	sig, pop := r.Signature()
	s.mu.Lock()
	s.upsertLocked(r, sig, uint8(pop))
	s.churn++
	s.epoch.Store(epoch)
	due := s.rePivotDueLocked()
	s.mu.Unlock()
	if due {
		s.triggerRePivot()
	}
}

// ApplyDelete is Delete for replay, with ApplyInsert's contract. The
// epoch is stamped even when the id is absent — the record asserts the
// shard reached that epoch — but a miss means the replayed stream and
// the local state have diverged, so presence is reported for the
// caller to check.
func (s *Shard) ApplyDelete(id int64, epoch uint64) bool {
	s.mu.Lock()
	ok := s.removeLocked(id)
	if ok {
		s.churn++
	}
	s.epoch.Store(epoch)
	due := s.rePivotDueLocked()
	s.mu.Unlock()
	if due {
		s.triggerRePivot()
	}
	return ok
}

// Restore atomically replaces the shard's entire contents with rs at
// the given epoch — the snapshot-load primitive for recovery and full
// replica syncs. The pivot table is dropped; a background re-pivot
// rebuilds it once the shard is large enough. Rankings must already be
// position-indexed and routed to this shard; Index.RestoreShard checks.
func (s *Shard) Restore(rs []*rankings.Ranking, epoch uint64) {
	s.mu.Lock()
	n := len(rs)
	s.pivots = nil
	s.entries = make([]entry, n)
	s.sigs = make([]rankings.Sig, n)
	s.pops = make([]uint8, n)
	s.byID = make(map[int64]int, n)
	for i, r := range rs {
		sig, pop := r.Signature()
		s.entries[i] = entry{r: r}
		s.sigs[i] = sig
		s.pops[i] = uint8(pop)
		s.byID[r.ID] = i
	}
	s.churn = 0
	s.scanned.Store(0)
	s.pruned.Store(0)
	s.epoch.Store(epoch)
	due := s.rePivotDueLocked()
	s.mu.Unlock()
	if due {
		s.triggerRePivot()
	}
}

// Get returns the indexed ranking with the given id.
func (s *Shard) Get(id int64) (*rankings.Ranking, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if i, ok := s.byID[id]; ok {
		return s.entries[i].r, true
	}
	return nil, false
}

// Len returns the number of indexed rankings.
func (s *Shard) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}

// Epoch returns the shard's mutation epoch: exactly one increment per
// applied Insert or effective Delete (misses and re-pivots do not
// move it), making it a dense per-shard cursor for caches, WAL records
// and replication.
func (s *Shard) Epoch() uint64 { return s.epoch.Load() }

// Snapshot returns the indexed rankings together with the epoch they
// were read at. Both are captured under a single lock hold, so the
// pair is always mutually consistent: two snapshots carrying the same
// epoch hold exactly the same rankings. The returned slice is private
// to the caller; the rankings themselves are shared and must be
// treated as immutable.
func (s *Shard) Snapshot() ([]*rankings.Ranking, uint64) {
	return s.SnapshotAnd(nil)
}

// SnapshotAnd is Snapshot with a barrier: a non-nil fn runs under the
// same read-lock hold that captured the rankings and epoch, after the
// capture. Because every mutation takes the write lock, anything fn
// does is ordered exactly at the snapshot's epoch — the WAL manager
// rotates the shard's log segment here, so the segment boundary
// coincides with the snapshot cut and every record in earlier segments
// has epoch ≤ the snapshot epoch.
func (s *Shard) SnapshotAnd(fn func()) ([]*rankings.Ranking, uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rs := make([]*rankings.Ranking, len(s.entries))
	for i := range s.entries {
		rs[i] = s.entries[i].r
	}
	e := s.epoch.Load()
	if fn != nil {
		fn()
	}
	return rs, e
}

// Stats is a point-in-time description of one shard for /statusz.
type Stats struct {
	Size     int    `json:"size"`
	Epoch    uint64 `json:"epoch"`
	Pivots   int    `json:"pivots"`
	Churn    int    `json:"churn"`
	RePivots int64  `json:"re_pivots"`
}

// Stats returns the shard's current statistics.
func (s *Shard) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{
		Size:     len(s.entries),
		Epoch:    s.epoch.Load(),
		Pivots:   len(s.pivots),
		Churn:    s.churn,
		RePivots: s.rePivots.Load(),
	}
}

// Re-pivot policy. Below minRePivotSize a linear scan is cheaper than
// any pivot table, so tiny shards never re-pivot. Otherwise a rebuild
// is due when the pivot set has never been chosen, when churn since the
// last selection exceeds half the population, or when the observed
// prune rate has collapsed (lots of scanning, almost nothing pruned —
// the pivots no longer describe the data).
const (
	minRePivotSize = 16
	minPruneRate   = 0.05
)

func (s *Shard) rePivotDueLocked() bool {
	n := len(s.entries)
	if n < minRePivotSize {
		return false
	}
	if len(s.pivots) == 0 {
		return true
	}
	return s.churn*2 >= n
}

// notePruning folds one sweep's pruning observations in (pruned counts
// signature and triangle rejections together — a sweep that rejects
// almost everything on signatures alone has not lost pruning power) and
// reports whether the prune rate collapsed badly enough to warrant a
// re-pivot.
//
//ranklint:allocfree
func (s *Shard) notePruning(scanned, pruned int64) bool {
	if scanned == 0 {
		return false
	}
	sc := s.scanned.Add(scanned)
	pr := s.pruned.Add(pruned)
	s.mu.RLock()
	n, havePivots := len(s.entries), len(s.pivots) > 0
	s.mu.RUnlock()
	if !havePivots || n < minRePivotSize {
		return false
	}
	// Only judge the rate after several full sweeps' worth of evidence.
	if sc < int64(8*n) {
		return false
	}
	return float64(pr) < minPruneRate*float64(sc)
}

// triggerRePivot starts a background re-pivot unless one is already
// running.
func (s *Shard) triggerRePivot() {
	if s.repivoting.CompareAndSwap(false, true) {
		go s.rePivot()
	}
}

// rePivot rebuilds the pivot table: snapshot the members under RLock,
// choose fresh pivots (error-bounded sampled selection, see pivot.go)
// and compute the distance table without holding any lock, then apply
// under the write lock — recomputing rows only for rankings that were
// inserted or replaced while the rebuild ran.
func (s *Shard) rePivot() {
	defer s.repivoting.Store(false)
	began := time.Now()
	s.mu.RLock()
	n := len(s.entries)
	if n == 0 {
		s.mu.RUnlock()
		return
	}
	members := make([]*rankings.Ranking, n)
	for i := range s.entries {
		members[i] = s.entries[i].r
	}
	round := s.rePivots.Load()
	s.mu.RUnlock()

	rng := rand.New(rand.NewSource(s.seed + (round+1)*1_000_003 + int64(n)))
	pivots := selectPivots(members, s.numPivots, rng)
	// Rows are keyed by ranking pointer, not id: an id re-inserted with
	// different items during the rebuild must not inherit a stale row.
	rows := make(map[*rankings.Ranking][]int32, n)
	for _, r := range members {
		rows[r] = pivotRow(r, pivots)
	}

	s.mu.Lock()
	s.pivots = pivots
	for i := range s.entries {
		e := &s.entries[i]
		if row, ok := rows[e.r]; ok {
			e.pd = row
		} else {
			e.pd = pivotRow(e.r, pivots)
		}
	}
	churn := s.churn
	s.churn = 0
	s.scanned.Store(0)
	s.pruned.Store(0)
	s.rePivots.Add(1)
	// A re-pivot deliberately does NOT bump the epoch: it changes no
	// result set (equal epochs ⇒ equal contents still holds), and the
	// epoch must stay a dense one-per-mutation cursor so WAL replay and
	// replicas — which re-pivot on their own schedule — never drift.
	s.mu.Unlock()

	if s.hook != nil {
		if fn := s.hook.Load(); fn != nil {
			(*fn)(RePivotEvent{
				Shard:  s.id,
				Size:   n,
				Pivots: len(pivots),
				Churn:  churn,
				Dur:    time.Since(began),
			})
		}
	}
}

// sweepPhase1 is the first half of the fused multi-query sweep: under
// one RLock acquisition it makes ONE pass over the shard's signature
// arrays and upper-bounds every (entry, query) item overlap with an
// AND+popcount (phase A), computes the query-to-pivot rows, answers
// every RANGE query completely, and — when twoPhase is set because the
// batch contains kNN queries — runs a cheap bound PROBE per kNN query:
// verify just the top-q.KNN candidates by overlap bound, whose
// distances the Batch merges across shards into a global kNN cutoff.
//
// With twoPhase set the shard RLock is STILL HELD when sweepPhase1
// returns — the caller must follow up with sweepPhase2, which finishes
// the kNN queries against the global bounds and releases the lock.
// Holding the lock across the barrier is what lets phase 2 trust the
// overlap-bound matrix and candidate indexes computed here. Without
// twoPhase (range-only batches) the lock is released before returning.
//
// qsigs/qpops carry the queries' signatures (parallel to qs). The
// caller must hand so in with so.delta zeroed; hits are appended to
// so.neighbors with query qi's segment recorded in
// so.segs[2qi], so.segs[2qi+1]. Filter accounting accumulates into
// so.delta (Generated = PrunedSignature + PrunedTriangle + Verified;
// Emitted counts hits); the probe pass is deliberately unledgered —
// every entry it touches is re-examined and accounted exactly once by
// the authoritative phase-2 sweep. Steady state allocates nothing:
// every buffer lives in so and is grown to its high-water mark once.
//
//ranklint:allocfree
func (s *Shard) sweepPhase1(qs []Query, qsigs []rankings.Sig, qpops []uint8, so *shardOut, twoPhase bool) {
	s.mu.RLock()
	n := len(s.entries)
	B := len(qs)
	P := len(s.pivots)
	so.segs = growCap(so.segs, 2*B)[:2*B]
	for i := range so.segs {
		so.segs[i] = 0
	}
	so.pseg = growCap(so.pseg, 2*B)[:2*B]
	for i := range so.pseg {
		so.pseg[i] = 0
	}
	so.neighbors = so.neighbors[:0]
	so.probe = so.probe[:0]
	if n == 0 || B == 0 {
		if !twoPhase {
			s.mu.RUnlock()
		}
		return
	}
	k := qs[0].R.K() // the index holds one k; checked on entry

	// Pre-size the hit arena from the shard's cardinality: range sweeps
	// at serving thresholds rarely return more than a small fraction of
	// the shard per query.
	if cap(so.neighbors) == 0 {
		hint := B * (1 + n/16)
		if hint > B*n {
			hint = B * n
		}
		if hint > 4096 {
			hint = 4096
		}
		so.neighbors = make([]Neighbor, 0, hint)
	}

	// Phase A: the fused signature pass. One sweep over the dense
	// sigs/pops arrays fills the query-major overlap-bound matrix
	// so.ob[qi*n+ei] = upper bound on |entry ei ∩ query qi|
	// (filters.OverlapUpperBound inlined over the cached columns).
	sigUsable := k <= maxSignatureK
	if sigUsable {
		so.ob = growCap(so.ob, B*n)[:B*n]
		for ei := 0; ei < n; ei++ {
			sig := s.sigs[ei]
			pop := int(s.pops[ei])
			for qi := 0; qi < B; qi++ {
				shared := bits.OnesCount64(sig.Lo&qsigs[qi].Lo) +
					bits.OnesCount64(sig.Hi&qsigs[qi].Hi)
				ub := shared + k - pop
				if alt := shared + k - int(qpops[qi]); alt < ub {
					ub = alt
				}
				if ub > k {
					ub = k
				}
				if ub < 0 {
					ub = 0
				}
				so.ob[qi*n+ei] = uint8(ub)
			}
		}
	}

	// Query-to-pivot distance rows, query-major.
	so.qd = growCap(so.qd, B*P)[:B*P]
	for qi := 0; qi < B; qi++ {
		row := so.qd[qi*P : qi*P+P]
		for p := range s.pivots {
			row[p] = int32(rankings.Footrule(qs[qi].R, s.pivots[p]))
		}
	}

	// Phase B (ranges) / probe (kNN): answer each query off its
	// overlap-bound row.
	for qi := range qs {
		q := &qs[qi]
		exclIdx := s.exclIdx(q)
		if q.KNN > 0 {
			start := int32(len(so.probe))
			s.knnProbe(q, qi, n, k, sigUsable, exclIdx, so)
			so.pseg[2*qi], so.pseg[2*qi+1] = start, int32(len(so.probe))
		} else {
			start := int32(len(so.neighbors))
			s.rangeInto(q, qi, n, k, P, sigUsable, exclIdx, so)
			so.segs[2*qi], so.segs[2*qi+1] = start, int32(len(so.neighbors))
		}
	}
	if twoPhase {
		return // still holding s.mu.RLock; sweepPhase2 releases it
	}
	s.mu.RUnlock()
	d := &so.delta
	if s.notePruning(d.Generated, d.PrunedSignature+d.PrunedTriangle) {
		s.triggerRePivot() //ranklint:ignore re-pivot trigger: amortized background rebuild, fires off the steady-state sweep
	}
}

// sweepPhase2 finishes a two-phase sweep: with the RLock still held
// from sweepPhase1 it answers every kNN query with the global distance
// cutoff gb[qi] the Batch derived from all shards' probes, then
// releases the lock. gb is admissible — at least q.KNN indexed
// rankings were verified at or below it — so a candidate whose
// signature lower bound exceeds it can be discarded before the heap is
// even full, which is what turns the per-shard kNN scan from
// verify-almost-everything into a bulk signature reject.
//
//ranklint:allocfree
func (s *Shard) sweepPhase2(qs []Query, gb []int, so *shardOut) {
	n := len(s.entries)
	P := len(s.pivots)
	if n > 0 && len(qs) > 0 {
		k := qs[0].R.K()
		sigUsable := k <= maxSignatureK
		for qi := range qs {
			q := &qs[qi]
			if q.KNN <= 0 {
				continue
			}
			exclIdx := s.exclIdx(q)
			start := int32(len(so.neighbors))
			s.knnInto(q, qi, n, k, P, sigUsable, exclIdx, gb[qi], so)
			so.segs[2*qi], so.segs[2*qi+1] = start, int32(len(so.neighbors))
		}
	}
	s.mu.RUnlock()
	d := &so.delta
	if s.notePruning(d.Generated, d.PrunedSignature+d.PrunedTriangle) {
		s.triggerRePivot() //ranklint:ignore re-pivot trigger: amortized background rebuild, fires off the steady-state sweep
	}
}

// exclIdx resolves a query's Exclude id to an entry index with one map
// probe, replacing a per-entry id comparison in the scan. Must be
// called with s.mu held.
//
//ranklint:allocfree
func (s *Shard) exclIdx(q *Query) int {
	if i, ok := s.byID[q.Exclude]; ok {
		return i
	}
	return -1
}

// rangeInto scans one query's overlap-bound row for rankings within
// q.MaxDist. The signature reject is a single byte compare per entry
// (ob < minOverlap ⟺ the admissible Footrule lower bound exceeds
// q.MaxDist — MinOverlap is the exact integer inverse of
// MinDistForOverlap); survivors fall through to the per-pivot triangle
// bound and the Footrule kernel.
//
//ranklint:allocfree
func (s *Shard) rangeInto(q *Query, qi, n, k, P int, sigUsable bool, exclIdx int, so *shardOut) {
	d := &so.delta
	d.Generated += int64(n)
	if exclIdx >= 0 {
		d.Generated--
	}
	minOv := uint8(0)
	var obRow []uint8
	if sigUsable {
		minOv = uint8(filters.MinOverlap(q.MaxDist, k))
		obRow = so.ob[qi*n : qi*n+n]
	}
	qd := so.qd[qi*P : qi*P+P]
	for ei := 0; ei < n; ei++ {
		if ei == exclIdx {
			continue
		}
		if obRow != nil && obRow[ei] < minOv {
			d.PrunedSignature++
			continue
		}
		e := &s.entries[ei]
		pruned := false
		for p := 0; p < P; p++ {
			if filters.TrianglePrune(int(qd[p]), int(e.pd[p]), q.MaxDist) {
				pruned = true
				break
			}
		}
		if pruned {
			d.PrunedTriangle++
			continue
		}
		d.Verified++
		if dist, ok := rankings.FootruleWithin(q.R, e.r, q.MaxDist); ok {
			d.Emitted++
			so.neighbors = append(so.neighbors, Neighbor{ID: e.r.ID, Dist: dist})
		}
	}
}

// orderByOverlap fills so.cand with entry indexes in descending
// overlap-bound order via a stable counting sort over the query's byte
// row (ob ≤ k ≤ maxSignatureK fits the fixed histogram).
//
//ranklint:allocfree
func orderByOverlap(obRow []uint8, k int, so *shardOut) {
	counts := &so.counts
	for o := 0; o <= k; o++ {
		counts[o] = 0
	}
	for _, o := range obRow {
		counts[o]++
	}
	run := int32(0)
	for o := k; o >= 0; o-- {
		c := counts[o]
		counts[o] = run
		run += c
	}
	so.cand = growCap(so.cand, len(obRow))[:len(obRow)]
	for ei, o := range obRow {
		so.cand[counts[o]] = int32(ei)
		counts[o]++
	}
}

// knnProbe verifies just enough candidates to bound one kNN query: the
// top q.KNN entries by overlap bound (the likeliest true neighbors),
// appending their exact distances to so.probe. The Batch merges probes
// from every shard into a global cutoff for sweepPhase2. The probe
// touches no filter counters — phase 2 re-examines and accounts every
// entry — and is skipped for shards smaller than q.KNN, whose probe
// could only repeat phase 2's work without tightening the bound.
//
//ranklint:allocfree
func (s *Shard) knnProbe(q *Query, qi, n, k int, sigUsable bool, exclIdx int, so *shardOut) {
	if !sigUsable || n <= q.KNN {
		return
	}
	obRow := so.ob[qi*n : qi*n+n]
	orderByOverlap(obRow, k, so)
	maxDist := rankings.MaxFootrule(k)
	found := 0
	for ci := 0; ci < n && found < q.KNN; ci++ {
		ei := int(so.cand[ci])
		if ei == exclIdx {
			continue
		}
		e := &s.entries[ei]
		if dist, ok := rankings.FootruleWithin(q.R, e.r, maxDist); ok {
			so.probe = append(so.probe, Neighbor{ID: e.r.ID, Dist: dist})
			found++
		}
	}
}

// knnInto scans one query's candidates for the q.KNN nearest rankings.
// With signatures usable, candidates are visited in descending
// overlap-bound order (a stable counting sort over the byte row): the
// likeliest neighbors fill and tighten the bounded max-heap first, and
// as soon as the signature lower bound (k−ō)(k−ō+1) of the current
// overlap class exceeds the tighter of the heap's worst kept distance
// and the global probe cutoff gb, every remaining candidate — whose
// bound can only be lower — is rejected in bulk without touching a
// single entry. gb must be admissible (≥ the true global q.KNN-th
// distance under the (dist, id) tie order); rankings.MaxFootrule(k)
// is always a safe value.
//
//ranklint:allocfree
func (s *Shard) knnInto(q *Query, qi, n, k, P int, sigUsable bool, exclIdx, gb int, so *shardOut) {
	d := &so.delta
	d.Generated += int64(n)
	if exclIdx >= 0 {
		d.Generated--
	}
	h := &so.heap
	h.reset(q.KNN)
	qd := so.qd[qi*P : qi*P+P]

	if !sigUsable {
		for ei := 0; ei < n; ei++ {
			if ei == exclIdx {
				continue
			}
			bound := gb
			if h.full() {
				// A ranking at the worst kept distance can still displace
				// the root when its id is smaller (the documented
				// (dist, id) tie order), so the bound must admit equality.
				if w := h.worst(); w < bound {
					bound = w
				}
			}
			e := &s.entries[ei]
			pruned := false
			for p := 0; p < P; p++ {
				if filters.TrianglePrune(int(qd[p]), int(e.pd[p]), bound) {
					pruned = true
					break
				}
			}
			if pruned {
				d.PrunedTriangle++
				continue
			}
			d.Verified++
			if dist, ok := rankings.FootruleWithin(q.R, e.r, bound); ok {
				d.Emitted++
				h.push(Neighbor{ID: e.r.ID, Dist: dist})
			}
		}
		so.neighbors = h.appendSorted(so.neighbors)
		return
	}

	obRow := so.ob[qi*n : qi*n+n]
	orderByOverlap(obRow, k, so)

	exclSeen := exclIdx < 0
	for ci := 0; ci < n; ci++ {
		ei := int(so.cand[ci])
		if ei == exclIdx {
			exclSeen = true
			continue
		}
		bound := gb
		if h.full() {
			if w := h.worst(); w < bound { // must admit equality; see above
				bound = w
			}
		}
		o := int(obRow[ei])
		m := k - o
		if m*(m+1) > bound {
			// Every remaining candidate has an overlap bound ≤ ō, so its
			// Footrule lower bound is ≥ (k−ō)(k−ō+1) > bound: reject the
			// whole tail at once.
			rem := int64(n - ci)
			if !exclSeen {
				rem--
			}
			d.PrunedSignature += rem
			break
		}
		e := &s.entries[ei]
		pruned := false
		for p := 0; p < P; p++ {
			if filters.TrianglePrune(int(qd[p]), int(e.pd[p]), bound) {
				pruned = true
				break
			}
		}
		if pruned {
			d.PrunedTriangle++
			continue
		}
		d.Verified++
		if dist, ok := rankings.FootruleWithin(q.R, e.r, bound); ok {
			d.Emitted++
			h.push(Neighbor{ID: e.r.ID, Dist: dist})
		}
	}
	so.neighbors = h.appendSorted(so.neighbors)
}

// growCap returns s with capacity at least n (contents unspecified),
// reallocating only when the high-water mark grows.
//
//ranklint:allocfree
func growCap[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

func (s *Shard) String() string {
	st := s.Stats()
	return fmt.Sprintf("shard{size=%d epoch=%d pivots=%d churn=%d rePivots=%d}",
		st.Size, st.Epoch, st.Pivots, st.Churn, st.RePivots)
}
