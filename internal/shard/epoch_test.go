package shard

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"rankjoin/internal/testutil"
)

// TestDeleteMissIsPureNoOp pins the durability verdict of a delete that
// finds nothing: ok=false, no epoch movement, no write-hook record. A
// miss that bumped the epoch would invalidate query caches for nothing
// and force every replica through a phantom record.
func TestDeleteMissIsPureNoOp(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := New(Config{Shards: 2})
	var hookCalls atomic.Int64
	x.SetWriteHook(func(WriteRecord) func() error {
		hookCalls.Add(1)
		return func() error { return nil }
	})
	for _, r := range testutil.RandDataset(rng, 20, 5, 60) {
		if err := x.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	logged := hookCalls.Load()
	before := x.Epochs()

	ok, err := x.Delete(987654) // never inserted
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("Delete of absent id reported ok")
	}
	after := x.Epochs()
	for i := range before {
		if after[i] != before[i] {
			t.Fatalf("shard %d epoch moved %d -> %d on a miss", i, before[i], after[i])
		}
	}
	if hookCalls.Load() != logged {
		t.Fatalf("write hook invoked %d times for a miss", hookCalls.Load()-logged)
	}

	// A hit, by contrast, moves exactly one shard by exactly one and
	// logs exactly one record.
	ok, err = x.Delete(0)
	if err != nil || !ok {
		t.Fatalf("Delete(0) = %v, %v; want hit", ok, err)
	}
	after = x.Epochs()
	moved := 0
	for i := range before {
		switch after[i] - before[i] {
		case 0:
		case 1:
			moved++
		default:
			t.Fatalf("shard %d epoch moved %d -> %d", i, before[i], after[i])
		}
	}
	if moved != 1 {
		t.Fatalf("%d shards moved on one delete, want 1", moved)
	}
	if hookCalls.Load() != logged+1 {
		t.Fatalf("hook calls = %d, want %d", hookCalls.Load(), logged+1)
	}
}
