package shard

import "slices"

// resultHeap is a bounded max-heap of neighbors ordered by distance
// (ties by id, larger id worse), keeping the n best seen so far. It is
// the merge structure for both the per-shard kNN scan and the
// cross-shard fan-in: pushes beyond capacity evict the current worst.
// The backing array survives reset, so a heap embedded in a reusable
// arena allocates only until its high-water capacity is reached.
type resultHeap struct {
	cap int
	ns  []Neighbor
}

// reset re-arms the heap for a new query of capacity n, keeping the
// backing array.
//
//ranklint:allocfree
func (h *resultHeap) reset(n int) {
	h.cap = n
	h.ns = h.ns[:0]
}

// worse orders the heap: a is a strictly worse result than b.
//
//ranklint:allocfree
func worse(a, b Neighbor) bool {
	if a.Dist != b.Dist {
		return a.Dist > b.Dist
	}
	return a.ID > b.ID
}

// cmpNeighbor is the ascending (dist, id) order of every result list.
//
//ranklint:allocfree
func cmpNeighbor(a, b Neighbor) int {
	if a.Dist != b.Dist {
		return a.Dist - b.Dist
	}
	switch {
	case a.ID < b.ID:
		return -1
	case a.ID > b.ID:
		return 1
	}
	return 0
}

//ranklint:allocfree
func (h *resultHeap) full() bool { return len(h.ns) >= h.cap }

// worst returns the distance of the current worst kept neighbor; only
// meaningful when full().
//
//ranklint:allocfree
func (h *resultHeap) worst() int { return h.ns[0].Dist }

// push offers a neighbor; when full, it replaces the root only if the
// newcomer is strictly better.
//
//ranklint:allocfree
func (h *resultHeap) push(n Neighbor) {
	if h.cap <= 0 {
		return
	}
	if len(h.ns) < h.cap {
		h.ns = append(h.ns, n)
		h.up(len(h.ns) - 1)
		return
	}
	if !worse(n, h.ns[0]) {
		h.ns[0] = n
		h.down(0)
	}
}

//ranklint:allocfree
func (h *resultHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !worse(h.ns[i], h.ns[parent]) {
			return
		}
		h.ns[i], h.ns[parent] = h.ns[parent], h.ns[i]
		i = parent
	}
}

//ranklint:allocfree
func (h *resultHeap) down(i int) {
	n := len(h.ns)
	for {
		l, r := 2*i+1, 2*i+2
		w := i
		if l < n && worse(h.ns[l], h.ns[w]) {
			w = l
		}
		if r < n && worse(h.ns[r], h.ns[w]) {
			w = r
		}
		if w == i {
			return
		}
		h.ns[i], h.ns[w] = h.ns[w], h.ns[i]
		i = w
	}
}

// appendSorted sorts the kept neighbors into ascending (dist, id) order
// and appends them to dst, leaving the heap reusable via reset.
//
//ranklint:allocfree
func (h *resultHeap) appendSorted(dst []Neighbor) []Neighbor {
	slices.SortFunc(h.ns, cmpNeighbor)
	return append(dst, h.ns...)
}
