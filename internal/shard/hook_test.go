package shard

import (
	"math/rand"
	"sync"
	"testing"

	"rankjoin/internal/testutil"
)

// TestRePivotHook installs the index-level re-pivot observer and drives
// enough inserts to trigger background rebuilds, checking the delivered
// events describe them.
func TestRePivotHook(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	x := New(Config{Shards: 1, PivotsPerShard: 5, Seed: 9})

	var mu sync.Mutex
	var events []RePivotEvent
	x.SetRePivotHook(func(e RePivotEvent) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	})

	for _, r := range testutil.RandDataset(rng, 300, 8, 150) {
		if err := x.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(events) >= 1
	})
	mu.Lock()
	e := events[0]
	mu.Unlock()
	if e.Shard != 0 {
		t.Fatalf("event shard = %d, want 0", e.Shard)
	}
	if e.Size < minRePivotSize || e.Pivots != 5 {
		t.Fatalf("event = %+v", e)
	}
	if e.Churn <= 0 {
		t.Fatalf("event churn = %d, want > 0", e.Churn)
	}
	if e.Dur < 0 {
		t.Fatalf("event dur = %v", e.Dur)
	}

	// Uninstalling stops delivery; later re-pivots must not call a stale
	// hook (and must not panic on the nil pointer).
	x.SetRePivotHook(nil)
	mu.Lock()
	seen := len(events)
	mu.Unlock()
	for id := int64(10_000); id < 10_300; id++ {
		if err := x.Insert(testutil.RandRanking(rng, id, 8, 150)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return !x.shards[0].repivoting.Load() && x.Stats()[0].RePivots >= 2 })
	mu.Lock()
	after := len(events)
	mu.Unlock()
	if after != seen {
		t.Fatalf("hook fired after uninstall: %d → %d events", seen, after)
	}
}
