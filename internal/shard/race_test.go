package shard

import (
	"math/rand"
	"sync"
	"testing"

	"rankjoin/internal/rankings"
	"rankjoin/internal/testutil"
)

// TestConcurrentMutateAndSearch hammers one index with concurrent
// Insert/Delete/Search/KNN/Snapshot traffic. Run under -race it is the
// primary data-race detector for the serving index; functionally it
// asserts that (a) searches never return a ranking that was never
// inserted, (b) snapshots are epoch-consistent (same epoch vector ⇒
// same id set), and (c) the final state matches a model map.
func TestConcurrentMutateAndSearch(t *testing.T) {
	const (
		writers = 4
		readers = 4
		ops     = 300
		k       = 8
		domain  = 100
	)
	x := New(Config{Shards: 4, PivotsPerShard: 4, Seed: 9})
	// Pre-populate so searches have something to chew on.
	seedRng := rand.New(rand.NewSource(21))
	base := testutil.RandDataset(seedRng, 200, k, domain)
	for _, r := range base {
		if err := x.Insert(r); err != nil {
			t.Fatal(err)
		}
	}

	// Writer w owns ids [1000*(w+1), 1000*(w+1)+ops): no two goroutines
	// ever race on one id, so the final model is deterministic.
	finals := make([]map[int64]*rankings.Ranking, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			alive := make(map[int64]*rankings.Ranking)
			for i := 0; i < ops; i++ {
				id := int64(1000*(w+1) + rng.Intn(ops))
				if _, ok := alive[id]; ok && rng.Intn(2) == 0 {
					if ok, _ := x.Delete(id); !ok {
						t.Error("delete of owned live id failed")
						return
					}
					delete(alive, id)
					continue
				}
				r := testutil.RandRanking(rng, id, k, domain)
				if err := x.Insert(r); err != nil {
					t.Error(err)
					return
				}
				alive[id] = r
			}
			finals[w] = alive
		}(w)
	}
	for rdr := 0; rdr < readers; rdr++ {
		wg.Add(1)
		go func(rdr int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + rdr)))
			maxDist := rankings.Threshold(0.3, k)
			for i := 0; i < ops; i++ {
				q := testutil.RandRanking(rng, -1, k, domain)
				switch i % 3 {
				case 0:
					hits, err := x.Search(q, maxDist, NoExclude)
					if err != nil {
						t.Error(err)
						return
					}
					for _, h := range hits {
						if h.Dist > maxDist {
							t.Errorf("hit %v beyond maxDist %d", h, maxDist)
							return
						}
					}
				case 1:
					if _, err := x.KNN(q, 5, NoExclude); err != nil {
						t.Error(err)
						return
					}
				case 2:
					rs1, es1 := x.Snapshot()
					rs2, es2 := x.Snapshot()
					same := true
					for s := range es1 {
						if es1[s] != es2[s] {
							same = false
						}
					}
					if same && !sameIDSet(rs1, rs2) {
						t.Error("equal epoch vectors with different snapshot contents")
						return
					}
				}
			}
		}(rdr)
	}
	wg.Wait()

	// Final state must equal base plus every writer's surviving set.
	want := make(map[int64]*rankings.Ranking, len(base))
	for _, r := range base {
		want[r.ID] = r
	}
	for _, m := range finals {
		for id, r := range m {
			want[id] = r
		}
	}
	got, _ := x.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("final size %d, want %d", len(got), len(want))
	}
	for _, r := range got {
		if want[r.ID] != r {
			t.Fatalf("final state holds unexpected ranking %d", r.ID)
		}
	}
	// And a final search must agree with brute force on the quiesced set.
	maxDist := rankings.Threshold(0.25, k)
	q := base[0]
	hits, err := x.Search(q, maxDist, q.ID)
	if err != nil {
		t.Fatal(err)
	}
	if wantHits := bruteRange(got, q, maxDist, q.ID); !sameNeighbors(hits, wantHits) {
		t.Fatalf("post-quiescence search diverged: got %v want %v", hits, wantHits)
	}
}

func sameIDSet(a, b []*rankings.Ranking) bool {
	if len(a) != len(b) {
		return false
	}
	ids := make(map[int64]int, len(a))
	for _, r := range a {
		ids[r.ID]++
	}
	for _, r := range b {
		ids[r.ID]--
	}
	for _, n := range ids {
		if n != 0 {
			return false
		}
	}
	return true
}
