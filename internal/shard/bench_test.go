package shard

import (
	"math/rand"
	"testing"

	"rankjoin/internal/testutil"
)

func BenchmarkKNNInto10k(b *testing.B) {
	rng := rand.New(rand.NewSource(99))
	data := testutil.ClusteredDataset(rng, 2000, 5, 10, 300)
	x := New(Config{})
	for _, r := range data {
		if err := x.Insert(r); err != nil {
			b.Fatal(err)
		}
	}
	bb := x.NewBatch()
	qrng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := data[qrng.Intn(len(data))]
		if _, err := bb.KNNInto(q, 10, q.ID); err != nil {
			b.Fatal(err)
		}
	}
}
