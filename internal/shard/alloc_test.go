package shard

import (
	"math/rand"
	"testing"

	"rankjoin/internal/rankings"
	"rankjoin/internal/testutil"
)

// quiesce waits until every shard's background re-pivoting has settled
// so allocation measurements don't race a rebuild.
func quiesce(t *testing.T, x *Index) {
	t.Helper()
	waitFor(t, func() bool {
		for _, s := range x.shards {
			if s.repivoting.Load() {
				return false
			}
			st := s.Stats()
			if st.Size >= minRePivotSize && st.Pivots == 0 {
				return false
			}
		}
		return true
	})
}

// TestQueriesAllocationFree pins the arena contract: once a Batch has
// warmed its buffers to their high-water mark, steady-state SearchInto,
// KNNInto and SearchBatchInto queries allocate nothing — the property
// the serving path's throughput rests on.
func TestQueriesAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	const k = 10
	rs := testutil.ClusteredDataset(rng, 100, 5, k, 30*k)
	x := buildIndex(t, rs, 4)
	quiesce(t, x)
	maxDist := rankings.Threshold(0.25, k)

	b := x.NewBatch()
	qs := make([]Query, 0, 8)
	for _, q := range rs[:8] {
		qs = append(qs, Query{R: q, MaxDist: maxDist, Exclude: q.ID})
	}
	qs = append(qs[:7], Query{R: rs[7], KNN: 10, Exclude: rs[7].ID})

	checks := []struct {
		name string
		fn   func()
	}{
		{"SearchInto", func() {
			if _, err := b.SearchInto(rs[1], maxDist, rs[1].ID); err != nil {
				t.Fatal(err)
			}
		}},
		{"KNNInto", func() {
			if _, err := b.KNNInto(rs[2], 10, rs[2].ID); err != nil {
				t.Fatal(err)
			}
		}},
		{"SearchBatchInto", func() {
			if _, err := b.SearchBatchInto(qs, nil); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, c := range checks {
		// One extra warm call before measuring: AllocsPerRun's own warm-up
		// run is also the arena's first growth to this shape.
		c.fn()
		if avg := testing.AllocsPerRun(100, c.fn); avg != 0 {
			t.Errorf("%s: %.2f allocs/op in steady state, want 0", c.name, avg)
		}
	}
}

// TestBatchArenaReuse pins the documented aliasing contract: results
// returned by *Into calls are views into the Batch arena, invalidated
// by the next call — and re-running the same queries through one Batch
// yields identical answers (the rankcheck replay relies on this).
func TestBatchArenaReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	const k = 8
	rs := testutil.ClusteredDataset(rng, 30, 4, k, 80)
	x := buildIndex(t, rs, 3)
	maxDist := rankings.Threshold(0.3, k)
	b := x.NewBatch()

	first, err := b.SearchInto(rs[0], maxDist, rs[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]Neighbor(nil), first...)
	// A different query scribbles over the arena...
	if _, err := b.KNNInto(rs[5], 5, rs[5].ID); err != nil {
		t.Fatal(err)
	}
	// ...but replaying the original through the same Batch matches the
	// detached copy, and the public (copying) API agrees.
	again, err := b.SearchInto(rs[0], maxDist, rs[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if !sameNeighbors(again, want) {
		t.Fatalf("replay through reused Batch diverged: %v vs %v", again, want)
	}
	pub, err := x.Search(rs[0], maxDist, rs[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if !sameNeighbors(pub, want) {
		t.Fatalf("public Search diverged from Batch view: %v vs %v", pub, want)
	}
}

// TestCardinalities pins the cheap size accessor against Len and the
// per-shard stats.
func TestCardinalities(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	rs := testutil.RandDataset(rng, 123, 6, 200)
	x := buildIndex(t, rs, 5)
	cards := x.Cardinalities()
	if len(cards) != x.NumShards() {
		t.Fatalf("Cardinalities length %d, want %d", len(cards), x.NumShards())
	}
	total := 0
	for i, c := range cards {
		total += c
		if st := x.shards[i].Stats(); st.Size != c {
			t.Errorf("shard %d cardinality %d != stats size %d", i, c, st.Size)
		}
	}
	if total != x.Len() {
		t.Fatalf("cardinality sum %d != Len %d", total, x.Len())
	}
}
