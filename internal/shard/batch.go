package shard

import (
	"fmt"
	"slices"
	"sync"

	"rankjoin/internal/obs"
	"rankjoin/internal/rankings"
)

// shardOut is one shard's slot in a Batch arena: the sweep's hit
// output, its filter accounting, and every piece of per-sweep scratch
// the shard needs, so a steady-state sweep allocates nothing. Buffers
// grow to their high-water mark once and are reused afterwards.
type shardOut struct {
	neighbors []Neighbor // all hits of the sweep, flat
	segs      []int32    // per-query [start,end) pairs into neighbors (2 per query)
	delta     obs.FilterDelta

	// kNN probe output (sweepPhase1): per-query verified candidate
	// distances the Batch merges into the global kNN cutoff.
	probe []Neighbor
	pseg  []int32 // per-query [start,end) pairs into probe (2 per query)

	// Sweep scratch (see Shard.sweepPhase1).
	qd     []int32                  // query-to-pivot distances, query-major
	ob     []uint8                  // overlap-bound matrix, query-major
	cand   []int32                  // kNN candidate order (counting sort)
	counts [maxSignatureK + 2]int32 // counting-sort histogram (ob ≤ k ≤ maxSignatureK)
	heap   resultHeap
}

// Batch is a reusable query-execution arena bound to one Index: it owns
// the per-shard sweep scratch, the fan-out plumbing and the merged
// result buffer, so that steady-state queries through SearchInto /
// KNNInto / SearchBatchInto allocate nothing at all.
//
// A Batch is NOT safe for concurrent use, and every result slice it
// returns aliases its arena — valid only until the next call on the
// same Batch. Callers that retain results (caches, response buffers
// outliving the next query) must copy them; the Index-level Search /
// KNN / SearchBatch wrappers do exactly that.
type Batch struct {
	x    *Index
	qs   []Query
	span *obs.Span

	qsig []rankings.Sig
	qpop []uint8

	// twoPhase is set per call when the batch contains kNN queries: the
	// shard goroutines then pause on wg2 after their phase-1 sweep
	// (holding their shard's RLock) until the main goroutine has merged
	// the per-shard probes into the global cutoffs gb, and finish with
	// phase 2. Range-only batches complete in phase 1 alone.
	twoPhase bool
	gb       []int      // per-query global kNN distance cutoff
	pscratch []Neighbor // probe-merge scratch, one query at a time

	wg    sync.WaitGroup // shard goroutines: phase 1 done
	wg2   sync.WaitGroup // main goroutine: global bounds ready
	wg3   sync.WaitGroup // shard goroutines: phase 2 done
	funcs []func()       // pre-bound per-shard sweeps: `go f()` allocates nothing
	so    []shardOut

	one [1]Query     // backing for SearchInto/KNNInto
	res []Neighbor   // merged results, flat
	out [][]Neighbor // per-query views into res
}

// NewBatch creates an execution arena for queries against x. The Batch
// is cheap to keep for the life of the index (the server's request
// batcher owns exactly one); short-lived callers can instead use the
// Index's Search/KNN/SearchBatch, which draw Batches from a pool.
func (x *Index) NewBatch() *Batch {
	b := &Batch{x: x, so: make([]shardOut, len(x.shards))}
	b.funcs = make([]func(), len(x.shards))
	for i := range b.funcs {
		i := i
		b.funcs[i] = func() {
			b.runShard(i)
			// Latch twoPhase before Done: the instant the last shard
			// signals, the main goroutine may move on to the next batch
			// and overwrite the field.
			two := b.twoPhase
			b.wg.Done()
			if two {
				b.wg2.Wait() // global bounds ready
				b.runShard2(i)
				b.wg3.Done()
			}
		}
	}
	return b
}

//ranklint:allocfree
func (b *Batch) runShard(i int) {
	s := b.x.shards[i]
	so := &b.so[i]
	if b.span != nil {
		t := b.span.StartTask(b.x.spanNames[i], obs.Int("size", int64(s.Len()))) //ranklint:ignore sampled-trace branch; the zero-alloc contract covers the span==nil path
		s.sweepPhase1(b.qs, b.qsig, b.qpop, so, b.twoPhase)
		t.SetInt("hits", int64(len(so.neighbors))) //ranklint:ignore sampled-trace branch
		t.End()                                    //ranklint:ignore sampled-trace branch
	} else {
		s.sweepPhase1(b.qs, b.qsig, b.qpop, so, b.twoPhase)
	}
}

//ranklint:allocfree
func (b *Batch) runShard2(i int) {
	s := b.x.shards[i]
	so := &b.so[i]
	if b.span != nil {
		t := b.span.StartTask(b.x.spanNames[i], obs.Int("phase", 2)) //ranklint:ignore sampled-trace branch; the zero-alloc contract covers the span==nil path
		s.sweepPhase2(b.qs, b.gb, so)
		t.SetInt("hits", int64(len(so.neighbors))) //ranklint:ignore sampled-trace branch
		t.End()                                    //ranklint:ignore sampled-trace branch
	} else {
		s.sweepPhase2(b.qs, b.gb, so)
	}
}

// globalBounds merges the per-shard kNN probes into b.gb: for each kNN
// query, the q.KNN-th smallest probed distance under the (dist, id)
// order — an admissible cutoff, since at least q.KNN indexed rankings
// were verified at or below it. Queries whose probes came up short
// (tiny shards, oversized k) fall back to MaxFootrule, which rejects
// nothing.
//
//ranklint:allocfree
func (b *Batch) globalBounds(qs []Query) {
	b.gb = growCap(b.gb, len(qs))
	for qi := range qs {
		q := &qs[qi]
		if q.KNN <= 0 {
			b.gb[qi] = 0
			continue
		}
		b.pscratch = b.pscratch[:0]
		for si := range b.so {
			so := &b.so[si]
			b.pscratch = append(b.pscratch, so.probe[so.pseg[2*qi]:so.pseg[2*qi+1]]...)
		}
		if len(b.pscratch) >= q.KNN {
			slices.SortFunc(b.pscratch, cmpNeighbor)
			b.gb[qi] = b.pscratch[q.KNN-1].Dist
		} else {
			b.gb[qi] = rankings.MaxFootrule(q.R.K())
		}
	}
}

// SearchBatchInto answers a batch of queries in one fan-out sweep:
// every shard is visited exactly once (one RLock, all queries, one
// fused signature pass), shards run concurrently, and per-shard partial
// results are merged per query into the arena. Batches containing kNN
// queries sweep in two phases with a barrier between them: the shards'
// probe results are merged into a global distance cutoff that lets
// every shard bulk-reject the candidates a purely local heap bound
// would have verified. The span, when non-nil, receives task children
// per shard (two per shard for two-phase sweeps).
//
// The returned slices alias the Batch arena and are valid only until
// the next call on b. Queries' rankings get their position index built
// as a side effect.
//
//ranklint:allocfree
func (b *Batch) SearchBatchInto(qs []Query, span *obs.Span) ([][]Neighbor, error) {
	hasKNN := false
	for i := range qs {
		if err := b.x.checkQuery(qs[i].R); err != nil { //ranklint:ignore checkQuery allocates only when building the rejection error for an invalid query
			return nil, err
		}
		// Index once, before the fan-out shares the query across
		// goroutines (Ranking.Index is not concurrency-safe).
		qs[i].R.Index()
		if qs[i].KNN > 0 {
			hasKNN = true
		}
	}
	b.qsig = growCap(b.qsig, len(qs))
	b.qpop = growCap(b.qpop, len(qs))
	for i := range qs {
		sig, pop := qs[i].R.Signature()
		b.qsig[i] = sig
		b.qpop[i] = uint8(pop)
	}

	b.qs, b.span, b.twoPhase = qs, span, hasKNN
	b.wg.Add(len(b.funcs))
	if hasKNN {
		b.wg2.Add(1)
		b.wg3.Add(len(b.funcs))
	}
	for _, f := range b.funcs {
		go f()
	}
	b.wg.Wait()
	if hasKNN {
		b.globalBounds(qs)
		b.wg2.Done()
		b.wg3.Wait()
	}
	b.qs, b.span = nil, nil

	total := 0
	for i := range b.so {
		b.x.filters.Add(b.so[i].delta)
		b.so[i].delta = obs.FilterDelta{}
		total += len(b.so[i].neighbors)
	}

	// Merge: concatenate each query's per-shard segments into the flat
	// result buffer (pre-sized from the exact hit total), sort into
	// (dist, id) order, and truncate kNN queries to their n.
	b.res = growCap(b.res, total)[:0]
	b.out = growCap(b.out, len(qs))[:0]
	for qi := range qs {
		start := len(b.res)
		for si := range b.so {
			so := &b.so[si]
			b.res = append(b.res, so.neighbors[so.segs[2*qi]:so.segs[2*qi+1]]...)
		}
		view := b.res[start:len(b.res):len(b.res)]
		slices.SortFunc(view, cmpNeighbor)
		if n := qs[qi].KNN; n > 0 && len(view) > n {
			view = view[:n]
		}
		b.out = append(b.out, view)
	}
	return b.out, nil
}

// SearchInto is Search answering into the Batch arena: every indexed
// ranking within maxDist of q (minus exclude), sorted by (dist, id).
// The result aliases the arena — valid until the next call on b.
//
//ranklint:allocfree
func (b *Batch) SearchInto(q *rankings.Ranking, maxDist int, exclude int64) ([]Neighbor, error) {
	b.one[0] = Query{R: q, MaxDist: maxDist, Exclude: exclude}
	res, err := b.SearchBatchInto(b.one[:], nil)
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// KNNInto is KNN answering into the Batch arena: the n indexed
// rankings closest to q (minus exclude), sorted by (dist, id). The
// result aliases the arena — valid until the next call on b.
//
//ranklint:allocfree
func (b *Batch) KNNInto(q *rankings.Ranking, n int, exclude int64) ([]Neighbor, error) {
	if n <= 0 {
		return nil, fmt.Errorf("shard: knn n must be positive, got %d", n) //ranklint:ignore error construction for an invalid argument, off the steady-state path
	}
	b.one[0] = Query{R: q, KNN: n, Exclude: exclude}
	res, err := b.SearchBatchInto(b.one[:], nil)
	if err != nil {
		return nil, err
	}
	return res[0], nil
}
