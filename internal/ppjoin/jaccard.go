package ppjoin

import (
	"fmt"
	"math"
	"sort"
)

// This file implements the paper's stated outlook (§8): extending the
// machinery to plain sets under Jaccard distance. It is a classic
// prefix-filtering set-similarity self join (Chaudhuri et al. / Xiao et
// al.) with length and positional filters, so that the repository's
// recommender example can join set-valued baskets next to rankings.

// SetRecord is a set of tokens with an identity. Tokens must be stored
// in the global canonical order (ascending frequency); BuildSetRecords
// takes care of that.
type SetRecord struct {
	ID     int64
	Tokens []int32
}

// SetPair is one Jaccard-join result with its similarity.
type SetPair struct {
	A, B int64
	Sim  float64
}

// BuildSetRecords canonicalizes raw token sets: duplicates removed,
// tokens sorted by ascending global frequency (ties by token id).
func BuildSetRecords(raw map[int64][]int32) []SetRecord {
	freq := map[int32]int{}
	for _, toks := range raw {
		seen := map[int32]struct{}{}
		for _, t := range toks {
			if _, dup := seen[t]; dup {
				continue
			}
			seen[t] = struct{}{}
			freq[t]++
		}
	}
	recs := make([]SetRecord, 0, len(raw))
	for id, toks := range raw {
		seen := map[int32]struct{}{}
		uniq := make([]int32, 0, len(toks))
		for _, t := range toks {
			if _, dup := seen[t]; dup {
				continue
			}
			seen[t] = struct{}{}
			uniq = append(uniq, t)
		}
		sort.Slice(uniq, func(i, j int) bool {
			fi, fj := freq[uniq[i]], freq[uniq[j]]
			if fi != fj {
				return fi < fj
			}
			return uniq[i] < uniq[j]
		})
		recs = append(recs, SetRecord{ID: id, Tokens: uniq})
	}
	sort.Slice(recs, func(i, j int) bool { return len(recs[i].Tokens) < len(recs[j].Tokens) })
	return recs
}

// Jaccard computes |a ∩ b| / |a ∪ b| for two canonicalized token sets.
// Tokens must be unique within each set (any order).
func Jaccard(a, b []int32) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inA := make(map[int32]struct{}, len(a))
	for _, t := range a {
		inA[t] = struct{}{}
	}
	inter := 0
	for _, t := range b {
		if _, ok := inA[t]; ok {
			inter++
		}
	}
	return float64(inter) / float64(len(a)+len(b)-inter)
}

// JaccardJoin returns all pairs of records with Jaccard similarity ≥
// threshold, via prefix filtering with length and overlap filters. The
// records must come from BuildSetRecords (canonical token order, sorted
// by length). threshold must be in (0, 1].
func JaccardJoin(recs []SetRecord, threshold float64, st *Stats) ([]SetPair, error) {
	if threshold <= 0 || threshold > 1 {
		return nil, fmt.Errorf("ppjoin: jaccard threshold %v out of (0,1]", threshold)
	}
	var local Stats
	index := map[int32][]int{} // token -> record indexes with it in prefix
	var out []SetPair
	for i, r := range recs {
		n := len(r.Tokens)
		if n == 0 {
			continue
		}
		// Prefix length for a self join: n − ⌈t·n⌉ + 1.
		prefix := n - ceilMul(threshold, n) + 1
		overlaps := map[int]int{} // candidate idx -> shared prefix tokens
		for p := 0; p < prefix; p++ {
			tok := r.Tokens[p]
			for _, idx := range index[tok] {
				cand := recs[idx]
				// Length filter: |cand| ≥ t·|r| (records sorted by
				// length, so cand is never longer).
				if float64(len(cand.Tokens)) < threshold*float64(n) {
					continue
				}
				overlaps[idx]++
			}
			index[tok] = append(index[tok], i)
		}
		// Emit candidates in index order: overlaps is a map, and the
		// output order must not depend on iteration order (rankcheck
		// compares runs pairwise after canonical sorting, but callers
		// observe raw order).
		cands := make([]int, 0, len(overlaps))
		for idx := range overlaps {
			cands = append(cands, idx)
		}
		sort.Ints(cands)
		for _, idx := range cands {
			cand := recs[idx]
			if cand.ID == r.ID {
				continue
			}
			local.Candidates++
			local.Verified++
			if sim := Jaccard(r.Tokens, cand.Tokens); sim >= threshold {
				local.Results++
				a, b := r.ID, cand.ID
				if a > b {
					a, b = b, a
				}
				out = append(out, SetPair{A: a, B: b, Sim: sim})
			}
		}
	}
	st.add(local)
	return out, nil
}

// JaccardBruteForce is the oracle for JaccardJoin tests.
func JaccardBruteForce(recs []SetRecord, threshold float64) []SetPair {
	var out []SetPair
	for i := 0; i < len(recs); i++ {
		for j := i + 1; j < len(recs); j++ {
			if recs[i].ID == recs[j].ID {
				continue
			}
			if sim := Jaccard(recs[i].Tokens, recs[j].Tokens); sim >= threshold {
				a, b := recs[i].ID, recs[j].ID
				if a > b {
					a, b = b, a
				}
				out = append(out, SetPair{A: a, B: b, Sim: sim})
			}
		}
	}
	return out
}

// ceilMul computes ⌈f·n⌉ with a tolerance for floating-point noise on
// exact multiples.
func ceilMul(f float64, n int) int {
	return int(math.Ceil(f*float64(n) - 1e-9))
}
