package ppjoin_test

import (
	"math/rand"
	"testing"

	"rankjoin/internal/filters"
	"rankjoin/internal/ppjoin"
	"rankjoin/internal/rankings"
	"rankjoin/internal/testutil"
)

// TestKernelsAgreeWithBruteForce: every in-memory kernel must produce
// exactly the oracle's result set on randomized datasets of varying
// density.
func TestKernelsAgreeWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		k := 3 + rng.Intn(10)
		n := 20 + rng.Intn(80)
		dom := k + rng.Intn(4*k)
		rs := testutil.RandDataset(rng, n, k, dom)
		maxDist := rng.Intn(rankings.MaxFootrule(k) + 1)
		want := ppjoin.BruteForce(rs, maxDist, nil)

		if got := ppjoin.NestedLoop(rs, maxDist, nil); !rankings.SamePairs(got, want) {
			a, b := rankings.DiffPairs(got, want)
			t.Fatalf("NestedLoop trial %d (k=%d F=%d): extra %v missing %v", trial, k, maxDist, a, b)
		}

		ord := rankings.OrderFromDataset(rs)
		prefix := filters.PrefixOverlap(maxDist, k)
		if got := ppjoin.PrefixIndex(rs, ord, prefix, maxDist, nil); !rankings.SamePairs(got, want) {
			a, b := rankings.DiffPairs(got, want)
			t.Fatalf("PrefixIndex trial %d (k=%d F=%d p=%d): extra %v missing %v",
				trial, k, maxDist, prefix, a, b)
		}
	}
}

// TestClusteredDatasets exercises the kernels on datasets with genuine
// near-duplicate structure, the regime CL targets.
func TestClusteredDatasets(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		k := 5 + rng.Intn(8)
		rs := testutil.ClusteredDataset(rng, 10, 4, k, 6*k)
		maxDist := rankings.Threshold(0.2+0.3*rng.Float64(), k)
		want := ppjoin.BruteForce(rs, maxDist, nil)
		if len(want) == 0 {
			t.Fatalf("clustered dataset produced no close pairs — generator broken")
		}
		ord := rankings.OrderFromDataset(rs)
		prefix := filters.PrefixOverlap(maxDist, k)
		if got := ppjoin.PrefixIndex(rs, ord, prefix, maxDist, nil); !rankings.SamePairs(got, want) {
			t.Fatalf("PrefixIndex diverges on clustered data (trial %d)", trial)
		}
		if got := ppjoin.NestedLoop(rs, maxDist, nil); !rankings.SamePairs(got, want) {
			t.Fatalf("NestedLoop diverges on clustered data (trial %d)", trial)
		}
	}
}

// TestRSJoin: the R-S kernel equals the cross-list subset of the
// brute-force join over the union.
func TestRSJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		k := 4 + rng.Intn(8)
		dom := k + rng.Intn(3*k)
		r := testutil.RandDataset(rng, 15+rng.Intn(25), k, dom)
		s := make([]*rankings.Ranking, 0, 20)
		for i := 0; i < 15+rng.Intn(25); i++ {
			rk := testutil.RandRanking(rng, int64(1000+i), k, dom)
			s = append(s, rk)
		}
		maxDist := rng.Intn(rankings.MaxFootrule(k) + 1)

		var want []rankings.Pair
		for _, a := range r {
			for _, b := range s {
				if d, ok := rankings.FootruleWithin(a, b, maxDist); ok {
					want = append(want, rankings.NewPair(a.ID, b.ID, d))
				}
			}
		}
		got := ppjoin.RS(r, s, maxDist, nil)
		if !rankings.SamePairs(rankings.DedupPairs(got), rankings.DedupPairs(want)) {
			t.Fatalf("RS trial %d diverges", trial)
		}
	}
}

func TestRSSkipsSameID(t *testing.T) {
	a := rankings.MustNew(7, []rankings.Item{1, 2, 3})
	b := rankings.MustNew(7, []rankings.Item{1, 2, 3})
	if got := ppjoin.RS([]*rankings.Ranking{a}, []*rankings.Ranking{b}, 100, nil); len(got) != 0 {
		t.Errorf("RS paired a ranking with itself: %v", got)
	}
}

func TestStatsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rs := testutil.RandDataset(rng, 50, 8, 24)
	maxDist := rankings.Threshold(0.3, 8)

	var st ppjoin.Stats
	res := ppjoin.NestedLoop(rs, maxDist, &st)
	if st.Results != int64(len(res)) {
		t.Errorf("stats results %d, emitted %d", st.Results, len(res))
	}
	if st.Candidates != 50*49/2 {
		t.Errorf("nested-loop candidates %d, want %d", st.Candidates, 50*49/2)
	}
	if st.Verified > st.Candidates {
		t.Errorf("verified %d > candidates %d", st.Verified, st.Candidates)
	}

	// The prefix index must generate no more candidates than the
	// nested loop examines.
	var ip ppjoin.Stats
	ord := rankings.OrderFromDataset(rs)
	prefix := filters.PrefixOverlap(maxDist, 8)
	ppjoin.PrefixIndex(rs, ord, prefix, maxDist, &ip)
	if ip.Candidates > st.Candidates {
		t.Errorf("prefix index candidates %d exceed nested loop %d", ip.Candidates, st.Candidates)
	}
}

func TestEmptyAndSingleInputs(t *testing.T) {
	if got := ppjoin.BruteForce(nil, 10, nil); len(got) != 0 {
		t.Error("brute force on empty input")
	}
	one := []*rankings.Ranking{rankings.MustNew(0, []rankings.Item{1, 2})}
	if got := ppjoin.NestedLoop(one, 10, nil); len(got) != 0 {
		t.Error("nested loop on single ranking")
	}
	ord := rankings.OrderFromDataset(one)
	if got := ppjoin.PrefixIndex(one, ord, 1, 10, nil); len(got) != 0 {
		t.Error("prefix index on single ranking")
	}
}

// TestDuplicateContentDistinctIDs: the preprocessing note in §7 — after
// cutting records to length k the dataset may contain distance-0 pairs
// with different ids; they are legitimate results.
func TestDuplicateContentDistinctIDs(t *testing.T) {
	a := rankings.MustNew(1, []rankings.Item{1, 2, 3})
	b := rankings.MustNew(2, []rankings.Item{1, 2, 3})
	got := ppjoin.NestedLoop([]*rankings.Ranking{a, b}, 0, nil)
	if len(got) != 1 || got[0].Dist != 0 {
		t.Errorf("distance-0 pair not reported: %v", got)
	}
}
