// Package ppjoin provides the in-memory similarity-join kernels that
// the distributed algorithms execute inside partitions: a brute-force
// oracle, a nested-loop kernel with the position filter (the VJ-NL
// per-partition join of §4.1), a PPJoin-style prefix-index kernel (the
// classic VJ per-partition join), and an R-S kernel across two lists
// (used when repartitioned sub-partitions are joined pairwise, §6).
//
// All kernels emit canonical pairs (smaller id first), never pair a
// ranking with itself, and take the threshold as an unnormalized
// Footrule distance.
package ppjoin

import (
	"rankjoin/internal/filters"
	"rankjoin/internal/obs"
	"rankjoin/internal/rankings"
)

// Stats counts the work a kernel performed. Pass nil to skip counting.
// Every candidate meets exactly one fate, so
// Candidates == PrunedPrefix + PrunedSignature + PrunedPosition + Verified.
type Stats struct {
	// Candidates is the number of pairs the kernel enumerated.
	Candidates int64
	// PrunedPrefix is the number of candidates discarded by the
	// single-item rank check at the indexed prefix token (PrefixIndex
	// only).
	PrunedPrefix int64
	// PrunedSignature is the number of candidates discarded by the
	// 64-bit item-signature overlap bound (filters.SignaturePrune),
	// checked before the merged-pass position filter.
	PrunedSignature int64
	// PrunedPosition is the number of candidates discarded by the full
	// merged-pass position filter.
	PrunedPosition int64
	// Verified is the number of pairs whose Footrule distance was
	// computed.
	Verified int64
	// Results is the number of emitted pairs.
	Results int64
}

func (s *Stats) add(o Stats) {
	if s == nil {
		return
	}
	s.Candidates += o.Candidates
	s.PrunedPrefix += o.PrunedPrefix
	s.PrunedSignature += o.PrunedSignature
	s.PrunedPosition += o.PrunedPosition
	s.Verified += o.Verified
	s.Results += o.Results
}

// FilterDelta converts kernel stats into the engine-wide
// filter-effectiveness delta folded into flow.Context.Filters.
func (s Stats) FilterDelta() obs.FilterDelta {
	return obs.FilterDelta{
		Generated:       s.Candidates,
		PrunedPrefix:    s.PrunedPrefix,
		PrunedSignature: s.PrunedSignature,
		PrunedPosition:  s.PrunedPosition,
		Verified:        s.Verified,
		Emitted:         s.Results,
	}
}

// BruteForce verifies every pair — the correctness oracle for tests and
// the baseline for the smallest inputs.
func BruteForce(rs []*rankings.Ranking, maxDist int, st *Stats) []rankings.Pair {
	var local Stats
	var out []rankings.Pair
	for i := 0; i < len(rs); i++ {
		for j := i + 1; j < len(rs); j++ {
			if rs[i].ID == rs[j].ID {
				continue
			}
			local.Candidates++
			local.Verified++
			if d, ok := rankings.FootruleWithin(rs[i], rs[j], maxDist); ok {
				local.Results++
				out = append(out, rankings.NewPair(rs[i].ID, rs[j].ID, d))
			}
		}
	}
	st.add(local)
	return out
}

// NestedLoop joins a partition by walking ordered pairs with an
// iterator-style nested loop: position filter first, then early-exit
// verification. This is the Spark-friendly kernel the paper advocates
// in §4.1 — no per-partition index, no retained state beyond the two
// cursors.
func NestedLoop(rs []*rankings.Ranking, maxDist int, st *Stats) []rankings.Pair {
	var local Stats
	var out []rankings.Pair
	for i := 0; i < len(rs); i++ {
		a := rs[i]
		asig, apop := a.Signature()
		ak := a.K()
		for j := i + 1; j < len(rs); j++ {
			b := rs[j]
			if a.ID == b.ID {
				continue
			}
			local.Candidates++
			if b.K() == ak {
				bsig, bpop := b.Signature()
				if filters.SignaturePrune(asig, apop, bsig, bpop, ak, maxDist) {
					local.PrunedSignature++
					continue
				}
			}
			if filters.PositionPrune(a, b, maxDist) {
				local.PrunedPosition++
				continue
			}
			local.Verified++
			if d, ok := rankings.FootruleWithin(a, b, maxDist); ok {
				local.Results++
				out = append(out, rankings.NewPair(a.ID, b.ID, d))
			}
		}
	}
	st.add(local)
	return out
}

// PrefixIndex joins a partition PPJoin-style: the canonical prefixes of
// all rankings are indexed with an inverted index; only pairs sharing a
// prefix item become candidates, pruned item-by-item with the position
// filter while scanning posting lists, then verified. This mirrors the
// in-memory join Vernica et al. run inside each reducer, including the
// memory profile the paper criticizes in §4.1: the whole partition is
// indexed before any pair is emitted.
//
// prefix is the number of canonical-prefix items to index (derived by
// the caller from maxDist via filters.PrefixOverlap).
func PrefixIndex(rs []*rankings.Ranking, ord *rankings.Order, prefix, maxDist int, st *Stats) []rankings.Pair {
	var local Stats
	// Posting list entry: ranking index plus the item's original rank,
	// so the position filter applies without a Pos lookup.
	type posting struct {
		idx  int
		rank int32
	}
	index := make(map[rankings.Item][]posting)
	seen := make(map[[2]int64]struct{})
	var out []rankings.Pair
	for i, r := range rs {
		rsig, rpop := r.Signature()
		rk := r.K()
		for _, it := range ord.Prefix(r, prefix) {
			rank, _ := r.Pos(it)
			for _, p := range index[it] {
				other := rs[p.idx]
				if other.ID == r.ID {
					continue
				}
				key := [2]int64{other.ID, r.ID}
				if key[0] > key[1] {
					key[0], key[1] = key[1], key[0]
				}
				if _, dup := seen[key]; dup {
					continue
				}
				seen[key] = struct{}{}
				local.Candidates++
				if filters.PositionPruneItem(rank, p.rank, maxDist) {
					local.PrunedPrefix++
					continue
				}
				if other.K() == rk {
					osig, opop := other.Signature()
					if filters.SignaturePrune(rsig, rpop, osig, opop, rk, maxDist) {
						local.PrunedSignature++
						continue
					}
				}
				if filters.PositionPrune(r, other, maxDist) {
					local.PrunedPosition++
					continue
				}
				local.Verified++
				if d, ok := rankings.FootruleWithin(r, other, maxDist); ok {
					local.Results++
					out = append(out, rankings.NewPair(r.ID, other.ID, d))
				}
			}
			index[it] = append(index[it], posting{idx: i, rank: rank})
		}
	}
	st.add(local)
	return out
}

// RS joins two lists against each other (no pairs within a list) —
// the R-S join executed between two sub-partitions of a split posting
// list (§6, Algorithm 3).
func RS(r, s []*rankings.Ranking, maxDist int, st *Stats) []rankings.Pair {
	var local Stats
	var out []rankings.Pair
	for _, a := range r {
		asig, apop := a.Signature()
		ak := a.K()
		for _, b := range s {
			if a.ID == b.ID {
				continue
			}
			local.Candidates++
			if b.K() == ak {
				bsig, bpop := b.Signature()
				if filters.SignaturePrune(asig, apop, bsig, bpop, ak, maxDist) {
					local.PrunedSignature++
					continue
				}
			}
			if filters.PositionPrune(a, b, maxDist) {
				local.PrunedPosition++
				continue
			}
			local.Verified++
			if d, ok := rankings.FootruleWithin(a, b, maxDist); ok {
				local.Results++
				out = append(out, rankings.NewPair(a.ID, b.ID, d))
			}
		}
	}
	st.add(local)
	return out
}
