package ppjoin_test

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"rankjoin/internal/ppjoin"
)

func randSets(rng *rand.Rand, n, maxLen, domain int) map[int64][]int32 {
	raw := map[int64][]int32{}
	for i := 0; i < n; i++ {
		l := 1 + rng.Intn(maxLen)
		toks := make([]int32, l)
		for j := range toks {
			toks[j] = int32(rng.Intn(domain))
		}
		raw[int64(i)] = toks
	}
	return raw
}

func sameSetPairs(a, b []ppjoin.SetPair) bool {
	norm := func(ps []ppjoin.SetPair) []ppjoin.SetPair {
		c := append([]ppjoin.SetPair(nil), ps...)
		sort.Slice(c, func(i, j int) bool {
			if c[i].A != c[j].A {
				return c[i].A < c[j].A
			}
			return c[i].B < c[j].B
		})
		return c
	}
	a, b = norm(a), norm(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].A != b[i].A || a[i].B != b[i].B || math.Abs(a[i].Sim-b[i].Sim) > 1e-12 {
			return false
		}
	}
	return true
}

func TestJaccardBasics(t *testing.T) {
	if got := ppjoin.Jaccard([]int32{1, 2, 3}, []int32{2, 3, 4}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("jaccard = %v, want 0.5", got)
	}
	if got := ppjoin.Jaccard(nil, nil); got != 1 {
		t.Errorf("jaccard(∅,∅) = %v, want 1", got)
	}
	if got := ppjoin.Jaccard([]int32{1}, nil); got != 0 {
		t.Errorf("jaccard({1},∅) = %v, want 0", got)
	}
}

func TestBuildSetRecordsCanonical(t *testing.T) {
	raw := map[int64][]int32{
		0: {5, 5, 1, 2},
		1: {2, 3},
		2: {2},
	}
	recs := ppjoin.BuildSetRecords(raw)
	if len(recs) != 3 {
		t.Fatalf("records = %d", len(recs))
	}
	// Sorted by length ascending.
	if len(recs[0].Tokens) > len(recs[1].Tokens) || len(recs[1].Tokens) > len(recs[2].Tokens) {
		t.Errorf("not length sorted: %v", recs)
	}
	// Record 0 deduplicated.
	for _, r := range recs {
		if r.ID == 0 && len(r.Tokens) != 3 {
			t.Errorf("dedup failed: %v", r.Tokens)
		}
		// Rare tokens (freq 1) come before token 2 (freq 3).
		if r.ID == 0 && r.Tokens[len(r.Tokens)-1] != 2 {
			t.Errorf("canonical order wrong: %v", r.Tokens)
		}
	}
}

func TestJaccardJoinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		raw := randSets(rng, 30+rng.Intn(50), 2+rng.Intn(12), 5+rng.Intn(30))
		recs := ppjoin.BuildSetRecords(raw)
		for _, th := range []float64{0.3, 0.5, 0.7, 0.9, 1.0} {
			want := ppjoin.JaccardBruteForce(recs, th)
			got, err := ppjoin.JaccardJoin(recs, th, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !sameSetPairs(got, want) {
				t.Fatalf("trial %d th=%v: join %d pairs, oracle %d", trial, th, len(got), len(want))
			}
		}
	}
}

func TestJaccardJoinRejectsBadThreshold(t *testing.T) {
	for _, th := range []float64{0, -1, 1.5} {
		if _, err := ppjoin.JaccardJoin(nil, th, nil); err == nil {
			t.Errorf("threshold %v accepted", th)
		}
	}
}

func TestJaccardJoinStats(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	recs := ppjoin.BuildSetRecords(randSets(rng, 60, 8, 20))
	var st ppjoin.Stats
	got, err := ppjoin.JaccardJoin(recs, 0.5, &st)
	if err != nil {
		t.Fatal(err)
	}
	if st.Results != int64(len(got)) {
		t.Errorf("stats results %d vs %d", st.Results, len(got))
	}
	if st.Candidates < st.Results {
		t.Errorf("candidates %d < results %d", st.Candidates, st.Results)
	}
}
