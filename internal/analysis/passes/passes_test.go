package passes_test

import (
	"testing"

	"rankjoin/internal/analysis/analysistest"
	"rankjoin/internal/analysis/passes"
)

// TestAllAnalyzersOnCleanPackage is the negative test: a package that
// uses spans, locks, map iteration, sentinel errors, hedged reads,
// WAL write hooks, contexts, atomics, annotated arena kernels and
// metric writers idiomatically must produce zero findings under every
// registered analyzer.
func TestAllAnalyzersOnCleanPackage(t *testing.T) {
	for _, a := range passes.All() {
		t.Run(a.Name, func(t *testing.T) {
			analysistest.Run(t, a, "clean")
		})
	}
}

// TestRegistry pins the analyzer set: adding or removing a pass should
// be a conscious act that also updates DESIGN.md §10.
func TestRegistry(t *testing.T) {
	want := []string{
		"allocfree", "atomicmix", "ctxflow", "ledgertally", "lockcopy",
		"lockorder", "maporder", "metricreg", "nohedge", "spanend",
		"walack", "wraperr",
	}
	all := passes.All()
	if len(all) != len(want) {
		t.Fatalf("passes.All() returned %d analyzers, want %d", len(all), len(want))
	}
	for i, a := range all {
		if a.Name != want[i] {
			t.Errorf("passes.All()[%d] = %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %s has no Run", a.Name)
		}
	}
}
