package lockorder_test

import (
	"testing"

	"rankjoin/internal/analysis/analysistest"
	"rankjoin/internal/analysis/passes/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, "a")
}
