// Package lockorder defines the ranklint analyzer catching
// self-deadlocks in the shard/epoch locking discipline: calling a
// method that acquires a struct's mutex while that same mutex is
// already held by the caller.
//
// Go's sync.RWMutex is not reentrant, and an RLock held while a writer
// is queued blocks a second RLock on the same goroutine forever — the
// deadlock class the background re-pivoting CAS dance in
// internal/shard is exposed to: a sweep holding s.mu.RLock() must not
// call s.Len() (which RLocks) or any mutating method (which Locks).
// The race detector cannot see this — nothing races, the goroutine
// just stops — and it only reproduces under writer pressure.
//
// The analysis is intra-package and name-driven: first it collects,
// per named type, the set of "acquiring" methods — those that call
// Lock/RLock on a sync.Mutex/RWMutex field of their receiver. Then,
// inside every function, between a `v.mu.Lock()` (or RLock) statement
// and the matching `v.mu.Unlock()` (or function end when the unlock is
// deferred), any call `v.M(...)` where M is an acquiring method of v's
// type is reported. Calls inside nested function literals are skipped:
// a goroutine or deferred closure typically runs after the region is
// released.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"rankjoin/internal/analysis"
)

// Analyzer is the lockorder pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "check for calls into lock-acquiring methods while the same lock is held (non-reentrant RWMutex discipline)",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	acquiring := collectAcquiringMethods(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkBody(pass, fn.Body, acquiring)
				}
			case *ast.FuncLit:
				// Each literal is its own region scope; checkBody skips
				// nested literals, so visiting them here covers their
				// bodies exactly once.
				checkBody(pass, fn.Body, acquiring)
			}
			return true
		})
	}
	return nil, nil
}

// methodKey identifies a method of a named type within this package.
type methodKey struct {
	typ    *types.TypeName
	method string
}

// lockRef is a resolved `v.field` mutex reference: the object v and
// the field name.
type lockRef struct {
	obj   types.Object
	field string
}

// collectAcquiringMethods maps (type, method) to the set of receiver
// mutex fields the method locks (by Lock or RLock), e.g.
// (Shard, Insert) -> {mu}.
func collectAcquiringMethods(pass *analysis.Pass) map[methodKey]map[string]bool {
	out := make(map[methodKey]map[string]bool)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || len(fd.Recv.List) == 0 {
				continue
			}
			recvType := receiverTypeName(pass, fd)
			if recvType == nil {
				continue
			}
			var recvObj types.Object
			if names := fd.Recv.List[0].Names; len(names) > 0 {
				recvObj = pass.TypesInfo.Defs[names[0]]
			}
			if recvObj == nil {
				continue
			}
			fields := make(map[string]bool)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if ref, op := mutexOp(pass, call); op == "Lock" || op == "RLock" {
					if ref.obj == recvObj {
						fields[ref.field] = true
					}
				}
				return true
			})
			if len(fields) > 0 {
				out[methodKey{recvType, fd.Name.Name}] = fields
			}
		}
	}
	return out
}

// receiverTypeName resolves the named type of a method receiver.
func receiverTypeName(pass *analysis.Pass, fd *ast.FuncDecl) *types.TypeName {
	t := pass.TypeOf(fd.Recv.List[0].Type)
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}

// mutexOp matches `v.field.Op()` where field is a sync.Mutex or
// sync.RWMutex and Op is Lock/RLock/Unlock/RUnlock, returning the
// resolved reference and the operation ("" otherwise).
func mutexOp(pass *analysis.Pass, call *ast.CallExpr) (lockRef, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockRef{}, ""
	}
	op := sel.Sel.Name
	switch op {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return lockRef{}, ""
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return lockRef{}, ""
	}
	base, ok := inner.X.(*ast.Ident)
	if !ok {
		return lockRef{}, ""
	}
	obj := pass.TypesInfo.Uses[base]
	if obj == nil {
		return lockRef{}, ""
	}
	ft := pass.TypeOf(inner)
	name := mutexTypeName(ft)
	if name == "" {
		return lockRef{}, ""
	}
	if name == "Mutex" && (op == "RLock" || op == "RUnlock") {
		return lockRef{}, ""
	}
	return lockRef{obj: obj, field: inner.Sel.Name}, op
}

func mutexTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return ""
	}
	if obj.Name() == "Mutex" || obj.Name() == "RWMutex" {
		return obj.Name()
	}
	return ""
}

// region is one held-lock interval within a function body.
type region struct {
	ref   lockRef
	from  token.Pos // after the acquire
	to    token.Pos // the release, or function end when deferred
	write bool
}

// checkBody finds lock regions in one function body (not descending
// into nested literals) and reports acquiring calls inside them.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt, acquiring map[methodKey]map[string]bool) {
	var regions []region

	// Pass 1: locate acquires and their releases, skipping nested
	// function literals.
	var acquires []struct {
		ref lockRef
		pos token.Pos
		op  string
	}
	releases := make(map[lockRef][]token.Pos)
	deferred := make(map[lockRef]bool)
	walkShallow(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		ref, op := mutexOp(pass, call)
		switch op {
		case "Lock", "RLock":
			acquires = append(acquires, struct {
				ref lockRef
				pos token.Pos
				op  string
			}{ref, call.End(), op})
		case "Unlock", "RUnlock":
			if isDeferredCall(body, call) {
				deferred[ref] = true
			} else {
				releases[ref] = append(releases[ref], call.Pos())
			}
		}
	})
	for _, a := range acquires {
		to := body.End()
		for _, r := range releases[a.ref] {
			if r > a.pos && r < to {
				to = r
			}
		}
		regions = append(regions, region{ref: a.ref, from: a.pos, to: to, write: a.op == "Lock"})
	}
	if len(regions) == 0 {
		return
	}

	// Pass 2: flag method calls on the same object inside a region when
	// the callee acquires the same mutex field.
	walkShallow(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		base, ok := sel.X.(*ast.Ident)
		if !ok {
			return
		}
		obj := pass.TypesInfo.Uses[base]
		if obj == nil {
			return
		}
		tn := namedTypeOf(obj.Type())
		if tn == nil {
			return
		}
		fields := acquiring[methodKey{tn, sel.Sel.Name}]
		if len(fields) == 0 {
			return
		}
		for _, rg := range regions {
			if rg.ref.obj != obj || !fields[rg.ref.field] {
				continue
			}
			if call.Pos() > rg.from && call.Pos() < rg.to {
				pass.Reportf(call.Pos(),
					"%s.%s acquires %s.%s, but the caller already holds it here (non-reentrant lock would self-deadlock)",
					base.Name, sel.Sel.Name, base.Name, rg.ref.field)
				return
			}
		}
	})
}

// walkShallow visits nodes of body without entering nested function
// literals.
func walkShallow(body *ast.BlockStmt, f func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			f(n)
		}
		return true
	})
}

// isDeferredCall reports whether the call is the direct expression of a
// defer statement in body.
func isDeferredCall(body *ast.BlockStmt, call *ast.CallExpr) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok && d.Call == call {
			found = true
		}
		return !found
	})
	return found
}

func namedTypeOf(t types.Type) *types.TypeName {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj()
	}
	return nil
}
