// Package a exercises the lockorder analyzer: re-entrant calls into
// lock-acquiring methods while the same mutex is held, against the
// released / other-object / spawned-closure shapes that are fine.
package a

import "sync"

type Shard struct {
	mu    sync.RWMutex
	items map[int64]int
}

func (s *Shard) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.items)
}

func (s *Shard) Insert(k int64, v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items[k] = v
}

func (s *Shard) InsertIfRoom(k int64, v int, max int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.Len() >= max { // want `s\.Len acquires s\.mu, but the caller already holds it`
		return false
	}
	s.items[k] = v
	return true
}

func (s *Shard) Reinsert(k int64, v int) {
	s.mu.RLock()
	old := s.items[k]
	s.mu.RUnlock()
	s.Insert(k, old+v) // released above: fine
}

func (s *Shard) LenAfterUnlock() int {
	s.mu.Lock()
	s.items[0] = 0
	s.mu.Unlock()
	return s.Len()
}

func (s *Shard) Spawn() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		_ = s.Len() // runs after the region on another goroutine: fine
	}()
}

func transfer(a, b *Shard, k int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.Insert(k, a.items[k]) // different object: fine
}

func (s *Shard) Suppressed(max int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	ok := s.Len() < max //ranklint:ignore Len reads an atomic in this build; no lock taken
	return ok
}
