// Package passes registers the repo-specific ranklint analyzers. Each
// subdirectory implements one pass; All returns them in reporting
// order. See DESIGN.md §10 for the invariant each pass encodes and the
// runtime check it front-runs.
package passes

import (
	"rankjoin/internal/analysis"
	"rankjoin/internal/analysis/passes/allocfree"
	"rankjoin/internal/analysis/passes/atomicmix"
	"rankjoin/internal/analysis/passes/ctxflow"
	"rankjoin/internal/analysis/passes/ledgertally"
	"rankjoin/internal/analysis/passes/lockcopy"
	"rankjoin/internal/analysis/passes/lockorder"
	"rankjoin/internal/analysis/passes/maporder"
	"rankjoin/internal/analysis/passes/metricreg"
	"rankjoin/internal/analysis/passes/nohedge"
	"rankjoin/internal/analysis/passes/spanend"
	"rankjoin/internal/analysis/passes/walack"
	"rankjoin/internal/analysis/passes/wraperr"
)

// All returns every registered analyzer, sorted by name.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		allocfree.Analyzer,
		atomicmix.Analyzer,
		ctxflow.Analyzer,
		ledgertally.Analyzer,
		lockcopy.Analyzer,
		lockorder.Analyzer,
		maporder.Analyzer,
		metricreg.Analyzer,
		nohedge.Analyzer,
		spanend.Analyzer,
		walack.Analyzer,
		wraperr.Analyzer,
	}
}
