// Package lockcopy defines the ranklint analyzer forbidding by-value
// copies of lock-bearing structs — the shard and epoch structures the
// serving index builds on (internal/shard.Shard embeds sync.RWMutex
// and atomics; internal/shard.Index embeds sync.RWMutex).
//
// Copying such a value forks the mutex state: the copy's mutex is
// independently unlocked (or worse, permanently locked), epoch
// counters silently diverge, and the RWMutex/epoch discipline the
// sharded index relies on — every mutation bumps the owning shard's
// epoch under its own lock — stops meaning anything. The race detector
// only catches the consequences, on the schedules it happens to see;
// this analyzer rejects the copy itself.
//
// Flagged shapes:
//
//   - methods declared with a value receiver of a lock-bearing type
//   - function parameters and results of a lock-bearing type
//   - assignments and variable initializations whose source reads an
//     existing lock-bearing value (x := *p, y := x, s := arr[i])
//   - range clauses whose value variable copies lock-bearing elements
//
// A type is lock-bearing if it is, embeds, or transitively contains a
// field of type sync.Mutex, sync.RWMutex, sync.WaitGroup, sync.Cond,
// sync.Once, sync.Map, sync.Pool, or a sync/atomic value type.
package lockcopy

import (
	"go/ast"
	"go/types"

	"rankjoin/internal/analysis"
)

// Analyzer is the lockcopy pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockcopy",
	Doc:  "check for by-value copies of lock-bearing structs (shard/epoch mutex discipline)",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkFuncSig(pass, n.Recv, n.Type)
			case *ast.FuncLit:
				checkFuncSig(pass, nil, n.Type)
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					checkCopySource(pass, rhs)
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					checkCopySource(pass, v)
				}
			case *ast.RangeStmt:
				checkRange(pass, n)
			}
			return true
		})
	}
	return nil, nil
}

func checkFuncSig(pass *analysis.Pass, recv *ast.FieldList, ftype *ast.FuncType) {
	if recv != nil {
		for _, f := range recv.List {
			if t := lockPath(pass.TypeOf(f.Type)); t != "" {
				pass.Reportf(f.Type.Pos(), "value receiver copies lock-bearing type (%s); use a pointer receiver", t)
			}
		}
	}
	if ftype.Params != nil {
		for _, f := range ftype.Params.List {
			if t := lockPath(pass.TypeOf(f.Type)); t != "" {
				pass.Reportf(f.Type.Pos(), "parameter passes lock-bearing type by value (%s); pass a pointer", t)
			}
		}
	}
	if ftype.Results != nil {
		for _, f := range ftype.Results.List {
			if t := lockPath(pass.TypeOf(f.Type)); t != "" {
				pass.Reportf(f.Type.Pos(), "result returns lock-bearing type by value (%s); return a pointer", t)
			}
		}
	}
}

// checkCopySource flags RHS expressions that read an existing
// lock-bearing value. Fresh values (composite literals, function call
// results that are themselves flagged at their declaration) are the
// value's first home, not a copy.
func checkCopySource(pass *analysis.Pass, rhs ast.Expr) {
	switch rhs.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr, *ast.ParenExpr:
	default:
		return
	}
	if t := lockPath(pass.TypeOf(rhs)); t != "" {
		pass.Reportf(rhs.Pos(), "assignment copies lock-bearing value %s (%s); take a pointer instead", analysis.ExprString(rhs), t)
	}
}

func checkRange(pass *analysis.Pass, rs *ast.RangeStmt) {
	if rs.Value == nil {
		return
	}
	if t := lockPath(pass.TypeOf(rs.Value)); t != "" {
		pass.Reportf(rs.Value.Pos(), "range value copies lock-bearing elements (%s); range over indexes or pointers", t)
	}
}

// lockedStdTypes are the no-copy types of sync and sync/atomic.
var lockedStdTypes = map[string]bool{
	"sync.Mutex": true, "sync.RWMutex": true, "sync.WaitGroup": true,
	"sync.Cond": true, "sync.Once": true, "sync.Map": true, "sync.Pool": true,
	"sync/atomic.Value": true, "sync/atomic.Bool": true, "sync/atomic.Int32": true,
	"sync/atomic.Int64": true, "sync/atomic.Uint32": true, "sync/atomic.Uint64": true,
	"sync/atomic.Uintptr": true, "sync/atomic.Pointer": true,
}

// lockPath reports why t is lock-bearing: the dotted path from t down
// to the first sync primitive it contains ("" if none). Pointers,
// slices, maps and channels are references, not containers — they do
// not propagate lock-bearing-ness.
func lockPath(t types.Type) string {
	return lockPathRec(t, make(map[types.Type]bool))
}

func lockPathRec(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	if n, ok := t.(*types.Named); ok {
		obj := n.Obj()
		if obj.Pkg() != nil {
			full := obj.Pkg().Path() + "." + obj.Name()
			if lockedStdTypes[full] {
				return full
			}
		}
		if inner := lockPathRec(n.Underlying(), seen); inner != "" {
			if obj.Pkg() != nil && (obj.Pkg().Path() == "sync" || obj.Pkg().Path() == "sync/atomic") {
				return inner
			}
			return obj.Name() + " contains " + inner
		}
		return ""
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if inner := lockPathRec(u.Field(i).Type(), seen); inner != "" {
				return "field " + u.Field(i).Name() + ": " + inner
			}
		}
	case *types.Array:
		return lockPathRec(u.Elem(), seen)
	}
	return ""
}
