package lockcopy_test

import (
	"testing"

	"rankjoin/internal/analysis/analysistest"
	"rankjoin/internal/analysis/passes/lockcopy"
)

func TestLockCopy(t *testing.T) {
	analysistest.Run(t, lockcopy.Analyzer, "a")
}
