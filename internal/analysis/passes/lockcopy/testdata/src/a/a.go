// Package a exercises the lockcopy analyzer: value receivers, by-value
// params/results, copy assignments and range copies of lock-bearing
// structs, plus the reference shapes that are fine.
package a

import "sync"

type Shard struct {
	mu    sync.RWMutex
	items map[int64]int
}

type Inner struct{ once sync.Once }

type Holder struct{ in Inner }

func useInner(*Inner) {}

func (s Shard) Size() int { // want `value receiver copies lock-bearing type`
	return len(s.items)
}

func byValueParam(s Shard) int { // want `parameter passes lock-bearing type by value`
	return len(s.items)
}

func byValueResult() Shard { // want `result returns lock-bearing type by value`
	return Shard{}
}

func copyDeref(p *Shard) {
	s := *p // want `assignment copies lock-bearing value \*p`
	_ = s.items
}

func rangeCopy(shards []Shard) {
	for _, s := range shards { // want `range value copies lock-bearing elements`
		_ = s.items
	}
}

func transitive(h *Holder) {
	v := h.in // want `assignment copies lock-bearing value h.in`
	useInner(&v)
}

func pointersAreFine(p *Shard) *Shard {
	q := p
	return q
}

func rangePointers(shards []*Shard) int {
	n := 0
	for _, p := range shards {
		n += len(p.items)
	}
	return n
}

func suppressedCopy(p *Shard) {
	s := *p //ranklint:ignore snapshot taken before the shard is published
	_ = s.items
}
