// Package clean is idiomatic code touching every invariant the
// ranklint analyzers guard — spans, locks, map iteration, sentinel
// errors, hedging tiers, write hooks, contexts, atomics, allocation
// contracts and metric registration — with zero violations. Every
// analyzer must stay silent here.
package clean

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

var ErrNotFound = errors.New("clean: not found")

type Span struct{ name string }

func (s *Span) End() {}

type Tracer struct{}

func (t *Tracer) StartScope(name string) *Span { return &Span{name: name} }

type Shard struct {
	mu    sync.RWMutex
	items map[int64]int
}

func (s *Shard) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.items)
}

func (s *Shard) Insert(k int64, v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items[k] = v
}

func (s *Shard) Get(k int64) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.items[k]
	if !ok {
		return 0, fmt.Errorf("get %d: %w", k, ErrNotFound)
	}
	return v, nil
}

func (s *Shard) Keys() []int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]int64, 0, len(s.items))
	for k := range s.items {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func traced(tr *Tracer, s *Shard, fail bool) error {
	sp := tr.StartScope("traced")
	defer sp.End()
	if fail {
		return fmt.Errorf("traced: %w", ErrNotFound)
	}
	s.Insert(1, 1)
	return nil
}

// --- nohedge: reads may hedge, mutations go through the once tier ---

type peer struct{}

func (p *peer) do(ctx context.Context, path string) error       { return ctx.Err() }
func (p *peer) doMutate(ctx context.Context, path string) error { return ctx.Err() }

// clusterInsert is a mutation root by name: it stays on doMutate.
func clusterInsert(ctx context.Context, p *peer) error {
	return p.doMutate(ctx, "/v1/cluster/insert")
}

// searchPeer is a read path and may use the hedged tier.
func searchPeer(ctx context.Context, p *peer) error {
	return p.do(ctx, "/v1/search")
}

// --- walack: the two-phase write hook, used correctly ---

type rec struct{ id int64 }

type writeHook func(rec) func() error

type index struct {
	mu   sync.Mutex
	hook writeHook
}

func (x *index) SetWriteHook(h writeHook) { x.hook = h }

func (x *index) logLocked(r rec) func() error {
	if x.hook == nil {
		return nil
	}
	return x.hook(r)
}

type walFile struct{ n atomic.Int64 }

func (w *walFile) buffer(r rec) int64 { return w.n.Add(1) }
func (w *walFile) sync(lsn int64) error {
	if lsn < 0 {
		return ErrNotFound
	}
	return nil
}

// attach wires the hook: append in phase one, fsync only in the
// returned commit closure.
func attach(x *index, w *walFile) {
	x.SetWriteHook(func(r rec) func() error {
		lsn := w.buffer(r)
		return func() error { return w.sync(lsn) }
	})
}

// insert logs under the lock and runs the barrier after unlock, before
// acking.
func (x *index) insert(r rec) error {
	x.mu.Lock()
	commit := x.logLocked(r)
	x.mu.Unlock()
	if commit != nil {
		return commit()
	}
	return nil
}

// --- ctxflow: contexts are threaded, roots live in constructors ---

type poller struct {
	root   context.Context
	cancel context.CancelFunc
}

func newPoller() *poller {
	p := &poller{}
	p.root, p.cancel = context.WithCancel(context.Background())
	return p
}

func (p *poller) close() { p.cancel() }

func (p *poller) tick(pr *peer) error {
	ctx, cancel := context.WithTimeout(p.root, time.Second)
	defer cancel()
	return pr.do(ctx, "/v1/wal/pull")
}

// --- atomicmix: one discipline per field ---

type stats struct {
	served atomic.Int64
	window int64 // guarded by wmu, never touched atomically
	wmu    sync.Mutex
}

func (s *stats) hit() { s.served.Add(1) }

func (s *stats) snapshot() (int64, int64) {
	s.wmu.Lock()
	defer s.wmu.Unlock()
	return s.served.Load(), s.window
}

// --- allocfree: the amortized-arena serving kernel ---

type scratch struct {
	mu    sync.Mutex
	arena []int64
	hits  atomic.Int64
}

// sweep reuses its arena across calls; growth is amortized to zero in
// steady state, which AllocsPerRun pins at runtime.
//
//ranklint:allocfree
func (s *scratch) sweep(keys []int64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cap(s.arena) < len(keys) {
		s.arena = make([]int64, 0, 2*len(keys))
	}
	s.arena = append(s.arena[:0], keys...)
	s.hits.Add(1)
	return len(s.arena)
}

// --- metricreg: every written series declared exactly once ---

type MetricWriter struct{ err error }

func (m *MetricWriter) Metric(name, typ, help string) {}
func (m *MetricWriter) Value(name string, v float64)  {}
func (m *MetricWriter) Int(name string, v int64)      {}

func writeMetrics(m *MetricWriter, s *stats) {
	m.Metric("clean_served_total", "counter", "Requests served.")
	served, _ := s.snapshot()
	m.Int("clean_served_total", served)

	m.Metric("clean_window_seconds", "gauge", "Window length.")
	m.Value("clean_window_seconds", 60)
}
