// Package clean is idiomatic code touching every invariant the
// ranklint analyzers guard — spans, locks, map iteration, sentinel
// errors — with zero violations. Every analyzer must stay silent here.
package clean

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

var ErrNotFound = errors.New("clean: not found")

type Span struct{ name string }

func (s *Span) End() {}

type Tracer struct{}

func (t *Tracer) StartScope(name string) *Span { return &Span{name: name} }

type Shard struct {
	mu    sync.RWMutex
	items map[int64]int
}

func (s *Shard) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.items)
}

func (s *Shard) Insert(k int64, v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items[k] = v
}

func (s *Shard) Get(k int64) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.items[k]
	if !ok {
		return 0, fmt.Errorf("get %d: %w", k, ErrNotFound)
	}
	return v, nil
}

func (s *Shard) Keys() []int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]int64, 0, len(s.items))
	for k := range s.items {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func traced(tr *Tracer, s *Shard, fail bool) error {
	sp := tr.StartScope("traced")
	defer sp.End()
	if fail {
		return fmt.Errorf("traced: %w", ErrNotFound)
	}
	s.Insert(1, 1)
	return nil
}
