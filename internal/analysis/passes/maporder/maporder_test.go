package maporder_test

import (
	"testing"

	"rankjoin/internal/analysis/analysistest"
	"rankjoin/internal/analysis/passes/maporder"
)

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, maporder.Analyzer, "a")
}
