// Package a exercises the maporder analyzer: map ranges appending to
// outer slices without a following sort, against the collect-then-sort,
// loop-local and custom-sort-helper shapes that are fine.
package a

import "sort"

func bad(m map[int]string) []int {
	var keys []int
	for k := range m { // want `range over map appends to keys in nondeterministic order`
		keys = append(keys, k)
	}
	return keys
}

func collectThenSort(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func sortPairs(ps []int) { sort.Ints(ps) }

func customSortHelper(m map[int]bool) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	sortPairs(out)
	return out
}

func loopLocal(m map[int][]int) int {
	total := 0
	for _, vs := range m {
		var tmp []int
		for _, v := range vs {
			tmp = append(tmp, v)
		}
		total += len(tmp)
	}
	return total
}

func sliceRangeIsFine(vs []int) []int {
	var out []int
	for _, v := range vs {
		out = append(out, v)
	}
	return out
}

func suppressed(m map[int]string) []int {
	var keys []int
	//ranklint:ignore order is re-established by the consumer's canonical sort
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
