// Package maporder defines the ranklint analyzer protecting the
// engine's determinism property: output must not depend on Go's
// randomized map iteration order.
//
// rankcheck asserts id-permutation invariance dynamically — joining a
// relabeled dataset must produce the relabeled result — and the
// differential harness diffs algorithms pair-by-pair, both of which
// silently rely on every emitted slice being deterministically
// ordered. A `for ... range m` over a map that appends into a slice
// bakes the random iteration order into that slice; if the slice then
// feeds partitions or emitted pairs without an intervening sort, runs
// stop being reproducible (and the differential harness chases
// phantom divergences).
//
// The analyzer reports a range-over-map statement when its body
// appends to a slice declared outside the loop and no sorting call
// mentioning that slice (sort.*, slices.Sort*, or any callee whose
// name contains "sort") follows in the same function. Collect-keys-
// then-sort remains the blessed pattern and is not flagged, since the
// sort call references the collected slice.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"rankjoin/internal/analysis"
)

// Analyzer is the maporder pass.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "check that map iteration feeding slices is followed by a sort (id-permutation determinism)",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if rs, ok := n.(*ast.RangeStmt); ok {
				checkRange(pass, rs, stack)
			}
			stack = append(stack, n)
			return true
		})
	}
	return nil, nil
}

func checkRange(pass *analysis.Pass, rs *ast.RangeStmt, stack []ast.Node) {
	t := pass.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	fnBody := enclosingFuncBody(stack)
	if fnBody == nil {
		return
	}
	// Every slice appended to inside the loop body...
	for _, target := range appendTargets(pass, rs.Body) {
		obj := pass.TypesInfo.Uses[target]
		if obj == nil {
			continue
		}
		// ...must be declared outside the loop (a loop-local slice
		// cannot outlive an iteration, so its order is local noise)...
		if rs.Pos() <= obj.Pos() && obj.Pos() <= rs.End() {
			continue
		}
		// ...and must meet a sort between the loop and the function end.
		if sortedAfter(pass, obj, fnBody, rs.End()) {
			continue
		}
		pass.Reportf(rs.Pos(),
			"range over map appends to %s in nondeterministic order and no sort follows in this function; sort %s before it is emitted (id-permutation invariance)",
			target.Name, target.Name)
		return
	}
}

func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// appendTargets returns the identifiers of slices appended to within
// body: append(x, ...) assigned back or used, plus x = append(x, ...).
func appendTargets(pass *analysis.Pass, body *ast.BlockStmt) []*ast.Ident {
	var out []*ast.Ident
	seen := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		fun, ok := call.Fun.(*ast.Ident)
		if !ok || fun.Name != "append" {
			return true
		}
		if b, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); !ok || b.Name() != "append" {
			return true
		}
		id, ok := call.Args[0].(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || seen[obj] {
			return true
		}
		seen[obj] = true
		out = append(out, id)
		return true
	})
	return out
}

// sortedAfter reports whether some call after pos in body both
// references obj in its arguments (or receiver) and smells like a sort
// (package sort or slices, or a callee whose name contains "sort").
func sortedAfter(pass *analysis.Pass, obj types.Object, body *ast.BlockStmt, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos {
			return true
		}
		if !isSortish(pass, call.Fun) {
			return true
		}
		for _, arg := range call.Args {
			if mentionsObj(pass, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isSortish(pass *analysis.Pass, fun ast.Expr) bool {
	switch f := fun.(type) {
	case *ast.Ident:
		return strings.Contains(strings.ToLower(f.Name), "sort") || strings.Contains(strings.ToLower(f.Name), "dedup")
	case *ast.SelectorExpr:
		if strings.Contains(strings.ToLower(f.Sel.Name), "sort") || strings.Contains(strings.ToLower(f.Sel.Name), "dedup") {
			return true
		}
		if pkg, ok := f.X.(*ast.Ident); ok {
			if pn, ok := pass.TypesInfo.Uses[pkg].(*types.PkgName); ok {
				p := pn.Imported().Path()
				return p == "sort" || p == "slices"
			}
		}
	}
	return false
}

func mentionsObj(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
