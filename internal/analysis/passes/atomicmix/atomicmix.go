// Package atomicmix defines the ranklint analyzer catching mixed
// atomic/plain access to struct fields.
//
// A field that any code touches through sync/atomic — either the
// function style (atomic.AddInt64(&s.n, 1)) or the typed style
// (s.n.Load() on an atomic.Int64) — must be accessed that way
// everywhere. A single plain read or write next to atomic accesses is
// a data race the race detector only catches when the interleaving
// actually happens under -race; this analyzer catches it statically:
//
//   - a field passed by address to a sync/atomic function in one place
//     and read or written plainly in another is reported at each plain
//     use (plain writes in constructors — New*, new*, init, main —
//     are exempt: pre-publication initialization is not yet shared);
//
//   - a field whose type is one of the sync/atomic value types
//     (atomic.Int64, atomic.Bool, atomic.Pointer[T], ...) must only
//     ever appear as the receiver of its own methods or as the operand
//     of & (sharing the cell by address is the sanctioned multi-owner
//     idiom — see shard.Index handing &x.writeHook to every shard);
//     copying or assigning it is reported unconditionally, since the
//     typed API exists precisely to make plain access impossible to
//     write by accident. A *atomic.Pointer[T] field is itself a plain
//     pointer: nil-checking it is not atomic access and is not
//     reported.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"rankjoin/internal/analysis"
)

// Analyzer is the atomicmix pass.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc:  "check that fields accessed through sync/atomic are never also read or written plainly",
	Run:  run,
}

// use is one classified access to a struct field.
type use struct {
	pos      token.Pos
	enclosed string // name of the enclosing function declaration, "" at package level
}

func run(pass *analysis.Pass) (any, error) {
	atomicUses := make(map[*types.Var][]use)
	plainUses := make(map[*types.Var][]use)
	consumed := make(map[token.Pos]bool) // selector positions already counted as atomic

	for _, file := range pass.Files {
		decls := declRanges(file)

		// Pass A: find atomic-style accesses and mark their selectors.
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			// Function style: atomic.AddInt64(&s.f, 1).
			if isAtomicPkgCall(pass, call) {
				for _, arg := range call.Args {
					un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					if f, sel := fieldSelector(pass, un.X); f != nil {
						atomicUses[f] = append(atomicUses[f], use{pos: sel.Pos(), enclosed: enclosingDecl(decls, sel.Pos())})
						consumed[sel.Pos()] = true
					}
				}
				return true
			}
			// Typed style: s.f.Load() where f is an atomic.* value. A
			// method call through a *atomic.Pointer[T] field consumes
			// the selector but says nothing about the pointer field
			// itself, which is a plain pointer.
			m, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !isAtomicMethod(pass, m.Sel) {
				return true
			}
			if f, sel := fieldSelector(pass, m.X); f != nil {
				if isAtomicValueType(f.Type()) {
					atomicUses[f] = append(atomicUses[f], use{pos: sel.Pos(), enclosed: enclosingDecl(decls, sel.Pos())})
				}
				consumed[sel.Pos()] = true
			}
			return true
		})

		// Aliasing a typed atomic with & shares the cell without
		// touching its value — the sanctioned way to hand one atomic
		// to several owners. Mark those selectors before the plain
		// sweep.
		ast.Inspect(file, func(n ast.Node) bool {
			un, ok := n.(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				return true
			}
			if f, sel := fieldSelector(pass, un.X); f != nil && isAtomicValueType(f.Type()) {
				consumed[sel.Pos()] = true
			}
			return true
		})

		// Pass B: every remaining field selector is a plain use.
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			f, _ := fieldSelector(pass, sel)
			if f == nil || consumed[sel.Pos()] {
				return true
			}
			plainUses[f] = append(plainUses[f], use{pos: sel.Pos(), enclosed: enclosingDecl(decls, sel.Pos())})
			return true
		})
	}

	for f, plains := range plainUses {
		if isAtomicValueType(f.Type()) {
			for _, p := range plains {
				pass.Reportf(p.pos,
					"field %s has atomic type %s but is used as a plain value here; go through its Load/Store/Add methods",
					f.Name(), typeShort(f.Type()))
			}
			continue
		}
		atomics := atomicUses[f]
		if len(atomics) == 0 {
			continue
		}
		first := pass.Fset.Position(atomics[0].pos)
		for _, p := range plains {
			if constructorExempt(p.enclosed) {
				continue
			}
			pass.Reportf(p.pos,
				"field %s is accessed via sync/atomic (e.g. %s:%d) but read or written plainly here; mixed access is a data race",
				f.Name(), shortPath(first.Filename), first.Line)
		}
	}
	return nil, nil
}

// fieldSelector resolves expr to a struct-field selection, returning
// the field object and the selector node, or (nil, nil).
func fieldSelector(pass *analysis.Pass, expr ast.Expr) (*types.Var, *ast.SelectorExpr) {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	v, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return nil, nil
	}
	return v, sel
}

// isAtomicPkgCall matches calls of the form atomic.XxxInt64(...) etc.
func isAtomicPkgCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "sync/atomic"
}

// isAtomicMethod reports whether id resolves to a method declared on a
// sync/atomic type (Load, Store, Add, Swap, CompareAndSwap, ...).
func isAtomicMethod(pass *analysis.Pass, id *ast.Ident) bool {
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok {
		return false
	}
	return fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" && fn.Type().(*types.Signature).Recv() != nil
}

// isAtomicValueType reports whether t is (directly) one of the typed
// atomics — atomic.Int64, atomic.Bool, atomic.Pointer[T], ... A
// *atomic.Pointer[T] field is a plain pointer and is not matched.
func isAtomicValueType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// declRanges indexes the file's function declarations by body range.
type declRange struct {
	pos, end token.Pos
	name     string
}

func declRanges(file *ast.File) []declRange {
	var out []declRange
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			out = append(out, declRange{fd.Body.Pos(), fd.Body.End(), fd.Name.Name})
		}
	}
	return out
}

func enclosingDecl(decls []declRange, pos token.Pos) string {
	for _, d := range decls {
		if pos > d.pos && pos < d.end {
			return d.name
		}
	}
	return ""
}

// constructorExempt: plain writes during construction happen before the
// value is shared, so they cannot race with atomic readers.
func constructorExempt(name string) bool {
	if name == "init" || name == "main" {
		return true
	}
	return strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new")
}

func typeShort(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

func shortPath(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}
