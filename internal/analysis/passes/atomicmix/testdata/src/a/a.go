// Package a exercises the atomicmix analyzer: function-style atomics
// mixed with plain access, typed atomics used as plain values, and the
// clean all-atomic and all-plain shapes.
package a

import "sync/atomic"

type counters struct {
	hits  int64        // function-style atomic elsewhere
	total int64        // plain everywhere: fine
	seq   atomic.Int64 // typed atomic, misused below
	gauge atomic.Int64 // typed atomic, used correctly
	drops int64        // atomic everywhere: fine
}

func (c *counters) observe() {
	atomic.AddInt64(&c.hits, 1)
	atomic.AddInt64(&c.drops, 1)
	c.total++
	c.seq.Add(1)
	c.gauge.Store(7)
}

// snapshot reads hits plainly while observe mutates it atomically.
func (c *counters) snapshot() int64 {
	return c.hits // want `field hits is accessed via sync/atomic .* but read or written plainly here`
}

// reset writes hits plainly outside a constructor.
func (c *counters) reset() {
	c.hits = 0 // want `field hits is accessed via sync/atomic .* but read or written plainly here`
}

// newCounters is exempt: plain initialization before the value is
// shared cannot race.
func newCounters() *counters {
	c := &counters{}
	c.hits = 0
	return c
}

// lastSeq copies a typed atomic: always a finding.
func (c *counters) lastSeq() int64 {
	v := c.seq // want `field seq has atomic type atomic\.Int64 but is used as a plain value here`
	return v.Load()
}

// aliasSeq shares the cell by address: the sanctioned multi-owner
// idiom, clean.
func aliasSeq(c *counters) *atomic.Int64 {
	return &c.seq
}

// remote holds a shared cell; calling through the pointer is atomic
// access to the cell, and nil-checking the pointer itself is plain
// pointer use, not a finding.
type remote struct {
	cell *atomic.Int64
}

func (r *remote) bump() {
	if r.cell != nil {
		r.cell.Add(1)
	}
}

// drain reads drops atomically and total plainly: both clean.
func (c *counters) drain() int64 {
	return atomic.LoadInt64(&c.drops) + c.total
}

// readGauge goes through the typed API: clean.
func (c *counters) readGauge() int64 {
	return c.gauge.Load()
}

// debugDump documents a reviewed exception (single-goroutine test
// teardown path).
func (c *counters) debugDump() int64 {
	return c.hits //ranklint:ignore called only after all writer goroutines are joined
}
