package atomicmix_test

import (
	"testing"

	"rankjoin/internal/analysis/analysistest"
	"rankjoin/internal/analysis/passes/atomicmix"
)

func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, atomicmix.Analyzer, "a")
}
