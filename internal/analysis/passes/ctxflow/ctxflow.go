// Package ctxflow defines the ranklint analyzer guarding context
// propagation on the request path: a function that receives a
// context.Context must thread it — not mint a fresh root — into the
// RPCs, waits and goroutines it drives, and the cluster/server/wal
// packages may not reach for context.Background()/TODO() outside
// constructors at all.
//
// The runtime symptom this front-runs: a peer RPC or replication poll
// built on context.Background() keeps running after the caller gave up
// or the component closed — Close() hangs on goroutines nothing can
// cancel, deadlines silently stop propagating across the scatter-
// gather fan-out, and slow-peer back-pressure disappears. The sanctioned
// pattern is a constructor-owned root context (canceled in Close)
// derived everywhere else.
//
// Three rules:
//
//  1. Everywhere: inside a function whose (or whose enclosing
//     function's) signature carries a context.Context, calling
//     context.Background() or context.TODO() is a finding — derive
//     from the parameter instead.
//
//  2. In request-path packages (cluster, server, wal): Background/TODO
//     anywhere outside main/init and constructor-shaped functions
//     (New*, Open*) is a finding. Function literals are their own
//     scope: a closure built inside a constructor runs later, on the
//     request or background path, and gets no exemption.
//
//  3. Everywhere: passing a literal nil where a callee expects a
//     context.Context is a finding.
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"rankjoin/internal/analysis"
)

// Analyzer is the ctxflow pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "check that request-path code threads its context.Context instead of minting context.Background()/TODO()",
	Run:  run,
}

// requestPathPkgs names the packages whose non-constructor code must
// never mint a root context.
var requestPathPkgs = map[string]bool{
	"cluster": true,
	"server":  true,
	"wal":     true,
}

// funcScope is one function-shaped region: a declaration or a literal.
type funcScope struct {
	pos, end token.Pos
	hasCtx   bool
	name     string // declaration name; "" for literals
	isLit    bool
}

func run(pass *analysis.Pass) (any, error) {
	requestPath := requestPathPkgs[pass.Pkg.Name()]
	for _, file := range pass.Files {
		scopes := collectScopes(pass, file)
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkNilContext(pass, call)
			name, ok := backgroundCall(pass, call)
			if !ok {
				return true
			}
			enclosing := enclosingScopes(scopes, call.Pos())
			if len(enclosing) == 0 {
				return true // package-level initializer
			}
			for _, s := range enclosing {
				if s.hasCtx {
					pass.Reportf(call.Pos(),
						"context.%s() inside a function that receives a context.Context; derive from the parameter so cancellation propagates", name)
					return true
				}
			}
			if !requestPath {
				return true
			}
			inner := enclosing[len(enclosing)-1]
			if inner.isLit {
				pass.Reportf(call.Pos(),
					"context.%s() in a request-path closure; closures outlive their constructor — use a root context owned by the component and canceled on Close", name)
				return true
			}
			if !constructorExempt(inner.name) {
				pass.Reportf(call.Pos(),
					"context.%s() in request-path function %s; thread the caller's context or derive from a constructor-owned root", name, inner.name)
			}
			return true
		})
	}
	return nil, nil
}

// collectScopes indexes every function declaration and literal of the
// file with its range and whether its own signature carries a context.
func collectScopes(pass *analysis.Pass, file *ast.File) []funcScope {
	var scopes []funcScope
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body == nil {
				return true
			}
			scopes = append(scopes, funcScope{
				pos: n.Body.Pos(), end: n.Body.End(),
				hasCtx: signatureHasContext(pass.TypeOf(n.Name)),
				name:   n.Name.Name,
			})
		case *ast.FuncLit:
			scopes = append(scopes, funcScope{
				pos: n.Body.Pos(), end: n.Body.End(),
				hasCtx: signatureHasContext(pass.TypeOf(n)),
				isLit:  true,
			})
		}
		return true
	})
	return scopes
}

// enclosingScopes returns the scopes containing pos, outermost first.
func enclosingScopes(scopes []funcScope, pos token.Pos) []funcScope {
	var out []funcScope
	for _, s := range scopes {
		if pos > s.pos && pos < s.end {
			out = append(out, s)
		}
	}
	// collectScopes appends in traversal (outer-before-inner) order for
	// nested functions, so out is already outermost-first.
	return out
}

// constructorExempt reports whether a declaration may legitimately mint
// a root context: process entry points and constructors wiring the
// component's lifecycle root.
func constructorExempt(name string) bool {
	if name == "main" || name == "init" {
		return true
	}
	for _, prefix := range []string{"New", "new", "Open", "open"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// backgroundCall matches context.Background() / context.TODO().
func backgroundCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "context" {
		return "", false
	}
	return sel.Sel.Name, true
}

// checkNilContext flags literal nil passed for a context.Context
// parameter.
func checkNilContext(pass *analysis.Pass, call *ast.CallExpr) {
	sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		id, ok := arg.(*ast.Ident)
		if !ok || id.Name != "nil" {
			continue
		}
		if obj := pass.TypesInfo.Uses[id]; obj == nil || obj.Parent() != types.Universe {
			continue
		}
		if i < sig.Params().Len() && isContextType(sig.Params().At(i).Type()) {
			pass.Reportf(arg.Pos(),
				"nil context passed to %s; pass the caller's ctx (or a constructor-owned root)",
				analysis.ExprString(call.Fun))
		}
	}
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// signatureHasContext reports whether t is a function type with a
// context.Context parameter.
func signatureHasContext(t types.Type) bool {
	sig, ok := t.(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}
