package ctxflow_test

import (
	"testing"

	"rankjoin/internal/analysis/analysistest"
	"rankjoin/internal/analysis/passes/ctxflow"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, ctxflow.Analyzer, "server", "b")
}
