// Package server exercises ctxflow inside a request-path package
// (matched by package name): fresh roots in handlers, poll loops and
// constructor-registered closures, plus the clean constructor-owned
// root shapes.
package server

import (
	"context"
	"time"
)

type peer struct{}

func (p *peer) do(ctx context.Context, path string) error { return ctx.Err() }

type Replica struct {
	root   context.Context
	cancel context.CancelFunc
	hook   func()
}

// NewReplica mints the lifecycle root: constructors are exempt.
func NewReplica() *Replica {
	r := &Replica{}
	r.root, r.cancel = context.WithCancel(context.Background())
	return r
}

// NewLoggedReplica registers a hook closure; the closure runs on the
// request path later, so the Background inside it is still a finding.
func NewLoggedReplica() *Replica {
	r := NewReplica()
	r.hook = func() {
		_ = context.Background() // want `context\.Background\(\) in a request-path closure`
	}
	return r
}

// Close cancels the root: the canonical teardown.
func (r *Replica) Close() { r.cancel() }

// handle receives a ctx and must derive from it.
func (r *Replica) handle(ctx context.Context, p *peer) error {
	fresh, cancel := context.WithTimeout(context.Background(), time.Second) // want `context\.Background\(\) inside a function that receives a context\.Context`
	defer cancel()
	return p.do(fresh, "/v1/search")
}

// handleGood threads the caller's context.
func (r *Replica) handleGood(ctx context.Context, p *peer) error {
	tctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	return p.do(tctx, "/v1/search")
}

// pollLoop mirrors the replication follower bug: a goroutine loop
// minting a fresh root every tick that nothing can cancel.
func (r *Replica) pollLoop(p *peer) {
	go func() {
		for {
			ctx, cancel := context.WithTimeout(context.Background(), time.Second) // want `context\.Background\(\) in a request-path closure`
			_ = p.do(ctx, "/v1/wal/pull")
			cancel()
		}
	}()
}

// pollLoopGood derives every tick from the constructor-owned root.
func (r *Replica) pollLoopGood(p *peer) {
	go func() {
		for {
			ctx, cancel := context.WithTimeout(r.root, time.Second)
			_ = p.do(ctx, "/v1/wal/pull")
			cancel()
		}
	}()
}

// warm is a plain request-path function with no ctx parameter at all.
func (r *Replica) warm(p *peer) error {
	return p.do(context.TODO(), "/v1/stats") // want `context\.TODO\(\) in request-path function warm`
}

// nilCtx passes a literal nil where a context is expected.
func (r *Replica) nilCtx(p *peer) error {
	return p.do(nil, "/v1/stats") // want `nil context passed to p\.do`
}

// detach documents a reviewed exception: a best-effort trace flush
// that must survive request cancellation.
func (r *Replica) detach(p *peer) error {
	return p.do(context.Background(), "/v1/trace/flush") //ranklint:ignore trace flush is fire-and-forget and must outlive the request
}
