// Package b exercises ctxflow outside the request-path packages: only
// rule 1 (Background inside a ctx-receiving function) and rule 3 (nil
// ctx argument) apply; free-standing Background is allowed here.
package b

import "context"

func rpc(ctx context.Context, path string) error { return ctx.Err() }

// mixed receives a ctx but mints a fresh root anyway.
func mixed(ctx context.Context) error {
	return rpc(context.Background(), "/x") // want `context\.Background\(\) inside a function that receives a context\.Context`
}

// spawned closures inherit the obligation from the enclosing signature.
func spawned(ctx context.Context) {
	go func() {
		_ = rpc(context.Background(), "/x") // want `context\.Background\(\) inside a function that receives a context\.Context`
	}()
}

// freeRoot has no ctx parameter and b is not a request-path package:
// minting a root is fine here.
func freeRoot() error {
	return rpc(context.Background(), "/x")
}

// nilArg is flagged everywhere.
func nilArg() error {
	return rpc(nil, "/x") // want `nil context passed to rpc`
}

// variadic-free sanity: nil for a non-context parameter is fine.
func take(m map[string]int) {}

func nilMap() { take(nil) }
