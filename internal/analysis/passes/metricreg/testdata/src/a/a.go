// Package a exercises the metricreg analyzer: undeclared writes,
// duplicate declarations, dead declarations, cross-function pairing,
// and computed names staying out of scope.
package a

type Label struct{ K, V string }

type HistogramSnapshot struct{}

// MetricWriter mirrors obs.MetricWriter (matched by type name).
type MetricWriter struct{ err error }

func (m *MetricWriter) Metric(name, typ, help string)                                   {}
func (m *MetricWriter) Value(name string, v float64, labels ...Label)                   {}
func (m *MetricWriter) Int(name string, v int64, labels ...Label)                       {}
func (m *MetricWriter) Histogram(name string, s HistogramSnapshot, per float64, labels ...Label) {}

// writeCore declares and writes in the same function: clean.
func writeCore(m *MetricWriter) {
	m.Metric("rankjoin_requests_total", "counter", "Requests served.")
	m.Int("rankjoin_requests_total", 1)

	m.Metric("rankjoin_latency_seconds", "histogram", "Request latency.")
	m.Histogram("rankjoin_latency_seconds", HistogramSnapshot{}, 1)
}

// writeCluster declares here, writes in writeClusterSamples: clean —
// the pairing is per package, not per function.
func writeCluster(m *MetricWriter) {
	m.Metric("rankjoin_peer_up", "gauge", "Peer liveness.")
}

func writeClusterSamples(m *MetricWriter) {
	m.Value("rankjoin_peer_up", 1)
}

// writeOrphan emits a sample nothing declared.
func writeOrphan(m *MetricWriter) {
	m.Int("rankjoin_orphan_total", 1) // want `series rankjoin_orphan_total is written without a Metric\(name, type, help\) declaration`
}

// declareTwice duplicates the metadata block.
func declareTwice(m *MetricWriter) {
	m.Metric("rankjoin_dup_total", "counter", "Dup.")
	m.Metric("rankjoin_dup_total", "counter", "Dup.") // want `series rankjoin_dup_total is declared more than once`
	m.Int("rankjoin_dup_total", 1)
}

// declareDead declares a series no code writes.
func declareDead(m *MetricWriter) {
	m.Metric("rankjoin_dead_total", "counter", "Dead.") // want `series rankjoin_dead_total is declared but never written in this package`
}

// computed names are out of scope by design.
func writeComputed(m *MetricWriter, name string) {
	m.Value(name+"_bucket", 1)
}

// legacyShim documents a reviewed exception: the series is declared by
// a sidecar exporter outside this package.
func legacyShim(m *MetricWriter) {
	m.Int("rankjoin_legacy_total", 1) //ranklint:ignore declared by the fleet-wide exporter shim during migration
}
