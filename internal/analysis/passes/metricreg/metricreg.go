// Package metricreg defines the ranklint analyzer keeping the
// Prometheus exposition surface coherent: every series name written
// through an obs.MetricWriter (Value, Int, Histogram) must be declared
// exactly once with Metric(name, type, help), and every declaration
// must actually be written.
//
// The failure modes it catches ship silently otherwise: a sample with
// no preceding # HELP/# TYPE block scrapes as an untyped orphan and
// breaks dashboards that key off the type; a series declared twice
// emits duplicate metadata blocks, which some scrapers reject
// wholesale; a declared-but-never-written series is dead weight that
// masks a renamed emission site.
//
// Only string-literal series names participate. Computed names (the
// writer's own internal name+"_bucket" suffixing, loops over label
// sets) are invisible to the analyzer by design — the contract is that
// handler code names its series literally, which the existing
// /metrics handlers all do.
//
// The check is per package: declaration and write may live in
// different functions (the cluster and durability sections of the
// metrics handler are separate methods) but must share a package.
package metricreg

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"rankjoin/internal/analysis"
)

// Analyzer is the metricreg pass.
var Analyzer = &analysis.Analyzer{
	Name: "metricreg",
	Doc:  "check that every metric series written via obs.MetricWriter is declared exactly once with HELP/TYPE",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	declares := make(map[string][]token.Pos)
	writes := make(map[string][]token.Pos)
	var names []string // first-seen order, for deterministic iteration

	note := func(m map[string][]token.Pos, name string, pos token.Pos) {
		if len(declares[name]) == 0 && len(writes[name]) == 0 {
			names = append(names, name)
		}
		m[name] = append(m[name], pos)
	}

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !isMetricWriterMethod(pass, sel.Sel) {
				return true
			}
			name, ok := literalName(call)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "Metric":
				note(declares, name, call.Pos())
			case "Value", "Int", "Histogram":
				note(writes, name, call.Pos())
			}
			return true
		})
	}

	for _, name := range names {
		decls, ws := declares[name], writes[name]
		for _, pos := range decls[min(1, len(decls)):] {
			pass.Reportf(pos, "series %s is declared more than once; HELP/TYPE must be emitted exactly once per scrape", name)
		}
		if len(decls) == 0 {
			for _, pos := range ws {
				pass.Reportf(pos, "series %s is written without a Metric(name, type, help) declaration; it scrapes as an untyped orphan", name)
			}
		}
		if len(ws) == 0 && len(decls) > 0 {
			pass.Reportf(decls[0], "series %s is declared but never written in this package; drop the declaration or emit the sample", name)
		}
	}
	return nil, nil
}

// isMetricWriterMethod reports whether id resolves to a method whose
// receiver is a type named MetricWriter (matched by name so fixtures
// and the real obs package both participate).
func isMetricWriterMethod(pass *analysis.Pass, id *ast.Ident) bool {
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "MetricWriter"
}

// literalName extracts a string-literal first argument.
func literalName(call *ast.CallExpr) (string, bool) {
	if len(call.Args) == 0 {
		return "", false
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	return s, err == nil
}
