package metricreg_test

import (
	"testing"

	"rankjoin/internal/analysis/analysistest"
	"rankjoin/internal/analysis/passes/metricreg"
)

func TestMetricReg(t *testing.T) {
	analysistest.Run(t, metricreg.Analyzer, "a")
}
