// Package a exercises the nohedge analyzer: mutation handlers reaching
// hedged RPC tiers directly, through helpers and through goroutine
// closures, against the doMutate path and read paths that may hedge.
package a

import "context"

type peer struct{ n int }

func (p *peer) do(ctx context.Context) error       { p.n++; return nil }
func (p *peer) doSlow(ctx context.Context) error   { p.n++; return nil }
func (p *peer) doHedged(ctx context.Context) error { p.n++; return nil }
func (p *peer) doMutate(ctx context.Context) error { p.n++; return nil }

// plain has a do method but no doMutate: not an RPC client, never a
// sink.
type plain struct{ n int }

func (p *plain) do(ctx context.Context) error { p.n++; return nil }

type server struct {
	p  *peer
	pl *plain
}

func (s *server) clusterInsert(ctx context.Context) error {
	return s.p.do(ctx) // want `mutation handler \(\*a\.server\)\.clusterInsert reaches hedged RPC \(\*a\.peer\)\.do `
}

func (s *server) clusterDelete(ctx context.Context) error {
	return s.route(ctx) // want `mutation handler \(\*a\.server\)\.clusterDelete reaches hedged RPC .* \(path .*route.*\)`
}

func (s *server) route(ctx context.Context) error { return s.p.doSlow(ctx) }

func (s *server) handleClusterDelete(ctx context.Context) error {
	go func() { _ = s.p.do(ctx) }() // want `mutation handler \(\*a\.server\)\.handleClusterDelete reaches hedged RPC`
	return nil
}

// handleClusterInsert is the clean shape: the mutation tier only.
func (s *server) handleClusterInsert(ctx context.Context) error {
	return s.p.doMutate(ctx)
}

// searchPeer is a read path: hedging reads is the design.
func (s *server) searchPeer(ctx context.Context) error {
	return s.p.do(ctx)
}

// UpsertPeer calling a non-client do method is fine.
func (s *server) UpsertPeer(ctx context.Context) error {
	return s.pl.do(ctx)
}

type gateway struct{ p *peer }

// DeletePeer documents a reviewed exception via the suppression
// directive.
func (g *gateway) DeletePeer(ctx context.Context) error {
	return g.p.doSlow(ctx) //ranklint:ignore test-only gateway, never deployed against a live ring
}
