// Package nohedge defines the ranklint analyzer guarding the cluster
// write path's exactly-one-apply contract: no call path from a cluster
// mutation handler may reach a hedged RPC primitive.
//
// internal/cluster's peerClient exposes three RPC tiers: do (timer
// hedge + fast-fail retry), doSlow (fast-fail retry) and doMutate
// (exactly one attempt). Reads hedge freely — a duplicate search is
// just wasted work — but a hedged mutation can apply twice, which is
// how a cluster silently double-inserts under timeout pressure.
// TestMutateNeverHedges pins this at runtime for the paths it happens
// to drive; this analyzer proves the absence of any such path over the
// static call graph, including paths through helpers, goroutine
// closures and method values.
//
// Roots are the mutation entry points by name (clusterInsert,
// clusterDelete, handleClusterInsert, handleClusterDelete, UpsertPeer,
// DeletePeer); sinks are methods named do, doSlow or doHedged declared
// on a type that also declares doMutate — the signature of a tiered
// RPC client. The finding is reported at the first call of the
// offending chain, with the full path in the message.
package nohedge

import (
	"go/types"

	"rankjoin/internal/analysis"
)

// Analyzer is the nohedge pass.
var Analyzer = &analysis.Analyzer{
	Name: "nohedge",
	Doc:  "check that cluster mutation handlers never reach a hedged RPC (exactly-one-apply contract)",
	Run:  run,
}

// mutationRoots names the cluster mutation entry points. Matching is
// exact: these are the handlers whose reachability set must exclude
// every hedged primitive.
var mutationRoots = map[string]bool{
	"clusterInsert":       true,
	"clusterDelete":       true,
	"handleClusterInsert": true,
	"handleClusterDelete": true,
	"UpsertPeer":          true,
	"DeletePeer":          true,
}

func run(pass *analysis.Pass) (any, error) {
	g := pass.Graph
	if g == nil {
		return nil, nil
	}
	for _, n := range g.Decls() {
		// The graph spans every package of the run; report only for
		// roots declared in the package being analyzed.
		if n.Pkg.Types != pass.Pkg || !mutationRoots[n.Obj.Name()] {
			continue
		}
		if hedgedRPC(n) {
			continue // a root cannot be its own sink
		}
		path := g.PathTo(n, hedgedRPC)
		if path == nil {
			continue
		}
		pass.Reportf(path[0].Pos,
			"mutation handler %s reaches hedged RPC %s (path %s); mutations must go through doMutate so they apply exactly once",
			n.ShortName(), path[len(path)-1].Callee.ShortName(), analysis.PathString(n, path))
	}
	return nil, nil
}

// hedgedRPC identifies the hedged tiers of an RPC client: a method
// named do, doSlow or doHedged on a type that also has a doMutate
// method (the marker distinguishing peerClient-shaped clients from
// incidental `do` methods elsewhere).
func hedgedRPC(n *analysis.FuncNode) bool {
	name := n.Obj.Name()
	if name != "do" && name != "doSlow" && name != "doHedged" {
		return false
	}
	recv := n.Obj.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == "doMutate" {
			return true
		}
	}
	return false
}
