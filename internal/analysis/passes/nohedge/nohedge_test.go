package nohedge_test

import (
	"testing"

	"rankjoin/internal/analysis/analysistest"
	"rankjoin/internal/analysis/passes/nohedge"
)

func TestNoHedge(t *testing.T) {
	analysistest.Run(t, nohedge.Analyzer, "a")
}
