package spanend_test

import (
	"testing"

	"rankjoin/internal/analysis/analysistest"
	"rankjoin/internal/analysis/passes/spanend"
)

func TestSpanEnd(t *testing.T) {
	analysistest.Run(t, spanend.Analyzer, "a")
}
