// Package a exercises the spanend analyzer: discarded spans, missing
// Ends, early-return leaks, binding windows (the phase-span rebind
// pattern) and the blessed defer / end-before-return shapes.
package a

import "errors"

type Span struct{ name string }

func (s *Span) End()         {}
func (s *Span) Name() string { return s.name }

func (s *Span) StartChild(name string) *Span { return &Span{name: name} }

type Tracer struct{}

func (t *Tracer) StartScope(name string) *Span { return &Span{name: name} }
func (t *Tracer) StartTask(name string) *Span  { return &Span{name: name} }

var errEarly = errors.New("early")

func consume(sp *Span) {}

func discarded(tr *Tracer) {
	tr.StartScope("x") // want `result of tr.StartScope\(...\) is discarded`
}

func assignedBlank(tr *Tracer) {
	_ = tr.StartScope("x") // want `assigned to _: the span is never ended`
}

func chainedEnd(tr *Tracer) {
	defer tr.StartScope("x").End()
}

func neverEnded(tr *Tracer) {
	sp := tr.StartScope("x") // want `span sp is never ended in this function`
	sp.Name()
}

func childNeverEnded(tr *Tracer) {
	parent := tr.StartScope("p")
	defer parent.End()
	c := parent.StartChild("c") // want `span c is never ended in this function`
	c.Name()
}

func leakOnReturn(tr *Tracer, fail bool) error {
	sp := tr.StartScope("x")
	if fail {
		return errEarly // want `return leaks span sp`
	}
	sp.End()
	return nil
}

func endBeforeReturn(tr *Tracer, fail bool) error {
	sp := tr.StartScope("x")
	if fail {
		sp.End()
		return errEarly
	}
	sp.End()
	return nil
}

func deferredEnd(tr *Tracer, fail bool) error {
	sp := tr.StartScope("x")
	defer sp.End()
	if fail {
		return errEarly
	}
	return nil
}

func rebindWithoutEnd(tr *Tracer) {
	sp := tr.StartScope("a") // want `re-assigned at line \d+ without being ended first`
	sp = tr.StartScope("b")
	sp.End()
}

func phasePattern(tr *Tracer) {
	sp := tr.StartScope("a")
	sp.End()
	sp = tr.StartScope("b")
	sp.End()
}

func borrowedByCall(tr *Tracer) {
	sp := tr.StartScope("x") // want `span sp is never ended in this function`
	consume(sp)              // a plain call argument borrows; End stays owed here
}

func borrowedByCallEnded(tr *Tracer) {
	sp := tr.StartScope("x")
	consume(sp)
	sp.End()
}

func borrowReturnLeak(tr *Tracer, fail bool) error {
	sp := tr.StartScope("x")
	consume(sp)
	if fail {
		return errEarly // want `return leaks span sp`
	}
	sp.End()
	return nil
}

func escapesByReturn(tr *Tracer) *Span {
	sp := tr.StartScope("x")
	return sp // ownership transfers to the caller: not tracked
}

func escapesByAppend(tr *Tracer, sink []*Span) []*Span {
	sp := tr.StartScope("x")
	return append(sink, sp) // append stores the span: not tracked
}

func escapesByDeferredCall(tr *Tracer) {
	sp := tr.StartScope("x")
	defer consume(sp) // deferred callee may End it: not tracked
}

func escapesByGo(tr *Tracer) {
	sp := tr.StartScope("x")
	go consume(sp) // concurrent callee may End it: not tracked
}

func escapesByClosure(tr *Tracer) func() {
	sp := tr.StartScope("x")
	return func() { consume(sp) } // closure capture: not tracked
}

func suppressedSameLine(tr *Tracer) {
	tr.StartScope("x") //ranklint:ignore lifecycle owned by the process; ended at exit
}

func suppressedLineAbove(tr *Tracer) {
	//ranklint:ignore lifecycle owned by the process; ended at exit
	tr.StartScope("x")
}
