// Package spanend defines the ranklint analyzer enforcing the span
// lifecycle invariant: every span returned by Tracer.StartScope,
// Tracer.StartTask, Span.StartTask or Span.StartChild must be ended.
//
// This is the static counterpart of obs.(*Tracer).Validate, which
// rejects traces containing unfinished spans — but only at runtime,
// and only on code paths a test happens to execute. A leaked span also
// leaks its render track (tasks) or permanently deepens the current
// scope (scopes), so later spans nest wrongly even when Validate is
// never called.
//
// The analyzer flags a Start* call when
//
//   - its result is discarded (statement expression or assigned to _),
//     or
//   - the span variable has no End call at all in the enclosing
//     function, or
//   - End is called, but only on the straight-line path: a return
//     statement between Start and the first End leaks the span on that
//     path (unless the return is directly preceded by its own End
//     call).
//
// Spans that escape the function — returned, stored in a struct or
// collection, appended to a slice, captured by a closure, or handed to
// a call under defer or go — transfer ownership and are not tracked.
// A span passed as a plain (synchronous) call argument is only
// *borrowed*: the callee may annotate it or attach children — the
// per-request serving path hands its sweep span to SearchBatchInto
// this way — but the starter still owns the lifecycle, so End on all
// paths is still required. Deferred Ends (including inside deferred
// closures) satisfy the invariant unconditionally; End is idempotent,
// so defer + explicit early End is the blessed belt-and-suspenders
// pattern.
package spanend

import (
	"go/ast"
	"go/token"
	"go/types"

	"rankjoin/internal/analysis"
)

// Analyzer is the spanend pass.
var Analyzer = &analysis.Analyzer{
	Name: "spanend",
	Doc:  "check that every started trace span is ended on all paths (static obs.Validate)",
	Run:  run,
}

var startMethods = map[string]bool{
	"StartScope": true,
	"StartTask":  true,
	"StartChild": true,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if call, ok := n.(*ast.CallExpr); ok {
				checkStart(pass, call, stack)
			}
			stack = append(stack, n)
			return true
		})
	}
	return nil, nil
}

// checkStart inspects one call expression; stack holds its ancestors
// (outermost first, excluding the call itself).
func checkStart(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !startMethods[sel.Sel.Name] {
		return
	}
	tv, ok := pass.TypesInfo.Types[call]
	if !ok || !hasEndMethod(tv.Type) {
		return
	}

	parent := ast.Node(nil)
	if len(stack) > 0 {
		parent = stack[len(stack)-1]
	}
	switch p := parent.(type) {
	case *ast.ExprStmt:
		pass.Reportf(call.Pos(), "result of %s(...) is discarded: the span is never ended (obs.Validate would fail)", analysis.ExprString(call.Fun))
	case *ast.SelectorExpr:
		// Chained call: tr.StartScope(...).End() or .Name() etc. End in
		// the chain is fine (typically under defer); any other chained
		// method still discards the span itself.
		if p.Sel.Name == "End" {
			return
		}
		pass.Reportf(call.Pos(), "span from %s(...) is used but never ended", analysis.ExprString(call.Fun))
	case *ast.AssignStmt:
		id := assignTarget(p, call)
		if id == nil {
			return // multi-value or non-ident destination: out of scope
		}
		if id.Name == "_" {
			pass.Reportf(call.Pos(), "span from %s(...) assigned to _: the span is never ended", analysis.ExprString(call.Fun))
			return
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			return
		}
		fn := enclosingFunc(stack)
		if fn == nil {
			return
		}
		checkSpanVar(pass, call, p, id, obj, fn)
	}
	// Other parents (call argument, return value, composite literal,
	// var spec with initializer...) either transfer ownership or are
	// rare enough that the runtime validator keeps covering them.
}

// assignTarget returns the LHS identifier matching call on the RHS of a
// 1:1 or n:n assignment.
func assignTarget(as *ast.AssignStmt, call *ast.CallExpr) *ast.Ident {
	for i, rhs := range as.Rhs {
		if rhs == call && i < len(as.Lhs) {
			id, _ := as.Lhs[i].(*ast.Ident)
			return id
		}
	}
	return nil
}

// enclosingFunc returns the innermost function-like ancestor.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

func funcBody(fn ast.Node) *ast.BlockStmt {
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		return fn.Body
	case *ast.FuncLit:
		return fn.Body
	}
	return nil
}

// spanUses summarizes how a span variable is used inside its function.
type spanUses struct {
	escapes     bool
	endDeferred bool        // defer sp.End() or sp.End() under a deferred/spawned closure
	endCalls    []token.Pos // non-deferred End call positions
	rebinds     []token.Pos // positions where the variable is re-assigned
}

func checkSpanVar(pass *analysis.Pass, call *ast.CallExpr, assign *ast.AssignStmt, id *ast.Ident, obj types.Object, fn ast.Node) {
	body := funcBody(fn)
	if body == nil {
		return
	}
	uses := collectUses(pass, obj, body, assign)
	if uses.escapes {
		return
	}
	if uses.endDeferred {
		return
	}
	// This binding of the variable lives from the assignment until the
	// next rebind (phase-span style: sp = tr.StartScope("next phase")),
	// or the function end. End calls outside the window belong to other
	// bindings of the same variable.
	windowEnd := body.End()
	rebound := false
	for _, rb := range uses.rebinds {
		if rb > call.End() && rb < windowEnd {
			windowEnd = rb
			rebound = true
		}
	}
	firstEnd := token.NoPos
	for _, e := range uses.endCalls {
		if e > call.End() && e < windowEnd && (firstEnd == token.NoPos || e < firstEnd) {
			firstEnd = e
		}
	}
	if firstEnd == token.NoPos {
		if rebound {
			pass.Reportf(call.Pos(), "span %s is re-assigned at line %d without being ended first; obs.Validate would reject the trace",
				id.Name, analysis.PosLine(pass.Fset, windowEnd))
		} else {
			pass.Reportf(call.Pos(), "span %s is never ended in this function (no %s.End() call); obs.Validate would reject the trace", id.Name, id.Name)
		}
		return
	}
	// Non-deferred End only: hunt for returns that sneak out between
	// Start and the first End without their own preceding End.
	for _, ret := range returnsBetween(body, call.End(), firstEnd) {
		if endsBeforeReturn(pass, obj, body, ret) {
			continue
		}
		pass.Reportf(ret.Pos(), "return leaks span %s: started at line %d, ended only at line %d; end it before returning or use defer %s.End()",
			id.Name, analysis.PosLine(pass.Fset, call.Pos()), analysis.PosLine(pass.Fset, firstEnd), id.Name)
	}
}

// collectUses walks the function body classifying every use of obj.
// start is the assignment statement that bound the span; idents inside
// it (the LHS of a plain `=` rebind) are not uses of interest.
func collectUses(pass *analysis.Pass, obj types.Object, body *ast.BlockStmt, start *ast.AssignStmt) spanUses {
	var uses spanUses
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			classifyUse(pass, id, stack, start, &uses)
		}
		stack = append(stack, n)
		return true
	})
	return uses
}

func classifyUse(pass *analysis.Pass, id *ast.Ident, stack []ast.Node, start *ast.AssignStmt, uses *spanUses) {
	// Receiver position: sel.X == id, parent call invokes the method.
	if len(stack) >= 2 {
		if sel, ok := stack[len(stack)-1].(*ast.SelectorExpr); ok && sel.X == id {
			if c, ok := stack[len(stack)-2].(*ast.CallExpr); ok && c.Fun == sel {
				if sel.Sel.Name == "End" {
					if underDeferOrClosure(stack) {
						uses.endDeferred = true
					} else {
						uses.endCalls = append(uses.endCalls, c.Pos())
					}
				}
				return // method call on the span: benign use
			}
			return // bare field/method value read: benign
		}
	}
	// Idents inside the defining assignment itself (the LHS of a plain
	// `=` rebind) are the binding, not a use.
	if inNode(start, id.Pos()) {
		return
	}
	// A later re-assignment target closes this binding's window (the
	// phase-span pattern); record it rather than treating it as an
	// escape.
	if len(stack) >= 1 {
		if as, ok := stack[len(stack)-1].(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if lhs == ast.Expr(id) {
					uses.rebinds = append(uses.rebinds, id.Pos())
					return
				}
			}
		}
	}
	// A plain synchronous call argument is a borrow, not a transfer: the
	// callee may annotate the span but the starter keeps the lifecycle,
	// so keep tracking. Exceptions stay escapes: append (stores into a
	// slice) and calls that run later (under defer, go, or inside a
	// function literal) — those may legitimately End it.
	if len(stack) >= 1 && !deferredOrConcurrent(stack) {
		if c, ok := stack[len(stack)-1].(*ast.CallExpr); ok && c.Fun != ast.Expr(id) && !isAppend(pass, c) {
			for _, a := range c.Args {
				if a == ast.Expr(id) {
					return
				}
			}
		}
	}
	// Anything else — return operand, struct literal, map/slice store,
	// channel send, comparison, reassignment source — lets the span
	// escape our intraprocedural view.
	uses.escapes = true
}

// underDeferOrClosure reports whether the ancestor chain passes a defer
// statement or a function literal (a closure may run the End later, so
// treat both as satisfying the lifecycle).
func underDeferOrClosure(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.DeferStmt, *ast.FuncLit:
			return true
		case *ast.FuncDecl:
			return false
		}
	}
	return false
}

// deferredOrConcurrent reports whether the ancestor chain passes a
// defer statement, a go statement, or a function literal — contexts in
// which a call argument use may outlive the current statement and run
// End itself, so borrowing semantics don't apply.
func deferredOrConcurrent(stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.DeferStmt, *ast.GoStmt, *ast.FuncLit:
			return true
		case *ast.FuncDecl:
			return false
		}
	}
	return false
}

// isAppend reports whether c calls the append builtin (which stores its
// arguments — an ownership transfer, not a borrow).
func isAppend(pass *analysis.Pass, c *ast.CallExpr) bool {
	id, ok := c.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// returnsBetween collects return statements positioned in (after, before)
// in the function body, skipping nested function literals (their
// returns exit the closure, not this function).
func returnsBetween(body *ast.BlockStmt, after, before token.Pos) []*ast.ReturnStmt {
	var out []*ast.ReturnStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if ret, ok := n.(*ast.ReturnStmt); ok && ret.Pos() > after && ret.Pos() < before {
			out = append(out, ret)
		}
		return true
	})
	return out
}

// endsBeforeReturn reports whether the statement directly preceding ret
// in its enclosing block is an obj.End() call — the accepted shape for
// ending a span on an early exit.
func endsBeforeReturn(pass *analysis.Pass, obj types.Object, body *ast.BlockStmt, ret *ast.ReturnStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, st := range block.List {
			if st != ast.Stmt(ret) || i == 0 {
				continue
			}
			if isEndCall(pass, obj, block.List[i-1]) {
				found = true
			}
		}
		return true
	})
	return found
}

func isEndCall(pass *analysis.Pass, obj types.Object, st ast.Stmt) bool {
	es, ok := st.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && pass.TypesInfo.Uses[id] == obj
}

// inNode reports whether pos lies within n's extent.
func inNode(n ast.Node, pos token.Pos) bool {
	return n.Pos() <= pos && pos <= n.End()
}

// hasEndMethod reports whether t (the Start* result) is a single value
// whose method set includes a niladic End.
func hasEndMethod(t types.Type) bool {
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		if tup.Len() != 1 {
			return false
		}
		t = tup.At(0).Type()
	}
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		m := ms.At(i).Obj()
		if m.Name() != "End" {
			continue
		}
		sig, ok := m.Type().(*types.Signature)
		return ok && sig.Params().Len() == 0
	}
	return false
}
