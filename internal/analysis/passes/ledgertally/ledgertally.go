// Package ledgertally defines the ranklint analyzer enforcing the
// candidate-conservation ledger invariant in the join kernels.
//
// The obs filter counters obey a conservation law (obs.FilterDelta):
// every candidate pair a kernel enumerates meets exactly one fate —
// pruned by a filter, accepted unverified, or verified — and emitted
// results are tallied. rankcheck asserts this dynamically after every
// differential trial; this analyzer front-runs it by demanding that
// any kernel-package function which *constructs* result pairs also
// touches the ledger.
//
// Concretely: inside the kernel packages (vj, ppjoin, clusterjoin,
// vsmart, fsjoin, core), a function that creates a new result pair —
// a call to rankings.NewPair or a composite literal of a type named
// Pair — must also reference the accounting machinery: a value of a
// type named Stats, FilterCounters or FilterDelta. Functions that only
// move existing pairs around (dedup, merge, sort) construct nothing
// and are exempt, which is exactly right: conservation is about where
// candidates are generated and resolved, not where results are copied.
//
// A second rule guards the signature prefilter in EVERY package (not
// just the kernels): a function that calls SignaturePrune discards
// candidates, so it must also touch a ledger type — otherwise the
// rejected candidates vanish from the conservation law instead of
// being tallied as PrunedSignature. Only the defining package
// (filters), where the predicate is pure math with no candidates in
// sight, is exempt.
package ledgertally

import (
	"go/ast"
	"go/types"
	"regexp"

	"rankjoin/internal/analysis"
)

// Analyzer is the ledgertally pass.
var Analyzer = &analysis.Analyzer{
	Name: "ledgertally",
	Doc:  "check that kernel functions constructing result pairs tally the obs filter-counter ledger",
	Run:  run,
}

// kernelPackages names the packages whose kernels feed the
// conservation law. Matching is by package name so analyzer testdata
// can opt in with `package vj`.
var kernelPackages = map[string]bool{
	"vj":          true,
	"ppjoin":      true,
	"clusterjoin": true,
	"vsmart":      true,
	"fsjoin":      true,
	"core":        true,
}

// ledgerTypeName matches the names of accounting types whose use in a
// function counts as touching the ledger: the obs counter machinery
// (FilterCounters, FilterDelta), kernel stats (ppjoin.Stats, vj.Stats,
// core.kernelStats) and local batch accumulators (core.expandCounts).
var ledgerTypeName = regexp.MustCompile(`(Stats|Counters|Counts|Delta|Ledger)`)

func run(pass *analysis.Pass) (any, error) {
	pairRule := kernelPackages[pass.Pkg.Name()]
	sigRule := pass.Pkg.Name() != "filters"
	if !pairRule && !sigRule {
		return nil, nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, pairRule, sigRule)
		}
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, pairRule, sigRule bool) {
	var firstPair, firstSigPrune ast.Node
	touchesLedger := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if pairRule && firstPair == nil && isNewPairCall(pass, n) {
				firstPair = n
			}
			if sigRule && firstSigPrune == nil && isSignaturePruneCall(n) {
				firstSigPrune = n
			}
		case *ast.CompositeLit:
			if pairRule && firstPair == nil && isPairLiteral(pass, n) {
				firstPair = n
			}
		case *ast.Ident:
			if !touchesLedger && identTouchesLedger(pass, n) {
				touchesLedger = true
			}
		}
		return true
	})
	if touchesLedger {
		return
	}
	if firstPair != nil {
		pass.Reportf(firstPair.Pos(),
			"kernel function %s constructs result pairs but never touches the filter ledger (Stats / FilterCounters / FilterDelta); the conservation law Generated = pruned + verified cannot hold",
			fd.Name.Name)
	}
	if firstSigPrune != nil {
		pass.Reportf(firstSigPrune.Pos(),
			"function %s rejects candidates with SignaturePrune but never touches the filter ledger (Stats / FilterCounters / FilterDelta); signature rejections must be tallied as PrunedSignature or the conservation law breaks",
			fd.Name.Name)
	}
}

// isSignaturePruneCall matches calls to a function named SignaturePrune
// (any package qualifier).
func isSignaturePruneCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "SignaturePrune"
	case *ast.SelectorExpr:
		return fun.Sel.Name == "SignaturePrune"
	}
	return false
}

// isNewPairCall matches calls to a function named NewPair (any
// package) returning a pair value.
func isNewPairCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "NewPair"
	case *ast.SelectorExpr:
		return fun.Sel.Name == "NewPair"
	}
	return false
}

// isPairLiteral matches non-empty composite literals of a named type
// called Pair. The zero literal (`return Pair{}, false` on a pruned
// path) constructs no result and is exempt.
func isPairLiteral(pass *analysis.Pass, lit *ast.CompositeLit) bool {
	if len(lit.Elts) == 0 {
		return false
	}
	t := pass.TypeOf(lit)
	return namedTypeName(t) == "Pair"
}

// identTouchesLedger reports whether the identifier denotes a value
// (or field owner) of a ledger type.
func identTouchesLedger(pass *analysis.Pass, id *ast.Ident) bool {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	if obj == nil {
		return false
	}
	switch obj.(type) {
	case *types.Var, *types.TypeName:
		name := namedTypeName(obj.Type())
		return name != "" && ledgerTypeName.MatchString(name)
	}
	return false
}

// namedTypeName unwraps pointers and slices and returns the name of
// the underlying named type, or "".
func namedTypeName(t types.Type) string {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Named:
			return u.Obj().Name()
		case *types.Alias:
			t = types.Unalias(t)
		default:
			return ""
		}
	}
}
