// Package vj exercises the ledgertally analyzer inside a package name
// it gates on: kernels constructing pairs must touch the ledger.
package vj

type Pair struct {
	A, B int64
	Sim  float64
}

type Stats struct {
	Candidates int64
	Results    int64
}

func NewPair(a, b int64, sim float64) Pair {
	return Pair{A: a, B: b, Sim: sim} //ranklint:ignore pure constructor; callers tally the ledger
}

func goodKernel(ids []int64, st *Stats) []Pair {
	var out []Pair
	for i := range ids {
		for j := i + 1; j < len(ids); j++ {
			st.Candidates++
			out = append(out, NewPair(ids[i], ids[j], 1))
			st.Results++
		}
	}
	return out
}

func badKernel(ids []int64) []Pair {
	var out []Pair
	for i := range ids {
		for j := i + 1; j < len(ids); j++ {
			out = append(out, NewPair(ids[i], ids[j], 1)) // want `never touches the filter ledger`
		}
	}
	return out
}

func badLiteral(a, b int64) []Pair {
	return []Pair{{A: a, B: b, Sim: 1}} // want `never touches the filter ledger`
}

// zeroOnPrune returns the zero Pair on the pruned path: constructing
// nothing, exempt.
func zeroOnPrune(a, b int64) (Pair, bool) {
	if a == b {
		return Pair{}, false
	}
	return Pair{}, false
}

// dedup only moves existing pairs around; movers are exempt.
func dedup(in []Pair) []Pair {
	out := in[:0]
	for i, p := range in {
		if i > 0 && p == in[i-1] {
			continue
		}
		out = append(out, p)
	}
	return out
}
