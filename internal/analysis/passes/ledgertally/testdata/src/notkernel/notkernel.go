// Package notkernel is not in the kernel-package gate: identical code
// to the flagged kernels must produce no findings here.
package notkernel

type Pair struct {
	A, B int64
	Sim  float64
}

func NewPair(a, b int64, sim float64) Pair { return Pair{A: a, B: b, Sim: sim} }

func build(ids []int64) []Pair {
	var out []Pair
	for i := range ids {
		for j := i + 1; j < len(ids); j++ {
			out = append(out, NewPair(ids[i], ids[j], 1))
		}
	}
	return out
}
