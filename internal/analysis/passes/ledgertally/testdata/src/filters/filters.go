// Package filters is the defining package of SignaturePrune: the
// predicate is pure math here, with no candidate streams in sight, so
// unledgered calls (self-tests, composed predicates) are exempt.
package filters

func SignaturePrune(asig uint64, apop uint8, bsig uint64, bpop uint8, k, maxDist int) bool {
	return false
}

func composed(sigs []uint64, pops []uint8, k, maxDist int) bool {
	return SignaturePrune(sigs[0], pops[0], sigs[1], pops[1], k, maxDist)
}
