// Package sigprune exercises the SignaturePrune ledger rule, which —
// unlike the pair rule — applies to every package, not just the
// kernel-package gate.
package sigprune

type FilterDelta struct {
	Generated       int64
	PrunedSignature int64
	Verified        int64
}

func SignaturePrune(asig uint64, apop uint8, bsig uint64, bpop uint8, k, maxDist int) bool {
	return false
}

func goodSweep(sigs []uint64, pops []uint8, k, maxDist int, d *FilterDelta) int {
	kept := 0
	for i := range sigs {
		d.Generated++
		if SignaturePrune(sigs[0], pops[0], sigs[i], pops[i], k, maxDist) {
			d.PrunedSignature++
			continue
		}
		d.Verified++
		kept++
	}
	return kept
}

func badSweep(sigs []uint64, pops []uint8, k, maxDist int) int {
	kept := 0
	for i := range sigs {
		if SignaturePrune(sigs[0], pops[0], sigs[i], pops[i], k, maxDist) { // want `signature rejections must be tallied`
			continue
		}
		kept++
	}
	return kept
}

// noPrune never rejects anything, so it owes the ledger nothing.
func noPrune(sigs []uint64) int {
	n := 0
	for range sigs {
		n++
	}
	return n
}
