package ledgertally_test

import (
	"testing"

	"rankjoin/internal/analysis/analysistest"
	"rankjoin/internal/analysis/passes/ledgertally"
)

func TestLedgerTally(t *testing.T) {
	analysistest.Run(t, ledgertally.Analyzer, "vj", "notkernel", "sigprune", "filters")
}
