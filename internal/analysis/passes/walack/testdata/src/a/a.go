// Package a exercises the walack analyzer: fsync in the append phase,
// dropped and late commit closures, fsync under the shard lock, and
// the clean two-phase shapes.
package a

import (
	"os"
	"sync"
)

type Rec struct{ ID int }

// WriteHook mirrors shard.WriteHook: append now, fsync via the
// returned commit closure.
type WriteHook func(Rec) func() error

type wlog struct {
	f   *os.File
	mu  sync.Mutex
	buf []byte
}

func (l *wlog) append(r Rec) (int64, error) {
	l.buf = append(l.buf, byte(r.ID))
	return int64(len(l.buf)), nil
}

func (l *wlog) sync(lsn int64) error { return l.f.Sync() }

type Index struct {
	mu        sync.Mutex
	writeHook WriteHook
}

func (x *Index) SetWriteHook(h WriteHook) { x.writeHook = h }

func (x *Index) logLocked(r Rec) func() error {
	if x.writeHook == nil {
		return nil
	}
	return x.writeHook(r)
}

// attachBad syncs in the append phase: the hook runs under the shard
// write lock.
func attachBad(x *Index, l *wlog) {
	x.SetWriteHook(func(r Rec) func() error {
		lsn, _ := l.append(r)
		_ = l.sync(lsn) // want `write-hook append phase calls l\.sync, which reaches an fsync`
		return func() error { return nil }
	})
}

// attachGood is the two-phase contract: append now, sync in the
// returned commit closure.
func attachGood(x *Index, l *wlog) {
	x.SetWriteHook(func(r Rec) func() error {
		lsn, err := l.append(r)
		if err != nil {
			return func() error { return err }
		}
		return func() error { return l.sync(lsn) }
	})
}

// Insert is the clean mutation shape: log under the lock, commit after
// unlock, ack last.
func (x *Index) Insert(r Rec) error {
	x.mu.Lock()
	commit := x.logLocked(r)
	x.mu.Unlock()
	if commit != nil {
		return commit()
	}
	return nil
}

// InsertDropped acks without ever running the barrier.
func (x *Index) InsertDropped(r Rec) error {
	x.mu.Lock()
	commit := x.logLocked(r) // want `commit closure commit is never invoked`
	x.mu.Unlock()
	_ = commit
	return nil
}

// InsertBlank discards the closure outright.
func (x *Index) InsertBlank(r Rec) error {
	_ = x.logLocked(r) // want `commit closure from x\.logLocked is discarded`
	return nil
}

// InsertEarlyAck has a success return racing the barrier.
func (x *Index) InsertEarlyAck(r Rec) error {
	x.mu.Lock()
	commit := x.logLocked(r)
	x.mu.Unlock()
	if r.ID < 0 {
		return nil // want `success return before commit closure commit runs`
	}
	if commit != nil {
		return commit()
	}
	return nil
}

// logAndHand transfers the barrier obligation to its caller: clean.
func (x *Index) logAndHand(r Rec) func() error {
	commit := x.logLocked(r)
	return commit
}

// InsertSyncLocked fsyncs while holding the shard lock.
func (x *Index) InsertSyncLocked(r Rec, l *wlog) error {
	x.mu.Lock()
	defer x.mu.Unlock()
	commit := x.logLocked(r)
	if commit != nil {
		return commit()
	}
	_ = l.sync(1) // want `l\.sync reaches an fsync while the shard lock is held`
	return nil
}

// Rotate documents a reviewed exception: the rotation cut needs the
// lock for an exact segment boundary.
func (x *Index) Rotate(l *wlog) error {
	x.mu.Lock()
	defer x.mu.Unlock()
	return l.sync(0) //ranklint:ignore rotation cut needs the lock for an exact segment boundary; rare path
}

// plainLog has no write hook: its mutex is not a shard lock and may
// wrap fsyncs (group-commit internals do exactly this).
func (l *wlog) rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Sync()
}
