// Package walack defines the ranklint analyzer guarding the two-phase
// write-ahead-log contract around shard.Index.SetWriteHook: appends
// happen under the shard lock, the fsync barrier happens strictly
// after it, and an acknowledged write always waited for that barrier.
//
// The runtime side of this contract is the WAL crash drill (25-seed
// kill-during-churn property test, DESIGN.md §14): every acked write
// must survive kill -9. Statically, three rules pin it:
//
//  1. The hook function passed to SetWriteHook runs with the shard
//     write lock held; its body must not fsync (or block on a sync
//     barrier). Only the commit closure it returns may — closures
//     appearing in the hook's return statements are the commit phase
//     and are exempt.
//
//  2. A commit closure obtained inside a mutation (an assignment from a
//     log* call or a WriteHook invocation returning func() error) must
//     be invoked — or handed onward — before any success return.
//     Dropping it, or `return nil` before the first commit() call, acks
//     a write that was never made durable.
//
//  3. No call that reaches an fsync may run while a shard lock (a
//     mutex on a write-hook-carrying type) is held: group commit
//     batches fsyncs precisely so mutations do not serialize on disk
//     flushes.
//
// "Reaches an fsync" is a call-graph fact: (*os.File).Sync and
// functions named sync/fsync/syncNow (the repo's barrier vocabulary),
// plus everything that can call them.
package walack

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"rankjoin/internal/analysis"
)

// Analyzer is the walack pass.
var Analyzer = &analysis.Analyzer{
	Name: "walack",
	Doc:  "check the two-phase WAL write-hook contract: no fsync under the shard lock, commit before every ack",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	g := pass.Graph
	if g == nil {
		return nil, nil
	}
	syncing := g.Reaching(fsyncSink)
	reachesSync := func(fn *types.Func) bool {
		if fn == nil {
			return false
		}
		return syncing[g.NodeOf(fn)]
	}

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkHookLiteral(pass, call, reachesSync)
			}
			if decl, ok := n.(*ast.FuncDecl); ok && decl.Body != nil {
				checkCommitUse(pass, decl)
				checkLockedFsync(pass, decl, reachesSync)
			}
			return true
		})
	}
	return nil, nil
}

// fsyncSink matches the durability barrier itself: (*os.File).Sync and
// the repo's sync/fsync-named wrappers.
func fsyncSink(n *analysis.FuncNode) bool {
	switch strings.ToLower(n.Obj.Name()) {
	case "sync", "fsync", "syncnow":
	default:
		return false
	}
	// Plain `sync` methods are everywhere; require either the os.File
	// method itself or a lowercase-named repo wrapper, or Sync on a
	// file-like receiver.
	if n.Obj.Name() != "Sync" {
		return true
	}
	recv := n.Obj.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "File" && obj.Pkg() != nil && obj.Pkg().Path() == "os"
}

// checkHookLiteral enforces rule 1 on `x.SetWriteHook(func(...) ... )`:
// the literal's body, minus the commit closures it returns, must not
// reach a sync barrier.
func checkHookLiteral(pass *analysis.Pass, call *ast.CallExpr, reachesSync func(*types.Func) bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "SetWriteHook" || len(call.Args) != 1 {
		return
	}
	hook, ok := call.Args[0].(*ast.FuncLit)
	if !ok {
		return
	}
	// Commit closures: function literals appearing in the hook's own
	// return statements (not in returns of nested literals).
	exempt := make(map[*ast.FuncLit]bool)
	markReturnedLiterals(hook.Body, exempt)

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && exempt[lit] {
			return false // the commit phase may (must) sync
		}
		inner, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(pass, inner); reachesSync(fn) {
			pass.Reportf(inner.Pos(),
				"write-hook append phase calls %s, which reaches an fsync; the hook runs under the shard write lock — sync only in the returned commit closure",
				analysis.ExprString(inner.Fun))
		}
		return true
	}
	ast.Inspect(hook.Body, walk)
}

// markReturnedLiterals records function literals returned by body,
// descending into blocks but not into nested function literals (their
// returns are not the hook's returns).
func markReturnedLiterals(body *ast.BlockStmt, exempt map[*ast.FuncLit]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if lit, ok := res.(*ast.FuncLit); ok {
					exempt[lit] = true
				}
			}
		}
		return true
	})
}

// checkCommitUse enforces rule 2: a commit closure variable must be
// invoked or handed onward before any success return that follows its
// assignment.
func checkCommitUse(pass *analysis.Pass, decl *ast.FuncDecl) {
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		asgn, ok := n.(*ast.AssignStmt)
		if !ok || len(asgn.Lhs) == 0 || len(asgn.Rhs) != 1 {
			return true
		}
		call, ok := asgn.Rhs[0].(*ast.CallExpr)
		if !ok || !isCommitSource(pass, call) {
			return true
		}
		lhs, ok := asgn.Lhs[0].(*ast.Ident)
		if !ok || lhs.Name == "_" {
			pass.Reportf(asgn.Pos(),
				"commit closure from %s is discarded; invoke it before acking or the write is not durable",
				analysis.ExprString(call.Fun))
			return true
		}
		obj := pass.TypesInfo.ObjectOf(lhs)
		if obj == nil {
			return true
		}
		checkCommitFlow(pass, decl, lhs, obj, call)
		return true
	})
}

// checkCommitFlow classifies every use of the commit variable and
// reports drops and premature success returns.
func checkCommitFlow(pass *analysis.Pass, decl *ast.FuncDecl, lhs *ast.Ident, obj types.Object, src *ast.CallExpr) {
	// firstUse is the position of the earliest invocation or escape
	// (returned / passed onward): the point where responsibility for
	// the barrier is met or transferred.
	firstUse := token.Pos(-1)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
				if firstUse < 0 || n.Pos() < firstUse {
					firstUse = n.Pos()
				}
				return true
			}
			for _, arg := range n.Args {
				if id, ok := arg.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
					if firstUse < 0 || n.Pos() < firstUse {
						firstUse = n.Pos()
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if id, ok := res.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
					if firstUse < 0 || n.Pos() < firstUse {
						firstUse = n.Pos()
					}
				}
			}
		}
		return true
	})
	if firstUse < 0 {
		pass.Reportf(lhs.Pos(),
			"commit closure %s is never invoked; every success path must run the fsync barrier before acking", lhs.Name)
		return
	}
	// Success returns between the assignment and the first use ack a
	// write whose barrier never ran. Error returns (non-nil result) are
	// failure paths and legal.
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Pos() > src.End() {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || ret.Pos() <= src.End() || ret.Pos() >= firstUse {
			return true
		}
		if isSuccessReturn(pass, ret) {
			pass.Reportf(ret.Pos(),
				"success return before commit closure %s runs; the ack would race the fsync barrier", lhs.Name)
		}
		return true
	})
}

// isCommitSource matches calls yielding a commit closure: a log*
// function, or an invocation of a WriteHook-typed value, returning
// exactly func() error.
func isCommitSource(pass *analysis.Pass, call *ast.CallExpr) bool {
	sig, ok := pass.TypeOf(call).(*types.Signature)
	if !ok || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return false
	}
	if !isErrorType(sig.Results().At(0).Type()) {
		return false
	}
	// Callee name starts with "log" (logLocked et al.)?
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if strings.HasPrefix(fun.Name, "log") {
			return true
		}
	case *ast.SelectorExpr:
		if strings.HasPrefix(fun.Sel.Name, "log") {
			return true
		}
	}
	// Or an invocation of a WriteHook-typed value.
	if named, ok := pass.TypeOf(call.Fun).(*types.Named); ok && named.Obj().Name() == "WriteHook" {
		return true
	}
	return false
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// isSuccessReturn reports whether ret's final result is statically nil
// (or absent): the shape of an ack.
func isSuccessReturn(pass *analysis.Pass, ret *ast.ReturnStmt) bool {
	if len(ret.Results) == 0 {
		return true
	}
	last := ret.Results[len(ret.Results)-1]
	if id, ok := last.(*ast.Ident); ok && id.Name == "nil" {
		return true
	}
	return false
}

// checkLockedFsync enforces rule 3: between x.mu.Lock()/RLock() and the
// matching unlock on a write-hook-carrying type, no call may reach an
// fsync.
func checkLockedFsync(pass *analysis.Pass, decl *ast.FuncDecl, reachesSync func(*types.Func) bool) {
	type region struct{ start, end token.Pos }
	var regions []region
	open := make(map[string]token.Pos) // lock expr string → lock pos

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		key, op, onShard := shardLockOp(pass, call)
		if !onShard {
			return true
		}
		switch op {
		case "Lock", "RLock":
			open[key] = call.End()
		case "Unlock", "RUnlock":
			if start, ok := open[key]; ok {
				if isDeferred(decl.Body, call) {
					regions = append(regions, region{start, decl.Body.End()})
				} else {
					regions = append(regions, region{start, call.Pos()})
				}
				delete(open, key)
			}
		}
		return true
	})
	openKeys := make([]string, 0, len(open))
	for key := range open {
		openKeys = append(openKeys, key)
	}
	sort.Strings(openKeys) // deterministic region order
	for _, key := range openKeys {
		regions = append(regions, region{open[key], decl.Body.End()})
	}
	if len(regions) == 0 {
		return
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		inRegion := false
		for _, r := range regions {
			if call.Pos() > r.start && call.Pos() < r.end {
				inRegion = true
				break
			}
		}
		if !inRegion {
			return true
		}
		if fn := calleeFunc(pass, call); reachesSync(fn) {
			pass.Reportf(call.Pos(),
				"%s reaches an fsync while the shard lock is held; group commit requires the barrier to run after unlock",
				analysis.ExprString(call.Fun))
		}
		return true
	})
}

// shardLockOp matches x.mu.Lock/RLock/Unlock/RUnlock where x's type
// carries a write hook (field writeHook, field of type WriteHook, or a
// SetWriteHook method) — the definition of a "shard lock".
func shardLockOp(pass *analysis.Pass, call *ast.CallExpr) (key, op string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	field, isSel := sel.X.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	t := pass.TypeOf(field.X)
	if t == nil {
		return "", "", false
	}
	if p, okp := t.(*types.Pointer); okp {
		t = p.Elem()
	}
	named, okn := t.(*types.Named)
	if !okn || !hasWriteHook(named) {
		return "", "", false
	}
	return analysis.ExprString(sel.X), sel.Sel.Name, true
}

// hasWriteHook reports whether named carries the write-hook surface.
func hasWriteHook(named *types.Named) bool {
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == "SetWriteHook" {
			return true
		}
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == "writeHook" {
			return true
		}
		if ft, ok := f.Type().(*types.Named); ok && ft.Obj().Name() == "WriteHook" {
			return true
		}
	}
	return false
}

// isDeferred reports whether call appears as a defer statement's call.
func isDeferred(body *ast.BlockStmt, call *ast.CallExpr) bool {
	deferred := false
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok && d.Call == call {
			deferred = true
		}
		return !deferred
	})
	return deferred
}

// calleeFunc resolves a call's static callee, nil for dynamic calls.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}
