package walack_test

import (
	"testing"

	"rankjoin/internal/analysis/analysistest"
	"rankjoin/internal/analysis/passes/walack"
)

func TestWalAck(t *testing.T) {
	analysistest.Run(t, walack.Analyzer, "a")
}
