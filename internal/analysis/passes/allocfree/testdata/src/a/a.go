// Package a exercises the allocfree analyzer: allocation constructs
// inside annotated functions, the allowed arena idioms, transitive
// annotation, and a reasoned suppression.
package a

import (
	"fmt"
	"sync"
)

type sweeper struct {
	mu    sync.Mutex
	arena []int
	name  string
}

// sink is an annotated leaf that accepts pre-boxed values.
//
//ranklint:allocfree
func sink(v any) {}

// vsum is an annotated variadic leaf.
//
//ranklint:allocfree
func vsum(xs ...int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// helper is NOT annotated.
func helper(n int) int { return n * 2 }

// sweep is the clean shape: arena growth via make/append, sync calls,
// transitive calls to annotated leaves, explicit variadic spread.
//
//ranklint:allocfree
func (s *sweeper) sweep(xs []int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cap(s.arena) < len(xs) {
		s.arena = make([]int, 0, len(xs)*2)
	}
	s.arena = s.arena[:0]
	s.arena = append(s.arena, xs...)
	return vsum(s.arena...)
}

// sweepBad piles up the forbidden constructs.
//
//ranklint:allocfree
func (s *sweeper) sweepBad(xs []int, f func() int) int {
	seen := map[int]bool{} // want `map literal allocates`
	pairs := []int{1, 2}   // want `slice literal allocates`
	ch := make(chan int)   // want `make\(chan\) allocates`
	p := new(int)          // want `new\(T\) allocates`
	cb := func() int {     // want `builds a function literal`
		return 0
	}
	s.name = s.name + "!"  // want `concatenates strings`
	go s.sweep(xs)         // want `spawns a goroutine`
	_ = helper(1)          // want `calls a\.helper, which is not marked //ranklint:allocfree`
	_ = fmt.Sprint(len(xs)) // want `calls fmt\.Sprint, which is outside the allocation-free allowlist` `variadic call allocates its argument slice` `passing a concrete value as any allocates`
	_ = f()                // want `makes a dynamic call`
	_ = vsum(1, 2, 3)      // want `variadic call allocates its argument slice`
	sink(42)               // want `passing a concrete value as any allocates`
	_ = []byte(s.name)     // want `string<->\[\]byte conversion copies and allocates`
	_ = seen[0]
	_ = pairs
	_ = ch
	_ = p
	return cb() // want `makes a dynamic call`
}

// boxedReturn returns a concrete value through an interface result.
//
//ranklint:allocfree
func (s *sweeper) boxedReturn() any {
	return s.arena[0] // want `returning a concrete value as an interface allocates`
}

// coldPath documents a reviewed exception on its one allocating line.
//
//ranklint:allocfree
func (s *sweeper) coldPath(err error) {
	if err != nil {
		_ = fmt.Sprint(err) //ranklint:ignore error formatting is off the hot path and gated on failure
	}
}

// unannotated may allocate freely.
func unannotated() []int {
	return []int{1, 2, 3}
}
