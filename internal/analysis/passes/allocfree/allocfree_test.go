package allocfree_test

import (
	"testing"

	"rankjoin/internal/analysis/analysistest"
	"rankjoin/internal/analysis/passes/allocfree"
)

func TestAllocFree(t *testing.T) {
	analysistest.Run(t, allocfree.Analyzer, "a")
}
