// Package allocfree defines the ranklint analyzer enforcing the
// //ranklint:allocfree annotation: a function so marked is part of the
// zero-allocation serving contract (pinned at runtime by
// testing.AllocsPerRun in the shard and server suites), and its body
// must not contain constructs that allocate per call.
//
// Flagged inside an annotated body:
//
//   - map and slice composite literals, make(map/chan), new(T);
//   - function literals (closure allocation);
//   - non-constant string concatenation and string<->[]byte/[]rune
//     conversions;
//   - conversions of concrete values to interface types, including
//     implicit boxing at call arguments;
//   - variadic calls that pass variadic arguments without an explicit
//     ...-spread (the callee's argument slice is allocated per call);
//   - go statements, except `go f()` on a pre-bound argument-free func
//     value (the arena fan-out idiom; the g itself is pool-reused);
//   - dynamic calls through function values or interface methods, which
//     cannot be verified statically;
//   - calls to functions that are neither //ranklint:allocfree
//     themselves nor in the allowlist (sync, sync/atomic, math,
//     math/bits, slices) nor allocation-free builtins.
//
// Deliberately allowed: make([]T, n) and append — the serving path
// uses amortized high-water arenas that grow to a steady state and are
// then reused, which AllocsPerRun already pins at zero in steady state.
// Boxing of pointer-shaped values (pointers, channels, maps, funcs)
// into interfaces is also allowed: they are stored directly in the
// interface data word without allocating. A handful of individual
// stdlib functions known not to allocate (errors.Is/As, the
// time.Duration accessors) are allowlisted by name because their
// packages cannot be allowlisted wholesale.
// Calls into same-module packages that are not loaded in the current
// run (vet unit-checker mode) are skipped rather than flagged; the
// repo-wide ./... run sees their bodies and enforces the annotation
// transitively.
package allocfree

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"rankjoin/internal/analysis"
)

// Analyzer is the allocfree pass.
var Analyzer = &analysis.Analyzer{
	Name: "allocfree",
	Doc:  "check that //ranklint:allocfree functions contain no per-call allocation constructs",
	Run:  run,
}

// allowPkgs are packages whose exported functions are allocation-free
// for the shapes used on the serving path.
var allowPkgs = map[string]bool{
	"sync":        true,
	"sync/atomic": true,
	"math":        true,
	"math/bits":   true,
	"slices":      true,
}

// allowFuncs are individual stdlib functions known not to allocate even
// though their packages cannot be blanket-allowlisted (their siblings —
// errors.New, time.Time.Format — allocate freely). Keyed by the
// types.Func full name.
var allowFuncs = map[string]bool{
	"errors.Is":                    true,
	"errors.As":                    true,
	"(time.Duration).Microseconds": true,
	"(time.Duration).Milliseconds": true,
	"(time.Duration).Seconds":      true,
}

// allowBuiltins never allocate (make and new are handled separately).
var allowBuiltins = map[string]bool{
	"len": true, "cap": true, "copy": true, "delete": true,
	"append": true, "min": true, "max": true, "clear": true,
	"panic": true, "print": true, "println": true, "recover": true,
}

func run(pass *analysis.Pass) (any, error) {
	g := pass.Graph
	for _, n := range g.Decls() {
		if n.Pkg.Types != pass.Pkg || !n.Directive("allocfree") || !n.HasBody() {
			continue
		}
		checkBody(pass, g, n)
	}
	return nil, nil
}

func checkBody(pass *analysis.Pass, g *analysis.CallGraph, n *analysis.FuncNode) {
	resultIfaces := interfaceResults(n.Obj)
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncLit:
			pass.Reportf(node.Pos(), "%s is //ranklint:allocfree but builds a function literal, which allocates a closure", n.ShortName())
			return false
		case *ast.CompositeLit:
			switch pass.TypeOf(node).Underlying().(type) {
			case *types.Map:
				pass.Reportf(node.Pos(), "%s is //ranklint:allocfree but a map literal allocates", n.ShortName())
			case *types.Slice:
				pass.Reportf(node.Pos(), "%s is //ranklint:allocfree but a slice literal allocates", n.ShortName())
			}
		case *ast.GoStmt:
			// `go f()` on a pre-bound func value carries no arguments
			// and builds no closure — the g itself is pool-reused, which
			// is the arena fan-out idiom (see shard.Batch.funcs). Any
			// other form captures or copies per spawn.
			if _, bare := ast.Unparen(node.Call.Fun).(*ast.Ident); bare && len(node.Call.Args) == 0 {
				return false // the spawned call is the func value itself; nothing beneath to check
			}
			pass.Reportf(node.Pos(), "%s is //ranklint:allocfree but spawns a goroutine with arguments or a bound method, which allocates per call", n.ShortName())
		case *ast.BinaryExpr:
			if node.Op == token.ADD && isNonConstantString(pass, node) {
				pass.Reportf(node.Pos(), "%s is //ranklint:allocfree but concatenates strings, which allocates", n.ShortName())
				return false // don't re-report each operand of a chain
			}
		case *ast.CallExpr:
			checkCall(pass, g, n, node)
		case *ast.ReturnStmt:
			for i, res := range node.Results {
				if i < len(resultIfaces) && resultIfaces[i] && boxes(pass, res) {
					pass.Reportf(res.Pos(), "%s is //ranklint:allocfree but returning a concrete value as an interface allocates", n.ShortName())
				}
			}
		}
		return true
	})
}

// checkCall classifies one call inside an annotated body.
func checkCall(pass *analysis.Pass, g *analysis.CallGraph, n *analysis.FuncNode, call *ast.CallExpr) {
	// Conversions parse as calls: T(x).
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		checkConversion(pass, n, call, tv.Type)
		return
	}
	sig, _ := pass.TypeOf(call.Fun).(*types.Signature)

	switch callee := calleeObject(pass, call).(type) {
	case *types.Builtin:
		switch callee.Name() {
		case "make":
			switch pass.TypeOf(call).Underlying().(type) {
			case *types.Map:
				pass.Reportf(call.Pos(), "%s is //ranklint:allocfree but make(map) allocates", n.ShortName())
			case *types.Chan:
				pass.Reportf(call.Pos(), "%s is //ranklint:allocfree but make(chan) allocates", n.ShortName())
			}
			return
		case "new":
			pass.Reportf(call.Pos(), "%s is //ranklint:allocfree but new(T) allocates", n.ShortName())
			return
		default:
			if !allowBuiltins[callee.Name()] {
				pass.Reportf(call.Pos(), "%s is //ranklint:allocfree but calls builtin %s, which may allocate", n.ShortName(), callee.Name())
			}
			return
		}
	case *types.Func:
		if recv := callee.Type().(*types.Signature).Recv(); recv != nil && types.IsInterface(recv.Type()) {
			pass.Reportf(call.Pos(), "%s is //ranklint:allocfree but calls interface method %s, which cannot be verified allocation-free", n.ShortName(), callee.Name())
			return
		}
		if pkg := callee.Pkg(); pkg != nil && !allowPkgs[pkg.Path()] && !allowFuncs[analysis.FuncName(callee)] {
			cn := g.Node(analysis.FuncName(callee))
			switch {
			case cn != nil && cn.Directive("allocfree"):
				// Verified transitively.
			case cn != nil && cn.HasBody():
				pass.Reportf(call.Pos(), "%s is //ranklint:allocfree but calls %s, which is not marked //ranklint:allocfree", n.ShortName(), cn.ShortName())
			case sameModule(pkg.Path(), pass.Pkg.Path()):
				// Body not loaded in this (package-scoped) run; the
				// repo-wide run enforces it.
			default:
				pass.Reportf(call.Pos(), "%s is //ranklint:allocfree but calls %s.%s, which is outside the allocation-free allowlist", n.ShortName(), pkg.Name(), callee.Name())
			}
		}
	default:
		pass.Reportf(call.Pos(), "%s is //ranklint:allocfree but makes a dynamic call, which cannot be verified allocation-free", n.ShortName())
		return
	}

	// Variadic argument slices are allocated per call.
	if sig != nil && sig.Variadic() && !call.Ellipsis.IsValid() && len(call.Args) >= sig.Params().Len() {
		pass.Reportf(call.Pos(), "%s is //ranklint:allocfree but this variadic call allocates its argument slice", n.ShortName())
	}

	// Implicit boxing of concrete arguments into interface parameters.
	if sig != nil {
		for i, arg := range call.Args {
			var pt types.Type
			switch {
			case sig.Variadic() && i >= sig.Params().Len()-1:
				if !call.Ellipsis.IsValid() {
					pt = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
				}
			case i < sig.Params().Len():
				pt = sig.Params().At(i).Type()
			}
			if pt != nil && types.IsInterface(pt) && boxes(pass, arg) {
				pass.Reportf(arg.Pos(), "%s is //ranklint:allocfree but passing a concrete value as %s allocates", n.ShortName(), typeShort(pt))
			}
		}
	}
}

// checkConversion flags allocating conversions: to interfaces and
// between string and byte/rune slices.
func checkConversion(pass *analysis.Pass, n *analysis.FuncNode, call *ast.CallExpr, target types.Type) {
	if len(call.Args) != 1 {
		return
	}
	if types.IsInterface(target.Underlying()) {
		if boxes(pass, call.Args[0]) {
			pass.Reportf(call.Pos(), "%s is //ranklint:allocfree but converting to interface %s allocates", n.ShortName(), typeShort(target))
		}
		return
	}
	src := pass.TypeOf(call.Args[0])
	if src == nil {
		return
	}
	if isStringByteConv(target, src) || isStringByteConv(src, target) {
		pass.Reportf(call.Pos(), "%s is //ranklint:allocfree but a string<->[]byte conversion copies and allocates", n.ShortName())
	}
}

// boxes reports whether assigning expr to an interface would allocate:
// the expression has a concrete (non-interface, non-nil) type.
func boxes(pass *analysis.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	if b, ok := tv.Type.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	// Pointer-shaped values (pointers, channels, maps, funcs) are stored
	// directly in the interface data word — no allocation.
	switch tv.Type.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	}
	return !types.IsInterface(tv.Type)
}

// calleeObject resolves the called object for f(...), x.f(...),
// f[T](...); nil for calls through plain function values.
func calleeObject(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	fun := ast.Unparen(call.Fun)
	switch fun := fun.(type) {
	case *ast.IndexExpr:
		return calleeIdent(pass, fun.X)
	case *ast.IndexListExpr:
		return calleeIdent(pass, fun.X)
	default:
		return calleeIdent(pass, fun)
	}
}

func calleeIdent(pass *analysis.Pass, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		switch obj.(type) {
		case *types.Builtin, *types.Func:
			return obj
		}
		return nil
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[e.Sel].(*types.Func); ok {
			return fn
		}
		return nil
	}
	return nil
}

func isNonConstantString(pass *analysis.Pass, e *ast.BinaryExpr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value != nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isStringByteConv(a, b types.Type) bool {
	ab, ok := a.Underlying().(*types.Basic)
	if !ok || ab.Info()&types.IsString == 0 {
		return false
	}
	sl, ok := b.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	el, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (el.Kind() == types.Byte || el.Kind() == types.Rune ||
		el.Kind() == types.Uint8 || el.Kind() == types.Int32)
}

// interfaceResults marks which results of fn have interface type.
func interfaceResults(fn *types.Func) []bool {
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	out := make([]bool, sig.Results().Len())
	for i := range out {
		out[i] = types.IsInterface(sig.Results().At(i).Type())
	}
	return out
}

func sameModule(a, b string) bool { return firstSeg(a) == firstSeg(b) }

func firstSeg(p string) string {
	if i := strings.IndexByte(p, '/'); i >= 0 {
		return p[:i]
	}
	return p
}

func typeShort(t types.Type) string {
	s := t.String()
	if i := strings.LastIndexByte(s, '/'); i >= 0 {
		s = s[i+1:]
	}
	return s
}
