// Package wraperr defines the ranklint analyzer guarding the typed
// sentinel error contract: sentinels like rankjoin.ErrSelfJoinOnly,
// ErrMixedLengths or shard.ErrKMismatch must flow to callers either
// bare or wrapped with %w — never stringified.
//
// internal/server maps engine errors onto HTTP status codes with
// errors.Is, and the public API documents errors.Is compatibility. A
// single fmt.Errorf("...: %v", ErrKMismatch) silently severs that
// chain: the text still reads right, every errors.Is test of that path
// starts failing, and the server's error mapper degrades to 500s. The
// compiler cannot notice — %v is perfectly legal — so this analyzer
// does.
//
// Flagged shapes, for any identifier matching ^Err[A-Z].* whose type
// implements error (local or pkg-qualified):
//
//   - fmt.Errorf with the sentinel bound to any verb but %w
//   - calling .Error() on the sentinel (errors.New(ErrX.Error()),
//     string concatenation, manual comparisons)
package wraperr

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strconv"

	"rankjoin/internal/analysis"
)

// Analyzer is the wraperr pass.
var Analyzer = &analysis.Analyzer{
	Name: "wraperr",
	Doc:  "check that typed sentinel errors are wrapped with %w, never stringified (errors.Is contract)",
	Run:  run,
}

var sentinelName = regexp.MustCompile(`^Err[A-Z]`)

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isErrorfCall(pass, call) {
				checkErrorf(pass, call)
			}
			checkErrorStringification(pass, call)
			return true
		})
	}
	return nil, nil
}

// isErrorfCall matches fmt.Errorf.
func isErrorfCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.TypesInfo.Uses[pkg].(*types.PkgName)
	return ok && pn.Imported().Path() == "fmt"
}

// checkErrorf verifies that sentinel arguments of fmt.Errorf are bound
// to the %w verb.
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	if len(call.Args) < 2 {
		return
	}
	format, ok := constantString(pass, call.Args[0])
	if !ok {
		return
	}
	verbs := parseVerbs(format)
	for i, arg := range call.Args[1:] {
		name, isSentinel := sentinelRef(pass, arg)
		if !isSentinel {
			continue
		}
		if i >= len(verbs) {
			continue // malformed format; vet's printf check owns that
		}
		if verbs[i] != 'w' {
			pass.Reportf(arg.Pos(),
				"sentinel error %s formatted with %%%c breaks the errors.Is chain; wrap it with %%w",
				name, verbs[i])
		}
	}
}

// checkErrorStringification flags sentinel.Error() calls.
func checkErrorStringification(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" || len(call.Args) != 0 {
		return
	}
	name, isSentinel := sentinelRef(pass, sel.X)
	if !isSentinel {
		return
	}
	pass.Reportf(call.Pos(),
		"calling %s.Error() stringifies the sentinel; return it bare or wrapped with %%w so errors.Is keeps working",
		name)
}

// sentinelRef reports whether e denotes a package-level error variable
// named like a sentinel (ErrFoo or pkg.ErrFoo).
func sentinelRef(pass *analysis.Pass, e ast.Expr) (string, bool) {
	var id *ast.Ident
	display := ""
	switch e := e.(type) {
	case *ast.Ident:
		id = e
		display = e.Name
	case *ast.SelectorExpr:
		if _, ok := e.X.(*ast.Ident); !ok {
			return "", false
		}
		id = e.Sel
		display = analysis.ExprString(e)
	default:
		return "", false
	}
	if !sentinelName.MatchString(id.Name) {
		return "", false
	}
	obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok {
		return "", false
	}
	// Package-level variable of an error-implementing type.
	if obj.Parent() != nil && obj.Parent().Parent() != types.Universe {
		return "", false
	}
	if !implementsError(obj.Type()) {
		return "", false
	}
	return display, true
}

func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errType)
}

// constantString resolves e to its constant string value.
func constantString(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		if lit, ok := e.(*ast.BasicLit); ok {
			s, err := strconv.Unquote(lit.Value)
			return s, err == nil
		}
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// parseVerbs extracts the verb letters of a printf format string in
// argument order. Width/precision stars consume an argument slot and
// are recorded as '*'.
func parseVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			continue
		}
		// flags, width, precision
		for i < len(format) {
			c := format[i]
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if c == '+' || c == '-' || c == '#' || c == ' ' || c == '0' ||
				c == '.' || (c >= '0' && c <= '9') {
				i++
				continue
			}
			break
		}
		if i < len(format) {
			verbs = append(verbs, format[i])
		}
	}
	return verbs
}
