// Package a exercises the wraperr analyzer: sentinel errors formatted
// with non-%w verbs and stringified via .Error(), against the wrapped,
// local-variable and non-sentinel shapes that are fine.
package a

import (
	"errors"
	"fmt"
)

var ErrKMismatch = errors.New("ranking length k does not match the index")

var notSentinel = errors.New("package-level but not Err-named")

func badVerb(k int) error {
	return fmt.Errorf("insert k=%d: %v", k, ErrKMismatch) // want `sentinel error ErrKMismatch formatted with %v breaks the errors.Is chain`
}

func badStringVerb() error {
	return fmt.Errorf("failed: %s", ErrKMismatch) // want `sentinel error ErrKMismatch formatted with %s breaks the errors.Is chain`
}

func goodWrap(k int) error {
	return fmt.Errorf("insert k=%d: %w", k, ErrKMismatch)
}

func starVerbsKeepSlots(width int) error {
	return fmt.Errorf("pad %*d: %w", width, 3, ErrKMismatch)
}

func stringified() string {
	return "failed: " + ErrKMismatch.Error() // want `calling ErrKMismatch\.Error\(\) stringifies the sentinel`
}

func compareByText(err error) bool {
	return err.Error() == ErrKMismatch.Error() // want `calling ErrKMismatch\.Error\(\) stringifies the sentinel`
}

func localErrIsFine() error {
	err := errors.New("local")
	return fmt.Errorf("wrapped: %v", err)
}

func nonSentinelNameIsFine() error {
	return fmt.Errorf("x: %v", notSentinel)
}

func suppressed() string {
	return ErrKMismatch.Error() //ranklint:ignore user-facing text, never compared or matched
}
