package wraperr_test

import (
	"testing"

	"rankjoin/internal/analysis/analysistest"
	"rankjoin/internal/analysis/passes/wraperr"
)

func TestWrapErr(t *testing.T) {
	analysistest.Run(t, wraperr.Analyzer, "a")
}
