package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the cross-function layer: a static call graph over every
// package handed to one Run invocation, plus per-function directive
// facts. It is deliberately lightweight — direct calls, method calls
// and function/method values only, no SSA, no interface devirtualization
// — which makes it conservative in the direction analyzers here need:
// an edge exists for anything that *may* call the target, so
// reachability proofs of absence (nohedge, walack) stay sound for the
// shapes this repo uses, at the cost of ignoring calls through plain
// function-typed variables and interfaces.
//
// Node identity is the types.Func full name (e.g.
// "(*rankjoin/internal/cluster.peerClient).do"), which is stable across
// the source-checked and export-data views of a package. That is what
// lets a graph built over `./...` connect internal/server handlers to
// internal/cluster RPC methods even though each package was
// type-checked separately.

// FuncName returns the stable node key for fn: the full name of its
// generic origin, so instantiations collapse onto their declaration.
func FuncName(fn *types.Func) string { return fn.Origin().FullName() }

// A CallEdge is one resolved reference from a function body to another
// function: a call expression (Direct) or a function/method value
// (hedged as a possible call).
type CallEdge struct {
	Callee *FuncNode
	Pos    token.Pos
	Direct bool
}

// A FuncNode is one function or method in the graph. Nodes with a Decl
// were loaded from source; external nodes (stdlib, packages outside the
// run) carry only their identity and have no outgoing edges.
type FuncNode struct {
	Name string
	Obj  *types.Func
	Decl *ast.FuncDecl // nil for external functions
	Pkg  *Package      // nil for external functions
	Out  []CallEdge

	directives map[string]bool
}

// HasBody reports whether the node's source was part of the run.
func (n *FuncNode) HasBody() bool { return n.Decl != nil && n.Decl.Body != nil }

// Directive reports whether the function's doc comment carries
// //ranklint:<name> (e.g. Directive("allocfree")).
func (n *FuncNode) Directive(name string) bool { return n.directives[name] }

// ShortName renders the node for diagnostics: method receivers keep
// their type but drop the package path.
func (n *FuncNode) ShortName() string {
	name := n.Name
	slash := strings.LastIndexByte(name, '/')
	if slash < 0 {
		return name
	}
	prefix := ""
	if strings.HasPrefix(name, "(*") {
		prefix = "(*"
	} else if strings.HasPrefix(name, "(") {
		prefix = "("
	}
	return prefix + name[slash+1:]
}

// A CallGraph indexes every FuncNode of one Run by full name.
type CallGraph struct {
	nodes map[string]*FuncNode
	decls []*FuncNode // nodes with bodies, in deterministic order
}

// Node returns the node with the given full name, or nil.
func (g *CallGraph) Node(name string) *FuncNode { return g.nodes[name] }

// NodeOf returns the node for fn, creating an external node if the
// function was not part of the run.
func (g *CallGraph) NodeOf(fn *types.Func) *FuncNode { return g.intern(fn) }

// Decls returns every node loaded from source, in (package, position)
// order.
func (g *CallGraph) Decls() []*FuncNode { return g.decls }

// Annotated returns the source nodes carrying //ranklint:<directive>,
// in declaration order.
func (g *CallGraph) Annotated(directive string) []*FuncNode {
	var out []*FuncNode
	for _, n := range g.decls {
		if n.Directive(directive) {
			out = append(out, n)
		}
	}
	return out
}

// Reaching computes the set of nodes from which some sink node is
// reachable over call edges; sinks themselves are included. This is the
// transitive "fact" analyzers propagate: e.g. sink = hedged RPC method,
// result = every function that may hedge.
func (g *CallGraph) Reaching(sink func(*FuncNode) bool) map[*FuncNode]bool {
	names := make([]string, 0, len(g.nodes))
	for name := range g.nodes {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic queue order regardless of interning order
	rev := make(map[*FuncNode][]*FuncNode)
	var queue []*FuncNode
	set := make(map[*FuncNode]bool)
	for _, name := range names {
		n := g.nodes[name]
		for _, e := range n.Out {
			rev[e.Callee] = append(rev[e.Callee], n)
		}
		if sink(n) {
			set[n] = true
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, caller := range rev[n] {
			if !set[caller] {
				set[caller] = true
				queue = append(queue, caller)
			}
		}
	}
	return set
}

// PathTo returns a shortest chain of call edges from `from` to a sink,
// or nil when no sink is reachable. The edge positions let analyzers
// report at the exact call that starts the offending chain.
func (g *CallGraph) PathTo(from *FuncNode, sink func(*FuncNode) bool) []CallEdge {
	type visit struct {
		node *FuncNode
		path []CallEdge
	}
	seen := map[*FuncNode]bool{from: true}
	queue := []visit{{node: from}}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range v.node.Out {
			if sink(e.Callee) {
				return append(append([]CallEdge(nil), v.path...), e)
			}
			if !seen[e.Callee] {
				seen[e.Callee] = true
				path := append(append([]CallEdge(nil), v.path...), e)
				queue = append(queue, visit{node: e.Callee, path: path})
			}
		}
	}
	return nil
}

// PathString renders a call chain for diagnostics:
// "a → b → (*peerClient).do".
func PathString(from *FuncNode, path []CallEdge) string {
	var b strings.Builder
	b.WriteString(from.ShortName())
	for _, e := range path {
		b.WriteString(" → ")
		b.WriteString(e.Callee.ShortName())
	}
	return b.String()
}

// BuildCallGraph constructs the call graph over every declared function
// of pkgs. Calls and function values inside nested function literals
// are attributed to the enclosing declaration — conservative and
// exactly right for reachability ("this handler spawns a goroutine that
// calls X" is still a path from the handler to X).
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{nodes: make(map[string]*FuncNode)}
	for _, pkg := range pkgs {
		for _, file := range pkg.Syntax {
			for _, d := range file.Decls {
				decl, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.TypesInfo.Defs[decl.Name].(*types.Func)
				if !ok {
					continue
				}
				n := g.intern(fn)
				n.Decl = decl
				n.Pkg = pkg
				n.directives = parseDirectives(decl.Doc)
				g.decls = append(g.decls, n)
			}
		}
	}
	sort.Slice(g.decls, func(i, j int) bool {
		if g.decls[i].Pkg.PkgPath != g.decls[j].Pkg.PkgPath {
			return g.decls[i].Pkg.PkgPath < g.decls[j].Pkg.PkgPath
		}
		return g.decls[i].Decl.Pos() < g.decls[j].Decl.Pos()
	})
	for _, n := range g.decls {
		if n.HasBody() {
			g.addEdges(n)
		}
	}
	return g
}

func (g *CallGraph) intern(fn *types.Func) *FuncNode {
	name := FuncName(fn)
	if n, ok := g.nodes[name]; ok {
		return n
	}
	n := &FuncNode{Name: name, Obj: fn.Origin()}
	g.nodes[name] = n
	return n
}

// addEdges resolves every function-valued identifier in the body. An
// identifier in call position yields a Direct edge (positioned at the
// call); any other use — a method value handed to a retry helper, a
// func passed to a goroutine — yields a reference edge, treated as a
// possible call.
func (g *CallGraph) addEdges(n *FuncNode) {
	callPos := make(map[*ast.Ident]token.Pos)
	seen := make(map[string]bool)
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.CallExpr:
			if id := terminalIdent(node.Fun); id != nil {
				callPos[id] = node.Lparen
			}
		case *ast.Ident:
			fn, ok := n.Pkg.TypesInfo.Uses[node].(*types.Func)
			if !ok {
				return true
			}
			callee := g.intern(fn)
			pos, direct := node.Pos(), false
			if p, ok := callPos[node]; ok {
				pos, direct = p, true
			}
			key := callee.Name
			if direct {
				key += "()"
			}
			if !seen[key] {
				seen[key] = true
				n.Out = append(n.Out, CallEdge{Callee: callee, Pos: pos, Direct: direct})
			}
		}
		return true
	})
}

// terminalIdent unwraps a call's Fun expression to the identifier that
// names the callee: pkg.F → F, recv.M → M, f[T] → f, (f) → f.
func terminalIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			return x.Sel
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// parseDirectives extracts //ranklint:<name> annotations (other than
// the per-line ignore directive) from a declaration's doc group.
func parseDirectives(doc *ast.CommentGroup) map[string]bool {
	if doc == nil {
		return nil
	}
	var out map[string]bool
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, "//ranklint:")
		if !ok {
			continue
		}
		name, _, _ := strings.Cut(rest, " ")
		name = strings.TrimSpace(name)
		if name == "" || name == "ignore" {
			continue
		}
		if out == nil {
			out = make(map[string]bool)
		}
		out[name] = true
	}
	return out
}
