// Package analysis is a minimal, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis API surface, sized for this
// repository's own lint passes (cmd/ranklint). The container building
// this repo has no module proxy access, so the real x/tools module is
// unavailable; the types here mirror its shapes (Analyzer, Pass,
// Diagnostic) closely enough that migrating the passes onto x/tools
// later is a mechanical import swap.
//
// The framework loads packages through `go list -export -deps -json`
// (see load.go): target packages are parsed and type-checked from
// source while their dependencies are imported from the build cache's
// export data, which keeps a full-repo run under a second. Analyzers
// therefore see complete go/types information, not just syntax.
//
// Diagnostics can be suppressed at the offending line (or the line
// above it) with a directive comment carrying a mandatory reason:
//
//	//ranklint:ignore reason the invariant is upheld manually here
//
// A reason-less directive is itself reported, so suppressions stay
// auditable.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one static-analysis pass: a named invariant
// checker run over a single type-checked package at a time.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, -run filters and
	// testdata. By convention it is a single lowercase word.
	Name string

	// Doc is the analyzer's documentation: the first line is a short
	// summary, the rest explains the invariant it encodes and the
	// runtime check it front-runs.
	Doc string

	// Run applies the analyzer to a package. It reports findings via
	// pass.Report and returns an optional result (unused by this
	// driver, kept for x/tools signature compatibility).
	Run func(*Pass) (any, error)
}

// A Pass provides one analyzer run with a single package's syntax and
// type information, and the sink its diagnostics go to.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Graph is the static call graph over every package of the current
	// Run — cross-package in a `./...` run, single-package under the vet
	// unit-checker protocol (analyzers using it degrade gracefully: an
	// edge into an unloaded package resolves to an external node with no
	// outgoing edges).
	Graph *CallGraph

	// Report emits one diagnostic. The runner attaches analyzer
	// identity and applies //ranklint:ignore suppression.
	Report func(Diagnostic)
}

// Reportf emits a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding tied to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if t, ok := p.TypesInfo.Types[e]; ok {
		return t.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.TypesInfo.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}
