package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
)

// vetConfig is the JSON configuration cmd/go writes for a vet tool —
// the `go vet -vettool` unit-checker protocol. Field set mirrors
// x/tools/go/analysis/unitchecker.Config.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunVetUnit executes one unit-checker invocation: it loads the
// package described by the cfg file, runs the analyzers, prints plain
// findings to stderr and returns the number of findings. cmd/go treats
// a nonzero tool exit as a failed vet run and relays stderr, so the
// caller exits 2 when n > 0.
func RunVetUnit(cfgPath string, analyzers []*Analyzer) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 0, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("ranklint: parsing vet config %s: %v", cfgPath, err)
	}

	// Facts protocol: ranklint analyzers exchange no facts, but cmd/go
	// expects the output file to exist.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return 0, err
		}
	}
	if cfg.VetxOnly {
		return 0, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, path := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, nil
			}
			return 0, err
		}
		files = append(files, f)
	}

	imp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErr error
	conf := types.Config{
		Importer:  imp,
		GoVersion: cfg.GoVersion,
		Error: func(err error) {
			if typeErr == nil {
				typeErr = err
			}
		},
	}
	tpkg, _ := conf.Check(cfg.ImportPath, fset, files, info)
	if typeErr != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, fmt.Errorf("ranklint: type-checking %s: %v", cfg.ImportPath, typeErr)
	}

	pkg := &Package{
		PkgPath:   cfg.ImportPath,
		Name:      tpkg.Name(),
		Dir:       cfg.Dir,
		GoFiles:   cfg.GoFiles,
		Fset:      fset,
		Syntax:    files,
		Types:     tpkg,
		TypesInfo: info,
	}
	findings, err := Run([]*Package{pkg}, analyzers)
	if err != nil {
		return 0, err
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f.String())
	}
	return len(findings), nil
}
