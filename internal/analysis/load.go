package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// A Package is one loaded, parsed and type-checked target package.
type Package struct {
	PkgPath string
	Name    string
	Dir     string
	GoFiles []string

	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves patterns with the go tool (run in dir, "" = cwd),
// parses the matched packages and type-checks them from source, with
// dependencies imported from their build-cache export data. Patterns
// follow `go list` syntax (./..., explicit directories, import paths).
// Test files are not loaded: ranklint audits production code.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-deps", "-export",
		"-json=Dir,ImportPath,Name,GoFiles,Export,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s",
			strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: package %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly {
			targets = append(targets, lp)
		}
	}

	fset := token.NewFileSet()
	// One shared gc importer: every dependency (stdlib included) is
	// materialized from export data, never re-type-checked from source.
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, lp := range targets {
		if len(lp.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		var goFiles []string
		for _, name := range lp.GoFiles {
			path := filepath.Join(lp.Dir, name)
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("analysis: %v", err)
			}
			files = append(files, f)
			goFiles = append(goFiles, path)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Implicits:  make(map[ast.Node]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		var typeErrs []error
		conf := types.Config{
			Importer: imp,
			Error:    func(err error) { typeErrs = append(typeErrs, err) },
		}
		tpkg, _ := conf.Check(lp.ImportPath, fset, files, info)
		if len(typeErrs) > 0 {
			return nil, fmt.Errorf("analysis: type-checking %s: %w", lp.ImportPath, errors.Join(typeErrs...))
		}
		pkgs = append(pkgs, &Package{
			PkgPath:   lp.ImportPath,
			Name:      lp.Name,
			Dir:       lp.Dir,
			GoFiles:   goFiles,
			Fset:      fset,
			Syntax:    files,
			Types:     tpkg,
			TypesInfo: info,
		})
	}
	return pkgs, nil
}
