// Package ignore exercises the runner's suppression machinery against
// a synthetic analyzer that flags every call to boom.
package ignore

func boom() {}

func f() {
	boom()
	boom() //ranklint:ignore same-line suppression with a reason
	//ranklint:ignore line-above suppression with a reason
	boom()
	boom()
}

//ranklint:ignorebogus
