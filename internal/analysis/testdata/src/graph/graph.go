// Package graph is the call-graph layer's fixture: direct calls,
// method calls, goroutine closures, method values and a directive
// annotation.
package graph

type client struct{ n int }

func (c *client) do()       { c.n++ }
func (c *client) doMutate() { c.n++ }

//ranklint:allocfree
func kernel(a, b int) int { return a + b }

func helper(c *client) { c.do() }

func handler(c *client) {
	go func() { helper(c) }()
}

func viaValue(c *client) {
	retry(c.doMutate)
}

func retry(f func()) { f() }

func unrelated() int { return kernel(1, 2) }
