package analysis

import (
	"encoding/json"
	"go/ast"
	"strings"
	"testing"
)

// boomAnalyzer flags every call to a function named boom; it exists to
// exercise the runner (suppression, sorting, JSON shape) independently
// of the real passes.
var boomAnalyzer = &Analyzer{
	Name: "boom",
	Doc:  "flags calls to boom",
	Run: func(pass *Pass) (any, error) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "boom" {
					pass.Reportf(call.Pos(), "call to boom")
				}
				return true
			})
		}
		return nil, nil
	},
}

func loadIgnorePkg(t *testing.T) *Package {
	t.Helper()
	pkgs, err := Load("", "./testdata/src/ignore")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("Load matched %d packages, want 1", len(pkgs))
	}
	return pkgs[0]
}

// TestIgnoreDirectives pins the suppression contract: a well-formed
// directive on the finding's line or the line above removes it; a
// directive without a reason is itself reported.
func TestIgnoreDirectives(t *testing.T) {
	pkg := loadIgnorePkg(t)
	findings, err := Run([]*Package{pkg}, []*Analyzer{boomAnalyzer})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}

	var boomLines []int
	var malformed int
	for _, f := range findings {
		switch f.Analyzer {
		case "boom":
			boomLines = append(boomLines, f.Line)
		case "ranklint":
			malformed++
			if !strings.Contains(f.Message, "a reason is required") {
				t.Errorf("malformed-directive message = %q", f.Message)
			}
		default:
			t.Errorf("unexpected analyzer %q in finding %v", f.Analyzer, f)
		}
	}
	// ignore.go calls boom four times: the 2nd is suppressed on its own
	// line, the 3rd by the directive on the line above; 1st and 4th
	// survive (lines 8 and 12).
	if len(boomLines) != 2 || boomLines[0] != 8 || boomLines[1] != 12 {
		t.Errorf("surviving boom findings at lines %v, want [8 12]", boomLines)
	}
	if malformed != 1 {
		t.Errorf("got %d malformed-directive findings, want 1 (//ranklint:ignorebogus)", malformed)
	}
}

// TestFindingJSON pins the -json output shape consumed by tooling.
func TestFindingJSON(t *testing.T) {
	f := Finding{Path: "x.go", Line: 3, Col: 7, Analyzer: "spanend", Message: "m"}
	b, err := json.Marshal(f)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	want := `{"path":"x.go","line":3,"col":7,"analyzer":"spanend","message":"m"}`
	if string(b) != want {
		t.Errorf("Finding JSON = %s, want %s", b, want)
	}
	if got := f.String(); got != "x.go:3:7: spanend: m" {
		t.Errorf("Finding.String() = %q", got)
	}
}
