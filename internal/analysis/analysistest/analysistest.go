// Package analysistest runs an analyzer over a package under the
// calling test's testdata/src directory and compares its findings
// against `// want "regexp"` expectations in the source, mirroring
// golang.org/x/tools/go/analysis/analysistest.
//
// Expectations are trailing comments on the line the diagnostic is
// expected at:
//
//	leak := tr.StartScope("x") // want `never ended`
//
// Multiple expectations may follow one `want`, each a double-quoted or
// backquoted Go string holding a regexp. Findings pass through the real
// runner, including //ranklint:ignore suppression, so directive
// behavior is testable: a suppressed line simply carries no want.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"rankjoin/internal/analysis"
)

// Run loads testdata/src/<pkg> for each named package (relative to the
// test's working directory, i.e. the analyzer's package directory),
// applies the analyzer through the standard runner and checks the
// findings against // want expectations.
func Run(t *testing.T, a *analysis.Analyzer, pkgNames ...string) {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatalf("analysistest: getwd: %v", err)
	}
	for _, name := range pkgNames {
		dir := filepath.Join(wd, "testdata", "src", name)
		if _, err := os.Stat(dir); err != nil {
			t.Fatalf("analysistest: missing testdata package %s: %v", name, err)
		}
		pkgs, err := analysis.Load(wd, "./"+filepath.ToSlash(filepath.Join("testdata", "src", name)))
		if err != nil {
			t.Fatalf("analysistest: loading %s: %v", name, err)
		}
		if len(pkgs) != 1 {
			t.Fatalf("analysistest: pattern %s matched %d packages, want 1", name, len(pkgs))
		}
		checkPackage(t, a, name, pkgs[0])
	}
}

type key struct {
	path string
	line int
}

func checkPackage(t *testing.T, a *analysis.Analyzer, name string, pkg *analysis.Package) {
	t.Helper()
	findings, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest[%s/%s]: %v", a.Name, name, err)
	}

	wants := make(map[key][]*regexp.Regexp)
	for _, file := range pkg.Syntax {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				patterns, ok := parseWant(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("analysistest[%s/%s]: %s:%d: bad want regexp %q: %v",
							a.Name, name, pos.Filename, pos.Line, p, err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	matched := make(map[*regexp.Regexp]bool)
	for _, f := range findings {
		k := key{f.Path, f.Line}
		ok := false
		for _, re := range wants[k] {
			if re.MatchString(f.Message) {
				matched[re] = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("analysistest[%s/%s]: unexpected finding at %s:%d: %s",
				a.Name, name, f.Path, f.Line, f.Message)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			if !matched[re] {
				t.Errorf("analysistest[%s/%s]: no finding at %s:%d matched %q",
					a.Name, name, k.path, k.line, re)
			}
		}
	}
}

// parseWant extracts the expectation regexps from a `// want` comment.
// It returns ok=false for comments that are not want directives.
func parseWant(comment string) ([]string, bool) {
	text, isLine := strings.CutPrefix(comment, "//")
	if !isLine {
		return nil, false // /* */ comments are not expectation carriers
	}
	text = strings.TrimSpace(text)
	rest, isWant := strings.CutPrefix(text, "want ")
	if !isWant {
		return nil, false
	}
	var out []string
	rest = strings.TrimSpace(rest)
	for rest != "" {
		switch rest[0] {
		case '"':
			end := findStringEnd(rest)
			if end < 0 {
				return nil, false
			}
			s, err := strconv.Unquote(rest[:end+1])
			if err != nil {
				return nil, false
			}
			out = append(out, s)
			rest = strings.TrimSpace(rest[end+1:])
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				return nil, false
			}
			out = append(out, rest[1:end+1])
			rest = strings.TrimSpace(rest[end+2:])
		default:
			return nil, false
		}
	}
	if len(out) == 0 {
		return nil, false
	}
	return out, true
}

// findStringEnd returns the index of the closing quote of the
// double-quoted Go string starting at s[0], honoring escapes.
func findStringEnd(s string) int {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return i
		}
	}
	return -1
}

// Fprint is a debugging helper for analyzer development: it dumps the
// findings of one run, formatted as the CLI would print them.
func Fprint(findings []analysis.Finding) string {
	var b strings.Builder
	for _, f := range findings {
		fmt.Fprintln(&b, f.String())
	}
	return b.String()
}
