package analysis

import (
	"strings"
	"testing"
)

func loadGraphPkg(t *testing.T) *CallGraph {
	t.Helper()
	pkgs, err := Load("", "./testdata/src/graph")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("Load matched %d packages, want 1", len(pkgs))
	}
	return BuildCallGraph(pkgs)
}

func node(t *testing.T, g *CallGraph, suffix string) *FuncNode {
	t.Helper()
	for _, n := range g.Decls() {
		if strings.HasSuffix(n.Name, suffix) {
			return n
		}
	}
	t.Fatalf("no node with suffix %q", suffix)
	return nil
}

// TestCallGraphEdges pins edge construction: calls inside goroutine
// closures attribute to the enclosing declaration, and method values
// produce reference (non-direct) edges.
func TestCallGraphEdges(t *testing.T) {
	g := loadGraphPkg(t)

	handler := node(t, g, ".handler")
	var toHelper *CallEdge
	for i, e := range handler.Out {
		if strings.HasSuffix(e.Callee.Name, ".helper") {
			toHelper = &handler.Out[i]
		}
	}
	if toHelper == nil {
		t.Fatalf("handler has no edge to helper (closure body not attributed); edges: %v", edgeNames(handler))
	}
	if !toHelper.Direct {
		t.Errorf("handler → helper should be a direct call edge")
	}

	viaValue := node(t, g, ".viaValue")
	var toMutate *CallEdge
	for i, e := range viaValue.Out {
		if strings.HasSuffix(e.Callee.Name, ".doMutate") {
			toMutate = &viaValue.Out[i]
		}
	}
	if toMutate == nil {
		t.Fatalf("viaValue has no edge to doMutate (method value not recorded); edges: %v", edgeNames(viaValue))
	}
	if toMutate.Direct {
		t.Errorf("viaValue → doMutate is a method value, want a reference (non-direct) edge")
	}
}

// TestCallGraphReaching pins the transitive fact computation: exactly
// helper, handler (and do itself) reach the hedged method.
func TestCallGraphReaching(t *testing.T) {
	g := loadGraphPkg(t)
	isDo := func(n *FuncNode) bool { return strings.HasSuffix(n.Name, "client).do") }
	set := g.Reaching(isDo)

	for _, want := range []string{".helper", ".handler", "client).do"} {
		if !set[node(t, g, want)] {
			t.Errorf("Reaching(do) should contain %s", want)
		}
	}
	for _, wantNot := range []string{".viaValue", ".retry", ".kernel", ".unrelated"} {
		if set[node(t, g, wantNot)] {
			t.Errorf("Reaching(do) should not contain %s", wantNot)
		}
	}

	path := g.PathTo(node(t, g, ".handler"), isDo)
	if len(path) != 2 {
		t.Fatalf("PathTo(handler, do) = %d edges, want 2 (handler → helper → do)", len(path))
	}
	if s := PathString(node(t, g, ".handler"), path); !strings.Contains(s, "helper") || !strings.Contains(s, "do") {
		t.Errorf("PathString = %q, want handler → helper → do shape", s)
	}
}

// TestCallGraphDirectives pins //ranklint:<name> fact collection.
func TestCallGraphDirectives(t *testing.T) {
	g := loadGraphPkg(t)
	ann := g.Annotated("allocfree")
	if len(ann) != 1 || !strings.HasSuffix(ann[0].Name, ".kernel") {
		t.Fatalf("Annotated(allocfree) = %v, want exactly kernel", nodeNames(ann))
	}
	if node(t, g, ".helper").Directive("allocfree") {
		t.Errorf("helper should not carry the allocfree directive")
	}
}

func edgeNames(n *FuncNode) []string {
	var out []string
	for _, e := range n.Out {
		out = append(out, e.Callee.Name)
	}
	return out
}

func nodeNames(ns []*FuncNode) []string {
	var out []string
	for _, n := range ns {
		out = append(out, n.Name)
	}
	return out
}
