package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// IgnoreDirective is the comment directive that suppresses ranklint
// diagnostics on its own line or the line directly below it. A reason
// is mandatory; a bare directive is itself a finding.
const IgnoreDirective = "//ranklint:ignore"

// A Finding is one resolved diagnostic: position plus the analyzer
// that produced it, ready for text or JSON rendering.
type Finding struct {
	Path     string `json:"path"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Path, f.Line, f.Col, f.Analyzer, f.Message)
}

// ignoreSet records, per file, the lines carrying a well-formed
// //ranklint:ignore directive. Malformed directives (no reason) are
// collected separately so the runner can report them.
type ignoreSet struct {
	lines     map[string]map[int]bool
	malformed []Finding
}

// collectIgnores scans every comment in the package for ignore
// directives.
func collectIgnores(pkg *Package) *ignoreSet {
	set := &ignoreSet{lines: make(map[string]map[int]bool)}
	for _, file := range pkg.Syntax {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, IgnoreDirective) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, IgnoreDirective)
				pos := pkg.Fset.Position(c.Pos())
				if strings.TrimSpace(rest) == "" || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					set.malformed = append(set.malformed, Finding{
						Path: pos.Filename, Line: pos.Line, Col: pos.Column,
						Analyzer: "ranklint",
						Message:  "malformed //ranklint:ignore directive: a reason is required (//ranklint:ignore <reason>)",
					})
					continue
				}
				if set.lines[pos.Filename] == nil {
					set.lines[pos.Filename] = make(map[int]bool)
				}
				set.lines[pos.Filename][pos.Line] = true
			}
		}
	}
	return set
}

// suppressed reports whether a finding at (path, line) is covered by a
// directive on the same line or the line above.
func (s *ignoreSet) suppressed(path string, line int) bool {
	ls := s.lines[path]
	return ls != nil && (ls[line] || ls[line-1])
}

// A Result is one full runner invocation's outcome: the surviving
// findings plus, per analyzer, how many diagnostics a reasoned
// //ranklint:ignore directive waived — the audit trail CI artifacts
// carry so suppressions stay visible.
type Result struct {
	Findings   []Finding      `json:"findings"`
	Suppressed map[string]int `json:"suppressed,omitempty"`
}

// Run applies every analyzer to every package, resolves positions,
// applies suppression directives and returns the surviving findings
// sorted by (path, line, col, analyzer).
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	res, err := RunAll(pkgs, analyzers)
	if err != nil {
		return nil, err
	}
	return res.Findings, nil
}

// RunAll is Run plus per-analyzer suppression counts. The call graph
// over pkgs is built once and shared by every pass.
func RunAll(pkgs []*Package, analyzers []*Analyzer) (*Result, error) {
	graph := BuildCallGraph(pkgs)
	res := &Result{Suppressed: make(map[string]int)}
	var findings []Finding
	for _, pkg := range pkgs {
		ignores := collectIgnores(pkg)
		findings = append(findings, ignores.malformed...)
		for _, a := range analyzers {
			diags, err := runOne(pkg, a, graph)
			if err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.PkgPath, err)
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				if ignores.suppressed(pos.Filename, pos.Line) {
					res.Suppressed[a.Name]++
					continue
				}
				findings = append(findings, Finding{
					Path: pos.Filename, Line: pos.Line, Col: pos.Column,
					Analyzer: a.Name, Message: d.Message,
				})
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Path != b.Path {
			return a.Path < b.Path
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	res.Findings = findings
	return res, nil
}

func runOne(pkg *Package, a *Analyzer, graph *CallGraph) (diags []Diagnostic, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("analyzer panicked: %v", r)
		}
	}()
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Syntax,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		Graph:     graph,
		Report:    func(d Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		return nil, err
	}
	return diags, nil
}

// Inspect walks every file in the pass in depth-first order, calling f
// for each node; f returning false prunes the subtree (ast.Inspect
// semantics, lifted to the whole package).
func Inspect(pass *Pass, f func(ast.Node) bool) {
	for _, file := range pass.Files {
		ast.Inspect(file, f)
	}
}

// ExprString renders an expression compactly for diagnostics (only the
// shapes analyzers report on: identifiers, selectors, calls, derefs
// and indexes; anything else falls back to a type-based placeholder).
func ExprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return ExprString(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return ExprString(e.Fun) + "(...)"
	case *ast.StarExpr:
		return "*" + ExprString(e.X)
	case *ast.IndexExpr:
		return ExprString(e.X) + "[...]"
	case *ast.ParenExpr:
		return "(" + ExprString(e.X) + ")"
	}
	return fmt.Sprintf("<%T>", e)
}

// PosLine returns the line of pos within fset, for analyzers that need
// line-relative reasoning.
func PosLine(fset *token.FileSet, pos token.Pos) int { return fset.Position(pos).Line }
