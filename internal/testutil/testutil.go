// Package testutil provides deterministic random dataset generation
// shared by the test suites of the join packages.
package testutil

import (
	"math/rand"

	"rankjoin/internal/rankings"
)

// RandRanking draws a duplicate-free top-k ranking with items from
// [0, domain).
func RandRanking(rng *rand.Rand, id int64, k, domain int) *rankings.Ranking {
	if domain < k {
		panic("testutil: domain smaller than k")
	}
	items := make([]rankings.Item, 0, k)
	seen := make(map[rankings.Item]struct{}, k)
	for len(items) < k {
		it := rankings.Item(rng.Intn(domain))
		if _, dup := seen[it]; dup {
			continue
		}
		seen[it] = struct{}{}
		items = append(items, it)
	}
	r := rankings.MustNew(id, items)
	r.Index()
	return r
}

// RandDataset draws n rankings of length k over a domain of the given
// size. Small domains yield many near pairs; large domains few.
func RandDataset(rng *rand.Rand, n, k, domain int) []*rankings.Ranking {
	rs := make([]*rankings.Ranking, n)
	for i := range rs {
		rs[i] = RandRanking(rng, int64(i), k, domain)
	}
	return rs
}

// ClusteredDataset draws base "seed" rankings and, around each, a few
// near-duplicates obtained by swapping adjacent positions or replacing
// a bottom item — producing datasets with genuine clusters at small
// Footrule distances, the regime the CL pipeline targets.
func ClusteredDataset(rng *rand.Rand, seeds, perSeed, k, domain int) []*rankings.Ranking {
	var out []*rankings.Ranking
	id := int64(0)
	for s := 0; s < seeds; s++ {
		base := RandRanking(rng, id, k, domain)
		id++
		out = append(out, base)
		for m := 0; m < perSeed; m++ {
			items := make([]rankings.Item, k)
			copy(items, base.Items)
			// A couple of gentle perturbations.
			for t := 0; t < 1+rng.Intn(2); t++ {
				switch rng.Intn(3) {
				case 0: // swap adjacent ranks
					i := rng.Intn(k - 1)
					items[i], items[i+1] = items[i+1], items[i]
				case 1: // replace the bottom item with a fresh one
					for {
						it := rankings.Item(rng.Intn(domain))
						fresh := true
						for _, have := range items {
							if have == it {
								fresh = false
								break
							}
						}
						if fresh {
							items[k-1] = it
							break
						}
					}
				case 2: // rotate the bottom two
					items[k-2], items[k-1] = items[k-1], items[k-2]
				}
			}
			r := rankings.MustNew(id, items)
			r.Index()
			id++
			out = append(out, r)
		}
	}
	return out
}
