// Package testutil provides deterministic random dataset generation
// shared by the test suites of the join packages.
package testutil

import (
	"math/rand"

	"rankjoin/internal/rankings"
)

// RandRanking draws a duplicate-free top-k ranking with items from
// [0, domain).
func RandRanking(rng *rand.Rand, id int64, k, domain int) *rankings.Ranking {
	if domain < k {
		panic("testutil: domain smaller than k")
	}
	items := make([]rankings.Item, 0, k)
	seen := make(map[rankings.Item]struct{}, k)
	for len(items) < k {
		it := rankings.Item(rng.Intn(domain))
		if _, dup := seen[it]; dup {
			continue
		}
		seen[it] = struct{}{}
		items = append(items, it)
	}
	r := rankings.MustNew(id, items)
	r.Index()
	return r
}

// RandDataset draws n rankings of length k over a domain of the given
// size. Small domains yield many near pairs; large domains few.
func RandDataset(rng *rand.Rand, n, k, domain int) []*rankings.Ranking {
	rs := make([]*rankings.Ranking, n)
	for i := range rs {
		rs[i] = RandRanking(rng, int64(i), k, domain)
	}
	return rs
}

// ZipfDataset draws n rankings of length k whose items follow a Zipf
// distribution with skew s > 1 over [0, domain) — the frequency shape
// of the paper's real datasets (and the regime the δ repartitioning of
// §6 exists for: a few items appear in almost every ranking, so their
// posting lists explode). domain must be at least 2k so the rejection
// loop terminates; the most frequent items are shared by nearly all
// rankings.
func ZipfDataset(rng *rand.Rand, n, k, domain int, s float64) []*rankings.Ranking {
	if domain < 2*k {
		panic("testutil: zipf domain smaller than 2k")
	}
	zipf := rand.NewZipf(rng, s, 1, uint64(domain-1))
	rs := make([]*rankings.Ranking, n)
	for i := range rs {
		items := make([]rankings.Item, 0, k)
		seen := make(map[rankings.Item]struct{}, k)
		tries := 0
		for len(items) < k {
			var it rankings.Item
			if tries < 64*k {
				it = rankings.Item(zipf.Uint64())
				tries++
			} else {
				// Heavy skew can make fresh draws rare; fall back to a
				// uniform draw so generation always terminates.
				it = rankings.Item(rng.Intn(domain))
			}
			if _, dup := seen[it]; dup {
				continue
			}
			seen[it] = struct{}{}
			items = append(items, it)
		}
		r := rankings.MustNew(int64(i), items)
		r.Index()
		rs[i] = r
	}
	return rs
}

// DisjointDataset draws blocks of rankings over mutually disjoint item
// domains: every cross-block pair is at the maximum Footrule distance
// k(k+1) and shares no item — the degenerate regime where prefix
// filtering is incomplete and the pipelines must fall back to the
// catch-all group (θ = 1 admits all of these pairs).
func DisjointDataset(rng *rand.Rand, blocks, perBlock, k, blockDomain int) []*rankings.Ranking {
	if blockDomain < k {
		panic("testutil: block domain smaller than k")
	}
	var out []*rankings.Ranking
	id := int64(0)
	for b := 0; b < blocks; b++ {
		base := b * blockDomain
		for i := 0; i < perBlock; i++ {
			items := make([]rankings.Item, 0, k)
			seen := make(map[rankings.Item]struct{}, k)
			for len(items) < k {
				it := rankings.Item(base + rng.Intn(blockDomain))
				if _, dup := seen[it]; dup {
					continue
				}
				seen[it] = struct{}{}
				items = append(items, it)
			}
			r := rankings.MustNew(id, items)
			r.Index()
			id++
			out = append(out, r)
		}
	}
	return out
}

// WithDuplicates appends extra exact copies of randomly chosen existing
// rankings under fresh ids — distance-0 pairs that stress tie-breaking
// (kNN boundary order, θ = 0 joins) and dedup paths.
func WithDuplicates(rng *rand.Rand, rs []*rankings.Ranking, extra int) []*rankings.Ranking {
	if len(rs) == 0 {
		return rs
	}
	id := int64(0)
	for _, r := range rs {
		if r.ID >= id {
			id = r.ID + 1
		}
	}
	out := rs
	for i := 0; i < extra; i++ {
		src := rs[rng.Intn(len(rs))]
		items := make([]rankings.Item, len(src.Items))
		copy(items, src.Items)
		r := rankings.MustNew(id, items)
		r.Index()
		id++
		out = append(out, r)
	}
	return out
}

// ClusteredDataset draws base "seed" rankings and, around each, a few
// near-duplicates obtained by swapping adjacent positions or replacing
// a bottom item — producing datasets with genuine clusters at small
// Footrule distances, the regime the CL pipeline targets.
func ClusteredDataset(rng *rand.Rand, seeds, perSeed, k, domain int) []*rankings.Ranking {
	var out []*rankings.Ranking
	id := int64(0)
	for s := 0; s < seeds; s++ {
		base := RandRanking(rng, id, k, domain)
		id++
		out = append(out, base)
		for m := 0; m < perSeed; m++ {
			items := make([]rankings.Item, k)
			copy(items, base.Items)
			// A couple of gentle perturbations. k = 1 has no adjacent
			// pairs to swap, so only item replacement applies there.
			for t := 0; t < 1+rng.Intn(2); t++ {
				move := rng.Intn(3)
				if k == 1 {
					move = 1
				}
				switch move {
				case 0: // swap adjacent ranks
					i := rng.Intn(k - 1)
					items[i], items[i+1] = items[i+1], items[i]
				case 1: // replace the bottom item with a fresh one
					for {
						it := rankings.Item(rng.Intn(domain))
						fresh := true
						for _, have := range items {
							if have == it {
								fresh = false
								break
							}
						}
						if fresh {
							items[k-1] = it
							break
						}
					}
				case 2: // rotate the bottom two
					items[k-2], items[k-1] = items[k-1], items[k-2]
				}
			}
			r := rankings.MustNew(id, items)
			r.Index()
			id++
			out = append(out, r)
		}
	}
	return out
}
