// Package vj implements the Vernica-Join adaptation to top-k rankings
// of §4 of the paper on the flow engine, in both variants evaluated:
//
//   - VJ: per-partition PPJoin-style inverted-index join, and
//   - VJ-NL: per-partition nested-loop join over iterators (§4.1), the
//     Spark-friendlier formulation.
//
// It also houses the generic token-group join machinery — prefix
// emission, grouping, and the §6 repartitioning of oversized posting
// lists — which the CL/CL-P pipeline reuses for its clustering and
// centroid-joining phases with its own kernels.
package vj

import (
	"hash/fnv"

	"rankjoin/internal/flow"
	"rankjoin/internal/rankings"
)

// GroupJoinOptions configures JoinTokenGroups. T is the record type
// grouped under each token: plain rankings for VJ, type-tagged
// centroids for the CL joining phase. R is the kernel output type
// (rankings.Pair for VJ, core's tagged centroid pairs for CL).
type GroupJoinOptions[T, R any] struct {
	// Partitions is the shuffle partition count for the grouping
	// stage; non-positive uses the context default.
	Partitions int
	// Delta is the §6 partitioning threshold δ: posting lists longer
	// than Delta are split into sub-partitions of at most Delta
	// records. Zero or negative disables repartitioning.
	Delta int
	// RepartitionFactor scales the partition count of the
	// post-repartitioning stages (the paper increases the number of
	// partitions when splitting); zero means 2.
	RepartitionFactor int
	// SubKey must return a stable identity for a record; it seeds the
	// deterministic "random" secondary key assignment of records to
	// sub-partitions.
	SubKey func(T) int64
	// Self joins the records of one (sub-)partition against each
	// other. item is the posting-list token the group belongs to.
	Self func(item rankings.Item, members []T) []R
	// Cross joins two sub-partitions of the same posting list against
	// each other (the R-S join of Algorithm 3). Only used when Delta>0.
	Cross func(item rankings.Item, a, b []T) []R
	// Stats, when non-nil, receives group accounting.
	Stats *Stats
}

// PrefixGroups runs the prefix-emission and grouping stages shared by
// every pipeline in the paper: each record is emitted once per prefix
// item and records sharing an item are brought to the same partition.
func PrefixGroups[T any](ds *flow.Dataset[T], prefixItems func(T) []rankings.Item, parts int) *flow.Dataset[flow.KV[rankings.Item, []T]] {
	keyed := flow.FlatMap(ds, func(rec T) []flow.KV[rankings.Item, T] {
		items := prefixItems(rec)
		out := make([]flow.KV[rankings.Item, T], len(items))
		for i, it := range items {
			out[i] = flow.KV[rankings.Item, T]{K: it, V: rec}
		}
		return out
	})
	return flow.GroupByKey(keyed, parts)
}

// subKeyOf assigns a record to one of n sub-partitions. The assignment
// is the paper's random secondary key, made deterministic by hashing
// the record identity with the token, so reruns and tests are stable
// while records still spread evenly.
func subKeyOf(id int64, item rankings.Item, n int) int {
	h := fnv.New64a()
	var buf [12]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(id >> (8 * i))
	}
	for i := 0; i < 4; i++ {
		buf[8+i] = byte(uint32(item) >> (8 * i))
	}
	h.Write(buf[:])
	return int(h.Sum64() % uint64(n))
}

// JoinTokenGroups turns token groups into join pairs, Algorithm 3
// style: groups within δ are joined directly by the Self kernel; larger
// groups are split into sub-partitions that are redistributed via the
// engine shuffle, self-joined, and then R-S-joined pairwise.
func JoinTokenGroups[T, R any](groups *flow.Dataset[flow.KV[rankings.Item, []T]], opts GroupJoinOptions[T, R]) *flow.Dataset[R] {
	ctx := groups.Context()
	parts := opts.Partitions
	if parts <= 0 {
		parts = ctx.Config().DefaultPartitions
	}
	// Posting-list length distribution — the skew signal δ reacts to.
	listHist := ctx.Histogram("join/posting_list_len")

	if opts.Delta <= 0 {
		// No repartitioning: one kernel invocation per posting list.
		return flow.FlatMap(groups, func(g flow.KV[rankings.Item, []T]) []R {
			opts.Stats.addGroup(len(g.V), false)
			listHist.Observe(int64(len(g.V)))
			return opts.Self(g.K, g.V)
		})
	}

	factor := opts.RepartitionFactor
	if factor <= 0 {
		factor = 2
	}

	// Both branches below traverse the grouped dataset; cache it so the
	// group-building pass runs once (the iterative-processing idiom the
	// paper adopts from Spark).
	groups = groups.Cache()

	// I_{<δ}: small posting lists are joined as before.
	small := flow.Filter(groups, func(g flow.KV[rankings.Item, []T]) bool {
		return len(g.V) <= opts.Delta
	})
	smallPairs := flow.FlatMap(small, func(g flow.KV[rankings.Item, []T]) []R {
		opts.Stats.addGroup(len(g.V), false)
		listHist.Observe(int64(len(g.V)))
		return opts.Self(g.K, g.V)
	})

	// I_{>δ}: split into sub-partitions of at most δ records using the
	// secondary key, then redistribute by the composite (item, sub)
	// key across an increased number of partitions.
	large := flow.Filter(groups, func(g flow.KV[rankings.Item, []T]) bool {
		return len(g.V) > opts.Delta
	})
	type subKey struct {
		Item rankings.Item
		Sub  int
	}
	subs := flow.FlatMap(large, func(g flow.KV[rankings.Item, []T]) []flow.KV[subKey, []T] {
		opts.Stats.addGroup(len(g.V), true)
		listHist.Observe(int64(len(g.V)))
		n := (len(g.V) + opts.Delta - 1) / opts.Delta
		chunks := make([][]T, n)
		for _, rec := range g.V {
			s := subKeyOf(opts.SubKey(rec), g.K, n)
			chunks[s] = append(chunks[s], rec)
		}
		out := make([]flow.KV[subKey, []T], 0, n)
		for s, chunk := range chunks {
			if len(chunk) > 0 {
				out = append(out, flow.KV[subKey, []T]{K: subKey{Item: g.K, Sub: s}, V: chunk})
			}
		}
		return out
	})
	subsSh := flow.PartitionByKey(subs, parts*factor)

	// Per-sub-partition self joins.
	subSelf := flow.FlatMap(subsSh, func(g flow.KV[subKey, []T]) []R {
		return opts.Self(g.K.Item, g.V)
	})

	// Self-join the sub-partitions by item id and R-S join every
	// ordered pair of sub-partitions (secondary key of the left below
	// the right, Algorithm 3 step 5 / Figure 5).
	byItem := flow.Map(subsSh, func(g flow.KV[subKey, []T]) flow.KV[rankings.Item, flow.KV[int, []T]] {
		return flow.KV[rankings.Item, flow.KV[int, []T]]{
			K: g.K.Item,
			V: flow.KV[int, []T]{K: g.K.Sub, V: g.V},
		}
	})
	joined := flow.Join(byItem, byItem, parts*factor)
	crossPairs := flow.FlatMap(joined, func(row flow.KV[rankings.Item, flow.Joined[flow.KV[int, []T], flow.KV[int, []T]]]) []R {
		if row.V.Left.K >= row.V.Right.K {
			return nil
		}
		return opts.Cross(row.K, row.V.Left.V, row.V.Right.V)
	})

	return flow.Union(smallPairs, flow.Union(subSelf, crossPairs))
}
