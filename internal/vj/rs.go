package vj

import (
	"rankjoin/internal/filters"
	"rankjoin/internal/flow"
	"rankjoin/internal/ppjoin"
	"rankjoin/internal/rankings"
)

// This file extends the paper's self-join pipelines to R-S joins
// between two datasets — the natural next operation once the machinery
// exists (the paper's Algorithm 3 already R-S-joins sub-partitions
// internally). Result pairs are (R-side id, S-side id); the two
// datasets have independent id spaces, so pairs are NOT canonicalized
// and A always refers to the R side.

// tagged marks a record with its side.
type tagged struct {
	R     *rankings.Ranking
	FromR bool
}

// JoinRS finds all pairs (r ∈ R, s ∈ S) with normalized Footrule
// distance at most opts.Theta. The canonical item order is computed
// over the union of both datasets. opts.Variant is ignored (the kernel
// is always the nested cross loop with the position filter);
// opts.Delta and opts.LeastTokenDedup are honored.
func JoinRS(ctx *flow.Context, r, s []*rankings.Ranking, opts Options) ([]rankings.Pair, error) {
	all := make([]*rankings.Ranking, 0, len(r)+len(s))
	all = append(all, r...)
	all = append(all, s...)
	k, err := opts.validate(all)
	if err != nil {
		return nil, err
	}
	if len(r) == 0 || len(s) == 0 {
		return nil, nil
	}
	maxDist := rankings.Threshold(opts.Theta, k)

	recs := make([]tagged, 0, len(all))
	for _, x := range r {
		recs = append(recs, tagged{R: x, FromR: true})
	}
	for _, x := range s {
		recs = append(recs, tagged{R: x, FromR: false})
	}
	ds := flow.Parallelize(ctx, recs, opts.Partitions)

	ord, err := opts.resolveOrderTagged(ds)
	if err != nil {
		return nil, err
	}
	ordB := flow.NewBroadcast(ctx, ord)

	prefix := filters.PrefixOverlap(maxDist, k)
	// Degenerate regime: thresholds admitting zero-overlap pairs need
	// the catch-all group (see CatchAllItem); the kernels here are
	// nested cross loops, so that group is handled completely.
	needAll := filters.MinOverlap(maxDist, k) == 0
	groups := PrefixGroups(ds, func(t tagged) []rankings.Item {
		items := ordB.Value().Prefix(t.R, prefix)
		if needAll {
			items = append(append([]rankings.Item(nil), items...), rankings.CatchAllItem)
		}
		return items
	}, opts.Partitions)

	// emit verifies one (R-side x, S-side y) candidate, tallying its
	// fate so R-S joins honor the same filter-counter conservation law
	// as the self-joins.
	emit := func(item rankings.Item, x, y tagged, st *ppjoin.Stats, out []rankings.Pair) []rankings.Pair {
		if opts.LeastTokenDedup &&
			minCommonToken(ordB.Value(), prefix, x.R, y.R) != item {
			return out
		}
		st.Candidates++
		if xk := x.R.K(); y.R.K() == xk {
			xsig, xpop := x.R.Signature()
			ysig, ypop := y.R.Signature()
			if filters.SignaturePrune(xsig, xpop, ysig, ypop, xk, maxDist) {
				st.PrunedSignature++
				return out
			}
		}
		if filters.PositionPrune(x.R, y.R, maxDist) {
			st.PrunedPosition++
			return out
		}
		st.Verified++
		if d, ok := rankings.FootruleWithin(x.R, y.R, maxDist); ok {
			st.Results++
			out = append(out, rankings.Pair{A: x.R.ID, B: y.R.ID, Dist: d})
		}
		return out
	}
	fc := ctx.Filters()
	selfKernel := func(item rankings.Item, members []tagged) []rankings.Pair {
		var st ppjoin.Stats
		var out []rankings.Pair
		for _, a := range members {
			if !a.FromR {
				continue
			}
			for _, b := range members {
				if b.FromR {
					continue
				}
				out = emit(item, a, b, &st, out)
			}
		}
		opts.Stats.AddKernel(st)
		fc.Add(st.FilterDelta())
		return out
	}
	crossKernel := func(item rankings.Item, as, bs []tagged) []rankings.Pair {
		var st ppjoin.Stats
		var out []rankings.Pair
		for _, a := range as {
			for _, b := range bs {
				switch {
				case a.FromR && !b.FromR:
					out = emit(item, a, b, &st, out)
				case !a.FromR && b.FromR:
					out = emit(item, b, a, &st, out)
				}
			}
		}
		opts.Stats.AddKernel(st)
		fc.Add(st.FilterDelta())
		return out
	}

	pairs := JoinTokenGroups(groups, GroupJoinOptions[tagged, rankings.Pair]{
		Partitions:        opts.Partitions,
		Delta:             opts.Delta,
		RepartitionFactor: opts.RepartitionFactor,
		SubKey: func(t tagged) int64 {
			// Disambiguate colliding ids across sides so sub-partition
			// assignment stays deterministic per record.
			if t.FromR {
				return t.R.ID * 2
			}
			return t.R.ID*2 + 1
		},
		Self:  selfKernel,
		Cross: crossKernel,
		Stats: opts.Stats,
	})

	var out *flow.Dataset[rankings.Pair]
	if opts.LeastTokenDedup {
		out = pairs
	} else {
		out = flow.Distinct(pairs, opts.Partitions)
	}
	res, err := out.Collect()
	if err != nil {
		return nil, err
	}
	rankings.SortPairs(res)
	return res, nil
}

// resolveOrderTagged computes the frequency order over the tagged
// union dataset (or honors a supplied/identity order).
func (o Options) resolveOrderTagged(ds *flow.Dataset[tagged]) (*rankings.Order, error) {
	if o.Order != nil {
		return o.Order, nil
	}
	if o.SkipReorder {
		return rankings.IdentityOrder(), nil
	}
	plain := flow.Map(ds, func(t tagged) *rankings.Ranking { return t.R })
	return ComputeOrder(plain, o.Partitions)
}
