package vj

import (
	"fmt"
	"sync/atomic"

	"rankjoin/internal/ppjoin"
)

// Stats aggregates, across all concurrently executing partition
// kernels, the candidate/verification accounting plus group-level
// observations (posting-list sizes, repartition decisions). All fields
// are safe for concurrent use; a nil *Stats is a valid no-op sink.
type Stats struct {
	Candidates      atomic.Int64
	PrunedPrefix    atomic.Int64
	PrunedSignature atomic.Int64
	PrunedPosition  atomic.Int64
	Verified        atomic.Int64
	Results         atomic.Int64

	Groups       atomic.Int64 // posting lists processed
	GroupsSplit  atomic.Int64 // posting lists above δ, repartitioned
	LargestGroup atomic.Int64
}

// AddKernel folds one kernel run's counters in.
func (s *Stats) AddKernel(k ppjoin.Stats) {
	if s == nil {
		return
	}
	s.Candidates.Add(k.Candidates)
	s.PrunedPrefix.Add(k.PrunedPrefix)
	s.PrunedSignature.Add(k.PrunedSignature)
	s.PrunedPosition.Add(k.PrunedPosition)
	s.Verified.Add(k.Verified)
	s.Results.Add(k.Results)
}

func (s *Stats) addGroup(size int, split bool) {
	if s == nil {
		return
	}
	s.Groups.Add(1)
	if split {
		s.GroupsSplit.Add(1)
	}
	for {
		cur := s.LargestGroup.Load()
		if int64(size) <= cur || s.LargestGroup.CompareAndSwap(cur, int64(size)) {
			return
		}
	}
}

// Snapshot returns plain values for reporting.
func (s *Stats) Snapshot() StatsSnapshot {
	if s == nil {
		return StatsSnapshot{}
	}
	return StatsSnapshot{
		Candidates:      s.Candidates.Load(),
		PrunedPrefix:    s.PrunedPrefix.Load(),
		PrunedSignature: s.PrunedSignature.Load(),
		PrunedPosition:  s.PrunedPosition.Load(),
		Verified:        s.Verified.Load(),
		Results:         s.Results.Load(),
		Groups:          s.Groups.Load(),
		GroupsSplit:     s.GroupsSplit.Load(),
		LargestGroup:    s.LargestGroup.Load(),
	}
}

// StatsSnapshot is a point-in-time copy of Stats.
type StatsSnapshot struct {
	Candidates      int64
	PrunedPrefix    int64
	PrunedSignature int64
	PrunedPosition  int64
	Verified        int64
	Results         int64
	Groups          int64
	GroupsSplit     int64
	LargestGroup    int64
}

func (s StatsSnapshot) String() string {
	return fmt.Sprintf("candidates=%d prunedPrefix=%d prunedSignature=%d prunedPosition=%d verified=%d results=%d groups=%d split=%d largest=%d",
		s.Candidates, s.PrunedPrefix, s.PrunedSignature, s.PrunedPosition, s.Verified, s.Results, s.Groups, s.GroupsSplit, s.LargestGroup)
}
