package vj

import (
	"fmt"

	"rankjoin/internal/filters"
	"rankjoin/internal/flow"
	"rankjoin/internal/obs"
	"rankjoin/internal/ppjoin"
	"rankjoin/internal/rankings"
)

// Variant selects the per-partition join kernel.
type Variant int

const (
	// IndexJoin is the classic VJ formulation: a PPJoin-style inverted
	// index built over every posting-list partition.
	IndexJoin Variant = iota
	// NestedLoop is the VJ-NL formulation of §4.1: iterator-style
	// nested loops with the position filter, no per-partition index.
	NestedLoop
)

func (v Variant) String() string {
	switch v {
	case IndexJoin:
		return "VJ"
	case NestedLoop:
		return "VJ-NL"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Options configures a VJ-style join.
type Options struct {
	// Theta is the normalized Footrule distance threshold θ ∈ [0, 1].
	Theta float64
	// Variant selects the per-partition kernel (default IndexJoin).
	Variant Variant
	// Partitions is the shuffle partition count (0 = context default).
	Partitions int
	// Order, when non-nil, is a precomputed canonical item ordering;
	// the frequency-counting stage is then skipped. The CL pipeline
	// uses this to order once and join twice (§5 "Ordering").
	Order *rankings.Order
	// SkipReorder disables frequency reordering (identity order) — the
	// §4 ablation: the paper keeps the reordering stage because skewed
	// real-world data profits from it.
	SkipReorder bool
	// Delta is the §6 repartitioning threshold δ; 0 disables splitting.
	Delta int
	// RepartitionFactor scales partition counts after a split (0 = 2).
	RepartitionFactor int
	// LeastTokenDedup, when true, emits each result pair only in the
	// group of the canonically smallest common prefix token instead of
	// deduplicating with a final shuffle — an engine-level alternative
	// to the paper's "remove duplicates at the end" phase, kept as an
	// ablation.
	LeastTokenDedup bool
	// Stats, when non-nil, receives kernel and group accounting.
	Stats *Stats
}

func (o Options) validate(rs []*rankings.Ranking) (k int, err error) {
	if o.Theta < 0 || o.Theta > 1 {
		return 0, fmt.Errorf("vj: theta %v out of [0,1]", o.Theta)
	}
	if len(rs) == 0 {
		return 0, nil
	}
	k = rs[0].K()
	for _, r := range rs {
		if r.K() != k {
			return 0, fmt.Errorf("vj: mixed ranking lengths %d and %d (fixed-length rankings required)", k, r.K())
		}
	}
	return k, nil
}

// Join finds all pairs of rankings with normalized Footrule distance at
// most opts.Theta, using the Vernica-Join adaptation of §4 on the flow
// engine: frequency ordering (broadcast), prefix emission, grouping by
// token, per-group kernel join, final deduplication.
func Join(ctx *flow.Context, rs []*rankings.Ranking, opts Options) ([]rankings.Pair, error) {
	ds := flow.Parallelize(ctx, rs, opts.Partitions)
	pairs, err := JoinDataset(ds, rs, opts)
	if err != nil {
		return nil, err
	}
	return pairs.Collect()
}

// JoinDataset is Join without the final collect, for callers composing
// further stages. rs must be the same records the dataset holds (used
// for ordering when opts.Order is nil).
func JoinDataset(ds *flow.Dataset[*rankings.Ranking], rs []*rankings.Ranking, opts Options) (*flow.Dataset[rankings.Pair], error) {
	k, err := opts.validate(rs)
	if err != nil {
		return nil, err
	}
	ctx := ds.Context()
	if len(rs) == 0 {
		return flow.Parallelize(ctx, []rankings.Pair(nil), 1), nil
	}
	maxDist := rankings.Threshold(opts.Theta, k)

	ord, err := ResolveOrder(ds, opts)
	if err != nil {
		return nil, err
	}
	ordB := flow.NewBroadcast(ctx, ord)

	prefix := filters.PrefixOverlap(maxDist, k)
	// Degenerate regime: a threshold this loose admits zero-overlap
	// result pairs, which no posting list can deliver — route every
	// ranking through the catch-all group as well (see CatchAllItem).
	needAll := filters.MinOverlap(maxDist, k) == 0
	groups := PrefixGroups(ds, func(r *rankings.Ranking) []rankings.Item {
		items := ordB.Value().Prefix(r, prefix)
		if needAll {
			items = append(append([]rankings.Item(nil), items...), rankings.CatchAllItem)
		}
		return items
	}, opts.Partitions)

	pairs := JoinTokenGroups(groups, GroupJoinOptions[*rankings.Ranking, rankings.Pair]{
		Partitions:        opts.Partitions,
		Delta:             opts.Delta,
		RepartitionFactor: opts.RepartitionFactor,
		SubKey:            func(r *rankings.Ranking) int64 { return r.ID },
		Self:              selfKernel(ordB, ctx.Filters(), prefix, maxDist, opts),
		Cross:             crossKernel(ordB, ctx.Filters(), prefix, maxDist, opts),
		Stats:             opts.Stats,
	})

	if opts.LeastTokenDedup {
		// Each pair was emitted exactly once; no dedup shuffle needed.
		return pairs, nil
	}
	return flow.Distinct(pairs, opts.Partitions), nil
}

// ResolveOrder returns the canonical ordering the pipeline will use:
// the supplied one, the identity order when reordering is disabled, or
// a freshly computed frequency order via a distributed count — the
// first VJ phase of §3.1/§4.
func ResolveOrder(ds *flow.Dataset[*rankings.Ranking], opts Options) (*rankings.Order, error) {
	if opts.Order != nil {
		return opts.Order, nil
	}
	if opts.SkipReorder {
		return rankings.IdentityOrder(), nil
	}
	return ComputeOrder(ds, opts.Partitions)
}

// ComputeOrder counts item frequencies with a distributed ReduceByKey
// and builds the ascending-frequency canonical order.
func ComputeOrder(ds *flow.Dataset[*rankings.Ranking], parts int) (*rankings.Order, error) {
	tokens := flow.FlatMap(ds, func(r *rankings.Ranking) []flow.KV[rankings.Item, int64] {
		out := make([]flow.KV[rankings.Item, int64], len(r.Items))
		for i, it := range r.Items {
			out[i] = flow.KV[rankings.Item, int64]{K: it, V: 1}
		}
		return out
	})
	counted, err := flow.ReduceByKey(tokens, parts, func(a, b int64) int64 { return a + b }).Collect()
	if err != nil {
		return nil, err
	}
	counts := make(map[rankings.Item]int64, len(counted))
	for _, kv := range counted {
		counts[kv.K] = kv.V
	}
	return rankings.NewOrder(counts), nil
}

// selfKernel builds the within-partition kernel for the selected
// variant. Kernel counters accumulate locally and fold once per
// invocation into both the caller's Stats and the engine-wide filter
// counters fc.
func selfKernel(ordB flow.Broadcast[*rankings.Order], fc *obs.FilterCounters, prefix, maxDist int, opts Options) func(rankings.Item, []*rankings.Ranking) []rankings.Pair {
	return func(item rankings.Item, members []*rankings.Ranking) []rankings.Pair {
		var st ppjoin.Stats
		var out []rankings.Pair
		switch {
		case item == rankings.CatchAllItem:
			// Members of the catch-all group need not share any item,
			// so the prefix-index kernel would miss pairs; the nested
			// loop is complete.
			out = ppjoin.NestedLoop(members, maxDist, &st)
		case opts.Variant == NestedLoop:
			out = ppjoin.NestedLoop(members, maxDist, &st)
		default:
			out = ppjoin.PrefixIndex(members, ordB.Value(), prefix, maxDist, &st)
		}
		if opts.LeastTokenDedup {
			out = filterLeastToken(ordB.Value(), prefix, item, members, out)
		}
		opts.Stats.AddKernel(st)
		fc.Add(st.FilterDelta())
		return out
	}
}

// crossKernel builds the R-S kernel used between sub-partitions. With
// least-token deduplication, the same filter applies: the pair is kept
// only in the sub-partitions of its minimal shared prefix token.
func crossKernel(ordB flow.Broadcast[*rankings.Order], fc *obs.FilterCounters, prefix, maxDist int, opts Options) func(rankings.Item, []*rankings.Ranking, []*rankings.Ranking) []rankings.Pair {
	return func(item rankings.Item, a, b []*rankings.Ranking) []rankings.Pair {
		var st ppjoin.Stats
		out := ppjoin.RS(a, b, maxDist, &st)
		if opts.LeastTokenDedup {
			members := make([]*rankings.Ranking, 0, len(a)+len(b))
			members = append(members, a...)
			members = append(members, b...)
			out = filterLeastToken(ordB.Value(), prefix, item, members, out)
		}
		opts.Stats.AddKernel(st)
		fc.Add(st.FilterDelta())
		return out
	}
}

// filterLeastToken keeps only the pairs whose group token is the
// canonically smallest token shared by both rankings' prefixes.
// Because every result pair co-occurs in exactly the groups of its
// shared prefix tokens, this emits each pair exactly once across the
// whole job, replacing the final dedup shuffle.
func filterLeastToken(ord *rankings.Order, prefix int, groupToken rankings.Item, members []*rankings.Ranking, pairs []rankings.Pair) []rankings.Pair {
	if len(pairs) == 0 {
		return pairs
	}
	byID := make(map[int64]*rankings.Ranking, len(members))
	for _, m := range members {
		byID[m.ID] = m
	}
	out := pairs[:0]
	for _, p := range pairs {
		a, b := byID[p.A], byID[p.B]
		if minCommonToken(ord, prefix, a, b) == groupToken {
			out = append(out, p)
		}
	}
	return out
}

// minCommonToken returns the canonically smallest item shared by the
// two rankings' prefixes, or CatchAllItem when the prefixes are
// disjoint (such a pair is only ever generated in the catch-all
// group).
func minCommonToken(ord *rankings.Order, prefix int, a, b *rankings.Ranking) rankings.Item {
	pa := ord.Prefix(a, prefix) // canonical order: rarest first
	pb := make(map[rankings.Item]struct{}, prefix)
	for _, it := range ord.Prefix(b, prefix) {
		pb[it] = struct{}{}
	}
	for _, it := range pa {
		if _, ok := pb[it]; ok {
			return it
		}
	}
	return rankings.CatchAllItem
}
