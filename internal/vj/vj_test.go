package vj_test

import (
	"math/rand"
	"testing"

	"rankjoin/internal/flow"
	"rankjoin/internal/ppjoin"
	"rankjoin/internal/rankings"
	"rankjoin/internal/testutil"
	"rankjoin/internal/vj"
)

func ctx(workers int) *flow.Context {
	return flow.NewContext(flow.Config{Workers: workers, DefaultPartitions: 4})
}

// TestJoinMatchesOracle: both VJ variants equal the brute-force oracle
// across randomized datasets, thresholds and partition counts.
func TestJoinMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		k := 4 + rng.Intn(8)
		n := 40 + rng.Intn(120)
		dom := k + rng.Intn(5*k)
		rs := testutil.RandDataset(rng, n, k, dom)
		theta := 0.05 + 0.4*rng.Float64()
		want := ppjoin.BruteForce(rs, rankings.Threshold(theta, k), nil)

		for _, variant := range []vj.Variant{vj.IndexJoin, vj.NestedLoop} {
			got, err := vj.Join(ctx(1+rng.Intn(4)), rs, vj.Options{
				Theta:      theta,
				Variant:    variant,
				Partitions: 1 + rng.Intn(9),
			})
			if err != nil {
				t.Fatal(err)
			}
			if !rankings.SamePairs(rankings.DedupPairs(got), rankings.DedupPairs(want)) {
				a, b := rankings.DiffPairs(got, want)
				t.Fatalf("trial %d %v θ=%.3f: extra=%v missing=%v", trial, variant, theta, a, b)
			}
		}
	}
}

// TestJoinOutputHasNoDuplicates: the final distinct stage removes the
// duplicates generated at different posting lists.
func TestJoinOutputHasNoDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rs := testutil.ClusteredDataset(rng, 20, 5, 8, 30)
	got, err := vj.Join(ctx(4), rs, vj.Options{Theta: 0.3, Partitions: 6})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[rankings.PairKey]bool{}
	for _, p := range got {
		if seen[p.Key()] {
			t.Fatalf("duplicate pair %v in output", p)
		}
		seen[p.Key()] = true
	}
}

// TestRepartitioningEquivalence: any δ ≥ 1 must leave the result set
// unchanged (Algorithm 3 correctness).
func TestRepartitioningEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		k := 5 + rng.Intn(6)
		rs := testutil.RandDataset(rng, 80+rng.Intn(80), k, k+rng.Intn(3*k))
		theta := 0.1 + 0.3*rng.Float64()
		want, err := vj.Join(ctx(4), rs, vj.Options{Theta: theta, Variant: vj.NestedLoop})
		if err != nil {
			t.Fatal(err)
		}
		for _, delta := range []int{1, 2, 5, 10, 50, 1000000} {
			var st vj.Stats
			got, err := vj.Join(ctx(4), rs, vj.Options{
				Theta:   theta,
				Variant: vj.NestedLoop,
				Delta:   delta,
				Stats:   &st,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !rankings.SamePairs(rankings.DedupPairs(got), rankings.DedupPairs(want)) {
				a, b := rankings.DiffPairs(got, want)
				t.Fatalf("trial %d δ=%d: extra=%v missing=%v", trial, delta, a, b)
			}
			snap := st.Snapshot()
			if delta == 1000000 && snap.GroupsSplit != 0 {
				t.Errorf("δ=%d split %d groups", delta, snap.GroupsSplit)
			}
			if delta == 1 && snap.GroupsSplit == 0 && snap.LargestGroup > 1 {
				t.Errorf("δ=1 split nothing despite groups of size %d", snap.LargestGroup)
			}
		}
	}
}

// TestLeastTokenDedupEquivalence: the dedup-free variant emits each
// pair exactly once and matches the standard output, with and without
// repartitioning.
func TestLeastTokenDedupEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		k := 5 + rng.Intn(6)
		rs := testutil.RandDataset(rng, 60+rng.Intn(100), k, k+rng.Intn(3*k))
		theta := 0.1 + 0.3*rng.Float64()
		want, err := vj.Join(ctx(4), rs, vj.Options{Theta: theta})
		if err != nil {
			t.Fatal(err)
		}
		for _, delta := range []int{0, 7} {
			got, err := vj.Join(ctx(4), rs, vj.Options{
				Theta:           theta,
				LeastTokenDedup: true,
				Delta:           delta,
			})
			if err != nil {
				t.Fatal(err)
			}
			// Exactly once: no dedup applied, so compare raw.
			if !rankings.SamePairs(got, rankings.DedupPairs(want)) {
				a, b := rankings.DiffPairs(got, want)
				dups := len(got) - len(rankings.DedupPairs(append([]rankings.Pair(nil), got...)))
				t.Fatalf("trial %d δ=%d: extra=%v missing=%v duplicates=%d", trial, delta, a, b, dups)
			}
		}
	}
}

// TestSkipReorderStillCorrect: disabling frequency reordering changes
// performance, never results.
func TestSkipReorderStillCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rs := testutil.RandDataset(rng, 100, 8, 30)
	want, err := vj.Join(ctx(4), rs, vj.Options{Theta: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	got, err := vj.Join(ctx(4), rs, vj.Options{Theta: 0.25, SkipReorder: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rankings.SamePairs(rankings.DedupPairs(got), rankings.DedupPairs(want)) {
		t.Fatal("skip-reorder changed the result set")
	}
}

// TestPrecomputedOrder: supplying the ordering (as CL does) skips the
// counting stage and yields identical results.
func TestPrecomputedOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	rs := testutil.RandDataset(rng, 100, 8, 30)
	ord := rankings.OrderFromDataset(rs)
	want, err := vj.Join(ctx(4), rs, vj.Options{Theta: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	c := ctx(4)
	got, err := vj.Join(c, rs, vj.Options{Theta: 0.25, Order: ord})
	if err != nil {
		t.Fatal(err)
	}
	if !rankings.SamePairs(rankings.DedupPairs(got), rankings.DedupPairs(want)) {
		t.Fatal("precomputed order changed the result set")
	}
}

func TestValidation(t *testing.T) {
	rs := []*rankings.Ranking{
		rankings.MustNew(0, []rankings.Item{1, 2, 3}),
		rankings.MustNew(1, []rankings.Item{1, 2}),
	}
	if _, err := vj.Join(ctx(1), rs, vj.Options{Theta: 0.2}); err == nil {
		t.Error("mixed lengths accepted")
	}
	ok := []*rankings.Ranking{rankings.MustNew(0, []rankings.Item{1, 2, 3})}
	if _, err := vj.Join(ctx(1), ok, vj.Options{Theta: -0.1}); err == nil {
		t.Error("negative theta accepted")
	}
	if _, err := vj.Join(ctx(1), ok, vj.Options{Theta: 1.5}); err == nil {
		t.Error("theta > 1 accepted")
	}
	got, err := vj.Join(ctx(1), nil, vj.Options{Theta: 0.2})
	if err != nil || len(got) != 0 {
		t.Errorf("empty dataset: %v, %v", got, err)
	}
}

// TestThetaZeroFindsExactDuplicates: θ=0 joins must return exactly the
// identical-content pairs.
func TestThetaZeroFindsExactDuplicates(t *testing.T) {
	rs := []*rankings.Ranking{
		rankings.MustNew(0, []rankings.Item{1, 2, 3, 4, 5}),
		rankings.MustNew(1, []rankings.Item{1, 2, 3, 4, 5}),
		rankings.MustNew(2, []rankings.Item{1, 2, 3, 5, 4}),
	}
	got, err := vj.Join(ctx(2), rs, vj.Options{Theta: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].A != 0 || got[0].B != 1 || got[0].Dist != 0 {
		t.Errorf("θ=0 results: %v", got)
	}
}

// TestStatsPlumbing: the stats sink observes kernel work.
func TestStatsPlumbing(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rs := testutil.RandDataset(rng, 150, 8, 25)
	var st vj.Stats
	got, err := vj.Join(ctx(4), rs, vj.Options{Theta: 0.3, Stats: &st})
	if err != nil {
		t.Fatal(err)
	}
	snap := st.Snapshot()
	if snap.Groups == 0 || snap.Candidates == 0 {
		t.Errorf("stats empty: %v", snap)
	}
	if snap.Results < int64(len(got)) {
		t.Errorf("kernel results %d < output %d", snap.Results, len(got))
	}
	if snap.LargestGroup <= 0 {
		t.Errorf("largest group %d", snap.LargestGroup)
	}
}

// TestDeterministicAcrossWorkers: same input, any worker count — same
// result set.
func TestDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	rs := testutil.RandDataset(rng, 120, 10, 40)
	ref, err := vj.Join(ctx(1), rs, vj.Options{Theta: 0.3, Delta: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 4, 8} {
		got, err := vj.Join(ctx(w), rs, vj.Options{Theta: 0.3, Delta: 9})
		if err != nil {
			t.Fatal(err)
		}
		if !rankings.SamePairs(rankings.DedupPairs(got), rankings.DedupPairs(ref)) {
			t.Fatalf("workers=%d diverged", w)
		}
	}
}
