package vj_test

import (
	"math/rand"
	"testing"

	"rankjoin/internal/rankings"
	"rankjoin/internal/testutil"
	"rankjoin/internal/vj"
)

func rsOracle(r, s []*rankings.Ranking, maxDist int) []rankings.Pair {
	var out []rankings.Pair
	for _, a := range r {
		for _, b := range s {
			if d, ok := rankings.FootruleWithin(a, b, maxDist); ok {
				out = append(out, rankings.Pair{A: a.ID, B: b.ID, Dist: d})
			}
		}
	}
	rankings.SortPairs(out)
	return out
}

// TestJoinRSMatchesOracle across random datasets, with and without
// repartitioning and least-token dedup. Ids intentionally collide
// across the two sides.
func TestJoinRSMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 15; trial++ {
		k := 4 + rng.Intn(8)
		dom := k + rng.Intn(4*k)
		r := testutil.RandDataset(rng, 30+rng.Intn(60), k, dom)
		s := testutil.RandDataset(rng, 30+rng.Intn(60), k, dom) // same id space
		theta := 0.05 + 0.4*rng.Float64()
		want := rsOracle(r, s, rankings.Threshold(theta, k))

		for _, o := range []vj.Options{
			{Theta: theta},
			{Theta: theta, Delta: 5},
			{Theta: theta, LeastTokenDedup: true},
			{Theta: theta, Delta: 5, LeastTokenDedup: true},
		} {
			o.Partitions = 1 + rng.Intn(6)
			got, err := vj.JoinRS(ctx(1+rng.Intn(4)), r, s, o)
			if err != nil {
				t.Fatal(err)
			}
			if !samePairsExact(got, want) {
				t.Fatalf("trial %d opts %+v: got %d pairs, want %d\n got=%v\nwant=%v",
					trial, o, len(got), len(want), got, want)
			}
		}
	}
}

// samePairsExact compares without canonicalization — R-S pairs are
// side-ordered, not id-ordered.
func samePairsExact(a, b []rankings.Pair) bool {
	if len(a) != len(b) {
		return false
	}
	ac := append([]rankings.Pair(nil), a...)
	bc := append([]rankings.Pair(nil), b...)
	rankings.SortPairs(ac)
	rankings.SortPairs(bc)
	for i := range ac {
		if ac[i] != bc[i] {
			return false
		}
	}
	return true
}

func TestJoinRSEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	r := testutil.RandDataset(rng, 10, 6, 30)
	if got, err := vj.JoinRS(ctx(2), r, nil, vj.Options{Theta: 0.3}); err != nil || len(got) != 0 {
		t.Errorf("empty S: %v %v", got, err)
	}
	if got, err := vj.JoinRS(ctx(2), nil, r, vj.Options{Theta: 0.3}); err != nil || len(got) != 0 {
		t.Errorf("empty R: %v %v", got, err)
	}
	// Identical rankings with identical ids across sides: a valid
	// (r, s) pair at distance 0.
	a := rankings.MustNew(5, []rankings.Item{1, 2, 3})
	b := rankings.MustNew(5, []rankings.Item{1, 2, 3})
	got, err := vj.JoinRS(ctx(1), []*rankings.Ranking{a}, []*rankings.Ranking{b}, vj.Options{Theta: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].A != 5 || got[0].B != 5 || got[0].Dist != 0 {
		t.Errorf("colliding-id pair: %v", got)
	}
	// Mixed lengths rejected.
	c := rankings.MustNew(6, []rankings.Item{1, 2})
	if _, err := vj.JoinRS(ctx(1), []*rankings.Ranking{a}, []*rankings.Ranking{c}, vj.Options{Theta: 0.1}); err == nil {
		t.Error("mixed lengths accepted")
	}
}

// TestJoinRSNoSelfPairs: pairs within one side must never appear.
func TestJoinRSNoSelfPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	k := 8
	// R contains two identical rankings — their pair must NOT appear.
	r := []*rankings.Ranking{
		rankings.MustNew(1, []rankings.Item{1, 2, 3, 4, 5, 6, 7, 8}),
		rankings.MustNew(2, []rankings.Item{1, 2, 3, 4, 5, 6, 7, 8}),
	}
	s := testutil.RandDataset(rng, 20, k, 3*k)
	got, err := vj.JoinRS(ctx(2), r, s, vj.Options{Theta: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range got {
		if p.A != 1 && p.A != 2 {
			t.Errorf("pair %v has non-R left side", p)
		}
	}
}

// TestJoinRSDegenerateTheta: θ=1 admits zero-overlap pairs, which only
// the catch-all group can deliver.
func TestJoinRSDegenerateTheta(t *testing.T) {
	r := []*rankings.Ranking{rankings.MustNew(1, []rankings.Item{1, 2, 3})}
	s := []*rankings.Ranking{rankings.MustNew(2, []rankings.Item{7, 8, 9})}
	got, err := vj.JoinRS(ctx(1), r, s, vj.Options{Theta: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Dist != rankings.MaxFootrule(3) {
		t.Errorf("disjoint pair at θ=1: %v", got)
	}
}
