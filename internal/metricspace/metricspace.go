// Package metricspace implements the metric-space machinery the paper
// positions its clustering against: random-centroid partition
// clustering in the style of ClusterJoin / Wang et al. (§2, §5.1),
// whose drawbacks (singleton-heavy partitions, cluster count fixed
// upfront) motivate the paper's pair-derived clusters, plus a
// pivot-based range index in the spirit of the authors' earlier
// "coarse index" work. Both are used as baselines in ablation
// benchmarks and as general-purpose utilities.
package metricspace

import (
	"fmt"
	"math/rand"

	"rankjoin/internal/filters"
	"rankjoin/internal/rankings"
)

// Cluster is one partition of a dataset: a centroid and the members
// assigned to it (members exclude the centroid itself), with the exact
// centroid distances retained for triangle filtering.
type Cluster struct {
	Centroid *rankings.Ranking
	Members  []ClusterMember
}

// ClusterMember pairs a member ranking with its centroid distance.
type ClusterMember struct {
	R    *rankings.Ranking
	Dist int
}

// RandomCentroidResult carries the clustering outcome and the
// statistics the paper's critique focuses on.
type RandomCentroidResult struct {
	Clusters   []Cluster
	Singletons []*rankings.Ranking
	// AssignmentDistances is the number of distance computations spent
	// assigning points — the cost the paper's pair-based clustering
	// avoids.
	AssignmentDistances int64
}

// RandomCentroidClustering clusters the dataset in the style the paper
// argues against (§5.1): numCentroids points are drawn at random, every
// other point is assigned to its closest centroid if that distance is
// within maxDist, and unassigned points become singletons. It
// reproduces the two failure modes the paper names — for small maxDist
// most clusters stay empty, and the cluster count must be chosen
// upfront.
func RandomCentroidClustering(rs []*rankings.Ranking, numCentroids, maxDist int, seed int64) (RandomCentroidResult, error) {
	if numCentroids <= 0 {
		return RandomCentroidResult{}, fmt.Errorf("metricspace: numCentroids must be positive, got %d", numCentroids)
	}
	var res RandomCentroidResult
	if len(rs) == 0 {
		return res, nil
	}
	if numCentroids > len(rs) {
		numCentroids = len(rs)
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(rs))
	centroidIdx := make(map[int]int, numCentroids) // dataset index -> cluster index
	clusters := make([]Cluster, numCentroids)
	for c := 0; c < numCentroids; c++ {
		clusters[c] = Cluster{Centroid: rs[perm[c]]}
		centroidIdx[perm[c]] = c
	}
	for i, r := range rs {
		if _, isCentroid := centroidIdx[i]; isCentroid {
			continue
		}
		best, bestDist := -1, maxDist+1
		for c := range clusters {
			res.AssignmentDistances++
			if d, ok := rankings.FootruleWithin(r, clusters[c].Centroid, bestDist-1); ok {
				best, bestDist = c, d
			}
		}
		if best >= 0 {
			clusters[best].Members = append(clusters[best].Members,
				ClusterMember{R: r, Dist: bestDist})
		} else {
			res.Singletons = append(res.Singletons, r)
		}
	}
	res.Clusters = clusters
	return res, nil
}

// EmptyClusterFraction reports the fraction of clusters that attracted
// no members — the paper's headline critique of random centroids under
// small clustering thresholds.
func (r RandomCentroidResult) EmptyClusterFraction() float64 {
	if len(r.Clusters) == 0 {
		return 0
	}
	empty := 0
	for _, c := range r.Clusters {
		if len(c.Members) == 0 {
			empty++
		}
	}
	return float64(empty) / float64(len(r.Clusters))
}

// PivotIndex is a LAESA-style metric index: every record's distance to
// a set of pivot rankings is precomputed; range queries prune records
// whose pivot distances already violate the triangle inequality before
// any real distance is computed. This is the "coarse index" idea from
// the authors' earlier top-k-list similarity-search work.
type PivotIndex struct {
	pivots []*rankings.Ranking
	data   []*rankings.Ranking
	table  [][]int // table[i][p] = d(data[i], pivots[p])
}

// BuildPivotIndex selects numPivots pivots at random (seeded) and
// precomputes the distance table.
func BuildPivotIndex(rs []*rankings.Ranking, numPivots int, seed int64) (*PivotIndex, error) {
	if numPivots <= 0 {
		return nil, fmt.Errorf("metricspace: numPivots must be positive, got %d", numPivots)
	}
	if numPivots > len(rs) {
		numPivots = len(rs)
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(rs))
	idx := &PivotIndex{
		pivots: make([]*rankings.Ranking, numPivots),
		data:   rs,
		table:  make([][]int, len(rs)),
	}
	for p := 0; p < numPivots; p++ {
		idx.pivots[p] = rs[perm[p]]
	}
	for i, r := range rs {
		row := make([]int, numPivots)
		for p, piv := range idx.pivots {
			row[p] = rankings.Footrule(r, piv)
		}
		idx.table[i] = row
	}
	return idx, nil
}

// RangeSearch returns all indexed rankings within maxDist of the query
// (excluding the query itself when indexed, matched by id). verified
// reports how many true distance computations were needed beyond the
// pivot distances.
func (x *PivotIndex) RangeSearch(q *rankings.Ranking, maxDist int) (hits []rankings.Pair, verified int64) {
	qd := make([]int, len(x.pivots))
	for p, piv := range x.pivots {
		qd[p] = rankings.Footrule(q, piv)
	}
	for i, r := range x.data {
		if r.ID == q.ID {
			continue
		}
		pruned := false
		for p := range x.pivots {
			if filters.TrianglePrune(qd[p], x.table[i][p], maxDist) {
				pruned = true
				break
			}
		}
		if pruned {
			continue
		}
		verified++
		if d, ok := rankings.FootruleWithin(q, r, maxDist); ok {
			hits = append(hits, rankings.NewPair(q.ID, r.ID, d))
		}
	}
	return hits, verified
}

// Pivots returns the index's pivot rankings.
func (x *PivotIndex) Pivots() []*rankings.Ranking { return x.pivots }
