package metricspace_test

import (
	"math/rand"
	"testing"

	"rankjoin/internal/metricspace"
	"rankjoin/internal/rankings"
	"rankjoin/internal/testutil"
)

func TestRandomCentroidClusteringInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rs := testutil.ClusteredDataset(rng, 20, 4, 10, 60)
	maxDist := rankings.Threshold(0.05, 10)
	res, err := metricspace.RandomCentroidClustering(rs, 10, maxDist, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Every ranking is a centroid, a member of exactly one cluster, or
	// a singleton.
	seen := map[int64]int{}
	for _, c := range res.Clusters {
		seen[c.Centroid.ID]++
		for _, m := range c.Members {
			seen[m.R.ID]++
			if m.Dist > maxDist {
				t.Errorf("member %d at distance %d beyond radius %d", m.R.ID, m.Dist, maxDist)
			}
			if got := rankings.Footrule(m.R, c.Centroid); got != m.Dist {
				t.Errorf("recorded distance %d, true %d", m.Dist, got)
			}
		}
	}
	for _, s := range res.Singletons {
		seen[s.ID]++
	}
	if len(seen) != len(rs) {
		t.Fatalf("%d of %d rankings assigned", len(seen), len(rs))
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("ranking %d assigned %d times", id, n)
		}
	}
	if res.AssignmentDistances == 0 {
		t.Error("no assignment distances recorded")
	}
}

// TestRandomCentroidsSingletonHeavy demonstrates the paper's critique:
// with a tiny clustering threshold, random centroids leave most
// clusters empty.
func TestRandomCentroidsSingletonHeavy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rs := testutil.RandDataset(rng, 400, 10, 400) // sparse: few near pairs
	maxDist := rankings.Threshold(0.03, 10)
	res, err := metricspace.RandomCentroidClustering(rs, 40, maxDist, 3)
	if err != nil {
		t.Fatal(err)
	}
	if frac := res.EmptyClusterFraction(); frac < 0.5 {
		t.Errorf("expected mostly-empty clusters on sparse data, got %.2f empty", frac)
	}
}

func TestRandomCentroidValidation(t *testing.T) {
	if _, err := metricspace.RandomCentroidClustering(nil, 0, 5, 1); err == nil {
		t.Error("zero centroids accepted")
	}
	res, err := metricspace.RandomCentroidClustering(nil, 3, 5, 1)
	if err != nil || len(res.Clusters) != 0 {
		t.Errorf("empty dataset: %v %v", res, err)
	}
	// More centroids than points: clamps.
	rng := rand.New(rand.NewSource(3))
	rs := testutil.RandDataset(rng, 5, 6, 20)
	res, err = metricspace.RandomCentroidClustering(rs, 50, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) != 5 {
		t.Errorf("clusters = %d, want 5", len(res.Clusters))
	}
}

// TestPivotIndexRangeSearchExact: pivot pruning must not lose results.
func TestPivotIndexRangeSearchExact(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rs := testutil.ClusteredDataset(rng, 15, 4, 8, 50)
	idx, err := metricspace.BuildPivotIndex(rs, 6, 9)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		q := rs[rng.Intn(len(rs))]
		maxDist := rng.Intn(rankings.MaxFootrule(8) + 1)
		hits, verified := idx.RangeSearch(q, maxDist)

		var want []rankings.Pair
		for _, r := range rs {
			if r.ID == q.ID {
				continue
			}
			if d, ok := rankings.FootruleWithin(q, r, maxDist); ok {
				want = append(want, rankings.NewPair(q.ID, r.ID, d))
			}
		}
		if !rankings.SamePairs(rankings.DedupPairs(hits), rankings.DedupPairs(want)) {
			t.Fatalf("range search diverges for maxDist=%d", maxDist)
		}
		if verified > int64(len(rs)) {
			t.Fatalf("verified %d > dataset size", verified)
		}
	}
}

// TestPivotIndexPrunes: for small radii the index must verify far fewer
// records than a scan.
func TestPivotIndexPrunes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rs := testutil.RandDataset(rng, 500, 10, 200)
	idx, err := metricspace.BuildPivotIndex(rs, 8, 11)
	if err != nil {
		t.Fatal(err)
	}
	_, verified := idx.RangeSearch(rs[0], rankings.Threshold(0.05, 10))
	if verified >= int64(len(rs))-1 {
		t.Errorf("pivot index verified everything (%d of %d)", verified, len(rs))
	}
	if len(idx.Pivots()) != 8 {
		t.Errorf("pivots = %d", len(idx.Pivots()))
	}
}

func TestPivotIndexValidation(t *testing.T) {
	if _, err := metricspace.BuildPivotIndex(nil, 0, 1); err == nil {
		t.Error("zero pivots accepted")
	}
	rng := rand.New(rand.NewSource(6))
	rs := testutil.RandDataset(rng, 3, 5, 20)
	idx, err := metricspace.BuildPivotIndex(rs, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.Pivots()) != 3 {
		t.Errorf("pivot clamp failed: %d", len(idx.Pivots()))
	}
}
