package dataset

// Profiles mirroring the paper's two benchmark datasets at configurable
// scale. The constants are calibrated so that, at bench scale, the
// datasets reproduce the paper's qualitative behaviour: DBLP-like data
// is smaller and moderately skewed; ORKU-like data is larger, with a
// heavier-tailed vocabulary and more near-duplicates (social-network
// membership lists repeat across friends).

// Profile describes a dataset family.
type Profile struct {
	// Name labels experiment output.
	Name string
	// Skew is the Zipf exponent of item popularity.
	Skew float64
	// DomainFactor sizes the item domain as DomainFactor·N (clamped to
	// at least 4·K), reflecting that real vocabularies grow with
	// collection size.
	DomainFactor float64
	// DupRate is the near-duplicate density.
	DupRate float64
}

// DBLPLike approximates the preprocessed DBLP dataset of §7
// (bibliography titles: moderately skewed tokens, fewer related
// records).
var DBLPLike = Profile{Name: "DBLP", Skew: 0.85, DomainFactor: 0.60, DupRate: 0.25}

// ORKULike approximates the preprocessed ORKU (Orkut) dataset of §7
// (social-network data: heavier skew, more related records).
var ORKULike = Profile{Name: "ORKU", Skew: 1.05, DomainFactor: 0.35, DupRate: 0.35}

// Config instantiates the profile at a concrete size. Related records
// drift up to ~k perturbation steps apart, so pair distances spread
// across the paper's whole θ ∈ [0.1, 0.4] sweep.
func (p Profile) Config(n, k int, seed int64) GenConfig {
	domain := int(p.DomainFactor * float64(n))
	if min := 4 * k; domain < min {
		domain = min
	}
	return GenConfig{
		N:            n,
		K:            k,
		Domain:       domain,
		Skew:         p.Skew,
		DupRate:      p.DupRate,
		PerturbSteps: k,
		Seed:         seed,
	}
}
