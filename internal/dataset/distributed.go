package dataset

import (
	"fmt"

	"rankjoin/internal/flow"
	"rankjoin/internal/rankings"
)

// LoadDistributed reads a ranking file as a flow dataset using
// byte-range input splits: each engine task parses only its split, the
// way the paper's Spark jobs read partitioned text off HDFS. Lines
// without an explicit "id:" prefix are assigned ids by their global
// line number — computed with a first metadata-only pass so ids are
// stable regardless of the partition count.
func LoadDistributed(ctx *flow.Context, path string, parts int) (*flow.Dataset[*rankings.Ranking], error) {
	lines := flow.TextFile(ctx, path, parts)
	// First pass: per-split line counts, to derive each split's global
	// line offset.
	counts := make([]int64, lines.NumPartitions())
	err := lines.ForEachPartition(func(p int, in []string) error {
		counts[p] = int64(len(in))
		return nil
	})
	if err != nil {
		return nil, err
	}
	offsets := make([]int64, len(counts)+1)
	for i, c := range counts {
		offsets[i+1] = offsets[i] + c
	}
	parsed := flow.MapPartitions(lines, func(p int, in []string) ([]*rankings.Ranking, error) {
		out := make([]*rankings.Ranking, 0, len(in))
		id := offsets[p]
		for _, line := range in {
			if line == "" || line[0] == '#' {
				id++ // keep ids aligned with raw line numbers
				continue
			}
			r, err := rankings.ParseLine(line, id)
			if err != nil {
				return nil, fmt.Errorf("dataset: %s: %w", path, err)
			}
			r.Index()
			out = append(out, r)
			id++
		}
		return out, nil
	})
	return parsed, nil
}
