// Package dataset provides the workloads of the paper's experimental
// study (§7): synthetic stand-ins for the DBLP and ORKU benchmark
// datasets with matching statistical shape (Zipf-skewed item
// frequencies, a controlled density of near-duplicates), the
// record-to-top-k preprocessing, and the ×n dataset scaling used to
// grow inputs while keeping the item domain fixed.
//
// The real DBLP/ORKU files are set-similarity benchmarks derived from
// bibliography titles and social-network data; what the join algorithms
// actually respond to is (a) the skew of the item-frequency
// distribution, which drives posting-list sizes and prefix selectivity,
// and (b) the rate of near-duplicate rankings, which drives cluster
// formation in the CL pipeline. Both are explicit knobs here.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"

	"rankjoin/internal/rankings"
)

// GenConfig parameterizes the synthetic generator.
type GenConfig struct {
	// N is the number of rankings to generate.
	N int
	// K is the ranking length.
	K int
	// Domain is the number of distinct items. Must be at least K.
	Domain int
	// Skew is the Zipf exponent of the item popularity distribution;
	// 0 means uniform.
	Skew float64
	// DupRate is the fraction of rankings generated as gentle
	// perturbations of an earlier ranking — the near-duplicate density
	// that feeds the clustering phase. 0 disables.
	DupRate float64
	// PerturbSteps is how many perturbation steps a near-duplicate
	// receives (default 2).
	PerturbSteps int
	// Seed makes generation reproducible.
	Seed int64
}

func (c GenConfig) validate() error {
	if c.N < 0 {
		return fmt.Errorf("dataset: negative N %d", c.N)
	}
	if c.K <= 0 {
		return fmt.Errorf("dataset: K must be positive, got %d", c.K)
	}
	if c.Domain < c.K {
		return fmt.Errorf("dataset: domain %d smaller than K %d", c.Domain, c.K)
	}
	if c.DupRate < 0 || c.DupRate > 1 {
		return fmt.Errorf("dataset: dup rate %v out of [0,1]", c.DupRate)
	}
	return nil
}

// Generate draws a synthetic top-k ranking dataset per cfg. Ranking ids
// are 0..N-1 and every ranking is position-indexed.
func Generate(cfg GenConfig) ([]*rankings.Ranking, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	sampler := newZipfSampler(rng, cfg.Skew, cfg.Domain)
	steps := cfg.PerturbSteps
	if steps <= 0 {
		steps = 2
	}
	out := make([]*rankings.Ranking, 0, cfg.N)
	for i := 0; i < cfg.N; i++ {
		var r *rankings.Ranking
		if len(out) > 0 && rng.Float64() < cfg.DupRate {
			base := out[rng.Intn(len(out))]
			// A spread of step counts puts variant distances across
			// the whole threshold range, like the real benchmarks.
			r = Perturb(rng, base, int64(i), 1+rng.Intn(steps), cfg.Domain)
		} else {
			r = drawRanking(rng, sampler, int64(i), cfg.K, cfg.Domain)
		}
		r.Index()
		out = append(out, r)
	}
	return out, nil
}

// drawRanking samples k distinct items from the popularity distribution
// by rejection.
func drawRanking(rng *rand.Rand, sample func() rankings.Item, id int64, k, domain int) *rankings.Ranking {
	items := make([]rankings.Item, 0, k)
	seen := make(map[rankings.Item]struct{}, k)
	misses := 0
	for len(items) < k {
		it := sample()
		if _, dup := seen[it]; dup {
			// With heavy skew rejection can stall on the head items;
			// fall back to a uniform draw after too many misses.
			misses++
			if misses > 20*k {
				it = rankings.Item(rng.Intn(domain))
				if _, dup := seen[it]; dup {
					continue
				}
			} else {
				continue
			}
		}
		seen[it] = struct{}{}
		items = append(items, it)
	}
	return rankings.MustNew(id, items)
}

// Perturb derives a variant of base at a controlled distance: each step
// applies one move — an adjacent swap (+2 Footrule), a random-position
// swap (+2·gap), or an item replacement (+≈2·(k−pos)) — the kinds of
// drift the paper's datasets exhibit between re-crawled or re-ranked
// records. More steps take the variant further from base, so a dataset
// generated with a spread of step counts exhibits pair distances across
// the whole threshold range, like the real benchmarks. The result has
// the given id and the same length.
func Perturb(rng *rand.Rand, base *rankings.Ranking, id int64, steps, domain int) *rankings.Ranking {
	k := base.K()
	items := make([]rankings.Item, k)
	copy(items, base.Items)
	for t := 0; t < steps; t++ {
		switch rng.Intn(4) {
		case 0: // swap adjacent ranks: finest move
			if k >= 2 {
				i := rng.Intn(k - 1)
				items[i], items[i+1] = items[i+1], items[i]
			}
		case 1: // swap two random ranks: medium move
			if k >= 2 {
				i, j := rng.Intn(k), rng.Intn(k)
				items[i], items[j] = items[j], items[i]
			}
		case 2, 3: // replace the item at a random (bottom-leaning) rank
			pos := k - 1 - rng.Intn((k+1)/2)
			for tries := 0; tries < 32; tries++ {
				it := rankings.Item(rng.Intn(domain))
				fresh := true
				for _, have := range items {
					if have == it {
						fresh = false
						break
					}
				}
				if fresh {
					items[pos] = it
					break
				}
			}
		}
	}
	r := rankings.MustNew(id, items)
	r.Index()
	return r
}

// newZipfSampler returns a sampler over item ids 0..domain-1 whose
// popularity follows a Zipf law with the given exponent (uniform when
// skew == 0). Item ids are assigned popularity ranks via a fixed
// pseudo-random permutation so that popular items are scattered across
// the id space, as in real datasets.
func newZipfSampler(rng *rand.Rand, skew float64, domain int) func() rankings.Item {
	if skew == 0 {
		return func() rankings.Item { return rankings.Item(rng.Intn(domain)) }
	}
	// Inverse-CDF sampling over the rank distribution.
	cdf := make([]float64, domain)
	sum := 0.0
	for i := 0; i < domain; i++ {
		sum += math.Pow(float64(i+1), -skew)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	perm := rand.New(rand.NewSource(rng.Int63())).Perm(domain)
	return func() rankings.Item {
		u := rng.Float64()
		idx := sort.SearchFloat64s(cdf, u)
		if idx >= domain {
			idx = domain - 1
		}
		return rankings.Item(perm[idx])
	}
}

// TopK applies the paper's preprocessing (§7) to raw token records:
// records shorter than k are dropped, the first k tokens become the
// ranking (duplicate tokens within a record are skipped, keeping first
// occurrence), and exact-duplicate records are removed before cutting,
// as in the benchmark preprocessing of Fier et al. Rankings are
// re-numbered 0..n-1.
func TopK(records [][]rankings.Item, k int) []*rankings.Ranking {
	seen := map[string]struct{}{}
	var out []*rankings.Ranking
	var id int64
	for _, rec := range records {
		key := fingerprint(rec)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		items := make([]rankings.Item, 0, k)
		have := map[rankings.Item]struct{}{}
		for _, tok := range rec {
			if _, dup := have[tok]; dup {
				continue
			}
			have[tok] = struct{}{}
			items = append(items, tok)
			if len(items) == k {
				break
			}
		}
		if len(items) < k {
			continue
		}
		r := rankings.MustNew(id, items)
		r.Index()
		out = append(out, r)
		id++
	}
	return out
}

func fingerprint(rec []rankings.Item) string {
	buf := make([]byte, 0, 4*len(rec))
	for _, t := range rec {
		buf = append(buf, byte(t), byte(t>>8), byte(t>>16), byte(t>>24))
	}
	return string(buf)
}

// Scale grows a dataset ×times with the method of the paper's §7 (after
// Vernica et al. and Fier et al.): the item domain stays fixed and the
// join-result size grows approximately linearly. Copy j of a ranking
// shifts every item id by j (mod domain), so each copy joins within
// itself like the original but contributes almost no cross-copy pairs.
// Ids of copy j are offset by j·idStride, with idStride = the smallest
// power of ten above the dataset size.
func Scale(rs []*rankings.Ranking, times, domain int) []*rankings.Ranking {
	if times <= 1 {
		return rs
	}
	stride := int64(10)
	for stride < int64(len(rs)) {
		stride *= 10
	}
	out := make([]*rankings.Ranking, 0, len(rs)*times)
	out = append(out, rs...)
	for j := 1; j < times; j++ {
		for _, r := range rs {
			items := make([]rankings.Item, len(r.Items))
			for i, it := range r.Items {
				items[i] = rankings.Item((int(it) + j) % domain)
			}
			c := rankings.MustNew(r.ID+int64(j)*stride, items)
			c.Index()
			out = append(out, c)
		}
	}
	return out
}

// LoadFile reads a ranking dataset from a file in the rankings text
// format.
func LoadFile(path string) ([]*rankings.Ranking, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	rs, err := rankings.Read(f)
	if err != nil {
		return nil, err
	}
	rankings.IndexAll(rs)
	return rs, nil
}

// SaveFile writes a ranking dataset to a file in the rankings text
// format.
func SaveFile(path string, rs []*rankings.Ranking) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	if err := rankings.Write(f, rs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
