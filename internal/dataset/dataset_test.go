package dataset_test

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"rankjoin/internal/flow"

	"rankjoin/internal/dataset"
	"rankjoin/internal/ppjoin"
	"rankjoin/internal/rankings"
	"rankjoin/internal/stats"
)

func TestGenerateBasics(t *testing.T) {
	rs, err := dataset.Generate(dataset.GenConfig{N: 500, K: 10, Domain: 300, Skew: 0.9, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 500 {
		t.Fatalf("generated %d", len(rs))
	}
	seenIDs := map[int64]bool{}
	for _, r := range rs {
		if r.K() != 10 {
			t.Fatalf("ranking %d has length %d", r.ID, r.K())
		}
		if err := r.Validate(); err != nil {
			t.Fatal(err)
		}
		if seenIDs[r.ID] {
			t.Fatalf("duplicate id %d", r.ID)
		}
		seenIDs[r.ID] = true
		for _, it := range r.Items {
			if it < 0 || int(it) >= 300 {
				t.Fatalf("item %d out of domain", it)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := dataset.GenConfig{N: 100, K: 8, Domain: 100, Skew: 1.0, DupRate: 0.2, Seed: 9}
	a, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !rankings.Equal(a[i], b[i]) {
			t.Fatalf("non-deterministic at %d", i)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []dataset.GenConfig{
		{N: -1, K: 5, Domain: 10},
		{N: 10, K: 0, Domain: 10},
		{N: 10, K: 5, Domain: 3},
		{N: 10, K: 5, Domain: 10, DupRate: 1.5},
	}
	for _, cfg := range bad {
		if _, err := dataset.Generate(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestGenerateSkewIsVisible(t *testing.T) {
	flat, err := dataset.Generate(dataset.GenConfig{N: 3000, K: 10, Domain: 1500, Skew: 0, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	skewed, err := dataset.Generate(dataset.GenConfig{N: 3000, K: 10, Domain: 1500, Skew: 1.1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	sf := stats.EstimateSkew(rankings.ItemCounts(flat))
	ss := stats.EstimateSkew(rankings.ItemCounts(skewed))
	if ss < sf+0.3 {
		t.Errorf("skewed dataset skew %v not clearly above uniform %v", ss, sf)
	}
}

func TestDupRateCreatesNearPairs(t *testing.T) {
	noDup, err := dataset.Generate(dataset.GenConfig{N: 800, K: 10, Domain: 4000, Skew: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	withDup, err := dataset.Generate(dataset.GenConfig{N: 800, K: 10, Domain: 4000, Skew: 0.5, DupRate: 0.3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	thetaC := rankings.Threshold(0.05, 10)
	nearNo := len(ppjoin.BruteForce(noDup, thetaC, nil))
	nearWith := len(ppjoin.BruteForce(withDup, thetaC, nil))
	if nearWith <= nearNo {
		t.Errorf("dup rate produced no extra near pairs: %d vs %d", nearWith, nearNo)
	}
	if nearWith < 50 {
		t.Errorf("only %d near pairs at 30%% dup rate — clustering regime too thin", nearWith)
	}
}

func TestPerturbStaysClose(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	base, err := dataset.Generate(dataset.GenConfig{N: 1, K: 10, Domain: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 100; trial++ {
		p := dataset.Perturb(rng, base[0], 1000+int64(trial), 2, 100)
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		if p.K() != 10 {
			t.Fatalf("perturbed length %d", p.K())
		}
		// Two gentle steps move at most a bounded distance: each step
		// changes the Footrule distance by at most 2k.
		if d := rankings.Footrule(base[0], p); d > 4*10 {
			t.Fatalf("perturbation too violent: %d", d)
		}
	}
}

func TestTopKPreprocessing(t *testing.T) {
	records := [][]rankings.Item{
		{1, 2, 3, 4, 5}, // kept, cut to 3
		{1, 2},          // dropped: too short
		{1, 1, 2, 2, 3}, // in-record dups skipped -> [1 2 3]
		{1, 2, 3, 4, 5}, // exact duplicate record: removed
		{9, 8, 7},       // kept
		{5, 5, 6},       // only 2 distinct -> dropped for k=3
	}
	rs := dataset.TopK(records, 3)
	if len(rs) != 3 {
		t.Fatalf("kept %d records: %v", len(rs), rs)
	}
	if rs[0].Items[0] != 1 || rs[0].Items[2] != 3 {
		t.Errorf("first ranking %v", rs[0])
	}
	for i, r := range rs {
		if r.ID != int64(i) {
			t.Errorf("ids not renumbered: %v", r)
		}
	}
}

func TestScaleProperties(t *testing.T) {
	base, err := dataset.Generate(dataset.GenConfig{N: 300, K: 8, Domain: 200, Skew: 0.8, DupRate: 0.2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	x3 := dataset.Scale(base, 3, 200)
	if len(x3) != 900 {
		t.Fatalf("scaled size %d", len(x3))
	}
	ids := map[int64]bool{}
	for _, r := range x3 {
		if ids[r.ID] {
			t.Fatalf("duplicate id %d after scaling", r.ID)
		}
		ids[r.ID] = true
		for _, it := range r.Items {
			if it < 0 || it >= 200 {
				t.Fatalf("scaled item %d escaped the domain", it)
			}
		}
	}
	// Result size must grow roughly linearly (the paper's requirement).
	maxDist := rankings.Threshold(0.1, 8)
	base1 := len(ppjoin.BruteForce(base, maxDist, nil))
	scaled := len(ppjoin.BruteForce(x3, maxDist, nil))
	if base1 == 0 {
		t.Skip("base dataset has no pairs at θ=0.1; adjust generator")
	}
	ratio := float64(scaled) / float64(base1)
	if ratio < 2.5 || ratio > 4.5 {
		t.Errorf("x3 scaling changed result size by %vx (want ≈3x: %d -> %d)", ratio, base1, scaled)
	}
	// Scaling by 1 is the identity.
	if got := dataset.Scale(base, 1, 200); len(got) != len(base) {
		t.Error("scale(1) changed the dataset")
	}
}

func TestProfilesProduceDistinctRegimes(t *testing.T) {
	d := dataset.DBLPLike.Config(1000, 10, 1)
	o := dataset.ORKULike.Config(1000, 10, 1)
	if d.Domain <= 0 || o.Domain <= 0 {
		t.Fatal("profiles produced empty domains")
	}
	if o.Skew <= d.Skew {
		t.Error("ORKU-like should be more skewed than DBLP-like")
	}
	if o.DupRate <= d.DupRate {
		t.Error("ORKU-like should have more near-duplicates")
	}
	small := dataset.DBLPLike.Config(1, 10, 1)
	if small.Domain < 40 {
		t.Errorf("domain clamp failed: %d", small.Domain)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rs, err := dataset.Generate(dataset.GenConfig{N: 50, K: 6, Domain: 60, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ds.txt")
	if err := dataset.SaveFile(path, rs); err != nil {
		t.Fatal(err)
	}
	back, err := dataset.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(rs) {
		t.Fatalf("round trip %d vs %d", len(back), len(rs))
	}
	for i := range rs {
		if back[i].ID != rs[i].ID || !rankings.Equal(back[i], rs[i]) {
			t.Fatalf("mismatch at %d", i)
		}
	}
	if _, err := dataset.LoadFile(filepath.Join(t.TempDir(), "missing.txt")); err == nil {
		t.Error("loading a missing file should fail")
	}
}

func TestLoadDistributedMatchesSequential(t *testing.T) {
	rs, err := dataset.Generate(dataset.GenConfig{N: 500, K: 8, Domain: 300, Skew: 0.7, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "dist.txt")
	if err := dataset.SaveFile(path, rs); err != nil {
		t.Fatal(err)
	}
	for _, parts := range []int{1, 3, 7, 16} {
		ctx := flow.NewContext(flow.Config{Workers: 4})
		ds, err := dataset.LoadDistributed(ctx, path, parts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ds.Collect()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(rs) {
			t.Fatalf("parts=%d: loaded %d, want %d", parts, len(got), len(rs))
		}
		byID := map[int64]*rankings.Ranking{}
		for _, r := range got {
			byID[r.ID] = r
		}
		for _, want := range rs {
			r, ok := byID[want.ID]
			if !ok || !rankings.Equal(r, want) {
				t.Fatalf("parts=%d: ranking %d missing or changed", parts, want.ID)
			}
		}
	}
}

func TestLoadDistributedBadInput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(path, []byte("1 2 3\nnot numbers\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ctx := flow.NewContext(flow.Config{Workers: 2})
	ds, err := dataset.LoadDistributed(ctx, path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Collect(); err == nil {
		t.Error("bad line accepted")
	}
}
