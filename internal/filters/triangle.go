package filters

// Triangle-inequality bounds used by the expansion phase (§5.3) and the
// metric-space utilities. All distances are unnormalized Footrule
// values; the bounds hold for any metric.

// TriangleLower returns the tightest lower bound on d(x, y) obtainable
// from a shared pivot c: |d(x, c) − d(y, c)|.
//
//ranklint:allocfree
func TriangleLower(dxc, dyc int) int {
	l := dxc - dyc
	if l < 0 {
		l = -l
	}
	return l
}

// TriangleUpper returns the upper bound d(x, c) + d(c, y) on d(x, y).
func TriangleUpper(dxc, dcy int) int { return dxc + dcy }

// TrianglePrune reports whether a candidate pair (x, y) with pivot
// distances dxc and dyc can be discarded for threshold maxDist:
// |d(x,c) − d(y,c)| > F implies d(x,y) > F.
//
//ranklint:allocfree
func TrianglePrune(dxc, dyc, maxDist int) bool {
	return TriangleLower(dxc, dyc) > maxDist
}

// TriangleAccept reports whether a candidate pair (x, y) with pivot
// distances dxc and dyc is certainly a result for threshold maxDist
// without verification: d(x,c) + d(c,y) ≤ F implies d(x,y) ≤ F. The
// paper's expansion only applies the prune; the accept is exposed as an
// additional optimization and exercised by the triangle-filter
// ablation bench.
func TriangleAccept(dxc, dcy, maxDist int) bool {
	return TriangleUpper(dxc, dcy) <= maxDist
}

// TwoPivotPrune lower-bounds d(τi, τj) when τi is known at distance
// dic from centroid ci, τj at distance djc from centroid cj, and the
// centroid distance d(ci, cj) = dcc is known:
//
//	d(τi, τj) ≥ d(ci, cj) − d(τi, ci) − d(τj, cj).
//
// It reports whether that bound already exceeds maxDist.
func TwoPivotPrune(dcc, dic, djc, maxDist int) bool {
	return dcc-dic-djc > maxDist
}
