// Package filters implements the search-space pruning mathematics of
// the paper: the two prefix-size bounds for top-k rankings under
// Spearman's Footrule (§4, Lemma 4.1), the position filter from the
// authors' prior work, and the triangle-inequality candidate filters
// used by the expansion phase (§5.3).
//
// All bounds are expressed over the unnormalized Footrule distance
// F ∈ [0, k(k+1)]; use rankings.Threshold to convert a normalized
// threshold θ first.
package filters

import "math"

// MinOverlap returns the smallest number of shared items ω two top-k
// rankings can have while still satisfying Footrule(τi, τj) ≤ maxDist:
//
//	ω = ⌈0.5·(1 + 2k − √(1 + 4F))⌉
//
// Rankings overlapping in fewer than ω items are guaranteed to be
// farther apart than maxDist. The result is clamped to [0, k].
//
//ranklint:allocfree
func MinOverlap(maxDist, k int) int {
	w := int(math.Ceil(0.5 * (1 + 2*float64(k) - math.Sqrt(1+4*float64(maxDist)))))
	if w < 0 {
		return 0
	}
	if w > k {
		return k
	}
	return w
}

// MinDistForOverlap returns the smallest possible Footrule distance
// between two top-k rankings that share exactly overlap items:
// m(m+1) with m = k − overlap (the non-shared items packed at the
// bottom of both rankings). It is the inverse view of MinOverlap and is
// used by property tests to certify the bound tight.
func MinDistForOverlap(overlap, k int) int {
	m := k - overlap
	return m * (m + 1)
}

// PrefixOverlap returns the prefix size p = k − ω + 1 induced by the
// overlap bound: any two rankings with Footrule ≤ maxDist must share at
// least one item among the first p items of their canonical
// (frequency-ordered) forms. This is the prefix the VJ adaptation and
// the CL pipeline index, because it permits free choice of which items
// form the prefix (and hence frequency reordering). Clamped to [1, k].
func PrefixOverlap(maxDist, k int) int {
	p := k - MinOverlap(maxDist, k) + 1
	if p < 1 {
		p = 1
	}
	if p > k {
		p = k
	}
	return p
}

// PrefixOrdered returns the ordered prefix size of Lemma 4.1:
//
//	p_o = ⌊√F / √2⌋ + 1
//
// valid while F ≤ k²/2 — any two rankings with Footrule ≤ maxDist must
// share an item within their first p_o *rank positions* (original rank
// order, no reordering allowed). Beyond F = k²/2 the paper leaves the
// bound open and we fall back to the full ranking (p_o = k).
func PrefixOrdered(maxDist, k int) int {
	if 2*maxDist > k*k {
		return k
	}
	p := int(math.Sqrt(float64(maxDist)/2)) + 1
	if p > k {
		p = k
	}
	return p
}

// LowestDistDisjointPrefix returns L(p, k) = 2p², the smallest Footrule
// distance two top-k rankings can have when none of their first p
// ranked items coincide (proof of Lemma 4.1). Exposed for tests.
func LowestDistDisjointPrefix(p int) int { return 2 * p * p }
