package filters

import "rankjoin/internal/rankings"

// The item-signature prefilter: a constant-time admissible reject
// placed in front of every merged-pass Footrule kernel.
//
// Each ranking folds its item set into a 128-bit bitset (one hashed bit
// per item, rankings.Signature). For two rankings A and B of length k
// with signatures sigA/sigB and popcounts popA/popB, the item overlap
// o = |A ∩ B| is bounded above by
//
//	o ≤ SharedBits(sigA, sigB) + (k − popA)
//
// (and symmetrically with popB): the shared items occupy bits inside
// sigA ∧ sigB, and at most k − popA of A's items collide onto an
// already-set bit, so removing the k − o non-shared items from A can
// erase at most k − o distinct bits — SharedBits(sigA, sigB) ≥ popA −
// (k − o). An overlap upper bound turns into a Footrule lower bound
// through MinDistForOverlap: two rankings sharing at most ō items are
// at distance at least (k−ō)(k−ō+1). The bound never rejects a true
// result (o ≤ ō ⇒ MinDistForOverlap(ō,k) ≤ MinDistForOverlap(o,k) ≤
// Footrule), which the signature property/fuzz tests certify.

// OverlapUpperBound returns an upper bound on the item overlap of two
// equal-length rankings from their signatures alone: two ANDs, two
// popcounts, two corrections for in-signature hash collisions. The
// result is clamped to [0, k].
func OverlapUpperBound(sigA rankings.Sig, popA int, sigB rankings.Sig, popB int, k int) int {
	shared := sigA.SharedBits(sigB)
	ub := shared + k - popA
	if b := shared + k - popB; b < ub {
		ub = b
	}
	if ub > k {
		ub = k
	}
	if ub < 0 {
		ub = 0
	}
	return ub
}

// SignatureFootruleLB converts an overlap upper bound into the
// admissible Footrule lower bound m(m+1) with m = k − overlapUB — the
// same packing argument as MinDistForOverlap.
func SignatureFootruleLB(overlapUB, k int) int {
	return MinDistForOverlap(overlapUB, k)
}

// SignaturePrune reports whether the candidate pair can be discarded
// for threshold maxDist on signature evidence alone: the Footrule
// lower bound induced by the overlap upper bound already exceeds
// maxDist. A false result does NOT imply the pair is within maxDist.
func SignaturePrune(sigA rankings.Sig, popA int, sigB rankings.Sig, popB int, k, maxDist int) bool {
	return SignatureFootruleLB(OverlapUpperBound(sigA, popA, sigB, popB, k), k) > maxDist
}
