package filters_test

import (
	"math/rand"
	"testing"

	"rankjoin/internal/filters"
	"rankjoin/internal/rankings"
	"rankjoin/internal/testutil"
)

// assertAdmissible certifies the two signature-prefilter contracts on
// one pair: the overlap upper bound dominates the true overlap, and
// the induced Footrule lower bound never exceeds the true distance —
// so SignaturePrune can never reject a pair with Footrule ≤ maxDist.
func assertAdmissible(t *testing.T, a, b *rankings.Ranking) {
	t.Helper()
	k := a.K()
	sa, pa := a.Signature()
	sb, pb := b.Signature()
	ub := filters.OverlapUpperBound(sa, pa, sb, pb, k)
	if ov := rankings.Overlap(a, b); ub < ov {
		t.Fatalf("overlap bound %d < true overlap %d for %v vs %v", ub, ov, a, b)
	}
	lb := filters.SignatureFootruleLB(ub, k)
	if d := rankings.Footrule(a, b); lb > d {
		t.Fatalf("signature lower bound %d > Footrule %d for %v vs %v", lb, d, a, b)
	}
	// SignaturePrune must agree with the bound it is defined by: prune
	// exactly when the lower bound exceeds the threshold.
	for _, maxDist := range []int{0, lb - 1, lb, lb + 1, rankings.MaxFootrule(k)} {
		if maxDist < 0 {
			continue
		}
		got := filters.SignaturePrune(sa, pa, sb, pb, k, maxDist)
		if want := lb > maxDist; got != want {
			t.Fatalf("SignaturePrune(maxDist=%d)=%v, bound says %v (lb=%d)", maxDist, got, want, lb)
		}
	}
}

// TestSignatureAdmissible sweeps the regimes the serving and join
// paths hand the prefilter: tiny k, paper-scale k, dense and sparse
// domains (dense domains maximize hash collisions inside a signature,
// the case the popcount correction exists for), and clustered
// near-duplicates where the bound must stay above real result pairs.
func TestSignatureAdmissible(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, k := range []int{1, 2, 5, 10, 25, 64, 80} {
		for _, domain := range []int{k, 2 * k, 10 * k, 1 << 20} {
			for trial := 0; trial < 400; trial++ {
				a := testutil.RandRanking(rng, 1, k, domain)
				b := testutil.RandRanking(rng, 2, k, domain)
				assertAdmissible(t, a, b)
			}
		}
	}
	// Near-duplicate clusters: overlap k or k-1, distance near zero —
	// the pairs a serving query must never lose.
	for _, k := range []int{5, 10, 25} {
		for _, r := range testutil.ClusteredDataset(rng, 40, 5, k, 30*k) {
			for _, s := range testutil.ClusteredDataset(rng, 1, 4, k, 30*k) {
				assertAdmissible(t, r, s)
			}
			assertAdmissible(t, r, r)
		}
	}
}

// TestSignatureUnindexedMatchesIndexed pins the accessor contract:
// the on-the-fly signature of an unindexed ranking equals the cached
// one after Index.
func TestSignatureUnindexedMatchesIndexed(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		r := testutil.RandRanking(rng, int64(trial), 10, 40)
		fresh := r.Clone() // drops the index
		if fresh.Indexed() {
			t.Fatal("clone unexpectedly indexed")
		}
		s1, p1 := fresh.Signature()
		s2, p2 := r.Signature()
		if s1 != s2 || p1 != p2 {
			t.Fatalf("unindexed signature (%x,%d) != indexed (%x,%d)", s1, p1, s2, p2)
		}
	}
}

// FuzzSignatureAdmissible drives the admissibility contract from
// arbitrary item bytes: any two duplicate-free equal-length item sets
// the fuzzer can construct must satisfy bound domination.
func FuzzSignatureAdmissible(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4}, []byte{3, 4, 5, 6})
	f.Add([]byte{0}, []byte{255})
	f.Add([]byte{10, 20, 30, 40, 50, 60, 70, 80}, []byte{10, 20, 30, 40, 50, 60, 70, 81})
	f.Fuzz(func(t *testing.T, rawA, rawB []byte) {
		a := rankingFromBytes(1, rawA)
		if a == nil {
			t.Skip()
		}
		b := rankingFromBytes(2, rawB)
		if b == nil || b.K() != a.K() {
			t.Skip()
		}
		a.Index()
		b.Index()
		assertAdmissible(t, a, b)
	})
}

// rankingFromBytes builds a duplicate-free ranking from fuzz bytes,
// spreading consecutive bytes across a wider id space so signatures
// see varied bit positions; nil when the bytes cannot form one.
func rankingFromBytes(id int64, raw []byte) *rankings.Ranking {
	if len(raw) == 0 || len(raw) > 64 {
		return nil
	}
	items := make([]rankings.Item, 0, len(raw))
	seen := make(map[rankings.Item]struct{}, len(raw))
	for i, c := range raw {
		it := rankings.Item(int32(c) + int32(i%3)*251)
		if _, dup := seen[it]; dup {
			return nil
		}
		seen[it] = struct{}{}
		items = append(items, it)
	}
	return rankings.MustNew(id, items)
}
