package filters

import (
	"testing"

	"rankjoin/internal/rankings"
)

// These tables pin the filter bounds at the exact integer boundaries
// θ·k(k+1) where inclusion flips — the regime the differential harness
// (internal/check) engineers its thresholds to land on. Every bound is
// cross-checked against its inverse witness function
// (MinDistForOverlap, LowestDistDisjointPrefix) on both sides of the
// boundary, so an off-by-one in either direction fails.

// TestThresholdExactIntegerBoundaries: for every k the paper considers
// and every realizable integer distance d, the normalized threshold
// θ = d/(k(k+1)) must convert back to exactly d — the epsilon guard in
// rankings.Threshold exists precisely because θ·k(k+1) can evaluate to
// d − 10⁻¹³ in floating point and a naive floor then drops every
// boundary-distance pair.
func TestThresholdExactIntegerBoundaries(t *testing.T) {
	for k := 1; k <= 25; k++ {
		maxF := rankings.MaxFootrule(k)
		for d := 0; d <= maxF; d++ {
			theta := float64(d) / float64(maxF)
			if got := rankings.Threshold(theta, k); got != d {
				t.Fatalf("k=%d d=%d: Threshold(%v) = %d, want %d", k, d, theta, got, d)
			}
		}
	}
}

// TestMinOverlapTightAtBoundary: MinOverlap is exact at every overlap
// witness distance. Two rankings sharing exactly ω items can realize
// F = m(m+1) with m = k − ω (MinDistForOverlap), so
// MinOverlap(m(m+1)) = ω; one distance unit below the witness the
// bound must demand one more shared item.
func TestMinOverlapTightAtBoundary(t *testing.T) {
	for k := 1; k <= 25; k++ {
		for omega := 0; omega <= k; omega++ {
			d := MinDistForOverlap(omega, k)
			if got := MinOverlap(d, k); got != omega {
				t.Errorf("k=%d: MinOverlap(%d) = %d, want %d (witness distance of overlap %d)",
					k, d, got, omega, omega)
			}
			if d > 0 && omega < k {
				if got := MinOverlap(d-1, k); got != omega+1 {
					t.Errorf("k=%d: MinOverlap(%d) = %d, want %d (below the overlap-%d witness)",
						k, d-1, got, omega+1, omega)
				}
			}
		}
	}
}

// TestPrefixOverlapAtBoundary: the indexed prefix is k − ω + 1 at each
// witness distance, clamped to [1, k] — at θ = 1 (ω = 0) the prefix is
// the whole ranking plus the catch-all group, and at d = 0 a single
// item suffices.
func TestPrefixOverlapAtBoundary(t *testing.T) {
	for k := 1; k <= 25; k++ {
		for omega := 0; omega <= k; omega++ {
			d := MinDistForOverlap(omega, k)
			want := k - omega + 1
			if want > k {
				want = k
			}
			if want < 1 {
				want = 1
			}
			if got := PrefixOverlap(d, k); got != want {
				t.Errorf("k=%d ω=%d: PrefixOverlap(%d) = %d, want %d", k, omega, d, got, want)
			}
		}
	}
	if got := PrefixOverlap(0, 1); got != 1 {
		t.Errorf("PrefixOverlap(0, 1) = %d, want 1 (lower clamp)", got)
	}
}

// TestPrefixOrderedTightAtBoundary: Lemma 4.1's ordered prefix is
// exact at its own witness distances. Two rankings with disjoint
// p-prefixes are at least L(p) = 2p² apart, so at F = 2p² the bound
// must extend to p + 1 positions, while at F = 2p² − 1 the first p
// positions still guarantee a shared item.
func TestPrefixOrderedTightAtBoundary(t *testing.T) {
	for k := 2; k <= 25; k++ {
		for p := 1; p <= k; p++ {
			d := LowestDistDisjointPrefix(p)
			if 2*d > k*k {
				break // beyond Lemma 4.1's validity; fallback tested below
			}
			want := p + 1
			if want > k {
				want = k
			}
			if got := PrefixOrdered(d, k); got != want {
				t.Errorf("k=%d: PrefixOrdered(%d) = %d, want %d (at the L(%d) witness)",
					k, d, got, want, p)
			}
			if 2*(d-1) <= k*k {
				wantBelow := p
				if wantBelow > k {
					wantBelow = k
				}
				if got := PrefixOrdered(d-1, k); got != wantBelow {
					t.Errorf("k=%d: PrefixOrdered(%d) = %d, want %d (below the L(%d) witness)",
						k, d-1, got, wantBelow, p)
				}
			}
		}
	}
}

// TestPrefixOrderedFallbackBoundary: the F > k²/2 validity edge. At
// 2F = k² the lemma still applies; one unit beyond, the bound must
// fall back to the full ranking, because the paper leaves the regime
// open and any shorter prefix would be unsound.
func TestPrefixOrderedFallbackBoundary(t *testing.T) {
	for k := 1; k <= 25; k++ {
		edge := k * k / 2
		if 2*edge <= k*k {
			in := PrefixOrdered(edge, k)
			if in < 1 || in > k {
				t.Errorf("k=%d: PrefixOrdered(%d) = %d out of [1,%d] inside validity", k, edge, in, k)
			}
		}
		beyond := k*k/2 + 1
		if 2*beyond > k*k {
			if got := PrefixOrdered(beyond, k); got != k {
				t.Errorf("k=%d: PrefixOrdered(%d) = %d, want full fallback %d", k, beyond, got, k)
			}
		}
		if got := PrefixOrdered(rankings.MaxFootrule(k), k); got != k {
			t.Errorf("k=%d: PrefixOrdered at max distance = %d, want %d", k, got, k)
		}
	}
}

// TestCatchAllRegimeBoundary: MinOverlap reaches 0 exactly when the
// threshold admits fully disjoint rankings (F ≥ k(k+1), i.e. θ = 1) —
// the regime where the pipelines must route records through the
// catch-all group because no shared-item prefix exists to meet on.
func TestCatchAllRegimeBoundary(t *testing.T) {
	for k := 1; k <= 25; k++ {
		maxF := rankings.MaxFootrule(k)
		if got := MinOverlap(maxF, k); got != 0 {
			t.Errorf("k=%d: MinOverlap at max distance = %d, want 0 (catch-all regime)", k, got)
		}
		if got := MinOverlap(maxF-1, k); got < 1 {
			t.Errorf("k=%d: MinOverlap just below max distance = %d, want ≥ 1", k, got)
		}
	}
}
