package filters

import "rankjoin/internal/rankings"

// The position filter (from the authors' prior work on top-k-list
// similarity search) prunes a candidate pair as soon as one shared item
// sits at very different ranks: because signed rank displacements over
// the common extended domain sum to zero, a single displacement of Δ
// forces a total Footrule distance of at least 2Δ. Hence
//
//	∃ i ∈ Dτ ∩ Dσ : |τ(i) − σ(i)| > F/2  ⇒  Footrule(τ, σ) > F.

// MaxRankDiff returns the largest rank difference a shared item may
// exhibit in a pair with Footrule distance ≤ maxDist: ⌊F/2⌋.
func MaxRankDiff(maxDist int) int { return maxDist / 2 }

// PositionPrune reports whether the pair (a, b) can be discarded
// because some shared item violates the rank-difference bound for
// maxDist. A false result does NOT imply the pair is within maxDist —
// it must still be verified. On indexed rankings this runs as one
// merged pass over the flat position indexes.
func PositionPrune(a, b *rankings.Ranking, maxDist int) bool {
	return rankings.SharedRankDiffExceeds(a, b, MaxRankDiff(maxDist))
}

// PositionPruneItem is the single-item form used while scanning posting
// lists: given the ranks of one shared item in both rankings, it
// reports whether that item alone already proves the pair distant.
func PositionPruneItem(rankA, rankB int32, maxDist int) bool {
	diff := int(rankA) - int(rankB)
	if diff < 0 {
		diff = -diff
	}
	return 2*diff > maxDist
}
