package filters_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rankjoin/internal/filters"
	"rankjoin/internal/rankings"
	"rankjoin/internal/testutil"
)

func TestMinOverlapBoundsAndMonotonicity(t *testing.T) {
	for _, k := range []int{2, 5, 10, 25} {
		prev := k + 1
		for f := 0; f <= rankings.MaxFootrule(k); f++ {
			w := filters.MinOverlap(f, k)
			if w < 0 || w > k {
				t.Fatalf("k=%d F=%d: ω=%d out of range", k, f, w)
			}
			if w > prev {
				t.Fatalf("k=%d F=%d: ω increased from %d to %d", k, f, prev, w)
			}
			prev = w
		}
		if w := filters.MinOverlap(0, k); w != k {
			t.Errorf("k=%d: ω(0)=%d, want k (identical rankings overlap fully)", k, w)
		}
		if w := filters.MinOverlap(rankings.MaxFootrule(k), k); w != 0 {
			t.Errorf("k=%d: ω(max)=%d, want 0", k, w)
		}
	}
}

// TestMinOverlapConsistentWithMinDist certifies the pair of inverse
// formulas: rankings sharing exactly o items are at distance at least
// MinDistForOverlap(o,k), and MinOverlap is the smallest o whose
// minimal distance still fits under the threshold.
func TestMinOverlapConsistentWithMinDist(t *testing.T) {
	for _, k := range []int{2, 5, 10, 25} {
		for f := 0; f <= rankings.MaxFootrule(k); f++ {
			w := filters.MinOverlap(f, k)
			if w > 0 && filters.MinDistForOverlap(w-1, k) <= f {
				t.Fatalf("k=%d F=%d: overlap %d already feasible, ω=%d not minimal",
					k, f, w-1, w)
			}
			if filters.MinDistForOverlap(w, k) > f && f < rankings.MaxFootrule(k) && w < k {
				// ω itself must be feasible (its minimal distance ≤ F)
				// except in degenerate corners.
				t.Fatalf("k=%d F=%d: ω=%d infeasible (min dist %d)",
					k, f, w, filters.MinDistForOverlap(w, k))
			}
		}
	}
}

// TestMinDistForOverlapAchievable constructs the witness from the
// lemma's proof: shared items on top in identical order, non-shared
// items packed at the bottom — the distance is exactly m(m+1).
func TestMinDistForOverlapAchievable(t *testing.T) {
	k := 10
	for o := 0; o <= k; o++ {
		a := make([]rankings.Item, 0, k)
		b := make([]rankings.Item, 0, k)
		for i := 0; i < o; i++ { // shared head
			a = append(a, rankings.Item(i))
			b = append(b, rankings.Item(i))
		}
		for i := o; i < k; i++ { // disjoint tails
			a = append(a, rankings.Item(100+i))
			b = append(b, rankings.Item(200+i))
		}
		ra, rb := rankings.MustNew(0, a), rankings.MustNew(1, b)
		if got, want := rankings.Footrule(ra, rb), filters.MinDistForOverlap(o, k); got != want {
			t.Errorf("o=%d: witness distance %d, want %d", o, got, want)
		}
	}
}

// TestOverlapNeverBelowBound: no pair within distance F overlaps in
// fewer than MinOverlap(F,k) items.
func TestOverlapNeverBelowBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(12)
		dom := k + rng.Intn(2*k)
		a := testutil.RandRanking(rng, 0, k, dom)
		b := testutil.RandRanking(rng, 1, k, dom)
		d := rankings.Footrule(a, b)
		return rankings.Overlap(a, b) >= filters.MinOverlap(d, k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// TestPrefixOverlapComplete: any pair within the threshold shares at
// least one item among the first p = PrefixOverlap items of the
// canonical forms — for ANY canonical order (we use a random one).
func TestPrefixOverlapComplete(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(10)
		dom := k + rng.Intn(k)
		a := testutil.RandRanking(rng, 0, k, dom)
		b := testutil.RandRanking(rng, 1, k, dom)
		maxDist := rng.Intn(rankings.MaxFootrule(k) + 1)
		if rankings.Footrule(a, b) > maxDist {
			return true // only completeness is claimed
		}
		// Random global order: frequency order is just one instance.
		counts := map[rankings.Item]int64{}
		for i := 0; i < dom; i++ {
			counts[rankings.Item(i)] = rng.Int63n(50)
		}
		o := rankings.NewOrder(counts)
		p := filters.PrefixOverlap(maxDist, k)
		pa, pb := o.Prefix(a, p), o.Prefix(b, p)
		for _, x := range pa {
			for _, y := range pb {
				if x == y {
					return true
				}
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Fatal(err)
	}
}

// TestPrefixOrderedComplete: Lemma 4.1 — any pair within the threshold
// shares an item within the first p_o original rank positions.
func TestPrefixOrderedComplete(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(10)
		dom := k + rng.Intn(k)
		a := testutil.RandRanking(rng, 0, k, dom)
		b := testutil.RandRanking(rng, 1, k, dom)
		maxDist := rng.Intn(rankings.MaxFootrule(k) + 1)
		if rankings.Footrule(a, b) > maxDist {
			return true
		}
		p := filters.PrefixOrdered(maxDist, k)
		for _, x := range a.Items[:p] {
			for _, y := range b.Items[:p] {
				if x == y {
					return true
				}
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Fatal(err)
	}
}

// TestLemma41Witness reproduces the lemma's tightness argument: two
// rankings over the same domain whose first p items are swapped into
// the following p positions are at distance exactly L(p,k) = 2p².
func TestLemma41Witness(t *testing.T) {
	k := 12
	for p := 1; 2*p <= k; p++ {
		items := make([]rankings.Item, k)
		for i := range items {
			items[i] = rankings.Item(i)
		}
		swapped := make([]rankings.Item, k)
		copy(swapped, items)
		for i := 0; i < p; i++ {
			swapped[i], swapped[p+i] = swapped[p+i], swapped[i]
		}
		a := rankings.MustNew(0, items)
		b := rankings.MustNew(1, swapped)
		if got, want := rankings.Footrule(a, b), filters.LowestDistDisjointPrefix(p); got != want {
			t.Errorf("p=%d: witness distance %d, want %d", p, got, want)
		}
		// And the ordered prefix for thresholds just below 2p² must be
		// at most p (it would miss this pair at exactly 2p² only if
		// the +1 slack were absent).
		if po := filters.PrefixOrdered(2*p*p, k); po < p+1 {
			t.Errorf("p=%d: ordered prefix %d too small to catch witness", p, po)
		}
	}
}

func TestPrefixOrderedFallbackBeyondValidity(t *testing.T) {
	k := 10
	if got := filters.PrefixOrdered(k*k/2+1, k); got != k {
		t.Errorf("beyond validity: prefix %d, want full k=%d", got, k)
	}
}

// TestPositionFilterSound: the position filter never prunes a pair
// within the threshold.
func TestPositionFilterSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(12)
		dom := k + rng.Intn(2*k)
		a := testutil.RandRanking(rng, 0, k, dom)
		b := testutil.RandRanking(rng, 1, k, dom)
		maxDist := rng.Intn(rankings.MaxFootrule(k) + 1)
		if filters.PositionPrune(a, b, maxDist) {
			return rankings.Footrule(a, b) > maxDist
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Fatal(err)
	}
}

func TestPositionPruneItemAgreesWithPairForm(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 500; trial++ {
		k := 2 + rng.Intn(12)
		a := testutil.RandRanking(rng, 0, k, 2*k)
		b := testutil.RandRanking(rng, 1, k, 2*k)
		maxDist := rng.Intn(rankings.MaxFootrule(k) + 1)
		anyItem := false
		for rank, it := range a.Items {
			if rb, ok := b.Pos(it); ok {
				if filters.PositionPruneItem(int32(rank), rb, maxDist) {
					anyItem = true
				}
			}
		}
		if anyItem != filters.PositionPrune(a, b, maxDist) {
			t.Fatalf("item and pair forms disagree (k=%d maxDist=%d)", k, maxDist)
		}
	}
}

func TestTriangleBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 800; trial++ {
		k := 2 + rng.Intn(10)
		dom := k + rng.Intn(2*k)
		x := testutil.RandRanking(rng, 0, k, dom)
		y := testutil.RandRanking(rng, 1, k, dom)
		c := testutil.RandRanking(rng, 2, k, dom)
		dxy := rankings.Footrule(x, y)
		dxc := rankings.Footrule(x, c)
		dyc := rankings.Footrule(y, c)
		if lo := filters.TriangleLower(dxc, dyc); lo > dxy {
			t.Fatalf("lower bound %d exceeds true distance %d", lo, dxy)
		}
		if up := filters.TriangleUpper(dxc, dyc); up < dxy {
			t.Fatalf("upper bound %d below true distance %d", up, dxy)
		}
		maxDist := rng.Intn(rankings.MaxFootrule(k) + 1)
		if filters.TrianglePrune(dxc, dyc, maxDist) && dxy <= maxDist {
			t.Fatal("triangle prune dropped a true result")
		}
		if filters.TriangleAccept(dxc, dyc, maxDist) && dxy > maxDist {
			t.Fatal("triangle accept admitted a false result")
		}
	}
}

func TestTwoPivotPruneSound(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 800; trial++ {
		k := 2 + rng.Intn(10)
		dom := k + rng.Intn(2*k)
		ti := testutil.RandRanking(rng, 0, k, dom)
		tj := testutil.RandRanking(rng, 1, k, dom)
		ci := testutil.RandRanking(rng, 2, k, dom)
		cj := testutil.RandRanking(rng, 3, k, dom)
		dcc := rankings.Footrule(ci, cj)
		dic := rankings.Footrule(ti, ci)
		djc := rankings.Footrule(tj, cj)
		maxDist := rng.Intn(rankings.MaxFootrule(k) + 1)
		if filters.TwoPivotPrune(dcc, dic, djc, maxDist) &&
			rankings.Footrule(ti, tj) <= maxDist {
			t.Fatal("two-pivot prune dropped a true result")
		}
	}
}
