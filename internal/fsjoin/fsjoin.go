// Package fsjoin adapts FS-Join (Rong et al., ICDE 2017) — the
// segment-partitioned set-similarity join from the paper's related work
// (§2) — to top-k rankings under the Footrule distance.
//
// FS-Join partitions the data vertically: the canonical (frequency)
// token order is cut into f contiguous segments, every record is routed
// to each segment where it holds at least one token, and each segment
// is joined independently. Its two selling points are reproduced:
// no duplicate results (a pair is emitted only in the segment of its
// canonically smallest common token) and smoother load than one-token
// posting lists (a segment aggregates many tokens).
package fsjoin

import (
	"fmt"

	"rankjoin/internal/filters"
	"rankjoin/internal/flow"
	"rankjoin/internal/obs"
	"rankjoin/internal/rankings"
)

// Options configures an FS-Join run.
type Options struct {
	// Theta is the normalized Footrule threshold θ ∈ [0, 1].
	Theta float64
	// Segments is the number of vertical segments f (the paper tunes
	// it per dataset); 0 picks 2× the partition count.
	Segments int
	// Partitions is the shuffle partition count (0 = context default).
	Partitions int
}

// Join finds all pairs within opts.Theta via segment partitioning.
func Join(ctx *flow.Context, rs []*rankings.Ranking, opts Options) ([]rankings.Pair, error) {
	if opts.Theta < 0 || opts.Theta > 1 {
		return nil, fmt.Errorf("fsjoin: theta %v out of [0,1]", opts.Theta)
	}
	if len(rs) == 0 {
		return nil, nil
	}
	k := rs[0].K()
	for _, r := range rs {
		if r.K() != k {
			return nil, fmt.Errorf("fsjoin: mixed ranking lengths %d and %d", k, r.K())
		}
	}
	maxDist := rankings.Threshold(opts.Theta, k)

	parts := opts.Partitions
	if parts <= 0 {
		parts = ctx.Config().DefaultPartitions
	}
	segments := opts.Segments
	if segments <= 0 {
		segments = 2 * parts
	}

	ds := flow.Parallelize(ctx, rs, opts.Partitions)
	ord, err := orderOf(ds, parts)
	if err != nil {
		return nil, err
	}
	ordB := flow.NewBroadcast(ctx, ord)
	vocab := ord.Len()
	if vocab < segments {
		segments = vocab
	}
	segOf := func(item rankings.Item) int {
		return int(int64(ordB.Value().Rank(item)) * int64(segments) / int64(vocab))
	}
	// Degenerate regime: zero-overlap result pairs (see
	// rankings.CatchAllItem) go to an extra segment holding everything.
	needAll := filters.MinOverlap(maxDist, k) == 0

	routed := flow.FlatMap(ds, func(r *rankings.Ranking) []flow.KV[int, *rankings.Ranking] {
		seen := make(map[int]struct{}, 4)
		var out []flow.KV[int, *rankings.Ranking]
		for _, it := range r.Items {
			s := segOf(it)
			if _, dup := seen[s]; !dup {
				seen[s] = struct{}{}
				out = append(out, flow.KV[int, *rankings.Ranking]{K: s, V: r})
			}
		}
		if needAll {
			out = append(out, flow.KV[int, *rankings.Ranking]{K: segments, V: r})
		}
		return out
	})
	groups := flow.GroupByKey(routed, parts)

	segHist := ctx.Histogram("fsjoin/segment_records")
	pairs := flow.FlatMap(groups, func(g flow.KV[int, []*rankings.Ranking]) []rankings.Pair {
		segHist.Observe(int64(len(g.V)))
		var out []rankings.Pair
		// Only home-segment pairs count as candidates: the same pair
		// enumerated in a foreign segment is a routing artifact, not a
		// filter-cascade decision.
		var delta obs.FilterDelta
		for i := 0; i < len(g.V); i++ {
			a := g.V[i]
			for j := i + 1; j < len(g.V); j++ {
				b := g.V[j]
				if a.ID == b.ID {
					continue
				}
				// Emit only in the segment of the canonically smallest
				// common item — FS-Join's no-duplicates property. Pairs
				// with no common item belong to the catch-all segment.
				home, ok := minCommonSegment(ordB.Value(), segOf, a, b)
				if !ok {
					home = segments
				}
				if home != g.K {
					continue
				}
				delta.Generated++
				if filters.PositionPrune(a, b, maxDist) {
					delta.PrunedPosition++
					continue
				}
				delta.Verified++
				if d, within := rankings.FootruleWithin(a, b, maxDist); within {
					delta.Emitted++
					out = append(out, rankings.NewPair(a.ID, b.ID, d))
				}
			}
		}
		ctx.Filters().Add(delta)
		return out
	})
	out, err := pairs.Collect()
	if err != nil {
		return nil, err
	}
	rankings.SortPairs(out)
	return out, nil
}

// minCommonSegment returns the segment of the canonically smallest item
// the two rankings share, and whether they share any.
func minCommonSegment(ord *rankings.Order, segOf func(rankings.Item) int, a, b *rankings.Ranking) (int, bool) {
	best := int32(-1)
	var bestItem rankings.Item
	for _, it := range a.Items {
		if b.Contains(it) {
			if r := ord.Rank(it); best < 0 || r < best {
				best = r
				bestItem = it
			}
		}
	}
	if best < 0 {
		return 0, false
	}
	return segOf(bestItem), true
}

func orderOf(ds *flow.Dataset[*rankings.Ranking], parts int) (*rankings.Order, error) {
	tokens := flow.FlatMap(ds, func(r *rankings.Ranking) []flow.KV[rankings.Item, int64] {
		out := make([]flow.KV[rankings.Item, int64], len(r.Items))
		for i, it := range r.Items {
			out[i] = flow.KV[rankings.Item, int64]{K: it, V: 1}
		}
		return out
	})
	counted, err := flow.ReduceByKey(tokens, parts, func(a, b int64) int64 { return a + b }).Collect()
	if err != nil {
		return nil, err
	}
	counts := make(map[rankings.Item]int64, len(counted))
	for _, kv := range counted {
		counts[kv.K] = kv.V
	}
	return rankings.NewOrder(counts), nil
}
