package fsjoin_test

import (
	"math/rand"
	"testing"

	"rankjoin/internal/flow"
	"rankjoin/internal/fsjoin"
	"rankjoin/internal/ppjoin"
	"rankjoin/internal/rankings"
	"rankjoin/internal/testutil"
)

func ctx(workers int) *flow.Context {
	return flow.NewContext(flow.Config{Workers: workers, DefaultPartitions: 4})
}

// TestFSJoinMatchesOracle over random datasets, thresholds (including
// the degenerate θ range) and segment counts.
func TestFSJoinMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		k := 3 + rng.Intn(10)
		rs := testutil.RandDataset(rng, 40+rng.Intn(80), k, k+rng.Intn(4*k))
		theta := rng.Float64()
		want := rankings.DedupPairs(ppjoin.BruteForce(rs, rankings.Threshold(theta, k), nil))
		got, err := fsjoin.Join(ctx(1+rng.Intn(4)), rs, fsjoin.Options{
			Theta:      theta,
			Segments:   1 + rng.Intn(30),
			Partitions: 1 + rng.Intn(6),
		})
		if err != nil {
			t.Fatal(err)
		}
		if !rankings.SamePairs(got, want) {
			extra, missing := rankings.DiffPairs(got, want)
			t.Fatalf("trial %d k=%d θ=%.3f: extra=%v missing=%v", trial, k, theta, extra, missing)
		}
	}
}

// TestFSJoinNoDuplicates: the raw output (no distinct stage!) must be
// duplicate-free — FS-Join's claimed property.
func TestFSJoinNoDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rs := testutil.ClusteredDataset(rng, 20, 4, 10, 60)
	got, err := fsjoin.Join(ctx(4), rs, fsjoin.Options{Theta: 0.3, Segments: 8})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[rankings.PairKey]bool{}
	for _, p := range got {
		if seen[p.Key()] {
			t.Fatalf("duplicate pair %v", p)
		}
		seen[p.Key()] = true
	}
	if len(got) == 0 {
		t.Fatal("no results on clustered data")
	}
}

func TestFSJoinValidation(t *testing.T) {
	if got, err := fsjoin.Join(ctx(1), nil, fsjoin.Options{Theta: 0.3}); err != nil || len(got) != 0 {
		t.Errorf("empty: %v %v", got, err)
	}
	mixed := []*rankings.Ranking{
		rankings.MustNew(0, []rankings.Item{1, 2, 3}),
		rankings.MustNew(1, []rankings.Item{1, 2}),
	}
	if _, err := fsjoin.Join(ctx(1), mixed, fsjoin.Options{Theta: 0.3}); err == nil {
		t.Error("mixed lengths accepted")
	}
	if _, err := fsjoin.Join(ctx(1), mixed[:1], fsjoin.Options{Theta: 9}); err == nil {
		t.Error("bad theta accepted")
	}
	// More segments than vocabulary: clamps and stays correct.
	small := []*rankings.Ranking{
		rankings.MustNew(0, []rankings.Item{1, 2}),
		rankings.MustNew(1, []rankings.Item{2, 1}),
	}
	got, err := fsjoin.Join(ctx(1), small, fsjoin.Options{Theta: 0.5, Segments: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Dist != 2 {
		t.Errorf("tiny vocab join: %v", got)
	}
}
