package experiments_test

import (
	"strings"
	"testing"
	"time"

	"rankjoin/internal/dataset"
	"rankjoin/internal/experiments"
)

func tinyParams() experiments.Params {
	p := experiments.DefaultParams()
	p.DBLPBase = 300
	p.ORKUBase = 300
	p.Repeats = 1
	p.Partitions = 4
	return p
}

func TestTableRender(t *testing.T) {
	tb := &experiments.Table{
		Name:    "demo",
		Title:   "demo table",
		Columns: []string{"a", "longer"},
	}
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	tb.AddNote("a note %d", 7)
	out := tb.Render()
	for _, want := range []string{"demo table", "longer", "333", "note: a note 7"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	// Every figure of the paper's evaluation must be present.
	wanted := []string{
		"table3",
		"fig6a", "fig6b", "fig6c", "fig6d", "fig6e",
		"fig7a", "fig7b", "fig8",
		"fig9a", "fig9b", "fig9c",
		"fig10a", "fig10b", "fig10c",
		"fig11", "fig12a", "fig12b", "fig13",
	}
	for _, name := range wanted {
		if _, err := experiments.Get(name); err != nil {
			t.Errorf("registry missing %s", name)
		}
	}
	if _, err := experiments.Get("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
	if len(experiments.Names()) < len(wanted) {
		t.Error("registry smaller than the figure list")
	}
}

func TestMakeWorkloadCachesAndScales(t *testing.T) {
	p := tinyParams()
	a, err := experiments.MakeWorkload(p, dataset.DBLPLike, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := experiments.MakeWorkload(p, dataset.DBLPLike, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if &a.Rankings[0] == nil || len(a.Rankings) != len(b.Rankings) {
		t.Fatal("cache broken")
	}
	x5, err := experiments.MakeWorkload(p, dataset.DBLPLike, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(x5.Rankings) != 5*len(a.Rankings) {
		t.Errorf("x5 size %d, want %d", len(x5.Rankings), 5*len(a.Rankings))
	}
	if !strings.Contains(x5.Name, "x5") {
		t.Errorf("workload name %q", x5.Name)
	}
}

// TestRunAgreesAcrossAlgorithms: the harness runs every algorithm and
// they agree on the result cardinality.
func TestRunAgreesAcrossAlgorithms(t *testing.T) {
	p := tinyParams()
	w, err := experiments.MakeWorkload(p, dataset.ORKULike, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	var pairs []int
	for _, algo := range experiments.AllAlgos {
		m, err := experiments.Run(w, experiments.RunConfig{
			Algo: algo, Theta: 0.3, Partitions: 4,
		})
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		pairs = append(pairs, m.Pairs)
		if m.Wall <= 0 {
			t.Errorf("%s: no wall time", algo)
		}
		if m.Engine.Tasks == 0 {
			t.Errorf("%s: no engine tasks", algo)
		}
	}
	for i := 1; i < len(pairs); i++ {
		if pairs[i] != pairs[0] {
			t.Fatalf("algorithms disagree on result size: %v", pairs)
		}
	}
}

func TestRunRejectsUnknownAlgo(t *testing.T) {
	p := tinyParams()
	w, err := experiments.MakeWorkload(p, dataset.DBLPLike, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := experiments.Run(w, experiments.RunConfig{Algo: "bogus", Theta: 0.2}); err == nil {
		t.Error("unknown algo accepted")
	}
}

// TestFigureSmoke: each figure function produces a well-formed table at
// tiny scale. fig6c (×10) and the δ sweeps are the slowest; tiny bases
// keep this test in seconds.
func TestFigureSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("figure smoke test is seconds-long; skipped with -short")
	}
	p := tinyParams()
	for _, name := range []string{"table3", "fig6a", "fig7b", "fig8", "fig9a", "fig10a", "fig12a", "fig13"} {
		exp, err := experiments.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := exp.Run(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tb.Rows) == 0 || len(tb.Columns) == 0 {
			t.Errorf("%s: empty table", name)
		}
		for _, row := range tb.Rows {
			if len(row) != len(tb.Columns) {
				t.Errorf("%s: ragged row %v vs columns %v", name, row, tb.Columns)
			}
		}
	}
}

// TestAblationSmoke: the ablation experiments run and produce tables.
func TestAblationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation smoke test is seconds-long; skipped with -short")
	}
	p := tinyParams()
	for _, name := range []string{
		"ablation-ordering", "ablation-lemma53", "ablation-triangle",
		"ablation-clustering", "ablation-dedup",
	} {
		exp, err := experiments.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := exp.Run(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tb.Rows) == 0 {
			t.Errorf("%s: empty table", name)
		}
	}
}

// TestSeriesDNFBudget: a cell beyond the budget marks the remaining
// cells of its series DNF rather than running them.
func TestSeriesDNFBudget(t *testing.T) {
	p := tinyParams()
	p.CellBudget = time.Nanosecond // everything blows the budget
	tb, err := experiments.Figure6(p, dataset.DBLPLike, 1, "fig6-dnf")
	if err != nil {
		t.Fatal(err)
	}
	dnf := 0
	for _, row := range tb.Rows {
		for _, cell := range row {
			if cell == "DNF" {
				dnf++
			}
		}
	}
	if dnf == 0 {
		t.Error("nanosecond budget produced no DNF cells")
	}
}
