// Package experiments reproduces the paper's experimental study (§7):
// one experiment per table/figure, each producing the same rows/series
// the paper reports, at laptop scale. The absolute numbers differ from
// the paper's 8-node Spark cluster; the shapes — who wins, by what
// factor, where the crossovers fall — are what the experiments assert.
package experiments

import (
	"fmt"
	"strings"
	"time"
)

// Table is one experiment's output: a header row plus one row per
// parameter setting, rendered as aligned text.
type Table struct {
	// Name identifies the experiment ("fig6a", "fig9", ...).
	Name string
	// Title is the paper's caption, paraphrased.
	Title string
	// Columns are the header cells; Rows the data cells.
	Columns []string
	Rows    [][]string
	// Notes carries free-form observations (DNF cells, chosen
	// parameters).
	Notes []string
}

// AddRow appends a data row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a note line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render formats the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", t.Name, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// fmtDur renders a duration as fractional milliseconds, or "DNF" for
// cells that exceeded the budget (negative duration).
func fmtDur(d time.Duration) string {
	if d < 0 {
		return "DNF"
	}
	return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000.0)
}

func fmtF(v float64) string { return fmt.Sprintf("%.2f", v) }
