package experiments

import (
	"fmt"
	"time"

	"rankjoin/internal/core"
	"rankjoin/internal/dataset"
	"rankjoin/internal/flow"
	"rankjoin/internal/metricspace"
	"rankjoin/internal/rankings"
	"rankjoin/internal/vj"
)

// The ablation experiments isolate the design choices the paper asserts
// but does not always measure separately. Each one toggles exactly one
// mechanism and reports both wall time and the internal counter the
// mechanism is supposed to move.

func newCtx(p Params) *flow.Context {
	ctx := flow.NewContext(flow.Config{Workers: p.Workers, DefaultPartitions: p.Partitions})
	ctx.SetTracer(p.Tracer)
	return ctx
}

// AblationOrdering measures §4's claim that frequency reordering pays
// off for top-k rankings even though their length is fixed: VJ-NL with
// the frequency order vs the identity order, across θ.
func AblationOrdering(p Params) (*Table, error) {
	w, err := MakeWorkload(p, dataset.DBLPLike, 10, 1)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name:    "ablation-ordering",
		Title:   fmt.Sprintf("VJ-NL with vs without frequency reordering — %s", w.Name),
		Columns: []string{"theta", "ordered(ms)", "identity(ms)", "ordered cand", "identity cand"},
	}
	for _, th := range Thetas {
		var stOrd, stId vj.Stats
		startOrd := time.Now()
		if _, err := vj.Join(newCtx(p), w.Rankings, vj.Options{
			Theta: th, Variant: vj.NestedLoop, Stats: &stOrd,
		}); err != nil {
			return nil, err
		}
		dOrd := time.Since(startOrd)
		startID := time.Now()
		if _, err := vj.Join(newCtx(p), w.Rankings, vj.Options{
			Theta: th, Variant: vj.NestedLoop, SkipReorder: true, Stats: &stId,
		}); err != nil {
			return nil, err
		}
		dID := time.Since(startID)
		t.AddRow(fmtF(th), fmtDur(dOrd), fmtDur(dID),
			fmt.Sprint(stOrd.Snapshot().Candidates), fmt.Sprint(stId.Snapshot().Candidates))
	}
	return t, nil
}

// AblationLemma53 measures Algorithm 1's refinement: joining the
// centroids with per-type thresholds vs a uniform θ+2θc.
func AblationLemma53(p Params) (*Table, error) {
	w, err := MakeWorkload(p, dataset.ORKULike, 10, 1)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name:    "ablation-lemma53",
		Title:   fmt.Sprintf("centroid join with Lemma 5.3 vs uniform θ+2θc — %s", w.Name),
		Columns: []string{"theta", "lemma(ms)", "uniform(ms)", "lemma Rj", "uniform Rj"},
	}
	for _, th := range Thetas {
		run := func(uniform bool) (time.Duration, int64, error) {
			st := &core.Stats{}
			start := time.Now()
			_, err := core.Join(newCtx(p), w.Rankings, core.Options{
				Theta: th, ThetaC: 0.03, UniformJoinThreshold: uniform, Stats: st,
			})
			return time.Since(start), st.CentroidPairs, err
		}
		dl, rl, err := run(false)
		if err != nil {
			return nil, err
		}
		du, ru, err := run(true)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmtF(th), fmtDur(dl), fmtDur(du), fmt.Sprint(rl), fmt.Sprint(ru))
	}
	t.AddNote("Rj = centroid pairs retrieved by the joining phase; Lemma 5.3 should retrieve fewer")
	return t, nil
}

// AblationTriangle measures §5.3's expansion filter: with the triangle
// pruning vs verifying every expansion candidate.
func AblationTriangle(p Params) (*Table, error) {
	w, err := MakeWorkload(p, dataset.ORKULike, 10, 1)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name:    "ablation-triangle",
		Title:   fmt.Sprintf("expansion with vs without triangle filtering — %s", w.Name),
		Columns: []string{"theta", "filter(ms)", "nofilter(ms)", "verified w/", "verified w/o"},
	}
	for _, th := range Thetas {
		run := func(noFilter bool) (time.Duration, int64, error) {
			st := &core.Stats{}
			start := time.Now()
			_, err := core.Join(newCtx(p), w.Rankings, core.Options{
				Theta: th, ThetaC: 0.03, NoTriangleFilter: noFilter, Stats: st,
			})
			return time.Since(start), st.ExpandVerified.Load(), err
		}
		df, vf, err := run(false)
		if err != nil {
			return nil, err
		}
		dn, vn, err := run(true)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmtF(th), fmtDur(df), fmtDur(dn), fmt.Sprint(vf), fmt.Sprint(vn))
	}
	return t, nil
}

// AblationClustering compares the paper's pair-derived clustering with
// the random-centroid partitioning of §2/§5.1 at the same clustering
// threshold — the paper's argument is that random centroids mostly
// produce empty clusters at small θc.
func AblationClustering(p Params) (*Table, error) {
	w, err := MakeWorkload(p, dataset.ORKULike, 10, 1)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name:    "ablation-clustering",
		Title:   fmt.Sprintf("pair-derived clusters (paper) vs random centroids — %s, θc=0.03", w.Name),
		Columns: []string{"method", "clusters", "members", "singletons", "empty%", "distances"},
	}
	// Paper's clustering: derived from the CL run's stats.
	st := &core.Stats{}
	if _, err := core.Join(newCtx(p), w.Rankings, core.Options{
		Theta: 0.3, ThetaC: 0.03, Stats: st,
	}); err != nil {
		return nil, err
	}
	t.AddRow("pair-derived",
		fmt.Sprint(st.Clusters),
		fmt.Sprint(st.ClusterPairs),
		fmt.Sprint(st.Singletons),
		"0", // every formed cluster has at least one member by construction
		fmt.Sprint(st.Clustering.Snapshot().Verified))

	// Random centroids at the same radius, cluster count set to the
	// pair-derived outcome (the paper notes it must be chosen upfront —
	// we give it the oracle answer and it still underperforms).
	maxDist := rankings.Threshold(0.03, 10)
	numCentroids := int(st.Clusters)
	if numCentroids < 1 {
		numCentroids = 1
	}
	res, err := metricspace.RandomCentroidClustering(w.Rankings, numCentroids, maxDist, p.Seed)
	if err != nil {
		return nil, err
	}
	members := 0
	nonEmpty := 0
	for _, c := range res.Clusters {
		members += len(c.Members)
		if len(c.Members) > 0 {
			nonEmpty++
		}
	}
	t.AddRow("random-centroid",
		fmt.Sprint(nonEmpty),
		fmt.Sprint(members),
		fmt.Sprint(len(res.Singletons)),
		fmt.Sprintf("%.0f", 100*res.EmptyClusterFraction()),
		fmt.Sprint(res.AssignmentDistances))
	return t, nil
}

// AblationDedup compares the paper's final dedup shuffle with the
// least-common-prefix-token emission that avoids duplicates at the
// source.
func AblationDedup(p Params) (*Table, error) {
	w, err := MakeWorkload(p, dataset.DBLPLike, 10, 1)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name:    "ablation-dedup",
		Title:   fmt.Sprintf("VJ-NL final-distinct vs least-token dedup — %s", w.Name),
		Columns: []string{"theta", "distinct(ms)", "least-token(ms)", "shuffled w/", "shuffled w/o"},
	}
	for _, th := range Thetas {
		run := func(leastToken bool) (time.Duration, int64, error) {
			ctx := newCtx(p)
			start := time.Now()
			_, err := vj.Join(ctx, w.Rankings, vj.Options{
				Theta: th, Variant: vj.NestedLoop, LeastTokenDedup: leastToken,
			})
			return time.Since(start), ctx.Snapshot().ShuffleRecords, err
		}
		dd, sd, err := run(false)
		if err != nil {
			return nil, err
		}
		dl, sl, err := run(true)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmtF(th), fmtDur(dd), fmtDur(dl), fmt.Sprint(sd), fmt.Sprint(sl))
	}
	return t, nil
}

// Baselines compares the paper's four algorithms with the two §2
// baselines reproduced in this repository (V-SMART and the anchor-based
// ClusterJoin family) on one dataset across θ.
func Baselines(p Params) (*Table, error) {
	w, err := MakeWorkload(p, dataset.ORKULike, 10, 1)
	if err != nil {
		return nil, err
	}
	algos := append(append([]Algo(nil), AllAlgos...), AlgoVSMART, AlgoClusterJoin, AlgoFSJoin)
	t := &Table{
		Name:    "baselines",
		Title:   fmt.Sprintf("paper algorithms vs §2 baselines, time (ms) — %s", w.Name),
		Columns: []string{"theta"},
	}
	for _, a := range algos {
		t.Columns = append(t.Columns, string(a))
	}
	rows := make(map[Algo][]time.Duration)
	for _, a := range algos {
		times, _, err := series(p, w, a, Thetas, RunConfig{})
		if err != nil {
			return nil, err
		}
		rows[a] = times
	}
	for i, th := range Thetas {
		row := []string{fmtF(th)}
		for _, a := range algos {
			row = append(row, fmtDur(rows[a][i]))
		}
		t.AddRow(row...)
	}
	return t, nil
}
