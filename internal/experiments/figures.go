package experiments

import (
	"fmt"
	"runtime"
	"time"

	"rankjoin/internal/dataset"
)

// Figure6 reproduces one panel of Figure 6: execution time of the four
// algorithms as θ varies, for the given dataset profile and scale.
func Figure6(p Params, prof dataset.Profile, scale int, name string) (*Table, error) {
	w, err := MakeWorkload(p, prof, 10, scale)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name:    name,
		Title:   fmt.Sprintf("execution time (ms) vs θ — %s, %d rankings", w.Name, len(w.Rankings)),
		Columns: []string{"theta", "VJ", "VJ-NL", "CL", "CL-P", "pairs"},
	}
	results := map[Algo][]time.Duration{}
	var pairs []int
	for _, algo := range AllAlgos {
		times, ps, err := series(p, w, algo, Thetas, RunConfig{})
		if err != nil {
			return nil, err
		}
		results[algo] = times
		pairs = ps
	}
	for i, th := range Thetas {
		t.AddRow(fmtF(th),
			fmtDur(results[AlgoVJ][i]), fmtDur(results[AlgoVJNL][i]),
			fmtDur(results[AlgoCL][i]), fmtDur(results[AlgoCLP][i]),
			fmt.Sprint(pairs[i]))
	}
	t.AddNote("θc=0.03 for CL/CL-P; CL-P δ = n/4 = %d", defaultDelta(w))
	return t, nil
}

// Figure7 reproduces the scalability experiment: CL-P wall time as the
// "cluster" grows from 4 to 8 nodes. Nodes become engine worker
// budgets: 4 nodes ≙ W workers, 8 nodes ≙ 2W, with W sized to the host
// so doubling still has cores to use.
func Figure7(p Params, prof dataset.Profile, scale int, name string) (*Table, error) {
	w, err := MakeWorkload(p, prof, 10, scale)
	if err != nil {
		return nil, err
	}
	small := runtime.GOMAXPROCS(0) / 2
	if small < 1 {
		small = 1
	}
	big := 2 * small
	t := &Table{
		Name:    name,
		Title:   fmt.Sprintf("CL-P scalability — %s, 4 vs 8 nodes (workers %d vs %d)", w.Name, small, big),
		Columns: []string{"theta", fmt.Sprintf("4 nodes (W=%d)", small), fmt.Sprintf("8 nodes (W=%d)", big), "saving%"},
	}
	t4, _, err := series(p, w, AlgoCLP, Thetas, RunConfig{Workers: small})
	if err != nil {
		return nil, err
	}
	t8, _, err := series(p, w, AlgoCLP, Thetas, RunConfig{Workers: big})
	if err != nil {
		return nil, err
	}
	for i, th := range Thetas {
		saving := "-"
		if t4[i] > 0 && t8[i] > 0 {
			saving = fmt.Sprintf("%.0f", 100*(1-float64(t8[i])/float64(t4[i])))
		}
		t.AddRow(fmtF(th), fmtDur(t4[i]), fmtDur(t8[i]), saving)
	}
	return t, nil
}

// Figure8 reproduces the dataset-growth experiment: CL-P wall time on
// DBLP ×1, ×5, ×10 across θ.
func Figure8(p Params) (*Table, error) {
	t := &Table{
		Name:    "fig8",
		Title:   "CL-P execution time (ms) vs dataset scale (DBLP ×1/×5/×10)",
		Columns: []string{"scale", "n"},
	}
	for _, th := range Thetas {
		t.Columns = append(t.Columns, fmt.Sprintf("θ=%.1f", th))
	}
	for _, scale := range []int{1, 5, 10} {
		w, err := MakeWorkload(p, dataset.DBLPLike, 10, scale)
		if err != nil {
			return nil, err
		}
		times, _, err := series(p, w, AlgoCLP, Thetas, RunConfig{})
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprintf("x%d", scale), fmt.Sprint(len(w.Rankings))}
		for _, d := range times {
			row = append(row, fmtDur(d))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// ThetaCs is the paper's Figure 9 clustering-threshold sweep.
var ThetaCs = []float64{0.01, 0.02, 0.03, 0.05, 0.1}

// Figure9 reproduces one panel of Figure 9: CL wall time as θc varies,
// for each θ.
func Figure9(p Params, prof dataset.Profile, scale int, name string) (*Table, error) {
	w, err := MakeWorkload(p, prof, 10, scale)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name:    name,
		Title:   fmt.Sprintf("CL execution time (ms) vs clustering threshold θc — %s", w.Name),
		Columns: []string{"thetaC"},
	}
	for _, th := range Thetas {
		t.Columns = append(t.Columns, fmt.Sprintf("θ=%.1f", th))
	}
	for _, tc := range ThetaCs {
		times, _, err := series(p, w, AlgoCL, Thetas, RunConfig{ThetaC: tc})
		if err != nil {
			return nil, err
		}
		row := []string{fmtF(tc)}
		for _, d := range times {
			row = append(row, fmtDur(d))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Figure10 reproduces one panel of Figure 10: CL-P wall time as the
// partitioning threshold δ varies, for two θ values. δ is swept as
// fractions of the dataset size (the paper's absolute ranges scale with
// its datasets).
func Figure10(p Params, prof dataset.Profile, scale int, thetas []float64, name string) (*Table, error) {
	w, err := MakeWorkload(p, prof, 10, scale)
	if err != nil {
		return nil, err
	}
	n := len(w.Rankings)
	deltas := []int{n / 32, n / 16, n / 8, n / 4, n / 2}
	t := &Table{
		Name:    name,
		Title:   fmt.Sprintf("CL-P execution time (ms) vs partitioning threshold δ — %s", w.Name),
		Columns: []string{"delta"},
	}
	for _, th := range thetas {
		t.Columns = append(t.Columns, fmt.Sprintf("θ=%.1f", th))
	}
	for _, d := range deltas {
		if d < 1 {
			continue
		}
		times, _, err := series(p, w, AlgoCLP, thetas, RunConfig{Delta: d})
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprint(d)}
		for _, dur := range times {
			row = append(row, fmtDur(dur))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Figure11 reproduces the k=25 experiment: all four algorithms on
// ORKU-like rankings of length 25.
func Figure11(p Params) (*Table, error) {
	w, err := MakeWorkload(p, dataset.ORKULike, 25, 1)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name:    "fig11",
		Title:   fmt.Sprintf("execution time (ms) vs θ for k=25 — %s, %d rankings", w.Name, len(w.Rankings)),
		Columns: []string{"theta", "VJ", "VJ-NL", "CL", "CL-P", "pairs"},
	}
	results := map[Algo][]time.Duration{}
	var pairs []int
	for _, algo := range AllAlgos {
		times, ps, err := series(p, w, algo, Thetas, RunConfig{})
		if err != nil {
			return nil, err
		}
		results[algo] = times
		pairs = ps
	}
	for i, th := range Thetas {
		t.AddRow(fmtF(th),
			fmtDur(results[AlgoVJ][i]), fmtDur(results[AlgoVJNL][i]),
			fmtDur(results[AlgoCL][i]), fmtDur(results[AlgoCLP][i]),
			fmt.Sprint(pairs[i]))
	}
	return t, nil
}

// PartitionSweep is the scaled-down analogue of the paper's 86–686
// Spark partition sweep.
var PartitionSweep = []int{4, 8, 16, 32, 64}

// Figure12 reproduces one panel of Figure 12: VJ, VJ-NL and CL wall
// time across shuffle partition counts at θ=0.3.
func Figure12(p Params, prof dataset.Profile, scale int, name string) (*Table, error) {
	w, err := MakeWorkload(p, prof, 10, scale)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name:    name,
		Title:   fmt.Sprintf("execution time (ms) vs #partitions (θ=0.3) — %s", w.Name),
		Columns: []string{"partitions", "VJ", "VJ-NL", "CL"},
	}
	for _, parts := range PartitionSweep {
		row := []string{fmt.Sprint(parts)}
		for _, algo := range []Algo{AlgoVJ, AlgoVJNL, AlgoCL} {
			m, err := Measure(p, w, RunConfig{Algo: algo, Theta: 0.3, Partitions: parts})
			if err != nil {
				return nil, err
			}
			row = append(row, fmtDur(m.Wall))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Figure13 reproduces Figure 13: CL-P wall time across (larger)
// partition counts at θ=0.3 on DBLPx5.
func Figure13(p Params) (*Table, error) {
	w, err := MakeWorkload(p, dataset.DBLPLike, 10, 5)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name:    "fig13",
		Title:   fmt.Sprintf("CL-P execution time (ms) vs #partitions (θ=0.3, δ=%d) — %s", defaultDelta(w), w.Name),
		Columns: []string{"partitions", "CL-P"},
	}
	for _, parts := range []int{8, 16, 32, 64, 128} {
		m, err := Measure(p, w, RunConfig{Algo: AlgoCLP, Theta: 0.3, Partitions: parts})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(parts), fmtDur(m.Wall))
	}
	return t, nil
}

// Table3 renders the engine configuration in the shape of the paper's
// Table 3 (Spark parameters).
func Table3(p Params) (*Table, error) {
	t := &Table{
		Name:    "table3",
		Title:   "engine parameters (analogue of the paper's Spark setup)",
		Columns: []string{"parameter", "value"},
	}
	workers := p.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	t.AddRow("engine workers (executors × cores)", fmt.Sprint(workers))
	t.AddRow("default shuffle partitions", fmt.Sprint(p.Partitions))
	t.AddRow("cell budget (paper: 10h cap)", p.CellBudget.String())
	t.AddRow("DBLP base size (paper: 1.2M)", fmt.Sprint(p.DBLPBase))
	t.AddRow("ORKU base size (paper: 2M)", fmt.Sprint(p.ORKUBase))
	return t, nil
}
