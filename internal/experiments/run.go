package experiments

import (
	"fmt"
	"sync"
	"time"

	"rankjoin/internal/clusterjoin"
	"rankjoin/internal/core"
	"rankjoin/internal/dataset"
	"rankjoin/internal/flow"
	"rankjoin/internal/fsjoin"
	"rankjoin/internal/obs"
	"rankjoin/internal/rankings"
	"rankjoin/internal/vj"
	"rankjoin/internal/vsmart"
)

// Params sizes the experiment suite. The paper's datasets have 1.2M
// (DBLP) and 2M (ORKU) rankings on an 8-node cluster; these defaults
// keep a full suite in the minutes range on a laptop while preserving
// the qualitative behaviour. All experiments scale linearly off these.
type Params struct {
	// DBLPBase and ORKUBase are the ×1 dataset sizes.
	DBLPBase, ORKUBase int
	// Workers is the engine worker budget for experiments that do not
	// sweep it (0 = GOMAXPROCS).
	Workers int
	// Partitions is the default shuffle partition count, mirroring the
	// paper's 286 at scale.
	Partitions int
	// CellBudget bounds one measurement; a cell exceeding it renders
	// as DNF and skips the rest of its series, mirroring the paper's
	// 10-hour cap. Zero means no budget.
	CellBudget time.Duration
	// Repeats is the number of runs averaged per cell (the paper
	// averages 3). Zero means 3.
	Repeats int
	// Seed feeds dataset generation.
	Seed int64
	// Tracer, when non-nil, is attached to every engine the suite
	// creates, recording phase/shuffle/task spans across all cells
	// (export with WriteChromeTrace). Nil disables tracing.
	Tracer *obs.Tracer
}

// DefaultParams returns the suite sizing used by cmd/experiments and
// the benchmarks.
func DefaultParams() Params {
	return Params{
		DBLPBase:   4000,
		ORKUBase:   6000,
		Workers:    0,
		Partitions: 16,
		CellBudget: 5 * time.Minute,
		Seed:       2020,
	}
}

// Workload is a named dataset instance.
type Workload struct {
	Name     string
	K        int
	Rankings []*rankings.Ranking
}

// datasetCache avoids regenerating workloads shared across experiments.
var (
	dsMu    sync.Mutex
	dsCache = map[string]Workload{}
)

// MakeWorkload instantiates "<profile>x<scale>" at the base size from
// p, generating ×1 and scaling with the paper's fixed-domain method.
func MakeWorkload(p Params, prof dataset.Profile, k, scale int) (Workload, error) {
	base := p.DBLPBase
	if prof.Name == "ORKU" {
		base = p.ORKUBase
	}
	name := fmt.Sprintf("%s(k=%d)", prof.Name, k)
	if scale > 1 {
		name = fmt.Sprintf("%sx%d", name, scale)
	}
	dsMu.Lock()
	defer dsMu.Unlock()
	if w, ok := dsCache[name+fmt.Sprint(base, p.Seed)]; ok {
		return w, nil
	}
	cfg := prof.Config(base, k, p.Seed)
	rs, err := dataset.Generate(cfg)
	if err != nil {
		return Workload{}, err
	}
	if scale > 1 {
		rs = dataset.Scale(rs, scale, cfg.Domain)
	}
	w := Workload{Name: name, K: k, Rankings: rs}
	dsCache[name+fmt.Sprint(base, p.Seed)] = w
	return w, nil
}

// Algo names one algorithm under investigation (§7 "Algorithms under
// investigation").
type Algo string

const (
	AlgoVJ   Algo = "VJ"
	AlgoVJNL Algo = "VJ-NL"
	AlgoCL   Algo = "CL"
	AlgoCLP  Algo = "CL-P"
	// AlgoVSMART and AlgoClusterJoin are the §2 baselines, used by the
	// baseline-comparison experiment rather than the paper's figures.
	AlgoVSMART      Algo = "V-SMART"
	AlgoClusterJoin Algo = "ClusterJoin"
	AlgoFSJoin      Algo = "FS-Join"
)

// AllAlgos is the paper's lineup, in its plotting order.
var AllAlgos = []Algo{AlgoVJ, AlgoVJNL, AlgoCL, AlgoCLP}

// RunConfig is one measurement cell.
type RunConfig struct {
	Algo       Algo
	Theta      float64
	ThetaC     float64 // 0 = paper default 0.03
	Delta      int     // CL-P / repartitioning threshold
	Workers    int
	Partitions int
	// Tracer records this cell's spans when non-nil (Measure inherits
	// it from Params.Tracer).
	Tracer *obs.Tracer
}

// Measurement is one cell's outcome.
type Measurement struct {
	Wall    time.Duration
	Pairs   int
	Engine  flow.MetricsSnapshot
	CLStats *core.Stats
}

// Run executes one measurement cell on a fresh engine.
func Run(w Workload, cfg RunConfig) (Measurement, error) {
	ctx := flow.NewContext(flow.Config{
		Workers:           cfg.Workers,
		DefaultPartitions: cfg.Partitions,
	})
	defer ctx.Close()
	ctx.SetTracer(cfg.Tracer)

	thetaC := cfg.ThetaC
	if thetaC == 0 {
		thetaC = 0.03
	}
	start := time.Now()
	var (
		pairs []rankings.Pair
		err   error
		m     Measurement
	)
	switch cfg.Algo {
	case AlgoVSMART:
		pairs, err = vsmart.Join(ctx, w.Rankings, vsmart.Options{
			Theta:      cfg.Theta,
			Partitions: cfg.Partitions,
		})
	case AlgoClusterJoin:
		pairs, _, err = clusterjoin.Join(ctx, w.Rankings, clusterjoin.Options{
			Theta:      cfg.Theta,
			Partitions: cfg.Partitions,
			Seed:       1,
		})
	case AlgoFSJoin:
		pairs, err = fsjoin.Join(ctx, w.Rankings, fsjoin.Options{
			Theta:      cfg.Theta,
			Partitions: cfg.Partitions,
		})
	case AlgoVJ, AlgoVJNL:
		variant := vj.IndexJoin
		if cfg.Algo == AlgoVJNL {
			variant = vj.NestedLoop
		}
		pairs, err = vj.Join(ctx, w.Rankings, vj.Options{
			Theta:      cfg.Theta,
			Variant:    variant,
			Partitions: cfg.Partitions,
		})
	case AlgoCL, AlgoCLP:
		delta := 0
		if cfg.Algo == AlgoCLP {
			delta = cfg.Delta
			if delta <= 0 {
				delta = defaultDelta(w)
			}
		}
		st := &core.Stats{}
		pairs, err = core.Join(ctx, w.Rankings, core.Options{
			Theta:      cfg.Theta,
			ThetaC:     thetaC,
			Partitions: cfg.Partitions,
			Delta:      delta,
			Stats:      st,
		})
		m.CLStats = st
	default:
		return m, fmt.Errorf("experiments: unknown algorithm %q", cfg.Algo)
	}
	if err != nil {
		return m, err
	}
	m.Wall = time.Since(start)
	m.Pairs = len(pairs)
	m.Engine = ctx.Snapshot()
	return m, nil
}

// defaultDelta scales the paper's per-dataset δ choices to the
// workload: a quarter of the dataset size, floored.
func defaultDelta(w Workload) int {
	d := len(w.Rankings) / 4
	if d < 32 {
		d = 32
	}
	return d
}

// Measure runs one cell p.Repeats times (the paper reports 3-run
// averages) and returns the averaged wall time; the remaining fields
// come from the last run. If the first run already blows the budget,
// no further repeats are attempted.
func Measure(p Params, w Workload, cfg RunConfig) (Measurement, error) {
	if cfg.Workers == 0 {
		cfg.Workers = p.Workers
	}
	if cfg.Partitions == 0 {
		cfg.Partitions = p.Partitions
	}
	if cfg.Tracer == nil {
		cfg.Tracer = p.Tracer
	}
	repeats := p.Repeats
	if repeats <= 0 {
		repeats = 3
	}
	var last Measurement
	var total time.Duration
	runs := 0
	for r := 0; r < repeats; r++ {
		m, err := Run(w, cfg)
		if err != nil {
			return Measurement{}, err
		}
		last = m
		total += m.Wall
		runs++
		if p.CellBudget > 0 && m.Wall > p.CellBudget {
			break
		}
	}
	last.Wall = total / time.Duration(runs)
	return last, nil
}

// series runs a θ sweep for one algorithm, honoring the cell budget:
// once a cell exceeds it, the remaining cells render as DNF (-1), like
// the paper's 10-hour cap.
func series(p Params, w Workload, algo Algo, thetas []float64, cfg RunConfig) ([]time.Duration, []int, error) {
	times := make([]time.Duration, len(thetas))
	pairs := make([]int, len(thetas))
	for i, th := range thetas {
		c := cfg
		c.Algo = algo
		c.Theta = th
		m, err := Measure(p, w, c)
		if err != nil {
			return nil, nil, err
		}
		times[i] = m.Wall
		pairs[i] = m.Pairs
		if p.CellBudget > 0 && m.Wall > p.CellBudget {
			for j := i + 1; j < len(thetas); j++ {
				times[j] = -1
			}
			break
		}
	}
	return times, pairs, nil
}

// Thetas is the paper's θ sweep.
var Thetas = []float64{0.1, 0.2, 0.3, 0.4}
