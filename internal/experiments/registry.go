package experiments

import (
	"fmt"
	"sort"

	"rankjoin/internal/dataset"
)

// Experiment is a named, runnable reproduction of one paper
// table/figure (or ablation).
type Experiment struct {
	Name        string
	Description string
	Run         func(Params) (*Table, error)
}

// Registry lists every experiment, keyed by name.
var Registry = map[string]Experiment{
	"table3": {"table3", "Table 3: engine configuration", Table3},
	"fig6a": {"fig6a", "Figure 6(a): algorithms vs θ on DBLP", func(p Params) (*Table, error) {
		return Figure6(p, dataset.DBLPLike, 1, "fig6a")
	}},
	"fig6b": {"fig6b", "Figure 6(b): algorithms vs θ on DBLPx5", func(p Params) (*Table, error) {
		return Figure6(p, dataset.DBLPLike, 5, "fig6b")
	}},
	"fig6c": {"fig6c", "Figure 6(c): algorithms vs θ on DBLPx10", func(p Params) (*Table, error) {
		return Figure6(p, dataset.DBLPLike, 10, "fig6c")
	}},
	"fig6d": {"fig6d", "Figure 6(d): algorithms vs θ on ORKU", func(p Params) (*Table, error) {
		return Figure6(p, dataset.ORKULike, 1, "fig6d")
	}},
	"fig6e": {"fig6e", "Figure 6(e): algorithms vs θ on ORKUx5", func(p Params) (*Table, error) {
		return Figure6(p, dataset.ORKULike, 5, "fig6e")
	}},
	"fig7a": {"fig7a", "Figure 7(a): CL-P scalability, 4 vs 8 nodes, DBLPx5", func(p Params) (*Table, error) {
		return Figure7(p, dataset.DBLPLike, 5, "fig7a")
	}},
	"fig7b": {"fig7b", "Figure 7(b): CL-P scalability, 4 vs 8 nodes, ORKU", func(p Params) (*Table, error) {
		return Figure7(p, dataset.ORKULike, 1, "fig7b")
	}},
	"fig8": {"fig8", "Figure 8: CL-P vs dataset scale (DBLP x1/x5/x10)", Figure8},
	"fig9a": {"fig9a", "Figure 9(a): CL vs θc on DBLP", func(p Params) (*Table, error) {
		return Figure9(p, dataset.DBLPLike, 1, "fig9a")
	}},
	"fig9b": {"fig9b", "Figure 9(b): CL vs θc on DBLPx5", func(p Params) (*Table, error) {
		return Figure9(p, dataset.DBLPLike, 5, "fig9b")
	}},
	"fig9c": {"fig9c", "Figure 9(c): CL vs θc on ORKU", func(p Params) (*Table, error) {
		return Figure9(p, dataset.ORKULike, 1, "fig9c")
	}},
	"fig10a": {"fig10a", "Figure 10(a): CL-P vs δ on ORKU (θ=0.3, 0.4)", func(p Params) (*Table, error) {
		return Figure10(p, dataset.ORKULike, 1, []float64{0.3, 0.4}, "fig10a")
	}},
	"fig10b": {"fig10b", "Figure 10(b): CL-P vs δ on ORKUx5 (θ=0.1, 0.2)", func(p Params) (*Table, error) {
		return Figure10(p, dataset.ORKULike, 5, []float64{0.1, 0.2}, "fig10b")
	}},
	"fig10c": {"fig10c", "Figure 10(c): CL-P vs δ on DBLPx5 (θ=0.3, 0.4)", func(p Params) (*Table, error) {
		return Figure10(p, dataset.DBLPLike, 5, []float64{0.3, 0.4}, "fig10c")
	}},
	"fig11": {"fig11", "Figure 11: algorithms vs θ for k=25 (ORKU)", Figure11},
	"fig12a": {"fig12a", "Figure 12(a): VJ/VJ-NL/CL vs #partitions on DBLP", func(p Params) (*Table, error) {
		return Figure12(p, dataset.DBLPLike, 1, "fig12a")
	}},
	"fig12b": {"fig12b", "Figure 12(b): VJ/VJ-NL/CL vs #partitions on DBLPx5", func(p Params) (*Table, error) {
		return Figure12(p, dataset.DBLPLike, 5, "fig12b")
	}},
	"fig13": {"fig13", "Figure 13: CL-P vs #partitions on DBLPx5", Figure13},

	"ablation-ordering":   {"ablation-ordering", "Ablation: frequency reordering on/off (§4)", AblationOrdering},
	"ablation-lemma53":    {"ablation-lemma53", "Ablation: Lemma 5.3 vs uniform joining threshold (§5.2)", AblationLemma53},
	"ablation-triangle":   {"ablation-triangle", "Ablation: triangle filtering in expansion on/off (§5.3)", AblationTriangle},
	"ablation-clustering": {"ablation-clustering", "Ablation: pair-derived vs random-centroid clustering (§5.1)", AblationClustering},
	"ablation-dedup":      {"ablation-dedup", "Ablation: final distinct vs least-token dedup", AblationDedup},
	"baselines":           {"baselines", "Paper algorithms vs the §2 baselines (V-SMART, ClusterJoin)", Baselines},
}

// Names returns the experiment names in a stable order (figures first,
// then ablations).
func Names() []string {
	names := make([]string, 0, len(Registry))
	for n := range Registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Get fetches an experiment by name.
func Get(name string) (Experiment, error) {
	e, ok := Registry[name]
	if !ok {
		return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (use one of %v)", name, Names())
	}
	return e, nil
}
