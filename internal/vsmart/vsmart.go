// Package vsmart adapts the V-SMART join of Metwally and Faloutsos
// (PVLDB 2012) — one of the MapReduce baselines the paper's related
// work discusses (§2) — to top-k rankings under Spearman's Footrule.
//
// V-SMART computes the "ingredients" of the similarity measure in a
// distributed fashion instead of verifying candidate pairs: partial
// contributions are emitted per shared item and summed by pair key.
// The Footrule distance decomposes exactly this way. Writing
// C = k(k+1)/2 for the distance mass a ranking contributes when
// nothing is shared,
//
//	F(τ, σ) = 2C − Σ_{i ∈ Dτ ∩ Dσ} [ (k−τ(i)) + (k−σ(i)) − |τ(i)−σ(i)| ]
//
// so every shared item contributes an independent, non-negative gain
// g(i) = (k−τ(i)) + (k−σ(i)) − |τ(i)−σ(i)|, and a pair is a result iff
// its summed gain is at least 2C − F.
//
// The algorithm shuffles one record per (posting-list pair) — quadratic
// in posting-list length — which is exactly why the paper's
// prefix-filtering approaches beat it; it is reproduced here as a
// faithful baseline for the comparison benchmarks.
package vsmart

import (
	"fmt"

	"rankjoin/internal/flow"
	"rankjoin/internal/obs"
	"rankjoin/internal/rankings"
)

// Options configures a V-SMART join.
type Options struct {
	// Theta is the normalized Footrule threshold θ ∈ [0, 1].
	Theta float64
	// Partitions is the shuffle partition count (0 = context default).
	Partitions int
}

// Join finds all pairs within opts.Theta by distributed aggregation of
// per-item gains (joining phase + similarity phase of V-SMART).
func Join(ctx *flow.Context, rs []*rankings.Ranking, opts Options) ([]rankings.Pair, error) {
	if opts.Theta < 0 || opts.Theta > 1 {
		return nil, fmt.Errorf("vsmart: theta %v out of [0,1]", opts.Theta)
	}
	if len(rs) == 0 {
		return nil, nil
	}
	k := rs[0].K()
	for _, r := range rs {
		if r.K() != k {
			return nil, fmt.Errorf("vsmart: mixed ranking lengths %d and %d", k, r.K())
		}
	}
	maxDist := rankings.Threshold(opts.Theta, k)
	// Required total gain: F ≤ maxDist ⇔ gain ≥ k(k+1) − maxDist.
	needGain := k*(k+1) - maxDist

	ds := flow.Parallelize(ctx, rs, opts.Partitions)

	// Joining phase: build the inverted index — (item, (id, rank)).
	type entry struct {
		ID   int64
		Rank int32
	}
	postings := flow.FlatMap(ds, func(r *rankings.Ranking) []flow.KV[rankings.Item, entry] {
		out := make([]flow.KV[rankings.Item, entry], len(r.Items))
		for rank, it := range r.Items {
			out[rank] = flow.KV[rankings.Item, entry]{K: it, V: entry{ID: r.ID, Rank: int32(rank)}}
		}
		return out
	})
	lists := flow.GroupByKey(postings, opts.Partitions)

	// Similarity phase, step 1: emit the gain of every pair on every
	// posting list.
	listHist := ctx.Histogram("join/posting_list_len")
	gains := flow.FlatMap(lists, func(g flow.KV[rankings.Item, []entry]) []flow.KV[rankings.PairKey, int] {
		listHist.Observe(int64(len(g.V)))
		var out []flow.KV[rankings.PairKey, int]
		for i := 0; i < len(g.V); i++ {
			for j := i + 1; j < len(g.V); j++ {
				a, b := g.V[i], g.V[j]
				if a.ID == b.ID {
					continue
				}
				diff := int(a.Rank) - int(b.Rank)
				if diff < 0 {
					diff = -diff
				}
				gain := (k - int(a.Rank)) + (k - int(b.Rank)) - diff
				key := rankings.PairKey{A: a.ID, B: b.ID}
				if key.A > key.B {
					key.A, key.B = key.B, key.A
				}
				out = append(out, flow.KV[rankings.PairKey, int]{K: key, V: gain})
			}
		}
		return out
	})

	// Similarity phase, step 2: sum the gains per pair and keep pairs
	// reaching the required total. V-SMART has no filter cascade: every
	// aggregated pair's distance is known exactly, so each counts as
	// generated and verified.
	summed := flow.ReduceByKey(gains, opts.Partitions, func(a, b int) int { return a + b })
	results := flow.MapPartitions(summed, func(_ int, in []flow.KV[rankings.PairKey, int]) ([]rankings.Pair, error) {
		var out []rankings.Pair
		var delta obs.FilterDelta
		for _, kv := range in {
			delta.Generated++
			delta.Verified++
			if kv.V >= needGain {
				delta.Emitted++
				out = append(out, rankings.Pair{A: kv.K.A, B: kv.K.B, Dist: k*(k+1) - kv.V})
			}
		}
		ctx.Filters().Add(delta)
		return out, nil
	})
	out, err := results.Collect()
	if err != nil {
		return nil, err
	}
	// Zero-overlap pairs never meet a posting list; when the threshold
	// admits them (needGain ≤ 0) they are all results at the maximum
	// distance — recover them against the aggregated pair set.
	if needGain <= 0 {
		seen := make(map[rankings.PairKey]struct{}, len(out))
		for _, p := range out {
			seen[p.Key()] = struct{}{}
		}
		// Recovered pairs are results the filter ledger never saw:
		// count them as generated/verified/emitted too, or the
		// conservation law (emitted ≥ result pairs) breaks at θ = 1.
		var delta obs.FilterDelta
		for i := 0; i < len(rs); i++ {
			for j := i + 1; j < len(rs); j++ {
				key := rankings.PairKey{A: rs[i].ID, B: rs[j].ID}
				if key.A > key.B {
					key.A, key.B = key.B, key.A
				}
				if _, ok := seen[key]; !ok {
					delta.Generated++
					delta.Verified++
					delta.Emitted++
					out = append(out, rankings.Pair{A: key.A, B: key.B, Dist: k * (k + 1)})
				}
			}
		}
		ctx.Filters().Add(delta)
	}
	rankings.SortPairs(out)
	return out, nil
}
