package vsmart_test

import (
	"math/rand"
	"testing"

	"rankjoin/internal/flow"
	"rankjoin/internal/ppjoin"
	"rankjoin/internal/rankings"
	"rankjoin/internal/testutil"
	"rankjoin/internal/vsmart"
)

func ctx(workers int) *flow.Context {
	return flow.NewContext(flow.Config{Workers: workers, DefaultPartitions: 4})
}

// TestVSMARTMatchesOracle: the distributed gain aggregation returns
// exactly the brute-force result set, distances included.
func TestVSMARTMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		k := 3 + rng.Intn(10)
		rs := testutil.RandDataset(rng, 40+rng.Intn(80), k, k+rng.Intn(4*k))
		theta := rng.Float64()
		want := rankings.DedupPairs(ppjoin.BruteForce(rs, rankings.Threshold(theta, k), nil))
		got, err := vsmart.Join(ctx(1+rng.Intn(4)), rs, vsmart.Options{
			Theta:      theta,
			Partitions: 1 + rng.Intn(6),
		})
		if err != nil {
			t.Fatal(err)
		}
		if !rankings.SamePairs(got, want) {
			extra, missing := rankings.DiffPairs(got, want)
			t.Fatalf("trial %d k=%d θ=%.3f: extra=%v missing=%v", trial, k, theta, extra, missing)
		}
	}
}

// TestVSMARTDegenerateTheta: θ=1 admits zero-overlap pairs, recovered
// by the complement pass.
func TestVSMARTDegenerateTheta(t *testing.T) {
	rs := []*rankings.Ranking{
		rankings.MustNew(0, []rankings.Item{1, 2, 3}),
		rankings.MustNew(1, []rankings.Item{7, 8, 9}),
		rankings.MustNew(2, []rankings.Item{1, 2, 3}),
	}
	got, err := vsmart.Join(ctx(2), rs, vsmart.Options{Theta: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("θ=1 should return all 3 pairs, got %v", got)
	}
	for _, p := range got {
		want := rankings.MaxFootrule(3)
		if p.A == 0 && p.B == 2 {
			want = 0
		}
		if p.Dist != want {
			t.Errorf("pair %v, want dist %d", p, want)
		}
	}
}

func TestVSMARTValidation(t *testing.T) {
	if _, err := vsmart.Join(ctx(1), nil, vsmart.Options{Theta: 0.5}); err != nil {
		t.Errorf("empty dataset: %v", err)
	}
	mixed := []*rankings.Ranking{
		rankings.MustNew(0, []rankings.Item{1, 2}),
		rankings.MustNew(1, []rankings.Item{1, 2, 3}),
	}
	if _, err := vsmart.Join(ctx(1), mixed, vsmart.Options{Theta: 0.5}); err == nil {
		t.Error("mixed lengths accepted")
	}
	if _, err := vsmart.Join(ctx(1), mixed[:1], vsmart.Options{Theta: -1}); err == nil {
		t.Error("bad theta accepted")
	}
}

// TestVSMARTAgainstVJ cross-checks the two independent pipelines on
// clustered data.
func TestVSMARTAgainstVJ(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rs := testutil.ClusteredDataset(rng, 15, 4, 8, 40)
	want := rankings.DedupPairs(ppjoin.BruteForce(rs, rankings.Threshold(0.3, 8), nil))
	got, err := vsmart.Join(ctx(4), rs, vsmart.Options{Theta: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if !rankings.SamePairs(got, want) {
		t.Fatal("V-SMART diverged on clustered data")
	}
}
