package stats_test

import (
	"math"
	"math/rand"
	"testing"

	"rankjoin/internal/dataset"
	"rankjoin/internal/rankings"
	"rankjoin/internal/stats"
)

func TestZipfPMFNormalizes(t *testing.T) {
	for _, s := range []float64{0, 0.5, 1, 1.5} {
		for _, v := range []int{1, 10, 100} {
			sum := 0.0
			for i := 1; i <= v; i++ {
				p := stats.ZipfPMF(i, s, v)
				if p < 0 || p > 1 {
					t.Fatalf("pmf(%d;%v,%d) = %v out of range", i, s, v, p)
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("s=%v v=%d: pmf sums to %v", s, v, sum)
			}
		}
	}
	if stats.ZipfPMF(0, 1, 10) != 0 || stats.ZipfPMF(11, 1, 10) != 0 {
		t.Error("out-of-range ranks should have probability 0")
	}
	// Monotone decreasing in rank for s > 0.
	for i := 1; i < 50; i++ {
		if stats.ZipfPMF(i, 0.8, 50) < stats.ZipfPMF(i+1, 0.8, 50) {
			t.Fatalf("pmf not decreasing at rank %d", i)
		}
	}
}

func TestExpectedPostingListLength(t *testing.T) {
	// Uniform items: E = Σ n·(1/v)² = n/v — the obvious average.
	if got, want := stats.ExpectedPostingListLength(1000, 0, 100), 10.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("uniform estimate %v, want %v", got, want)
	}
	// Skew inflates the estimate: the head items dominate.
	uniform := stats.ExpectedPostingListLength(1000, 0, 100)
	skewed := stats.ExpectedPostingListLength(1000, 1.0, 100)
	if skewed <= uniform {
		t.Errorf("skewed estimate %v not above uniform %v", skewed, uniform)
	}
	if stats.ExpectedPostingListLength(0, 1, 10) != 0 {
		t.Error("zero rankings should estimate 0")
	}
	if stats.ExpectedPostingListLength(10, 1, 0) != 0 {
		t.Error("empty vocabulary should estimate 0")
	}
}

// TestEstimateAgainstEmpiricalPostingLists: the Equation 4 estimate
// must land in the right ballpark of the true average posting-list
// length of a generated Zipf dataset (within a small factor — it is a
// guidance formula, not an exact law).
func TestEstimateAgainstEmpiricalPostingLists(t *testing.T) {
	rs, err := dataset.Generate(dataset.GenConfig{
		N: 4000, K: 10, Domain: 2000, Skew: 0.9, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := rankings.ItemCounts(rs)
	total := int64(0)
	for _, c := range counts {
		total += c
	}
	empirical := float64(0)
	for _, c := range counts {
		empirical += float64(c) * float64(c)
	}
	empirical /= float64(total) // length-weighted average posting list
	est := stats.ExpectedPostingListLength(int(total), stats.EstimateSkew(counts), len(counts))
	ratio := est / empirical
	if ratio < 0.2 || ratio > 5 {
		t.Errorf("estimate %v vs empirical %v (ratio %v) — formula off by more than 5x", est, empirical, ratio)
	}
}

func TestSuggestDelta(t *testing.T) {
	d := stats.SuggestDelta(100000, 0.9, 5000)
	if d < 16 {
		t.Errorf("delta %d below floor", d)
	}
	if floor := stats.SuggestDelta(10, 0, 100); floor != 16 {
		t.Errorf("tiny input delta = %d, want floor 16", floor)
	}
	// More skew, larger suggested delta.
	if stats.SuggestDelta(100000, 1.2, 5000) <= stats.SuggestDelta(100000, 0.2, 5000) {
		t.Error("delta not increasing with skew")
	}
}

func TestEstimateSkewRecoversGenerator(t *testing.T) {
	for _, s := range []float64{0.6, 0.9, 1.2} {
		rs, err := dataset.Generate(dataset.GenConfig{
			N: 6000, K: 10, Domain: 3000, Skew: s, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		got := stats.EstimateSkew(rankings.ItemCounts(rs))
		if math.Abs(got-s) > 0.35 {
			t.Errorf("skew %v estimated as %v", s, got)
		}
	}
	if stats.EstimateSkew(nil) != 0 {
		t.Error("empty counts should estimate 0")
	}
	if stats.EstimateSkew(map[rankings.Item]int64{1: 5}) != 0 {
		t.Error("single item should estimate 0")
	}
}

func TestPrefixVocabulary(t *testing.T) {
	rs := []*rankings.Ranking{
		rankings.MustNew(0, []rankings.Item{1, 2, 3}),
		rankings.MustNew(1, []rankings.Item{2, 3, 4}),
	}
	ord := rankings.OrderFromDataset(rs)
	if got := stats.PrefixVocabulary(rs, ord, 3); got != 4 {
		t.Errorf("full vocabulary = %d, want 4", got)
	}
	v1 := stats.PrefixVocabulary(rs, ord, 1)
	if v1 < 1 || v1 > 2 {
		t.Errorf("prefix-1 vocabulary = %d", v1)
	}
}

func TestFrequencyHistogram(t *testing.T) {
	counts := map[rankings.Item]int64{1: 1, 2: 2, 3: 3, 4: 100}
	bounds, tallies := stats.FrequencyHistogram(counts)
	if len(bounds) != len(tallies) {
		t.Fatalf("bounds %d vs tallies %d", len(bounds), len(tallies))
	}
	var total int64
	for _, n := range tallies {
		total += n
	}
	if total != 4 {
		t.Errorf("histogram covers %d items, want 4", total)
	}
	if b, tl := stats.FrequencyHistogram(nil); b != nil || tl != nil {
		t.Error("empty histogram should be nil")
	}
	_ = rand.Int
}
