// Package stats implements the statistical tooling of the paper's §6:
// the Zipf item-frequency model, the posting-list length estimate of
// Equation 4, the derived guidance for choosing the partitioning
// threshold δ, and skew estimation for real datasets.
package stats

import (
	"math"
	"sort"

	"rankjoin/internal/rankings"
)

// ZipfPMF returns f(i; s, v): the probability of the item with
// frequency rank i (1-based) under a Zipf distribution with skew s over
// v distinct items.
func ZipfPMF(i int, s float64, v int) float64 {
	if i < 1 || i > v || v <= 0 {
		return 0
	}
	return math.Pow(float64(i), -s) / harmonic(v, s)
}

// harmonic computes the generalized harmonic number H(v, s).
func harmonic(v int, s float64) float64 {
	h := 0.0
	for i := 1; i <= v; i++ {
		h += math.Pow(float64(i), -s)
	}
	return h
}

// ExpectedPostingListLength implements Equation 4 of the paper:
//
//	E[index list length] = Σ_i n · f(i; s, v')²
//
// where n is the number of rankings indexed, v' the number of distinct
// items appearing in prefixes, and s the Zipf skew. It estimates the
// average length of a prefix-index posting list, the quantity the
// partitioning threshold δ should be calibrated against.
func ExpectedPostingListLength(n int, s float64, vPrime int) float64 {
	if n <= 0 || vPrime <= 0 {
		return 0
	}
	sum := 0.0
	for i := 1; i <= vPrime; i++ {
		f := ZipfPMF(i, s, vPrime)
		sum += float64(n) * f * f
	}
	return sum
}

// SuggestDelta turns the Equation 4 estimate into a partitioning
// threshold: a small multiple of the expected posting-list length, so
// that only genuinely skew-inflated lists are split (the paper warns
// against very small δ). prefixTokens is the total number of emitted
// prefix tokens (n · prefix size).
func SuggestDelta(prefixTokens int, s float64, vPrime int) int {
	est := ExpectedPostingListLength(prefixTokens, s, vPrime)
	delta := int(4 * est)
	if delta < 16 {
		delta = 16
	}
	return delta
}

// EstimateSkew fits a Zipf skew parameter to observed item frequencies
// with a least-squares regression of log(frequency) on log(rank).
// Returns 0 for degenerate inputs (fewer than two distinct items).
func EstimateSkew(counts map[rankings.Item]int64) float64 {
	freqs := make([]float64, 0, len(counts))
	for _, c := range counts {
		if c > 0 {
			freqs = append(freqs, float64(c))
		}
	}
	if len(freqs) < 2 {
		return 0
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(freqs)))
	var sx, sy, sxx, sxy float64
	n := float64(len(freqs))
	for i, f := range freqs {
		x := math.Log(float64(i + 1))
		y := math.Log(f)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		return 0
	}
	slope := (n*sxy - sx*sy) / denom
	return -slope
}

// PrefixVocabulary counts the distinct items that appear within the
// first p canonical positions of the dataset's rankings — the v' of
// Equation 4.
func PrefixVocabulary(rs []*rankings.Ranking, ord *rankings.Order, p int) int {
	seen := map[rankings.Item]struct{}{}
	for _, r := range rs {
		for _, it := range ord.Prefix(r, p) {
			seen[it] = struct{}{}
		}
	}
	return len(seen)
}

// FrequencyHistogram buckets item frequencies into powers of two,
// returning bucket upper bounds and counts — a quick skew diagnostic
// for experiment reports.
func FrequencyHistogram(counts map[rankings.Item]int64) (bounds []int64, tallies []int64) {
	if len(counts) == 0 {
		return nil, nil
	}
	var maxC int64
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	for b := int64(1); ; b *= 2 {
		bounds = append(bounds, b)
		if b >= maxC {
			break
		}
	}
	tallies = make([]int64, len(bounds))
	for _, c := range counts {
		idx := 0
		for b := int64(1); b < c; b *= 2 {
			idx++
		}
		tallies[idx]++
	}
	return bounds, tallies
}
