package wal

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"rankjoin/internal/obs"
)

// ErrClosed reports an append or sync against a closed (or crashed)
// log.
var ErrClosed = errors.New("wal: log closed")

const (
	segPrefix = "seg-"
	segSuffix = ".wal"
)

func segName(n int) string { return fmt.Sprintf("%s%08d%s", segPrefix, n, segSuffix) }

// parseSegName inverts segName, rejecting anything else in the dir.
func parseSegName(name string) (int, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	var n int
	if _, err := fmt.Sscanf(name, segPrefix+"%08d"+segSuffix, &n); err != nil {
		return 0, false
	}
	return n, true
}

// log is one shard's append-only record stream, split into numbered
// segment files. Appends go through a user-space buffer; the group-
// commit goroutine flushes and fsyncs on demand, batching every Sync
// waiter that arrived while the previous fsync (plus the optional
// batching window) ran. LSNs are cumulative byte offsets across all
// segments, so "durable up to" is a single watermark comparison.
type log struct {
	dir      string
	interval time.Duration // batching window before each fsync; 0 = immediate

	mu       sync.Mutex
	cond     *sync.Cond // broadcast when synced or err moves
	f        *os.File
	w        *bufio.Writer
	seg      int   // current segment number
	appended int64 // bytes accepted (buffered or written), cumulative
	synced   int64 // bytes known durable, cumulative
	err      error // sticky I/O failure; poisons the log
	closed   bool

	syncReq chan struct{} // cap 1: "someone wants an fsync"
	stop    chan struct{}
	done    chan struct{}

	// Telemetry, read by Manager.Stats.
	records  int64 // guarded by mu
	fsyncs   int64 // guarded by mu (written only by the sync goroutine)
	fsyncDur *obs.Histogram
}

// openLog opens a fresh segment (max existing + 1) in dir. Recovery
// has already read — and possibly truncated — older segments; starting
// a new one means we never append after a truncated tail. fsyncDur is
// the owner's shared fsync-latency histogram (nil is a no-op sink).
func openLog(dir string, interval time.Duration, fsyncDur *obs.Histogram) (*log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: open log: %w", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	next := 1
	if len(segs) > 0 {
		next = segs[len(segs)-1] + 1
	}
	l := &log{
		dir:      dir,
		interval: interval,
		seg:      next,
		syncReq:  make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		fsyncDur: fsyncDur,
	}
	l.cond = sync.NewCond(&l.mu)
	if err := l.openSegmentLocked(); err != nil {
		return nil, err
	}
	go l.syncLoop()
	return l, nil
}

// listSegments returns the segment numbers present in dir, ascending.
func listSegments(dir string) ([]int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: list segments: %w", err)
	}
	var segs []int
	for _, e := range ents {
		if n, ok := parseSegName(e.Name()); ok {
			segs = append(segs, n)
		}
	}
	sort.Ints(segs)
	return segs, nil
}

func (l *log) openSegmentLocked() error {
	f, err := os.OpenFile(filepath.Join(l.dir, segName(l.seg)),
		os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open segment: %w", err)
	}
	l.f = f
	l.w = bufio.NewWriterSize(f, 1<<16)
	return nil
}

// append frames rec into the buffer and returns the LSN to hand to
// sync. The caller holds the owning shard's write lock, which is what
// keeps epochs in the stream strictly increasing.
func (l *log) append(rec Record) (int64, error) {
	frame := appendRecord(nil, rec)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.err != nil {
		return 0, l.err
	}
	if _, err := l.w.Write(frame); err != nil {
		l.err = fmt.Errorf("wal: append: %w", err)
		l.cond.Broadcast()
		return 0, l.err
	}
	l.appended += int64(len(frame))
	l.records++
	return l.appended, nil
}

// sync blocks until everything up to lsn is fsynced, the log fails, or
// it is closed. This is the group-commit rendezvous: concurrent
// waiters are all released by one fsync.
func (l *log) sync(lsn int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.synced < lsn {
		if l.err != nil {
			return l.err
		}
		if l.closed {
			return ErrClosed
		}
		select {
		case l.syncReq <- struct{}{}:
		default: // a request is already pending
		}
		l.cond.Wait()
	}
	return nil
}

func (l *log) syncLoop() {
	defer close(l.done)
	for {
		select {
		case <-l.stop:
			return
		case <-l.syncReq:
			if l.interval > 0 {
				// The batching window: let more commits pile into the
				// buffer so one fsync acknowledges them all.
				select {
				case <-time.After(l.interval):
				case <-l.stop:
					return
				}
			}
			l.syncNow()
		}
	}
}

// syncNow flushes the user-space buffer and fsyncs, then advances the
// durable watermark to the byte count observed at flush time. The
// fsync runs outside the lock so appends keep flowing.
func (l *log) syncNow() {
	l.mu.Lock()
	if l.closed || l.err != nil {
		l.cond.Broadcast()
		l.mu.Unlock()
		return
	}
	target := l.appended
	if err := l.w.Flush(); err != nil {
		l.err = fmt.Errorf("wal: flush: %w", err)
		l.cond.Broadcast()
		l.mu.Unlock()
		return
	}
	f := l.f
	l.mu.Unlock()

	began := time.Now()
	serr := f.Sync()

	l.mu.Lock()
	l.fsyncs++
	l.fsyncDur.Observe(time.Since(began).Microseconds())
	if serr != nil && l.err == nil && !l.closed {
		l.err = fmt.Errorf("wal: fsync: %w", serr)
	}
	if l.err == nil && l.synced < target {
		l.synced = target
	}
	l.cond.Broadcast()
	l.mu.Unlock()
}

// flushForRead pushes buffered frames to the OS (no fsync) so a reader
// opening the segment files sees every appended record — the
// replication path's pre-scan barrier.
func (l *log) flushForRead() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.err != nil {
		return l.err
	}
	if err := l.w.Flush(); err != nil {
		l.err = fmt.Errorf("wal: flush: %w", err)
		l.cond.Broadcast()
		return l.err
	}
	return nil
}

// rotate makes everything appended so far durable, closes the current
// segment and starts the next one, returning the number of the first
// segment of the NEW stream. Called under the owning shard's read lock
// (see Shard.SnapshotAnd), so no append can interleave: the boundary
// is exact.
func (l *log) rotate() (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.err != nil {
		return 0, l.err
	}
	if err := l.w.Flush(); err != nil {
		l.err = fmt.Errorf("wal: rotate flush: %w", err)
		l.cond.Broadcast()
		return 0, l.err
	}
	if err := l.f.Sync(); err != nil {
		l.err = fmt.Errorf("wal: rotate fsync: %w", err)
		l.cond.Broadcast()
		return 0, l.err
	}
	if l.synced < l.appended {
		l.synced = l.appended
	}
	l.cond.Broadcast()
	if err := l.f.Close(); err != nil {
		l.err = fmt.Errorf("wal: rotate close: %w", err)
		return 0, l.err
	}
	l.seg++
	if err := l.openSegmentLocked(); err != nil {
		l.err = err
		return 0, err
	}
	return l.seg, nil
}

// dropSegmentsBefore deletes segment files numbered < keep — called
// after a snapshot at the rotation boundary makes them redundant.
func (l *log) dropSegmentsBefore(keep int) error {
	segs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	for _, n := range segs {
		if n >= keep {
			break
		}
		if err := os.Remove(filepath.Join(l.dir, segName(n))); err != nil {
			return fmt.Errorf("wal: drop segment: %w", err)
		}
	}
	return nil
}

// close flushes, fsyncs and closes the log — the clean-shutdown path.
// Pending sync waiters whose bytes make it to disk return nil.
func (l *log) close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.stop)
	<-l.done

	l.mu.Lock()
	defer l.mu.Unlock()
	var first error
	if l.err == nil {
		if err := l.w.Flush(); err != nil {
			first = err
		} else if err := l.f.Sync(); err != nil {
			first = err
		} else {
			l.synced = l.appended
		}
	}
	if err := l.f.Close(); err != nil && first == nil {
		first = err
	}
	l.cond.Broadcast()
	if first != nil {
		return fmt.Errorf("wal: close: %w", first)
	}
	return nil
}

// crash abandons the log the way SIGKILL would: the user-space buffer
// is discarded unflushed (bytes already written to the OS survive, as
// they would in the page cache) and every waiter is released with
// ErrClosed. Test and harness hook.
func (l *log) crash() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	l.f.Close() // buffered-but-unflushed frames die with l.w
	l.cond.Broadcast()
	l.mu.Unlock()
	close(l.stop)
	<-l.done
}
