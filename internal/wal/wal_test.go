package wal

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"rankjoin/internal/rankings"
	"rankjoin/internal/shard"
	"rankjoin/internal/testutil"
)

func TestRecordRoundtrip(t *testing.T) {
	recs := []Record{
		{Op: OpInsert, Epoch: 1, ID: 42, Items: []rankings.Item{5, 3, 9, 1, 7}},
		{Op: OpDelete, Epoch: 2, ID: -9},
		{Op: OpInsert, Epoch: 1 << 40, ID: 1 << 50, Items: []rankings.Item{1}},
	}
	var buf []byte
	for _, rec := range recs {
		buf = appendRecord(buf, rec)
	}
	off := 0
	for i, want := range recs {
		got, n, err := decodeRecord(buf[off:])
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		off += n
		if got.Op != want.Op || got.Epoch != want.Epoch || got.ID != want.ID ||
			len(got.Items) != len(want.Items) {
			t.Fatalf("record %d: got %+v, want %+v", i, got, want)
		}
		for j := range want.Items {
			if got.Items[j] != want.Items[j] {
				t.Fatalf("record %d item %d: got %d, want %d", i, j, got.Items[j], want.Items[j])
			}
		}
	}
	if off != len(buf) {
		t.Fatalf("decoded %d of %d bytes", off, len(buf))
	}
}

func TestDecodeTornAndCorrupt(t *testing.T) {
	frame := appendRecord(nil, Record{Op: OpInsert, Epoch: 7, ID: 3, Items: []rankings.Item{1, 2, 3}})

	// Every strict prefix is torn, never corrupt: a crash can cut a
	// write anywhere and recovery must read it as end-of-log.
	for cut := 0; cut < len(frame); cut++ {
		if _, _, err := decodeRecord(frame[:cut]); !errors.Is(err, ErrTorn) {
			t.Fatalf("prefix of %d bytes: err = %v, want ErrTorn", cut, err)
		}
	}
	// A bit flip anywhere past the length prefix is corrupt (CRC catches
	// it); the frame is complete, just wrong.
	for pos := 1; pos < len(frame); pos++ {
		bad := append([]byte(nil), frame...)
		bad[pos] ^= 0x40
		_, _, err := decodeRecord(bad)
		if err == nil || errors.Is(err, ErrTorn) {
			t.Fatalf("flip at %d: err = %v, want ErrCorrupt", pos, err)
		}
	}
}

// openAttached builds a hooked (index, manager) pair over dir.
func openAttached(t *testing.T, dir string, shards int) (*shard.Index, *Manager) {
	t.Helper()
	mgr, err := Open(dir, Config{Shards: shards, FsyncEvery: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	idx := shard.New(shard.Config{Shards: shards})
	if _, err := mgr.Recover(idx); err != nil {
		t.Fatal(err)
	}
	mgr.Attach(idx)
	return idx, mgr
}

// contents flattens an index into an id-sorted dump for comparison.
func contents(idx *shard.Index) []*rankings.Ranking {
	rs, _ := idx.Snapshot()
	sort.Slice(rs, func(i, j int) bool { return rs[i].ID < rs[j].ID })
	return rs
}

func sameContents(t *testing.T, got, want *shard.Index) {
	t.Helper()
	g, w := contents(got), contents(want)
	if len(g) != len(w) {
		t.Fatalf("recovered %d rankings, want %d", len(g), len(w))
	}
	for i := range w {
		if g[i].ID != w[i].ID {
			t.Fatalf("ranking %d: id %d, want %d", i, g[i].ID, w[i].ID)
		}
		for j := range w[i].Items {
			if g[i].Items[j] != w[i].Items[j] {
				t.Fatalf("id %d item %d: %d, want %d", w[i].ID, j, g[i].Items[j], w[i].Items[j])
			}
		}
	}
	ge, we := got.Epochs(), want.Epochs()
	for i := range we {
		if ge[i] != we[i] {
			t.Fatalf("shard %d epoch %d, want %d", i, ge[i], we[i])
		}
	}
}

func TestRecoverReplaysLog(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(1))
	idx, mgr := openAttached(t, dir, 3)
	for _, r := range testutil.RandDataset(rng, 60, 6, 100) {
		if err := idx.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	for id := int64(0); id < 20; id += 2 {
		if _, err := idx.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}

	idx2, mgr2 := openAttached(t, dir, 3)
	defer mgr2.Close()
	sameContents(t, idx2, idx)
}

func TestRecoverFromSnapshotPlusTail(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(2))
	idx, mgr := openAttached(t, dir, 2)
	for _, r := range testutil.RandDataset(rng, 40, 5, 80) {
		if err := idx.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := mgr.SnapshotAll(idx); err != nil {
		t.Fatal(err)
	}
	// Mutations past the snapshot live only in the WAL tail.
	for id := int64(1000); id < 1015; id++ {
		if err := idx.Insert(testutil.RandRanking(rng, id, 5, 80)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := idx.Delete(3); err != nil {
		t.Fatal(err)
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}

	mgr2, err := Open(dir, Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	idx2 := shard.New(shard.Config{Shards: 2})
	st, err := mgr2.Recover(idx2)
	if err != nil {
		t.Fatal(err)
	}
	if st.SnapshotsLoaded != 2 {
		t.Fatalf("snapshots loaded = %d, want 2", st.SnapshotsLoaded)
	}
	if st.RecordsReplayed == 0 {
		t.Fatal("no WAL records replayed over the snapshot")
	}
	sameContents(t, idx2, idx)
}

// TestTornTailTruncated cuts the final frame short — the shape a crash
// mid-write leaves — and checks recovery keeps the clean prefix,
// truncates the file, and counts the tear.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(3))
	idx, mgr := openAttached(t, dir, 1)
	want := testutil.RandDataset(rng, 10, 5, 60)
	for _, r := range want {
		if err := idx.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}

	path, size := newestSegment(t, filepath.Join(dir, "shard-000"))
	if err := os.Truncate(path, size-3); err != nil {
		t.Fatal(err)
	}

	mgr2, err := Open(dir, Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	idx2 := shard.New(shard.Config{Shards: 1})
	st, err := mgr2.Recover(idx2)
	if err != nil {
		t.Fatal(err)
	}
	if st.TornTails != 1 {
		t.Fatalf("torn tails = %d, want 1", st.TornTails)
	}
	if st.RecordsReplayed != len(want)-1 {
		t.Fatalf("replayed %d records, want %d", st.RecordsReplayed, len(want)-1)
	}
	if idx2.Len() != len(want)-1 {
		t.Fatalf("recovered %d rankings, want %d", idx2.Len(), len(want)-1)
	}
	if e := idx2.Epochs()[0]; e != uint64(len(want)-1) {
		t.Fatalf("recovered epoch %d, want %d", e, len(want)-1)
	}
}

// TestBitFlippedCRC corrupts a byte inside the last record's payload;
// the CRC must reject it and recovery must stop exactly there.
func TestBitFlippedCRC(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(4))
	idx, mgr := openAttached(t, dir, 1)
	for _, r := range testutil.RandDataset(rng, 8, 5, 60) {
		if err := idx.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}

	path, size := newestSegment(t, filepath.Join(dir, "shard-000"))
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A byte near the end of the last frame, inside payload or CRC.
	if _, err := f.WriteAt([]byte{0xFF}, size-6); err != nil {
		t.Fatal(err)
	}
	f.Close()

	mgr2, err := Open(dir, Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	idx2 := shard.New(shard.Config{Shards: 1})
	st, err := mgr2.Recover(idx2)
	if err != nil {
		t.Fatal(err)
	}
	if st.TornTails != 1 {
		t.Fatalf("torn tails = %d, want 1", st.TornTails)
	}
	if idx2.Len() != 7 {
		t.Fatalf("recovered %d rankings, want 7", idx2.Len())
	}
}

// TestInvalidSnapshotFallsBack corrupts the newest snapshot capture and
// checks recovery falls back to the older one plus the WAL suffix above
// it, reporting the skip.
func TestInvalidSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(5))
	idx, mgr := openAttached(t, dir, 1)
	for _, r := range testutil.RandDataset(rng, 20, 5, 60) {
		if err := idx.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := mgr.SnapshotAll(idx); err != nil {
		t.Fatal(err)
	}
	for id := int64(500); id < 510; id++ {
		if err := idx.Insert(testutil.RandRanking(rng, id, 5, 60)); err != nil {
			t.Fatal(err)
		}
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}

	// Plant a newer, garbage capture — what bit rot (or a crash that
	// somehow published junk) would leave as the newest snapshot.
	sdir := filepath.Join(dir, "shard-000")
	if err := os.WriteFile(filepath.Join(sdir, snapName(9999)), []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}

	mgr2, err := Open(dir, Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	idx2 := shard.New(shard.Config{Shards: 1})
	st, err := mgr2.Recover(idx2)
	if err != nil {
		t.Fatal(err)
	}
	if st.InvalidSnapshots != 1 {
		t.Fatalf("invalid snapshots = %d, want 1", st.InvalidSnapshots)
	}
	if st.SnapshotsLoaded != 1 {
		t.Fatalf("snapshots loaded = %d, want 1", st.SnapshotsLoaded)
	}
	sameContents(t, idx2, idx)
}

func TestRecordsSince(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(6))
	idx, mgr := openAttached(t, dir, 1)
	defer mgr.Close()
	for _, r := range testutil.RandDataset(rng, 12, 5, 60) {
		if err := idx.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	head := idx.Epochs()[0]

	recs, ok, err := mgr.RecordsSince(0, 4)
	if err != nil || !ok {
		t.Fatalf("RecordsSince(4) = ok=%v err=%v", ok, err)
	}
	if len(recs) != int(head)-4 {
		t.Fatalf("delta length %d, want %d", len(recs), int(head)-4)
	}
	for i, rec := range recs {
		if rec.Epoch != uint64(5+i) {
			t.Fatalf("delta[%d].Epoch = %d, want %d", i, rec.Epoch, 5+i)
		}
	}
	if recs, ok, err := mgr.RecordsSince(0, head); err != nil || !ok || len(recs) != 0 {
		t.Fatalf("RecordsSince(head) = %d recs, ok=%v, err=%v; want empty ok", len(recs), ok, err)
	}

	// Below the compaction floor the delta is gone: snapshot, then ask
	// for history the snapshot superseded.
	if err := mgr.SnapshotAll(idx); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := mgr.RecordsSince(0, 2); err != nil || ok {
		t.Fatalf("RecordsSince below floor: ok=%v err=%v, want ok=false", ok, err)
	}
}

// TestMetaRejectsShardMismatch pins the directory to its shard count.
func TestMetaRejectsShardMismatch(t *testing.T) {
	dir := t.TempDir()
	mgr, err := Open(dir, Config{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	mgr.Close()
	if _, err := Open(dir, Config{Shards: 2}); !errors.Is(err, ErrShardMismatch) {
		t.Fatalf("reopen with 2 shards: err = %v, want ErrShardMismatch", err)
	}
}

func newestSegment(t *testing.T, sdir string) (path string, size int64) {
	t.Helper()
	segs, err := listSegments(sdir)
	if err != nil {
		t.Fatal(err)
	}
	// The newest non-empty segment: the freshly opened live segment of a
	// closed log is empty only when close flushed nothing into it.
	for i := len(segs) - 1; i >= 0; i-- {
		p := filepath.Join(sdir, segName(segs[i]))
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() > 0 {
			return p, fi.Size()
		}
	}
	t.Fatal("no non-empty segment")
	return "", 0
}

// writerState tracks, per id, what a writer has been acknowledged for
// and what it had in flight when the crash hit — the two states
// recovery is allowed to surface.
type writerState struct {
	mu      sync.Mutex
	acked   map[int64][]rankings.Item // nil slice = acked absent (deleted)
	pending map[int64][]rankings.Item
}

// TestCrashRecoveryProperty is the acceptance drill: across 25 seeds,
// writers churn a hooked index, the process "crashes" (user-space WAL
// buffers discarded, as kill -9 would), and a reboot must recover every
// acknowledged write — an id may also surface in its in-flight state,
// never anything older or newer.
func TestCrashRecoveryProperty(t *testing.T) {
	const seeds = 25
	for seed := int64(0); seed < seeds; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			const shards = 2
			idx, mgr := openAttached(t, dir, shards)

			// Maybe leave a pre-crash snapshot behind so recovery has to
			// compose snapshot + WAL suffix, not just replay from zero.
			rng := rand.New(rand.NewSource(seed))
			base := testutil.RandDataset(rng, 30, 5, 200)
			states := make([]*writerState, 2)
			for w := range states {
				states[w] = &writerState{
					acked:   make(map[int64][]rankings.Item),
					pending: make(map[int64][]rankings.Item),
				}
			}
			for _, r := range base {
				if err := idx.Insert(r); err != nil {
					t.Fatal(err)
				}
				states[0].acked[r.ID] = r.Items
			}
			if seed%3 == 0 {
				if err := mgr.SnapshotAll(idx); err != nil {
					t.Fatal(err)
				}
			}

			// Two writers over disjoint id ranges churn until the crash
			// kicks them out.
			var wg sync.WaitGroup
			for w := 0; w < 2; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					st := states[w]
					lo := int64(w * 1000)
					wrng := rand.New(rand.NewSource(seed*31 + int64(w)))
					for op := 0; ; op++ {
						id := lo + wrng.Int63n(40)
						if w == 0 && op%4 == 3 {
							// Writer 0 also deletes from the base set.
							id = base[wrng.Intn(len(base))].ID
						}
						if wrng.Intn(3) == 0 {
							st.mu.Lock()
							st.pending[id] = nil
							st.mu.Unlock()
							if _, err := idx.Delete(id); err != nil {
								return // crashed mid-ack
							}
							st.mu.Lock()
							st.acked[id] = nil
							delete(st.pending, id)
							st.mu.Unlock()
							continue
						}
						r := testutil.RandRanking(wrng, id, 5, 200)
						st.mu.Lock()
						st.pending[id] = r.Items
						st.mu.Unlock()
						if err := idx.Insert(r); err != nil {
							return
						}
						st.mu.Lock()
						st.acked[id] = r.Items
						delete(st.pending, id)
						st.mu.Unlock()
					}
				}(w)
			}
			time.Sleep(time.Duration(5+seed%7) * time.Millisecond)
			mgr.Crash()
			wg.Wait()

			idx2, mgr2 := openAttached(t, dir, shards)
			defer mgr2.Close()

			for w, st := range states {
				st.mu.Lock()
				for id, items := range st.acked {
					if p, ok := st.pending[id]; ok {
						// In flight at the crash: either outcome is legal.
						if ok2 := matches(idx2, id, items) || matches(idx2, id, p); !ok2 {
							st.mu.Unlock()
							t.Fatalf("writer %d id %d: recovered state matches neither acked nor pending", w, id)
						}
						continue
					}
					if !matches(idx2, id, items) {
						st.mu.Unlock()
						t.Fatalf("writer %d id %d: acked write lost or altered by crash recovery", w, id)
					}
				}
				st.mu.Unlock()
			}
		})
	}
}

// matches reports whether idx holds exactly items under id (nil items =
// must be absent).
func matches(idx *shard.Index, id int64, items []rankings.Item) bool {
	r, ok := idx.Get(id)
	if items == nil {
		return !ok
	}
	if !ok || len(r.Items) != len(items) {
		return false
	}
	for i := range items {
		if r.Items[i] != items[i] {
			return false
		}
	}
	return true
}

// TestTornSnapshotPlusWALReplay pins the Index.Snapshot contract: under
// concurrent churn the capture is torn across shards — each shard cut
// at its own epoch — and each per-shard cut composes with the WAL
// records above that epoch into the exact final state.
func TestTornSnapshotPlusWALReplay(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(11))
	const shards = 4
	idx, mgr := openAttached(t, dir, shards)
	defer mgr.Close()
	for _, r := range testutil.RandDataset(rng, 80, 5, 300) {
		if err := idx.Insert(r); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		wrng := rand.New(rand.NewSource(12))
		for id := int64(5000); ; id++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := idx.Insert(testutil.RandRanking(wrng, id, 5, 300)); err != nil {
				t.Error(err)
				return
			}
			if id%3 == 0 {
				if _, err := idx.Delete(id - 20); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()

	time.Sleep(5 * time.Millisecond)
	rs, epochs := idx.Snapshot() // torn: shard i is cut at epochs[i]
	close(stop)
	wg.Wait()

	// Rebuild: per shard, the cut plus its WAL suffix.
	idx2 := shard.New(shard.Config{Shards: shards})
	byShard := make([][]*rankings.Ranking, shards)
	for _, r := range rs {
		s := idx.ShardOf(r.ID)
		byShard[s] = append(byShard[s], r)
	}
	for i := 0; i < shards; i++ {
		if err := idx2.RestoreShard(i, byShard[i], epochs[i]); err != nil {
			t.Fatal(err)
		}
		recs, ok, err := mgr.RecordsSince(i, epochs[i])
		if err != nil || !ok {
			t.Fatalf("RecordsSince(%d, %d): ok=%v err=%v", i, epochs[i], ok, err)
		}
		for _, rec := range recs {
			switch rec.Op {
			case OpInsert:
				r, err := rec.Ranking()
				if err != nil {
					t.Fatal(err)
				}
				if err := idx2.ApplyInsert(r, rec.Epoch); err != nil {
					t.Fatal(err)
				}
			case OpDelete:
				if !idx2.ApplyDelete(rec.ID, rec.Epoch) {
					t.Fatalf("shard %d epoch %d: delete of absent id %d", i, rec.Epoch, rec.ID)
				}
			}
		}
	}
	sameContents(t, idx2, idx)
}
