package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"rankjoin/internal/rankings"
)

// Snapshot file format (one file per shard per capture, named
// snap-<epoch:016x>.snap):
//
//	"RKS1"    magic
//	uvarint   shard ordinal
//	uvarint   capture epoch
//	uvarint   ranking count
//	repeated  uvarint blob length, Ranking gob blob (rankings/wire.go)
//	uint32    CRC-32C of everything above, little-endian
//
// A snapshot becomes visible only via rename(2) of a fully fsynced
// temp file, so a crash mid-write leaves at most a *.tmp straggler and
// the previous snapshot intact; the trailing CRC catches torn or
// bit-rotted files at load, which fall back to the next-older capture.

const (
	snapMagic  = "RKS1"
	snapPrefix = "snap-"
	snapSuffix = ".snap"
)

func snapName(epoch uint64) string { return fmt.Sprintf("%s%016x%s", snapPrefix, epoch, snapSuffix) }

func parseSnapName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
		return 0, false
	}
	var e uint64
	if _, err := fmt.Sscanf(name, snapPrefix+"%016x"+snapSuffix, &e); err != nil {
		return 0, false
	}
	return e, true
}

// encodeSnapshot frames one shard dump.
func encodeSnapshot(shard int, epoch uint64, rs []*rankings.Ranking) ([]byte, error) {
	buf := append([]byte(nil), snapMagic...)
	buf = binary.AppendUvarint(buf, uint64(shard))
	buf = binary.AppendUvarint(buf, epoch)
	buf = binary.AppendUvarint(buf, uint64(len(rs)))
	for _, r := range rs {
		blob, err := r.GobEncode()
		if err != nil {
			return nil, fmt.Errorf("wal: encode snapshot ranking %d: %w", r.ID, err)
		}
		buf = binary.AppendUvarint(buf, uint64(len(blob)))
		buf = append(buf, blob...)
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable)), nil
}

// decodeSnapshot parses and CRC-verifies one shard dump.
func decodeSnapshot(data []byte) (shard int, epoch uint64, rs []*rankings.Ranking, err error) {
	if len(data) < len(snapMagic)+crcSize {
		return 0, 0, nil, fmt.Errorf("%w: snapshot too short", ErrCorrupt)
	}
	body, tail := data[:len(data)-crcSize], data[len(data)-crcSize:]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(tail) {
		return 0, 0, nil, fmt.Errorf("%w: snapshot crc mismatch", ErrCorrupt)
	}
	if string(body[:len(snapMagic)]) != snapMagic {
		return 0, 0, nil, fmt.Errorf("%w: bad snapshot magic", ErrCorrupt)
	}
	rest := body[len(snapMagic):]
	u := func(what string) uint64 {
		if err != nil {
			return 0
		}
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			err = fmt.Errorf("%w: bad snapshot %s", ErrCorrupt, what)
			return 0
		}
		rest = rest[n:]
		return v
	}
	sh := u("shard")
	epoch = u("epoch")
	count := u("count")
	if err != nil {
		return 0, 0, nil, err
	}
	rs = make([]*rankings.Ranking, 0, count)
	for i := uint64(0); i < count; i++ {
		blen := u("blob length")
		if err != nil {
			return 0, 0, nil, err
		}
		if blen > uint64(len(rest)) {
			return 0, 0, nil, fmt.Errorf("%w: snapshot blob %d truncated", ErrCorrupt, i)
		}
		var r rankings.Ranking
		if derr := r.GobDecode(rest[:blen]); derr != nil {
			return 0, 0, nil, fmt.Errorf("%w: snapshot blob %d: %v", ErrCorrupt, i, derr)
		}
		rest = rest[blen:]
		rs = append(rs, &r)
	}
	if len(rest) != 0 {
		return 0, 0, nil, fmt.Errorf("%w: %d trailing snapshot bytes", ErrCorrupt, len(rest))
	}
	return int(sh), epoch, rs, nil
}

// writeSnapshot durably publishes a shard dump into dir: temp file,
// fsync, rename, fsync dir.
func writeSnapshot(dir string, shard int, epoch uint64, rs []*rankings.Ranking) error {
	data, err := encodeSnapshot(shard, epoch, rs)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, snapPrefix+"*.tmp")
	if err != nil {
		return fmt.Errorf("wal: snapshot temp: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op once renamed
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: snapshot write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("wal: snapshot fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("wal: snapshot close: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, snapName(epoch))); err != nil {
		return fmt.Errorf("wal: snapshot rename: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: open dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: fsync dir: %w", err)
	}
	return nil
}

// listSnapshots returns the capture epochs present in dir, ascending.
func listSnapshots(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: list snapshots: %w", err)
	}
	var es []uint64
	for _, e := range ents {
		if ep, ok := parseSnapName(e.Name()); ok {
			es = append(es, ep)
		}
	}
	sort.Slice(es, func(i, j int) bool { return es[i] < es[j] })
	return es, nil
}

// loadNewestSnapshot reads the highest-epoch valid snapshot in dir,
// falling back across corrupt captures. ok=false means no usable
// snapshot exists (an empty shard starts at epoch 0). invalid reports
// how many captures failed their CRC or structure checks.
func loadNewestSnapshot(dir string, wantShard int) (rs []*rankings.Ranking, epoch uint64, ok bool, invalid int, err error) {
	es, err := listSnapshots(dir)
	if err != nil {
		return nil, 0, false, 0, err
	}
	for i := len(es) - 1; i >= 0; i-- {
		data, rerr := os.ReadFile(filepath.Join(dir, snapName(es[i])))
		if rerr != nil {
			return nil, 0, false, invalid, fmt.Errorf("wal: read snapshot: %w", rerr)
		}
		sh, epoch, rs, derr := decodeSnapshot(data)
		if derr != nil || sh != wantShard || epoch != es[i] {
			invalid++
			continue
		}
		return rs, epoch, true, invalid, nil
	}
	return nil, 0, false, invalid, nil
}

// dropSnapshotsBefore deletes captures older than keep.
func dropSnapshotsBefore(dir string, keep uint64) error {
	es, err := listSnapshots(dir)
	if err != nil {
		return err
	}
	for _, e := range es {
		if e >= keep {
			break
		}
		if err := os.Remove(filepath.Join(dir, snapName(e))); err != nil {
			return fmt.Errorf("wal: drop snapshot: %w", err)
		}
	}
	return nil
}
