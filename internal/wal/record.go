// Package wal gives the sharded dynamic index a durability and
// replication substrate: one write-ahead log per shard (length-
// prefixed, CRC-framed insert/delete records stamped with the shard
// epoch, group-commit fsync), periodic epoch snapshots written with
// atomic renames, crash-recovery replay on boot (newest valid
// snapshot, then every WAL record above its epoch, torn tails
// truncated), and the record/segment plumbing the replication endpoint
// ships to read-only followers.
//
// The shard epoch is the only cursor: it advances by exactly one per
// acknowledged mutation (see internal/shard), so "replay everything
// after epoch E" is a contiguity check, and a snapshot named by its
// capture epoch composes with any WAL suffix above that epoch.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"rankjoin/internal/rankings"
)

// ErrCorrupt reports a structurally invalid WAL record or snapshot: a
// CRC mismatch, an impossible length, or an unknown op. During replay
// a corrupt record is a crash artifact — the log is truncated there —
// so ErrCorrupt surfaces only from explicit decode entry points.
var ErrCorrupt = errors.New("wal: corrupt record")

// ErrTorn reports a record cut short by the end of its segment — the
// expected shape of the final record after a crash mid-write.
var ErrTorn = errors.New("wal: torn record")

// Op tags one logged mutation; values mirror internal/shard.
type Op uint8

const (
	OpInsert Op = 1
	OpDelete Op = 2
)

// Record is one durable mutation: the epoch the owning shard reached
// by applying it, and the subject. Items is nil for deletes.
type Record struct {
	Op    Op
	Epoch uint64
	ID    int64
	Items []rankings.Item
}

// Ranking materializes an insert record's subject, validating it the
// same way the public API does.
func (rec *Record) Ranking() (*rankings.Ranking, error) {
	r, err := rankings.New(rec.ID, rec.Items)
	if err != nil {
		return nil, fmt.Errorf("%w: record epoch %d: %v", ErrCorrupt, rec.Epoch, err)
	}
	return r, nil
}

// Frame layout, repeated back to back within a segment file:
//
//	uvarint  payload length
//	payload  op (byte) | epoch (uvarint) | id (varint)
//	         | inserts only: item count (uvarint), items (varints)
//	uint32   CRC-32C of the payload, little-endian
//
// The length prefix is outside the CRC; a corrupted length either
// lands the CRC check on garbage (fails) or runs past the segment end
// (torn). Both read as end-of-valid-log, which is the only recovery
// action a tail corruption needs.

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// appendRecord appends rec's frame to buf.
func appendRecord(buf []byte, rec Record) []byte {
	payload := make([]byte, 0, 1+2*binary.MaxVarintLen64+(len(rec.Items)+1)*binary.MaxVarintLen32)
	payload = append(payload, byte(rec.Op))
	payload = binary.AppendUvarint(payload, rec.Epoch)
	payload = binary.AppendVarint(payload, rec.ID)
	if rec.Op == OpInsert {
		payload = binary.AppendUvarint(payload, uint64(len(rec.Items)))
		for _, it := range rec.Items {
			payload = binary.AppendVarint(payload, int64(it))
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, crcTable))
}

// decodeRecord decodes one frame from the head of data, returning the
// record and the frame's size. ErrTorn means data ends mid-frame;
// ErrCorrupt means the frame is complete but invalid.
func decodeRecord(data []byte) (Record, int, error) {
	plen, n := binary.Uvarint(data)
	if n <= 0 {
		if len(data) >= binary.MaxVarintLen64 {
			return Record{}, 0, fmt.Errorf("%w: bad length prefix", ErrCorrupt)
		}
		return Record{}, 0, ErrTorn
	}
	const maxPayload = 1 << 24 // no sane record approaches 16 MiB
	if plen > maxPayload {
		return Record{}, 0, fmt.Errorf("%w: payload length %d", ErrCorrupt, plen)
	}
	frame := n + int(plen) + crcSize
	if len(data) < frame {
		return Record{}, 0, ErrTorn
	}
	payload := data[n : n+int(plen)]
	want := binary.LittleEndian.Uint32(data[n+int(plen):])
	if crc32.Checksum(payload, crcTable) != want {
		return Record{}, 0, fmt.Errorf("%w: crc mismatch", ErrCorrupt)
	}
	rec, err := decodePayload(payload)
	if err != nil {
		return Record{}, 0, err
	}
	return rec, frame, nil
}

const crcSize = 4

func decodePayload(payload []byte) (Record, error) {
	if len(payload) == 0 {
		return Record{}, fmt.Errorf("%w: empty payload", ErrCorrupt)
	}
	rec := Record{Op: Op(payload[0])}
	rest := payload[1:]
	epoch, n := binary.Uvarint(rest)
	if n <= 0 {
		return Record{}, fmt.Errorf("%w: bad epoch", ErrCorrupt)
	}
	rest = rest[n:]
	id, n := binary.Varint(rest)
	if n <= 0 {
		return Record{}, fmt.Errorf("%w: bad id", ErrCorrupt)
	}
	rest = rest[n:]
	rec.Epoch, rec.ID = epoch, id
	switch rec.Op {
	case OpDelete:
		if len(rest) != 0 {
			return Record{}, fmt.Errorf("%w: %d trailing bytes in delete", ErrCorrupt, len(rest))
		}
	case OpInsert:
		count, n := binary.Uvarint(rest)
		if n <= 0 {
			return Record{}, fmt.Errorf("%w: bad item count", ErrCorrupt)
		}
		rest = rest[n:]
		if count > uint64(len(rest)) { // every item takes ≥ 1 byte
			return Record{}, fmt.Errorf("%w: item count %d exceeds payload", ErrCorrupt, count)
		}
		rec.Items = make([]rankings.Item, count)
		for i := range rec.Items {
			v, n := binary.Varint(rest)
			if n <= 0 {
				return Record{}, fmt.Errorf("%w: bad item %d", ErrCorrupt, i)
			}
			rec.Items[i] = rankings.Item(v)
			rest = rest[n:]
		}
		if len(rest) != 0 {
			return Record{}, fmt.Errorf("%w: %d trailing bytes in insert", ErrCorrupt, len(rest))
		}
	default:
		return Record{}, fmt.Errorf("%w: unknown op %d", ErrCorrupt, rec.Op)
	}
	return rec, nil
}
