package wal

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"rankjoin/internal/obs"
	"rankjoin/internal/shard"
)

// ErrShardMismatch reports a WAL directory laid out for a different
// shard count than the index being recovered — replaying records into
// the wrong shards would scatter the dataset, so boot must refuse.
var ErrShardMismatch = errors.New("wal: directory shard count does not match index")

// Config sizes a Manager.
type Config struct {
	// Shards is the index's shard count, pinned into the directory's
	// meta file on first open and enforced on every later one.
	Shards int
	// FsyncEvery is the group-commit batching window: an acknowledgment
	// waits at most this long for other writes to share its fsync.
	// 0 fsyncs immediately on every commit request.
	FsyncEvery time.Duration
	// SnapshotEvery is the periodic snapshot interval for Start.
	// 0 disables the background loop (SnapshotAll still works).
	SnapshotEvery time.Duration
	// Logger receives recovery and snapshot-loop diagnostics.
	Logger *slog.Logger
}

// Manager owns one directory of per-shard logs and snapshots:
//
//	<dir>/wal.meta                    shard-count pin
//	<dir>/shard-NNN/seg-*.wal         record segments
//	<dir>/shard-NNN/snap-*.snap       epoch snapshots
//
// Lifecycle: Open → Recover (replays into an index) → Attach (installs
// the write hook) → Start (background snapshots) → Close. Recover
// before Attach, or recovery replay would re-log itself.
type Manager struct {
	dir    string
	cfg    Config
	logger *slog.Logger

	logs []*log
	// snapEpochs[i] is the capture epoch of shard i's newest durable
	// snapshot — the floor below which segments have been discarded.
	snapEpochs []atomic.Uint64

	snapshots    atomic.Int64
	snapErrs     atomic.Int64
	lastSnapUnix atomic.Int64  // UnixNano of the last completed sweep
	fsyncDur     obs.Histogram // shared across all shard logs

	startOnce sync.Once
	stop      chan struct{}
	done      chan struct{}
}

type metaFile struct {
	Version int `json:"version"`
	Shards  int `json:"shards"`
}

// Open prepares dir for cfg.Shards shards and opens one fresh log
// segment per shard. It does not read old records — call Recover for
// that, before any writes.
func Open(dir string, cfg Config) (*Manager, error) {
	if cfg.Shards <= 0 {
		return nil, fmt.Errorf("wal: shard count %d", cfg.Shards)
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.DiscardHandler)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	if err := checkMeta(dir, cfg.Shards); err != nil {
		return nil, err
	}
	m := &Manager{
		dir:        dir,
		cfg:        cfg,
		logger:     cfg.Logger,
		logs:       make([]*log, cfg.Shards),
		snapEpochs: make([]atomic.Uint64, cfg.Shards),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	for i := range m.logs {
		l, err := openLog(m.shardDir(i), cfg.FsyncEvery, &m.fsyncDur)
		if err != nil {
			for j := 0; j < i; j++ {
				m.logs[j].close()
			}
			return nil, err
		}
		m.logs[i] = l
	}
	return m, nil
}

func checkMeta(dir string, shards int) error {
	path := filepath.Join(dir, "wal.meta")
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		blob, merr := json.Marshal(metaFile{Version: 1, Shards: shards})
		if merr != nil {
			return fmt.Errorf("wal: encode meta: %w", merr)
		}
		if werr := os.WriteFile(path, blob, 0o644); werr != nil {
			return fmt.Errorf("wal: write meta: %w", werr)
		}
		return syncDir(dir)
	}
	if err != nil {
		return fmt.Errorf("wal: read meta: %w", err)
	}
	var meta metaFile
	if err := json.Unmarshal(data, &meta); err != nil {
		return fmt.Errorf("wal: parse meta: %w", err)
	}
	if meta.Shards != shards {
		return fmt.Errorf("%w: directory has %d, index has %d",
			ErrShardMismatch, meta.Shards, shards)
	}
	return nil
}

func (m *Manager) shardDir(i int) string {
	return filepath.Join(m.dir, fmt.Sprintf("shard-%03d", i))
}

// RecoveryStats summarizes one boot replay.
type RecoveryStats struct {
	SnapshotsLoaded  int // shards restored from a snapshot
	InvalidSnapshots int // captures skipped on CRC/structure failure
	RecordsReplayed  int
	TornTails        int // segments truncated at a torn or corrupt frame
	Epochs           []uint64
}

// Recover rebuilds idx from disk: per shard, the newest valid snapshot
// (if any) then every WAL record above its epoch, in epoch order with
// a contiguity check. Torn or corrupt frames truncate their segment —
// they are the unacknowledged tail of a crash. Call before Attach and
// before serving.
func (m *Manager) Recover(idx *shard.Index) (RecoveryStats, error) {
	var st RecoveryStats
	if idx.NumShards() != m.cfg.Shards {
		return st, fmt.Errorf("%w: manager has %d, index has %d",
			ErrShardMismatch, m.cfg.Shards, idx.NumShards())
	}
	st.Epochs = make([]uint64, m.cfg.Shards)
	for i := 0; i < m.cfg.Shards; i++ {
		sdir := m.shardDir(i)
		rs, snapEpoch, ok, invalid, err := loadNewestSnapshot(sdir, i)
		st.InvalidSnapshots += invalid
		if err != nil {
			return st, err
		}
		if ok {
			if err := idx.RestoreShard(i, rs, snapEpoch); err != nil {
				return st, fmt.Errorf("wal: restore shard %d: %w", i, err)
			}
			st.SnapshotsLoaded++
		}
		m.snapEpochs[i].Store(snapEpoch)

		applied, torn, err := m.replayShard(idx, i, snapEpoch)
		if err != nil {
			return st, err
		}
		st.RecordsReplayed += applied
		st.TornTails += torn
		st.Epochs[i] = idx.Epochs()[i]
	}
	m.logger.Info("wal recovered",
		"snapshots", st.SnapshotsLoaded,
		"invalid_snapshots", st.InvalidSnapshots,
		"records", st.RecordsReplayed,
		"torn_tails", st.TornTails)
	return st, nil
}

// replayShard applies shard i's records with epoch > floor. The log
// already points at a fresh segment, so every older segment is
// read-only here; a torn/corrupt frame truncates its file in place.
func (m *Manager) replayShard(idx *shard.Index, i int, floor uint64) (applied, torn int, err error) {
	sdir := m.shardDir(i)
	segs, err := listSegments(sdir)
	if err != nil {
		return 0, 0, err
	}
	last := floor
	for _, seg := range segs {
		if seg >= m.logs[i].seg {
			break // the just-opened live segment is empty
		}
		path := filepath.Join(sdir, segName(seg))
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return applied, torn, fmt.Errorf("wal: read segment: %w", rerr)
		}
		off := 0
		for off < len(data) {
			rec, n, derr := decodeRecord(data[off:])
			if derr != nil {
				// The crash tail: cut it off so the file is clean for
				// replication scans, and stop replaying this shard. Any
				// later segment is unreachable history (its epochs can
				// never be contiguous with ours), so drop those too.
				m.logger.Warn("wal segment truncated at invalid frame",
					"shard", i, "segment", seg, "offset", off, "err", derr)
				if terr := os.Truncate(path, int64(off)); terr != nil {
					return applied, torn, fmt.Errorf("wal: truncate torn tail: %w", terr)
				}
				torn++
				for _, later := range segs {
					if later > seg && later < m.logs[i].seg {
						if rmerr := os.Remove(filepath.Join(sdir, segName(later))); rmerr != nil {
							return applied, torn, fmt.Errorf("wal: drop unreachable segment: %w", rmerr)
						}
					}
				}
				return applied, torn, nil
			}
			off += n
			if rec.Epoch <= last {
				continue // covered by the snapshot (or a replayed duplicate)
			}
			if rec.Epoch != last+1 {
				// A gap means lost segments, not a crash tail; refuse to
				// silently skip history.
				return applied, torn, fmt.Errorf(
					"wal: shard %d epoch gap: have %d, next record %d", i, last, rec.Epoch)
			}
			if aerr := m.applyRecord(idx, i, rec); aerr != nil {
				return applied, torn, aerr
			}
			last = rec.Epoch
			applied++
		}
	}
	return applied, torn, nil
}

func (m *Manager) applyRecord(idx *shard.Index, i int, rec Record) error {
	switch rec.Op {
	case OpInsert:
		r, err := rec.Ranking()
		if err != nil {
			return err
		}
		if idx.ShardOf(r.ID) != i {
			return fmt.Errorf("wal: shard %d record for id %d routes to shard %d",
				i, r.ID, idx.ShardOf(r.ID))
		}
		return idx.ApplyInsert(r, rec.Epoch)
	case OpDelete:
		if idx.ShardOf(rec.ID) != i {
			return fmt.Errorf("wal: shard %d record for id %d routes to shard %d",
				i, rec.ID, idx.ShardOf(rec.ID))
		}
		if !idx.ApplyDelete(rec.ID, rec.Epoch) {
			return fmt.Errorf("wal: shard %d epoch %d deletes absent id %d",
				i, rec.Epoch, rec.ID)
		}
		return nil
	default:
		return fmt.Errorf("%w: unknown op %d", ErrCorrupt, rec.Op)
	}
}

// Attach installs the durability hook on idx: every Insert/Delete
// appends its record to the owning shard's log under the shard lock,
// and the returned commit barrier — run by the mutation after
// unlocking — blocks until the group-commit fsync covers it. From this
// point an acknowledged write survives kill -9.
func (m *Manager) Attach(idx *shard.Index) {
	idx.SetWriteHook(func(wr shard.WriteRecord) func() error {
		l := m.logs[wr.Shard]
		rec := Record{Op: Op(wr.Op), Epoch: wr.Epoch, ID: wr.ID}
		if wr.Op == shard.OpInsert {
			rec.Items = wr.Ranking.Items
		}
		lsn, err := l.append(rec)
		if err != nil {
			return func() error { return err }
		}
		return func() error { return l.sync(lsn) }
	})
}

// Start launches the background snapshot loop (no-op when
// SnapshotEvery is 0). idx must be the index Recover/Attach used.
func (m *Manager) Start(idx *shard.Index) {
	m.startOnce.Do(func() {
		if m.cfg.SnapshotEvery <= 0 {
			close(m.done)
			return
		}
		go func() {
			defer close(m.done)
			t := time.NewTicker(m.cfg.SnapshotEvery)
			defer t.Stop()
			for {
				select {
				case <-m.stop:
					return
				case <-t.C:
					if err := m.SnapshotAll(idx); err != nil {
						m.logger.Warn("wal snapshot sweep failed", "err", err)
					}
				}
			}
		}()
	})
}

// SnapshotAll captures every shard whose epoch moved since its last
// snapshot. Per shard: capture rankings+epoch and rotate the log under
// one shard-lock hold (the segment boundary IS the snapshot cut),
// durably publish the dump, then discard the segments and captures the
// new snapshot supersedes.
func (m *Manager) SnapshotAll(idx *shard.Index) error {
	var first error
	for i := 0; i < m.cfg.Shards; i++ {
		if err := m.snapshotShard(idx, i); err != nil {
			m.snapErrs.Add(1)
			if first == nil {
				first = err
			}
		}
	}
	m.lastSnapUnix.Store(time.Now().UnixNano())
	return first
}

func (m *Manager) snapshotShard(idx *shard.Index, i int) error {
	if idx.Epochs()[i] == m.snapEpochs[i].Load() {
		return nil // nothing new; keep the old capture and segments
	}
	var (
		newSeg int
		rotErr error
	)
	rs, epoch := idx.SnapshotShard(i, func() {
		newSeg, rotErr = m.logs[i].rotate()
	})
	if rotErr != nil {
		return rotErr
	}
	if err := writeSnapshot(m.shardDir(i), i, epoch, rs); err != nil {
		return err
	}
	m.snapEpochs[i].Store(epoch)
	m.snapshots.Add(1)
	if err := dropSnapshotsBefore(m.shardDir(i), epoch); err != nil {
		return err
	}
	return m.logs[i].dropSegmentsBefore(newSeg)
}

// RecordsSince returns shard i's records with epoch in
// (sinceEpoch, head], verified contiguous — the replication delta. ok
// is false when the delta cannot be assembled (the span predates the
// snapshot floor, a frame is torn, or the stream has a gap) and the
// caller must fall back to a full snapshot.
func (m *Manager) RecordsSince(i int, sinceEpoch uint64) (recs []Record, ok bool, err error) {
	if i < 0 || i >= m.cfg.Shards {
		return nil, false, fmt.Errorf("wal: shard %d out of range [0,%d)", i, m.cfg.Shards)
	}
	if sinceEpoch < m.snapEpochs[i].Load() {
		return nil, false, nil // history below the floor is gone
	}
	if err := m.logs[i].flushForRead(); err != nil {
		return nil, false, err
	}
	sdir := m.shardDir(i)
	segs, err := listSegments(sdir)
	if err != nil {
		return nil, false, err
	}
	last := sinceEpoch
	for _, seg := range segs {
		data, rerr := os.ReadFile(filepath.Join(sdir, segName(seg)))
		if rerr != nil {
			return nil, false, fmt.Errorf("wal: read segment: %w", rerr)
		}
		off := 0
		for off < len(data) {
			rec, n, derr := decodeRecord(data[off:])
			if derr != nil {
				// A reader can observe a partially flushed final frame;
				// the contiguous prefix is still a valid delta.
				return recs, true, nil
			}
			off += n
			if rec.Epoch <= last {
				continue
			}
			if rec.Epoch != last+1 {
				return nil, false, nil
			}
			recs = append(recs, rec)
			last = rec.Epoch
		}
	}
	return recs, true, nil
}

// SnapshotEpoch returns shard i's newest durable snapshot epoch.
func (m *Manager) SnapshotEpoch(i int) uint64 { return m.snapEpochs[i].Load() }

// Close stops the snapshot loop and flushes, fsyncs and closes every
// log — the drain path: after Close returns, every acknowledged write
// and every buffered-but-unacknowledged one is on disk.
func (m *Manager) Close() error {
	m.Start(nil) // ensure done is closed even if Start was never called
	select {
	case <-m.stop:
	default:
		close(m.stop)
	}
	<-m.done
	var first error
	for _, l := range m.logs {
		if err := l.close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Crash abandons every log the way SIGKILL would — user-space buffers
// are discarded, bytes already handed to the OS survive. The in-
// process stand-in for the real thing in crash-recovery tests.
func (m *Manager) Crash() {
	m.Start(nil)
	select {
	case <-m.stop:
	default:
		close(m.stop)
	}
	<-m.done
	for _, l := range m.logs {
		l.crash()
	}
}

// Stats is the telemetry snapshot /metrics and /statusz export.
type Stats struct {
	Records        int64                 `json:"records"`
	AppendedBytes  int64                 `json:"appended_bytes"`
	DurableBytes   int64                 `json:"durable_bytes"`
	Fsyncs         int64                 `json:"fsyncs"`
	FsyncMicros    obs.HistogramSnapshot `json:"fsync_micros"`
	Snapshots      int64                 `json:"snapshots"`
	SnapshotErrors int64                 `json:"snapshot_errors"`
	// SnapshotAge is the seconds since the last completed snapshot
	// sweep; -1 before the first one.
	SnapshotAge    float64  `json:"snapshot_age_seconds"`
	SnapshotEpochs []uint64 `json:"snapshot_epochs"`
}

// Stats aggregates across shards.
func (m *Manager) Stats() Stats {
	st := Stats{
		Snapshots:      m.snapshots.Load(),
		SnapshotErrors: m.snapErrs.Load(),
		SnapshotAge:    -1,
		SnapshotEpochs: make([]uint64, m.cfg.Shards),
	}
	if t := m.lastSnapUnix.Load(); t > 0 {
		st.SnapshotAge = time.Since(time.Unix(0, t)).Seconds()
	}
	for i, l := range m.logs {
		st.SnapshotEpochs[i] = m.snapEpochs[i].Load()
		l.mu.Lock()
		st.Records += l.records
		st.AppendedBytes += l.appended
		st.DurableBytes += l.synced
		st.Fsyncs += l.fsyncs
		l.mu.Unlock()
	}
	st.FsyncMicros = m.fsyncDur.Snapshot()
	return st
}
