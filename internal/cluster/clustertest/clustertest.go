// Package clustertest boots a real multi-peer rankjoin cluster inside
// one process: every peer gets its own shard index, server, cluster
// runtime, and TCP listener, and peers talk to each other over actual
// HTTP — the same code path N separate rankserved processes exercise,
// minus the process boundary. Used by the e2e tests and cmd/bench's
// cluster mode; it returns errors instead of depending on testing.T.
package clustertest

import (
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"path/filepath"
	"time"

	"rankjoin/internal/cluster"
	"rankjoin/internal/rankings"
	"rankjoin/internal/server"
	"rankjoin/internal/shard"
	"rankjoin/internal/wal"
)

// Options tunes the fleet; zero values take the documented defaults.
type Options struct {
	// Shards per peer index (0 = 2).
	Shards int
	// RPCTimeout, HedgeDelay, JoinTimeout, ProbeEvery forward into
	// cluster.Config (zeros take its defaults).
	RPCTimeout  time.Duration
	HedgeDelay  time.Duration
	JoinTimeout time.Duration
	ProbeEvery  time.Duration
	// JoinWorkers per peer (0 = 2, deliberately small: N peers × W
	// workers goroutines share one test process).
	JoinWorkers int
	// WALRoot, when set, gives every peer a write-ahead log under
	// WALRoot/peer-<i>, enabling KillHard + Restart crash drills.
	WALRoot string
	// FsyncEvery forwards into each peer's wal.Config.
	FsyncEvery time.Duration
	// Logger for all peers (nil discards).
	Logger *slog.Logger
}

// Peer is one booted cluster member.
type Peer struct {
	Addr    string
	Cluster *cluster.Cluster
	Server  *server.Server
	Index   *shard.Index
	WAL     *wal.Manager // nil unless Options.WALRoot was set

	ln   net.Listener
	http *http.Server
	done chan struct{}
}

// Fleet is a booted cluster.
type Fleet struct {
	Addrs []string
	Peers []*Peer

	opt Options
}

// Boot starts an n-peer cluster on loopback ports. Close the fleet
// when done.
func Boot(n int, opt Options) (*Fleet, error) {
	if n <= 0 {
		return nil, fmt.Errorf("clustertest: need at least one peer, got %d", n)
	}
	if opt.Shards == 0 {
		opt.Shards = 2
	}
	if opt.JoinWorkers == 0 {
		opt.JoinWorkers = 2
	}
	logger := opt.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}

	// Addresses must be known before any cluster.Config can be built,
	// so listen first, then assemble the peers.
	f := &Fleet{}
	lns := make([]net.Listener, 0, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range lns {
				l.Close()
			}
			return nil, fmt.Errorf("clustertest: listen peer %d: %w", i, err)
		}
		lns = append(lns, ln)
		f.Addrs = append(f.Addrs, ln.Addr().String())
	}

	f.opt = opt
	for i := 0; i < n; i++ {
		p, err := f.bootPeer(i, lns[i])
		if err != nil {
			f.Close()
			return nil, err
		}
		f.Peers = append(f.Peers, p)
	}
	return f, nil
}

// bootPeer assembles and starts one peer on an already-bound listener,
// recovering from its WAL directory when the fleet is durable.
func (f *Fleet) bootPeer(i int, ln net.Listener) (*Peer, error) {
	logger := f.opt.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	clu, err := cluster.New(cluster.Config{
		Self:        i,
		Peers:       f.Addrs,
		RPCTimeout:  f.opt.RPCTimeout,
		HedgeDelay:  f.opt.HedgeDelay,
		JoinTimeout: f.opt.JoinTimeout,
		ProbeEvery:  f.opt.ProbeEvery,
		JoinWorkers: f.opt.JoinWorkers,
		Logger:      logger,
	})
	if err != nil {
		return nil, err
	}
	idx := shard.New(shard.Config{Shards: f.opt.Shards})
	var mgr *wal.Manager
	if f.opt.WALRoot != "" {
		mgr, err = wal.Open(filepath.Join(f.opt.WALRoot, fmt.Sprintf("peer-%d", i)), wal.Config{
			Shards:     f.opt.Shards,
			FsyncEvery: f.opt.FsyncEvery,
			Logger:     logger,
		})
		if err != nil {
			return nil, fmt.Errorf("clustertest: open wal peer %d: %w", i, err)
		}
		if _, err := mgr.Recover(idx); err != nil {
			return nil, fmt.Errorf("clustertest: recover peer %d: %w", i, err)
		}
		mgr.Attach(idx)
	}
	srv := server.New(server.Config{Index: idx, Cluster: clu, Logger: logger, WAL: mgr})
	p := &Peer{
		Addr:    f.Addrs[i],
		Cluster: clu,
		Server:  srv,
		Index:   idx,
		WAL:     mgr,
		ln:      ln,
		http:    &http.Server{Handler: srv.Handler()},
		done:    make(chan struct{}),
	}
	go func(p *Peer) {
		defer close(p.done)
		p.http.Serve(p.ln)
	}(p)
	return p, nil
}

// Load distributes rankings across the fleet by ring ownership,
// inserting directly into each owner's index (no HTTP) — the same
// placement rankserved -data applies at boot.
func (f *Fleet) Load(rs []*rankings.Ranking) error {
	for _, r := range rs {
		owner := f.Peers[0].Cluster.Owner(r.ID)
		if err := f.Peers[owner].Index.Insert(r); err != nil {
			return fmt.Errorf("clustertest: load id %d into peer %d: %w", r.ID, owner, err)
		}
	}
	return nil
}

// Kill hard-stops peer i without draining — the listener closes and
// in-flight connections reset, like a SIGKILL. The peer stays in every
// other member's configuration, so its shard of the data is simply
// gone until something answers at that address again.
func (f *Fleet) Kill(i int) {
	p := f.Peers[i]
	p.http.Close()
	p.ln.Close()
	<-p.done
	p.Server.Close()
	if p.WAL != nil {
		p.WAL.Close()
	}
}

// KillHard crashes peer i with SIGKILL semantics: the listener resets
// in-flight connections and the peer's WAL drops its user-space write
// buffer — only bytes the OS already has (everything acked, thanks to
// ack-after-fsync) survive for Restart to recover.
func (f *Fleet) KillHard(i int) {
	p := f.Peers[i]
	p.http.Close()
	p.ln.Close()
	<-p.done
	if p.WAL != nil {
		p.WAL.Crash()
	}
	p.Server.Close()
}

// Restart reboots a killed peer on its original address, recovering
// its index from the snapshot + WAL tail exactly as a rebooted
// rankserved process would. Requires Options.WALRoot (a non-durable
// peer has nothing to recover from).
func (f *Fleet) Restart(i int) error {
	if f.opt.WALRoot == "" {
		return fmt.Errorf("clustertest: Restart(%d) needs Options.WALRoot", i)
	}
	select {
	case <-f.Peers[i].done:
	default:
		return fmt.Errorf("clustertest: peer %d is still running", i)
	}
	// The old listener just closed; the port can lag a beat before it
	// rebinds.
	var ln net.Listener
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		ln, err = net.Listen("tcp", f.Addrs[i])
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("clustertest: rebind peer %d: %w", i, err)
	}
	p, err := f.bootPeer(i, ln)
	if err != nil {
		ln.Close()
		return err
	}
	f.Peers[i] = p
	return nil
}

// URL returns the base URL of peer i.
func (f *Fleet) URL(i int) string { return "http://" + f.Addrs[i] }

// Close stops every still-running peer.
func (f *Fleet) Close() {
	for _, p := range f.Peers {
		select {
		case <-p.done: // already killed
		default:
			p.http.Close()
			p.ln.Close()
			<-p.done
			p.Server.Close()
			if p.WAL != nil {
				p.WAL.Close()
			}
		}
	}
}
