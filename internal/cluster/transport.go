package cluster

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"time"
)

// Shuffle frames travel between peers as length-prefixed binary
// blobs: a magic tag, the job id, the collective id, the sender's
// rank, and the gob payload produced by flow's distributed shuffle.
// Frames are self-describing, so the receiving inbox can buffer them
// before the local worker for the job has even started.
//
//	"RKX1" | uvarint len(job) | job bytes | varint collective |
//	uvarint src | uvarint len(payload) | payload bytes

// frameMagic tags shuffle frame bodies; a mismatch means the peer is
// not speaking this protocol version.
var frameMagic = [4]byte{'R', 'K', 'X', '1'}

// maxFrameJobLen bounds the job-id field, keeping a corrupt length
// prefix from turning into a giant allocation.
const maxFrameJobLen = 256

// frame is one decoded shuffle message.
type frame struct {
	Job        string
	Collective int64
	Src        int
	Payload    []byte
}

// encodeFrame serializes a frame for the wire.
func encodeFrame(f frame) []byte {
	buf := make([]byte, 0, 4+2*binary.MaxVarintLen64+len(f.Job)+len(f.Payload)+8)
	buf = append(buf, frameMagic[:]...)
	buf = binary.AppendUvarint(buf, uint64(len(f.Job)))
	buf = append(buf, f.Job...)
	buf = binary.AppendVarint(buf, f.Collective)
	buf = binary.AppendUvarint(buf, uint64(f.Src))
	buf = binary.AppendUvarint(buf, uint64(len(f.Payload)))
	buf = append(buf, f.Payload...)
	return buf
}

// decodeFrame parses a wire frame, bounding every length against the
// actual body size.
func decodeFrame(body []byte) (frame, error) {
	var f frame
	rd := bytes.NewReader(body)
	var magic [4]byte
	if _, err := io.ReadFull(rd, magic[:]); err != nil {
		return f, fmt.Errorf("cluster: frame magic: %w", err)
	}
	if magic != frameMagic {
		return f, fmt.Errorf("cluster: bad frame magic %q", magic)
	}
	jobLen, err := binary.ReadUvarint(rd)
	if err != nil {
		return f, fmt.Errorf("cluster: frame job length: %w", err)
	}
	if jobLen > maxFrameJobLen || jobLen > uint64(rd.Len()) {
		return f, fmt.Errorf("cluster: frame job length %d out of bounds", jobLen)
	}
	job := make([]byte, jobLen)
	if _, err := io.ReadFull(rd, job); err != nil {
		return f, fmt.Errorf("cluster: frame job: %w", err)
	}
	f.Job = string(job)
	if f.Collective, err = binary.ReadVarint(rd); err != nil {
		return f, fmt.Errorf("cluster: frame collective: %w", err)
	}
	src, err := binary.ReadUvarint(rd)
	if err != nil {
		return f, fmt.Errorf("cluster: frame src: %w", err)
	}
	f.Src = int(src)
	payloadLen, err := binary.ReadUvarint(rd)
	if err != nil {
		return f, fmt.Errorf("cluster: frame payload length: %w", err)
	}
	if payloadLen != uint64(rd.Len()) {
		return f, fmt.Errorf("cluster: frame payload length %d, %d bytes remain", payloadLen, rd.Len())
	}
	f.Payload = make([]byte, payloadLen)
	if _, err := io.ReadFull(rd, f.Payload); err != nil {
		return f, fmt.Errorf("cluster: frame payload: %w", err)
	}
	return f, nil
}

// inbox buffers incoming shuffle frames until the local SPMD worker
// asks for them. Frames for one (job, collective, src) arrive exactly
// once in the happy path; hedged resends are deduplicated keep-first.
// Frames may arrive before the job's worker starts (the coordinator's
// worker races the join-start RPCs), so unknown jobs buffer rather
// than reject; finished jobs leave a tombstone so late or duplicate
// frames are dropped instead of accumulating forever.
type inbox struct {
	mu    sync.Mutex
	slots map[inboxKey]chan []byte
	done  map[string]time.Time // job tombstones
}

type inboxKey struct {
	job        string
	collective int64
	src        int
}

// inboxTombstoneTTL is how long a finished job rejects late frames
// before its tombstone is pruned.
const inboxTombstoneTTL = 10 * time.Minute

func newInbox() *inbox {
	return &inbox{slots: make(map[inboxKey]chan []byte), done: make(map[string]time.Time)}
}

func (ib *inbox) slot(key inboxKey) chan []byte {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	ch, ok := ib.slots[key]
	if !ok {
		ch = make(chan []byte, 1)
		ib.slots[key] = ch
	}
	return ch
}

// put delivers one frame; duplicates and frames for finished jobs are
// dropped. Returns false when dropped.
func (ib *inbox) put(f frame) bool {
	ib.mu.Lock()
	if _, finished := ib.done[f.Job]; finished {
		ib.mu.Unlock()
		return false
	}
	key := inboxKey{job: f.Job, collective: f.Collective, src: f.Src}
	ch, ok := ib.slots[key]
	if !ok {
		ch = make(chan []byte, 1)
		ib.slots[key] = ch
	}
	ib.mu.Unlock()
	select {
	case ch <- f.Payload:
		return true
	default:
		return false // duplicate (hedged resend); keep the first
	}
}

// wait blocks until the frame for key arrives or ctx expires.
func (ib *inbox) wait(ctx context.Context, key inboxKey) ([]byte, error) {
	select {
	case payload := <-ib.slot(key):
		return payload, nil
	case <-ctx.Done():
		return nil, fmt.Errorf("cluster: waiting for shuffle frame job=%s collective=%d src=%d: %w",
			key.job, key.collective, key.src, ctx.Err())
	}
}

// finishJob drops all buffered frames of a job and tombstones it so
// stragglers are rejected. Old tombstones are pruned opportunistically.
func (ib *inbox) finishJob(job string) {
	now := time.Now()
	ib.mu.Lock()
	defer ib.mu.Unlock()
	for key := range ib.slots {
		if key.job == job {
			delete(ib.slots, key)
		}
	}
	ib.done[job] = now
	for j, t := range ib.done {
		if now.Sub(t) > inboxTombstoneTTL {
			delete(ib.done, j)
		}
	}
}

// depth reports the number of buffered frame slots (for status).
func (ib *inbox) depth() int {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	return len(ib.slots)
}
