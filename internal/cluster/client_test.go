package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func testClient(t *testing.T, handler http.Handler, hedgeDelay time.Duration) *peerClient {
	t.Helper()
	srv := httptest.NewServer(handler)
	t.Cleanup(srv.Close)
	return &peerClient{
		addr:       strings.TrimPrefix(srv.URL, "http://"),
		http:       srv.Client(),
		rpcTimeout: time.Second,
		hedgeDelay: hedgeDelay,
		downAfter:  3,
		probeEvery: 10 * time.Millisecond,
	}
}

func TestClientHedgesSlowFirstAttempt(t *testing.T) {
	var calls atomic.Int64
	p := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			time.Sleep(300 * time.Millisecond) // first attempt stalls
		}
		w.Write([]byte(`ok`))
	}), 20*time.Millisecond)

	start := time.Now()
	data, err := p.do(context.Background(), "/x", "text/plain", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "ok" {
		t.Fatalf("body %q", data)
	}
	if elapsed := time.Since(start); elapsed >= 300*time.Millisecond {
		t.Fatalf("hedge did not win: took %v", elapsed)
	}
	if p.hedges.Load() != 1 {
		t.Fatalf("hedges = %d, want 1", p.hedges.Load())
	}
}

func TestClientRetriesFastFailure(t *testing.T) {
	// A refused connection fails fast; do() retries once immediately.
	p := &peerClient{
		addr:       "127.0.0.1:1", // nothing listens here
		http:       &http.Client{},
		rpcTimeout: 200 * time.Millisecond,
		hedgeDelay: time.Hour, // timer never fires; only fast-fail retry
		downAfter:  3,
		probeEvery: time.Hour,
	}
	if _, err := p.do(context.Background(), "/x", "text/plain", nil, 0); err == nil {
		t.Fatal("expected error")
	}
	if p.hedges.Load() != 1 {
		t.Fatalf("hedges = %d, want 1 (fast-fail retry)", p.hedges.Load())
	}
	if p.errors.Load() != 1 {
		t.Fatalf("errors = %d, want 1 (one logical RPC failed)", p.errors.Load())
	}
}

func TestClientDownAndHalfOpenProbe(t *testing.T) {
	var healthy atomic.Bool
	p := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !healthy.Load() {
			http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`ok`))
	}), time.Hour)

	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := p.do(ctx, "/x", "text/plain", nil, 0); err == nil {
			t.Fatal("expected failure")
		}
	}
	if !p.down() {
		t.Fatalf("peer not down after %d consecutive failures", p.fails.Load())
	}
	// While down and before the probe window, RPCs fail immediately.
	p.lastProbe.Store(time.Now().UnixNano())
	if _, err := p.do(ctx, "/x", "text/plain", nil, 0); err == nil || !strings.Contains(err.Error(), "peer down") {
		t.Fatalf("want fast peer-down rejection, got %v", err)
	}
	// After the probe interval a single probe goes through and revives.
	healthy.Store(true)
	time.Sleep(15 * time.Millisecond)
	if _, err := p.do(ctx, "/x", "text/plain", nil, 0); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if p.down() {
		t.Fatal("peer still down after successful probe")
	}
}

func TestClientSurfacesServerErrorBody(t *testing.T) {
	p := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"theta out of range"}`, http.StatusBadRequest)
	}), time.Hour)
	_, err := p.do(context.Background(), "/x", "text/plain", nil, 0)
	if err == nil || !strings.Contains(err.Error(), "theta out of range") {
		t.Fatalf("want server error text surfaced, got %v", err)
	}
}

// TestMutateNeverHedges is the write-path correctness guard: a slow
// owner must receive a mutation exactly once. The hedged path would
// launch a duplicate when the first attempt outlives hedgeDelay, and a
// duplicate apply double-bumps the owner's shard epoch, corrupting the
// WAL/replication cursor.
func TestMutateNeverHedges(t *testing.T) {
	var calls atomic.Int64
	p := testClient(t, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		time.Sleep(120 * time.Millisecond) // well past hedgeDelay
		w.Write([]byte(`{"ok":true}`))
	}), 10*time.Millisecond)

	data, err := p.doMutate(context.Background(), "/v1/cluster/insert", "application/json", []byte(`{}`), 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"ok":true}` {
		t.Fatalf("body %q", data)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("slow owner saw %d requests, want exactly 1", got)
	}
	if p.hedges.Load() != 0 {
		t.Fatalf("hedges = %d, want 0 for a mutation", p.hedges.Load())
	}
}

// TestMutateNoFastFailRetry: even a fast failure must not be retried by
// this layer — the connection can die after the owner applied the
// write, so a blind re-send risks a duplicate apply.
func TestMutateNoFastFailRetry(t *testing.T) {
	p := &peerClient{
		addr:       "127.0.0.1:1", // nothing listens here
		http:       &http.Client{},
		rpcTimeout: 200 * time.Millisecond,
		hedgeDelay: time.Nanosecond, // would retry instantly on the hedged path
		downAfter:  3,
		probeEvery: time.Hour,
	}
	if _, err := p.doMutate(context.Background(), "/x", "application/json", nil, 0); err == nil {
		t.Fatal("expected error")
	}
	if p.hedges.Load() != 0 {
		t.Fatalf("hedges = %d, want 0 (mutations never retry)", p.hedges.Load())
	}
	if p.rpcs.Load() != 1 {
		t.Fatalf("rpcs = %d, want 1", p.rpcs.Load())
	}
}
