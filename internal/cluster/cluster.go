package cluster

import (
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rankjoin"
	"rankjoin/internal/obs"
)

// Config describes one peer's view of the cluster. All peers must be
// configured with the identical Peers list (order included) — peer
// rank is list position, and both ring placement and SPMD worker
// identity derive from it.
type Config struct {
	// Self is this peer's index into Peers.
	Self int
	// Peers is the ordered list of peer addresses (host:port). A
	// one-element list is a degenerate but valid single-peer cluster.
	Peers []string
	// VirtualNodes per peer on the placement ring. Default 64.
	VirtualNodes int
	// RPCTimeout bounds one serving-plane RPC (search, get, upsert,
	// delete), including its hedge. Default 2s.
	RPCTimeout time.Duration
	// HedgeDelay is how long the first attempt may stay silent before
	// a duplicate is launched. Default 100ms.
	HedgeDelay time.Duration
	// JoinTimeout bounds a whole distributed join, including every
	// shuffle wait. Default 2m.
	JoinTimeout time.Duration
	// DownAfter is the consecutive-failure count that marks a peer
	// down. Default 3.
	DownAfter int
	// ProbeEvery is the half-open probe interval for down peers.
	// Default 1s.
	ProbeEvery time.Duration
	// JoinWorkers is the per-peer flow worker count for distributed
	// joins. Default GOMAXPROCS.
	JoinWorkers int
	// Logger receives cluster events. Default slog.Default().
	Logger *slog.Logger
	// Client overrides the HTTP client for peer RPCs (tests).
	Client *http.Client
}

// Cluster is one peer's runtime: the placement ring, outbound links to
// every other peer, the shuffle inbox, and the distributed-join
// registry. It is created once at process start and shared by the
// serving handlers and the join coordinator.
type Cluster struct {
	cfg    Config
	ring   *Ring
	peers  []*peerClient // index aligned with cfg.Peers; peers[Self] is nil
	inbox  *inbox
	logger *slog.Logger

	jobs jobTable

	// partials counts scatter-gather responses served degraded because
	// at least one peer failed.
	partials atomic.Int64
	// framesSent / bytesSent count outbound shuffle frames.
	framesSent atomic.Int64
	bytesSent  atomic.Int64
}

// New validates cfg, applies defaults, and builds the peer runtime.
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("cluster: empty peer list")
	}
	if cfg.Self < 0 || cfg.Self >= len(cfg.Peers) {
		return nil, fmt.Errorf("cluster: self index %d outside peer list of %d", cfg.Self, len(cfg.Peers))
	}
	seen := make(map[string]int, len(cfg.Peers))
	for i, addr := range cfg.Peers {
		if addr == "" {
			return nil, fmt.Errorf("cluster: peer %d has empty address", i)
		}
		if j, dup := seen[addr]; dup {
			return nil, fmt.Errorf("cluster: peers %d and %d share address %s", j, i, addr)
		}
		seen[addr] = i
	}
	if cfg.VirtualNodes == 0 {
		cfg.VirtualNodes = 64
	}
	if cfg.RPCTimeout == 0 {
		cfg.RPCTimeout = 2 * time.Second
	}
	if cfg.HedgeDelay == 0 {
		cfg.HedgeDelay = 100 * time.Millisecond
	}
	if cfg.JoinTimeout == 0 {
		cfg.JoinTimeout = 2 * time.Minute
	}
	if cfg.DownAfter == 0 {
		cfg.DownAfter = 3
	}
	if cfg.ProbeEvery == 0 {
		cfg.ProbeEvery = time.Second
	}
	if cfg.JoinWorkers == 0 {
		cfg.JoinWorkers = runtime.GOMAXPROCS(0)
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	httpc := cfg.Client
	if httpc == nil {
		httpc = defaultHTTPClient()
	}
	ring, err := NewRing(len(cfg.Peers), cfg.VirtualNodes)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:    cfg,
		ring:   ring,
		peers:  make([]*peerClient, len(cfg.Peers)),
		inbox:  newInbox(),
		logger: cfg.Logger,
	}
	c.jobs.m = make(map[string]*jobEntry)
	for i, addr := range cfg.Peers {
		if i == cfg.Self {
			continue
		}
		c.peers[i] = &peerClient{
			addr:       addr,
			http:       httpc,
			rpcTimeout: cfg.RPCTimeout,
			hedgeDelay: cfg.HedgeDelay,
			downAfter:  int64(cfg.DownAfter),
			probeEvery: cfg.ProbeEvery,
		}
	}
	return c, nil
}

// Self returns this peer's rank.
func (c *Cluster) Self() int { return c.cfg.Self }

// Size returns the number of peers.
func (c *Cluster) Size() int { return len(c.cfg.Peers) }

// Addr returns peer p's address.
func (c *Cluster) Addr(p int) string { return c.cfg.Peers[p] }

// Owner returns the peer that owns ranking id on the placement ring.
func (c *Cluster) Owner(id int64) int { return c.ring.Owner(id) }

// peer returns the outbound link to p; p must not be Self.
func (c *Cluster) peer(p int) *peerClient { return c.peers[p] }

// Status is the cluster section of /statusz.
type Status struct {
	Self       int          `json:"self"`
	Peers      []PeerStatus `json:"peers"`
	InboxDepth int          `json:"inbox_depth"`
	Joins      int64        `json:"joins_started"`
	Partials   int64        `json:"partial_responses"`
	FramesSent int64        `json:"shuffle_frames_sent"`
	BytesSent  int64        `json:"shuffle_bytes_sent"`
}

// StatusSnapshot assembles the current cluster view.
func (c *Cluster) StatusSnapshot() Status {
	st := Status{
		Self:       c.cfg.Self,
		Peers:      make([]PeerStatus, len(c.peers)),
		InboxDepth: c.inbox.depth(),
		Joins:      c.jobs.started.Load(),
		Partials:   c.partials.Load(),
		FramesSent: c.framesSent.Load(),
		BytesSent:  c.bytesSent.Load(),
	}
	for i, p := range c.peers {
		if p == nil {
			st.Peers[i] = PeerStatus{Addr: c.cfg.Peers[i], Self: true}
			continue
		}
		snap := p.latency.Snapshot()
		var lastErr string
		if m := p.lastErr.Load(); m != nil {
			lastErr = *m
		}
		st.Peers[i] = PeerStatus{
			Addr:      c.cfg.Peers[i],
			RPCs:      p.rpcs.Load(),
			Errors:    p.errors.Load(),
			Hedges:    p.hedges.Load(),
			P50us:     snap.Quantile(0.5),
			P99us:     snap.Quantile(0.99),
			Down:      p.down(),
			Fails:     p.fails.Load(),
			LastError: lastErr,
		}
	}
	return st
}

// PeerLatencySnapshots returns per-peer RPC latency histograms
// (microseconds), index-aligned with the peer list; the self entry is
// a zero snapshot. Used by the /metrics exposition.
func (c *Cluster) PeerLatencySnapshots() []obs.HistogramSnapshot {
	out := make([]obs.HistogramSnapshot, len(c.peers))
	for i, p := range c.peers {
		if p != nil {
			out[i] = p.latency.Snapshot()
		}
	}
	return out
}

// jobTable tracks distributed-join jobs on this peer. A job enters the
// table when its worker starts (locally via DistributedJoin, or via a
// /v1/cluster/join RPC from a coordinator) and stays as a completed
// entry for a while afterwards, so a hedged duplicate join-start
// returns the memoized outcome instead of running the join twice.
type jobTable struct {
	mu      sync.Mutex
	m       map[string]*jobEntry
	order   []string // completed jobs in finish order, oldest first
	started atomic.Int64
}

// keepCompletedJobs bounds the memoized-outcome window.
const keepCompletedJobs = 128

type jobEntry struct {
	done chan struct{}
	res  *rankjoin.Result // valid after done closes
	err  error            // valid after done closes
}

// begin registers job and reports whether this call owns it. When the
// job already exists (hedged duplicate), the existing entry is
// returned with owns=false and the caller should wait on entry.done.
func (t *jobTable) begin(job string) (entry *jobEntry, owns bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if e, ok := t.m[job]; ok {
		return e, false
	}
	e := &jobEntry{done: make(chan struct{})}
	t.m[job] = e
	t.started.Add(1)
	return e, true
}

// finish records the job outcome and evicts the oldest completed
// entries past the retention bound.
func (t *jobTable) finish(job string, res *rankjoin.Result, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e, ok := t.m[job]
	if !ok {
		return
	}
	e.res, e.err = res, err
	close(e.done)
	t.order = append(t.order, job)
	for len(t.order) > keepCompletedJobs {
		delete(t.m, t.order[0])
		t.order = t.order[1:]
	}
}
