package cluster

import "testing"

func TestRingValidation(t *testing.T) {
	if _, err := NewRing(0, 64); err == nil {
		t.Fatal("zero peers accepted")
	}
	if _, err := NewRing(3, 0); err == nil {
		t.Fatal("zero vnodes accepted")
	}
}

func TestRingDeterministicAndInRange(t *testing.T) {
	a, err := NewRing(5, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewRing(5, 64)
	for id := int64(-500); id < 500; id++ {
		p := a.Owner(id)
		if p < 0 || p >= 5 {
			t.Fatalf("id %d owned by out-of-range peer %d", id, p)
		}
		if q := b.Owner(id); q != p {
			t.Fatalf("id %d: rings disagree (%d vs %d)", id, p, q)
		}
	}
}

func TestRingBalance(t *testing.T) {
	const peers, ids = 4, 20000
	r, err := NewRing(peers, 64)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, peers)
	for id := int64(0); id < ids; id++ {
		counts[r.Owner(id)]++
	}
	// 64 vnodes keeps shares within a loose 2x band of fair.
	fair := ids / peers
	for p, n := range counts {
		if n < fair/2 || n > fair*2 {
			t.Fatalf("peer %d owns %d of %d ids (fair %d): unbalanced %v", p, n, ids, fair, counts)
		}
	}
}

func TestRingSinglePeerOwnsAll(t *testing.T) {
	r, err := NewRing(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	for id := int64(0); id < 100; id++ {
		if r.Owner(id) != 0 {
			t.Fatalf("single-peer ring gave id %d to peer %d", id, r.Owner(id))
		}
	}
}
