package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"rankjoin/internal/obs"
)

// ErrPeerDown is returned (wrapped) for RPCs against a peer that has
// exceeded the consecutive-failure threshold and is not yet due for a
// half-open probe. Scatter paths treat it like any other peer failure:
// the response degrades to partial instead of stalling on a dead peer's
// timeout.
var ErrPeerDown = errors.New("peer down")

// ErrMalformed wraps decode failures of inbound cluster payloads
// (shuffle frames, join starts) so the HTTP layer can map them to
// 400 rather than blaming the server.
var ErrMalformed = errors.New("malformed cluster payload")

// peerClient is the outbound side of one peer link: per-RPC deadlines,
// one hedged retry, passive health tracking with half-open probes, and
// the per-peer telemetry the tentpole metrics series are built from.
type peerClient struct {
	addr       string
	http       *http.Client
	rpcTimeout time.Duration
	hedgeDelay time.Duration
	downAfter  int64
	probeEvery time.Duration

	rpcs    atomic.Int64
	errors  atomic.Int64
	hedges  atomic.Int64
	latency obs.Histogram // microseconds

	fails     atomic.Int64 // consecutive failures
	lastProbe atomic.Int64 // unix nanos of the last half-open probe
	lastErr   atomic.Pointer[string]
}

// down reports whether the peer is past the failure threshold.
func (p *peerClient) down() bool { return p.fails.Load() >= p.downAfter }

// admit decides whether an RPC may go out. Healthy peers always pass;
// a down peer admits one probe per probeEvery window (half-open) and
// rejects the rest immediately.
func (p *peerClient) admit() bool {
	if !p.down() {
		return true
	}
	now := time.Now().UnixNano()
	last := p.lastProbe.Load()
	if now-last >= int64(p.probeEvery) && p.lastProbe.CompareAndSwap(last, now) {
		return true
	}
	return false
}

func (p *peerClient) markSuccess() { p.fails.Store(0) }

func (p *peerClient) markFailure(err error) {
	p.fails.Add(1)
	msg := err.Error()
	p.lastErr.Store(&msg)
}

// do posts body to path on this peer with at most one hedged retry:
// the duplicate launches when the first attempt has neither answered
// nor failed within hedgeDelay (tail-latency hedge), or immediately
// when it failed fast (connection refused); the first success wins.
// Callers whose requests reach do() twice must be idempotent — true of
// read-only search/get and inbox-deduplicated shuffle frames, and NOT
// of upsert/delete (a duplicate apply double-bumps the owner's shard
// epoch, corrupting the WAL/replication cursor): mutations go through
// doMutate.
func (p *peerClient) do(ctx context.Context, path string, contentType string, body []byte, timeout time.Duration) ([]byte, error) {
	return p.doHedged(ctx, path, contentType, body, timeout, true)
}

// doMutate is the non-idempotent variant: exactly one attempt, no
// tail-latency hedge and no fast-failure retry, because a duplicated
// (or ambiguously failed-then-retried) write can apply twice on the
// owner. Retry policy for mutations belongs to the caller, who knows
// the request is an upsert/delete and can re-issue it as a fresh
// intent; this layer must never duplicate one on its own.
func (p *peerClient) doMutate(ctx context.Context, path string, contentType string, body []byte, timeout time.Duration) ([]byte, error) {
	if !p.admit() {
		p.errors.Add(1)
		return nil, fmt.Errorf("cluster: peer %s: %w (last: %s)", p.addr, ErrPeerDown, p.lastError())
	}
	if timeout <= 0 {
		timeout = p.rpcTimeout
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	start := time.Now()
	p.rpcs.Add(1)
	data, err := p.once(ctx, path, contentType, body)
	p.latency.Observe(time.Since(start).Microseconds())
	if err != nil {
		p.errors.Add(1)
		p.markFailure(err)
		return nil, err
	}
	p.markSuccess()
	return data, nil
}

// doSlow is do without the tail-latency hedge, for RPCs that are
// expected to outlive the hedge delay by design (join starts run the
// entire join before acking — a timer-triggered duplicate would just
// re-ship the dataset). Fast failures still retry once.
func (p *peerClient) doSlow(ctx context.Context, path string, contentType string, body []byte, timeout time.Duration) ([]byte, error) {
	return p.doHedged(ctx, path, contentType, body, timeout, false)
}

func (p *peerClient) doHedged(ctx context.Context, path string, contentType string, body []byte, timeout time.Duration, hedgeOnTimer bool) ([]byte, error) {
	if !p.admit() {
		p.errors.Add(1)
		return nil, fmt.Errorf("cluster: peer %s: %w (last: %s)", p.addr, ErrPeerDown, p.lastError())
	}
	if timeout <= 0 {
		timeout = p.rpcTimeout
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	start := time.Now()
	p.rpcs.Add(1)
	type result struct {
		data []byte
		err  error
	}
	ch := make(chan result, 2)
	attempt := func() {
		data, err := p.once(ctx, path, contentType, body)
		ch <- result{data, err}
	}
	go attempt()

	hedge := time.NewTimer(p.hedgeDelay)
	defer hedge.Stop()
	outstanding, hedged := 1, false
	var firstErr error
	for {
		select {
		case r := <-ch:
			outstanding--
			if r.err == nil {
				p.markSuccess()
				p.latency.Observe(time.Since(start).Microseconds())
				return r.data, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if !hedged {
				// Fast failure before the hedge timer: retry immediately.
				hedged = true
				outstanding++
				p.hedges.Add(1)
				go attempt()
				continue
			}
			if outstanding == 0 {
				p.errors.Add(1)
				p.markFailure(firstErr)
				p.latency.Observe(time.Since(start).Microseconds())
				return nil, firstErr
			}
		case <-hedge.C:
			if hedgeOnTimer && !hedged {
				hedged = true
				outstanding++
				p.hedges.Add(1)
				go attempt()
			}
		case <-ctx.Done():
			p.errors.Add(1)
			err := fmt.Errorf("cluster: peer %s %s: %w", p.addr, path, ctx.Err())
			p.markFailure(err)
			p.latency.Observe(time.Since(start).Microseconds())
			return nil, err
		}
	}
}

// once runs a single HTTP attempt.
func (p *peerClient) once(ctx context.Context, path, contentType string, body []byte) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+p.addr+path, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("cluster: build request for %s%s: %w", p.addr, path, err)
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := p.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: peer %s %s: %w", p.addr, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("cluster: peer %s %s: read response: %w", p.addr, path, err)
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return nil, fmt.Errorf("cluster: peer %s %s: %s (status %d)", p.addr, path, e.Error, resp.StatusCode)
		}
		return nil, fmt.Errorf("cluster: peer %s %s: status %d", p.addr, path, resp.StatusCode)
	}
	return data, nil
}

func (p *peerClient) lastError() string {
	if msg := p.lastErr.Load(); msg != nil {
		return *msg
	}
	return "none"
}

// postJSON marshals req, posts it (hedged), and unmarshals the
// response. Idempotent RPCs only.
func postJSON[Req, Resp any](ctx context.Context, p *peerClient, path string, req Req, timeout time.Duration) (Resp, error) {
	return postJSONWith[Req, Resp](ctx, p, p.do, path, req, timeout)
}

// postJSONMutate is postJSON over doMutate: exactly one attempt, for
// the non-idempotent write RPCs.
func postJSONMutate[Req, Resp any](ctx context.Context, p *peerClient, path string, req Req, timeout time.Duration) (Resp, error) {
	return postJSONWith[Req, Resp](ctx, p, p.doMutate, path, req, timeout)
}

func postJSONWith[Req, Resp any](ctx context.Context, p *peerClient,
	send func(context.Context, string, string, []byte, time.Duration) ([]byte, error),
	path string, req Req, timeout time.Duration) (Resp, error) {
	var resp Resp
	body, err := json.Marshal(req)
	if err != nil {
		return resp, fmt.Errorf("cluster: marshal %s request: %w", path, err)
	}
	data, err := send(ctx, path, "application/json", body, timeout)
	if err != nil {
		return resp, err
	}
	if err := json.Unmarshal(data, &resp); err != nil {
		return resp, fmt.Errorf("cluster: peer %s %s: parse response: %w", p.addr, path, err)
	}
	return resp, nil
}

// defaultHTTPClient builds the shared transport for peer links:
// persistent connections with a generous idle pool, since shuffle
// all-to-alls hit every peer at once from many goroutines.
func defaultHTTPClient() *http.Client {
	return &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        64,
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     90 * time.Second,
		},
	}
}

// PeerStatus is one peer's health and telemetry snapshot, surfaced
// through /statusz and /metrics.
type PeerStatus struct {
	Addr      string `json:"addr"`
	Self      bool   `json:"self"`
	RPCs      int64  `json:"rpcs"`
	Errors    int64  `json:"errors"`
	Hedges    int64  `json:"hedges"`
	P50us     int64  `json:"p50_us"`
	P99us     int64  `json:"p99_us"`
	Down      bool   `json:"down"`
	Fails     int64  `json:"consecutive_failures"`
	LastError string `json:"last_error,omitempty"`
}
