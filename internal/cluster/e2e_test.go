package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"rankjoin"
	"rankjoin/internal/check"
	"rankjoin/internal/cluster/clustertest"
	"rankjoin/internal/rankings"
	"rankjoin/internal/shard"
	"rankjoin/internal/testutil"
)

func postJSON(t *testing.T, url string, body any, out any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("POST %s: parse %q: %v", url, data, err)
		}
	}
	return resp
}

type searchResp struct {
	Hits        []shard.Neighbor `json:"hits"`
	Cached      bool             `json:"cached"`
	Partial     bool             `json:"partial"`
	PeersFailed []string         `json:"peers_failed"`
}

// bruteHits is the single-node oracle for a clustered search.
func bruteHits(rs []*rankings.Ranking, q *rankings.Ranking, maxDist int, exclude int64, knn int) []shard.Neighbor {
	var hits []shard.Neighbor
	for _, r := range rs {
		if r.ID == exclude {
			continue
		}
		d := rankings.Footrule(q, r)
		if knn <= 0 && d > maxDist {
			continue
		}
		hits = append(hits, shard.Neighbor{ID: r.ID, Dist: d})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Dist != hits[j].Dist {
			return hits[i].Dist < hits[j].Dist
		}
		return hits[i].ID < hits[j].ID
	})
	if knn > 0 && len(hits) > knn {
		hits = hits[:knn]
	}
	return hits
}

func TestClusterScatterGatherMatchesOracle(t *testing.T) {
	f, err := clustertest.Boot(3, clustertest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	rng := rand.New(rand.NewSource(7))
	const k = 7
	rs := testutil.RandDataset(rng, 60, k, 40)
	if err := f.Load(rs); err != nil {
		t.Fatal(err)
	}
	// Placement actually sharded the data: no peer holds everything.
	for i, p := range f.Peers {
		if n := p.Index.Len(); n == 0 || n == len(rs) {
			t.Fatalf("peer %d holds %d of %d rankings; placement did not shard", i, n, len(rs))
		}
	}

	theta := 0.35
	maxDist := rankings.Threshold(theta, k)
	for _, q := range rs[:10] {
		want := bruteHits(rs, q, maxDist, q.ID, 0)
		// Every peer must give the identical full answer, id-form
		// queries included — even for ids the receiving peer doesn't own.
		for i := range f.Peers {
			var got searchResp
			postJSON(t, f.URL(i)+"/v1/search", map[string]any{"id": q.ID, "theta": theta}, &got)
			if got.Partial {
				t.Fatalf("peer %d: unexpected partial answer", i)
			}
			if !reflect.DeepEqual(nonNil(got.Hits), nonNil(want)) {
				t.Fatalf("peer %d query %d: got %v want %v", i, q.ID, got.Hits, want)
			}
		}
	}

	// kNN: global top-n, not per-peer top-n.
	for _, q := range rs[:5] {
		want := bruteHits(rs, q, 0, q.ID, 8)
		var got searchResp
		postJSON(t, f.URL(1)+"/v1/knn", map[string]any{"id": q.ID, "k": 8}, &got)
		if !reflect.DeepEqual(nonNil(got.Hits), nonNil(want)) {
			t.Fatalf("knn query %d: got %v want %v", q.ID, got.Hits, want)
		}
	}
}

func nonNil(ns []shard.Neighbor) []shard.Neighbor {
	if ns == nil {
		return []shard.Neighbor{}
	}
	return ns
}

func TestClusterInsertDeleteRouting(t *testing.T) {
	f, err := clustertest.Boot(3, clustertest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	rankingsJSON := make([]map[string]any, 30)
	for i := range rankingsJSON {
		rankingsJSON[i] = map[string]any{"id": i + 1, "items": []int{i + 1, i + 2, i + 3, i + 4, i + 5}}
	}
	var ins struct {
		Inserted int `json:"inserted"`
	}
	postJSON(t, f.URL(0)+"/v1/insert", map[string]any{"rankings": rankingsJSON}, &ins)
	if ins.Inserted != 30 {
		t.Fatalf("inserted %d, want 30", ins.Inserted)
	}
	total := 0
	ring := f.Peers[0].Cluster
	for id := int64(1); id <= 30; id++ {
		owner := ring.Owner(id)
		if _, ok := f.Peers[owner].Index.Get(id); !ok {
			t.Fatalf("id %d not on its owner peer %d", id, owner)
		}
		for i := range f.Peers {
			if i == owner {
				continue
			}
			if _, ok := f.Peers[i].Index.Get(id); ok {
				t.Fatalf("id %d replicated onto non-owner peer %d", id, i)
			}
		}
	}
	for _, p := range f.Peers {
		total += p.Index.Len()
	}
	if total != 30 {
		t.Fatalf("cluster holds %d rankings, want 30", total)
	}

	ids := make([]int64, 30)
	for i := range ids {
		ids[i] = int64(i + 1)
	}
	var del struct {
		Deleted int `json:"deleted"`
	}
	postJSON(t, f.URL(2)+"/v1/delete", map[string]any{"ids": ids}, &del)
	if del.Deleted != 30 {
		t.Fatalf("deleted %d, want 30", del.Deleted)
	}
	for _, p := range f.Peers {
		if p.Index.Len() != 0 {
			t.Fatalf("peer still holds %d rankings after delete", p.Index.Len())
		}
	}
}

func TestClusterPartialDegradationOnPeerKill(t *testing.T) {
	f, err := clustertest.Boot(3, clustertest.Options{
		RPCTimeout: 500 * time.Millisecond,
		HedgeDelay: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	rng := rand.New(rand.NewSource(11))
	rs := testutil.RandDataset(rng, 45, 6, 30)
	if err := f.Load(rs); err != nil {
		t.Fatal(err)
	}

	f.Kill(2)

	var got searchResp
	postJSON(t, f.URL(0)+"/v1/search",
		map[string]any{"items": rs[0].Items, "theta": 0.4}, &got)
	if !got.Partial {
		t.Fatal("answer not marked partial after peer kill")
	}
	if len(got.PeersFailed) != 1 || got.PeersFailed[0] != f.Addrs[2] {
		t.Fatalf("peers_failed = %v, want [%s]", got.PeersFailed, f.Addrs[2])
	}
	// Surviving shards still answered. The items-form query has no
	// self-exclusion, so rs[0] itself may appear at distance 0.
	wantLive := bruteHitsOwnedBy(f, rs, rs[0], rankings.Threshold(0.4, 6), shard.NoExclude, []int{0, 1})
	if !reflect.DeepEqual(nonNil(got.Hits), nonNil(wantLive)) {
		t.Fatalf("partial hits %v, want surviving-shard hits %v", got.Hits, wantLive)
	}

	// The failure shows up in telemetry: a hedge (fast-fail retry) and
	// a partial-response count on the serving peer.
	metrics := getBody(t, f.URL(0)+"/metrics")
	for _, want := range []string{
		"rankserved_cluster_partial_responses_total 1",
		`rankserved_peer_rpc_hedges_total{peer="` + f.Addrs[2] + `"} 1`,
		`rankserved_peer_rpc_errors_total{peer="` + f.Addrs[2] + `"} 1`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	var st struct {
		Cluster struct {
			Partials int64 `json:"partial_responses"`
		} `json:"cluster"`
	}
	if err := json.Unmarshal([]byte(getBody(t, f.URL(0)+"/statusz")), &st); err != nil {
		t.Fatal(err)
	}
	if st.Cluster.Partials != 1 {
		t.Fatalf("statusz partial_responses = %d, want 1", st.Cluster.Partials)
	}
}

// bruteHitsOwnedBy is bruteHits restricted to rankings owned by the
// given live peers.
func bruteHitsOwnedBy(f *clustertest.Fleet, rs []*rankings.Ranking, q *rankings.Ranking, maxDist int, exclude int64, live []int) []shard.Neighbor {
	ring := f.Peers[0].Cluster
	alive := make(map[int]bool, len(live))
	for _, p := range live {
		alive[p] = true
	}
	var kept []*rankings.Ranking
	for _, r := range rs {
		if alive[ring.Owner(r.ID)] {
			kept = append(kept, r)
		}
	}
	return bruteHits(kept, q, maxDist, exclude, 0)
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestDistributedJoinIdenticalOn50Seeds is the acceptance gate for the
// batch plane: across 50 generated rankcheck trials, a join executed
// over the wire by a 3-peer cluster must return byte-identical pairs
// to single-node execution, cycling through all eight algorithms. The
// fleet is booted once — join jobs carry their own dataset and never
// touch the serving indexes.
func TestDistributedJoinIdenticalOn50Seeds(t *testing.T) {
	if testing.Short() {
		t.Skip("50-seed wire identity sweep is not a -short test")
	}
	f, err := clustertest.Boot(3, clustertest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	algos := []rankjoin.Algorithm{
		rankjoin.AlgBruteForce, rankjoin.AlgVJ, rankjoin.AlgVJNL,
		rankjoin.AlgCL, rankjoin.AlgCLP, rankjoin.AlgVSMART,
		rankjoin.AlgClusterJoin, rankjoin.AlgFSJoin,
	}
	for seed := int64(1); seed <= 50; seed++ {
		p, rs := check.Generate(seed)
		opts := rankjoin.Options{
			Algorithm:  algos[int(seed)%len(algos)],
			Theta:      p.Theta,
			ThetaC:     p.ThetaC,
			Delta:      p.Delta,
			Partitions: p.Partitions,
		}
		want, err := rankjoin.NewEngine(rankjoin.EngineConfig{Workers: 2}).Join(rs, opts)
		if err != nil {
			t.Fatalf("seed %d: single-node join: %v", seed, err)
		}
		got, err := f.Peers[0].Cluster.DistributedJoin(context.Background(), rs, opts)
		if err != nil {
			t.Fatalf("seed %d (%s): distributed join: %v", seed, opts.Algorithm, err)
		}
		if !reflect.DeepEqual(got.Pairs, want.Pairs) {
			t.Fatalf("seed %d (%s): distributed %d pairs != single-node %d pairs\n%s",
				seed, opts.Algorithm, len(got.Pairs), len(want.Pairs),
				fmt.Sprintf("got %v\nwant %v", clip(got.Pairs), clip(want.Pairs)))
		}
	}
}

func clip(ps []rankings.Pair) []rankings.Pair {
	if len(ps) > 12 {
		return ps[:12]
	}
	return ps
}

// TestClusterCrashRecoveryDrill is the fleet-level durability drill: a
// durable peer is crashed (SIGKILL semantics — user-space WAL buffers
// discarded) in the middle of write churn, rebooted on the same
// address, and must come back holding every write the cluster
// acknowledged, with scatter-gather answers whole again.
func TestClusterCrashRecoveryDrill(t *testing.T) {
	fleet, err := clustertest.Boot(3, clustertest.Options{
		Shards:     2,
		WALRoot:    t.TempDir(),
		FsyncEvery: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	rng := rand.New(rand.NewSource(77))
	acked := make(map[int64][]rankings.Item)
	insert := func(rs []*rankings.Ranking) bool {
		body := map[string]any{"rankings": wireRankings(rs)}
		var out map[string]any
		resp := postJSON(t, fleet.URL(0)+"/v1/insert", body, &out)
		if resp.StatusCode != http.StatusOK {
			return false
		}
		for _, r := range rs {
			acked[r.ID] = r.Items
		}
		return true
	}

	if !insert(testutil.RandDataset(rng, 60, 5, 200)) {
		t.Fatal("seed insert failed")
	}

	// Churn in batches; crash the victim partway through. Batches that
	// land while the victim is down fail (its owners are unreachable) —
	// those are not acked and carry no durability promise.
	const victim = 2
	for batch := 0; batch < 8; batch++ {
		if batch == 3 {
			fleet.KillHard(victim)
		}
		rs := make([]*rankings.Ranking, 10)
		for i := range rs {
			rs[i] = testutil.RandRanking(rng, int64(1000+batch*10+i), 5, 200)
		}
		insert(rs)
	}
	if err := fleet.Restart(victim); err != nil {
		t.Fatal(err)
	}

	// Every acknowledged write must be somewhere in the fleet — owners
	// recovered theirs from snapshot+WAL.
	for id, items := range acked {
		owner := fleet.Peers[0].Cluster.Owner(id)
		r, ok := fleet.Peers[owner].Index.Get(id)
		if !ok {
			t.Fatalf("acked id %d lost after crash+restart (owner %d)", id, owner)
		}
		for j := range items {
			if r.Items[j] != items[j] {
				t.Fatalf("acked id %d corrupted after recovery", id)
			}
		}
	}

	// And the serving plane is whole again: a scatter query answers
	// non-partially and matches the oracle.
	var all []*rankings.Ranking
	for id, items := range acked {
		all = append(all, rankings.MustNew(id, items))
	}
	q := all[0]
	var sr searchResp
	postJSON(t, fleet.URL(1)+"/v1/search", map[string]any{"items": q.Items, "theta": 0.4}, &sr)
	if sr.Partial {
		t.Fatalf("post-recovery scatter still partial: failed peers %v", sr.PeersFailed)
	}
	want := bruteHits(all, q, rankings.Threshold(0.4, q.K()), -1, 0)
	if !reflect.DeepEqual(sr.Hits, want) {
		t.Fatalf("post-recovery hits = %v, want %v", sr.Hits, want)
	}
}

func wireRankings(rs []*rankings.Ranking) []map[string]any {
	out := make([]map[string]any, len(rs))
	for i, r := range rs {
		out[i] = map[string]any{"id": r.ID, "items": r.Items}
	}
	return out
}
