package cluster

import (
	"bytes"
	"context"
	"testing"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	cases := []frame{
		{Job: "j0-1", Collective: 7, Src: 2, Payload: []byte("hello")},
		{Job: "j3-99", Collective: -1, Src: 0, Payload: nil},
		{Job: "", Collective: 0, Src: 15, Payload: bytes.Repeat([]byte{0xAB}, 1<<16)},
	}
	for _, want := range cases {
		got, err := decodeFrame(encodeFrame(want))
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		if got.Job != want.Job || got.Collective != want.Collective || got.Src != want.Src || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
	}
}

func TestFrameDecodeRejectsCorrupt(t *testing.T) {
	good := encodeFrame(frame{Job: "j", Collective: 1, Src: 0, Payload: []byte("x")})
	cases := map[string][]byte{
		"empty":            nil,
		"bad magic":        append([]byte("NOPE"), good[4:]...),
		"truncated":        good[:len(good)-1],
		"trailing garbage": append(append([]byte{}, good...), 0xFF),
		"giant job length": append(append([]byte{}, frameMagic[:]...), 0xFF, 0xFF, 0xFF, 0x7F),
	}
	for name, body := range cases {
		if _, err := decodeFrame(body); err == nil {
			t.Errorf("%s: decode accepted corrupt frame", name)
		}
	}
}

func TestInboxDeliveryAndDedup(t *testing.T) {
	ib := newInbox()
	f := frame{Job: "j", Collective: 1, Src: 2, Payload: []byte("first")}
	if !ib.put(f) {
		t.Fatal("first put dropped")
	}
	dup := f
	dup.Payload = []byte("second")
	if ib.put(dup) {
		t.Fatal("duplicate put accepted")
	}
	got, err := ib.wait(context.Background(), inboxKey{job: "j", collective: 1, src: 2})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "first" {
		t.Fatalf("keep-first violated: got %q", got)
	}
}

func TestInboxWaitBeforePut(t *testing.T) {
	ib := newInbox()
	done := make(chan []byte, 1)
	go func() {
		p, err := ib.wait(context.Background(), inboxKey{job: "j", collective: 3, src: 1})
		if err != nil {
			done <- nil
			return
		}
		done <- p
	}()
	time.Sleep(10 * time.Millisecond)
	ib.put(frame{Job: "j", Collective: 3, Src: 1, Payload: []byte("late")})
	if string(<-done) != "late" {
		t.Fatal("waiter did not receive frame put after wait started")
	}
}

func TestInboxWaitHonorsContext(t *testing.T) {
	ib := newInbox()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := ib.wait(ctx, inboxKey{job: "never", collective: 1, src: 0}); err == nil {
		t.Fatal("wait returned without a frame")
	}
}

func TestInboxFinishJobTombstones(t *testing.T) {
	ib := newInbox()
	ib.put(frame{Job: "j", Collective: 1, Src: 0, Payload: []byte("x")})
	ib.finishJob("j")
	if ib.depth() != 0 {
		t.Fatalf("finished job left %d slots", ib.depth())
	}
	if ib.put(frame{Job: "j", Collective: 2, Src: 0, Payload: []byte("straggler")}) {
		t.Fatal("straggler frame accepted after finishJob")
	}
	if !ib.put(frame{Job: "other", Collective: 1, Src: 0, Payload: []byte("y")}) {
		t.Fatal("unrelated job rejected")
	}
}
