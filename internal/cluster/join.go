package cluster

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"

	"rankjoin"
	"rankjoin/internal/flow"
	"rankjoin/internal/rankings"
)

// The batch plane. A distributed join is SPMD: the coordinator (the
// peer that received /v1/join) ships the full input dataset and the
// join options to every other peer, then all peers — coordinator
// included — run the identical rankjoin.Engine.Join with a
// wireExchange plugged in as the flow.Exchanger. Each flow shuffle
// becomes an all-to-all of binary frames over the peer links; each
// action becomes an all-gather; every peer finishes holding the
// byte-identical Result, and the coordinator answers with its own
// copy.

// joinSeq mints locally unique join sequence numbers; the job id is
// "j<coordinator>-<seq>", unique cluster-wide because the coordinator
// rank is embedded.
var joinSeq atomic.Int64

// joinHeader is the JSON head of a join-start payload; the gob-encoded
// dataset follows it.
type joinHeader struct {
	Job  string           `json:"job"`
	Opts rankjoin.Options `json:"opts"`
}

// encodeJoinStart builds the join-start body: uvarint header length,
// JSON header, gob dataset (using the Ranking wire codec, so indexed
// state survives the trip).
func encodeJoinStart(job string, opts rankjoin.Options, rs []*rankings.Ranking) ([]byte, error) {
	hdr, err := json.Marshal(joinHeader{Job: job, Opts: opts})
	if err != nil {
		return nil, fmt.Errorf("cluster: marshal join header: %w", err)
	}
	var data bytes.Buffer
	if err := gob.NewEncoder(&data).Encode(rs); err != nil {
		return nil, fmt.Errorf("cluster: encode join dataset: %w", err)
	}
	buf := make([]byte, 0, binary.MaxVarintLen64+len(hdr)+data.Len())
	buf = binary.AppendUvarint(buf, uint64(len(hdr)))
	buf = append(buf, hdr...)
	buf = append(buf, data.Bytes()...)
	return buf, nil
}

// decodeJoinStart parses a join-start body.
func decodeJoinStart(body []byte) (joinHeader, []*rankings.Ranking, error) {
	var hdr joinHeader
	hdrLen, n := binary.Uvarint(body)
	if n <= 0 || hdrLen > uint64(len(body)-n) {
		return hdr, nil, fmt.Errorf("cluster: join-start header length out of bounds")
	}
	if err := json.Unmarshal(body[n:n+int(hdrLen)], &hdr); err != nil {
		return hdr, nil, fmt.Errorf("cluster: parse join header: %w", err)
	}
	if hdr.Job == "" {
		return hdr, nil, fmt.Errorf("cluster: join-start with empty job id")
	}
	var rs []*rankings.Ranking
	if err := gob.NewDecoder(bytes.NewReader(body[n+int(hdrLen):])).Decode(&rs); err != nil {
		return hdr, nil, fmt.Errorf("cluster: decode join dataset: %w", err)
	}
	return hdr, rs, nil
}

// wireExchange is the HTTP-backed flow.Exchanger for one join job.
// Alltoall posts one frame per remote peer and blocks on the inbox
// until every remote frame for (job, collective) has arrived. The ctx
// carries the job deadline, so a dead peer fails the join instead of
// hanging it.
type wireExchange struct {
	c   *Cluster
	job string
	ctx context.Context
}

func (e *wireExchange) World() (self, size int) { return e.c.cfg.Self, e.c.Size() }

func (e *wireExchange) Alltoall(id int64, outbound [][]byte) ([][]byte, error) {
	c, self, size := e.c, e.c.cfg.Self, e.c.Size()
	if len(outbound) != size {
		return nil, fmt.Errorf("cluster: alltoall with %d frames for world of %d", len(outbound), size)
	}
	sendErrs := make([]error, size)
	var wg sync.WaitGroup
	for dst := 0; dst < size; dst++ {
		if dst == self {
			continue
		}
		wg.Add(1)
		go func(dst int) {
			defer wg.Done()
			body := encodeFrame(frame{Job: e.job, Collective: id, Src: self, Payload: outbound[dst]})
			_, err := c.peer(dst).do(e.ctx, PathShuffle, "application/octet-stream", body, 0)
			if err == nil {
				c.framesSent.Add(1)
				c.bytesSent.Add(int64(len(body)))
			}
			sendErrs[dst] = err
		}(dst)
	}

	inbound := make([][]byte, size)
	inbound[self] = outbound[self]
	var waitErr error
	for src := 0; src < size; src++ {
		if src == self {
			continue
		}
		payload, err := c.inbox.wait(e.ctx, inboxKey{job: e.job, collective: id, src: src})
		if err != nil {
			waitErr = err
			break
		}
		inbound[src] = payload
	}
	wg.Wait()
	for dst, err := range sendErrs {
		if err != nil {
			return nil, fmt.Errorf("cluster: job %s collective %d: send to peer %d: %w", e.job, id, dst, err)
		}
	}
	if waitErr != nil {
		return nil, waitErr
	}
	return inbound, nil
}

var _ flow.Exchanger = (*wireExchange)(nil)

// DistributedJoin runs a similarity join across the whole cluster and
// returns the coordinator's copy of the identical result every peer
// computes. It ships the dataset to all peers, then participates as a
// worker itself; its own worker can only complete once every peer has
// progressed through every collective, so success implies cluster-wide
// agreement. A peer that fails mid-join surfaces here as a shuffle
// error, not a hang.
func (c *Cluster) DistributedJoin(ctx context.Context, rs []*rankings.Ranking, opts rankjoin.Options) (*rankjoin.Result, error) {
	if c.Size() == 1 {
		eng := rankjoin.NewEngine(rankjoin.EngineConfig{Workers: c.cfg.JoinWorkers})
		return eng.Join(rs, opts)
	}
	job := fmt.Sprintf("j%d-%d", c.cfg.Self, joinSeq.Add(1))
	body, err := encodeJoinStart(job, opts, rs)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(ctx, c.cfg.JoinTimeout)
	defer cancel()

	// Launch the followers. Their handlers run the whole join before
	// acking, so acks only lag the coordinator's own worker below —
	// which is the real completion signal: it cannot finish unless
	// every follower progressed through every collective. Follower
	// errors therefore only need logging.
	for p := 0; p < c.Size(); p++ {
		if p == c.cfg.Self {
			continue
		}
		go func(p int) {
			if _, err := c.peer(p).doSlow(ctx, PathJoin, "application/octet-stream", body, c.cfg.JoinTimeout); err != nil {
				c.logger.Warn("cluster: join follower failed", "job", job, "peer", c.cfg.Peers[p], "err", err)
			}
		}(p)
	}

	res, err := c.runWorker(ctx, job, rs, opts)
	if err != nil {
		return nil, fmt.Errorf("cluster: job %s: %w", job, err)
	}
	return res, nil
}

// HandleJoinStart is the follower side of PathJoin: decode the
// dataset, run the identical join as this peer's worker, ack when
// done. Duplicate starts (hedged RPCs) collapse onto the first run's
// outcome through the job table.
func (c *Cluster) HandleJoinStart(ctx context.Context, body []byte) error {
	hdr, rs, err := decodeJoinStart(body)
	if err != nil {
		return fmt.Errorf("%w: %w", ErrMalformed, err)
	}
	ctx, cancel := context.WithTimeout(ctx, c.cfg.JoinTimeout)
	defer cancel()
	_, err = c.runWorker(ctx, hdr.Job, rs, hdr.Opts)
	return err
}

// runWorker executes this peer's SPMD share of job. The first caller
// for a job owns the run; concurrent or later callers wait for and
// share its outcome.
func (c *Cluster) runWorker(ctx context.Context, job string, rs []*rankings.Ranking, opts rankjoin.Options) (*rankjoin.Result, error) {
	entry, owns := c.jobs.begin(job)
	if !owns {
		select {
		case <-entry.done:
			return entry.res, entry.err
		case <-ctx.Done():
			return nil, fmt.Errorf("cluster: waiting for job %s: %w", job, ctx.Err())
		}
	}
	eng := rankjoin.NewEngine(rankjoin.EngineConfig{
		Workers:  c.cfg.JoinWorkers,
		Exchange: &wireExchange{c: c, job: job, ctx: ctx},
	})
	res, err := eng.Join(rs, opts)
	c.inbox.finishJob(job)
	c.jobs.finish(job, res, err)
	return res, err
}

// HandleShuffleFrame is the receive side of PathShuffle: decode and
// deliver to the inbox. Duplicates and post-completion stragglers are
// dropped silently — both are expected under hedging.
func (c *Cluster) HandleShuffleFrame(body []byte) error {
	f, err := decodeFrame(body)
	if err != nil {
		return fmt.Errorf("%w: %w", ErrMalformed, err)
	}
	if f.Src < 0 || f.Src >= c.Size() || f.Src == c.cfg.Self {
		return fmt.Errorf("%w: shuffle frame from invalid src %d", ErrMalformed, f.Src)
	}
	c.inbox.put(f)
	return nil
}
