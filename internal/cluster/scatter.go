package cluster

import (
	"context"
	"sort"
	"sync"

	"rankjoin/internal/rankings"
	"rankjoin/internal/shard"
)

// Peer-local RPC paths. These are registered by internal/server on
// every peer and answered against that peer's own index only — no
// further fan-out, so a scatter never amplifies.
const (
	PathSearch  = "/v1/cluster/search"
	PathGet     = "/v1/cluster/get"
	PathInsert  = "/v1/cluster/insert"
	PathDelete  = "/v1/cluster/delete"
	PathShuffle = "/v1/cluster/shuffle"
	PathJoin    = "/v1/cluster/join"
	PathInfo    = "/v1/cluster/info"
	// PathReplicate is the durability plane's pull endpoint: a follower
	// posts its per-shard epoch vector and receives, per shard, either
	// the WAL records above its epoch or a full snapshot. Registered
	// even without a peer ring — replication works on a single node.
	PathReplicate = "/v1/cluster/replicate"
)

// SearchReq is the peer-local search RPC body. KNN > 0 selects top-KNN
// mode; otherwise the peer derives the range cutoff from Theta and its
// local k, which equals every other peer's k because inserts enforce a
// uniform length cluster-wide.
type SearchReq struct {
	Items   []rankings.Item `json:"items"`
	Theta   float64         `json:"theta,omitempty"`
	KNN     int             `json:"knn,omitempty"`
	Exclude int64           `json:"exclude"`
}

// SearchResp carries one peer's local hits.
type SearchResp struct {
	Hits []shard.Neighbor `json:"hits"`
}

// GetReq looks a ranking up by id on its owner peer, so id-form
// queries resolve against the peer that actually stores the ranking.
type GetReq struct {
	ID int64 `json:"id"`
}

// GetResp returns the ranking when the owner has it.
type GetResp struct {
	Found bool            `json:"found"`
	Items []rankings.Item `json:"items,omitempty"`
}

// WireRanking is one (id, items) pair for insert RPCs.
type WireRanking struct {
	ID    int64           `json:"id"`
	Items []rankings.Item `json:"items"`
}

// UpsertReq ships ring-routed rankings to their owner peer.
type UpsertReq struct {
	Rankings []WireRanking `json:"rankings"`
}

// DeleteReq ships ring-routed deletions to their owner peer.
type DeleteReq struct {
	IDs []int64 `json:"ids"`
}

// DeleteResp reports how many of the ids were present.
type DeleteResp struct {
	Deleted int `json:"deleted"`
}

// OKResp acknowledges a mutation RPC.
type OKResp struct {
	OK bool `json:"ok"`
}

// InfoResp describes a peer for the cluster status page.
type InfoResp struct {
	Self     int    `json:"self"`
	Peers    int    `json:"peers"`
	Rankings int    `json:"rankings"`
	K        int    `json:"k"`
	Addr     string `json:"addr"`
}

// ScatterResult is a merged scatter-gather answer. Partial is true
// when at least one peer failed and its shard of the data is missing
// from Hits; Failed names those peers.
type ScatterResult struct {
	Hits    []shard.Neighbor
	Partial bool
	Failed  []string
}

// SearchPeer runs the peer-local search RPC against peer p.
func (c *Cluster) SearchPeer(ctx context.Context, p int, req SearchReq) (SearchResp, error) {
	return postJSON[SearchReq, SearchResp](ctx, c.peer(p), PathSearch, req, 0)
}

// GetPeer fetches a ranking by id from peer p.
func (c *Cluster) GetPeer(ctx context.Context, p int, id int64) (GetResp, error) {
	return postJSON[GetReq, GetResp](ctx, c.peer(p), PathGet, GetReq{ID: id}, 0)
}

// UpsertPeer ships rankings to peer p for local insertion. Mutating
// RPC: exactly one attempt, never hedged — a timer-hedged duplicate
// would apply twice on the owner and double-bump its shard epochs.
func (c *Cluster) UpsertPeer(ctx context.Context, p int, rs []WireRanking) error {
	_, err := postJSONMutate[UpsertReq, OKResp](ctx, c.peer(p), PathInsert, UpsertReq{Rankings: rs}, 0)
	return err
}

// DeletePeer ships deletions to peer p; returns how many existed.
// Mutating RPC: exactly one attempt, as in UpsertPeer.
func (c *Cluster) DeletePeer(ctx context.Context, p int, ids []int64) (int, error) {
	resp, err := postJSONMutate[DeleteReq, DeleteResp](ctx, c.peer(p), PathDelete, DeleteReq{IDs: ids}, 0)
	return resp.Deleted, err
}

// Scatter fans req out to every peer — the local index via the local
// callback, remote peers via the peer-local search RPC — waits for all
// of them, and merges. A failed remote peer degrades the answer to
// partial instead of failing the query; only when every shard fails
// (local included) does Scatter return an error, the first one seen.
func (c *Cluster) Scatter(ctx context.Context, req SearchReq, local func(context.Context) ([]shard.Neighbor, error)) (ScatterResult, error) {
	n := c.Size()
	hits := make([][]shard.Neighbor, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			if p == c.cfg.Self {
				hits[p], errs[p] = local(ctx)
				return
			}
			resp, err := c.SearchPeer(ctx, p, req)
			hits[p], errs[p] = resp.Hits, err
		}(p)
	}
	wg.Wait()

	var res ScatterResult
	var firstErr error
	ok := 0
	for p := 0; p < n; p++ {
		if errs[p] != nil {
			if firstErr == nil {
				firstErr = errs[p]
			}
			res.Failed = append(res.Failed, c.cfg.Peers[p])
			c.logger.Warn("cluster: scatter shard failed", "peer", c.cfg.Peers[p], "err", errs[p])
			continue
		}
		ok++
		res.Hits = append(res.Hits, hits[p]...)
	}
	if ok == 0 {
		return res, firstErr
	}
	res.Partial = len(res.Failed) > 0
	if res.Partial {
		c.partials.Add(1)
	}
	res.Hits = MergeHits(res.Hits, req.KNN)
	return res, nil
}

// MergeHits orders shard-local hit lists into one global answer —
// ascending distance, id-ordered within a distance band (the same
// deterministic order a single node produces) — and truncates to the
// top knn when knn > 0.
func MergeHits(hits []shard.Neighbor, knn int) []shard.Neighbor {
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Dist != hits[j].Dist {
			return hits[i].Dist < hits[j].Dist
		}
		return hits[i].ID < hits[j].ID
	})
	if knn > 0 && len(hits) > knn {
		hits = hits[:knn]
	}
	return hits
}

// GroupByOwner splits rankings by their owner peer, preserving input
// order within each group — the routing step behind clustered insert.
func (c *Cluster) GroupByOwner(rs []WireRanking) map[int][]WireRanking {
	groups := make(map[int][]WireRanking)
	for _, r := range rs {
		p := c.Owner(r.ID)
		groups[p] = append(groups[p], r)
	}
	return groups
}

// GroupIDsByOwner splits ids by owner peer, for clustered delete.
func (c *Cluster) GroupIDsByOwner(ids []int64) map[int][]int64 {
	groups := make(map[int][]int64)
	for _, id := range ids {
		p := c.Owner(id)
		groups[p] = append(groups[p], id)
	}
	return groups
}
