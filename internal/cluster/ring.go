// Package cluster turns N rankserved processes into one logical
// service. It has two planes:
//
//   - Serving plane: consistent-hash placement of rankings across
//     peers (insert/delete route to the owner; the ring reuses the
//     splitmix64 id hashing of internal/shard one level up) and
//     scatter-gather fan-out for search/kNN with per-peer deadlines,
//     hedged retries and partial-result degradation when a peer is
//     down.
//
//   - Batch plane: a wire implementation of flow.Exchanger so the
//     eight join algorithms run unchanged in SPMD mode across the
//     cluster — every peer executes the identical driver, shuffles
//     exchange length-prefixed binary frames over persistent HTTP
//     connections, and actions all-gather so every peer holds the
//     identical result.
//
// The cluster is static: the full ordered peer list is part of every
// peer's configuration and all peers must agree on it.
package cluster

import (
	"fmt"
	"sort"
)

// splitmix64 is the avalanche hash behind both ranking placement and
// ring point generation — the same constants internal/shard uses to
// route ids to shards, applied one level up to route ids to peers.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Ring is a consistent-hash ring mapping ranking ids to peer indexes.
// Each peer contributes a fixed number of virtual points; an id is
// owned by the peer whose point is the first at or clockwise of the
// id's hash. Virtual points smooth the load split (±a few percent at
// 64 points per peer) and keep future membership changes minimal-move,
// even though membership is static today.
type Ring struct {
	points []ringPoint // sorted by hash
	peers  int
}

type ringPoint struct {
	hash uint64
	peer int
}

// NewRing builds a ring over peers×vnodes virtual points. vnodes must
// be positive and collisions across distinct peers are resolved by the
// lower peer index (deterministic on every member).
func NewRing(peers, vnodes int) (*Ring, error) {
	if peers <= 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one peer, got %d", peers)
	}
	if vnodes <= 0 {
		return nil, fmt.Errorf("cluster: ring needs positive virtual nodes, got %d", vnodes)
	}
	r := &Ring{points: make([]ringPoint, 0, peers*vnodes), peers: peers}
	for p := 0; p < peers; p++ {
		for v := 0; v < vnodes; v++ {
			// Double-hashed on purpose: ids are placed by a single
			// splitmix64, so a single-hashed point for peer 0, vnode v
			// would equal the hash of id v exactly — ids 0..vnodes-1
			// would all land on peer 0's own points. A second round
			// puts the point stream out of the id stream's image.
			h := splitmix64(splitmix64(uint64(p)<<32 | uint64(v)))
			r.points = append(r.points, ringPoint{hash: h, peer: p})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].peer < r.points[j].peer
	})
	return r, nil
}

// Owner returns the peer index that owns ranking id.
func (r *Ring) Owner(id int64) int {
	h := splitmix64(uint64(id))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: first point clockwise
	}
	return r.points[i].peer
}

// Peers returns the number of peers on the ring.
func (r *Ring) Peers() int { return r.peers }
