package clusterjoin_test

import (
	"math/rand"
	"testing"

	"rankjoin/internal/clusterjoin"
	"rankjoin/internal/flow"
	"rankjoin/internal/ppjoin"
	"rankjoin/internal/rankings"
	"rankjoin/internal/testutil"
)

func ctx(workers int) *flow.Context {
	return flow.NewContext(flow.Config{Workers: workers, DefaultPartitions: 4})
}

// TestClusterJoinMatchesOracle: the anchor-window replication must not
// lose any pair, across random anchor counts, thresholds and datasets.
func TestClusterJoinMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		k := 3 + rng.Intn(10)
		rs := testutil.RandDataset(rng, 40+rng.Intn(80), k, k+rng.Intn(4*k))
		theta := 0.05 + 0.6*rng.Float64()
		want := rankings.DedupPairs(ppjoin.BruteForce(rs, rankings.Threshold(theta, k), nil))
		got, st, err := clusterjoin.Join(ctx(1+rng.Intn(4)), rs, clusterjoin.Options{
			Theta:      theta,
			Anchors:    1 + rng.Intn(20),
			Partitions: 1 + rng.Intn(6),
			Seed:       int64(trial),
		})
		if err != nil {
			t.Fatal(err)
		}
		if !rankings.SamePairs(got, want) {
			extra, missing := rankings.DiffPairs(got, want)
			t.Fatalf("trial %d k=%d θ=%.3f anchors=%d: extra=%v missing=%v",
				trial, k, theta, st.Anchors, extra, missing)
		}
		if st.HomeRecords != int64(len(rs)) {
			t.Fatalf("home records %d, want %d", st.HomeRecords, len(rs))
		}
	}
}

// TestClusterJoinClusteredData: the regime with real clusters — and the
// stats must show the replication cost the paper criticizes growing
// with θ.
func TestClusterJoinClusteredData(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rs := testutil.ClusteredDataset(rng, 20, 4, 10, 80)
	var repsSmall, repsLarge int64
	for _, theta := range []float64{0.05, 0.4} {
		want := rankings.DedupPairs(ppjoin.BruteForce(rs, rankings.Threshold(theta, 10), nil))
		got, st, err := clusterjoin.Join(ctx(4), rs, clusterjoin.Options{Theta: theta, Anchors: 8, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if !rankings.SamePairs(got, want) {
			t.Fatalf("θ=%v diverged", theta)
		}
		if theta == 0.05 {
			repsSmall = st.Replicas
		} else {
			repsLarge = st.Replicas
		}
	}
	if repsLarge <= repsSmall {
		t.Errorf("replication did not grow with θ: %d vs %d", repsSmall, repsLarge)
	}
}

func TestClusterJoinValidationAndEdges(t *testing.T) {
	got, st, err := clusterjoin.Join(ctx(1), nil, clusterjoin.Options{Theta: 0.3})
	if err != nil || len(got) != 0 || st == nil {
		t.Errorf("empty dataset: %v %v %v", got, st, err)
	}
	one := []*rankings.Ranking{rankings.MustNew(0, []rankings.Item{1, 2, 3})}
	got, st, err = clusterjoin.Join(ctx(1), one, clusterjoin.Options{Theta: 0.3, Anchors: 10})
	if err != nil || len(got) != 0 {
		t.Errorf("single ranking: %v %v", got, err)
	}
	if st.Anchors != 1 {
		t.Errorf("anchor clamp failed: %d", st.Anchors)
	}
	mixed := append(one, rankings.MustNew(1, []rankings.Item{1, 2}))
	if _, _, err := clusterjoin.Join(ctx(1), mixed, clusterjoin.Options{Theta: 0.3}); err == nil {
		t.Error("mixed lengths accepted")
	}
	if _, _, err := clusterjoin.Join(ctx(1), one, clusterjoin.Options{Theta: 2}); err == nil {
		t.Error("bad theta accepted")
	}
}
