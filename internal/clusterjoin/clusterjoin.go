// Package clusterjoin implements the anchor-based metric-space
// similarity join in the style of ClusterJoin (Sarma, He, Chaudhuri,
// PVLDB 2014) and Wang et al. (KDD 2013) — the random-centroid
// partitioning family the paper's related work describes (§2) and whose
// drawbacks motivate the CL design (§5.1).
//
// The dataset is partitioned by proximity to m random anchors: every
// ranking lives in the partition of its closest anchor (its home) and
// is replicated into any partition whose anchor is within
// d(p, home) + 2F — the triangle-inequality window guaranteeing that
// every result pair co-occurs in at least one partition with one member
// at home. Partitions are joined independently (home×home and
// home×replica) and duplicates removed.
package clusterjoin

import (
	"fmt"
	"math/rand"

	"rankjoin/internal/filters"
	"rankjoin/internal/flow"
	"rankjoin/internal/obs"
	"rankjoin/internal/rankings"
)

// Options configures an anchor-based join.
type Options struct {
	// Theta is the normalized Footrule threshold θ ∈ [0, 1].
	Theta float64
	// Anchors is the number of random anchors m (the paper's critique:
	// it must be chosen upfront). 0 picks ~√n.
	Anchors int
	// Partitions is the shuffle partition count (0 = context default).
	Partitions int
	// Seed makes the anchor choice reproducible.
	Seed int64
}

// Stats reports the replication behaviour — the cost knob of this
// algorithm family.
type Stats struct {
	// Anchors is the number of anchors used.
	Anchors int
	// Replicas counts records sent beyond their home partition.
	Replicas int64
	// HomeRecords counts home assignments (== dataset size).
	HomeRecords int64
}

// Join finds all pairs within opts.Theta via anchor partitioning.
func Join(ctx *flow.Context, rs []*rankings.Ranking, opts Options) ([]rankings.Pair, *Stats, error) {
	if opts.Theta < 0 || opts.Theta > 1 {
		return nil, nil, fmt.Errorf("clusterjoin: theta %v out of [0,1]", opts.Theta)
	}
	st := &Stats{}
	if len(rs) == 0 {
		return nil, st, nil
	}
	k := rs[0].K()
	for _, r := range rs {
		if r.K() != k {
			return nil, nil, fmt.Errorf("clusterjoin: mixed ranking lengths %d and %d", k, r.K())
		}
	}
	maxDist := rankings.Threshold(opts.Theta, k)

	m := opts.Anchors
	if m <= 0 {
		for m*m < len(rs) {
			m++
		}
	}
	if m > len(rs) {
		m = len(rs)
	}
	st.Anchors = m
	rng := rand.New(rand.NewSource(opts.Seed))
	perm := rng.Perm(len(rs))
	anchors := make([]*rankings.Ranking, m)
	for i := 0; i < m; i++ {
		anchors[i] = rs[perm[i]]
	}
	anchorsB := flow.NewBroadcast(ctx, anchors)

	// Route every ranking to its home partition and to every partition
	// within the replication window.
	type routed struct {
		R    *rankings.Ranking
		Home bool
	}
	ds := flow.Parallelize(ctx, rs, opts.Partitions)
	routedRecords := flow.FlatMap(ds, func(r *rankings.Ranking) []flow.KV[int, routed] {
		as := anchorsB.Value()
		dists := make([]int, len(as))
		home, homeDist := 0, -1
		for i, a := range as {
			dists[i] = rankings.Footrule(r, a)
			if homeDist < 0 || dists[i] < homeDist {
				home, homeDist = i, dists[i]
			}
		}
		out := []flow.KV[int, routed]{{K: home, V: routed{R: r, Home: true}}}
		window := homeDist + 2*maxDist
		for i, d := range dists {
			if i != home && d <= window {
				out = append(out, flow.KV[int, routed]{K: i, V: routed{R: r}})
			}
		}
		return out
	})
	groups := flow.GroupByKey(routedRecords, opts.Partitions)

	// Per-partition join: home×home plus home×replica. Filter counters
	// accumulate locally and fold once per partition.
	partHist := ctx.Histogram("clusterjoin/partition_records")
	pairs := flow.FlatMap(groups, func(g flow.KV[int, []routed]) []rankings.Pair {
		partHist.Observe(int64(len(g.V)))
		var homes, reps []*rankings.Ranking
		for _, rec := range g.V {
			if rec.Home {
				homes = append(homes, rec.R)
			} else {
				reps = append(reps, rec.R)
			}
		}
		var out []rankings.Pair
		var delta obs.FilterDelta
		verify := func(a, b *rankings.Ranking) {
			if a.ID == b.ID {
				return
			}
			delta.Generated++
			if filters.PositionPrune(a, b, maxDist) {
				delta.PrunedPosition++
				return
			}
			delta.Verified++
			if d, ok := rankings.FootruleWithin(a, b, maxDist); ok {
				delta.Emitted++
				out = append(out, rankings.NewPair(a.ID, b.ID, d))
			}
		}
		for i := 0; i < len(homes); i++ {
			for j := i + 1; j < len(homes); j++ {
				verify(homes[i], homes[j])
			}
			for _, rep := range reps {
				verify(homes[i], rep)
			}
		}
		ctx.Filters().Add(delta)
		return out
	})

	out, err := flow.Distinct(pairs, opts.Partitions).Collect()
	if err != nil {
		return nil, nil, err
	}
	st.HomeRecords = int64(len(rs))
	// Replica count: total routed records minus homes.
	total, err := routedRecords.Count()
	if err != nil {
		return nil, nil, err
	}
	st.Replicas = total - int64(len(rs))
	rankings.SortPairs(out)
	return rankings.DedupPairs(out), st, nil
}
