package check

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"rankjoin/internal/rankings"
	"rankjoin/internal/testutil"
)

// TestDifferentialSmoke sweeps a block of generator seeds through the
// full trial — every join path diffed against the oracle, all
// metamorphic properties — and requires zero divergences. This is the
// in-tree slice of the wider sweep cmd/rankcheck runs in CI.
func TestDifferentialSmoke(t *testing.T) {
	seeds := int64(30)
	if testing.Short() {
		seeds = 8
	}
	for s := int64(1); s <= seeds; s++ {
		p, rs := Generate(s)
		for _, d := range RunTrial(p, rs, nil) {
			t.Errorf("seed %d (profile=%s k=%d n=%d θ=%v): %s", s, p.Profile, p.K, len(rs), p.Theta, d)
		}
	}
}

// TestGenerateDeterministic pins the replay guarantee: the same seed
// must always produce the same trial.
func TestGenerateDeterministic(t *testing.T) {
	p1, rs1 := Generate(77)
	p2, rs2 := Generate(77)
	if p1 != p2 {
		t.Fatalf("params diverged: %+v vs %+v", p1, p2)
	}
	if len(rs1) != len(rs2) {
		t.Fatalf("dataset sizes diverged: %d vs %d", len(rs1), len(rs2))
	}
	for i := range rs1 {
		if rs1[i].String() != rs2[i].String() {
			t.Fatalf("ranking %d diverged: %v vs %v", i, rs1[i], rs2[i])
		}
	}
}

// TestReplayTestdata re-runs every shrunk reproducer checked in under
// testdata/ — the regression anchors of previously fixed divergences.
func TestReplayTestdata(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.repro"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no reproducer files under testdata/")
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			p, rs, err := LoadRepro(file)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range RunTrial(p, rs, nil) {
				t.Errorf("%s", d)
			}
		})
	}
}

// TestReproRoundTrip checks that a reproducer file restores the exact
// trial: every parameter (including a θ with no short decimal form)
// and every ranking.
func TestReproRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rs := testutil.RandDataset(rng, 9, 4, 17)
	p := Params{
		Seed: 42, Profile: ProfileZipf, K: 4, Domain: 17,
		Theta: 7.0 / 20.0, ThetaC: 0.031415926535,
		Delta: 2, Partitions: 3, Shards: 2, Pivots: 5, Churn: 11,
	}
	var buf bytes.Buffer
	divs := []Divergence{{Path: PathVJ, Kind: KindPairs, Detail: "example"}}
	if err := WriteRepro(&buf, p, rs, divs); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "# divergence: [vj/pairs] example") {
		t.Errorf("divergence comment missing from repro:\n%s", buf.String())
	}
	p2, rs2, err := ReadRepro(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if p2 != p {
		t.Errorf("params did not round-trip: wrote %+v, read %+v", p, p2)
	}
	if len(rs2) != len(rs) {
		t.Fatalf("dataset did not round-trip: wrote %d rankings, read %d", len(rs), len(rs2))
	}
	for i := range rs {
		if rs[i].String() != rs2[i].String() {
			t.Errorf("ranking %d did not round-trip: wrote %v, read %v", i, rs[i], rs2[i])
		}
	}
}

// TestShrink minimizes a deterministic failure: a dataset with one
// mixed-length ranking makes the oracle error, and delta debugging must
// cut the dataset down to the two rankings needed to witness the
// length mismatch.
func TestShrink(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	rs := testutil.RandDataset(rng, 14, 3, 12)
	odd := testutil.RandRanking(rng, 100, 5, 12)
	rs = append(rs[:7:7], append([]*rankings.Ranking{odd}, rs[7:]...)...)
	p := Params{Seed: 9, K: 3, Domain: 12, Theta: 0.3, Delta: 1, Partitions: 1, Shards: 1, Pivots: 1, Churn: 4}

	divs := RunTrial(p, rs, func(path string) bool { return path == PathBrute })
	if len(divs) == 0 {
		t.Fatal("mixed-length dataset should make the oracle error")
	}
	small, div := Shrink(p, rs, divs[0])
	if !div.Matches(divs[0]) {
		t.Errorf("shrunk divergence %v does not match target %v", div, divs[0])
	}
	if len(small) > 2 {
		t.Errorf("shrunk to %d rankings, want ≤ 2: %v", len(small), small)
	}
	// The shrunk dataset must still fail the same way.
	if again := RunTrial(p, small, func(path string) bool { return path == PathBrute }); len(again) == 0 {
		t.Error("shrunk dataset no longer reproduces the divergence")
	}
}

// TestPathFilterDeterminism pins the shrinking precondition: running a
// single path must reproduce exactly the divergences the full run
// reported for that path (each sub-runner owns its own seeded stream).
func TestPathFilterDeterminism(t *testing.T) {
	for s := int64(1); s <= 5; s++ {
		p, rs := Generate(s)
		full := RunTrial(p, rs, nil)
		only := RunTrial(p, rs, func(path string) bool { return path == PathShard })
		var fullShard []Divergence
		for _, d := range full {
			if d.Path == PathShard {
				fullShard = append(fullShard, d)
			}
		}
		if len(fullShard) != len(only) {
			t.Fatalf("seed %d: full run had %d shard divergences, filtered run %d", s, len(fullShard), len(only))
		}
		for i := range only {
			if only[i] != fullShard[i] {
				t.Errorf("seed %d: divergence %d differs: full=%v filtered=%v", s, i, fullShard[i], only[i])
			}
		}
	}
}
