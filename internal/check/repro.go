package check

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"rankjoin/internal/rankings"
)

// Reproducer files are valid dataset files: every parameter rides in
// '#'-prefixed comment lines that rankings.Read skips, so the body can
// also be fed to any tool that consumes the standard format. Layout:
//
//	# rankcheck reproducer
//	#param seed=42
//	#param theta=0.25
//	# divergence: [vj/pairs] got 3 pairs want 4; ...
//	0: 3 1 4
//	1: 1 5 9
//
// Replay with `rankcheck -replay <file>` or by dropping the file into
// internal/check/testdata/, which the package tests sweep.

// WriteRepro serializes a failing trial. The divergences are recorded
// as comments for the human reader; replay recomputes them.
func WriteRepro(w io.Writer, p Params, rs []*rankings.Ranking, divs []Divergence) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# rankcheck reproducer\n")
	fmt.Fprintf(bw, "#param seed=%d\n", p.Seed)
	fmt.Fprintf(bw, "#param profile=%s\n", p.Profile)
	fmt.Fprintf(bw, "#param k=%d\n", p.K)
	fmt.Fprintf(bw, "#param domain=%d\n", p.Domain)
	fmt.Fprintf(bw, "#param theta=%s\n", strconv.FormatFloat(p.Theta, 'g', -1, 64))
	fmt.Fprintf(bw, "#param thetac=%s\n", strconv.FormatFloat(p.ThetaC, 'g', -1, 64))
	fmt.Fprintf(bw, "#param delta=%d\n", p.Delta)
	fmt.Fprintf(bw, "#param partitions=%d\n", p.Partitions)
	fmt.Fprintf(bw, "#param shards=%d\n", p.Shards)
	fmt.Fprintf(bw, "#param pivots=%d\n", p.Pivots)
	fmt.Fprintf(bw, "#param churn=%d\n", p.Churn)
	for _, d := range divs {
		fmt.Fprintf(bw, "# divergence: %s\n", d)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("check: write repro: %w", err)
	}
	return rankings.Write(w, rs)
}

// ReadRepro parses a reproducer file back into its trial parameters and
// dataset.
func ReadRepro(r io.Reader) (Params, []*rankings.Ranking, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return Params{}, nil, fmt.Errorf("check: read repro: %w", err)
	}
	var p Params
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "#param ") {
			continue
		}
		key, val, ok := strings.Cut(strings.TrimPrefix(line, "#param "), "=")
		if !ok {
			return Params{}, nil, fmt.Errorf("check: repro line %d: malformed %q", ln+1, line)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		var perr error
		switch key {
		case "seed":
			p.Seed, perr = strconv.ParseInt(val, 10, 64)
		case "profile":
			p.Profile = val
		case "k":
			p.K, perr = strconv.Atoi(val)
		case "domain":
			p.Domain, perr = strconv.Atoi(val)
		case "theta":
			p.Theta, perr = strconv.ParseFloat(val, 64)
		case "thetac":
			p.ThetaC, perr = strconv.ParseFloat(val, 64)
		case "delta":
			p.Delta, perr = strconv.Atoi(val)
		case "partitions":
			p.Partitions, perr = strconv.Atoi(val)
		case "shards":
			p.Shards, perr = strconv.Atoi(val)
		case "pivots":
			p.Pivots, perr = strconv.Atoi(val)
		case "churn":
			p.Churn, perr = strconv.Atoi(val)
		default:
			return Params{}, nil, fmt.Errorf("check: repro line %d: unknown param %q", ln+1, key)
		}
		if perr != nil {
			return Params{}, nil, fmt.Errorf("check: repro line %d: bad %s: %w", ln+1, key, perr)
		}
	}
	rs, err := rankings.Read(strings.NewReader(string(data)))
	if err != nil {
		return Params{}, nil, err
	}
	if p.K == 0 && len(rs) > 0 {
		p.K = rs[0].K()
	}
	return p, rs, nil
}

// SaveRepro writes a reproducer under dir (created if missing) with a
// name derived from the seed and the first divergence, and returns the
// path.
func SaveRepro(dir string, p Params, rs []*rankings.Ranking, divs []Divergence) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("check: save repro: %w", err)
	}
	tag := "divergence"
	if len(divs) > 0 {
		tag = divs[0].Path + "-" + divs[0].Kind
	}
	path := filepath.Join(dir, fmt.Sprintf("seed%d-%s.repro", p.Seed, tag))
	f, err := os.Create(path)
	if err != nil {
		return "", fmt.Errorf("check: save repro: %w", err)
	}
	if err := WriteRepro(f, p, rs, divs); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("check: save repro: %w", err)
	}
	return path, nil
}

// LoadRepro reads a reproducer file from disk.
func LoadRepro(path string) (Params, []*rankings.Ranking, error) {
	f, err := os.Open(path)
	if err != nil {
		return Params{}, nil, fmt.Errorf("check: load repro: %w", err)
	}
	defer f.Close()
	return ReadRepro(f)
}
