package check

import (
	"rankjoin/internal/rankings"
)

// maxShrinkTrials bounds the number of RunTrial evaluations one Shrink
// call may spend. Each trial runs every join path over the candidate
// subset, so an unbounded ddmin over an adversarial dataset could take
// minutes; the bound trades minimality for a predictable runtime.
const maxShrinkTrials = 160

// Shrink reduces a failing dataset to a (locally) minimal reproducer
// using delta debugging: chunks of rankings are removed greedily as
// long as RunTrial still reports a divergence matching target (same
// path and kind — the detail text legitimately changes while
// shrinking). The input slice is not modified; the returned slice is
// the smallest subset found within the trial budget, together with the
// matching divergence it still produces.
//
// Shrinking re-runs only the target's path (plus the brute oracle the
// self-join paths diff against), so minimizing a shard divergence does
// not spend time re-running the six self-join algorithms.
func Shrink(p Params, rs []*rankings.Ranking, target Divergence) ([]*rankings.Ranking, Divergence) {
	enabled := shrinkPaths(target.Path)
	trials := 0
	fails := func(sub []*rankings.Ranking) (Divergence, bool) {
		if trials >= maxShrinkTrials {
			return Divergence{}, false
		}
		trials++
		for _, d := range RunTrial(p, sub, enabled) {
			if d.Matches(target) {
				return d, true
			}
		}
		return Divergence{}, false
	}

	cur := append([]*rankings.Ranking(nil), rs...)
	found := target
	chunk := (len(cur) + 1) / 2
	for chunk >= 1 {
		removed := false
		for start := 0; start+chunk <= len(cur); {
			trial := make([]*rankings.Ranking, 0, len(cur)-chunk)
			trial = append(trial, cur[:start]...)
			trial = append(trial, cur[start+chunk:]...)
			if d, ok := fails(trial); ok {
				cur = trial
				found = d
				removed = true
				// The window now holds the next untried chunk; retry at
				// the same start.
			} else {
				start += chunk
			}
			if trials >= maxShrinkTrials {
				return cur, found
			}
		}
		if chunk == 1 && !removed {
			break
		}
		if !removed {
			chunk /= 2
		}
	}
	return cur, found
}

// shrinkPaths selects the paths worth re-running while minimizing a
// divergence on the given path. Self-join paths need the brute oracle.
func shrinkPaths(path string) func(string) bool {
	switch path {
	case PathJoinRS, PathShard:
		return func(p string) bool { return p == path }
	default:
		return func(p string) bool { return p == path || p == PathBrute }
	}
}
