// Package check is the differential correctness harness of the
// repository: the paper's guarantee is exactness — every join algorithm
// must return the identical pair set as a brute-force Footrule scan for
// every θ, k and data skew — and this package certifies it across all
// execution paths at once.
//
// A trial is one seeded, deterministic run: an adversarial dataset
// (Zipf skew, near-duplicate clusters, disjoint domains, boundary
// thresholds landing exactly on integer Footrule distances) is pushed
// through every join path — the brute-force oracle, VJ, VJ-NL, CL,
// CL-P with δ forced low enough to exercise repartitioning, FS-Join,
// V-SMART, the R-S join, and the sharded dynamic index after
// upsert/delete churn — and the result sets are diffed pair by pair.
// On top of set equality the harness checks metamorphic properties:
// threshold monotonicity (θ₁ ≤ θ₂ ⇒ pairs₁ ⊆ pairs₂), the metric
// axioms on sampled triples, invariance under id permutation, and the
// filter-counter conservation law of internal/obs.
//
// Failing trials shrink to a minimal reproducer (Shrink) and serialize
// to a replayable seed file (WriteRepro) that both cmd/rankcheck
// -replay and the package tests re-run as regression anchors.
package check

import (
	"fmt"
	"math/rand"
	"sort"

	"rankjoin"
	"rankjoin/internal/rankings"
	"rankjoin/internal/shard"
	"rankjoin/internal/testutil"
)

// Execution paths the harness certifies. PathBrute is the oracle and
// always runs; disabling it disables the self-join diffs.
const (
	PathBrute  = "brute"
	PathVJ     = "vj"
	PathVJNL   = "vjnl"
	PathCL     = "cl"
	PathCLP    = "clp"
	PathFSJoin = "fsjoin"
	PathVSMART = "vsmart"
	PathJoinRS = "joinrs"
	PathShard  = "shard"
)

// AllPaths lists every execution path in reporting order.
var AllPaths = []string{
	PathBrute, PathVJ, PathVJNL, PathCL, PathCLP,
	PathFSJoin, PathVSMART, PathJoinRS, PathShard,
}

// Divergence kinds.
const (
	KindPairs        = "pairs"        // result set differs from the oracle
	KindError        = "error"        // a path errored where the oracle succeeded
	KindMonotonicity = "monotonicity" // θ₁ ≤ θ₂ but pairs₁ ⊄ pairs₂
	KindMetric       = "metric"       // a Footrule metric axiom failed
	KindPermutation  = "permutation"  // result changed under id relabeling
	KindConservation = "conservation" // filter counters violate the law
	KindContract     = "contract"     // an API contract broke (labels, typed errors)
)

// Divergence is one certified disagreement between an execution path
// and the oracle (or a metamorphic property violation).
type Divergence struct {
	Path   string
	Kind   string
	Detail string
}

func (d Divergence) String() string {
	return fmt.Sprintf("[%s/%s] %s", d.Path, d.Kind, d.Detail)
}

// Matches reports whether the two divergences describe the same
// failure family — the shrinking predicate ignores Detail, which
// legitimately changes as the dataset shrinks.
func (d Divergence) Matches(o Divergence) bool { return d.Path == o.Path && d.Kind == o.Kind }

// collector accumulates divergences from the sub-runners.
type collector struct {
	divs    []Divergence
	enabled func(path string) bool
}

func (c *collector) on(path string) bool { return c.enabled == nil || c.enabled(path) }

func (c *collector) report(path, kind, format string, args ...any) {
	c.divs = append(c.divs, Divergence{Path: path, Kind: kind, Detail: fmt.Sprintf(format, args...)})
}

// RunTrial executes one full differential trial over the dataset.
// enabled selects paths by name (nil enables all). The returned slice
// is empty when every path agrees with the oracle and every metamorphic
// property holds. RunTrial is deterministic: the same Params and
// dataset always produce the same divergences.
func RunTrial(p Params, rs []*rankings.Ranking, enabled func(path string) bool) []Divergence {
	c := &collector{enabled: enabled}
	// Each sub-runner gets its own seed-derived stream, so disabling one
	// path (shrinking, -paths) cannot change the schedule of another.
	rngFor := func(salt int64) *rand.Rand {
		return rand.New(rand.NewSource(p.Seed ^ salt))
	}
	rankings.IndexAll(rs)

	eng := rankjoin.NewEngine(rankjoin.EngineConfig{})
	defer eng.Close()

	if c.on(PathBrute) {
		oracle, err := eng.Join(rs, rankjoin.Options{
			Algorithm:  rankjoin.AlgBruteForce,
			Theta:      p.Theta,
			Partitions: p.Partitions,
		})
		if err != nil {
			c.report(PathBrute, KindError, "oracle failed: %v", err)
			return c.divs
		}
		checkConservation(c, PathBrute, oracle)
		runSelfJoins(c, p, rs, eng, oracle.Pairs)
		runMetamorphic(c, p, rs, eng, rngFor(0x5eedc0de))
	}
	if c.on(PathJoinRS) {
		runJoinRS(c, p, rs, eng)
	}
	if c.on(PathShard) {
		runShard(c, p, rs, rngFor(0xc42112))
	}
	return c.divs
}

// selfJoinPaths maps path names to algorithm requests. ClusterJoin is
// deliberately absent: its anchor sampling is seeded internally and it
// is covered by its own package tests.
var selfJoinPaths = []struct {
	path string
	alg  rankjoin.Algorithm
}{
	{PathVJ, rankjoin.AlgVJ},
	{PathVJNL, rankjoin.AlgVJNL},
	{PathCL, rankjoin.AlgCL},
	{PathCLP, rankjoin.AlgCLP},
	{PathFSJoin, rankjoin.AlgFSJoin},
	{PathVSMART, rankjoin.AlgVSMART},
}

func (p Params) options(alg rankjoin.Algorithm) rankjoin.Options {
	opts := rankjoin.Options{
		Algorithm:  alg,
		Theta:      p.Theta,
		ThetaC:     p.ThetaC,
		Partitions: p.Partitions,
	}
	if alg == rankjoin.AlgCLP {
		opts.Delta = p.Delta
	}
	return opts
}

// runSelfJoins diffs every enabled self-join algorithm against the
// oracle pair set, pair by pair (ids and distances).
func runSelfJoins(c *collector, p Params, rs []*rankings.Ranking, eng *rankjoin.Engine, oracle []rankings.Pair) {
	for _, sj := range selfJoinPaths {
		if !c.on(sj.path) {
			continue
		}
		res, err := eng.Join(rs, p.options(sj.alg))
		if err != nil {
			c.report(sj.path, KindError, "%v", err)
			continue
		}
		if res.Algorithm != sj.alg {
			c.report(sj.path, KindContract, "requested %v, result labeled %v", sj.alg, res.Algorithm)
		}
		if !rankings.SamePairs(res.Pairs, oracle) {
			c.report(sj.path, KindPairs, "%s", diffDetail(res.Pairs, oracle))
		}
		checkConservation(c, sj.path, res)
	}
}

// diffDetail renders a pair-set disagreement compactly: totals plus up
// to five examples per side.
func diffDetail(got, want []rankings.Pair) string {
	extra, missing := rankings.DiffPairs(got, want)
	if len(extra) == 0 && len(missing) == 0 {
		// Same keys, different distances.
		n := len(got)
		if len(want) < n {
			n = len(want)
		}
		for i := 0; i < n; i++ {
			if got[i] != want[i] {
				return fmt.Sprintf("distance mismatch: got %v want %v", got[i], want[i])
			}
		}
		return fmt.Sprintf("got %d pairs, want %d", len(got), len(want))
	}
	return fmt.Sprintf("got %d pairs want %d; extra=%v missing=%v",
		len(got), len(want), clipPairs(extra), clipPairs(missing))
}

func clipPairs(ps []rankings.Pair) []rankings.Pair {
	if len(ps) > 5 {
		return ps[:5]
	}
	return ps
}

// checkConservation asserts the obs filter law on a join result: every
// generated candidate met exactly one fate, and at least as many pairs
// were emitted as survived deduplication.
func checkConservation(c *collector, path string, res *rankjoin.Result) {
	f := res.Filters
	if !f.Conserved() {
		c.report(path, KindConservation, "filter counters not conserved: %v", f)
		return
	}
	if f.Emitted < int64(len(res.Pairs)) {
		c.report(path, KindConservation, "emitted %d < %d result pairs: %v", f.Emitted, len(res.Pairs), f)
	}
}

// runMetamorphic checks the properties that hold beyond plain oracle
// equality: the metric axioms, threshold monotonicity, and invariance
// under id relabeling. One rotating algorithm per property keeps the
// per-trial cost bounded while every algorithm is exercised across
// seeds.
func runMetamorphic(c *collector, p Params, rs []*rankings.Ranking, eng *rankjoin.Engine, rng *rand.Rand) {
	// Metric axioms on sampled triples: identity, symmetry, triangle.
	for t := 0; t < 32 && len(rs) > 0; t++ {
		a := rs[rng.Intn(len(rs))]
		b := rs[rng.Intn(len(rs))]
		x := rs[rng.Intn(len(rs))]
		if d := rankings.Footrule(a, a); d != 0 {
			c.report(PathBrute, KindMetric, "d(%d,%d)=%d, want 0", a.ID, a.ID, d)
		}
		dab, dba := rankings.Footrule(a, b), rankings.Footrule(b, a)
		if dab != dba {
			c.report(PathBrute, KindMetric, "asymmetric: d(%d,%d)=%d but d(%d,%d)=%d",
				a.ID, b.ID, dab, b.ID, a.ID, dba)
		}
		dax, dxb := rankings.Footrule(a, x), rankings.Footrule(x, b)
		if dab > dax+dxb {
			c.report(PathBrute, KindMetric,
				"triangle violated: d(%d,%d)=%d > d(%d,%d)+d(%d,%d)=%d",
				a.ID, b.ID, dab, a.ID, x.ID, x.ID, b.ID, dax+dxb)
		}
	}

	// Threshold monotonicity on a rotating algorithm: raising θ must
	// only add pairs, never drop or re-score one.
	sj := selfJoinPaths[rng.Intn(len(selfJoinPaths))]
	theta2 := p.Theta + (1-p.Theta)*rng.Float64()
	lo, err := eng.Join(rs, p.options(sj.alg))
	if err != nil {
		c.report(sj.path, KindError, "monotonicity lower run: %v", err)
		return
	}
	hiOpts := p.options(sj.alg)
	hiOpts.Theta = theta2
	hi, err := eng.Join(rs, hiOpts)
	if err != nil {
		c.report(sj.path, KindError, "monotonicity upper run: %v", err)
		return
	}
	hiSet := make(map[rankings.PairKey]int, len(hi.Pairs))
	for _, pr := range hi.Pairs {
		hiSet[pr.Key()] = pr.Dist
	}
	for _, pr := range lo.Pairs {
		d, ok := hiSet[pr.Key()]
		if !ok {
			c.report(sj.path, KindMonotonicity,
				"pair %v present at θ=%v but missing at θ=%v", pr, p.Theta, theta2)
			break
		}
		if d != pr.Dist {
			c.report(sj.path, KindMonotonicity,
				"pair %v scored %d at θ=%v but %d at θ=%v", pr, pr.Dist, p.Theta, d, theta2)
			break
		}
	}

	// Id-permutation invariance on another rotating algorithm: relabel
	// every id through a scattered bijection, rerun, map back, compare.
	// CL elects centroids by id order and VJ hashes ids into
	// sub-partitions — the result set must not care.
	sj2 := selfJoinPaths[rng.Intn(len(selfJoinPaths))]
	perm := rng.Perm(len(rs))
	inv := make(map[int64]int64, len(rs))
	relabeled := make([]*rankings.Ranking, len(rs))
	for i, r := range rs {
		newID := int64(1_000_003 + 7*perm[i])
		inv[newID] = r.ID
		cp := r.Clone()
		cp.ID = newID
		cp.Index()
		relabeled[i] = cp
	}
	base, err := eng.Join(rs, p.options(sj2.alg))
	if err != nil {
		c.report(sj2.path, KindError, "permutation base run: %v", err)
		return
	}
	permRes, err := eng.Join(relabeled, p.options(sj2.alg))
	if err != nil {
		c.report(sj2.path, KindError, "permutation run: %v", err)
		return
	}
	mapped := make([]rankings.Pair, len(permRes.Pairs))
	for i, pr := range permRes.Pairs {
		mapped[i] = rankings.NewPair(inv[pr.A], inv[pr.B], pr.Dist)
	}
	rankings.SortPairs(mapped)
	if !rankings.SamePairs(mapped, base.Pairs) {
		c.report(sj2.path, KindPermutation, "%s", diffDetail(mapped, base.Pairs))
	}
}

// runJoinRS splits the dataset into an R and an S half and diffs the
// prefix-filtered R-S pipeline against the quadratic R×S oracle. It
// also pins the JoinRS API contract: the result reports the algorithm
// actually executed, and self-join-only algorithms are typed errors.
func runJoinRS(c *collector, p Params, rs []*rankings.Ranking, eng *rankjoin.Engine) {
	half := len(rs) / 2
	r, s := rs[:half], rs[half:]

	oracle, err := eng.JoinRS(r, s, rankjoin.Options{
		Algorithm:  rankjoin.AlgBruteForce,
		Theta:      p.Theta,
		Partitions: p.Partitions,
	})
	if err != nil {
		c.report(PathJoinRS, KindError, "oracle: %v", err)
		return
	}
	if oracle.Algorithm != rankjoin.AlgBruteForce {
		c.report(PathJoinRS, KindContract, "brute-force R-S labeled %v", oracle.Algorithm)
	}
	checkConservation(c, PathJoinRS, oracle)

	res, err := eng.JoinRS(r, s, rankjoin.Options{
		Theta:      p.Theta,
		Partitions: p.Partitions,
		Delta:      p.Delta,
	})
	if err != nil {
		c.report(PathJoinRS, KindError, "%v", err)
		return
	}
	if res.Algorithm != rankjoin.AlgVJNL {
		c.report(PathJoinRS, KindContract,
			"R-S pipeline must report the executed algorithm (VJ-NL), got %v", res.Algorithm)
	}
	if !rankings.SamePairs(res.Pairs, oracle.Pairs) {
		c.report(PathJoinRS, KindPairs, "%s", diffDetail(res.Pairs, oracle.Pairs))
	}
	checkConservation(c, PathJoinRS, res)

	// Self-join-only algorithms must refuse with the typed error, not
	// silently run something else.
	if _, err := eng.JoinRS(r, s, rankjoin.Options{
		Algorithm: rankjoin.AlgCLP, Theta: p.Theta, Delta: p.Delta,
	}); err == nil {
		c.report(PathJoinRS, KindContract, "CL-P over R-S must be ErrSelfJoinOnly, got nil error")
	}
}

// neighborsEqual compares two (dist, id)-sorted hit lists.
func neighborsEqual(a, b []shard.Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortNeighbors(ns []shard.Neighbor) {
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].Dist != ns[j].Dist {
			return ns[i].Dist < ns[j].Dist
		}
		return ns[i].ID < ns[j].ID
	})
}

// bruteNeighbors scans the live mirror for everything within maxDist of
// q (excluding the id `exclude`), sorted by (dist, id) — the oracle for
// every shard query mode.
func bruteNeighbors(live map[int64]*rankings.Ranking, q *rankings.Ranking, maxDist int, exclude int64) []shard.Neighbor {
	var out []shard.Neighbor
	for id, r := range live {
		if id == exclude {
			continue
		}
		if d, ok := rankings.FootruleWithin(q, r, maxDist); ok {
			out = append(out, shard.Neighbor{ID: id, Dist: d})
		}
	}
	sortNeighbors(out)
	return out
}

// runShard drives the dynamic sharded index through randomized
// upsert/delete churn, then diffs Search, KNN and a mixed SearchBatch
// sweep against a brute-force scan of a live mirror maintained in
// lockstep with the mutations.
func runShard(c *collector, p Params, rs []*rankings.Ranking, rng *rand.Rand) {
	idx := shard.New(shard.Config{
		Shards:         p.Shards,
		PivotsPerShard: p.Pivots,
		Seed:           p.Seed,
	})
	live := make(map[int64]*rankings.Ranking, len(rs))
	nextID := int64(0)
	insert := func(r *rankings.Ranking) bool {
		if err := idx.Insert(r); err != nil {
			c.report(PathShard, KindError, "insert id %d: %v", r.ID, err)
			return false
		}
		live[r.ID] = r
		if r.ID >= nextID {
			nextID = r.ID + 1
		}
		return true
	}
	for _, r := range rs {
		if !insert(r) {
			return
		}
	}

	// Randomized churn: deletes, replacing upserts, fresh inserts. The
	// mirror is updated in lockstep so the oracle always reflects the
	// index's intended contents.
	liveIDs := func() []int64 {
		ids := make([]int64, 0, len(live))
		for id := range live {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		return ids
	}
	for op := 0; op < p.Churn; op++ {
		switch rng.Intn(3) {
		case 0: // delete
			ids := liveIDs()
			if len(ids) == 0 {
				continue
			}
			id := ids[rng.Intn(len(ids))]
			if ok, err := idx.Delete(id); err != nil {
				c.report(PathShard, KindError, "delete of live id %d failed: %v", id, err)
			} else if !ok {
				c.report(PathShard, KindError, "delete of live id %d reported absent", id)
			}
			delete(live, id)
		case 1: // upsert an existing id with fresh items
			ids := liveIDs()
			if len(ids) == 0 {
				continue
			}
			id := ids[rng.Intn(len(ids))]
			if !insert(testutil.RandRanking(rng, id, p.K, p.Domain)) {
				return
			}
		default: // fresh insert
			if !insert(testutil.RandRanking(rng, nextID, p.K, p.Domain)) {
				return
			}
		}
	}
	if idx.Len() != len(live) {
		c.report(PathShard, KindError, "index holds %d rankings, mirror %d", idx.Len(), len(live))
	}

	// Query sample: indexed members (self-excluded) and fresh ad-hoc
	// queries (nothing excluded).
	type probe struct {
		q       *rankings.Ranking
		exclude int64
	}
	var probes []probe
	if ids := liveIDs(); len(ids) > 0 {
		for i := 0; i < 6; i++ {
			id := ids[rng.Intn(len(ids))]
			probes = append(probes, probe{q: live[id], exclude: id})
		}
	}
	for i := 0; i < 4; i++ {
		probes = append(probes, probe{
			q:       testutil.RandRanking(rng, nextID+int64(1000+i), p.K, p.Domain),
			exclude: shard.NoExclude,
		})
	}
	maxDist := rankings.Threshold(p.Theta, p.K)
	maxF := rankings.MaxFootrule(p.K)

	// Individual Search and KNN calls vs the oracle, accumulated into a
	// batch replayed below — the batched sweep must answer each query
	// identically to the one-at-a-time path.
	var batch []shard.Query
	var want [][]shard.Neighbor
	for _, pb := range probes {
		hits, err := idx.Search(pb.q, maxDist, pb.exclude)
		if err != nil {
			c.report(PathShard, KindError, "search(q=%d): %v", pb.q.ID, err)
			continue
		}
		expect := bruteNeighbors(live, pb.q, maxDist, pb.exclude)
		if !neighborsEqual(hits, expect) {
			c.report(PathShard, KindPairs, "search(q=%d θ=%v): got %v want %v",
				pb.q.ID, p.Theta, hits, expect)
		}
		batch = append(batch, shard.Query{R: pb.q, MaxDist: maxDist, Exclude: pb.exclude})
		want = append(want, expect)

		// kNN at the boundary sizes where tie order matters: n = 1, a
		// small n, and n beyond the index size.
		all := bruteNeighbors(live, pb.q, maxF, pb.exclude)
		for _, n := range []int{1, 1 + rng.Intn(4), len(live) + 1} {
			got, err := idx.KNN(pb.q, n, pb.exclude)
			if err != nil {
				c.report(PathShard, KindError, "knn(q=%d n=%d): %v", pb.q.ID, n, err)
				continue
			}
			expect := all
			if len(expect) > n {
				expect = expect[:n]
			}
			if !neighborsEqual(got, expect) {
				c.report(PathShard, KindPairs, "knn(q=%d n=%d): got %v want %v",
					pb.q.ID, n, got, expect)
			}
			batch = append(batch, shard.Query{R: pb.q, KNN: n, Exclude: pb.exclude})
			want = append(want, expect)
		}
	}

	got, err := idx.SearchBatch(batch, nil)
	if err != nil {
		c.report(PathShard, KindError, "batch sweep: %v", err)
	} else {
		for i := range got {
			if !neighborsEqual(got[i], want[i]) {
				c.report(PathShard, KindPairs, "batch query %d (q=%d knn=%d): got %v want %v",
					i, batch[i].R.ID, batch[i].KNN, got[i], want[i])
			}
		}
	}
	// Arena path: the same batch replayed twice through one reused Batch
	// must answer identically both times — the second pass runs entirely
	// on recycled scratch, so any stale-aliasing bug in the arena (or in
	// the fused signature sweep's reused overlap matrix) shows up as a
	// divergence here.
	arena := idx.NewBatch()
	for pass := 0; pass < 2; pass++ {
		views, err := arena.SearchBatchInto(batch, nil)
		if err != nil {
			c.report(PathShard, KindError, "arena sweep pass %d: %v", pass, err)
			break
		}
		for i := range views {
			if !neighborsEqual(views[i], want[i]) {
				c.report(PathShard, KindPairs, "arena pass %d query %d (q=%d knn=%d): got %v want %v",
					pass, i, batch[i].R.ID, batch[i].KNN, views[i], want[i])
			}
		}
	}
	if snap := idx.Filters().Snapshot(); !snap.Conserved() {
		c.report(PathShard, KindConservation, "index filter counters not conserved: %v", snap)
	}
}
