package check

import (
	"math/rand"

	"rankjoin/internal/rankings"
	"rankjoin/internal/testutil"
)

// Params pins every knob of one differential trial. A trial is fully
// deterministic given Params plus the dataset: the churn schedule of
// the shard path, the query sample, the metamorphic permutation and
// the rotating algorithm choices are all derived from Seed, so a
// failing trial replays bit-identically from its repro file.
type Params struct {
	// Seed drives every random choice inside the trial run.
	Seed int64
	// Profile names the generator distribution that produced the
	// dataset (informational in replays, where the dataset is stored).
	Profile string
	// K is the uniform ranking length.
	K int
	// Domain is the item-id space fresh rankings (shard churn, ad-hoc
	// queries) are drawn from.
	Domain int
	// Theta is the join threshold θ; the generator often engineers it
	// to land exactly on an integer Footrule distance of a real pair.
	Theta float64
	// ThetaC is the CL clustering threshold (0 = package default).
	ThetaC float64
	// Delta is the CL-P repartitioning threshold, forced low so that
	// posting lists actually split and Algorithm 3 executes.
	Delta int
	// Partitions is the engine shuffle partition count.
	Partitions int
	// Shards and Pivots size the dynamic index of the shard path.
	Shards, Pivots int
	// Churn is the number of upsert/delete operations applied to the
	// shard index before its queries are diffed against brute force.
	Churn int
}

// Profiles recognized by Generate. Each targets a failure family the
// literature's prefix-filter joins historically shipped bugs through.
const (
	ProfileUniform  = "uniform"  // uncorrelated rankings, mid-density domains
	ProfileZipf     = "zipf"     // skewed item frequencies → oversized posting lists
	ProfileClusters = "clusters" // near-duplicate clusters → dense result sets
	ProfileDupes    = "dupes"    // exact duplicates → distance-0 ties, dedup stress
	ProfileDisjoint = "disjoint" // disjoint domains → catch-all / zero-overlap regime
)

var profiles = []string{ProfileUniform, ProfileZipf, ProfileClusters, ProfileDupes, ProfileDisjoint}

// Generate derives one adversarial trial from a seed: a dataset drawn
// from a randomly chosen profile, a ranking length spanning k ∈ {1..25},
// and a threshold engineered half the time to land exactly on an
// integer Footrule distance realized by an actual pair — the boundary
// where off-by-one prefix sizes and threshold rounding flip membership.
func Generate(seed int64) (Params, []*rankings.Ranking) {
	rng := rand.New(rand.NewSource(seed))
	p := Params{Seed: seed}

	ks := []int{1, 2, 3, 4, 5, 7, 10, 15, 20, 25}
	p.K = ks[rng.Intn(len(ks))]
	n := 12 + rng.Intn(60)
	p.Profile = profiles[rng.Intn(len(profiles))]

	var rs []*rankings.Ranking
	switch p.Profile {
	case ProfileZipf:
		p.Domain = 2*p.K + rng.Intn(20*p.K)
		rs = testutil.ZipfDataset(rng, n, p.K, p.Domain, 1.1+1.4*rng.Float64())
	case ProfileClusters:
		p.Domain = 3*p.K + rng.Intn(8*p.K)
		rs = testutil.ClusteredDataset(rng, 3+rng.Intn(8), 1+rng.Intn(5), p.K, p.Domain)
	case ProfileDupes:
		p.Domain = 2*p.K + rng.Intn(6*p.K)
		rs = testutil.RandDataset(rng, n/2+1, p.K, p.Domain)
		rs = testutil.WithDuplicates(rng, rs, n/2)
	case ProfileDisjoint:
		blocks := 2 + rng.Intn(3)
		p.Domain = blocks * (p.K + rng.Intn(2*p.K+1))
		rs = testutil.DisjointDataset(rng, blocks, 1+n/blocks/2, p.K, p.Domain/blocks)
	default: // ProfileUniform
		p.Domain = p.K + rng.Intn(20*p.K)
		rs = testutil.RandDataset(rng, n, p.K, p.Domain)
	}

	p.Theta = chooseTheta(rng, rs, p.K)
	switch rng.Intn(3) {
	case 0:
		p.ThetaC = 0 // the package default (0.03)
	default:
		p.ThetaC = 0.12 * rng.Float64()
	}
	p.Delta = 1 + rng.Intn(4)
	p.Partitions = 1 + rng.Intn(4)
	p.Shards = 1 + rng.Intn(4)
	p.Pivots = 1 + rng.Intn(6)
	p.Churn = len(rs)
	return p, rs
}

// chooseTheta picks the trial threshold. Half the time it is engineered
// to equal d/(k(k+1)) for the exact unnormalized distance d of a real
// pair from the dataset, so the threshold lands precisely on the
// boundary between including and excluding that pair; the rest of the
// probability mass covers the exact corners θ = 0 and θ = 1 and the
// generic interior.
func chooseTheta(rng *rand.Rand, rs []*rankings.Ranking, k int) float64 {
	maxF := float64(rankings.MaxFootrule(k))
	switch r := rng.Float64(); {
	case r < 0.10:
		return 0
	case r < 0.20:
		return 1
	case r < 0.70 && len(rs) >= 2:
		// Boundary θ: the exact normalized distance of a sampled pair.
		i := rng.Intn(len(rs))
		j := rng.Intn(len(rs))
		if i == j {
			j = (j + 1) % len(rs)
		}
		d := rankings.Footrule(rs[i], rs[j])
		// Occasionally sit one integer below the realized distance, the
		// other side of the same boundary.
		if d > 0 && rng.Intn(3) == 0 {
			d--
		}
		return float64(d) / maxF
	default:
		return rng.Float64()
	}
}
