// Package server exposes the sharded dynamic index (internal/shard)
// over an HTTP/JSON API — the online serving counterpart of the
// offline batch joins. One Server owns an index and layers the serving
// concerns on top of it:
//
//   - request coalescing: concurrent /v1/search and /v1/knn requests
//     that arrive while a sweep is running are answered by the next
//     sweep together (internal/server/batch.go), so each shard is
//     locked and scanned once per batch;
//   - an LRU query cache whose entries are tagged with the per-shard
//     epoch vector, so any Insert/Delete invalidates affected results
//     implicitly (internal/server/cache.go);
//   - per-request deadlines (503/504 instead of piling up), bounded
//     request bodies, and graceful shutdown through Close;
//   - observability: every sweep is traced (spans per batch and per
//     shard, exported at /debug/trace), pivot-pruning filter counters
//     and per-endpoint latency histograms surface in /statusz.
//
// Endpoints:
//
//	POST /v1/search  {"items":[...]|"line":"1 2 3"|"id":N, "theta":0.2}
//	POST /v1/knn     {"items":[...]|"line":...|"id":N, "k":10}
//	POST /v1/insert  {"rankings":[{"id":1,"items":[...]}, ...]}
//	POST /v1/delete  {"ids":[...]}
//	POST /v1/join    {"rankings":[...], "theta":0.2}   (small ad-hoc self-join)
//	GET  /healthz    liveness probe
//	GET  /statusz    JSON status: shards, cache, filters, latency
//	GET  /debug/trace  Chrome trace JSON of the most recent sweep
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"rankjoin/internal/obs"
	"rankjoin/internal/ppjoin"
	"rankjoin/internal/rankings"
	"rankjoin/internal/shard"
)

// Config assembles a Server.
type Config struct {
	// Index is the serving index; nil builds a fresh default one.
	Index *shard.Index
	// CacheSize is the LRU query-cache capacity in entries (0 = 1024,
	// negative disables caching).
	CacheSize int
	// MaxBatch caps how many queued searches one sweep answers (0 = 64).
	MaxBatch int
	// RequestTimeout bounds each request (0 = 5s).
	RequestTimeout time.Duration
	// MaxJoinRankings caps the ad-hoc /v1/join input (0 = 2048).
	MaxJoinRankings int
	// MaxBodyBytes bounds request bodies (0 = 16 MiB).
	MaxBodyBytes int64
}

// Server is the rankserved request handler. Create with New, mount
// Handler, and Close when done.
type Server struct {
	idx      *shard.Index
	cache    *queryCache
	batch    *batcher
	timeout  time.Duration
	maxJoin  int
	maxBody  int64
	start    time.Time
	mux      *http.ServeMux
	requests map[string]*endpointStats

	traceMu   sync.Mutex
	lastTrace *obs.Tracer
}

// endpointStats tracks request count and latency for one endpoint.
type endpointStats struct {
	mu      sync.Mutex
	count   int64
	errors  int64
	latency obs.Histogram // microseconds
}

func (e *endpointStats) observe(d time.Duration, failed bool) {
	e.mu.Lock()
	e.count++
	if failed {
		e.errors++
	}
	e.mu.Unlock()
	e.latency.Observe(d.Microseconds())
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	idx := cfg.Index
	if idx == nil {
		idx = shard.New(shard.Config{})
	}
	cacheSize := cfg.CacheSize
	if cacheSize == 0 {
		cacheSize = 1024
	}
	timeout := cfg.RequestTimeout
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	maxJoin := cfg.MaxJoinRankings
	if maxJoin == 0 {
		maxJoin = 2048
	}
	maxBody := cfg.MaxBodyBytes
	if maxBody == 0 {
		maxBody = 16 << 20
	}
	s := &Server{
		idx:      idx,
		cache:    newQueryCache(cacheSize),
		timeout:  timeout,
		maxJoin:  maxJoin,
		maxBody:  maxBody,
		start:    time.Now(),
		mux:      http.NewServeMux(),
		requests: make(map[string]*endpointStats),
	}
	s.batch = newBatcher(idx, cfg.MaxBatch, s.storeTrace)
	s.route("/v1/search", http.MethodPost, s.handleSearch)
	s.route("/v1/knn", http.MethodPost, s.handleKNN)
	s.route("/v1/insert", http.MethodPost, s.handleInsert)
	s.route("/v1/delete", http.MethodPost, s.handleDelete)
	s.route("/v1/join", http.MethodPost, s.handleJoin)
	s.route("/healthz", http.MethodGet, s.handleHealthz)
	s.route("/statusz", http.MethodGet, s.handleStatusz)
	s.route("/debug/trace", http.MethodGet, s.handleTrace)
	return s
}

// Index returns the serving index (for preloading and tests).
func (s *Server) Index() *shard.Index { return s.idx }

// Handler returns the root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops the request batcher; in-flight requests receive errors.
func (s *Server) Close() { s.batch.close() }

func (s *Server) storeTrace(tr *obs.Tracer) {
	s.traceMu.Lock()
	s.lastTrace = tr
	s.traceMu.Unlock()
}

// route registers an instrumented handler: method check, body bound,
// deadline, request count + latency.
func (s *Server) route(path, method string, h func(http.ResponseWriter, *http.Request) error) {
	st := &endpointStats{}
	s.requests[path] = st
	s.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		if r.Method != method {
			w.Header().Set("Allow", method)
			writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use %s", method))
			return
		}
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
		defer cancel()
		start := time.Now()
		err := h(w, r.WithContext(ctx))
		st.observe(time.Since(start), err != nil)
	})
}

// httpError carries a status code out of a handler.
type httpError struct {
	status int
	err    error
}

func (e *httpError) Error() string { return e.err.Error() }

func badRequest(err error) error { return &httpError{status: http.StatusBadRequest, err: err} }

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()}) //nolint:errcheck
}

// finish maps a handler error onto the wire.
func finish(w http.ResponseWriter, err error) error {
	if err == nil {
		return nil
	}
	var he *httpError
	switch {
	case errors.As(err, &he):
		writeError(w, he.status, he.err)
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, errors.New("request deadline exceeded"))
	case errors.Is(err, errServerClosed):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, shard.ErrKMismatch), errors.Is(err, shard.ErrNilRanking):
		writeError(w, http.StatusBadRequest, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
	return err
}

func writeJSON(w http.ResponseWriter, v any) error {
	w.Header().Set("Content-Type", "application/json")
	return json.NewEncoder(w).Encode(v)
}

// --- request/response shapes ---

type rankingJSON struct {
	ID    int64           `json:"id"`
	Items []rankings.Item `json:"items"`
}

type queryRequest struct {
	Items []rankings.Item `json:"items,omitempty"`
	Line  string          `json:"line,omitempty"`
	ID    *int64          `json:"id,omitempty"`
	Theta *float64        `json:"theta,omitempty"`
	K     int             `json:"k,omitempty"`
}

type searchResponse struct {
	Hits   []shard.Neighbor `json:"hits"`
	Cached bool             `json:"cached"`
}

// parseQuery resolves the three accepted query spellings into a
// validated, indexed ranking plus the id to exclude from results
// (self-exclusion when querying by indexed id).
func (s *Server) parseQuery(req *queryRequest) (*rankings.Ranking, int64, error) {
	switch {
	case req.ID != nil:
		if len(req.Items) > 0 || req.Line != "" {
			return nil, 0, badRequest(errors.New("give exactly one of items, line, id"))
		}
		r, ok := s.idx.Get(*req.ID)
		if !ok {
			return nil, 0, &httpError{status: http.StatusNotFound,
				err: fmt.Errorf("no indexed ranking with id %d", *req.ID)}
		}
		return r, r.ID, nil
	case req.Line != "":
		if len(req.Items) > 0 {
			return nil, 0, badRequest(errors.New("give exactly one of items, line, id"))
		}
		q, err := rankings.ParseLine(req.Line, shard.NoExclude)
		if err != nil {
			return nil, 0, badRequest(err)
		}
		q.Index()
		return q, shard.NoExclude, nil
	case len(req.Items) > 0:
		q, err := rankings.New(shard.NoExclude, req.Items)
		if err != nil {
			return nil, 0, badRequest(err)
		}
		q.Index()
		return q, shard.NoExclude, nil
	default:
		return nil, 0, badRequest(errors.New("missing query: give items, line or id"))
	}
}

func (s *Server) checkQueryK(q *rankings.Ranking) error {
	if k := s.idx.K(); k != 0 && q.K() != k {
		return badRequest(fmt.Errorf("query k=%d, index k=%d", q.K(), k))
	}
	return nil
}

func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest(fmt.Errorf("bad request body: %w", err))
	}
	return nil
}

// --- endpoints ---

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) error {
	var req queryRequest
	if err := decode(r, &req); err != nil {
		return finish(w, err)
	}
	if req.Theta == nil {
		return finish(w, badRequest(errors.New("missing theta")))
	}
	theta := *req.Theta
	if theta < 0 || theta > 1 {
		return finish(w, badRequest(fmt.Errorf("theta %v out of [0,1]", theta)))
	}
	q, exclude, err := s.parseQuery(&req)
	if err != nil {
		return finish(w, err)
	}
	if err := s.checkQueryK(q); err != nil {
		return finish(w, err)
	}
	k := s.idx.K()
	if k == 0 {
		return writeJSON(w, searchResponse{Hits: []shard.Neighbor{}})
	}
	maxDist := rankings.Threshold(theta, k)
	return s.answer(r.Context(), w, shard.Query{R: q, MaxDist: maxDist, Exclude: exclude},
		cacheKey("s", q, maxDist, exclude))
}

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) error {
	var req queryRequest
	if err := decode(r, &req); err != nil {
		return finish(w, err)
	}
	if req.K <= 0 {
		return finish(w, badRequest(fmt.Errorf("k must be positive, got %d", req.K)))
	}
	q, exclude, err := s.parseQuery(&req)
	if err != nil {
		return finish(w, err)
	}
	if err := s.checkQueryK(q); err != nil {
		return finish(w, err)
	}
	if s.idx.K() == 0 {
		return writeJSON(w, searchResponse{Hits: []shard.Neighbor{}})
	}
	return s.answer(r.Context(), w, shard.Query{R: q, KNN: req.K, Exclude: exclude},
		cacheKey("k", q, req.K, exclude))
}

// answer serves a query through the cache and, on a miss, the batcher.
func (s *Server) answer(ctx context.Context, w http.ResponseWriter, q shard.Query, key string) error {
	epochs := s.idx.Epochs()
	if hits, ok := s.cache.get(key, epochs); ok {
		return writeJSON(w, searchResponse{Hits: nonNil(hits), Cached: true})
	}
	hits, err := s.batch.do(ctx, q)
	if err != nil {
		return finish(w, err)
	}
	s.cache.put(key, epochs, hits)
	return writeJSON(w, searchResponse{Hits: nonNil(hits)})
}

func nonNil(ns []shard.Neighbor) []shard.Neighbor {
	if ns == nil {
		return []shard.Neighbor{}
	}
	return ns
}

type insertRequest struct {
	Rankings []rankingJSON `json:"rankings"`
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) error {
	var req insertRequest
	if err := decode(r, &req); err != nil {
		return finish(w, err)
	}
	if len(req.Rankings) == 0 {
		return finish(w, badRequest(errors.New("missing rankings")))
	}
	tr := obs.NewTracer()
	span := tr.StartScope("serve/insert", obs.Int("rankings", int64(len(req.Rankings))))
	n := 0
	for _, rj := range req.Rankings {
		rk, err := rankings.New(rj.ID, rj.Items)
		if err != nil {
			span.End()
			s.storeTrace(tr)
			return finish(w, badRequest(err))
		}
		if err := s.idx.Insert(rk); err != nil {
			span.End()
			s.storeTrace(tr)
			return finish(w, err)
		}
		n++
	}
	span.End()
	s.storeTrace(tr)
	return writeJSON(w, map[string]any{"inserted": n, "size": s.idx.Len()})
}

type deleteRequest struct {
	IDs []int64 `json:"ids"`
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) error {
	var req deleteRequest
	if err := decode(r, &req); err != nil {
		return finish(w, err)
	}
	if len(req.IDs) == 0 {
		return finish(w, badRequest(errors.New("missing ids")))
	}
	n := 0
	for _, id := range req.IDs {
		if s.idx.Delete(id) {
			n++
		}
	}
	return writeJSON(w, map[string]any{"deleted": n, "size": s.idx.Len()})
}

type joinRequest struct {
	Rankings []rankingJSON `json:"rankings"`
	Theta    *float64      `json:"theta"`
}

type pairJSON struct {
	A    int64 `json:"a"`
	B    int64 `json:"b"`
	Dist int   `json:"dist"`
}

// handleJoin runs a small ad-hoc self-join over request-supplied
// rankings — the "try the join on my data" path; heavy joins belong in
// the offline pipelines (cmd/rankjoin).
func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) error {
	var req joinRequest
	if err := decode(r, &req); err != nil {
		return finish(w, err)
	}
	if req.Theta == nil || *req.Theta < 0 || *req.Theta > 1 {
		return finish(w, badRequest(errors.New("theta must be in [0,1]")))
	}
	if len(req.Rankings) == 0 {
		return finish(w, badRequest(errors.New("missing rankings")))
	}
	if len(req.Rankings) > s.maxJoin {
		return finish(w, &httpError{status: http.StatusRequestEntityTooLarge,
			err: fmt.Errorf("ad-hoc join capped at %d rankings, got %d", s.maxJoin, len(req.Rankings))})
	}
	rs := make([]*rankings.Ranking, 0, len(req.Rankings))
	k := 0
	for _, rj := range req.Rankings {
		rk, err := rankings.New(rj.ID, rj.Items)
		if err != nil {
			return finish(w, badRequest(err))
		}
		if k == 0 {
			k = rk.K()
		} else if rk.K() != k {
			return finish(w, badRequest(fmt.Errorf("mixed ranking lengths %d and %d", k, rk.K())))
		}
		rk.Index()
		rs = append(rs, rk)
	}
	tr := obs.NewTracer()
	span := tr.StartScope("serve/join", obs.Int("rankings", int64(len(rs))))
	var st ppjoin.Stats
	pairs := ppjoin.BruteForce(rs, rankings.Threshold(*req.Theta, k), &st)
	pairs = rankings.DedupPairs(pairs)
	span.SetInt("pairs", int64(len(pairs)))
	span.End()
	s.storeTrace(tr)
	out := make([]pairJSON, len(pairs))
	for i, p := range pairs {
		out[i] = pairJSON{A: p.A, B: p.B, Dist: p.Dist}
	}
	return writeJSON(w, map[string]any{"pairs": out})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) error {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, err := w.Write([]byte("ok\n"))
	return err
}

// Status is the /statusz document; also returned by Status() for
// in-process consumers (expvar publishing, tests).
type Status struct {
	UptimeSeconds float64                   `json:"uptime_s"`
	K             int                       `json:"k"`
	Size          int                       `json:"size"`
	Shards        []shard.Stats             `json:"shards"`
	ShardSizes    string                    `json:"shard_sizes"`
	Filters       obs.FiltersSnapshot       `json:"filters"`
	Cache         CacheStatus               `json:"cache"`
	Batch         BatchStatus               `json:"batch"`
	Requests      map[string]EndpointStatus `json:"requests"`
	LastTrace     TraceStatus               `json:"last_trace"`
}

// CacheStatus summarizes the query cache.
type CacheStatus struct {
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	Entries  int   `json:"entries"`
	Capacity int   `json:"capacity"`
}

// BatchStatus summarizes request coalescing.
type BatchStatus struct {
	Sweeps    int64 `json:"sweeps"`
	Coalesced int64 `json:"coalesced_requests"`
	MaxBatch  int   `json:"max_batch"`
	P50Size   int64 `json:"p50_size"`
	MaxSize   int64 `json:"max_size"`
}

// EndpointStatus summarizes one endpoint's traffic.
type EndpointStatus struct {
	Count  int64 `json:"count"`
	Errors int64 `json:"errors"`
	P50us  int64 `json:"p50_us"`
	P99us  int64 `json:"p99_us"`
	Maxus  int64 `json:"max_us"`
}

// TraceStatus reports on the most recent request/sweep trace.
type TraceStatus struct {
	Present bool   `json:"present"`
	Valid   bool   `json:"valid"`
	Error   string `json:"error,omitempty"`
}

// Status assembles the current server status.
func (s *Server) Status() Status {
	shardStats := s.idx.Stats()
	// Cardinalities is the cheap per-shard size accessor (ints only, no
	// ranking copies); it also saves the extra per-shard locking round a
	// separate idx.Len() would take.
	var sizes obs.Histogram
	size := 0
	for _, c := range s.idx.Cardinalities() {
		size += c
		sizes.Observe(int64(c))
	}
	hits, misses := s.cache.stats()
	batchSnap := s.batch.batchSizes.Snapshot()
	st := Status{
		UptimeSeconds: time.Since(s.start).Seconds(),
		K:             s.idx.K(),
		Size:          size,
		Shards:        shardStats,
		ShardSizes:    sizes.Snapshot().String(),
		Filters:       s.idx.Filters().Snapshot(),
		Cache: CacheStatus{
			Hits: hits, Misses: misses,
			Entries: s.cache.len(), Capacity: s.cache.capacity(),
		},
		Batch: BatchStatus{
			Sweeps:    s.batch.sweeps.Load(),
			Coalesced: s.batch.coalesced.Load(),
			MaxBatch:  s.batch.maxBatch,
			P50Size:   batchSnap.Quantile(0.50),
			MaxSize:   batchSnap.Max,
		},
		Requests: make(map[string]EndpointStatus, len(s.requests)),
	}
	for path, es := range s.requests {
		es.mu.Lock()
		count, errs := es.count, es.errors
		es.mu.Unlock()
		lat := es.latency.Snapshot()
		st.Requests[path] = EndpointStatus{
			Count: count, Errors: errs,
			P50us: lat.Quantile(0.50), P99us: lat.Quantile(0.99), Maxus: lat.Max,
		}
	}
	s.traceMu.Lock()
	tr := s.lastTrace
	s.traceMu.Unlock()
	if tr != nil {
		st.LastTrace.Present = true
		if err := tr.Validate(); err != nil {
			st.LastTrace.Error = err.Error()
		} else {
			st.LastTrace.Valid = true
		}
	}
	return st
}

func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) error {
	return writeJSON(w, s.Status())
}

func (s *Server) handleTrace(w http.ResponseWriter, _ *http.Request) error {
	s.traceMu.Lock()
	tr := s.lastTrace
	s.traceMu.Unlock()
	if tr == nil {
		return finish(w, &httpError{status: http.StatusNotFound,
			err: errors.New("no request traced yet")})
	}
	w.Header().Set("Content-Type", "application/json")
	return tr.WriteChromeTrace(w)
}
