// Package server exposes the sharded dynamic index (internal/shard)
// over an HTTP/JSON API — the online serving counterpart of the
// offline batch joins. One Server owns an index and layers the serving
// concerns on top of it:
//
//   - request coalescing: concurrent /v1/search and /v1/knn requests
//     that arrive while a sweep is running are answered by the next
//     sweep together (internal/server/batch.go), so each shard is
//     locked and scanned once per batch;
//   - an LRU query cache whose entries are tagged with the per-shard
//     epoch vector, so any Insert/Delete invalidates affected results
//     implicitly (internal/server/cache.go);
//   - per-request deadlines (503/504 instead of piling up), bounded
//     request bodies, and graceful shutdown through Close;
//   - telemetry (internal/server/telemetry.go, metrics.go): every
//     request carries an X-Request-ID (honored or minted, echoed on
//     the response); every Nth request per endpoint is head-sampled
//     into a full span trace, and every request over the slow
//     threshold is tail-sampled retroactively; a bounded ring of
//     recent + slowest traces serves /debug/traces and
//     /debug/trace/{id}; Prometheus text exposition at /metrics;
//     rolling-window QPS and latency quantiles in /statusz; structured
//     request logs via log/slog.
//
// Endpoints:
//
//	POST /v1/search  {"items":[...]|"line":"1 2 3"|"id":N, "theta":0.2}
//	POST /v1/knn     {"items":[...]|"line":...|"id":N, "k":10}
//	POST /v1/insert  {"rankings":[{"id":1,"items":[...]}, ...]}
//	POST /v1/delete  {"ids":[...]}
//	POST /v1/join    {"rankings":[...], "theta":0.2}   (small ad-hoc self-join)
//	GET  /healthz    liveness probe
//	GET  /statusz    JSON status: shards, cache, filters, latency, windows
//	GET  /metrics    Prometheus text exposition
//	GET  /debug/traces      list of retained request traces
//	GET  /debug/trace/{id}  Chrome trace JSON for one request ID
//	GET  /debug/trace       Chrome trace JSON of the most recent retained trace
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"rankjoin/internal/cluster"
	"rankjoin/internal/obs"
	"rankjoin/internal/ppjoin"
	"rankjoin/internal/rankings"
	"rankjoin/internal/shard"
	"rankjoin/internal/wal"
)

// Config assembles a Server.
type Config struct {
	// Index is the serving index; nil builds a fresh default one.
	Index *shard.Index
	// CacheSize is the LRU query-cache capacity in entries (0 = 1024,
	// negative disables caching).
	CacheSize int
	// MaxBatch caps how many queued searches one sweep answers (0 = 64).
	MaxBatch int
	// RequestTimeout bounds each request (0 = 5s).
	RequestTimeout time.Duration
	// MaxJoinRankings caps the ad-hoc /v1/join input (0 = 2048).
	MaxJoinRankings int
	// MaxBodyBytes bounds request bodies (0 = 16 MiB).
	MaxBodyBytes int64
	// Logger receives structured request and lifecycle logs; nil
	// discards them.
	Logger *slog.Logger
	// TraceSampleEvery head-samples every Nth request per endpoint into
	// a full span trace (0 = 64, negative disables head sampling).
	TraceSampleEvery int
	// SlowThreshold tail-samples and Warn-logs every request at least
	// this slow (0 = 250ms, negative disables tail sampling).
	SlowThreshold time.Duration
	// TraceRingSize bounds the retained recent and slow traces, each
	// (0 = 32).
	TraceRingSize int
	// WindowInterval is the rolling-window snapshot cadence behind the
	// /statusz QPS and last-minute quantiles (0 = 5s, negative disables
	// the window loop — windowed stats then degrade to since-boot).
	WindowInterval time.Duration
	// Cluster, when non-nil, makes this server one peer of a rankjoin
	// cluster: /v1/search and /v1/knn scatter-gather across all peers,
	// /v1/insert and /v1/delete route rankings to their ring owner,
	// /v1/join runs as a distributed SPMD join, and the peer-local
	// /v1/cluster/* endpoints are registered. Nil serves single-node.
	Cluster *cluster.Cluster
	// WAL, when non-nil, is the index's attached write-ahead log
	// manager: /v1/cluster/replicate serves epoch deltas from its
	// segments, and /metrics + /statusz export its durability series.
	// The caller owns its lifecycle (Open/Recover/Attach/Close); the
	// server only reads from it.
	WAL *wal.Manager
	// Replica, when non-nil, puts the server in follower mode: writes
	// are rejected with 403 (read-only), and the replica's lag and sync
	// counters are exported. The caller owns its lifecycle.
	Replica *Replica
}

// Server is the rankserved request handler. Create with New, mount
// Handler, and Close when done.
type Server struct {
	idx *shard.Index
	// baseCtx is the server's lifecycle root: hooks and other
	// non-request callbacks that need a context log against it instead
	// of minting their own.
	baseCtx context.Context
	cache   *queryCache
	batch   *batcher
	timeout  time.Duration
	maxJoin  int
	maxBody  int64
	start    time.Time
	mux      *http.ServeMux
	requests map[string]*endpointStats
	windows  map[string]*obs.Window

	logger      *slog.Logger
	sampleEvery int64 // head-sample every Nth request per endpoint; 0 = off
	slowThresh  time.Duration
	traces      *obs.TraceRing

	winInterval time.Duration
	winStop     chan struct{}
	winDone     chan struct{}

	ridPrefix string
	ridSeq    atomic.Uint64

	sampledTotal atomic.Int64
	slowTotal    atomic.Int64
	rePivotTotal atomic.Int64
	rePivotDur   obs.Histogram // microseconds

	cluster *cluster.Cluster // nil when single-node
	wal     *wal.Manager     // nil without durability
	replica *Replica         // nil unless follower
}

// endpointStats tracks request admission, count and latency for one
// endpoint. started is the head-sampling counter, bumped on admission;
// count/errors move under mu after the handler returns.
type endpointStats struct {
	started atomic.Int64
	mu      sync.Mutex
	count   int64
	errors  int64
	latency obs.Histogram // microseconds
}

//ranklint:allocfree
func (e *endpointStats) observe(d time.Duration, failed bool) {
	e.mu.Lock()
	e.count++
	if failed {
		e.errors++
	}
	e.mu.Unlock()
	e.latency.Observe(d.Microseconds())
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	idx := cfg.Index
	if idx == nil {
		idx = shard.New(shard.Config{})
	}
	cacheSize := cfg.CacheSize
	if cacheSize == 0 {
		cacheSize = 1024
	}
	timeout := cfg.RequestTimeout
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	maxJoin := cfg.MaxJoinRankings
	if maxJoin == 0 {
		maxJoin = 2048
	}
	maxBody := cfg.MaxBodyBytes
	if maxBody == 0 {
		maxBody = 16 << 20
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	sampleEvery := int64(cfg.TraceSampleEvery)
	switch {
	case sampleEvery == 0:
		sampleEvery = defaultTraceSampleEvery
	case sampleEvery < 0:
		sampleEvery = 0
	}
	slowThresh := cfg.SlowThreshold
	switch {
	case slowThresh == 0:
		slowThresh = defaultSlowThreshold
	case slowThresh < 0:
		slowThresh = 0
	}
	ringSize := cfg.TraceRingSize
	if ringSize <= 0 {
		ringSize = defaultTraceRingSize
	}
	winInterval := cfg.WindowInterval
	if winInterval == 0 {
		winInterval = defaultWindowInterval
	}
	now := time.Now()
	s := &Server{
		idx:         idx,
		baseCtx:     context.Background(),
		cache:       newQueryCache(cacheSize),
		timeout:     timeout,
		maxJoin:     maxJoin,
		maxBody:     maxBody,
		start:       now,
		mux:         http.NewServeMux(),
		requests:    make(map[string]*endpointStats),
		windows:     make(map[string]*obs.Window),
		logger:      logger,
		sampleEvery: sampleEvery,
		slowThresh:  slowThresh,
		traces:      obs.NewTraceRing(ringSize),
		winInterval: winInterval,
		ridPrefix:   fmt.Sprintf("%08x-", uint32(now.UnixNano())),
		cluster:     cfg.Cluster,
		wal:         cfg.WAL,
		replica:     cfg.Replica,
	}
	s.batch = newBatcher(idx, cfg.MaxBatch)
	idx.SetRePivotHook(func(e shard.RePivotEvent) {
		s.rePivotTotal.Add(1)
		s.rePivotDur.Observe(e.Dur.Microseconds())
		s.logger.LogAttrs(s.baseCtx, slog.LevelInfo, "re-pivot",
			slog.Int("shard", e.Shard), slog.Int("size", e.Size),
			slog.Int("pivots", e.Pivots), slog.Int("churn", e.Churn),
			slog.Duration("dur", e.Dur))
	})
	s.route("/v1/search", http.MethodPost, s.handleSearch)
	s.route("/v1/knn", http.MethodPost, s.handleKNN)
	s.route("/v1/insert", http.MethodPost, s.handleInsert)
	s.route("/v1/delete", http.MethodPost, s.handleDelete)
	s.route("/v1/join", http.MethodPost, s.handleJoin)
	s.route("/healthz", http.MethodGet, s.handleHealthz)
	s.route("/statusz", http.MethodGet, s.handleStatusz)
	s.route("/metrics", http.MethodGet, s.handleMetrics)
	s.route("/debug/traces", http.MethodGet, s.handleTraces)
	s.route("/debug/trace", http.MethodGet, s.handleTrace)
	s.route("/debug/trace/{id}", http.MethodGet, s.handleTraceByID)
	if s.cluster != nil {
		s.route(cluster.PathSearch, http.MethodPost, s.handleClusterSearch)
		s.route(cluster.PathGet, http.MethodPost, s.handleClusterGet)
		s.route(cluster.PathInsert, http.MethodPost, s.handleClusterInsert)
		s.route(cluster.PathDelete, http.MethodPost, s.handleClusterDelete)
		s.route(cluster.PathShuffle, http.MethodPost, s.handleClusterShuffle)
		s.route(cluster.PathJoin, http.MethodPost, s.handleClusterJoin)
		s.route(cluster.PathInfo, http.MethodPost, s.handleClusterInfo)
	}
	// The replication endpoint needs no peer ring: a single leader with
	// a WAL (or even without one — full snapshots still work) can feed
	// followers, and a follower can chain further followers.
	s.route(cluster.PathReplicate, http.MethodPost, s.handleReplicate)
	if winInterval > 0 {
		s.winStop = make(chan struct{})
		s.winDone = make(chan struct{})
		go s.windowLoop()
	}
	return s
}

// Index returns the serving index (for preloading and tests).
func (s *Server) Index() *shard.Index { return s.idx }

// Handler returns the root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops the request batcher and the telemetry window loop;
// in-flight requests receive errors.
func (s *Server) Close() {
	s.idx.SetRePivotHook(nil)
	if s.winStop != nil {
		close(s.winStop)
		<-s.winDone
		s.winStop = nil
	}
	s.batch.close()
}

// route registers an instrumented handler: method check, body bound,
// deadline, request ID, head/tail trace sampling, request count +
// latency, structured logs. The telemetry on the unsampled path is
// allocation-free — two atomics and a histogram observe.
func (s *Server) route(path, method string, h func(http.ResponseWriter, *http.Request) error) {
	st := &endpointStats{}
	s.requests[path] = st
	s.windows[path] = obs.NewWindow(windowSpan, time.Now())
	spanName := "http " + path
	s.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		// Mint the request id before any rejection: even a 405 should
		// be correlatable by the id the client sent (or we minted).
		rid := s.requestID(r)
		w.Header().Set("X-Request-Id", rid)
		if r.Method != method {
			w.Header().Set("Allow", method)
			writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use %s", method))
			return
		}
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
		defer cancel()
		n := st.started.Add(1)
		sampled := s.sampleEvery > 0 && (n-1)%s.sampleEvery == 0
		var tr *obs.Tracer
		var root *obs.Span
		if sampled {
			tr = obs.NewTracer()
			root = tr.StartScope(spanName, obs.String("request_id", rid))
			ctx = context.WithValue(ctx, spanKey{}, root)
		}
		start := time.Now()
		err := h(w, r.WithContext(ctx))
		dur := time.Since(start)
		root.End()
		st.observe(dur, err != nil)
		slow := s.slowThresh > 0 && dur >= s.slowThresh
		if sampled || slow {
			s.retainTrace(spanName, rid, start, dur, tr, sampled, slow)
		}
		s.logRequest(r.Context(), path, rid, statusOf(err), dur, slow)
	})
}

// httpError carries a status code out of a handler.
type httpError struct {
	status int
	err    error
}

func (e *httpError) Error() string { return e.err.Error() }

var errNoSuchTrace = errors.New("no such trace retained")

// errReadOnly rejects writes on a follower replica: its state is a
// copy of the leader's, so a local mutation would fork the epoch
// history and be silently overwritten by the next sync.
var errReadOnly = errors.New("follower is read-only; send writes to the leader")

func badRequest(err error) error { return &httpError{status: http.StatusBadRequest, err: err} }

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()}) //nolint:errcheck
}

// statusOf maps a handler error to the HTTP status it produces — the
// single source of truth shared by the wire mapping (finish) and the
// request logs.
//
//ranklint:allocfree
func statusOf(err error) int {
	if err == nil {
		return http.StatusOK
	}
	var he *httpError
	switch {
	case errors.As(err, &he):
		return he.status
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, errServerClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, errReadOnly):
		return http.StatusForbidden
	case errors.Is(err, shard.ErrKMismatch), errors.Is(err, shard.ErrNilRanking):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// finish maps a handler error onto the wire.
func finish(w http.ResponseWriter, err error) error {
	if err == nil {
		return nil
	}
	msg := err
	var he *httpError
	switch {
	case errors.As(err, &he):
		msg = he.err
	case errors.Is(err, context.DeadlineExceeded):
		msg = errors.New("request deadline exceeded")
	}
	writeError(w, statusOf(err), msg)
	return err
}

func writeJSON(w http.ResponseWriter, v any) error {
	w.Header().Set("Content-Type", "application/json")
	return json.NewEncoder(w).Encode(v)
}

// --- request/response shapes ---

type rankingJSON struct {
	ID    int64           `json:"id"`
	Items []rankings.Item `json:"items"`
}

type queryRequest struct {
	Items []rankings.Item `json:"items,omitempty"`
	Line  string          `json:"line,omitempty"`
	ID    *int64          `json:"id,omitempty"`
	Theta *float64        `json:"theta,omitempty"`
	K     int             `json:"k,omitempty"`
}

type searchResponse struct {
	Hits   []shard.Neighbor `json:"hits"`
	Cached bool             `json:"cached"`
	// Partial marks a clustered answer that is missing the shards of
	// the peers named in PeersFailed (degraded, not failed).
	Partial     bool     `json:"partial,omitempty"`
	PeersFailed []string `json:"peers_failed,omitempty"`
}

// parseQuery resolves the three accepted query spellings into a
// validated, indexed ranking plus the id to exclude from results
// (self-exclusion when querying by indexed id).
func (s *Server) parseQuery(req *queryRequest) (*rankings.Ranking, int64, error) {
	switch {
	case req.ID != nil:
		if len(req.Items) > 0 || req.Line != "" {
			return nil, 0, badRequest(errors.New("give exactly one of items, line, id"))
		}
		r, ok := s.idx.Get(*req.ID)
		if !ok {
			return nil, 0, &httpError{status: http.StatusNotFound,
				err: fmt.Errorf("no indexed ranking with id %d", *req.ID)}
		}
		return r, r.ID, nil
	case req.Line != "":
		if len(req.Items) > 0 {
			return nil, 0, badRequest(errors.New("give exactly one of items, line, id"))
		}
		q, err := rankings.ParseLine(req.Line, shard.NoExclude)
		if err != nil {
			return nil, 0, badRequest(err)
		}
		q.Index()
		return q, shard.NoExclude, nil
	case len(req.Items) > 0:
		q, err := rankings.New(shard.NoExclude, req.Items)
		if err != nil {
			return nil, 0, badRequest(err)
		}
		q.Index()
		return q, shard.NoExclude, nil
	default:
		return nil, 0, badRequest(errors.New("missing query: give items, line or id"))
	}
}

func (s *Server) checkQueryK(q *rankings.Ranking) error {
	if k := s.idx.K(); k != 0 && q.K() != k {
		return badRequest(fmt.Errorf("query k=%d, index k=%d", q.K(), k))
	}
	return nil
}

func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return &httpError{
				status: http.StatusRequestEntityTooLarge,
				err:    fmt.Errorf("request body exceeds %d bytes", mbe.Limit),
			}
		}
		return badRequest(fmt.Errorf("bad request body: %w", err))
	}
	return nil
}

// --- endpoints ---

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) error {
	var req queryRequest
	if err := decode(r, &req); err != nil {
		return finish(w, err)
	}
	if req.Theta == nil {
		return finish(w, badRequest(errors.New("missing theta")))
	}
	theta := *req.Theta
	if theta < 0 || theta > 1 {
		return finish(w, badRequest(fmt.Errorf("theta %v out of [0,1]", theta)))
	}
	q, exclude, err := s.resolveClusterQuery(r.Context(), &req)
	if err != nil {
		return finish(w, err)
	}
	if err := s.checkQueryK(q); err != nil {
		return finish(w, err)
	}
	if s.clustered() {
		// The query's own k is the cluster-wide k (inserts enforce
		// uniformity on every peer), so each shard derives the same
		// cutoff. The epoch-tagged query cache only sees the local
		// index, so clustered answers bypass it.
		maxDist := rankings.Threshold(theta, q.K())
		return s.scatter(r.Context(), w, shard.Query{R: q, MaxDist: maxDist, Exclude: exclude}, theta)
	}
	k := s.idx.K()
	if k == 0 {
		return writeJSON(w, searchResponse{Hits: []shard.Neighbor{}})
	}
	maxDist := rankings.Threshold(theta, k)
	return s.answer(r.Context(), w, shard.Query{R: q, MaxDist: maxDist, Exclude: exclude},
		cacheKey("s", q, maxDist, exclude))
}

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) error {
	var req queryRequest
	if err := decode(r, &req); err != nil {
		return finish(w, err)
	}
	if req.K <= 0 {
		return finish(w, badRequest(fmt.Errorf("k must be positive, got %d", req.K)))
	}
	q, exclude, err := s.resolveClusterQuery(r.Context(), &req)
	if err != nil {
		return finish(w, err)
	}
	if err := s.checkQueryK(q); err != nil {
		return finish(w, err)
	}
	if s.clustered() {
		return s.scatter(r.Context(), w, shard.Query{R: q, KNN: req.K, Exclude: exclude}, 0)
	}
	if s.idx.K() == 0 {
		return writeJSON(w, searchResponse{Hits: []shard.Neighbor{}})
	}
	return s.answer(r.Context(), w, shard.Query{R: q, KNN: req.K, Exclude: exclude},
		cacheKey("k", q, req.K, exclude))
}

// answer serves a query through the cache and, on a miss, the batcher.
// A head-sampled request's root span rides the context into the
// batcher, where the sweep that answers it records its shard tasks as
// children.
func (s *Server) answer(ctx context.Context, w http.ResponseWriter, q shard.Query, key string) error {
	epochs := s.idx.Epochs()
	if hits, ok := s.cache.get(key, epochs); ok {
		ctxSpan(ctx).SetAttr("cache", "hit")
		return writeJSON(w, searchResponse{Hits: nonNil(hits), Cached: true})
	}
	hits, err := s.batch.do(ctx, q, ctxSpan(ctx))
	if err != nil {
		return finish(w, err)
	}
	s.cache.put(key, epochs, hits)
	return writeJSON(w, searchResponse{Hits: nonNil(hits)})
}

func nonNil(ns []shard.Neighbor) []shard.Neighbor {
	if ns == nil {
		return []shard.Neighbor{}
	}
	return ns
}

type insertRequest struct {
	Rankings []rankingJSON `json:"rankings"`
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) error {
	var req insertRequest
	if err := decode(r, &req); err != nil {
		return finish(w, err)
	}
	if s.replica != nil {
		return finish(w, errReadOnly)
	}
	if len(req.Rankings) == 0 {
		return finish(w, badRequest(errors.New("missing rankings")))
	}
	sp := ctxSpan(r.Context()).StartChild("serve/insert",
		obs.Int("rankings", int64(len(req.Rankings))))
	defer sp.End()
	rs := make([]*rankings.Ranking, 0, len(req.Rankings))
	for _, rj := range req.Rankings {
		rk, err := rankings.New(rj.ID, rj.Items)
		if err != nil {
			return finish(w, badRequest(err))
		}
		rs = append(rs, rk)
	}
	if s.clustered() {
		return s.clusterInsert(r.Context(), w, rs)
	}
	n := 0
	for _, rk := range rs {
		if err := s.idx.Insert(rk); err != nil {
			return finish(w, err)
		}
		n++
	}
	sp.SetInt("inserted", int64(n))
	return writeJSON(w, map[string]any{"inserted": n, "size": s.idx.Len()})
}

type deleteRequest struct {
	IDs []int64 `json:"ids"`
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) error {
	var req deleteRequest
	if err := decode(r, &req); err != nil {
		return finish(w, err)
	}
	if s.replica != nil {
		return finish(w, errReadOnly)
	}
	if len(req.IDs) == 0 {
		return finish(w, badRequest(errors.New("missing ids")))
	}
	sp := ctxSpan(r.Context()).StartChild("serve/delete",
		obs.Int("ids", int64(len(req.IDs))))
	defer sp.End()
	if s.clustered() {
		return s.clusterDelete(r.Context(), w, req.IDs)
	}
	n := 0
	for _, id := range req.IDs {
		ok, err := s.idx.Delete(id)
		if err != nil {
			return finish(w, fmt.Errorf("delete %d: %w", id, err))
		}
		if ok {
			n++
		}
	}
	sp.SetInt("deleted", int64(n))
	return writeJSON(w, map[string]any{"deleted": n, "size": s.idx.Len()})
}

type joinRequest struct {
	Rankings []rankingJSON `json:"rankings"`
	Theta    *float64      `json:"theta"`
}

type pairJSON struct {
	A    int64 `json:"a"`
	B    int64 `json:"b"`
	Dist int   `json:"dist"`
}

// handleJoin runs a small ad-hoc self-join over request-supplied
// rankings — the "try the join on my data" path; heavy joins belong in
// the offline pipelines (cmd/rankjoin).
func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) error {
	var req joinRequest
	if err := decode(r, &req); err != nil {
		return finish(w, err)
	}
	if req.Theta == nil || *req.Theta < 0 || *req.Theta > 1 {
		return finish(w, badRequest(errors.New("theta must be in [0,1]")))
	}
	if len(req.Rankings) == 0 {
		return finish(w, badRequest(errors.New("missing rankings")))
	}
	if len(req.Rankings) > s.maxJoin {
		return finish(w, &httpError{status: http.StatusRequestEntityTooLarge,
			err: fmt.Errorf("ad-hoc join capped at %d rankings, got %d", s.maxJoin, len(req.Rankings))})
	}
	rs := make([]*rankings.Ranking, 0, len(req.Rankings))
	k := 0
	for _, rj := range req.Rankings {
		rk, err := rankings.New(rj.ID, rj.Items)
		if err != nil {
			return finish(w, badRequest(err))
		}
		if k == 0 {
			k = rk.K()
		} else if rk.K() != k {
			return finish(w, badRequest(fmt.Errorf("mixed ranking lengths %d and %d", k, rk.K())))
		}
		rk.Index()
		rs = append(rs, rk)
	}
	sp := ctxSpan(r.Context()).StartChild("serve/join",
		obs.Int("rankings", int64(len(rs))))
	defer sp.End()
	if s.clustered() {
		return s.clusterJoin(r.Context(), w, rs, *req.Theta)
	}
	var st ppjoin.Stats
	pairs := ppjoin.BruteForce(rs, rankings.Threshold(*req.Theta, k), &st)
	pairs = rankings.DedupPairs(pairs)
	sp.SetInt("pairs", int64(len(pairs)))
	out := make([]pairJSON, len(pairs))
	for i, p := range pairs {
		out[i] = pairJSON{A: p.A, B: p.B, Dist: p.Dist}
	}
	return writeJSON(w, map[string]any{"pairs": out})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) error {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, err := w.Write([]byte("ok\n"))
	return err
}

// Status is the /statusz document; also returned by Status() for
// in-process consumers (expvar publishing, tests).
type Status struct {
	UptimeSeconds float64                   `json:"uptime_s"`
	K             int                       `json:"k"`
	Size          int                       `json:"size"`
	Shards        []shard.Stats             `json:"shards"`
	ShardSizes    string                    `json:"shard_sizes"`
	Filters       obs.FiltersSnapshot       `json:"filters"`
	Cache         CacheStatus               `json:"cache"`
	Batch         BatchStatus               `json:"batch"`
	Requests      map[string]EndpointStatus `json:"requests"`
	Windows       map[string]WindowStatus   `json:"windows"`
	RePivots      RePivotStatus             `json:"re_pivots"`
	Traces        TracesStatus              `json:"traces"`
	LastTrace     TraceStatus               `json:"last_trace"`
	// Cluster is present only when this server is a cluster peer.
	Cluster *cluster.Status `json:"cluster,omitempty"`
	// WAL is present only when a write-ahead log is attached.
	WAL *WALStatus `json:"wal,omitempty"`
	// Replica is present only in follower mode.
	Replica *ReplicaStatus `json:"replica,omitempty"`
}

// WALStatus summarizes durability for /statusz.
type WALStatus struct {
	Records        int64    `json:"records"`
	AppendedBytes  int64    `json:"appended_bytes"`
	DurableBytes   int64    `json:"durable_bytes"`
	Fsyncs         int64    `json:"fsyncs"`
	FsyncP50us     int64    `json:"fsync_p50_us"`
	FsyncP99us     int64    `json:"fsync_p99_us"`
	Snapshots      int64    `json:"snapshots"`
	SnapshotErrors int64    `json:"snapshot_errors"`
	SnapshotAgeS   float64  `json:"snapshot_age_s"`
	SnapshotEpochs []uint64 `json:"snapshot_epochs"`
}

// CacheStatus summarizes the query cache.
type CacheStatus struct {
	Hits     int64   `json:"hits"`
	Misses   int64   `json:"misses"`
	HitRatio float64 `json:"hit_ratio"`
	Entries  int     `json:"entries"`
	Capacity int     `json:"capacity"`
}

// BatchStatus summarizes request coalescing.
type BatchStatus struct {
	Sweeps    int64   `json:"sweeps"`
	Coalesced int64   `json:"coalesced_requests"`
	MaxBatch  int     `json:"max_batch"`
	MeanSize  float64 `json:"mean_size"`
	P50Size   int64   `json:"p50_size"`
	MaxSize   int64   `json:"max_size"`
}

// EndpointStatus summarizes one endpoint's cumulative traffic.
type EndpointStatus struct {
	Count  int64 `json:"count"`
	Errors int64 `json:"errors"`
	P50us  int64 `json:"p50_us"`
	P99us  int64 `json:"p99_us"`
	Maxus  int64 `json:"max_us"`
}

// WindowStatus summarizes one endpoint's rolling-window traffic: the
// current request rate and recent latency quantiles over (roughly) the
// last windowSpan.
type WindowStatus struct {
	WindowSeconds float64 `json:"window_s"`
	Count         int64   `json:"count"`
	QPS           float64 `json:"qps"`
	P50us         int64   `json:"p50_us"`
	P99us         int64   `json:"p99_us"`
}

// RePivotStatus summarizes background re-pivot activity.
type RePivotStatus struct {
	Events int64 `json:"events"`
	P50us  int64 `json:"p50_us"`
	Maxus  int64 `json:"max_us"`
}

// TracesStatus summarizes trace sampling and retention.
type TracesStatus struct {
	SampledTotal int64 `json:"sampled_total"`
	SlowTotal    int64 `json:"slow_total"`
	Recent       int   `json:"recent"`
	Slow         int   `json:"slow"`
}

// TraceStatus reports on the most recent retained trace.
type TraceStatus struct {
	Present bool   `json:"present"`
	ID      string `json:"id,omitempty"`
	Valid   bool   `json:"valid"`
	Error   string `json:"error,omitempty"`
}

// Status assembles the current server status.
func (s *Server) Status() Status {
	shardStats := s.idx.Stats()
	// Cardinalities is the cheap per-shard size accessor (ints only, no
	// ranking copies); it also saves the extra per-shard locking round a
	// separate idx.Len() would take.
	var sizes obs.Histogram
	size := 0
	for _, c := range s.idx.Cardinalities() {
		size += c
		sizes.Observe(int64(c))
	}
	hits, misses := s.cache.stats()
	hitRatio := 0.0
	if total := hits + misses; total > 0 {
		hitRatio = float64(hits) / float64(total)
	}
	batchSnap := s.batch.batchSizes.Snapshot()
	rpSnap := s.rePivotDur.Snapshot()
	st := Status{
		UptimeSeconds: time.Since(s.start).Seconds(),
		K:             s.idx.K(),
		Size:          size,
		Shards:        shardStats,
		ShardSizes:    sizes.Snapshot().String(),
		Filters:       s.idx.Filters().Snapshot(),
		Cache: CacheStatus{
			Hits: hits, Misses: misses, HitRatio: hitRatio,
			Entries: s.cache.len(), Capacity: s.cache.capacity(),
		},
		Batch: BatchStatus{
			Sweeps:    s.batch.sweeps.Load(),
			Coalesced: s.batch.coalesced.Load(),
			MaxBatch:  s.batch.maxBatch,
			MeanSize:  batchSnap.Mean(),
			P50Size:   batchSnap.Quantile(0.50),
			MaxSize:   batchSnap.Max,
		},
		RePivots: RePivotStatus{
			Events: s.rePivotTotal.Load(),
			P50us:  rpSnap.Quantile(0.50),
			Maxus:  rpSnap.Max,
		},
		Traces: TracesStatus{
			SampledTotal: s.sampledTotal.Load(),
			SlowTotal:    s.slowTotal.Load(),
			Recent:       len(s.traces.Recent()),
			Slow:         len(s.traces.Slow()),
		},
		Requests: make(map[string]EndpointStatus, len(s.requests)),
		Windows:  make(map[string]WindowStatus, len(s.requests)),
	}
	if s.cluster != nil {
		cs := s.cluster.StatusSnapshot()
		st.Cluster = &cs
	}
	if s.wal != nil {
		ws := s.wal.Stats()
		st.WAL = &WALStatus{
			Records:        ws.Records,
			AppendedBytes:  ws.AppendedBytes,
			DurableBytes:   ws.DurableBytes,
			Fsyncs:         ws.Fsyncs,
			FsyncP50us:     ws.FsyncMicros.Quantile(0.50),
			FsyncP99us:     ws.FsyncMicros.Quantile(0.99),
			Snapshots:      ws.Snapshots,
			SnapshotErrors: ws.SnapshotErrors,
			SnapshotAgeS:   ws.SnapshotAge,
			SnapshotEpochs: ws.SnapshotEpochs,
		}
	}
	if s.replica != nil {
		rs := s.replica.Status()
		st.Replica = &rs
	}
	now := time.Now()
	for path, es := range s.requests {
		es.mu.Lock()
		count, errs := es.count, es.errors
		es.mu.Unlock()
		lat := es.latency.Snapshot()
		st.Requests[path] = EndpointStatus{
			Count: count, Errors: errs,
			P50us: lat.Quantile(0.50), P99us: lat.Quantile(0.99), Maxus: lat.Max,
		}
		elapsed, delta := s.windows[path].Delta(now, lat)
		qps := 0.0
		if secs := elapsed.Seconds(); secs > 0 {
			qps = float64(delta.Count) / secs
		}
		st.Windows[path] = WindowStatus{
			WindowSeconds: elapsed.Seconds(),
			Count:         delta.Count,
			QPS:           qps,
			P50us:         delta.Quantile(0.50),
			P99us:         delta.Quantile(0.99),
		}
	}
	if recent := s.traces.Recent(); len(recent) > 0 {
		rec := recent[0]
		st.LastTrace.Present = true
		st.LastTrace.ID = rec.ID
		if err := rec.Tracer.Validate(); err != nil {
			st.LastTrace.Error = err.Error()
		} else {
			st.LastTrace.Valid = true
		}
	}
	return st
}

func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) error {
	return writeJSON(w, s.Status())
}
