package server

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"rankjoin/internal/rankings"
	"rankjoin/internal/shard"
	"rankjoin/internal/testutil"
)

// get issues a GET with optional headers and returns status + body.
func get(t *testing.T, url string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestRequestIDEcho pins the X-Request-Id contract: a client-supplied
// ID is honored verbatim, an absent one is minted, and distinct
// requests mint distinct IDs.
func TestRequestIDEcho(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, _ := get(t, ts.URL+"/healthz", map[string]string{"X-Request-ID": "my-rid-42"})
	if got := resp.Header.Get("X-Request-Id"); got != "my-rid-42" {
		t.Fatalf("honored request ID: got %q, want my-rid-42", got)
	}

	r1, _ := get(t, ts.URL+"/healthz", nil)
	r2, _ := get(t, ts.URL+"/healthz", nil)
	id1, id2 := r1.Header.Get("X-Request-Id"), r2.Header.Get("X-Request-Id")
	if id1 == "" || id2 == "" {
		t.Fatalf("minted request IDs empty: %q, %q", id1, id2)
	}
	if id1 == id2 {
		t.Fatalf("minted request IDs collide: %q", id1)
	}
}

// chromeTrace is the subset of the Chrome trace-event JSON the tests
// inspect.
type chromeTrace struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string            `json:"name"`
		Ph   string            `json:"ph"`
		Args map[string]string `json:"args"`
	} `json:"traceEvents"`
}

func fetchTrace(t *testing.T, base, id string) chromeTrace {
	t.Helper()
	resp, body := get(t, base+"/debug/trace/"+id, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/trace/%s: status %d (%s)", id, resp.StatusCode, body)
	}
	var ct chromeTrace
	if err := json.Unmarshal(body, &ct); err != nil {
		t.Fatalf("GET /debug/trace/%s: not Chrome trace JSON: %v", id, err)
	}
	if len(ct.TraceEvents) == 0 {
		t.Fatalf("GET /debug/trace/%s: no trace events", id)
	}
	return ct
}

// TestTailSampling pins the slow-request path with head sampling off:
// every request over the threshold is retained retroactively and
// retrievable by its X-Request-ID as a Chrome trace.
func TestTailSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	rs := testutil.RandDataset(rng, 20, 6, 60)
	s, ts := newTestServer(t, Config{
		TraceSampleEvery: -1, // head sampling off: any retained trace is a tail sample
		SlowThreshold:    time.Nanosecond,
	})
	insertRankings(t, ts.URL, rs)

	searchHits(t, ts.URL, map[string]any{"items": rs[0].Items, "theta": 0.3})
	// searchHits posts without a request ID; redo with one we control.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/search",
		strings.NewReader(fmt.Sprintf(`{"id":%d,"theta":0.3}`, rs[1].ID)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "slow-rid-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search: status %d", resp.StatusCode)
	}

	ct := fetchTrace(t, ts.URL, "slow-rid-1")
	found := false
	for _, ev := range ct.TraceEvents {
		if ev.Args["request_id"] == "slow-rid-1" && ev.Args["tail_sampled"] == "true" {
			found = true
		}
	}
	if !found {
		t.Errorf("tail-sampled trace lacks request_id/tail_sampled args: %+v", ct.TraceEvents)
	}

	st := s.Status()
	if st.Traces.SampledTotal != 0 {
		t.Errorf("head-sampled %d traces with sampling disabled", st.Traces.SampledTotal)
	}
	if st.Traces.SlowTotal < 2 {
		t.Errorf("slow_total = %d, want >= 2 (1ns threshold catches everything)", st.Traces.SlowTotal)
	}

	// /debug/traces lists it under "slow".
	_, body := get(t, ts.URL+"/debug/traces", nil)
	var listing struct {
		Recent []traceSummary `json:"recent"`
		Slow   []traceSummary `json:"slow"`
	}
	if err := json.Unmarshal(body, &listing); err != nil {
		t.Fatal(err)
	}
	var hit *traceSummary
	for i := range listing.Slow {
		if listing.Slow[i].ID == "slow-rid-1" {
			hit = &listing.Slow[i]
		}
	}
	if hit == nil {
		t.Fatalf("/debug/traces slow list misses slow-rid-1: %+v", listing.Slow)
	}
	if !hit.Slow || hit.Sampled {
		t.Errorf("slow-rid-1 flags = slow:%v sampled:%v, want slow:true sampled:false", hit.Slow, hit.Sampled)
	}
}

// TestHeadSampling pins the every-Nth head sampler: with N=2, requests
// 1 and 3 to an endpoint carry full span traces (retrievable by ID),
// requests 2 and 4 do not.
func TestHeadSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	rs := testutil.RandDataset(rng, 20, 6, 60)
	s, ts := newTestServer(t, Config{
		TraceSampleEvery: 2,
		SlowThreshold:    -1, // tail sampling off: any retained trace is a head sample
	})
	for _, r := range rs {
		if err := s.Index().Insert(r); err != nil {
			t.Fatal(err)
		}
	}

	for i := 0; i < 4; i++ {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/search",
			strings.NewReader(fmt.Sprintf(`{"id":%d,"theta":0.3}`, rs[i].ID)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Request-ID", fmt.Sprintf("head-rid-%d", i))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("search %d: status %d", i, resp.StatusCode)
		}
	}

	st := s.Status()
	if st.Traces.SampledTotal != 2 {
		t.Errorf("sampled_total = %d after 4 requests at N=2, want 2", st.Traces.SampledTotal)
	}
	if st.Traces.SlowTotal != 0 {
		t.Errorf("slow_total = %d with tail sampling off, want 0", st.Traces.SlowTotal)
	}
	if !st.LastTrace.Present || !st.LastTrace.Valid {
		t.Errorf("last trace present=%v valid=%v (%s), want a valid retained trace",
			st.LastTrace.Present, st.LastTrace.Valid, st.LastTrace.Error)
	}

	ct := fetchTrace(t, ts.URL, "head-rid-0")
	var spans []string
	for _, ev := range ct.TraceEvents {
		if ev.Ph == "X" {
			spans = append(spans, ev.Name)
		}
	}
	joined := strings.Join(spans, ",")
	if !strings.Contains(joined, "http /v1/search") || !strings.Contains(joined, "serve/sweep") {
		t.Errorf("head-sampled trace spans %v lack the request root and the sweep child", spans)
	}
	for _, miss := range []string{"head-rid-1", "head-rid-3"} {
		if resp, _ := get(t, ts.URL+"/debug/trace/"+miss, nil); resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET /debug/trace/%s: status %d, want 404 (request was not sampled)", miss, resp.StatusCode)
		}
	}
}

// TestWindowedStatusz pins the rolling-window statistics: after the
// window loop has ticked at least once, a burst of traffic shows up in
// the windowed count and QPS for its endpoint.
func TestWindowedStatusz(t *testing.T) {
	s, ts := newTestServer(t, Config{WindowInterval: 2 * time.Millisecond})

	// Let the loop record a pre-burst baseline snapshot.
	time.Sleep(20 * time.Millisecond)
	const burst = 25
	for i := 0; i < burst; i++ {
		if resp, _ := get(t, ts.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz: status %d", resp.StatusCode)
		}
	}

	st := s.Status()
	win, ok := st.Windows["/healthz"]
	if !ok {
		t.Fatalf("statusz windows missing /healthz: %+v", st.Windows)
	}
	if win.Count != burst {
		t.Errorf("windowed count = %d, want %d (baseline snapshot predates the burst)", win.Count, burst)
	}
	if win.QPS <= 0 {
		t.Errorf("windowed QPS = %v, want > 0", win.QPS)
	}
	if win.WindowSeconds <= 0 {
		t.Errorf("window elapsed = %v, want > 0", win.WindowSeconds)
	}
	if win.P99us < win.P50us {
		t.Errorf("windowed p99 %dus < p50 %dus", win.P99us, win.P50us)
	}
	cum := st.Requests["/healthz"]
	if cum.Count < win.Count {
		t.Errorf("cumulative count %d < windowed count %d", cum.Count, win.Count)
	}
}

// TestTelemetryUnderTraffic hammers every telemetry read endpoint
// concurrently with live mutation and query traffic — the test the
// race detector leans on to prove /statusz, /metrics and the trace
// endpoints take no unsynchronized reads of serving state.
func TestTelemetryUnderTraffic(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	const k = 8
	rs := testutil.ClusteredDataset(rng, 30, 4, k, 20*k)
	s, ts := newTestServer(t, Config{
		TraceSampleEvery: 2, // sample aggressively so tracing races surface
		SlowThreshold:    time.Millisecond,
		WindowInterval:   time.Millisecond,
	})
	insertRankings(t, ts.URL, rs)

	const (
		writers  = 3
		scrapers = 3
		iters    = 40
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < iters; i++ {
				switch i % 4 {
				case 0:
					q := rs[rng.Intn(len(rs))]
					post(t, ts.URL+"/v1/search", map[string]any{"items": q.Items, "theta": 0.25})
				case 1:
					q := rs[rng.Intn(len(rs))]
					post(t, ts.URL+"/v1/knn", map[string]any{"items": q.Items, "k": 5})
				case 2:
					r := testutil.RandRanking(rng, int64(1000+w*iters+i), k, 20*k)
					post(t, ts.URL+"/v1/insert", map[string]any{"rankings": toJSON([]*rankings.Ranking{r})})
				case 3:
					post(t, ts.URL+"/v1/delete", map[string]any{"ids": []int64{int64(1000 + w*iters + i - 1)}})
				}
			}
		}(w)
	}
	for g := 0; g < scrapers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (g + i) % 4 {
				case 0:
					resp, _ := get(t, ts.URL+"/statusz", nil)
					if resp.StatusCode != http.StatusOK {
						t.Errorf("statusz: status %d", resp.StatusCode)
					}
				case 1:
					resp, _ := get(t, ts.URL+"/metrics", nil)
					if resp.StatusCode != http.StatusOK {
						t.Errorf("metrics: status %d", resp.StatusCode)
					}
				case 2:
					get(t, ts.URL+"/debug/traces", nil)
				case 3:
					get(t, ts.URL+"/debug/trace", nil) // may 404 before first retention
				}
			}
		}(g)
	}
	wg.Wait()

	// The page must still parse strictly after the storm, and the
	// filter ledger must still conserve.
	parseProm(t, scrapeMetrics(t, ts.URL))
	st := s.Status()
	if !st.Filters.Conserved() {
		t.Errorf("filter ledger violated conservation under concurrent load: %+v", st.Filters)
	}
	if st.Traces.SampledTotal == 0 {
		t.Errorf("no traces head-sampled at N=2 under load")
	}
}

// TestUnsampledSweepAllocationFree pins the tentpole's zero-overhead
// contract at the batcher: a sweep with no head-sampled caller in the
// batch creates no span, no tracer, and — once the arena is warm and
// the queries hit nothing — allocates nothing at all.
func TestUnsampledSweepAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	const k = 8
	// Keep shards below the re-pivot threshold so no background rebuild
	// allocates mid-measurement.
	rs := testutil.RandDataset(rng, 10, k, 40)
	idx := shard.New(shard.Config{Shards: 2, PivotsPerShard: 4, Seed: 1})
	for _, r := range rs {
		if err := idx.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	b := newBatcher(idx, 8)
	defer b.close()

	// A query disjoint from the dataset at distance 0: the sweep runs end
	// to end but emits no hits, so the response copy is nil and the whole
	// run is arena-only.
	q, err := rankings.New(shard.NoExclude, testutil.RandRanking(rng, 0, k, 40).Items)
	if err != nil {
		t.Fatal(err)
	}
	q.Index()
	calls := make([]*searchCall, 4)
	for i := range calls {
		calls[i] = &searchCall{
			q:    shard.Query{R: q, MaxDist: 0, Exclude: shard.NoExclude},
			resp: make(chan searchResult, 1),
		}
	}
	run := func() {
		b.run(calls)
		for _, c := range calls {
			r := <-c.resp
			if r.err != nil {
				t.Fatal(r.err)
			}
			if r.hits != nil {
				t.Fatalf("expected no hits, got %v", r.hits)
			}
		}
	}
	run() // warm the arena to this batch shape
	if avg := testing.AllocsPerRun(100, run); avg != 0 {
		t.Errorf("unsampled sweep: %.2f allocs/op in steady state, want 0", avg)
	}
}

// TestObservePathAllocationFree pins the per-request accounting the
// route wrapper does on every (unsampled) request: endpoint stats and
// status mapping must not allocate.
func TestObservePathAllocationFree(t *testing.T) {
	st := &endpointStats{}
	st.observe(time.Millisecond, false) // warm the histogram
	if avg := testing.AllocsPerRun(100, func() {
		st.started.Add(1)
		st.observe(123*time.Microsecond, false)
		if statusOf(nil) != http.StatusOK {
			t.Fatal("statusOf(nil)")
		}
	}); avg != 0 {
		t.Errorf("per-request accounting: %.2f allocs/op, want 0", avg)
	}
}
