package server

import (
	"container/list"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"rankjoin/internal/rankings"
	"rankjoin/internal/shard"
)

// queryCache is the LRU result cache for /v1/search and /v1/knn. Each
// entry is tagged with the per-shard epoch vector observed *before* the
// sweep that produced it; a lookup only hits when every shard's epoch
// still matches, so any Insert/Delete (which bumps its shard's epoch)
// invalidates affected entries implicitly — there is no explicit
// invalidation path to get wrong. Tagging before the sweep is the
// conservative side: a mutation racing the sweep makes the entry look
// stale on its next lookup even if the sweep already saw the mutation.
type queryCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recent
	m   map[string]*list.Element

	hits   atomic.Int64
	misses atomic.Int64
}

type cacheEntry struct {
	key    string
	epochs []uint64
	hits   []shard.Neighbor
}

// newQueryCache builds a cache of the given capacity; cap <= 0 returns
// nil, and a nil *queryCache is a valid always-miss sink.
func newQueryCache(cap int) *queryCache {
	if cap <= 0 {
		return nil
	}
	return &queryCache{cap: cap, ll: list.New(), m: make(map[string]*list.Element, cap)}
}

// cacheKey renders a canonical key for a query. Rankings with equal
// items and equal parameters share a key regardless of how the request
// spelled them.
func cacheKey(kind string, q *rankings.Ranking, param int, exclude int64) string {
	var b strings.Builder
	b.Grow(16 + 8*len(q.Items))
	b.WriteString(kind)
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(param))
	b.WriteByte('|')
	b.WriteString(strconv.FormatInt(exclude, 10))
	for _, it := range q.Items {
		b.WriteByte('|')
		b.WriteString(strconv.FormatInt(int64(it), 10))
	}
	return b.String()
}

// get returns the cached neighbors when present and epoch-current.
func (c *queryCache) get(key string, epochs []uint64) ([]shard.Neighbor, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	el, ok := c.m[key]
	if ok {
		e := el.Value.(*cacheEntry)
		if epochsEqual(e.epochs, epochs) {
			c.ll.MoveToFront(el)
			hits := e.hits
			c.mu.Unlock()
			c.hits.Add(1)
			return hits, true
		}
		// Stale under the current epochs: drop it now so the map does
		// not accumulate dead entries for churned shards.
		c.ll.Remove(el)
		delete(c.m, key)
	}
	c.mu.Unlock()
	c.misses.Add(1)
	return nil, false
}

// put stores a result tagged with the epoch vector captured before the
// sweep.
func (c *queryCache) put(key string, epochs []uint64, hits []shard.Neighbor) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		e := el.Value.(*cacheEntry)
		e.epochs = epochs
		e.hits = hits
		c.ll.MoveToFront(el)
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, epochs: epochs, hits: hits})
	for c.ll.Len() > c.cap {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.m, el.Value.(*cacheEntry).key)
	}
}

func (c *queryCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

func (c *queryCache) capacity() int {
	if c == nil {
		return 0
	}
	return c.cap
}

func (c *queryCache) stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}

func epochsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
