package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"

	"rankjoin/internal/rankings"
	"rankjoin/internal/shard"
	"rankjoin/internal/testutil"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func post(t *testing.T, url string, body any) (int, map[string]json.RawMessage) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s: undecodable response: %v", url, err)
	}
	return resp.StatusCode, out
}

func searchHits(t *testing.T, base string, body any) ([]shard.Neighbor, bool) {
	t.Helper()
	code, out := post(t, base+"/v1/search", body)
	if code != http.StatusOK {
		t.Fatalf("search returned %d: %s", code, out["error"])
	}
	var hits []shard.Neighbor
	if err := json.Unmarshal(out["hits"], &hits); err != nil {
		t.Fatal(err)
	}
	var cached bool
	if raw, ok := out["cached"]; ok {
		json.Unmarshal(raw, &cached) //nolint:errcheck
	}
	return hits, cached
}

func insertRankings(t *testing.T, base string, rs []*rankings.Ranking) {
	t.Helper()
	body := map[string]any{"rankings": toJSON(rs)}
	code, out := post(t, base+"/v1/insert", body)
	if code != http.StatusOK {
		t.Fatalf("insert returned %d: %s", code, out["error"])
	}
}

func toJSON(rs []*rankings.Ranking) []rankingJSON {
	out := make([]rankingJSON, len(rs))
	for i, r := range rs {
		out[i] = rankingJSON{ID: r.ID, Items: r.Items}
	}
	return out
}

func bruteNeighbors(rs []*rankings.Ranking, q *rankings.Ranking, maxDist int, exclude int64) []shard.Neighbor {
	var out []shard.Neighbor
	for _, r := range rs {
		if r.ID == exclude {
			continue
		}
		if d := rankings.Footrule(q, r); d <= maxDist {
			out = append(out, shard.Neighbor{ID: r.ID, Dist: d})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	return out
}

func sameNeighbors(a, b []shard.Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestEndToEnd drives the full API over HTTP and cross-checks every
// search answer against brute-force Footrule on the live dataset.
func TestEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	rs := testutil.ClusteredDataset(rng, 30, 4, 8, 100)
	_, ts := newTestServer(t, Config{})
	insertRankings(t, ts.URL, rs)

	const theta = 0.25
	maxDist := rankings.Threshold(theta, 8)
	for _, q := range rs[:20] {
		hits, _ := searchHits(t, ts.URL, map[string]any{"id": q.ID, "theta": theta})
		if want := bruteNeighbors(rs, q, maxDist, q.ID); !sameNeighbors(hits, want) {
			t.Fatalf("query %d: got %v want %v", q.ID, hits, want)
		}
	}

	// Ad-hoc items query: no self-exclusion.
	q := rs[0]
	hits, _ := searchHits(t, ts.URL, map[string]any{"items": q.Items, "theta": theta})
	if want := bruteNeighbors(rs, q, maxDist, shard.NoExclude); !sameNeighbors(hits, want) {
		t.Fatalf("items query: got %v want %v", hits, want)
	}
	// Line-format query.
	line := ""
	for i, it := range q.Items {
		if i > 0 {
			line += " "
		}
		line += fmt.Sprint(it)
	}
	lineHits, _ := searchHits(t, ts.URL, map[string]any{"line": line, "theta": theta})
	if !sameNeighbors(lineHits, hits) {
		t.Fatalf("line query diverged: %v vs %v", lineHits, hits)
	}

	// kNN over HTTP agrees with the range oracle's prefix.
	code, out := post(t, ts.URL+"/v1/knn", map[string]any{"id": q.ID, "k": 5})
	if code != http.StatusOK {
		t.Fatalf("knn returned %d", code)
	}
	var knn []shard.Neighbor
	if err := json.Unmarshal(out["hits"], &knn); err != nil {
		t.Fatal(err)
	}
	all := bruteNeighbors(rs, q, rankings.MaxFootrule(8), q.ID)
	if want := all[:5]; !sameNeighbors(knn, want) {
		t.Fatalf("knn: got %v want %v", knn, want)
	}

	// Delete shrinks the result set.
	victim := hits[0].ID
	code, _ = post(t, ts.URL+"/v1/delete", map[string]any{"ids": []int64{victim}})
	if code != http.StatusOK {
		t.Fatalf("delete returned %d", code)
	}
	after, _ := searchHits(t, ts.URL, map[string]any{"items": q.Items, "theta": theta})
	for _, h := range after {
		if h.ID == victim {
			t.Fatalf("deleted ranking %d still returned", victim)
		}
	}

	// Ad-hoc join agrees with itself at tiny scale.
	code, out = post(t, ts.URL+"/v1/join", map[string]any{
		"rankings": toJSON(rs[:20]), "theta": theta,
	})
	if code != http.StatusOK {
		t.Fatalf("join returned %d: %s", code, out["error"])
	}
	var pairs []pairJSON
	if err := json.Unmarshal(out["pairs"], &pairs); err != nil {
		t.Fatal(err)
	}
	wantPairs := 0
	for i := 0; i < 20; i++ {
		for j := i + 1; j < 20; j++ {
			if rankings.Footrule(rs[i], rs[j]) <= maxDist {
				wantPairs++
			}
		}
	}
	if len(pairs) != wantPairs {
		t.Fatalf("join pairs = %d, want %d", len(pairs), wantPairs)
	}

	// Health and status.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", resp.StatusCode, err)
	}
	resp.Body.Close()
	var st Status
	resp, err = http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Size != len(rs)-1 || st.K != 8 {
		t.Fatalf("statusz size/k = %d/%d, want %d/8", st.Size, st.K, len(rs)-1)
	}
	if st.Filters.Generated == 0 || !st.Filters.Conserved() {
		t.Fatalf("statusz filters bad: %+v", st.Filters)
	}
	if !st.LastTrace.Present || !st.LastTrace.Valid {
		t.Fatalf("statusz last trace invalid: %+v", st.LastTrace)
	}

	// The exported sweep trace parses as Chrome trace JSON with events.
	resp, err = http.Get(ts.URL + "/debug/trace")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/trace: %v %v", resp.StatusCode, err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&trace); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(trace.TraceEvents) == 0 {
		t.Fatal("debug/trace exported no events")
	}
}

// TestCacheInvalidation: a repeated query must be served from cache,
// and any insert/delete must invalidate it (per shard epoch).
func TestCacheInvalidation(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	rs := []*rankings.Ranking{
		rankings.MustNew(1, []rankings.Item{1, 2, 3, 4, 5}),
		rankings.MustNew(2, []rankings.Item{1, 2, 3, 5, 4}),
	}
	insertRankings(t, ts.URL, rs)
	body := map[string]any{"items": []int{1, 2, 3, 4, 5}, "theta": 0.2}

	hits1, cached1 := searchHits(t, ts.URL, body)
	if cached1 {
		t.Fatal("first query claimed cached")
	}
	hits2, cached2 := searchHits(t, ts.URL, body)
	if !cached2 || !sameNeighbors(hits1, hits2) {
		t.Fatalf("second query cached=%v hits=%v, want cached copy of %v", cached2, hits2, hits1)
	}
	h, m := s.cache.stats()
	if h != 1 || m != 1 {
		t.Fatalf("cache stats hits=%d misses=%d, want 1/1", h, m)
	}

	// Insert a new neighbor: the same query must recompute and see it.
	insertRankings(t, ts.URL, []*rankings.Ranking{
		rankings.MustNew(3, []rankings.Item{2, 1, 3, 4, 5}),
	})
	hits3, cached3 := searchHits(t, ts.URL, body)
	if cached3 {
		t.Fatal("query after insert still served from cache")
	}
	if len(hits3) != len(hits1)+1 {
		t.Fatalf("hits after insert = %v, want one more than %v", hits3, hits1)
	}

	// Delete invalidates too.
	post(t, ts.URL+"/v1/delete", map[string]any{"ids": []int64{3}})
	hits4, cached4 := searchHits(t, ts.URL, body)
	if cached4 || !sameNeighbors(hits4, hits1) {
		t.Fatalf("hits after delete = %v cached=%v, want fresh %v", hits4, cached4, hits1)
	}

	// A delete that hits nothing is a pure no-op: no shard epoch moves,
	// so the warm cache entry must survive. (Before the write-path
	// sweep, the phantom epoch bump evicted every cached answer for the
	// id's shard.)
	if _, cached := searchHits(t, ts.URL, body); !cached {
		t.Fatal("warm-up query not cached")
	}
	code, out := post(t, ts.URL+"/v1/delete", map[string]any{"ids": []int64{999_999}})
	if code != http.StatusOK {
		t.Fatalf("miss delete returned %d: %s", code, out["error"])
	}
	var deleted int
	if err := json.Unmarshal(out["deleted"], &deleted); err != nil || deleted != 0 {
		t.Fatalf("miss delete reported deleted=%d (err %v), want 0", deleted, err)
	}
	hits5, cached5 := searchHits(t, ts.URL, body)
	if !cached5 || !sameNeighbors(hits5, hits1) {
		t.Fatalf("missed delete evicted the cache: cached=%v hits=%v", cached5, hits5)
	}
}

// TestValidationErrors: malformed requests get 4xx, never 5xx.
func TestValidationErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	insertRankings(t, ts.URL, []*rankings.Ranking{
		rankings.MustNew(1, []rankings.Item{1, 2, 3}),
	})
	cases := []struct {
		path string
		body any
		want int
	}{
		{"/v1/search", map[string]any{"items": []int{1, 2, 3}}, http.StatusBadRequest},                                  // missing theta
		{"/v1/search", map[string]any{"items": []int{1, 2, 3}, "theta": 7.0}, http.StatusBadRequest},                    // theta range
		{"/v1/search", map[string]any{"theta": 0.2}, http.StatusBadRequest},                                             // no query
		{"/v1/search", map[string]any{"items": []int{1, 1, 2}, "theta": 0.2}, http.StatusBadRequest},                    // duplicate item
		{"/v1/search", map[string]any{"items": []int{1, 2}, "theta": 0.2}, http.StatusBadRequest},                       // k mismatch
		{"/v1/search", map[string]any{"id": 99, "theta": 0.2}, http.StatusNotFound},                                     // unknown id
		{"/v1/knn", map[string]any{"items": []int{1, 2, 3}}, http.StatusBadRequest},                                     // missing k
		{"/v1/insert", map[string]any{}, http.StatusBadRequest},                                                         // no rankings
		{"/v1/insert", map[string]any{"rankings": []map[string]any{{"id": 9}}}, http.StatusBadRequest},                  // empty ranking
		{"/v1/delete", map[string]any{}, http.StatusBadRequest},                                                         // no ids
		{"/v1/join", map[string]any{"rankings": []map[string]any{{"id": 1, "items": []int{1}}}}, http.StatusBadRequest}, // no theta
	}
	for _, c := range cases {
		code, _ := post(t, ts.URL+c.path, c.body)
		if code != c.want {
			t.Errorf("%s %v: code %d, want %d", c.path, c.body, code, c.want)
		}
	}
	// Wrong method.
	resp, err := http.Get(ts.URL + "/v1/search")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/search = %d, want 405", resp.StatusCode)
	}
}

// TestConcurrentServe exercises concurrent insert/delete/search HTTP
// traffic (the -race target for the serving layer) and verifies the
// quiesced state serves brute-force-correct results.
func TestConcurrentServe(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxBatch: 16})
	rng := rand.New(rand.NewSource(51))
	base := testutil.RandDataset(rng, 100, 6, 60)
	insertRankings(t, ts.URL, base)

	const writers, readers, ops = 3, 5, 60
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(60 + w)))
			for i := 0; i < ops; i++ {
				id := int64(1000*(w+1) + i)
				r := testutil.RandRanking(rng, id, 6, 60)
				code, out := post(t, ts.URL+"/v1/insert",
					map[string]any{"rankings": toJSON([]*rankings.Ranking{r})})
				if code != http.StatusOK {
					t.Errorf("insert %d: %d %s", id, code, out["error"])
					return
				}
				if i%3 == 0 {
					post(t, ts.URL+"/v1/delete", map[string]any{"ids": []int64{id}})
				}
			}
		}(w)
	}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(70 + rd)))
			for i := 0; i < ops; i++ {
				q := testutil.RandRanking(rng, -1, 6, 60)
				if i%2 == 0 {
					searchHits(t, ts.URL, map[string]any{"items": q.Items, "theta": 0.3})
				} else {
					post(t, ts.URL+"/v1/knn", map[string]any{"items": q.Items, "k": 3})
				}
			}
		}(rd)
	}
	wg.Wait()

	// Quiesced correctness against the live snapshot.
	live, _ := s.Index().Snapshot()
	maxDist := rankings.Threshold(0.3, 6)
	for _, q := range base[:10] {
		hits, _ := searchHits(t, ts.URL, map[string]any{"items": q.Items, "theta": 0.3})
		if want := bruteNeighbors(live, q, maxDist, shard.NoExclude); !sameNeighbors(hits, want) {
			t.Fatalf("post-quiescence query diverged: got %v want %v", hits, want)
		}
	}
	st := s.Status()
	if st.Batch.Sweeps == 0 {
		t.Fatal("no sweeps recorded")
	}
	if !st.Filters.Conserved() {
		t.Fatalf("filters not conserved: %+v", st.Filters)
	}
}
