package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"rankjoin/internal/rankings"
)

// fuzzServer is shared across fuzz iterations: the daemon is
// long-lived in production, so state accumulated by earlier (possibly
// successful) fuzz inputs is part of the attack surface.
var (
	fuzzOnce sync.Once
	fuzzSrv  *Server
)

func sharedFuzzServer() *Server {
	fuzzOnce.Do(func() {
		fuzzSrv = New(Config{CacheSize: 64, MaxBatch: 8})
		for _, r := range []*rankings.Ranking{
			rankings.MustNew(1, []rankings.Item{1, 2, 3, 4, 5}),
			rankings.MustNew(2, []rankings.Item{5, 4, 3, 2, 1}),
		} {
			if err := fuzzSrv.Index().Insert(r); err != nil {
				panic(err)
			}
		}
	})
	return fuzzSrv
}

// FuzzAPI throws arbitrary bodies at every mutating/query endpoint: the
// daemon must neither panic nor answer 5xx to malformed input (the only
// 5xx the API can emit are shutdown and deadline, neither of which a
// body can cause).
func FuzzAPI(f *testing.F) {
	seeds := []string{
		`{"items":[1,2,3,4,5],"theta":0.2}`,
		`{"line":"1 2 3 4 5","theta":0.9}`,
		`{"id":1,"theta":0.5}`,
		`{"items":[1,2,3,4,5],"k":3}`,
		`{"rankings":[{"id":7,"items":[9,8,7,6,5]}]}`,
		`{"ids":[1,2,3]}`,
		`{"rankings":[{"id":1,"items":[1,2]},{"id":2,"items":[2,1]}],"theta":0.3}`,
		`{"theta":1e308}`,
		`{"items":[2147483647,-2147483648],"theta":0.1}`,
		`{"items":[1,1,1],"theta":0.1}`,
		`{`, `null`, `[]`, `"x"`, `{"items":"nope","theta":0}`,
		`{"id":-9223372036854775808,"theta":0}`,
		strings.Repeat(`{"items":[1],`, 50),
	}
	paths := []string{"/v1/search", "/v1/knn", "/v1/insert", "/v1/delete", "/v1/join"}
	for _, s := range seeds {
		for i := range paths {
			f.Add(i, s)
		}
	}
	f.Fuzz(func(t *testing.T, pathIdx int, body string) {
		s := sharedFuzzServer()
		path := paths[((pathIdx%len(paths))+len(paths))%len(paths)]
		req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		if rec.Code >= http.StatusInternalServerError {
			t.Fatalf("%s %q: status %d body %s", path, body, rec.Code, rec.Body.String())
		}
	})
}
