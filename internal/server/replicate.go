package server

// The replication plane: a follower polls its leader's
// /v1/cluster/replicate with its per-shard epoch vector; the leader
// answers, per shard, with whichever is cheaper and available —
// nothing (epochs equal), the WAL records above the follower's epoch
// (contiguity-verified against the leader's segments), or a full
// epoch-consistent shard snapshot (bootstrap, history below the
// compaction floor, or a follower that is somehow ahead, e.g. after
// the leader lost its disk). The shard epoch is the only cursor in the
// protocol, which is what PR-level invariant "one epoch per mutation"
// buys: catch-up is a contiguous replay, and "follower at the same
// epoch vector answers identically" is checkable.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"rankjoin/internal/cluster"
	"rankjoin/internal/rankings"
	"rankjoin/internal/shard"
	"rankjoin/internal/wal"
)

// replicateRequest is the follower's poll. Epochs is its per-shard
// epoch vector; empty means "I have nothing" (bootstrap). Probe asks
// for the response header (NumShards, K) without any shard payloads —
// the shape handshake a booting follower sizes its index from.
type replicateRequest struct {
	Epochs []uint64 `json:"epochs,omitempty"`
	Probe  bool     `json:"probe,omitempty"`
}

// wireRecord is one WAL record on the wire.
type wireRecord struct {
	Op    string          `json:"op"` // "i" | "d"
	Epoch uint64          `json:"epoch"`
	ID    int64           `json:"id"`
	Items []rankings.Item `json:"items,omitempty"`
}

// replicateShard is one shard's payload: Full carries a consistent
// snapshot in Rankings; otherwise Records holds the contiguous delta
// (possibly empty when the follower is already at Epoch).
type replicateShard struct {
	Shard    int           `json:"shard"`
	Epoch    uint64        `json:"epoch"` // follower's epoch after applying this payload
	Full     bool          `json:"full,omitempty"`
	Rankings []rankingJSON `json:"rankings,omitempty"`
	Records  []wireRecord  `json:"records,omitempty"`
}

type replicateResponse struct {
	NumShards int              `json:"num_shards"`
	K         int              `json:"k"`
	Shards    []replicateShard `json:"shards,omitempty"`
}

// handleReplicate is the leader side.
func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) error {
	var req replicateRequest
	if err := decode(r, &req); err != nil {
		return finish(w, err)
	}
	n := s.idx.NumShards()
	resp := replicateResponse{NumShards: n, K: s.idx.K()}
	if req.Probe {
		return writeJSON(w, resp)
	}
	if len(req.Epochs) != 0 && len(req.Epochs) != n {
		return finish(w, badRequest(fmt.Errorf(
			"epoch vector has %d shards, index has %d", len(req.Epochs), n)))
	}
	resp.Shards = make([]replicateShard, 0, n)
	for i := 0; i < n; i++ {
		var fe uint64
		if len(req.Epochs) == n {
			fe = req.Epochs[i]
		}
		resp.Shards = append(resp.Shards, s.replicateShard(i, fe))
	}
	return writeJSON(w, resp)
}

// replicateShard assembles one shard's payload for a follower at
// epoch fe.
func (s *Server) replicateShard(i int, fe uint64) replicateShard {
	if s.idx.Epochs()[i] == fe {
		return replicateShard{Shard: i, Epoch: fe} // already caught up
	}
	if s.wal != nil && fe > 0 {
		if recs, ok, err := s.wal.RecordsSince(i, fe); err == nil && ok {
			out := replicateShard{Shard: i, Epoch: fe, Records: make([]wireRecord, 0, len(recs))}
			for _, rec := range recs {
				wr := wireRecord{Epoch: rec.Epoch, ID: rec.ID}
				switch rec.Op {
				case wal.OpInsert:
					wr.Op = "i"
					wr.Items = rec.Items
				case wal.OpDelete:
					wr.Op = "d"
				}
				out.Records = append(out.Records, wr)
				out.Epoch = rec.Epoch
			}
			return out
		}
	}
	// Fallback: a consistent full snapshot (bootstrap, compacted
	// history, or a follower ahead of us).
	rs, e := s.idx.SnapshotShard(i, nil)
	if e == fe {
		return replicateShard{Shard: i, Epoch: fe} // raced to equal; no-op
	}
	full := replicateShard{Shard: i, Epoch: e, Full: true,
		Rankings: make([]rankingJSON, len(rs))}
	for j, r := range rs {
		full.Rankings[j] = rankingJSON{ID: r.ID, Items: r.Items}
	}
	return full
}

// Replica is the follower side: it bootstraps from and then
// continuously polls a leader, applying epoch deltas (or full shard
// snapshots) to the local index. The server it is handed to serves
// /v1/search and /v1/knn from that index and rejects writes.
type Replica struct {
	leader string
	idx    *shard.Index
	every  time.Duration
	client *http.Client
	logger *slog.Logger

	lagEpochs      atomic.Int64 // Σ(leader − local) observed pre-apply
	syncs          atomic.Int64
	fullShardLoads atomic.Int64
	recordsApplied atomic.Int64
	errs           atomic.Int64
	lastSyncNano   atomic.Int64
	lastErr        atomic.Pointer[string]

	// root is the lifecycle context every poll derives from; Close
	// cancels it, aborting any in-flight sync instead of waiting out
	// its timeout.
	root       context.Context
	rootCancel context.CancelFunc

	startOnce sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// ErrLeaderShape reports a leader whose shard count or k no longer
// matches the follower's index; the follower cannot proceed.
var ErrLeaderShape = errors.New("server: leader shape mismatch")

// NewReplica builds a follower of the leader at addr (host:port).
// every is the poll interval (0 = 1s); client may be nil.
func NewReplica(addr string, idx *shard.Index, every time.Duration, client *http.Client, logger *slog.Logger) *Replica {
	if every <= 0 {
		every = time.Second
	}
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	r := &Replica{
		leader: addr,
		idx:    idx,
		every:  every,
		client: client,
		logger: logger,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	r.root, r.rootCancel = context.WithCancel(context.Background())
	return r
}

// ProbeLeader asks the leader at addr for its index shape — the
// handshake a booting follower sizes its own index from.
func ProbeLeader(ctx context.Context, client *http.Client, addr string) (numShards, k int, err error) {
	if client == nil {
		client = &http.Client{Timeout: 10 * time.Second}
	}
	resp, err := postReplicate(ctx, client, addr, replicateRequest{Probe: true})
	if err != nil {
		return 0, 0, err
	}
	return resp.NumShards, resp.K, nil
}

func postReplicate(ctx context.Context, client *http.Client, addr string, req replicateRequest) (replicateResponse, error) {
	var out replicateResponse
	body, err := json.Marshal(req)
	if err != nil {
		return out, fmt.Errorf("server: marshal replicate request: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+addr+cluster.PathReplicate, bytes.NewReader(body))
	if err != nil {
		return out, fmt.Errorf("server: build replicate request: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hresp, err := client.Do(hreq)
	if err != nil {
		return out, fmt.Errorf("server: leader %s: %w", addr, err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("server: leader %s: replicate status %d", addr, hresp.StatusCode)
	}
	if err := json.NewDecoder(hresp.Body).Decode(&out); err != nil {
		return out, fmt.Errorf("server: leader %s: parse replicate response: %w", addr, err)
	}
	return out, nil
}

// SyncOnce runs one poll-and-apply round.
func (r *Replica) SyncOnce(ctx context.Context) error {
	resp, err := postReplicate(ctx, r.client, r.leader, replicateRequest{Epochs: r.idx.Epochs()})
	if err != nil {
		return r.noteErr(err)
	}
	if resp.NumShards != r.idx.NumShards() {
		return r.noteErr(fmt.Errorf("%w: leader has %d shards, follower %d",
			ErrLeaderShape, resp.NumShards, r.idx.NumShards()))
	}
	// Lag is measured pre-apply: how far behind this round found us.
	local := r.idx.Epochs()
	var lag int64
	for _, sh := range resp.Shards {
		if sh.Shard >= 0 && sh.Shard < len(local) && sh.Epoch > local[sh.Shard] {
			lag += int64(sh.Epoch - local[sh.Shard])
		}
	}
	r.lagEpochs.Store(lag)
	for _, sh := range resp.Shards {
		if err := r.applyShard(sh); err != nil {
			return r.noteErr(err)
		}
	}
	r.syncs.Add(1)
	r.lastSyncNano.Store(time.Now().UnixNano())
	return nil
}

func (r *Replica) applyShard(sh replicateShard) error {
	if sh.Shard < 0 || sh.Shard >= r.idx.NumShards() {
		return fmt.Errorf("server: replicate shard %d out of range", sh.Shard)
	}
	if sh.Full {
		rs := make([]*rankings.Ranking, len(sh.Rankings))
		for j, rj := range sh.Rankings {
			rk, err := rankings.New(rj.ID, rj.Items)
			if err != nil {
				return fmt.Errorf("server: replicate shard %d ranking %d: %w", sh.Shard, rj.ID, err)
			}
			rs[j] = rk
		}
		if err := r.idx.RestoreShard(sh.Shard, rs, sh.Epoch); err != nil {
			return fmt.Errorf("server: replicate restore shard %d: %w", sh.Shard, err)
		}
		r.fullShardLoads.Add(1)
		return nil
	}
	local := r.idx.Epochs()[sh.Shard]
	for _, rec := range sh.Records {
		if rec.Epoch <= local {
			continue // duplicate of something we already hold
		}
		if rec.Epoch != local+1 {
			return fmt.Errorf("server: replicate shard %d epoch gap: have %d, record %d",
				sh.Shard, local, rec.Epoch)
		}
		switch rec.Op {
		case "i":
			rk, err := rankings.New(rec.ID, rec.Items)
			if err != nil {
				return fmt.Errorf("server: replicate shard %d record %d: %w", sh.Shard, rec.Epoch, err)
			}
			if err := r.idx.ApplyInsert(rk, rec.Epoch); err != nil {
				return fmt.Errorf("server: replicate shard %d record %d: %w", sh.Shard, rec.Epoch, err)
			}
		case "d":
			if !r.idx.ApplyDelete(rec.ID, rec.Epoch) {
				return fmt.Errorf("server: replicate shard %d epoch %d deletes absent id %d",
					sh.Shard, rec.Epoch, rec.ID)
			}
		default:
			return fmt.Errorf("server: replicate shard %d: unknown op %q", sh.Shard, rec.Op)
		}
		local = rec.Epoch
		r.recordsApplied.Add(1)
	}
	return nil
}

func (r *Replica) noteErr(err error) error {
	r.errs.Add(1)
	msg := err.Error()
	r.lastErr.Store(&msg)
	return err
}

// Start launches the poll loop.
func (r *Replica) Start() {
	r.startOnce.Do(func() {
		go func() {
			defer close(r.done)
			t := time.NewTicker(r.every)
			defer t.Stop()
			for {
				select {
				case <-r.stop:
					return
				case <-t.C:
					ctx, cancel := context.WithTimeout(r.root, r.every*10+time.Second)
					if err := r.SyncOnce(ctx); err != nil {
						r.logger.Warn("replica sync failed", "leader", r.leader, "err", err)
					}
					cancel()
				}
			}
		}()
	})
}

// Close stops the poll loop and aborts any in-flight sync.
func (r *Replica) Close() {
	r.Start() // ensure done will be closed
	r.rootCancel()
	select {
	case <-r.stop:
	default:
		close(r.stop)
	}
	<-r.done
}

// ReplicaStatus is the follower's /statusz and /metrics document.
type ReplicaStatus struct {
	Leader         string  `json:"leader"`
	LagEpochs      int64   `json:"lag_epochs"`
	Syncs          int64   `json:"syncs"`
	FullShardLoads int64   `json:"full_shard_loads"`
	RecordsApplied int64   `json:"records_applied"`
	Errors         int64   `json:"errors"`
	LastSyncAgeS   float64 `json:"last_sync_age_s"` // -1 before the first sync
	LastError      string  `json:"last_error,omitempty"`
}

// Status snapshots the replica's counters.
func (r *Replica) Status() ReplicaStatus {
	st := ReplicaStatus{
		Leader:         r.leader,
		LagEpochs:      r.lagEpochs.Load(),
		Syncs:          r.syncs.Load(),
		FullShardLoads: r.fullShardLoads.Load(),
		RecordsApplied: r.recordsApplied.Load(),
		Errors:         r.errs.Load(),
		LastSyncAgeS:   -1,
	}
	if t := r.lastSyncNano.Load(); t > 0 {
		st.LastSyncAgeS = time.Since(time.Unix(0, t)).Seconds()
	}
	if msg := r.lastErr.Load(); msg != nil {
		st.LastError = *msg
	}
	return st
}
