package server

import (
	"context"
	"errors"
	"sync/atomic"

	"rankjoin/internal/obs"
	"rankjoin/internal/shard"
)

// batcher coalesces concurrent search/kNN requests into shared shard
// sweeps. A single dispatcher goroutine takes whatever requests have
// queued while the previous sweep was running and answers them through
// one Index.SearchBatch call — every shard is locked and scanned once
// per batch instead of once per request, which is where the fan-out
// cost of a sharded index under concurrent load goes.
type batcher struct {
	idx      *shard.Index
	maxBatch int
	ch       chan *searchCall
	stop     chan struct{}
	done     chan struct{}

	// batch is the dispatcher's private execution arena: only the loop
	// goroutine touches it, so the shard sweeps of consecutive batches
	// reuse one set of scratch buffers and allocate nothing. Results
	// alias the arena and are copied per response below (responses and
	// the query cache outlive the next sweep).
	batch *shard.Batch
	qs    []shard.Query

	sweeps     atomic.Int64
	coalesced  atomic.Int64 // requests answered in a batch of size > 1
	batchSizes obs.Histogram
}

type searchCall struct {
	q    shard.Query
	span *obs.Span // head-sampled request's root span; nil when unsampled
	resp chan searchResult
}

type searchResult struct {
	hits []shard.Neighbor
	err  error
}

var errServerClosed = errors.New("server: shutting down")

func newBatcher(idx *shard.Index, maxBatch int) *batcher {
	if maxBatch <= 0 {
		maxBatch = 64
	}
	b := &batcher{
		idx:      idx,
		maxBatch: maxBatch,
		ch:       make(chan *searchCall, 4*maxBatch),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		batch:    idx.NewBatch(),
		qs:       make([]shard.Query, 0, maxBatch),
	}
	go b.loop()
	return b
}

// do submits one query and waits for its result or the context
// deadline. The response channel is buffered so an abandoned request
// never blocks the dispatcher. span, when non-nil, receives the sweep
// that answers the query as a child.
func (b *batcher) do(ctx context.Context, q shard.Query, span *obs.Span) ([]shard.Neighbor, error) {
	call := &searchCall{q: q, span: span, resp: make(chan searchResult, 1)}
	select {
	case b.ch <- call:
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-b.stop:
		return nil, errServerClosed
	}
	select {
	case r := <-call.resp:
		return r.hits, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (b *batcher) loop() {
	defer close(b.done)
	for {
		var first *searchCall
		select {
		case first = <-b.ch:
		case <-b.stop:
			b.drainAndFail()
			return
		}
		batch := []*searchCall{first}
		// Coalesce everything that queued while we were away, up to the
		// batch cap; no timer — the natural arrival backlog during the
		// previous sweep is the batch.
	drain:
		for len(batch) < b.maxBatch {
			select {
			case c := <-b.ch:
				batch = append(batch, c)
			default:
				break drain
			}
		}
		b.run(batch)
	}
}

//ranklint:allocfree
func (b *batcher) run(batch []*searchCall) {
	b.qs = b.qs[:0]
	// The sweep is traced under the FIRST head-sampled caller's span;
	// with no sampled caller in the batch, sweep is nil and the whole
	// sweep records nothing and allocates nothing — that is the
	// steady-state fast path the AllocsPerRun suite pins.
	var parent *obs.Span
	for _, c := range batch {
		if parent == nil {
			parent = c.span
		}
		b.qs = append(b.qs, c.q)
	}
	// The nil guard (not just nil-receiver safety) matters: building the
	// variadic attr slice would allocate on the unsampled path.
	var sweep *obs.Span
	if parent != nil {
		sweep = parent.StartChild("serve/sweep", obs.Int("batch", int64(len(batch)))) //ranklint:ignore sampled-trace branch; the zero-alloc contract covers the unsampled sweep == nil path
	}
	results, err := b.batch.SearchBatchInto(b.qs, sweep)
	sweep.End() //ranklint:ignore nil no-op on the unsampled path; records the child span only when sampled
	b.sweeps.Add(1)
	b.batchSizes.Observe(int64(len(batch)))
	if len(batch) > 1 {
		b.coalesced.Add(int64(len(batch)))
	}
	if err != nil {
		// A batch-level error means some query failed validation (e.g.
		// its k raced the very first insert). Re-run individually so
		// only the offending requests fail.
		for _, c := range batch {
			hits, qerr := b.idx.SearchBatch([]shard.Query{c.q}, nil) //ranklint:ignore failure path: isolating the invalid query is worth a per-request sweep
			if qerr != nil {
				c.resp <- searchResult{err: qerr}
			} else {
				c.resp <- searchResult{hits: hits[0]}
			}
		}
		return
	}
	for i, c := range batch {
		c.resp <- searchResult{hits: copyHits(results[i])} //ranklint:ignore deliberate per-response copy: responses outlive the arena the next sweep reuses
	}
}

// copyHits detaches one result list from the sweep arena, which is
// reused by the next batch while the response (and the query cache
// entry) are still alive.
func copyHits(v []shard.Neighbor) []shard.Neighbor {
	if len(v) == 0 {
		return nil
	}
	return append([]shard.Neighbor(nil), v...)
}

func (b *batcher) drainAndFail() {
	for {
		select {
		case c := <-b.ch:
			c.resp <- searchResult{err: errServerClosed}
		default:
			return
		}
	}
}

func (b *batcher) close() {
	close(b.stop)
	<-b.done
}
