package server

import (
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"testing"

	"rankjoin/internal/testutil"
)

// promSample is one parsed exposition sample line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
	line   string
}

// promFamily is the HELP/TYPE metadata of one metric family.
type promFamily struct {
	help string
	typ  string
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// parseProm is a deliberately strict parser for the Prometheus text
// exposition format 0.0.4 — stricter than real scrapers, so any
// formatting drift in the writer fails loudly. It enforces: no blank
// lines, HELP then TYPE before any sample of a family, known TYPE
// values, valid metric/label names, quoted and escape-correct label
// values, and float-parsable sample values.
func parseProm(t *testing.T, text string) (map[string]promFamily, []promSample) {
	t.Helper()
	if !strings.HasSuffix(text, "\n") {
		t.Fatalf("exposition must end with a newline")
	}
	fams := make(map[string]promFamily)
	var samples []promSample
	for ln, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: blank line in exposition", ln+1)
		}
		if strings.HasPrefix(line, "#") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 || parts[0] != "#" {
				t.Fatalf("line %d: malformed comment %q", ln+1, line)
			}
			name := parts[2]
			if !validMetricName(name) {
				t.Fatalf("line %d: bad metric name %q", ln+1, name)
			}
			switch parts[1] {
			case "HELP":
				f := fams[name]
				if f.help != "" {
					t.Fatalf("line %d: duplicate HELP for %q", ln+1, name)
				}
				f.help = parts[3]
				fams[name] = f
			case "TYPE":
				f := fams[name]
				if f.typ != "" {
					t.Fatalf("line %d: duplicate TYPE for %q", ln+1, name)
				}
				if f.help == "" {
					t.Fatalf("line %d: TYPE for %q before its HELP", ln+1, name)
				}
				switch parts[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					t.Fatalf("line %d: unknown TYPE %q for %q", ln+1, parts[3], name)
				}
				f.typ = parts[3]
				fams[name] = f
			default:
				t.Fatalf("line %d: unknown comment keyword %q", ln+1, parts[1])
			}
			continue
		}
		samples = append(samples, parsePromSample(t, ln+1, line))
	}
	return fams, samples
}

func parsePromSample(t *testing.T, ln int, line string) promSample {
	t.Helper()
	fatalf := func(format string, args ...any) {
		t.Helper()
		t.Fatalf("line %d (%q): "+format, append([]any{ln, line}, args...)...)
	}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		fatalf("no value separator")
	}
	s := promSample{name: line[:i], labels: map[string]string{}, line: line}
	if !validMetricName(s.name) {
		fatalf("bad metric name %q", s.name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		rest = rest[1:]
		for len(rest) > 0 && rest[0] != '}' {
			eq := strings.IndexByte(rest, '=')
			if eq < 0 {
				fatalf("label without '='")
			}
			lname := rest[:eq]
			if !validMetricName(lname) || strings.Contains(lname, ":") {
				fatalf("bad label name %q", lname)
			}
			if _, dup := s.labels[lname]; dup {
				fatalf("duplicate label %q", lname)
			}
			rest = rest[eq+1:]
			if len(rest) == 0 || rest[0] != '"' {
				fatalf("label value for %q not quoted", lname)
			}
			rest = rest[1:]
			var val strings.Builder
		scan:
			for {
				if len(rest) == 0 {
					fatalf("unterminated label value for %q", lname)
				}
				c := rest[0]
				rest = rest[1:]
				switch c {
				case '"':
					break scan
				case '\\':
					if len(rest) == 0 {
						fatalf("dangling escape in label %q", lname)
					}
					switch rest[0] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						fatalf("bad escape \\%c in label %q", rest[0], lname)
					}
					rest = rest[1:]
				case '\n':
					fatalf("raw newline in label %q", lname)
				default:
					val.WriteByte(c)
				}
			}
			s.labels[lname] = val.String()
			if len(rest) > 0 && rest[0] == ',' {
				rest = rest[1:]
			}
		}
		if len(rest) == 0 || rest[0] != '}' {
			fatalf("unterminated label set")
		}
		rest = rest[1:]
	}
	if len(rest) == 0 || rest[0] != ' ' {
		fatalf("expected single space before value")
	}
	raw := rest[1:]
	if raw == "" || strings.ContainsAny(raw, " \t") {
		fatalf("malformed value %q", raw)
	}
	var err error
	if raw == "+Inf" {
		s.value = math.Inf(1)
	} else if s.value, err = strconv.ParseFloat(raw, 64); err != nil {
		fatalf("unparsable value %q: %v", raw, err)
	}
	return s
}

// familyOf resolves a sample name to its metric family, folding the
// histogram series suffixes onto their base family.
func familyOf(fams map[string]promFamily, name string) (string, promFamily, bool) {
	if f, ok := fams[name]; ok {
		return name, f, true
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base == name {
			continue
		}
		if f, ok := fams[base]; ok && f.typ == "histogram" {
			return base, f, true
		}
	}
	return "", promFamily{}, false
}

// labelKey serializes a label set (minus `le`) for grouping histogram
// series that belong to one underlying observation stream.
func labelKey(labels map[string]string) string {
	parts := make([]string, 0, len(labels))
	for k, v := range labels {
		if k == "le" {
			continue
		}
		parts = append(parts, k+"\x00"+v)
	}
	sort.Strings(parts)
	return strings.Join(parts, "\x01")
}

// checkHistograms verifies _bucket/_sum/_count consistency for every
// histogram label set: buckets cumulative and monotone in le, the +Inf
// bucket present and equal to _count, and _sum present.
func checkHistograms(t *testing.T, fams map[string]promFamily, samples []promSample) {
	t.Helper()
	type series struct {
		buckets map[float64]float64
		sum     map[string]float64 // "_sum"/"_count" → value
	}
	hist := make(map[string]*series) // family + labelKey
	for _, s := range samples {
		base, f, ok := familyOf(fams, s.name)
		if !ok || f.typ != "histogram" {
			continue
		}
		key := base + "\x02" + labelKey(s.labels)
		sr := hist[key]
		if sr == nil {
			sr = &series{buckets: map[float64]float64{}, sum: map[string]float64{}}
			hist[key] = sr
		}
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			le, lok := s.labels["le"]
			if !lok {
				t.Errorf("%s: histogram bucket without le label", s.line)
				continue
			}
			bound := math.Inf(1)
			if le != "+Inf" {
				var err error
				if bound, err = strconv.ParseFloat(le, 64); err != nil {
					t.Errorf("%s: unparsable le %q", s.line, le)
					continue
				}
			}
			if _, dup := sr.buckets[bound]; dup {
				t.Errorf("%s: duplicate bucket le=%q", s.line, le)
			}
			sr.buckets[bound] = s.value
		case strings.HasSuffix(s.name, "_sum"), strings.HasSuffix(s.name, "_count"):
			sr.sum[s.name[strings.LastIndexByte(s.name, '_'):]] = s.value
		default:
			t.Errorf("%s: bare sample of histogram family %q", s.line, base)
		}
	}
	for key, sr := range hist {
		name := strings.ReplaceAll(strings.ReplaceAll(
			strings.SplitN(key, "\x02", 2)[0]+"{"+labelKey(filterKeyLabels(key))+"}",
			"\x00", "="), "\x01", ",")
		inf, ok := sr.buckets[math.Inf(1)]
		if !ok {
			t.Errorf("%s: missing le=\"+Inf\" bucket", name)
			continue
		}
		count, ok := sr.sum["_count"]
		if !ok {
			t.Errorf("%s: missing _count", name)
		} else if inf != count {
			t.Errorf("%s: +Inf bucket %v != _count %v", name, inf, count)
		}
		if _, ok := sr.sum["_sum"]; !ok {
			t.Errorf("%s: missing _sum", name)
		}
		bounds := make([]float64, 0, len(sr.buckets))
		for b := range sr.buckets {
			bounds = append(bounds, b)
		}
		sort.Float64s(bounds)
		prev := -1.0
		for _, b := range bounds {
			if v := sr.buckets[b]; v < prev {
				t.Errorf("%s: bucket le=%v count %v < previous %v (not cumulative)", name, b, v, prev)
			} else {
				prev = v
			}
		}
	}
}

// filterKeyLabels recovers a label map from a hist grouping key, for
// error messages only.
func filterKeyLabels(key string) map[string]string {
	out := map[string]string{}
	parts := strings.SplitN(key, "\x02", 2)
	if len(parts) < 2 || parts[1] == "" {
		return out
	}
	for _, p := range strings.Split(parts[1], "\x01") {
		if kv := strings.SplitN(p, "\x00", 2); len(kv) == 2 {
			out[kv[0]] = kv[1]
		}
	}
	return out
}

func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") ||
		!strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("GET /metrics: content type %q, want text/plain version=0.0.4", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestMetricsExposition drives real traffic through the server and then
// strict-parses /metrics: grammar, HELP/TYPE coverage, histogram
// consistency, the full required-series registry, and the filter
// ledger's conservation law as seen through the exposition.
func TestMetricsExposition(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	const k = 10
	rs := testutil.ClusteredDataset(rng, 40, 4, k, 30*k)
	_, ts := newTestServer(t, Config{})
	insertRankings(t, ts.URL, rs)

	for _, q := range rs[:6] {
		searchHits(t, ts.URL, map[string]any{"items": q.Items, "theta": 0.25})
	}
	// Repeat one query so the cache-hit counter moves.
	searchHits(t, ts.URL, map[string]any{"items": rs[0].Items, "theta": 0.25})
	post(t, ts.URL+"/v1/knn", map[string]any{"id": rs[1].ID, "k": 5})

	text := scrapeMetrics(t, ts.URL)
	fams, samples := parseProm(t, text)

	// Every sample belongs to a family with HELP and TYPE.
	for _, s := range samples {
		if _, f, ok := familyOf(fams, s.name); !ok || f.help == "" || f.typ == "" {
			t.Errorf("%s: sample without preceding HELP+TYPE", s.line)
		}
	}
	// Counters follow the _total naming convention and never go negative.
	for _, s := range samples {
		base, f, _ := familyOf(fams, s.name)
		if f.typ == "counter" && !strings.HasSuffix(base, "_total") {
			t.Errorf("counter family %q does not end in _total", base)
		}
		if f.typ == "counter" && s.value < 0 {
			t.Errorf("%s: negative counter", s.line)
		}
	}
	checkHistograms(t, fams, samples)

	find := func(name string, labels map[string]string) (float64, bool) {
	next:
		for _, s := range samples {
			if s.name != name {
				continue
			}
			for lk, lv := range labels {
				if s.labels[lk] != lv {
					continue next
				}
			}
			return s.value, true
		}
		return 0, false
	}
	mustFind := func(name string, labels map[string]string) float64 {
		t.Helper()
		v, ok := find(name, labels)
		if !ok {
			t.Errorf("required series %s%v missing", name, labels)
		}
		return v
	}

	// The required-series registry (see DESIGN.md §12): one entry per
	// exported family, with the label shapes the dashboards key on.
	if got := mustFind("rankserved_http_requests_total", map[string]string{"path": "/v1/search"}); got < 7 {
		t.Errorf("search requests_total = %v, want >= 7", got)
	}
	mustFind("rankserved_http_requests_total", map[string]string{"path": "/v1/knn"})
	mustFind("rankserved_http_request_errors_total", map[string]string{"path": "/v1/search"})
	if got := mustFind("rankserved_http_request_duration_seconds_count", map[string]string{"path": "/v1/search"}); got < 7 {
		t.Errorf("search duration _count = %v, want >= 7", got)
	}
	if got := mustFind("rankserved_cache_hits_total", nil); got < 1 {
		t.Errorf("cache_hits_total = %v, want >= 1", got)
	}
	mustFind("rankserved_cache_misses_total", nil)
	mustFind("rankserved_cache_entries", nil)
	mustFind("rankserved_cache_capacity", nil)
	if got := mustFind("rankserved_sweeps_total", nil); got < 1 {
		t.Errorf("sweeps_total = %v, want >= 1", got)
	}
	mustFind("rankserved_coalesced_requests_total", nil)
	if got := mustFind("rankserved_batch_size_count", nil); got < 1 {
		t.Errorf("batch_size_count = %v, want >= 1", got)
	}
	mustFind("rankserved_uptime_seconds", nil)
	mustFind("rankserved_index_k", nil)
	if got := mustFind("rankserved_index_size", nil); got != float64(len(rs)) {
		t.Errorf("index_size = %v, want %d", got, len(rs))
	}
	mustFind("rankserved_shard_size", map[string]string{"shard": "0"})
	mustFind("rankserved_shard_epoch", map[string]string{"shard": "0"})
	mustFind("rankserved_shard_pivots", map[string]string{"shard": "0"})
	mustFind("rankserved_shard_churn", map[string]string{"shard": "0"})
	mustFind("rankserved_shard_repivots_total", map[string]string{"shard": "0"})
	mustFind("rankserved_repivot_duration_seconds_count", nil)
	mustFind("rankserved_traces_sampled_total", nil)
	mustFind("rankserved_slow_requests_total", nil)

	// Filter-ledger conservation as seen by a scraper: the per-fate
	// candidate counters sum to the generated counter.
	gen := mustFind("rankserved_filter_generated_total", nil)
	sumFates := 0.0
	for _, fate := range []string{"pruned_prefix", "pruned_signature", "pruned_position",
		"pruned_triangle", "accepted_unverified", "verified"} {
		sumFates += mustFind("rankserved_filter_candidates_total", map[string]string{"fate": fate})
	}
	if gen != sumFates {
		t.Errorf("filter conservation: generated %v != sum of fates %v", gen, sumFates)
	}
	mustFind("rankserved_filter_emitted_total", nil)
}

// TestMetricsShardSeriesComplete checks every shard appears in the
// per-shard gauges — a scrape must never silently drop shards.
func TestMetricsShardSeriesComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	rs := testutil.RandDataset(rng, 30, 6, 100)
	s, ts := newTestServer(t, Config{})
	insertRankings(t, ts.URL, rs)

	_, samples := parseProm(t, scrapeMetrics(t, ts.URL))
	shards := s.Index().NumShards()
	for _, name := range []string{"rankserved_shard_size", "rankserved_shard_epoch",
		"rankserved_shard_pivots", "rankserved_shard_churn", "rankserved_shard_repivots_total"} {
		seen := map[string]bool{}
		for _, smp := range samples {
			if smp.name == name {
				seen[smp.labels["shard"]] = true
			}
		}
		if len(seen) != shards {
			t.Errorf("%s: %d shard series, want %d", name, len(seen), shards)
		}
	}
}
