package server

import (
	"bytes"
	"net/http"
	"strconv"
	"time"

	"rankjoin/internal/obs"
)

// handleMetrics renders the Prometheus text exposition (format 0.0.4)
// of every serving-plane series. Names follow prometheus conventions:
// a rankserved_ prefix, _total suffixes on counters, base units
// (seconds) on durations. The handler assembles the page in one buffer
// and writes it at once; it holds no lock across families, so the page
// is a near-point-in-time snapshot, not a transactional one — exactly
// the consistency a scraper gets from any live process.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) error {
	var buf bytes.Buffer
	buf.Grow(16 << 10)
	m := obs.NewMetricWriter(&buf)

	m.Metric("rankserved_uptime_seconds", "gauge", "Seconds since the server started.")
	m.Value("rankserved_uptime_seconds", time.Since(s.start).Seconds())

	// --- per-endpoint request series ---
	paths := s.sortedPaths()
	m.Metric("rankserved_http_requests_total", "counter", "Requests served, by endpoint.")
	for _, p := range paths {
		st := s.requests[p]
		st.mu.Lock()
		count := st.count
		st.mu.Unlock()
		m.Int("rankserved_http_requests_total", count, obs.Label{Name: "path", Value: p})
	}
	m.Metric("rankserved_http_request_errors_total", "counter", "Requests that returned an error status, by endpoint.")
	for _, p := range paths {
		st := s.requests[p]
		st.mu.Lock()
		errs := st.errors
		st.mu.Unlock()
		m.Int("rankserved_http_request_errors_total", errs, obs.Label{Name: "path", Value: p})
	}
	m.Metric("rankserved_http_request_duration_seconds", "histogram", "Request latency, by endpoint.")
	for _, p := range paths {
		m.Histogram("rankserved_http_request_duration_seconds",
			s.requests[p].latency.Snapshot(), 1e6, obs.Label{Name: "path", Value: p})
	}

	// --- query cache ---
	hits, misses := s.cache.stats()
	m.Metric("rankserved_cache_hits_total", "counter", "Query-cache hits.")
	m.Int("rankserved_cache_hits_total", hits)
	m.Metric("rankserved_cache_misses_total", "counter", "Query-cache misses.")
	m.Int("rankserved_cache_misses_total", misses)
	m.Metric("rankserved_cache_entries", "gauge", "Query-cache entries resident.")
	m.Int("rankserved_cache_entries", int64(s.cache.len()))
	m.Metric("rankserved_cache_capacity", "gauge", "Query-cache capacity.")
	m.Int("rankserved_cache_capacity", int64(s.cache.capacity()))

	// --- request coalescer ---
	m.Metric("rankserved_sweeps_total", "counter", "Coalesced shard sweeps dispatched.")
	m.Int("rankserved_sweeps_total", s.batch.sweeps.Load())
	m.Metric("rankserved_coalesced_requests_total", "counter", "Requests answered in a batch of size > 1.")
	m.Int("rankserved_coalesced_requests_total", s.batch.coalesced.Load())
	m.Metric("rankserved_batch_size", "histogram", "Requests answered per sweep.")
	m.Histogram("rankserved_batch_size", s.batch.batchSizes.Snapshot(), 1)

	// --- filter ledger (conservation: generated = sum of fates) ---
	f := s.idx.Filters().Snapshot()
	m.Metric("rankserved_filter_generated_total", "counter", "Candidates enumerated by index sweeps.")
	m.Int("rankserved_filter_generated_total", f.Generated)
	m.Metric("rankserved_filter_candidates_total", "counter", "Candidate fates; values across fates sum to rankserved_filter_generated_total.")
	for _, fc := range []struct {
		fate string
		n    int64
	}{
		{"pruned_prefix", f.PrunedPrefix},
		{"pruned_signature", f.PrunedSignature},
		{"pruned_position", f.PrunedPosition},
		{"pruned_triangle", f.PrunedTriangle},
		{"accepted_unverified", f.AcceptedUnverified},
		{"verified", f.Verified},
	} {
		m.Int("rankserved_filter_candidates_total", fc.n, obs.Label{Name: "fate", Value: fc.fate})
	}
	m.Metric("rankserved_filter_emitted_total", "counter", "Result hits emitted by index sweeps.")
	m.Int("rankserved_filter_emitted_total", f.Emitted)

	// --- index + shards ---
	m.Metric("rankserved_index_size", "gauge", "Rankings indexed.")
	m.Int("rankserved_index_size", int64(s.idx.Len()))
	m.Metric("rankserved_index_k", "gauge", "Established ranking length (0 until first insert).")
	m.Int("rankserved_index_k", int64(s.idx.K()))
	stats := s.idx.Stats()
	m.Metric("rankserved_shard_size", "gauge", "Rankings per shard.")
	for i, st := range stats {
		m.Int("rankserved_shard_size", int64(st.Size), shardLabel(i))
	}
	m.Metric("rankserved_shard_epoch", "gauge", "Per-shard mutation epoch.")
	for i, st := range stats {
		m.Int("rankserved_shard_epoch", int64(st.Epoch), shardLabel(i))
	}
	m.Metric("rankserved_shard_pivots", "gauge", "Pivot-table width per shard.")
	for i, st := range stats {
		m.Int("rankserved_shard_pivots", int64(st.Pivots), shardLabel(i))
	}
	m.Metric("rankserved_shard_churn", "gauge", "Mutations since the shard's pivot set was chosen.")
	for i, st := range stats {
		m.Int("rankserved_shard_churn", int64(st.Churn), shardLabel(i))
	}
	m.Metric("rankserved_shard_repivots_total", "counter", "Completed background re-pivots per shard.")
	for i, st := range stats {
		m.Int("rankserved_shard_repivots_total", st.RePivots, shardLabel(i))
	}
	m.Metric("rankserved_repivot_duration_seconds", "histogram", "Background re-pivot rebuild time.")
	m.Histogram("rankserved_repivot_duration_seconds", s.rePivotDur.Snapshot(), 1e6)

	// --- trace sampling ---
	m.Metric("rankserved_traces_sampled_total", "counter", "Requests head-sampled into full traces.")
	m.Int("rankserved_traces_sampled_total", s.sampledTotal.Load())
	m.Metric("rankserved_slow_requests_total", "counter", "Requests over the slow threshold (tail-sampled).")
	m.Int("rankserved_slow_requests_total", s.slowTotal.Load())

	// --- cluster (only when this server is a peer) ---
	if s.cluster != nil {
		cs := s.cluster.StatusSnapshot()
		lat := s.cluster.PeerLatencySnapshots()
		m.Metric("rankserved_peer_rpc_total", "counter", "Outbound peer RPCs (hedged duplicates count once), by peer.")
		for _, p := range cs.Peers {
			if p.Self {
				continue
			}
			m.Int("rankserved_peer_rpc_total", p.RPCs, peerLabel(p.Addr))
		}
		m.Metric("rankserved_peer_rpc_errors_total", "counter", "Peer RPCs that failed after retry, by peer.")
		for _, p := range cs.Peers {
			if p.Self {
				continue
			}
			m.Int("rankserved_peer_rpc_errors_total", p.Errors, peerLabel(p.Addr))
		}
		m.Metric("rankserved_peer_rpc_hedges_total", "counter", "Second attempts launched (tail hedge or fast-fail retry), by peer.")
		for _, p := range cs.Peers {
			if p.Self {
				continue
			}
			m.Int("rankserved_peer_rpc_hedges_total", p.Hedges, peerLabel(p.Addr))
		}
		m.Metric("rankserved_peer_rpc_duration_seconds", "histogram", "Peer RPC latency (whole hedged call), by peer.")
		for i, p := range cs.Peers {
			if p.Self {
				continue
			}
			m.Histogram("rankserved_peer_rpc_duration_seconds", lat[i], 1e6, peerLabel(p.Addr))
		}
		m.Metric("rankserved_peer_up", "gauge", "1 when the peer link is healthy, 0 when marked down.")
		for _, p := range cs.Peers {
			if p.Self {
				continue
			}
			up := int64(1)
			if p.Down {
				up = 0
			}
			m.Int("rankserved_peer_up", up, peerLabel(p.Addr))
		}
		m.Metric("rankserved_cluster_partial_responses_total", "counter", "Scatter-gather answers served degraded because a peer failed.")
		m.Int("rankserved_cluster_partial_responses_total", cs.Partials)
		m.Metric("rankserved_cluster_joins_total", "counter", "Distributed join jobs started on this peer.")
		m.Int("rankserved_cluster_joins_total", cs.Joins)
		m.Metric("rankserved_cluster_shuffle_frames_sent_total", "counter", "Shuffle frames posted to peers.")
		m.Int("rankserved_cluster_shuffle_frames_sent_total", cs.FramesSent)
		m.Metric("rankserved_cluster_shuffle_bytes_sent_total", "counter", "Shuffle frame bytes posted to peers.")
		m.Int("rankserved_cluster_shuffle_bytes_sent_total", cs.BytesSent)
		m.Metric("rankserved_cluster_inbox_depth", "gauge", "Buffered shuffle frame slots awaiting their worker.")
		m.Int("rankserved_cluster_inbox_depth", int64(cs.InboxDepth))
		m.Metric("rankserved_cluster_peers", "gauge", "Configured cluster size.")
		m.Int("rankserved_cluster_peers", int64(len(cs.Peers)))
	}

	// --- durability (only when a WAL is attached) ---
	if s.wal != nil {
		ws := s.wal.Stats()
		m.Metric("rankserved_wal_records_total", "counter", "Records appended to the write-ahead log.")
		m.Int("rankserved_wal_records_total", ws.Records)
		m.Metric("rankserved_wal_appended_bytes_total", "counter", "Bytes appended to the WAL (buffered or durable).")
		m.Int("rankserved_wal_appended_bytes_total", ws.AppendedBytes)
		m.Metric("rankserved_wal_durable_bytes_total", "counter", "WAL bytes past fsync; appended minus durable is the at-risk window.")
		m.Int("rankserved_wal_durable_bytes_total", ws.DurableBytes)
		m.Metric("rankserved_wal_fsyncs_total", "counter", "Group-commit fsyncs issued.")
		m.Int("rankserved_wal_fsyncs_total", ws.Fsyncs)
		m.Metric("rankserved_wal_fsync_duration_seconds", "histogram", "fsync latency (one observation per group commit).")
		m.Histogram("rankserved_wal_fsync_duration_seconds", ws.FsyncMicros, 1e6)
		m.Metric("rankserved_wal_snapshots_total", "counter", "Epoch snapshots written.")
		m.Int("rankserved_wal_snapshots_total", ws.Snapshots)
		m.Metric("rankserved_wal_snapshot_errors_total", "counter", "Snapshot attempts that failed.")
		m.Int("rankserved_wal_snapshot_errors_total", ws.SnapshotErrors)
		m.Metric("rankserved_wal_snapshot_age_seconds", "gauge", "Seconds since the last completed snapshot pass (-1 before the first).")
		m.Value("rankserved_wal_snapshot_age_seconds", ws.SnapshotAge)
		m.Metric("rankserved_wal_snapshot_epoch", "gauge", "Epoch captured by the newest snapshot, per shard (WAL below it is reclaimable).")
		for i, e := range ws.SnapshotEpochs {
			m.Int("rankserved_wal_snapshot_epoch", int64(e), shardLabel(i))
		}
	}

	// --- replica (only when following a leader) ---
	if s.replica != nil {
		rs := s.replica.Status()
		m.Metric("rankserved_replica_lag_epochs", "gauge", "Sum over shards of leader epoch minus local epoch at the last poll.")
		m.Int("rankserved_replica_lag_epochs", rs.LagEpochs)
		m.Metric("rankserved_replica_syncs_total", "counter", "Successful replication rounds.")
		m.Int("rankserved_replica_syncs_total", rs.Syncs)
		m.Metric("rankserved_replica_full_shard_syncs_total", "counter", "Shards loaded via full snapshot instead of a WAL delta.")
		m.Int("rankserved_replica_full_shard_syncs_total", rs.FullShardLoads)
		m.Metric("rankserved_replica_records_applied_total", "counter", "WAL records applied from the leader.")
		m.Int("rankserved_replica_records_applied_total", rs.RecordsApplied)
		m.Metric("rankserved_replica_errors_total", "counter", "Replication rounds that failed.")
		m.Int("rankserved_replica_errors_total", rs.Errors)
		m.Metric("rankserved_replica_last_sync_age_seconds", "gauge", "Seconds since the last successful sync (-1 before the first).")
		m.Value("rankserved_replica_last_sync_age_seconds", rs.LastSyncAgeS)
	}

	if err := m.Err(); err != nil {
		return err
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, err := w.Write(buf.Bytes())
	return err
}

func shardLabel(i int) obs.Label {
	return obs.Label{Name: "shard", Value: strconv.Itoa(i)}
}

func peerLabel(addr string) obs.Label {
	return obs.Label{Name: "peer", Value: addr}
}
