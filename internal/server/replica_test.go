package server

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"strings"
	"testing"
	"time"

	"rankjoin/internal/rankings"
	"rankjoin/internal/shard"
	"rankjoin/internal/testutil"
	"rankjoin/internal/wal"
)

// leaderWithWAL boots a durable leader over a temp WAL directory.
func leaderWithWAL(t *testing.T, shards int) (*Server, string, *shard.Index) {
	t.Helper()
	idx := shard.New(shard.Config{Shards: shards})
	mgr, err := wal.Open(t.TempDir(), wal.Config{Shards: shards, FsyncEvery: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close() })
	if _, err := mgr.Recover(idx); err != nil {
		t.Fatal(err)
	}
	mgr.Attach(idx)
	s, ts := newTestServer(t, Config{Index: idx, WAL: mgr})
	return s, strings.TrimPrefix(ts.URL, "http://"), idx
}

// follower builds a replica index + server polling addr. The replica is
// driven manually with SyncOnce so tests control exactly when state
// moves.
func follower(t *testing.T, addr string, shards int) (*Replica, string) {
	t.Helper()
	idx := shard.New(shard.Config{Shards: shards})
	rep := NewReplica(addr, idx, time.Second, nil, nil)
	_, ts := newTestServer(t, Config{Index: idx, Replica: rep})
	return rep, ts.URL
}

// TestFollowerReadOnly: a replica answers queries and refuses writes
// with 403 — writes belong to the leader.
func TestFollowerReadOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	_, leaderAddr, _ := leaderWithWAL(t, 2)
	rs := testutil.RandDataset(rng, 20, 5, 60)
	insertRankings(t, "http://"+leaderAddr, rs)

	rep, fURL := follower(t, leaderAddr, 2)
	if err := rep.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}

	if hits, _ := searchHits(t, fURL, map[string]any{"items": rs[0].Items, "theta": 0.3}); len(hits) == 0 {
		t.Fatal("follower answered no hits over replicated data")
	}
	code, out := post(t, fURL+"/v1/insert", map[string]any{"rankings": toJSON(rs[:1])})
	if code != http.StatusForbidden {
		t.Fatalf("follower insert returned %d (%s), want 403", code, out["error"])
	}
	code, out = post(t, fURL+"/v1/delete", map[string]any{"ids": []int64{rs[0].ID}})
	if code != http.StatusForbidden {
		t.Fatalf("follower delete returned %d (%s), want 403", code, out["error"])
	}
}

// TestLeaderFollowerEquivalence is the acceptance check: once the
// follower's epoch vector matches the leader's, /v1/search answers are
// identical — after the bootstrap full sync and after an incremental
// WAL-delta sync.
func TestLeaderFollowerEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	leaderSrv, leaderAddr, leaderIdx := leaderWithWAL(t, 4)
	rs := testutil.RandDataset(rng, 120, 6, 200)
	insertRankings(t, "http://"+leaderAddr, rs)

	rep, fURL := follower(t, leaderAddr, 4)
	if err := rep.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := rep.Status(); st.FullShardLoads == 0 {
		t.Fatal("bootstrap did not use full shard syncs")
	}
	compareAnswers(t, "http://"+leaderAddr, fURL, rs, rng)

	// Incremental round: mutate the leader, sync, re-compare. This must
	// ride the WAL delta, not re-ship shards.
	more := testutil.RandDataset(rng, 30, 6, 200)
	for i := range more {
		more[i].ID += 10_000
	}
	insertRankings(t, "http://"+leaderAddr, more)
	if code, out := post(t, "http://"+leaderAddr+"/v1/delete", map[string]any{"ids": []int64{rs[3].ID, rs[7].ID}}); code != http.StatusOK {
		t.Fatalf("leader delete returned %d: %s", code, out["error"])
	}
	before := rep.Status()
	if err := rep.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	after := rep.Status()
	if after.FullShardLoads != before.FullShardLoads {
		t.Fatalf("incremental sync re-shipped %d full shards", after.FullShardLoads-before.FullShardLoads)
	}
	if got := after.RecordsApplied - before.RecordsApplied; got != int64(len(more))+2 {
		t.Fatalf("delta applied %d records, want %d", got, len(more)+2)
	}

	fe := rep.idx.Epochs()
	le := leaderIdx.Epochs()
	for i := range le {
		if fe[i] != le[i] {
			t.Fatalf("shard %d: follower epoch %d, leader %d", i, fe[i], le[i])
		}
	}
	compareAnswers(t, "http://"+leaderAddr, fURL, append(rs, more...), rng)
	_ = leaderSrv
}

// compareAnswers fires a handful of range and kNN queries at both
// servers and requires identical hit lists at the same epoch vector.
func compareAnswers(t *testing.T, leaderURL, followerURL string, rs []*rankings.Ranking, rng *rand.Rand) {
	t.Helper()
	for q := 0; q < 8; q++ {
		r := rs[rng.Intn(len(rs))]
		var path string
		var body map[string]any
		if q%2 == 0 {
			path, body = "/v1/search", map[string]any{"items": r.Items, "theta": 0.4}
		} else {
			path, body = "/v1/knn", map[string]any{"items": r.Items, "k": 5}
		}
		lHits := queryHits(t, leaderURL+path, body)
		fHits := queryHits(t, followerURL+path, body)
		if !sameNeighbors(lHits, fHits) {
			t.Fatalf("query %d (%s %v): leader %v != follower %v", q, path, body, lHits, fHits)
		}
	}
}

func queryHits(t *testing.T, url string, body any) []shard.Neighbor {
	t.Helper()
	code, out := post(t, url, body)
	if code != http.StatusOK {
		t.Fatalf("%s returned %d: %s", url, code, out["error"])
	}
	var hits []shard.Neighbor
	if err := json.Unmarshal(out["hits"], &hits); err != nil {
		t.Fatal(err)
	}
	return hits
}
