package server

import (
	"context"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"time"

	"rankjoin/internal/obs"
)

// Telemetry defaults; Config overrides, negative values disable.
const (
	defaultTraceSampleEvery = 64
	defaultSlowThreshold    = 250 * time.Millisecond
	defaultTraceRingSize    = 32
	defaultWindowInterval   = 5 * time.Second

	// windowSpan is the rolling-statistics horizon /statusz reports
	// (current QPS, last-minute p50/p99).
	windowSpan = time.Minute
)

// spanKey carries a head-sampled request's root span through the
// request context down to the batcher and the mutating handlers.
type spanKey struct{}

// ctxSpan returns the request's root span, or nil when the request is
// not head-sampled. Every obs.Span method no-ops on nil, so callers
// use the result unconditionally.
func ctxSpan(ctx context.Context) *obs.Span {
	sp, _ := ctx.Value(spanKey{}).(*obs.Span)
	return sp
}

// requestID returns the client's X-Request-ID or mints one. Minted IDs
// are `<boot-prefix><seq>`: unique within the process and cheap enough
// to stamp on every request.
func (s *Server) requestID(r *http.Request) string {
	if rid := r.Header.Get("X-Request-ID"); rid != "" {
		return rid
	}
	return s.ridPrefix + strconv.FormatUint(s.ridSeq.Add(1), 10)
}

// retainTrace parks one finished request's trace in the ring. Requests
// that were not head-sampled but crossed the slow threshold get a
// retroactive single-span trace (the tail sample): no span detail, but
// the request is still retrievable by its ID as a Chrome trace.
func (s *Server) retainTrace(name, rid string, start time.Time, dur time.Duration, tr *obs.Tracer, sampled, slow bool) {
	if sampled {
		s.sampledTotal.Add(1)
	}
	if slow {
		s.slowTotal.Add(1)
	}
	if tr == nil {
		tr = obs.NewTracerAt(start)
		tr.Complete(name, start, dur,
			obs.String("request_id", rid), obs.String("tail_sampled", "true"))
	}
	s.traces.Add(&obs.TraceRecord{
		ID: rid, Name: name, Start: start, Dur: dur,
		Slow: slow, Sampled: sampled, Tracer: tr,
	})
}

// windowLoop periodically snapshots every endpoint's cumulative latency
// histogram into its rolling window. Windowing costs nothing on the
// request path: deltas are computed at /statusz scrape time from these
// snapshots.
func (s *Server) windowLoop() {
	defer close(s.winDone)
	t := time.NewTicker(s.winInterval)
	defer t.Stop()
	for {
		select {
		case now := <-t.C:
			for path, st := range s.requests {
				s.windows[path].Record(now, st.latency.Snapshot())
			}
		case <-s.winStop:
			return
		}
	}
}

// traceSummary is one /debug/traces listing entry.
type traceSummary struct {
	ID      string `json:"id"`
	Name    string `json:"name"`
	Start   string `json:"start"`
	DurUS   int64  `json:"dur_us"`
	Slow    bool   `json:"slow"`
	Sampled bool   `json:"sampled"`
}

func summarize(recs []*obs.TraceRecord) []traceSummary {
	out := make([]traceSummary, len(recs))
	for i, r := range recs {
		out[i] = traceSummary{
			ID: r.ID, Name: r.Name,
			Start: r.Start.UTC().Format(time.RFC3339Nano),
			DurUS: r.Dur.Microseconds(),
			Slow:  r.Slow, Sampled: r.Sampled,
		}
	}
	return out
}

// handleTraces lists the retained traces: the most recent sampled
// requests and the slowest tail-sampled ones, newest first. Fetch any
// entry's full Chrome trace from /debug/trace/{id}.
func (s *Server) handleTraces(w http.ResponseWriter, _ *http.Request) error {
	return writeJSON(w, map[string]any{
		"recent": summarize(s.traces.Recent()),
		"slow":   summarize(s.traces.Slow()),
	})
}

// handleTraceByID serves one retained request trace as Chrome trace
// JSON, addressed by its X-Request-ID.
func (s *Server) handleTraceByID(w http.ResponseWriter, r *http.Request) error {
	rec := s.traces.Get(r.PathValue("id"))
	if rec == nil {
		return finish(w, &httpError{status: http.StatusNotFound,
			err: errNoSuchTrace})
	}
	w.Header().Set("Content-Type", "application/json")
	return rec.Tracer.WriteChromeTrace(w)
}

// handleTrace (legacy single-slot endpoint) serves the most recent
// retained trace.
func (s *Server) handleTrace(w http.ResponseWriter, _ *http.Request) error {
	recent := s.traces.Recent()
	if len(recent) == 0 {
		return finish(w, &httpError{status: http.StatusNotFound,
			err: errNoSuchTrace})
	}
	w.Header().Set("Content-Type", "application/json")
	return recent[0].Tracer.WriteChromeTrace(w)
}

// sortedPaths returns the registered endpoint paths in stable order for
// deterministic /metrics output.
func (s *Server) sortedPaths() []string {
	paths := make([]string, 0, len(s.requests))
	for p := range s.requests {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// logRequest emits the structured per-request telemetry: a Warn line
// for slow requests (always, when tail sampling is on) and a Debug
// access line. The Enabled guard keeps the attr boxing off the fast
// path when access logging is off.
func (s *Server) logRequest(ctx context.Context, path, rid string, status int, dur time.Duration, slow bool) {
	if slow {
		s.logger.LogAttrs(ctx, slog.LevelWarn, "slow request",
			slog.String("path", path), slog.String("request_id", rid),
			slog.Int("status", status), slog.Duration("dur", dur),
			slog.Duration("threshold", s.slowThresh))
		return
	}
	if s.logger.Enabled(ctx, slog.LevelDebug) {
		s.logger.LogAttrs(ctx, slog.LevelDebug, "request",
			slog.String("path", path), slog.String("request_id", rid),
			slog.Int("status", status), slog.Duration("dur", dur))
	}
}
