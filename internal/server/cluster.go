package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"

	"rankjoin"
	"rankjoin/internal/cluster"
	"rankjoin/internal/obs"
	"rankjoin/internal/rankings"
	"rankjoin/internal/shard"
)

// Clustered serving. When Config.Cluster is set, the public endpoints
// change shape:
//
//   - /v1/search and /v1/knn scatter to every peer's /v1/cluster/search
//     (the local shard answers in-process) and merge, degrading to a
//     partial answer when a peer is down rather than failing;
//   - /v1/insert and /v1/delete route each ranking to its ring owner;
//   - /v1/join ships the dataset to all peers and runs the SPMD
//     distributed join.
//
// The /v1/cluster/* endpoints are strictly peer-local: they answer
// from this peer's own index and never fan out again, so a scatter is
// depth-one by construction.

// clustered reports whether this server is part of a multi-peer
// cluster. A nil cluster or a one-peer cluster serves single-node.
func (s *Server) clustered() bool { return s.cluster != nil && s.cluster.Size() > 1 }

// localSearch answers one peer-local query against this server's own
// index through the coalescing batcher.
func (s *Server) localSearch(ctx context.Context, q shard.Query) ([]shard.Neighbor, error) {
	return s.batch.do(ctx, q, ctxSpan(ctx))
}

// scatter answers a public search/kNN across the whole cluster.
func (s *Server) scatter(ctx context.Context, w http.ResponseWriter, q shard.Query, theta float64) error {
	req := cluster.SearchReq{Items: q.R.Items, Theta: theta, KNN: q.KNN, Exclude: q.Exclude}
	sp := ctxSpan(ctx).StartChild("serve/scatter", obs.Int("peers", int64(s.cluster.Size())))
	defer sp.End()
	res, err := s.cluster.Scatter(ctx, req, func(ctx context.Context) ([]shard.Neighbor, error) {
		return s.localSearch(ctx, q)
	})
	if err != nil {
		return finish(w, &httpError{status: http.StatusBadGateway,
			err: fmt.Errorf("all cluster shards failed: %w", err)})
	}
	sp.SetInt("hits", int64(len(res.Hits)))
	sp.SetInt("peers_failed", int64(len(res.Failed)))
	return writeJSON(w, searchResponse{
		Hits:        nonNil(res.Hits),
		Partial:     res.Partial,
		PeersFailed: res.Failed,
	})
}

// resolveClusterQuery resolves an id-form query against the ring owner
// when the ranking is not indexed locally — in a cluster, /v1/search
// {"id":N} must work no matter which peer receives it.
func (s *Server) resolveClusterQuery(ctx context.Context, req *queryRequest) (*rankings.Ranking, int64, error) {
	q, exclude, err := s.parseQuery(req)
	if err == nil || req.ID == nil || !s.clustered() {
		return q, exclude, err
	}
	var he *httpError
	if !errors.As(err, &he) || he.status != http.StatusNotFound {
		return nil, 0, err
	}
	owner := s.cluster.Owner(*req.ID)
	if owner == s.cluster.Self() {
		return nil, 0, err // we are the owner and we don't have it
	}
	resp, gerr := s.cluster.GetPeer(ctx, owner, *req.ID)
	if gerr != nil {
		return nil, 0, &httpError{status: http.StatusBadGateway,
			err: fmt.Errorf("resolve id %d on owner peer: %w", *req.ID, gerr)}
	}
	if !resp.Found {
		return nil, 0, err // authoritative miss
	}
	r, nerr := rankings.New(*req.ID, resp.Items)
	if nerr != nil {
		return nil, 0, &httpError{status: http.StatusBadGateway,
			err: fmt.Errorf("owner peer returned invalid ranking for id %d: %w", *req.ID, nerr)}
	}
	r.Index()
	return r, r.ID, nil
}

// --- peer-local endpoints ---

// handleClusterSearch answers a peer-local search: this index only, no
// further fan-out.
func (s *Server) handleClusterSearch(w http.ResponseWriter, r *http.Request) error {
	var req cluster.SearchReq
	if err := decode(r, &req); err != nil {
		return finish(w, err)
	}
	q, err := rankings.New(shard.NoExclude, req.Items)
	if err != nil {
		return finish(w, badRequest(err))
	}
	q.Index()
	if err := s.checkQueryK(q); err != nil {
		return finish(w, err)
	}
	k := s.idx.K()
	if k == 0 {
		return writeJSON(w, cluster.SearchResp{Hits: []shard.Neighbor{}})
	}
	sq := shard.Query{R: q, KNN: req.KNN, Exclude: req.Exclude}
	if req.KNN <= 0 {
		if req.Theta < 0 || req.Theta > 1 {
			return finish(w, badRequest(fmt.Errorf("theta %v out of [0,1]", req.Theta)))
		}
		sq.MaxDist = rankings.Threshold(req.Theta, k)
	}
	hits, err := s.localSearch(r.Context(), sq)
	if err != nil {
		return finish(w, err)
	}
	return writeJSON(w, cluster.SearchResp{Hits: nonNil(hits)})
}

// handleClusterGet returns a locally indexed ranking by id.
func (s *Server) handleClusterGet(w http.ResponseWriter, r *http.Request) error {
	var req cluster.GetReq
	if err := decode(r, &req); err != nil {
		return finish(w, err)
	}
	rk, ok := s.idx.Get(req.ID)
	if !ok {
		return writeJSON(w, cluster.GetResp{})
	}
	return writeJSON(w, cluster.GetResp{Found: true, Items: rk.Items})
}

// handleClusterInsert inserts rankings into the local index without
// ring routing — the sender already routed them here.
func (s *Server) handleClusterInsert(w http.ResponseWriter, r *http.Request) error {
	var req cluster.UpsertReq
	if err := decode(r, &req); err != nil {
		return finish(w, err)
	}
	for _, wr := range req.Rankings {
		rk, err := rankings.New(wr.ID, wr.Items)
		if err != nil {
			return finish(w, badRequest(err))
		}
		if err := s.idx.Insert(rk); err != nil {
			return finish(w, err)
		}
	}
	return writeJSON(w, cluster.OKResp{OK: true})
}

// handleClusterDelete deletes ids from the local index.
func (s *Server) handleClusterDelete(w http.ResponseWriter, r *http.Request) error {
	var req cluster.DeleteReq
	if err := decode(r, &req); err != nil {
		return finish(w, err)
	}
	n := 0
	for _, id := range req.IDs {
		ok, err := s.idx.Delete(id)
		if err != nil {
			return finish(w, fmt.Errorf("delete %d: %w", id, err))
		}
		if ok {
			n++
		}
	}
	return writeJSON(w, cluster.DeleteResp{Deleted: n})
}

// handleClusterShuffle accepts one shuffle frame into the inbox.
func (s *Server) handleClusterShuffle(w http.ResponseWriter, r *http.Request) error {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return finish(w, badRequest(fmt.Errorf("read frame: %w", err)))
	}
	if err := s.cluster.HandleShuffleFrame(body); err != nil {
		return finish(w, badRequest(err))
	}
	return writeJSON(w, cluster.OKResp{OK: true})
}

// handleClusterJoin runs this peer's share of a distributed join. The
// join outlives the per-request deadline by design — it lasts as long
// as the slowest collective — so the handler escapes the route
// deadline and lets the cluster's JoinTimeout bound it instead.
func (s *Server) handleClusterJoin(w http.ResponseWriter, r *http.Request) error {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return finish(w, badRequest(fmt.Errorf("read join start: %w", err)))
	}
	if err := s.cluster.HandleJoinStart(context.WithoutCancel(r.Context()), body); err != nil {
		if errors.Is(err, cluster.ErrMalformed) {
			return finish(w, badRequest(err))
		}
		return finish(w, &httpError{status: http.StatusInternalServerError, err: err})
	}
	return writeJSON(w, cluster.OKResp{OK: true})
}

// handleClusterInfo describes this peer.
func (s *Server) handleClusterInfo(w http.ResponseWriter, r *http.Request) error {
	var req struct{}
	if err := decode(r, &req); err != nil {
		return finish(w, err)
	}
	return writeJSON(w, cluster.InfoResp{
		Self:     s.cluster.Self(),
		Peers:    s.cluster.Size(),
		Rankings: s.idx.Len(),
		K:        s.idx.K(),
		Addr:     s.cluster.Addr(s.cluster.Self()),
	})
}

// --- clustered public mutations ---

// clusterInsert ring-routes validated rankings to their owner peers.
// All-or-error: any peer failure fails the request (rankings shipped
// to healthy peers stay inserted; the caller retries idempotently).
func (s *Server) clusterInsert(ctx context.Context, w http.ResponseWriter, rs []*rankings.Ranking) error {
	wire := make([]cluster.WireRanking, len(rs))
	for i, rk := range rs {
		wire[i] = cluster.WireRanking{ID: rk.ID, Items: rk.Items}
	}
	groups := s.cluster.GroupByOwner(wire)
	// Per-peer error slots keep failure reporting deterministic no
	// matter which order the map range or the goroutines run in.
	perPeer := make([]error, s.cluster.Size())
	var (
		wg sync.WaitGroup
		mu sync.Mutex
	)
	// The local share is applied on this goroutine while remote fan-out
	// runs; it must keep its own tally (merged after Wait) so the main
	// goroutine never touches n concurrently with the peer goroutines.
	local := 0
	var localErr error
	n := 0
	for peer, group := range groups {
		if peer == s.cluster.Self() {
			for _, wr := range group {
				rk, _ := rankings.New(wr.ID, wr.Items) // validated above
				if err := s.idx.Insert(rk); err != nil {
					localErr = err
					break
				}
				local++
			}
			continue
		}
		wg.Add(1)
		go func(peer int, group []cluster.WireRanking) {
			defer wg.Done()
			err := s.cluster.UpsertPeer(ctx, peer, group)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				perPeer[peer] = err
				return
			}
			n += len(group)
		}(peer, group)
	}
	wg.Wait()
	if localErr != nil {
		return finish(w, localErr)
	}
	n += local
	if failed, first := countErrs(perPeer); failed > 0 {
		return finish(w, &httpError{status: http.StatusBadGateway,
			err: fmt.Errorf("insert routed to %d peers, %d failed: %w", len(groups), failed, first)})
	}
	return writeJSON(w, map[string]any{"inserted": n, "size": s.idx.Len()})
}

// clusterDelete ring-routes deletions to their owner peers.
func (s *Server) clusterDelete(ctx context.Context, w http.ResponseWriter, ids []int64) error {
	groups := s.cluster.GroupIDsByOwner(ids)
	perPeer := make([]error, s.cluster.Size())
	var (
		wg sync.WaitGroup
		mu sync.Mutex
	)
	// As in clusterInsert: the local tally stays off n until Wait.
	local := 0
	var localErr error
	n := 0
	for peer, group := range groups {
		if peer == s.cluster.Self() {
			for _, id := range group {
				ok, err := s.idx.Delete(id)
				if err != nil {
					localErr = fmt.Errorf("delete %d: %w", id, err)
					break
				}
				if ok {
					local++
				}
			}
			continue
		}
		wg.Add(1)
		go func(peer int, group []int64) {
			defer wg.Done()
			deleted, err := s.cluster.DeletePeer(ctx, peer, group)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				perPeer[peer] = err
				return
			}
			n += deleted
		}(peer, group)
	}
	wg.Wait()
	if localErr != nil {
		return finish(w, localErr)
	}
	n += local
	if failed, first := countErrs(perPeer); failed > 0 {
		return finish(w, &httpError{status: http.StatusBadGateway,
			err: fmt.Errorf("delete routed to %d peers, %d failed: %w", len(groups), failed, first)})
	}
	return writeJSON(w, map[string]any{"deleted": n, "size": s.idx.Len()})
}

// countErrs counts non-nil entries and returns the first in peer-rank
// order (deterministic across runs).
func countErrs(perPeer []error) (int, error) {
	var first error
	n := 0
	for _, err := range perPeer {
		if err != nil {
			if first == nil {
				first = err
			}
			n++
		}
	}
	return n, first
}

// clusterJoin runs the ad-hoc join as a cluster-wide SPMD job. VJ is
// exact, so the pairs are identical to the single-node brute-force
// handler's — but the prefix-index stages run on flow, which means the
// job's shuffles genuinely cross the wire instead of degenerating into
// N independent local computations the way brute force would.
func (s *Server) clusterJoin(ctx context.Context, w http.ResponseWriter, rs []*rankings.Ranking, theta float64) error {
	res, err := s.cluster.DistributedJoin(context.WithoutCancel(ctx), rs, rankjoin.Options{
		Algorithm: rankjoin.AlgVJ,
		Theta:     theta,
	})
	if err != nil {
		return finish(w, &httpError{status: http.StatusBadGateway, err: err})
	}
	out := make([]pairJSON, len(res.Pairs))
	for i, p := range res.Pairs {
		out[i] = pairJSON{A: p.A, B: p.B, Dist: p.Dist}
	}
	return writeJSON(w, map[string]any{"pairs": out, "distributed": true})
}
