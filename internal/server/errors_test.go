package server

// Typed-error mapping sweep: every POST endpoint — the public /v1 API
// and the peer-local /v1/cluster plane — must map the three
// protocol-level failure shapes to the same typed responses:
//
//	wrong method   → 405, Allow header, JSON error body
//	malformed body → 400, JSON error body naming the parse failure
//	oversized body → 413 (JSON endpoints; MaxBytesReader enforced)
//
// and every error response must carry the X-Request-Id header so
// clients can quote /debug/trace/{id} when reporting failures.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"rankjoin/internal/cluster"
	"rankjoin/internal/shard"
)

// newClusteredTestServer builds a server with a single-member cluster
// attached: the /v1/cluster routes register, but nothing fans out, so
// the peer-local endpoints can be probed without booting a fleet.
func newClusteredTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	clu, err := cluster.New(cluster.Config{Self: 0, Peers: []string{"127.0.0.1:1"}})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Cluster = clu
	return newTestServer(t, cfg)
}

func postRaw(t *testing.T, url, contentType string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// assertTypedError checks the response contract shared by every error
// path: the expected status, a JSON body with a non-empty "error"
// field, and an echoed request id.
func assertTypedError(t *testing.T, resp *http.Response, wantStatus int, label string) {
	t.Helper()
	if resp.StatusCode != wantStatus {
		t.Errorf("%s: status %d, want %d", label, resp.StatusCode, wantStatus)
	}
	if got := resp.Header.Get("Content-Type"); got != "application/json" {
		t.Errorf("%s: content-type %q, want application/json", label, got)
	}
	if resp.Header.Get("X-Request-Id") == "" {
		t.Errorf("%s: error response missing X-Request-Id", label)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Errorf("%s: error body not JSON: %v", label, err)
	} else if body.Error == "" {
		t.Errorf("%s: error body has empty error field", label)
	}
}

// jsonPostPaths are the endpoints that decode a JSON request body.
var jsonPostPaths = []string{
	"/v1/search", "/v1/knn", "/v1/insert", "/v1/delete", "/v1/join",
	cluster.PathSearch, cluster.PathGet, cluster.PathInsert,
	cluster.PathDelete, cluster.PathInfo,
}

// binaryPostPaths take length-prefixed binary frames, not JSON.
var binaryPostPaths = []string{cluster.PathShuffle, cluster.PathJoin}

func TestWrongMethodAcrossEndpoints(t *testing.T) {
	_, ts := newClusteredTestServer(t, Config{})
	for _, path := range append(append([]string{}, jsonPostPaths...), binaryPostPaths...) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		assertTypedError(t, resp, http.StatusMethodNotAllowed, "GET "+path)
		if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
			t.Errorf("GET %s: Allow header %q, want POST", path, allow)
		}
		resp.Body.Close()
	}
	// The GET-only endpoints reject POST symmetrically.
	for _, path := range []string{"/healthz", "/statusz", "/metrics", "/debug/traces"} {
		resp := postRaw(t, ts.URL+path, "application/json", []byte(`{}`))
		assertTypedError(t, resp, http.StatusMethodNotAllowed, "POST "+path)
	}
}

func TestMalformedBodyAcrossEndpoints(t *testing.T) {
	_, ts := newClusteredTestServer(t, Config{})
	for _, garbage := range [][]byte{
		[]byte(`{"theta": `),           // truncated JSON
		[]byte(`not json at all`),      // not JSON
		[]byte(`{"no_such_field": 1}`), // unknown field (DisallowUnknownFields)
	} {
		for _, path := range jsonPostPaths {
			resp := postRaw(t, ts.URL+path, "application/json", garbage)
			assertTypedError(t, resp, http.StatusBadRequest, "POST "+path+" "+string(garbage))
		}
	}
	// Binary endpoints reject garbage frames as client errors, never 5xx.
	for _, path := range binaryPostPaths {
		resp := postRaw(t, ts.URL+path, "application/octet-stream", []byte("XXXXnot a frame"))
		assertTypedError(t, resp, http.StatusBadRequest, "POST "+path+" garbage frame")
	}
}

func TestOversizedBodyAcrossEndpoints(t *testing.T) {
	const limit = 1 << 10
	_, ts := newClusteredTestServer(t, Config{MaxBodyBytes: limit})
	// A syntactically valid JSON object larger than the body bound, so
	// the only possible rejection is the size limit itself.
	huge := []byte(`{"pad": "` + strings.Repeat("x", 4*limit) + `"}`)
	for _, path := range jsonPostPaths {
		resp := postRaw(t, ts.URL+path, "application/json", huge)
		assertTypedError(t, resp, http.StatusRequestEntityTooLarge, "POST "+path+" oversized")
	}
}

// TestTypedErrorMappingUnit pins the decode() mapping directly: a
// MaxBytesError becomes 413, everything else 400.
func TestTypedErrorMappingUnit(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{badRequest(shard.ErrKMismatch), http.StatusBadRequest},
		{&httpError{status: http.StatusRequestEntityTooLarge, err: shard.ErrNilRanking}, http.StatusRequestEntityTooLarge},
		{shard.ErrKMismatch, http.StatusBadRequest},
		{nil, http.StatusOK},
	}
	for _, c := range cases {
		if got := statusOf(c.err); got != c.want {
			t.Errorf("statusOf(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}
