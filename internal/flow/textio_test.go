package flow_test

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"rankjoin/internal/flow"
)

func writeLines(t *testing.T, lines []string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.txt")
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestTextFileSplitsExactlyOnce: every line appears exactly once,
// regardless of how the byte ranges cut across lines.
func TestTextFileSplitsExactlyOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(200)
		lines := make([]string, n)
		for i := range lines {
			// Highly variable line lengths stress the split boundaries.
			lines[i] = fmt.Sprintf("line-%04d-%s", i, strings.Repeat("x", rng.Intn(50)))
		}
		path := writeLines(t, lines)
		for _, parts := range []int{1, 2, 3, 7, 16, 100} {
			ctx := flow.NewContext(flow.Config{Workers: 4})
			got, err := flow.TextFile(ctx, path, parts).Collect()
			if err != nil {
				t.Fatal(err)
			}
			sort.Strings(got)
			want := append([]string(nil), lines...)
			sort.Strings(want)
			if len(got) != len(want) {
				t.Fatalf("trial %d parts=%d: %d lines, want %d", trial, parts, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d parts=%d: line %d = %q, want %q", trial, parts, i, got[i], want[i])
				}
			}
		}
	}
}

func TestTextFilePreservesOrderWithinSplits(t *testing.T) {
	lines := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	path := writeLines(t, lines)
	ctx := flow.NewContext(flow.Config{Workers: 1})
	got, err := flow.TextFile(ctx, path, 3).Collect()
	if err != nil {
		t.Fatal(err)
	}
	// Collect preserves partition order and splits are contiguous byte
	// ranges, so the overall order must be the file order.
	if strings.Join(got, "") != "abcdefgh" {
		t.Errorf("order = %v", got)
	}
}

func TestTextFileCRLFAndMissingFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crlf.txt")
	if err := os.WriteFile(path, []byte("a\r\nb\r\nc"), 0o644); err != nil {
		t.Fatal(err)
	}
	ctx := flow.NewContext(flow.Config{Workers: 2})
	got, err := flow.TextFile(ctx, path, 2).Collect()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(got, ",") != "a,b,c" {
		t.Errorf("crlf lines = %v", got)
	}
	if _, err := flow.TextFile(ctx, filepath.Join(t.TempDir(), "nope"), 2).Collect(); err == nil {
		t.Error("missing file accepted")
	}
}

func TestSaveLoadTextRoundTrip(t *testing.T) {
	ctx := flow.NewContext(flow.Config{Workers: 3})
	data := make([]int, 100)
	for i := range data {
		data[i] = i
	}
	d := flow.Parallelize(ctx, data, 5)
	dir := filepath.Join(t.TempDir(), "out")
	if err := flow.SaveTextFile(d, dir, func(x int) string { return fmt.Sprint(x) }); err != nil {
		t.Fatal(err)
	}
	parts, _ := filepath.Glob(filepath.Join(dir, "part-*"))
	if len(parts) != 5 {
		t.Fatalf("part files = %d, want 5", len(parts))
	}
	back, err := flow.LoadTextFile(ctx, dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("round trip %d lines", len(got))
	}
	for i, s := range got {
		if s != fmt.Sprint(i) {
			t.Fatalf("line %d = %q", i, s)
		}
	}
	if _, err := flow.LoadTextFile(ctx, t.TempDir()); err == nil {
		t.Error("empty dir accepted")
	}
}
