package flow_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rankjoin/internal/flow"
	"rankjoin/internal/rankings"
)

// FuzzTextRankings drives arbitrary bytes through the dataset-loading
// path the daemon and CLIs share: flow.TextFile split into byte-range
// partitions, then rankings.ParseLine per line. Three properties must
// hold for any input:
//
//  1. nothing panics — malformed server input (rankserved -data, HTTP
//     "line" queries) must surface as errors, never crash the process;
//  2. splitting is lossless — the multi-partition read yields exactly
//     the single-partition line stream, in order, for every split
//     count (the Hadoop TextInputFormat invariant textio.go claims);
//  3. parsing is deterministic — ParseLine succeeds or fails the same
//     way on the line regardless of which split delivered it, and
//     rankings.Read over the whole file agrees with the per-line
//     verdicts.
func FuzzTextRankings(f *testing.F) {
	if data, err := os.ReadFile(filepath.Join("..", "..", "examples", "quickstart", "rankings.txt")); err == nil {
		f.Add(string(data), uint8(3))
	}
	seeds := []string{
		"2 5 4 3 1\n1 4 5 9 0\n",
		"7: 2 5 4 3 1\n8: 1,4,5,9,0\n",
		"# comment\n\n1: 1 2 3\n",
		"1: 1 2 3",   // no trailing newline
		"\n\n\n",     // blank lines only
		"1: 1 1 1\n", // duplicate items — must error, not panic
		"x: 1 2 3\n999999999999999999999999: 1\n",
		"1: 99999999999999999999\n-5: 3 2 1\n",
		"\xff\xfe garbage \x00\n1: 1 2\r\n",
		strings.Repeat("9", 1<<10) + "\n",
	}
	for _, s := range seeds {
		for _, p := range []uint8{0, 1, 4} {
			f.Add(s, p)
		}
	}
	f.Fuzz(func(t *testing.T, content string, splits uint8) {
		path := filepath.Join(t.TempDir(), "data.txt")
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		ctx := flow.NewContext(flow.Config{})
		defer ctx.Close()

		whole, err := flow.TextFile(ctx, path, 1).Collect()
		if err != nil {
			t.Fatalf("single-split read: %v", err)
		}
		parts := int(splits%8) + 1
		split, err := flow.TextFile(ctx, path, parts).Collect()
		if err != nil {
			t.Fatalf("%d-split read: %v", parts, err)
		}
		if len(split) != len(whole) {
			t.Fatalf("%d splits: %d lines, single split: %d", parts, len(split), len(whole))
		}
		for i := range whole {
			if split[i] != whole[i] {
				t.Fatalf("%d splits: line %d = %q, single split %q", parts, i, split[i], whole[i])
			}
		}

		// Every non-blank, non-comment line goes through the ranking
		// parser; it may reject, it must not panic.
		parsed := 0
		for i, line := range whole {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			if r, err := rankings.ParseLine(line, int64(i)); err == nil {
				if r == nil || r.K() == 0 {
					t.Fatalf("line %q: ParseLine returned %v with nil error", line, r)
				}
				parsed++
			}
		}
		// rankings.Read is all-or-nothing: on success it must have
		// accepted exactly the lines ParseLine accepts.
		if rs, err := rankings.Read(strings.NewReader(content)); err == nil && len(rs) != parsed {
			t.Fatalf("Read parsed %d rankings, per-line parse accepted %d", len(rs), parsed)
		}
	})
}
