package flow_test

import (
	"errors"
	"testing"
	"time"

	"rankjoin/internal/flow"
)

// TestFailingPartitionShortCircuitsWideStage: once one partition of a
// wide stage fails, idle workers must stop claiming new task indices
// instead of running the stage to completion.
func TestFailingPartitionShortCircuitsWideStage(t *testing.T) {
	const parts = 64
	ctx := flow.NewContext(flow.Config{Workers: 2})
	boom := errors.New("boom")
	d := flow.Parallelize(ctx, ints(parts), parts)
	bad := flow.MapPartitions(d, func(p int, in []int) ([]int, error) {
		if p == 0 {
			return nil, boom
		}
		// Give the failing task time to publish its error before the
		// next claim.
		time.Sleep(2 * time.Millisecond)
		return in, nil
	})
	if _, err := bad.Collect(); !errors.Is(err, boom) {
		t.Fatalf("collect err = %v, want boom", err)
	}
	// Workers may finish tasks already claimed when the error lands,
	// but must not walk the remaining ~60 partitions.
	if tasks := ctx.Snapshot().Tasks; tasks >= parts {
		t.Errorf("ran %d tasks of a failed %d-partition stage, want a short-circuit", tasks, parts)
	}
}

// TestShortCircuitThroughShuffle: the same property through a shuffle
// boundary — a failing source partition aborts the scatter pass early.
func TestShortCircuitThroughShuffle(t *testing.T) {
	const parts = 64
	ctx := flow.NewContext(flow.Config{Workers: 2})
	boom := errors.New("scatter failed")
	d := flow.Parallelize(ctx, ints(parts), parts)
	keyed := flow.MapPartitions(d, func(p int, in []int) ([]flow.KV[int, int], error) {
		if p == 0 {
			return nil, boom
		}
		time.Sleep(2 * time.Millisecond)
		out := make([]flow.KV[int, int], len(in))
		for i, v := range in {
			out[i] = flow.KV[int, int]{K: v % 7, V: v}
		}
		return out, nil
	})
	if _, err := flow.GroupByKey(keyed, 8).Collect(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if tasks := ctx.Snapshot().Tasks; tasks >= parts {
		t.Errorf("ran %d tasks, want short-circuit well below %d", tasks, parts)
	}
}
