// Package flow is an in-process, Spark-like dataflow engine: the
// substrate that stands in for Apache Spark in this reproduction.
//
// It models the pieces of Spark the paper's algorithms actually depend
// on:
//
//   - lazily evaluated, partitioned, immutable datasets (RDDs) with
//     pipelined narrow transformations (Map, FlatMap, Filter,
//     MapPartitions);
//   - wide transformations that exchange data through a hash-partitioned
//     shuffle (GroupByKey, ReduceByKey, Join, CoGroup, Distinct,
//     Repartition), with map-side combining where applicable;
//   - broadcast variables;
//   - caching of intermediate datasets for iterative, multi-stage
//     pipelines;
//   - a bounded executor pool (Config.Workers plays the role of
//     executors × cores, the knob behind the paper's Table 3 and the
//     Figure 7 scalability sweep);
//   - optional spill-to-disk of shuffle buckets, modelling Spark's
//     ability to degrade gracefully instead of holding every partition
//     in executor memory (§4.1);
//   - engine metrics (records shuffled, spilled, largest partition,
//     tasks run) so that experiments can observe skew and shuffle
//     volume, not just wall-clock time.
//
// The engine is deliberately deterministic given a fixed dataset: hash
// partitioning depends only on keys, so results are reproducible across
// worker counts and partition counts (property-tested).
package flow

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rankjoin/internal/obs"
)

// Config sizes the engine. The zero value is usable: it runs with
// GOMAXPROCS workers, 8 default partitions and no spilling.
type Config struct {
	// Workers bounds the number of concurrently executing tasks — the
	// analogue of total executor cores in Table 3 of the paper.
	Workers int
	// DefaultPartitions is the partition count used when a
	// transformation does not specify one — the analogue of
	// spark.default.parallelism.
	DefaultPartitions int
	// SpillDir, when non-empty, enables spilling of oversized shuffle
	// buckets to gob files under this directory.
	SpillDir string
	// SpillThreshold is the number of records a single shuffle bucket
	// may hold in memory before being spilled. Zero means 1<<16.
	SpillThreshold int
	// Exchange, when non-nil with a world size above one, runs the
	// context in distributed SPMD mode: shuffles go over the Exchanger
	// instead of process memory and actions become all-gathers. See
	// Exchanger for the execution model. Spilling is disabled for
	// distributed shuffle buckets, and ForEachPartition visits only the
	// partitions owned by this worker.
	Exchange Exchanger
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.DefaultPartitions <= 0 {
		c.DefaultPartitions = 8
	}
	if c.SpillThreshold <= 0 {
		c.SpillThreshold = 1 << 16
	}
	return c
}

// Context owns the executor pool, metrics and spill state for one
// logical "cluster". Datasets are bound to the context that created
// them.
type Context struct {
	cfg     Config
	metrics Metrics
	spill   *spillManager
	tracer  atomic.Pointer[obs.Tracer]

	// collective numbers every shuffle construction and action call in
	// driver order. In distributed mode the transport matches frames by
	// this id; see Exchanger.
	collective atomic.Int64
}

// NewContext builds a Context from cfg (see Config for defaults).
func NewContext(cfg Config) *Context {
	cfg = cfg.withDefaults()
	ctx := &Context{cfg: cfg}
	if cfg.SpillDir != "" {
		ctx.spill = newSpillManager(cfg.SpillDir, cfg.SpillThreshold, &ctx.metrics)
	}
	return ctx
}

// Config returns the (defaulted) configuration of the context.
func (c *Context) Config() Config { return c.cfg }

// SetTracer attaches a span tracer to the context; every subsequent
// shuffle, action and instrumented pipeline phase records spans on it.
// A nil tracer detaches tracing; with no tracer attached every
// instrumentation site reduces to a nil check.
func (c *Context) SetTracer(tr *obs.Tracer) { c.tracer.Store(tr) }

// Tracer returns the attached tracer, or nil when tracing is off.
func (c *Context) Tracer() *obs.Tracer { return c.tracer.Load() }

// Filters returns the context's filter-effectiveness counters. Kernels
// accumulate locally and fold one FilterDelta per invocation here.
func (c *Context) Filters() *obs.FilterCounters { return &c.metrics.Filters }

// Histogram returns the named engine histogram, creating it on first
// use. Names are conventionally slash-scoped ("shuffle/partition_records",
// "cl/cluster_members"); all registered histograms appear in
// MetricsSnapshot.Histograms.
func (c *Context) Histogram(name string) *obs.Histogram { return c.metrics.histogram(name) }

// Workers returns the executor budget of the context.
func (c *Context) Workers() int { return c.cfg.Workers }

// world returns this context's rank and world size; a context without
// an Exchanger is the sole member of a world of one.
func (c *Context) world() (self, size int) {
	if c.cfg.Exchange == nil {
		return 0, 1
	}
	return c.cfg.Exchange.World()
}

// distributed reports whether shuffles and actions go over the wire.
// A one-worker world runs the plain in-process engine even with an
// Exchanger attached.
func (c *Context) distributed() bool {
	_, size := c.world()
	return size > 1
}

// nextCollective assigns the next collective id. Called only from the
// driver goroutine (dataset construction and actions), so the sequence
// is identical on every SPMD worker.
func (c *Context) nextCollective() int64 { return c.collective.Add(1) }

// Close releases spill files, if any. Safe to call on contexts without
// spilling.
func (c *Context) Close() error {
	if c.spill != nil {
		return c.spill.close()
	}
	return nil
}

// parallelDo executes fn(0..n-1) on the executor pool and returns the
// first error. Once any task fails, idle workers stop claiming new
// task indices, so a failing partition short-circuits a wide stage
// instead of running it to completion (tasks already in flight still
// finish). Nested invocations (a shuffle materializing its parent
// while the child stage is already running) each get their own bounded
// goroutine set, so the engine never deadlocks on pool slots; only one
// nesting level does real work at a time because sibling tasks block on
// the shuffle's sync.Once.
func (c *Context) parallelDo(n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	workers := c.cfg.Workers
	if workers > n {
		workers = n
	}
	var (
		wg   sync.WaitGroup
		next atomic.Int64
		err  atomic.Value
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for err.Load() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				c.metrics.Tasks.Add(1)
				if e := fn(i); e != nil {
					err.CompareAndSwap(nil, e)
					return
				}
			}
		}()
	}
	wg.Wait()
	if e := err.Load(); e != nil {
		return e.(error)
	}
	return nil
}

// tracedDo is parallelDo wrapped in spans: one task span for the whole
// action plus a child task span per partition. With no tracer attached
// it is exactly parallelDo — the nil check is the entire overhead.
func (c *Context) tracedDo(name string, n int, fn func(i int) error) error {
	tr := c.Tracer()
	if tr == nil {
		return c.parallelDo(n, fn)
	}
	sp := tr.StartTask(name, obs.Int("partitions", int64(n)))
	defer sp.End()
	return c.parallelDo(n, func(i int) error {
		tsp := sp.StartTask(name+".task", obs.Int("partition", int64(i)))
		defer tsp.End()
		return fn(i)
	})
}

// Metrics aggregates engine-level counters across all stages executed
// on a context. Counters are cumulative; use Snapshot to read them and
// Reset to start a fresh measurement window.
type Metrics struct {
	// Tasks counts executed partition tasks.
	Tasks atomic.Int64
	// ShuffleRecords counts records moved across a shuffle boundary.
	ShuffleRecords atomic.Int64
	// SpilledRecords counts records written to spill files.
	SpilledRecords atomic.Int64
	// BroadcastValues counts broadcast variables created.
	BroadcastValues atomic.Int64
	// MaxPartitionRecords tracks the largest materialized shuffle
	// partition seen — the skew signal the repartitioning technique of
	// §6 reacts to.
	MaxPartitionRecords atomic.Int64
	// ShuffleNanos accumulates wall-clock nanoseconds spent
	// materializing shuffle exchanges (scatter plan, fused copy and
	// spill), the engine's dominant fixed cost.
	ShuffleNanos atomic.Int64
	// Filters aggregates the filter-effectiveness counters folded in by
	// the join kernels through Context.Filters.
	Filters obs.FilterCounters

	// stageNanos accumulates wall-clock per named pipeline stage,
	// recorded by Context.ObserveStage.
	stageMu    sync.Mutex
	stageNanos map[string]int64

	// hists holds the named skew histograms (shuffle partition sizes,
	// posting-list lengths, cluster sizes), created on first use.
	histMu sync.RWMutex
	hists  map[string]*obs.Histogram
}

// histogram returns the named histogram, creating it on first use.
// Lookup is a read-lock in the steady state.
func (m *Metrics) histogram(name string) *obs.Histogram {
	m.histMu.RLock()
	h := m.hists[name]
	m.histMu.RUnlock()
	if h != nil {
		return h
	}
	m.histMu.Lock()
	defer m.histMu.Unlock()
	if h = m.hists[name]; h == nil {
		if m.hists == nil {
			m.hists = make(map[string]*obs.Histogram)
		}
		h = &obs.Histogram{}
		m.hists[name] = h
	}
	return h
}

func (m *Metrics) observePartitionSize(n int64) {
	for {
		cur := m.MaxPartitionRecords.Load()
		if n <= cur || m.MaxPartitionRecords.CompareAndSwap(cur, n) {
			return
		}
	}
}

// ObserveStage adds wall-clock time under a named pipeline stage.
// Pipelines use it to attribute engine time to their logical phases
// (e.g. "cl/clustering"), surfaced through MetricsSnapshot.Stages.
func (c *Context) ObserveStage(name string, d time.Duration) {
	m := &c.metrics
	m.stageMu.Lock()
	if m.stageNanos == nil {
		m.stageNanos = make(map[string]int64)
	}
	m.stageNanos[name] += int64(d)
	m.stageMu.Unlock()
}

// MetricsSnapshot is a plain-value copy of Metrics.
type MetricsSnapshot struct {
	Tasks               int64
	ShuffleRecords      int64
	SpilledRecords      int64
	BroadcastValues     int64
	MaxPartitionRecords int64
	// ShuffleTime is the wall-clock spent materializing shuffle
	// exchanges.
	ShuffleTime time.Duration
	// Filters is the filter-effectiveness tally of the run; see
	// obs.FilterDelta for the conservation law the fields obey.
	Filters obs.FiltersSnapshot
	// Stages maps pipeline stage names to accumulated wall-clock time
	// recorded via ObserveStage. Nil when no stage was observed.
	Stages map[string]time.Duration
	// Histograms maps engine histogram names (e.g.
	// "shuffle/partition_records") to their snapshots. Nil when nothing
	// was observed.
	Histograms map[string]obs.HistogramSnapshot
}

// Snapshot returns the current counter values.
func (c *Context) Snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		Tasks:               c.metrics.Tasks.Load(),
		ShuffleRecords:      c.metrics.ShuffleRecords.Load(),
		SpilledRecords:      c.metrics.SpilledRecords.Load(),
		BroadcastValues:     c.metrics.BroadcastValues.Load(),
		MaxPartitionRecords: c.metrics.MaxPartitionRecords.Load(),
		ShuffleTime:         time.Duration(c.metrics.ShuffleNanos.Load()),
		Filters:             c.metrics.Filters.Snapshot(),
	}
	c.metrics.histMu.RLock()
	if len(c.metrics.hists) > 0 {
		s.Histograms = make(map[string]obs.HistogramSnapshot, len(c.metrics.hists))
		for name, h := range c.metrics.hists {
			s.Histograms[name] = h.Snapshot()
		}
	}
	c.metrics.histMu.RUnlock()
	c.metrics.stageMu.Lock()
	if len(c.metrics.stageNanos) > 0 {
		s.Stages = make(map[string]time.Duration, len(c.metrics.stageNanos))
		for name, ns := range c.metrics.stageNanos {
			s.Stages[name] = time.Duration(ns)
		}
	}
	c.metrics.stageMu.Unlock()
	return s
}

// ResetMetrics zeroes all counters.
func (c *Context) ResetMetrics() {
	c.metrics.Tasks.Store(0)
	c.metrics.ShuffleRecords.Store(0)
	c.metrics.SpilledRecords.Store(0)
	c.metrics.BroadcastValues.Store(0)
	c.metrics.MaxPartitionRecords.Store(0)
	c.metrics.ShuffleNanos.Store(0)
	c.metrics.Filters.Reset()
	c.metrics.stageMu.Lock()
	c.metrics.stageNanos = nil
	c.metrics.stageMu.Unlock()
	c.metrics.histMu.Lock()
	c.metrics.hists = nil
	c.metrics.histMu.Unlock()
}

func (s MetricsSnapshot) String() string {
	msg := fmt.Sprintf("tasks=%d shuffled=%d spilled=%d broadcasts=%d maxPartition=%d shuffleTime=%v",
		s.Tasks, s.ShuffleRecords, s.SpilledRecords, s.BroadcastValues, s.MaxPartitionRecords, s.ShuffleTime)
	if !s.Filters.IsZero() {
		msg += fmt.Sprintf(" filters[%s]", s.Filters)
	}
	if len(s.Stages) > 0 {
		names := make([]string, 0, len(s.Stages))
		for name := range s.Stages {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			msg += fmt.Sprintf(" %s=%v", name, s.Stages[name])
		}
	}
	if len(s.Histograms) > 0 {
		names := make([]string, 0, len(s.Histograms))
		for name := range s.Histograms {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			msg += fmt.Sprintf(" hist[%s]={%s}", name, s.Histograms[name])
		}
	}
	return msg
}
