package flow

// Broadcast is a read-only value shared with every task — Spark's
// broadcast variable. The VJ adaptation broadcasts the global item
// frequency ordering to all executors (§4); in-process this is a shared
// pointer, but routing it through Broadcast keeps the dataflow programs
// structurally identical to their Spark counterparts and lets metrics
// count broadcast usage.
type Broadcast[T any] struct {
	value T
}

// NewBroadcast registers v as a broadcast value on the context.
func NewBroadcast[T any](ctx *Context, v T) Broadcast[T] {
	ctx.metrics.BroadcastValues.Add(1)
	return Broadcast[T]{value: v}
}

// Value returns the broadcast value. The caller must treat it as
// read-only; it is shared across all tasks.
func (b Broadcast[T]) Value() T { return b.value }
